#!/usr/bin/env python3
"""Benchmark engine thread scaling on the 64x64 workloads.

Runs each workload at every --engine-threads value (default 1,2,4),
asserts the reports are byte-identical across thread counts modulo
the execution facets (the determinism contract, re-checked here at
bench scale), and writes BENCH_pr9.json with per-workload engine
wall times and N-vs-1 speedup ratios plus their geomean.

On a single-core host the ratios hover around 1.0x or below (the
workers time-slice one core); the CI runner has 4 vCPUs and passes
--require so a scaling regression fails the job:

    bench_pr9.py ... --require pagerank:4          # 4v1 must be >1.0
    bench_pr9.py ... --require pagerank:4:1.5      # custom floor
"""

import argparse
import sys

from bench_lib import geomean, normalized, run_point, write_artifact

# 64x64 thread-scaling workloads: enough parallel work per cycle for
# the shards to matter. pagerank is the CI gate (dense, epoch-
# synchronized, the steadiest load); bfs/sssp add frontier-driven
# imbalance, which is also why the rebalancer column exists.
WORKLOADS = [
    ("pagerank", ["--scale", "13", "--param", "iterations=5"]),
    ("bfs", ["--scale", "14"]),
    ("sssp", ["--scale", "13"]),
]


def parse_require(spec):
    """Parse WORKLOAD:THREADS[:RATIO] into its three parts."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        sys.exit(f"bench_pr9: bad --require (want "
                 f"WORKLOAD:THREADS[:RATIO]): {spec}")
    try:
        threads = int(parts[1])
        floor = float(parts[2]) if len(parts) == 3 else 1.0
    except ValueError:
        sys.exit(f"bench_pr9: bad --require numbers: {spec}")
    return parts[0], threads, floor


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--dalorex", required=True,
                        help="path to the dalorex binary")
    parser.add_argument("--out", required=True,
                        help="output JSON path (BENCH_pr9.json)")
    parser.add_argument("--engine-threads", default="1,2,4",
                        help="comma-separated thread counts "
                             "(first is the baseline)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="WORKLOAD:THREADS[:RATIO]",
                        help="fail unless this workload's THREADS-vs-"
                             "baseline speedup exceeds RATIO "
                             "(default 1.0); repeatable")
    opts = parser.parse_args()

    counts = [int(n) for n in opts.engine_threads.split(",")]
    if len(counts) < 2:
        sys.exit("bench_pr9: need at least two --engine-threads "
                 "values to form a ratio")
    base = counts[0]
    requires = [parse_require(spec) for spec in opts.require]

    rows = []
    for name, extra in WORKLOADS:
        point = {"workload": name, "grid": "64x64"}
        engine_walls = {}
        golden = None
        for threads in counts:
            _, engine_wall, report = run_point(
                opts.dalorex,
                ["--kernel", name, "--width", "64", "--height", "64",
                 "--engine-threads", str(threads)] + extra,
                tag="bench_pr9")
            engine_walls[threads] = engine_wall
            point[f"engine_wall_seconds_t{threads}"] = round(
                engine_wall, 3)
            if golden is None:
                golden = normalized(report)
            elif normalized(report) != golden:
                sys.exit(f"bench_pr9: {name}: stats differ between "
                         f"engine-threads {base} and {threads}")
        point["stats_identical"] = True
        for threads in counts[1:]:
            # Unrounded ratio: 3-decimal storage can zero short runs.
            point[f"speedup_t{threads}_vs_t{base}"] = round(
                engine_walls[base] /
                max(engine_walls[threads], 1e-9), 3)
        rows.append(point)
        print(f"{name}: " + ", ".join(
            f"t{n} {engine_walls[n]:.3f}s" for n in counts) +
            " -> " + ", ".join(
            f"{point[f'speedup_t{n}_vs_t{base}']}x"
            for n in counts[1:]))

    top = counts[-1]
    geo = geomean(
        [row[f"speedup_t{top}_vs_t{base}"] for row in rows])
    out = {
        "bench": "pr9_thread_scaling",
        "engine_threads": counts,
        "workloads": rows,
        f"geomean_speedup_t{top}_vs_t{base}": round(geo, 3),
    }
    print(f"geomean t{top} vs t{base} speedup {round(geo, 3)}x")
    write_artifact(opts.out, out)

    failures = []
    for workload, threads, floor in requires:
        row = next((r for r in rows if r["workload"] == workload),
                   None)
        key = f"speedup_t{threads}_vs_t{base}"
        if row is None or key not in row:
            failures.append(f"{workload}:{threads} is not on the "
                            "workload/threads grid")
        elif row[key] <= floor:
            failures.append(f"{workload} t{threads} speedup "
                            f"{row[key]}x is not above {floor}x")
    if failures:
        sys.exit("bench_pr9: scaling requirement failed: " +
                 "; ".join(failures))


if __name__ == "__main__":
    main()
