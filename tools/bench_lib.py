"""Shared scaffolding for the dalorex bench runners.

bench_pr5.py (scan-mode speedups) and bench_pr9.py (thread scaling)
measure different axes of the same contract: execution knobs change
wall clock, never results. Both need the same three pieces — run one
scenario and capture its engine wall time, normalize a report down to
the byte-identity contract, and fold per-workload speedups into a
geomean — so they live here once.

Artifact schema convention (BENCH_prN.json): a top-level object with
a "bench" tag, one row per workload under "workloads", and one
"geomean_*" summary number, written by write_artifact.
"""

import json
import subprocess
import sys
import time


def run_point(dalorex, args, tag="bench"):
    """Run one scenario; return (wall_seconds, engine_wall, report).

    Appends --time-engine --json to `args` and parses the
    `engine_wall_seconds X` line the engine prints to stderr: process
    wall time includes knob-independent setup (RMAT generation, CSR
    build, rendering) that would dilute a speedup, so the engine's
    own wall time is the numerator benches compare.
    """
    argv = [dalorex] + list(args) + ["--time-engine", "--json"]
    start = time.monotonic()
    proc = subprocess.run(argv, capture_output=True, text=True)
    wall = time.monotonic() - start
    if proc.returncode != 0:
        sys.exit(f"{tag}: {' '.join(argv)} failed: {proc.stderr}")
    report = json.loads(proc.stdout)
    engine_wall = None
    for line in proc.stderr.splitlines():
        if line.startswith("engine_wall_seconds "):
            engine_wall = float(line.split()[1])
    if engine_wall is None:
        sys.exit(f"{tag}: {' '.join(argv)}: no engine_wall_seconds "
                 "line on stderr")
    return wall, engine_wall, report


def normalized(report):
    """A report minus the execution facets, for byte-identity diffs.

    Thread count, scan mode, barrier flavor, the rebalance knob and
    the stats.engine counters describe how the simulator ran, not
    what it simulated; everything else — every counter the energy
    model and the paper figures read — must match exactly between
    runs that differ only in those knobs.
    """
    clone = json.loads(json.dumps(report))
    machine = clone["machine"]
    for knob in ("engine_threads", "engine_scan", "engine_barrier",
                 "engine_rebalance"):
        if knob in machine:
            machine[knob] = None
    clone["stats"]["engine"] = None
    return clone


def geomean(values):
    """Geometric mean of a non-empty list of positive ratios."""
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def write_artifact(path, artifact):
    """Write the bench JSON (indent 2, trailing newline) and say so."""
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"-> {path}")
