#!/usr/bin/env python3
"""Smoke-test the `dalorex serve` daemon end to end.

Starts the daemon on a Unix socket, submits the same scenario twice
over the wire, runs it once via the standalone CLI, and asserts:

  1. the daemon's result payload is byte-identical to `dalorex --json`
     stdout (the serve contract ISSUE/README promise);
  2. the second request for the same dataset triggers zero additional
     dataset-cache builds (the warm-cache contract);
  3. a `stats` request answers with sane queue/client counters.

The stats response is written to --out (serve_stats.json) so CI keeps
one artifact tracking daemon health per run.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time

# One quick scenario: tiny synthetic RMAT graph, 4x4 mesh. The flags
# and the request fields below must describe the same point — the
# byte-diff in step 1 is what enforces that they do.
SCENARIO_FLAGS = ["--kernel", "bfs", "--scale", "8",
                  "--width", "4", "--height", "4"]
SCENARIO_FIELDS = {"kernel": "bfs", "scale": 8, "width": 4, "height": 4}


def connect(path, deadline_seconds=15.0):
    """Dial the daemon, retrying until it has bound the socket."""
    deadline = time.monotonic() + deadline_seconds
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError:
            sock.close()
            if time.monotonic() >= deadline:
                sys.exit(f"serve_smoke: daemon never bound {path}")
            time.sleep(0.05)


class LineChannel:
    """Newline-framed request/response over one connected socket."""

    def __init__(self, sock):
        self.sock = sock
        self.buffer = b""

    def send(self, obj):
        self.sock.sendall(json.dumps(obj).encode() + b"\n")

    def recv_line(self):
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(4096)
            if not chunk:
                sys.exit("serve_smoke: daemon closed the connection "
                         "mid-conversation")
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return line.decode()

    def wait_result(self, request_id):
        """Skip `accepted`, return the raw result line for the id."""
        while True:
            line = self.recv_line()
            head = json.loads(line)
            if head.get("id") != request_id:
                sys.exit(f"serve_smoke: unexpected id in {line}")
            if head["type"] == "accepted":
                continue
            if head["type"] == "error":
                sys.exit(f"serve_smoke: daemon rejected {request_id}: "
                         f"{head.get('error')}")
            if head["type"] != "result":
                sys.exit(f"serve_smoke: unexpected response {line}")
            return line


def result_payload(line, request_id):
    """The verbatim report bytes inside a result line."""
    prefix = f'{{"type":"result","id":{json.dumps(request_id)},"report":'
    if not line.startswith(prefix) or not line.endswith("}"):
        sys.exit(f"serve_smoke: malformed result line: {line[:120]}")
    return line[len(prefix):-1]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--dalorex", required=True,
                        help="path to the dalorex binary")
    parser.add_argument("--out", required=True,
                        help="stats artifact path (serve_stats.json)")
    opts = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="dalorex_serve_")
    sock_path = os.path.join(workdir, "smoke.sock")
    daemon = subprocess.Popen(
        [opts.dalorex, "serve", "--socket", sock_path, "--workers", "2"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    try:
        channel = LineChannel(connect(sock_path))

        # 1. Daemon result vs standalone CLI, byte for byte.
        channel.send({"type": "run", "id": "smoke1", **SCENARIO_FIELDS})
        payload = result_payload(channel.wait_result("smoke1"), "smoke1")
        standalone = subprocess.run(
            [opts.dalorex] + SCENARIO_FLAGS + ["--json"],
            capture_output=True, text=True)
        if standalone.returncode != 0:
            sys.exit(f"serve_smoke: standalone run failed: "
                     f"{standalone.stderr}")
        if payload + "\n" != standalone.stdout:
            sys.exit("serve_smoke: daemon result differs from the "
                     "standalone CLI:\n"
                     f"  daemon:     {payload[:200]}\n"
                     f"  standalone: {standalone.stdout[:200]}")
        print("serve_smoke: daemon result byte-identical to "
              "standalone run")

        # 2. Same scenario again: the dataset must come from cache.
        channel.send({"type": "run", "id": "smoke2", **SCENARIO_FIELDS})
        repeat = result_payload(channel.wait_result("smoke2"), "smoke2")
        if repeat != payload:
            sys.exit("serve_smoke: repeated request returned a "
                     "different report")

        # 3. Stats: cache shows one build + one hit for the scenario.
        channel.send({"type": "stats", "id": "smoke-stats"})
        stats_line = channel.recv_line()
        stats = json.loads(stats_line)
        if stats.get("type") != "stats" or stats.get("id") != "smoke-stats":
            sys.exit(f"serve_smoke: bad stats response: {stats_line}")
        body = stats["stats"]
        cache = body["dataset_cache"]
        if cache["builds"] != 1:
            sys.exit(f"serve_smoke: expected exactly 1 dataset build, "
                     f"daemon reports {cache['builds']}")
        if cache["hits"] < 1:
            sys.exit("serve_smoke: repeated request did not hit the "
                     "dataset cache")
        if body["runs_completed"] != 2 or body["queue_depth"] != 0:
            sys.exit(f"serve_smoke: unexpected counters: {stats_line}")
        with open(opts.out, "w") as handle:
            handle.write(stats_line + "\n")
        print(f"serve_smoke: dataset cache {cache['builds']} build, "
              f"{cache['hits']} hit(s) -> {opts.out}")

        # 4. Clean shutdown drains and exits 0.
        channel.send({"type": "shutdown", "id": "smoke-bye"})
        channel.recv_line()  # accepted
        code = daemon.wait(timeout=30)
        if code != 0:
            sys.exit(f"serve_smoke: daemon exited {code}: "
                     f"{daemon.stderr.read()}")
        print("serve_smoke: daemon drained and exited cleanly")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


if __name__ == "__main__":
    main()
