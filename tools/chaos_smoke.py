#!/usr/bin/env python3
"""Crash-recovery smoke for the fault-tolerant execution layer.

Phase 1 — journaled sweep vs kill -9:
  1. run a reference sweep to completion with --journal/--jsonl/--csv;
  2. run the same sweep again and SIGKILL it as soon as its journal
     holds at least one completed row (a real mid-run kill, no
     cooperation from the process);
  3. resume from the torn journal with --resume into fresh outputs;
  4. assert the resumed CSV and JSONL are byte-identical to the
     uninterrupted run's, and that every journaled row was replayed
     rather than recomputed ("resumed K of N" matches the journal).

Phase 2 — daemon kill under `sweep --via`:
  5. start `dalorex serve --journal-dir`, point the same sweep at it
     with --via + --journal, and SIGKILL the daemon mid-plan;
  6. restart the daemon on the same journal dir, resume the sweep;
  7. assert the final JSONL is byte-identical to the reference.
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time

# Slow enough per row to land a kill mid-run, fast enough for CI:
# three pagerank points at ~1-2 s each.
PLAN = ["--kernel", "pagerank", "--grid-size", "2x2,4x2,4x4",
        "--scale", "10", "--param", "iterations=300", "--threads", "1"]


def read_file(path):
    with open(path, "rb") as handle:
        return handle.read()


def journal_ok_rows(path):
    """Completed rows in a (possibly torn) journal file."""
    if not os.path.exists(path):
        return 0
    count = 0
    with open(path, "rb") as handle:
        for line in handle.read().split(b"\n"):
            if b'"type":"row"' in line and b'"status":"ok"' in line:
                count += 1
    return count


def sweep_args(dalorex, journal, jsonl, csv, extra=()):
    return ([dalorex, "sweep"] + PLAN +
            ["--journal", journal, "--jsonl", jsonl, "--csv", csv] +
            list(extra))


def wait_for_ok_row(journal, proc, deadline_seconds=120.0):
    """Block until the journal holds a completed row (or proc dies)."""
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        if journal_ok_rows(journal) >= 1:
            return True
        if proc.poll() is not None:
            return False  # finished (or died) before we could strike
        time.sleep(0.05)
    return False


def expect_same_bytes(what, reference, candidate):
    if read_file(reference) != read_file(candidate):
        sys.exit(f"chaos_smoke: {what} differ: "
                 f"{reference} vs {candidate}")
    print(f"chaos_smoke: {what} byte-identical "
          f"({len(read_file(reference))} bytes)")


def phase1_local_kill(dalorex, work):
    ref_journal = os.path.join(work, "ref.journal")
    ref_jsonl = os.path.join(work, "ref.jsonl")
    ref_csv = os.path.join(work, "ref.csv")
    subprocess.run(
        sweep_args(dalorex, ref_journal, ref_jsonl, ref_csv),
        check=True, stdout=subprocess.DEVNULL)
    total_rows = journal_ok_rows(ref_journal)
    if total_rows < 2:
        sys.exit("chaos_smoke: reference sweep has "
                 f"{total_rows} rows; plan too small to test resume")

    torn_journal = os.path.join(work, "torn.journal")
    victim = subprocess.Popen(
        sweep_args(dalorex, torn_journal,
                   os.path.join(work, "torn.jsonl"),
                   os.path.join(work, "torn.csv")),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    if not wait_for_ok_row(torn_journal, victim):
        victim.kill()
        sys.exit("chaos_smoke: sweep finished before the kill "
                 "landed; grow the plan")
    victim.send_signal(signal.SIGKILL)
    victim.wait()
    done_rows = journal_ok_rows(torn_journal)
    if not 1 <= done_rows < total_rows:
        sys.exit(f"chaos_smoke: kill landed too late: {done_rows} of "
                 f"{total_rows} rows already journaled")
    print(f"chaos_smoke: SIGKILLed sweep after {done_rows} of "
          f"{total_rows} rows")

    resumed_jsonl = os.path.join(work, "resumed.jsonl")
    resumed_csv = os.path.join(work, "resumed.csv")
    resume = subprocess.run(
        sweep_args(dalorex, os.path.join(work, "resumed.journal"),
                   resumed_jsonl, resumed_csv,
                   ["--resume", torn_journal]),
        check=True, stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE, text=True)
    match = re.search(r"resumed (\d+) of (\d+) rows", resume.stderr)
    if match is None:
        sys.exit("chaos_smoke: resume reported nothing:\n"
                 + resume.stderr)
    if int(match.group(1)) != done_rows:
        sys.exit(f"chaos_smoke: {done_rows} rows were journaled but "
                 f"{match.group(1)} replayed — rows were recomputed")
    expect_same_bytes("phase-1 JSONL rows", ref_jsonl, resumed_jsonl)
    expect_same_bytes("phase-1 CSV", ref_csv, resumed_csv)
    return ref_jsonl


def start_daemon(dalorex, sock, journal_dir):
    proc = subprocess.Popen(
        [dalorex, "serve", "--socket", sock, "--workers", "1",
         "--journal-dir", journal_dir],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        if os.path.exists(sock):
            return proc
        if proc.poll() is not None:
            sys.exit("chaos_smoke: daemon died on startup")
        time.sleep(0.05)
    proc.kill()
    sys.exit("chaos_smoke: daemon never bound its socket")


def phase2_daemon_kill(dalorex, work, ref_jsonl):
    sock = os.path.join(work, "chaos.sock")
    journal_dir = os.path.join(work, "daemon-journals")
    daemon = start_daemon(dalorex, sock, journal_dir)

    via_journal = os.path.join(work, "via.journal")
    client = subprocess.Popen(
        sweep_args(dalorex, via_journal,
                   os.path.join(work, "via.jsonl"),
                   os.path.join(work, "via.csv"), ["--via", sock]),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    if not wait_for_ok_row(via_journal, client):
        daemon.kill()
        client.kill()
        sys.exit("chaos_smoke: via-sweep finished before the daemon "
                 "kill landed; grow the plan")
    daemon.send_signal(signal.SIGKILL)
    daemon.wait()
    client.wait()  # loses its daemon, exits with an error
    done_rows = journal_ok_rows(via_journal)
    print(f"chaos_smoke: SIGKILLed daemon after {done_rows} "
          "client-journaled rows")

    daemon = start_daemon(dalorex, sock, journal_dir)
    final_jsonl = os.path.join(work, "final.jsonl")
    subprocess.run(
        sweep_args(dalorex, os.path.join(work, "final.journal"),
                   final_jsonl, os.path.join(work, "final.csv"),
                   ["--via", sock, "--resume", via_journal]),
        check=True, stdout=subprocess.DEVNULL)
    daemon.send_signal(signal.SIGTERM)
    if daemon.wait(timeout=60) != 0:
        sys.exit("chaos_smoke: restarted daemon exited nonzero")
    expect_same_bytes("phase-2 JSONL rows", ref_jsonl, final_jsonl)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--dalorex", required=True)
    parser.add_argument("--workdir", required=True)
    args = parser.parse_args()
    os.makedirs(args.workdir, exist_ok=True)
    for stale in os.listdir(args.workdir):
        path = os.path.join(args.workdir, stale)
        if os.path.isfile(path):
            os.remove(path)

    ref_jsonl = phase1_local_kill(args.dalorex, args.workdir)
    phase2_daemon_kill(args.dalorex, args.workdir, ref_jsonl)
    print("chaos_smoke: PASS")


if __name__ == "__main__":
    main()
