#!/usr/bin/env bash
# clang-tidy gate over src/ and tools/ (profile: .clang-tidy).
#
# usage: tools/lint.sh [-B BUILD_DIR] [--no-cache] [FILE...]
#
#   -B BUILD_DIR  build tree with compile_commands.json (default:
#                 build; configured on demand when missing)
#   --no-cache    re-lint every file even if unchanged
#   FILE...       lint only these files (default: every .cc under
#                 src/ and tools/)
#
# Exit code: 0 when clean or when clang-tidy is unavailable (the gate
# degrades to a skip on boxes without LLVM — CI installs it); 1 when
# any gated finding (WarningsAsErrors in .clang-tidy) fires.
#
# Results are cached under BUILD_DIR/lint-cache: a file is re-linted
# only when the SHA-256 of its content, the .clang-tidy profile or
# the clang-tidy version changes. Headers are covered through the
# TUs that include them (HeaderFilterRegex), so a header edit
# invalidates every dependent TU via the preprocessed-hash fallback:
# we hash the TU *and* its local includes.
set -u

cd "$(dirname "$0")/.."

BUILD_DIR=build
USE_CACHE=1
FILES=()
while [ $# -gt 0 ]; do
    case "$1" in
        -B) BUILD_DIR=$2; shift 2 ;;
        --no-cache) USE_CACHE=0; shift ;;
        -h|--help) sed -n '2,20p' "$0"; exit 0 ;;
        *) FILES+=("$1"); shift ;;
    esac
done

CLANG_TIDY=${CLANG_TIDY:-}
if [ -z "$CLANG_TIDY" ]; then
    for candidate in clang-tidy clang-tidy-19 clang-tidy-18 \
                     clang-tidy-17 clang-tidy-16 clang-tidy-15; do
        if command -v "$candidate" > /dev/null 2>&1; then
            CLANG_TIDY=$candidate
            break
        fi
    done
fi
if [ -z "$CLANG_TIDY" ]; then
    echo "lint: clang-tidy not found (set CLANG_TIDY=...); skipping" >&2
    exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint: configuring $BUILD_DIR for compile_commands.json" >&2
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null || exit 1
fi

if [ ${#FILES[@]} -eq 0 ]; then
    while IFS= read -r f; do
        FILES+=("$f")
    done < <(find src tools -name '*.cc' | sort)
fi

CACHE_DIR=$BUILD_DIR/lint-cache
mkdir -p "$CACHE_DIR"
# Any profile or tool change invalidates the whole cache.
PROFILE_HASH=$({ "$CLANG_TIDY" --version; cat .clang-tidy; } \
    | sha256sum | cut -d' ' -f1)

# Hash a TU plus the in-repo headers it includes, so header edits
# re-lint their dependents without a full dependency scanner.
tu_hash() {
    {
        cat "$1"
        grep -oE '#include "[^"]+"' "$1" 2> /dev/null \
            | sed 's/#include "//; s/"$//' \
            | while IFS= read -r inc; do
                for dir in src tools bench; do
                    [ -f "$dir/$inc" ] && cat "$dir/$inc"
                done
            done
        echo "$PROFILE_HASH"
    } | sha256sum | cut -d' ' -f1
}

status=0
linted=0
skipped=0
for f in "${FILES[@]}"; do
    stamp=$CACHE_DIR/$(echo "$f" | tr '/' '_').ok
    hash=$(tu_hash "$f")
    if [ "$USE_CACHE" = 1 ] && [ -f "$stamp" ] &&
       [ "$(cat "$stamp")" = "$hash" ]; then
        skipped=$((skipped + 1))
        continue
    fi
    linted=$((linted + 1))
    if "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "$f"; then
        echo "$hash" > "$stamp"
    else
        rm -f "$stamp"
        status=1
    fi
done

echo "lint: $linted linted, $skipped cached-clean" \
     "($CLANG_TIDY, profile $PROFILE_HASH)" >&2
exit $status
