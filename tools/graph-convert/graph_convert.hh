/**
 * @file
 * The `dalorex convert` subcommand: one-time ingestion of text graph
 * formats (edge list, MatrixMarket, DIMACS .gr) — or a snapshot of a
 * generated catalog dataset — into the versioned, checksummed binary
 * CSR format that `--dataset file:PATH` memory-maps.
 *
 * Kept out of src/ on the Katana `tools/graph-convert` model: the
 * simulator never depends on ingestion, only on the graphfile loader.
 */

#ifndef DALOREX_TOOLS_GRAPH_CONVERT_HH
#define DALOREX_TOOLS_GRAPH_CONVERT_HH

#include <iosfwd>
#include <string>

namespace dalorex
{
namespace convert
{

/**
 * Full `dalorex convert` behavior: parse argv (argv[0] skipped), run,
 * print to `out`; diagnostics go to `err`. Returns the process exit
 * code (0 ok, 2 on usage/conversion/verification errors).
 */
int convertMain(int argc, const char* const* argv, std::ostream& out,
                std::ostream& err);

/** The `dalorex convert --help` text. */
std::string convertUsageText();

} // namespace convert
} // namespace dalorex

#endif // DALOREX_TOOLS_GRAPH_CONVERT_HH
