#include "graph-convert/graph_convert.hh"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <vector>

#include "cli/cli.hh"
#include "common/text.hh"
#include "graph/datasets.hh"
#include "graph/graphfile.hh"
#include "graph/graphio.hh"

namespace dalorex
{
namespace convert
{
namespace
{

struct ConvertOptions
{
    std::string input;       //!< text graph path (or file to verify)
    std::string output;      //!< -o PATH
    std::string dataset;     //!< --dataset NAME[@SCALE] source
    unsigned datasetScale = 0;
    std::string name;        //!< --name override for the stored name
    TextReadOptions read;    //!< format + cleanup knobs
    std::uint64_t seed = 1;
    bool verify = false;
    bool help = false;
};

struct ConvertParseResult
{
    ConvertOptions options;
    bool ok = true;
    std::string error;
};

ConvertParseResult
failParse(const std::string& message)
{
    ConvertParseResult result;
    result.ok = false;
    result.error = message;
    return result;
}

ConvertParseResult
parseConvertArgs(int argc, const char* const* argv)
{
    ConvertParseResult result;
    ConvertOptions& o = result.options;

    auto needsValue = [](const std::string& flag) {
        static const std::vector<std::string> valued = {
            "-o", "--output", "--dataset", "--format", "--name",
            "--seed",
        };
        return std::find(valued.begin(), valued.end(), flag) !=
               valued.end();
    };

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        std::string value;
        if (needsValue(flag)) {
            if (i + 1 >= argc)
                return failParse(flag + " needs a value");
            value = argv[++i];
        }

        if (flag == "--help" || flag == "-h") {
            o.help = true;
        } else if (flag == "-o" || flag == "--output") {
            o.output = value;
        } else if (flag == "--dataset") {
            const std::size_t at = value.find('@');
            o.dataset = value.substr(0, at);
            if (o.dataset.empty())
                return failParse("--dataset needs a name");
            if (at != std::string::npos) {
                std::uint32_t scale = 0;
                if (!cli::parseU32(value.substr(at + 1), 4, 31,
                                   scale))
                    return failParse("dataset scale must be in "
                                     "[4, 31], got: " + value);
                o.datasetScale = scale;
            }
            if (!knownDataset(o.dataset) || isFileDataset(o.dataset))
                return failParse(
                    "unknown dataset: " + o.dataset +
                    " (want a catalog name; try --list-datasets)");
        } else if (flag == "--format") {
            if (!parseGraphTextFormat(value, o.read.format))
                return failParse(
                    "unknown format: " + value +
                    " (auto|edgelist|matrix-market|dimacs)");
        } else if (flag == "--name") {
            if (value.empty())
                return failParse("--name needs a non-empty value");
            o.name = value;
        } else if (flag == "--seed") {
            if (!cli::parseU64(value, o.seed))
                return failParse("--seed must be an integer, got " +
                                 value);
        } else if (flag == "--symmetrize") {
            o.read.symmetrize = true;
        } else if (flag == "--keep-self-loops") {
            o.read.removeSelfLoops = false;
        } else if (flag == "--keep-duplicates") {
            o.read.dedup = false;
        } else if (flag == "--verify") {
            o.verify = true;
        } else if (!flag.empty() && flag[0] == '-') {
            return failParse("unknown option: " + flag +
                             " (try --help)");
        } else {
            if (!o.input.empty())
                return failParse("more than one input file: " +
                                 o.input + " and " + flag);
            o.input = flag;
        }
    }
    return result;
}

double
millisSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::string
hex64(std::uint64_t v)
{
    std::ostringstream out;
    out << "0x" << std::hex << std::setfill('0') << std::setw(16)
        << v;
    return out.str();
}

std::string
ms(double v)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(1) << v << " ms";
    return out.str();
}

/**
 * Validate `path` and print its header block; also times a full
 * materializing load. Returns false (after printing the diagnostic)
 * on any validation failure.
 */
bool
verifyFile(const std::string& path, std::ostream& out,
           std::ostream& err)
{
    const GraphFileInfoResult info = inspectGraphFile(path);
    if (!info.ok) {
        err << "dalorex convert: " << info.error << "\n";
        return false;
    }
    const auto start = std::chrono::steady_clock::now();
    const GraphFileResult loaded = loadGraphFile(path);
    const double load_ms = millisSince(start);
    if (!loaded.ok) {
        err << "dalorex convert: " << loaded.error << "\n";
        return false;
    }
    const GraphFileHeader& h = info.header;
    out << "graph file        " << path << "\n";
    out << "format version    " << h.version << "\n";
    out << "name              " << h.name << "\n";
    out << "provenance        " << h.provenance << "\n";
    out << "vertices          " << h.numVertices << "\n";
    out << "edges             " << h.numEdges << "\n";
    out << "weighted          " << (h.weighted ? "yes" : "no")
        << "\n";
    out << "bytes             " << h.fileBytes << "\n";
    out << "rowptr hash       " << hex64(h.rowPtrHash) << "\n";
    out << "colidx hash       " << hex64(h.colIdxHash) << "\n";
    out << "weights hash      "
        << (h.weighted ? hex64(h.weightsHash) : std::string("-"))
        << "\n";
    out << "checksums         OK (header, meta, every section)\n";
    out << "load              " << ms(load_ms)
        << " (mmap + checksums + materialize)\n";
    return true;
}

} // namespace

std::string
convertUsageText()
{
    return
        "usage: dalorex convert [options] INPUT -o OUT\n"
        "       dalorex convert --dataset NAME[@SCALE] -o OUT\n"
        "       dalorex convert --verify FILE\n"
        "\n"
        "Converts a text graph into the versioned, checksummed binary\n"
        "CSR format that `dalorex --dataset file:PATH` memory-maps,\n"
        "or snapshots a generated catalog dataset to disk so sweeps\n"
        "load it instead of regenerating. Conversion is deterministic:\n"
        "the same input and options write byte-identical files.\n"
        "\n"
        "input:\n"
        "  INPUT                 text graph file to ingest\n"
        "  --format F            auto|edgelist|matrix-market|dimacs\n"
        "                        (default auto: by extension, then\n"
        "                        leading content)\n"
        "  --dataset NAME[@SCALE] generate a catalog dataset instead\n"
        "                        of reading INPUT (e.g. rmat18,\n"
        "                        amazon@15)\n"
        "  --seed N              generation seed for --dataset\n"
        "                        (default 1)\n"
        "\n"
        "cleanup (text inputs; defaults mirror the generators):\n"
        "  --symmetrize          store the undirected view\n"
        "  --keep-self-loops     keep (u, u) edges\n"
        "  --keep-duplicates     keep duplicate (u, v) edges\n"
        "\n"
        "output:\n"
        "  -o, --output PATH     binary CSR file to write\n"
        "  --name NAME           stored dataset name (default: the\n"
        "                        input stem or the generated name)\n"
        "  --verify              with -o: reload the written file and\n"
        "                        print its validated header; without\n"
        "                        -o: validate an existing FILE\n"
        "  --help                this text\n"
        "\n"
        "formats ingested:\n"
        "  edge list             'u v [w]' per line, #/% comments\n"
        "                        (SNAP downloads)\n"
        "  MatrixMarket          coordinate real|integer|pattern,\n"
        "                        general|symmetric (SuiteSparse)\n"
        "  DIMACS .gr            'p sp V E' + 'a u v w' arcs (road\n"
        "                        networks)\n"
        "\n"
        "examples:\n"
        "  dalorex convert soc-LiveJournal1.txt -o lj.dlx --verify\n"
        "  dalorex convert --dataset rmat18 -o rmat18.dlx\n"
        "  dalorex --kernel bfs --dataset file:rmat18.dlx --width 16"
        " --height 16\n";
}

int
convertMain(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err)
{
    const ConvertParseResult parsed = parseConvertArgs(argc, argv);
    if (!parsed.ok) {
        err << "dalorex convert: " << parsed.error << "\n";
        return 2;
    }
    const ConvertOptions& o = parsed.options;
    if (o.help) {
        out << convertUsageText();
        return 0;
    }

    // Verify-only mode: no output file, just validate an existing one.
    if (o.output.empty()) {
        if (o.verify && !o.input.empty())
            return verifyFile(o.input, out, err) ? 0 : 2;
        err << "dalorex convert: need -o PATH to convert, or "
               "--verify FILE to validate (try --help)\n";
        return 2;
    }
    if (!o.input.empty() && !o.dataset.empty()) {
        err << "dalorex convert: INPUT and --dataset are mutually "
               "exclusive\n";
        return 2;
    }
    if (o.input.empty() && o.dataset.empty()) {
        err << "dalorex convert: need an INPUT file or --dataset "
               "NAME (try --help)\n";
        return 2;
    }

    Dataset ds;
    const auto build_start = std::chrono::steady_clock::now();
    if (!o.dataset.empty()) {
        DatasetResult built =
            o.datasetScale > 0
                ? tryMakeDatasetAt(o.dataset, o.datasetScale, o.seed)
                : tryMakeDataset(o.dataset, o.seed);
        if (!built.ok) {
            err << "dalorex convert: " << built.error << "\n";
            return 2;
        }
        ds = std::move(built.dataset);
    } else {
        TextGraphResult read = readTextGraph(o.input, o.read);
        if (!read.ok) {
            err << "dalorex convert: " << read.error << "\n";
            return 2;
        }
        ds = std::move(read.dataset);
    }
    const double build_ms = millisSince(build_start);
    if (!o.name.empty())
        ds.name = o.name;

    const auto write_start = std::chrono::steady_clock::now();
    std::string error;
    if (!saveGraphFile(o.output, ds, error)) {
        err << "dalorex convert: " << error << "\n";
        return 2;
    }
    const double write_ms = millisSince(write_start);
    out << "converted         "
        << (!o.dataset.empty() ? o.dataset : o.input) << " -> "
        << o.output << "\n";
    out << "name              " << ds.name << "\n";
    out << "vertices          " << ds.graph.numVertices << "\n";
    out << "edges             " << ds.graph.numEdges << "\n";
    out << "weighted          "
        << (ds.graph.weighted() ? "yes" : "no") << "\n";
    out << (!o.dataset.empty() ? "generate          "
                               : "ingest            ")
        << ms(build_ms) << "\n";
    out << "write             " << ms(write_ms) << "\n";
    if (o.verify && !verifyFile(o.output, out, err))
        return 2;
    return 0;
}

} // namespace convert
} // namespace dalorex
