#!/usr/bin/env python3
"""Benchmark the active-set engine against the full-scan oracle.

Runs the 64x64 scaling-smoke workloads serially (engine-threads 1)
under both --engine-scan modes, records wall clock plus the engine's
scan-occupancy counters, and writes one JSON artifact (BENCH_pr5.json)
so CI tracks the perf trajectory with data instead of anecdotes.

The architectural stats (cycles, every counter the energy model
reads) are byte-identical between the modes — asserted here as well
as in determinism_test — so any wall-clock delta is pure simulator
speed.
"""

import argparse
import sys

from bench_lib import geomean, normalized, run_point, write_artifact

# The 64x64 workload set: the dense scaling-smoke pair (bfs,
# pagerank) plus the sparse-frontier/tail regimes active-set stepping
# targets (barrier bfs, label-correcting sssp tail, k-core peeling).
WORKLOADS = [
    ("bfs", ["--scale", "14"]),
    ("pagerank", ["--scale", "13", "--param", "iterations=5"]),
    ("bfs-barrier", ["--scale", "13", "--barrier"]),
    ("sssp", ["--scale", "13"]),
    ("kcore", ["--scale", "13"]),
]


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--dalorex", required=True,
                        help="path to the dalorex binary")
    parser.add_argument("--out", required=True,
                        help="output JSON path (BENCH_pr5.json)")
    opts = parser.parse_args()

    rows = []
    for name, extra in WORKLOADS:
        kernel = name.split("-barrier")[0]
        point = {"workload": name, "grid": "64x64"}
        reports = {}
        engine_walls = {}
        for scan in ("full", "active"):
            wall, engine_wall, report = run_point(
                opts.dalorex,
                ["--kernel", kernel, "--width", "64", "--height",
                 "64", "--engine-threads", "1", "--engine-scan",
                 scan] + extra,
                tag="bench_pr5")
            reports[scan] = report
            engine_walls[scan] = engine_wall
            engine = report["stats"]["engine"]
            point[scan] = {
                "wall_seconds": round(wall, 3),
                "engine_wall_seconds": round(engine_wall, 3),
                "cycles": report["stats"]["cycles"],
                "stepped_cycles": engine["stepped_cycles"],
                "tile_scans": engine["tile_scans"],
                "router_scans": engine["router_scans"],
                "tile_scan_occupancy":
                    engine["tile_scan_occupancy"],
                "router_scan_occupancy":
                    engine["router_scan_occupancy"],
                "active_tile_cycles_saved":
                    engine["active_tile_cycles_saved"],
            }
        if normalized(reports["full"]) != normalized(reports["active"]):
            sys.exit(f"bench_pr5: {name}: full and active scans "
                     "disagree on architectural stats")
        point["stats_identical"] = True
        # Ratio of the *unrounded* engine times: the stored 3-decimal
        # values can collapse sub-millisecond runs to 0.
        point["speedup_active_vs_full"] = round(
            engine_walls["full"] /
            max(engine_walls["active"], 1e-9), 3)
        rows.append(point)
        print(f"{name}: engine full "
              f"{point['full']['engine_wall_seconds']}s, "
              f"active {point['active']['engine_wall_seconds']}s "
              f"({point['speedup_active_vs_full']}x), "
              f"tile occupancy "
              f"{point['active']['tile_scan_occupancy']:.3f}")

    geo = geomean([row["speedup_active_vs_full"] for row in rows])
    out = {
        "bench": "pr5_active_set_scheduling",
        "engine_threads": 1,
        "workloads": rows,
        "geomean_speedup_active_vs_full": round(geo, 3),
    }
    print(f"geomean speedup {out['geomean_speedup_active_vs_full']}x")
    write_artifact(opts.out, out)


if __name__ == "__main__":
    main()
