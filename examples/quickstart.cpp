/**
 * @file
 * Quickstart: build a small graph, run BFS on a Dalorex machine, and
 * read the distances back.
 *
 * Walks through the whole public API surface in ~60 lines:
 *   1. build or generate a graph (graph/),
 *   2. pick a kernel and let the factory adapt the dataset (apps/),
 *   3. configure a machine — grid size, NoC, scheduling (sim/),
 *   4. run, validate against the sequential reference, and inspect
 *      performance and energy (energy/).
 */

#include <cstdio>

#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "energy/model.hh"
#include "graph/reference.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"

using namespace dalorex;

int
main()
{
    // 1. A small synthetic graph: 4,096 vertices, ~32K edges.
    RmatParams params;
    params.scale = 12;
    params.edgeFactor = 8;
    params.seed = 42;
    const Csr graph = rmatGraph(params);
    std::printf("graph: %u vertices, %u edges\n", graph.numVertices,
                graph.numEdges);

    // 2. BFS from the first connected vertex.
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();

    // 3. An 8x8 Dalorex grid with the paper's defaults: torus NoC,
    //    low-order data placement, traffic-aware TSU, barrierless.
    MachineConfig config;
    config.width = 8;
    config.height = 8;
    Machine machine(config, graph.numVertices, graph.numEdges);

    // 4. Run and inspect.
    const RunStats stats = machine.run(*app);
    const std::vector<Word> dist = app->gatherValues(machine);
    const std::vector<Word> expected =
        referenceBfs(setup.graph, setup.root);
    std::printf("run: %llu cycles, %u epoch(s), %.1f%% mean PU "
                "utilization\n",
                static_cast<unsigned long long>(stats.cycles),
                stats.epochs, 100.0 * stats.utilization());
    std::printf("validation: %s\n",
                dist == expected ? "matches sequential BFS"
                                 : "MISMATCH");

    std::uint64_t reached = 0;
    Word max_dist = 0;
    for (const Word d : dist) {
        if (d == infDist)
            continue;
        ++reached;
        max_dist = std::max(max_dist, d);
    }
    std::printf("result: %llu reachable vertices, max hop distance "
                "%u\n",
                static_cast<unsigned long long>(reached), max_dist);

    const EnergyBreakdown energy = dalorexEnergy(stats, config);
    std::printf("energy: %.3e J total (logic %.1f%%, memory %.1f%%, "
                "network %.1f%%)\n",
                energy.totalJ(), energy.logicPct(),
                energy.memoryPct(), energy.networkPct());
    std::printf("traffic: %llu messages, %llu flit-hops\n",
                static_cast<unsigned long long>(
                    stats.noc.messagesDelivered),
                static_cast<unsigned long long>(stats.noc.flitHops));
    return 0;
}
