/**
 * @file
 * SSSP on a synthetic road network — the kind of planar, high-diameter
 * workload the paper's intro motivates for shortest-path queries.
 *
 * The network is a W x H grid of intersections with 4-neighbor roads
 * of random travel time plus a sprinkle of random highways. Planar
 * graphs take many more frontier epochs than RMAT inputs, which makes
 * them the stress case for Dalorex's barrierless local frontiers: the
 * example runs the same query with and without the global epoch
 * barrier and reports the speedup.
 */

#include <cstdio>

#include "apps/sssp.hh"
#include "common/rng.hh"
#include "energy/model.hh"
#include "graph/csr.hh"
#include "graph/reference.hh"
#include "sim/machine.hh"

using namespace dalorex;

namespace
{

/** Build the road network: grid roads + random highways. */
Csr
buildRoadNet(std::uint32_t grid_w, std::uint32_t grid_h, Rng& rng)
{
    const VertexId n = grid_w * grid_h;
    EdgeList roads;
    auto at = [&](std::uint32_t x, std::uint32_t y) {
        return y * grid_w + x;
    };
    for (std::uint32_t y = 0; y < grid_h; ++y) {
        for (std::uint32_t x = 0; x < grid_w; ++x) {
            if (x + 1 < grid_w) {
                roads.emplace_back(at(x, y), at(x + 1, y));
                roads.emplace_back(at(x + 1, y), at(x, y));
            }
            if (y + 1 < grid_h) {
                roads.emplace_back(at(x, y), at(x, y + 1));
                roads.emplace_back(at(x, y + 1), at(x, y));
            }
        }
    }
    // Highways: long-distance links, two per ~hundred intersections.
    const std::uint32_t highways = n / 50;
    for (std::uint32_t i = 0; i < highways; ++i) {
        const auto a = static_cast<VertexId>(rng.below(n));
        const auto b = static_cast<VertexId>(rng.below(n));
        if (a == b)
            continue;
        roads.emplace_back(a, b);
        roads.emplace_back(b, a);
    }
    Csr net = buildCsr(n, roads);
    addRandomWeights(net, rng, 1, 30); // minutes per road segment
    return net;
}

RunStats
runQuery(const Csr& net, VertexId root, bool barrier)
{
    SsspApp app(net, root);
    MachineConfig config;
    config.width = 8;
    config.height = 8;
    config.barrier = barrier;
    Machine machine(config, net.numVertices, net.numEdges);
    RunStats stats = machine.run(app);
    // Validate against Dijkstra.
    const std::vector<Word> got = app.gatherValues(machine);
    const std::vector<Word> want = referenceSssp(net, root);
    if (got != want) {
        std::printf("ERROR: SSSP result mismatch!\n");
        std::exit(1);
    }
    return stats;
}

} // namespace

int
main()
{
    Rng rng(2026);
    const Csr net = buildRoadNet(192, 192, rng);
    const VertexId root = 0; // top-left intersection
    std::printf("road network: %u intersections, %u road segments\n",
                net.numVertices, net.numEdges);

    const RunStats barrierless = runQuery(net, root, false);
    const RunStats barriered = runQuery(net, root, true);

    std::printf("shortest-path query from intersection %u "
                "(validated against Dijkstra):\n",
                root);
    std::printf("  barrierless frontiers: %10llu cycles, "
                "%3u epoch(s), util %.1f%%\n",
                static_cast<unsigned long long>(barrierless.cycles),
                barrierless.epochs,
                100.0 * barrierless.utilization());
    std::printf("  global epoch barrier:  %10llu cycles, "
                "%3u epoch(s), util %.1f%%\n",
                static_cast<unsigned long long>(barriered.cycles),
                barriered.epochs, 100.0 * barriered.utilization());
    std::printf("  barrier removal speedup on this high-diameter "
                "graph: %.2fx\n",
                static_cast<double>(barriered.cycles) /
                    static_cast<double>(barrierless.cycles));
    std::printf("\nNote the trade the two modes make: barrierless "
                "runs at much higher PU\nutilization but re-explores "
                "intersections whose distance later improves\n"
                "(weighted grids have many near-tied paths). "
                "EXPERIMENTS.md quantifies this\nstaleness tax and "
                "where each mode wins.\n");
    return 0;
}
