/**
 * @file
 * Sparse-matrix power iteration built from repeated Dalorex SPMV runs
 * — the sparse-linear-algebra use the paper demonstrates with SPMV
 * (Sec. II / VII: "most advantageous for those bottlenecked by
 * pointer indirection ... e.g., SPMV").
 *
 * Each step computes y = A*x on the chip (integer arithmetic, exact),
 * then the host rescales y into the next x — exactly the
 * loosely-coupled accelerator flow of Sec. III-C, where the host owns
 * orchestration and the chip owns the memory-bound kernel.
 */

#include <cstdio>
#include <vector>

#include "apps/spmv.hh"
#include "common/rng.hh"
#include "graph/csr.hh"
#include "graph/reference.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"

using namespace dalorex;

namespace
{

/** One y = A*x on a fresh machine; returns y (validated). */
std::vector<Word>
spmvOnChip(const Csr& matrix, const std::vector<Word>& x,
           Cycle& cycles_out)
{
    SpmvApp app(matrix, x);
    MachineConfig config;
    config.width = 8;
    config.height = 8;
    Machine machine(config, matrix.numVertices, matrix.numEdges);
    const RunStats stats = machine.run(app);
    cycles_out = stats.cycles;
    std::vector<Word> y = app.gatherValues(machine);
    if (y != referenceSpmv(matrix, x)) {
        std::printf("ERROR: SPMV mismatch\n");
        std::exit(1);
    }
    return y;
}

} // namespace

int
main()
{
    // A sparse matrix stored column-major in CSR arrays: an RMAT
    // sparsity pattern with small integer values.
    RmatParams params;
    params.scale = 12; // 4,096 x 4,096
    params.edgeFactor = 8;
    params.seed = 7;
    Csr matrix = rmatGraph(params);
    Rng rng(7);
    addRandomWeights(matrix, rng, 1, 3);
    std::printf("matrix: %u x %u, %u non-zeros\n", matrix.numVertices,
                matrix.numVertices, matrix.numEdges);

    // Power iteration: x_{k+1} = normalize(A * x_k). The host
    // rescales to keep the integer pipeline exact and overflow-free.
    std::vector<Word> x(matrix.numVertices, 100);
    Cycle total_cycles = 0;
    const unsigned steps = 4;
    for (unsigned k = 0; k < steps; ++k) {
        Cycle cycles = 0;
        std::vector<Word> y = spmvOnChip(matrix, x, cycles);
        total_cycles += cycles;

        Word y_max = 0;
        for (const Word yi : y)
            y_max = std::max(y_max, yi);
        // Rescale the dominant component back to ~100.
        for (VertexId i = 0; i < matrix.numVertices; ++i)
            x[i] = y_max == 0 ? 0 : (y[i] * 100) / y_max;

        // Report the dominant entries of the current iterate.
        VertexId arg_max = 0;
        for (VertexId i = 0; i < matrix.numVertices; ++i)
            if (y[i] > y[arg_max])
                arg_max = i;
        std::printf("step %u: %8llu cycles, dominant row %u "
                    "(|y|_inf = %u)\n",
                    k + 1, static_cast<unsigned long long>(cycles),
                    arg_max, y_max);
    }
    std::printf("\n%u exact on-chip SPMV steps, %llu total cycles "
                "(all validated)\n",
                steps, static_cast<unsigned long long>(total_cycles));
    return 0;
}
