/**
 * @file
 * PageRank on a synthetic web crawl — the workload PageRank was built
 * for [34]. Generates a power-law "web" graph, ranks the pages on a
 * Dalorex machine (epoch-synchronized, as PageRank requires), prints
 * the top pages, and shows how rank mass concentrates on hubs.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/pagerank.hh"
#include "energy/model.hh"
#include "graph/reference.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"

using namespace dalorex;

int
main()
{
    // A strongly skewed RMAT graph is the standard web-graph model.
    RmatParams params;
    params.scale = 13; // 8,192 pages
    params.edgeFactor = 12;
    params.a = 0.6;
    params.b = 0.18;
    params.c = 0.18;
    params.seed = 99;
    const Csr web = rmatGraph(params);
    std::printf("web graph: %u pages, %u links\n", web.numVertices,
                web.numEdges);

    const double damping = 0.85;
    const unsigned iterations = 20;
    PageRankApp app(web, damping, iterations);

    MachineConfig config;
    config.width = 8;
    config.height = 8;
    Machine machine(config, web.numVertices, web.numEdges);
    const RunStats stats = machine.run(app);
    const std::vector<double> rank = app.gatherFloats(machine);

    // Validate against the sequential reference.
    const std::vector<double> want =
        referencePageRank(web, damping, iterations);
    for (VertexId v = 0; v < web.numVertices; ++v) {
        if (std::abs(rank[v] - want[v]) >
            std::max(1e-9, 1e-3 * want[v])) {
            std::printf("ERROR: rank mismatch at page %u\n", v);
            return 1;
        }
    }

    std::printf("ran %u synchronous epochs in %llu cycles "
                "(validated)\n\n",
                stats.epochs,
                static_cast<unsigned long long>(stats.cycles));

    // Top pages by rank.
    std::vector<VertexId> order(web.numVertices);
    for (VertexId v = 0; v < web.numVertices; ++v)
        order[v] = v;
    std::sort(order.begin(), order.end(),
              [&](VertexId a, VertexId b) {
                  return rank[a] > rank[b];
              });
    std::printf("top 10 pages by PageRank:\n");
    std::printf("  %-6s %-12s %-10s %-10s\n", "page", "rank",
                "in-links*", "out-links");
    // In-degree is approximated by counting incoming edges.
    std::vector<std::uint32_t> indeg(web.numVertices, 0);
    for (const VertexId dst : web.colIdx)
        ++indeg[dst];
    for (int i = 0; i < 10; ++i) {
        const VertexId page = order[i];
        std::printf("  %-6u %-12.3e %-10u %-10u\n", page, rank[page],
                    indeg[page], web.degree(page));
    }

    double top_mass = 0.0;
    const auto top = static_cast<std::size_t>(web.numVertices / 100);
    for (std::size_t i = 0; i < top; ++i)
        top_mass += rank[order[i]];
    double total = 0.0;
    for (const double r : rank)
        total += r;
    std::printf("\nthe top 1%% of pages hold %.1f%% of the total rank "
                "mass\n",
                100.0 * top_mass / total);

    const EnergyBreakdown energy = dalorexEnergy(stats, config);
    std::printf("energy: %.3e J (network share %.1f%%)\n",
                energy.totalJ(), energy.networkPct());
    return 0;
}
