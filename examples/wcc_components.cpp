/**
 * @file
 * Connected-component analysis of a fragmented social network — the
 * classic WCC use case. Builds a graph of many communities with
 * sparse bridges plus isolated users, labels the components on a
 * Dalorex machine, and reports the component-size distribution.
 *
 * WCC is also the kernel where the paper's barrierless execution
 * pays off soonest (it has the most epochs); the example runs both
 * modes and prints the comparison.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "apps/wcc.hh"
#include "common/rng.hh"
#include "graph/csr.hh"
#include "graph/reference.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"

using namespace dalorex;

namespace
{

/** Communities of random size, internally dense, rarely bridged. */
Csr
buildSocialNetwork(Rng& rng)
{
    const VertexId users = 40000;
    EdgeList follows;
    VertexId begin = 0;
    std::vector<std::pair<VertexId, VertexId>> communities;
    while (begin < users) {
        const auto size = static_cast<VertexId>(rng.range(3, 400));
        const VertexId end = std::min(begin + size, users);
        communities.emplace_back(begin, end);
        // Ring + random chords keep each community connected.
        for (VertexId v = begin; v + 1 < end; ++v)
            follows.emplace_back(v, v + 1);
        const VertexId span = end - begin;
        for (VertexId k = 0; k < span * 2; ++k) {
            const auto a =
                begin + static_cast<VertexId>(rng.below(span));
            const auto b =
                begin + static_cast<VertexId>(rng.below(span));
            if (a != b)
                follows.emplace_back(a, b);
        }
        begin = end;
    }
    // A few bridges merge some communities into larger components.
    for (unsigned k = 0; k < communities.size() / 6; ++k) {
        const auto& ca =
            communities[rng.below(communities.size())];
        const auto& cb =
            communities[rng.below(communities.size())];
        follows.emplace_back(
            ca.first + static_cast<VertexId>(
                           rng.below(ca.second - ca.first)),
            cb.first + static_cast<VertexId>(
                           rng.below(cb.second - cb.first)));
    }
    return buildCsr(users, follows, {.symmetrize = true});
}

RunStats
labelComponents(const Csr& net, bool barrier,
                std::vector<Word>& labels_out)
{
    WccApp app(net);
    MachineConfig config;
    config.width = 8;
    config.height = 8;
    config.barrier = barrier;
    Machine machine(config, net.numVertices, net.numEdges);
    RunStats stats = machine.run(app);
    labels_out = app.gatherValues(machine);
    return stats;
}

} // namespace

int
main()
{
    Rng rng(77);
    const Csr net = buildSocialNetwork(rng);
    std::printf("social network: %u users, %u follow edges "
                "(undirected view)\n",
                net.numVertices, net.numEdges);

    std::vector<Word> labels;
    const RunStats async = labelComponents(net, false, labels);
    std::vector<Word> labels_sync;
    const RunStats sync = labelComponents(net, true, labels_sync);

    if (labels != referenceWcc(net) || labels_sync != labels) {
        std::printf("ERROR: component labels mismatch\n");
        return 1;
    }

    std::map<Word, std::uint32_t> sizes;
    for (const Word label : labels)
        ++sizes[label];
    std::vector<std::uint32_t> by_size;
    for (const auto& [label, size] : sizes)
        by_size.push_back(size);
    std::sort(by_size.rbegin(), by_size.rend());

    std::printf("components: %zu total; largest: ", sizes.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(5, by_size.size());
         ++i)
        std::printf("%u ", by_size[i]);
    std::printf("users\n");
    std::uint32_t singletons = 0;
    for (const auto size : by_size)
        singletons += size == 1;
    std::printf("singleton users: %u\n\n", singletons);

    std::printf("barrierless:  %8llu cycles, %3u epoch(s), util "
                "%.1f%%\n",
                static_cast<unsigned long long>(async.cycles),
                async.epochs, 100.0 * async.utilization());
    std::printf("synchronized: %8llu cycles, %3u epoch(s), util "
                "%.1f%%\n",
                static_cast<unsigned long long>(sync.cycles),
                sync.epochs, 100.0 * sync.utilization());
    std::printf("barrier removal speedup: %.2fx (WCC crosses over "
                "first; see EXPERIMENTS.md)\n",
                static_cast<double>(sync.cycles) /
                    static_cast<double>(async.cycles));
    return 0;
}
