#include "bench_util.hh"

#include <cmath>
#include <cstring>

#include "apps/graph_app.hh"
#include "cli/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sweep/pool.hh"

namespace dalorex
{
namespace bench
{

BenchOptions
BenchOptions::parse(int argc, char** argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--full") {
            opts.full = true;
        } else if (arg == "--quick") {
            opts.full = false;
        } else if (arg == "--csv") {
            fatal_if(i + 1 >= argc, "--csv needs a directory");
            opts.csvDir = argv[++i];
        } else if (arg == "--seed") {
            fatal_if(i + 1 >= argc, "--seed needs a value");
            opts.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--threads") {
            fatal_if(i + 1 >= argc, "--threads needs a value");
            std::uint32_t v = 0;
            fatal_if(!cli::parseU32(argv[++i], 1, 256, v),
                     "--threads must be an integer in [1, 256], got ",
                     argv[i]);
            opts.threads = v;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "options:\n"
                "  --quick      small stand-ins (default)\n"
                "  --full       paper-scale stand-ins (slower)\n"
                "  --csv DIR    also write each table as CSV\n"
                "  --seed N     dataset seed (default 1)\n"
                "  --threads N  sweep worker threads (default: host "
                "cores)\n");
            std::exit(0);
        } else {
            fatal("unknown option: ", arg, " (try --help)");
        }
    }
    return opts;
}

unsigned
BenchOptions::workerThreads() const
{
    return threads > 0 ? threads : sweep::defaultWorkerThreads();
}

const char*
toString(AblationStep step)
{
    switch (step) {
      case AblationStep::tesseract:
        return "Tesseract";
      case AblationStep::tesseractLc:
        return "Tesseract-LC";
      case AblationStep::dataLocal:
        return "Data-Local";
      case AblationStep::basicTsu:
        return "Basic-TSU";
      case AblationStep::uniformDistr:
        return "Uniform-Distr";
      case AblationStep::trafficAware:
        return "Traffic-Aware";
      case AblationStep::torusNoc:
        return "Torus-NoC";
      case AblationStep::dalorexFull:
        return "Dalorex";
    }
    return "?";
}

std::vector<AblationStep>
dalorexSteps()
{
    return {AblationStep::dataLocal,    AblationStep::basicTsu,
            AblationStep::uniformDistr, AblationStep::trafficAware,
            AblationStep::torusNoc,     AblationStep::dalorexFull};
}

std::uint64_t
figProvisionBytes()
{
    return static_cast<std::uint64_t>(4.2 * 1024 * 1024);
}

MachineConfig
ablationConfig(AblationStep step, std::uint32_t width,
               std::uint32_t height)
{
    MachineConfig config;
    config.width = width;
    config.height = height;
    config.scratchpadProvisionBytes = figProvisionBytes();

    // Start from the Data-Local point: array chunking and task
    // splitting on the Dalorex fabric, but Tesseract's program flow —
    // interrupting invocations, blocked (high-order) placement,
    // round-robin arbitration, mesh NoC, per-epoch barriers.
    config.distribution = Distribution::highOrder;
    config.policy = SchedPolicy::roundRobin;
    config.topology = NocTopology::mesh;
    config.barrier = true;
    config.invokeOverhead = 50;

    switch (step) {
      case AblationStep::dataLocal:
        break;
      case AblationStep::basicTsu:
        config.invokeOverhead = 0;
        break;
      case AblationStep::uniformDistr:
        config.invokeOverhead = 0;
        config.distribution = Distribution::lowOrder;
        break;
      case AblationStep::trafficAware:
        config.invokeOverhead = 0;
        config.distribution = Distribution::lowOrder;
        config.policy = SchedPolicy::trafficAware;
        break;
      case AblationStep::torusNoc:
        config.invokeOverhead = 0;
        config.distribution = Distribution::lowOrder;
        config.policy = SchedPolicy::trafficAware;
        config.topology = NocTopology::torus;
        break;
      case AblationStep::dalorexFull:
        config.invokeOverhead = 0;
        config.distribution = Distribution::lowOrder;
        config.policy = SchedPolicy::trafficAware;
        config.topology = NocTopology::torus;
        config.barrier = false;
        break;
      default:
        panic("not a Dalorex ablation step: ", toString(step));
    }
    return config;
}

DalorexRun
runDalorex(const KernelSetup& setup, const MachineConfig& config)
{
    auto app = setup.makeApp();
    Machine machine(config, setup.graph.numVertices,
                    setup.graph.numEdges);
    DalorexRun run;
    run.stats = machine.run(*app);
    const ValidationResult valid = validateRun(setup, *app, machine);
    fatal_if(!valid, valid.detail);
    run.energy = dalorexEnergy(run.stats, config);
    run.seconds = runSeconds(run.stats);
    run.joules = run.energy.totalJ();
    return run;
}

BaselineRun
runTesseractBaseline(const KernelSetup& setup, bool large_cache)
{
    baseline::TesseractConfig config;
    config.largeCache = large_cache;
    BaselineRun run;
    run.result = baseline::runTesseract(setup, config);
    const ValidationResult valid =
        setup.floatResult()
            ? validateFloats(setup, run.result.floatValues)
            : validateWords(setup, run.result.values);
    fatal_if(!valid, valid.detail);
    run.seconds =
        static_cast<double>(run.result.cycles) / TechParams{}.freqHz;
    run.joules = run.result.energyJ(config);
    return run;
}

std::vector<Dataset>
figDatasets(const BenchOptions& opts)
{
    std::vector<Dataset> datasets;
    if (opts.full) {
        datasets.push_back(makeDatasetAt("amazon", 18, opts.seed));
        datasets.push_back(makeDatasetAt("wiki", 18, opts.seed));
        datasets.push_back(makeDatasetAt("livejournal", 18,
                                         opts.seed));
        Dataset rmat = makeDataset("rmat18", opts.seed);
        rmat.name = "R22s"; // scaled stand-in for the paper's RMAT-22
        datasets.push_back(std::move(rmat));
    } else {
        for (const char* name : {"amazon", "wiki", "livejournal"})
            datasets.push_back(makeDatasetAt(
                name, defaultQuickScale(name), opts.seed));
        Dataset rmat = makeDataset("rmat13", opts.seed);
        rmat.name = "R22s";
        datasets.push_back(std::move(rmat));
    }
    return datasets;
}

} // namespace bench
} // namespace dalorex
