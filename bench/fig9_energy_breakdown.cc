/**
 * @file
 * Fig. 9 reproduction: breakdown of the energy consumed by computing
 * logic, SRAM cells and network communication (routing + wires), per
 * application and dataset, as a percentage of the total.
 *
 * Expected shapes (Sec. V-C): the network dominates — Dalorex pairs
 * energy-efficient memories and very simple PUs with a NoC whose share
 * grows with grid size (longer average distance per vertex update on
 * the large grid).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"

using namespace dalorex;
using namespace dalorex::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);

    std::vector<Dataset> datasets = figDatasets(opts);
    datasets.erase(datasets.begin()); // Fig. 9 uses WK, LJ, R22, R26
    Dataset big = makeDataset(opts.full ? "rmat17" : "rmat15",
                              opts.seed);
    big.name = "R26s";
    const std::uint32_t big_side = opts.full ? 64 : 32;

    std::printf("Fig. 9: energy breakdown (%% of total), %s scale\n\n",
                opts.full ? "full" : "quick");

    Table table({"kernel", "dataset", "tiles", "logic %", "memory %",
                 "network %", "total J"});

    for (const Kernel kernel : allKernels()) {
        auto run_row = [&](const Dataset& ds, std::uint32_t side) {
            KernelSetup setup =
                makeKernelSetup(kernel, ds.graph, opts.seed);
            setup.iterations = 5;
            MachineConfig config = ablationConfig(
                AblationStep::dalorexFull, side, side);
            if (side > 32) {
                config.topology = NocTopology::torusRuche;
                config.rucheFactor = 4;
            }
            const DalorexRun run = runDalorex(setup, config);
            table.addRow({toString(kernel), ds.name,
                          std::to_string(side * side),
                          Table::fmt(run.energy.logicPct(), 1),
                          Table::fmt(run.energy.memoryPct(), 1),
                          Table::fmt(run.energy.networkPct(), 1),
                          Table::sci(run.energy.totalJ(), 3)});
        };
        for (const Dataset& ds : datasets)
            run_row(ds, 16);
        run_row(big, big_side);
    }

    table.print();
    maybeWriteCsv(opts, table, "fig9_energy_breakdown");
    std::printf("\nExpected shape: network is the largest share and "
                "grows with grid size.\n");
    return 0;
}
