/**
 * @file
 * Fig. 9 reproduction: breakdown of the energy consumed by computing
 * logic, SRAM cells and network communication (routing + wires), per
 * application and dataset, as a percentage of the total.
 *
 * A thin wrapper over the sweep orchestrator: all kernels over the
 * WK/LJ/R22 stand-ins at 16x16 plus the large-grid RMAT point, with
 * the logic/memory/network percentage columns of the shared aggregate
 * schema.
 *
 * Expected shapes (Sec. V-C): the network dominates — Dalorex pairs
 * energy-efficient memories and very simple PUs with a NoC whose share
 * grows with grid size (longer average distance per vertex update on
 * the large grid).
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "sweep/sweep.hh"

using namespace dalorex;
using namespace dalorex::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);

    std::printf("Fig. 9: energy breakdown (%% of total), %s scale\n\n",
                opts.full ? "full" : "quick");

    // Fig. 9 uses WK, LJ, R22 (no AZ) on 16x16...
    sweep::Plan plan;
    plan.kernels = paperKernels(); // the paper's five (tag-selected)
    plan.datasets = {{"wiki", opts.full ? 0 : defaultQuickScale("wiki")},
                     {"livejournal",
                      opts.full ? 0 : defaultQuickScale("livejournal")},
                     {opts.full ? "rmat18" : "rmat13", 0}};
    plan.grids = {{16, 16}};
    plan.seed = opts.seed;
    plan.validate = true; // as the old loop: every run checked
    plan.params.push_back({"iterations", 5}); // bench budget
    plan.scratchpadProvisionBytes = figProvisionBytes();

    // ...plus the large-grid RMAT-26 stand-in (ruche above 32x32).
    sweep::Plan big = plan;
    big.datasets = {{opts.full ? "rmat17" : "rmat15", 0}};
    big.grids = {opts.full ? sweep::GridShape{64, 64}
                           : sweep::GridShape{32, 32}};
    if (opts.full) {
        big.topologies = {NocTopology::torusRuche};
        big.rucheFactor = 4;
    }

    std::vector<cli::Report> reports;
    for (const sweep::Plan* p : {&plan, &big}) {
        const sweep::RunResult run =
            sweep::run(*p, opts.workerThreads());
        fatal_if(!run.ok, "fig9 sweep: ", run.error);
        fatal_if(!run.allRowsOk(), "fig9 sweep: ",
                 run.rowErrors().front());
        const std::vector<cli::Report> ok = run.okReports();
        reports.insert(reports.end(), ok.begin(), ok.end());
    }

    // Every group is its own baseline grid; no cross-grid speedup.
    const sweep::AggregateResult agg = sweep::aggregate(
        reports, {16, 16}, sweep::MissingBaseline::skip);
    fatal_if(!agg.ok, "fig9 aggregate: ", agg.error);
    const Table table = sweep::toTable(agg.rows);
    table.print();
    sweep::writeCsvIfEnabled(opts.csvDir, table,
                             "fig9_energy_breakdown");
    std::printf("\nExpected shape: network is the largest share and "
                "grows with grid size.\n");
    return 0;
}
