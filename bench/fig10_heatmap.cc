/**
 * @file
 * Fig. 10 reproduction: heatmaps of PU and router utilization (as a
 * percentage of runtime) while running SSSP on the RMAT-22 stand-in
 * over a 16x16 grid, with a mesh versus a torus NoC.
 *
 * Expected shapes (Sec. V-C): the mesh shows router contention toward
 * the center of the grid, starving the PUs; the torus is uniform,
 * "unleashing the full potential of the PUs".
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace dalorex;
using namespace dalorex::bench;

namespace
{

/** Render one utilization grid as an ASCII heatmap + CSV table. */
void
printHeatmap(const BenchOptions& opts, const char* title,
             const std::string& csv_name,
             const std::vector<Cycle>& per_tile, Cycle total,
             std::uint32_t width, std::uint32_t height)
{
    std::printf("%s\n", title);
    const char shades[] = " .:-=+*#%@";
    Table csv([&] {
        std::vector<std::string> headers = {"y\\x"};
        for (std::uint32_t x = 0; x < width; ++x)
            headers.push_back(std::to_string(x));
        return headers;
    }());
    double sum = 0.0;
    double peak = 0.0;
    for (std::uint32_t y = 0; y < height; ++y) {
        std::vector<std::string> row = {std::to_string(y)};
        std::printf("  ");
        for (std::uint32_t x = 0; x < width; ++x) {
            const double pct =
                100.0 *
                static_cast<double>(per_tile[y * width + x]) /
                static_cast<double>(total);
            sum += pct;
            peak = std::max(peak, pct);
            const int shade = std::min<int>(
                9, static_cast<int>(pct / 10.0));
            std::printf("%c%c", shades[shade], shades[shade]);
            row.push_back(Table::fmt(pct, 1));
        }
        std::printf("\n");
        csv.addRow(std::move(row));
    }
    std::printf("  mean %.1f%%, peak %.1f%% "
                "(scale: ' '=0-10%% ... '@'=90-100%%)\n\n",
                sum / (width * height), peak);
    sweep::writeCsvIfEnabled(opts.csvDir, csv, csv_name);
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);

    const Dataset ds =
        makeDataset(opts.full ? "rmat18" : "rmat16", opts.seed);
    const KernelSetup setup =
        makeKernelSetup("sssp", ds.graph, opts.seed);
    const std::uint32_t side = 16;

    std::printf("Fig. 10: PU and router utilization heatmaps, SSSP "
                "on %s (R22 stand-in), %ux%u\n\n",
                ds.name.c_str(), side, side);

    for (const NocTopology topology :
         {NocTopology::mesh, NocTopology::torus}) {
        MachineConfig config =
            ablationConfig(AblationStep::dalorexFull, side, side);
        config.topology = topology;
        const DalorexRun run = runDalorex(setup, config);
        const std::string tag = toString(topology);
        std::printf("== %s: %llu cycles ==\n", tag.c_str(),
                    static_cast<unsigned long long>(run.stats.cycles));
        printHeatmap(opts, "PU utilization (% of runtime)",
                     "fig10_pu_" + tag, run.stats.puBusyPerTile,
                     run.stats.cycles, side, side);
        printHeatmap(opts, "Router utilization (% of runtime)",
                     "fig10_router_" + tag,
                     run.stats.routerActivePerTile, run.stats.cycles,
                     side, side);
    }

    std::printf("Expected shape: mesh routers congest toward the "
                "center and PUs starve;\ntorus utilization is "
                "uniform.\n");
    return 0;
}
