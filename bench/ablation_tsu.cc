/**
 * @file
 * TSU scheduling ablation (DESIGN.md Sec. 6): round-robin vs the
 * occupancy-based traffic-aware policy, and a sweep of the policy's
 * two thresholds (IQ-high, OQ-low). The paper reports that the
 * occupancy-based priority beat every static priority and round-robin
 * scheme it was tested against (Sec. III-E).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"

using namespace dalorex;
using namespace dalorex::bench;

namespace
{

Cycle
runWith(const KernelSetup& setup, SchedPolicy policy, double iq_high,
        double oq_low)
{
    MachineConfig config =
        ablationConfig(AblationStep::dalorexFull, 16, 16);
    config.policy = policy;
    config.thresholds.iqHigh = iq_high;
    config.thresholds.oqLow = oq_low;
    return runDalorex(setup, config).stats.cycles;
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    const Dataset ds =
        makeDatasetAt("wiki", opts.full ? 17 : 15, opts.seed);

    std::printf("TSU scheduling ablation on %s (V=%u, E=%u), 16x16\n\n",
                ds.name.c_str(), ds.graph.numVertices,
                ds.graph.numEdges);

    Table table({"kernel", "round-robin cyc", "traffic-aware cyc",
                 "speedup"});
    std::vector<double> gains;
    for (const char* kernel_name : {"bfs", "sssp", "wcc"}) {
        const KernelInfo* kernel = kernelOrDie(kernel_name);
        const KernelSetup setup =
            makeKernelSetup(*kernel, ds.graph, opts.seed);
        const Cycle rr =
            runWith(setup, SchedPolicy::roundRobin, 0.75, 0.25);
        const Cycle ta =
            runWith(setup, SchedPolicy::trafficAware, 0.75, 0.25);
        table.addRow({kernel->display, std::to_string(rr),
                      std::to_string(ta),
                      Table::fmt(double(rr) / double(ta), 3)});
        gains.push_back(double(rr) / double(ta));
    }
    table.print();
    sweep::writeCsvIfEnabled(opts.csvDir, table, "ablation_tsu_policy");

    std::printf("\nThreshold sweep (SSSP): cycles per "
                "(IQ-high, OQ-low) pair\n\n");
    Table threshold_table({"iqHigh\\oqLow", "0.125", "0.25", "0.5"});
    const KernelSetup setup =
        makeKernelSetup("sssp", ds.graph, opts.seed);
    for (const double iq_high : {0.5, 0.75, 0.9}) {
        std::vector<std::string> row = {Table::fmt(iq_high, 2)};
        for (const double oq_low : {0.125, 0.25, 0.5}) {
            row.push_back(std::to_string(runWith(
                setup, SchedPolicy::trafficAware, iq_high, oq_low)));
        }
        threshold_table.addRow(std::move(row));
    }
    threshold_table.print();
    sweep::writeCsvIfEnabled(opts.csvDir, threshold_table,
                             "ablation_tsu_thresholds");
    std::printf("\nThe paper's defaults are iqHigh=0.75, oqLow=0.25 "
                "(nearly full / nearly empty).\n");
    return 0;
}
