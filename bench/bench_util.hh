/**
 * @file
 * Shared plumbing for the figure-reproduction benches: option parsing,
 * the Fig. 5 ablation ladder, dataset sets at quick/full scale, and
 * validated run helpers for both the Dalorex engine and the Tesseract
 * baseline.
 */

#ifndef DALOREX_BENCH_BENCH_UTIL_HH
#define DALOREX_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "apps/kernels.hh"
#include "baseline/tesseract.hh"
#include "common/table.hh"
#include "energy/model.hh"
#include "graph/datasets.hh"
#include "sim/machine.hh"
#include "sweep/aggregate.hh"

namespace dalorex
{
namespace bench
{

/** Command-line options shared by every bench. */
struct BenchOptions
{
    /** Paper-scale stand-ins (slower); default is quick scale. */
    bool full = false;
    /** Directory for CSV mirrors of each printed table ("" = off). */
    std::string csvDir;
    /** Dataset/weight seed. */
    std::uint64_t seed = 1;
    /** Worker threads for sweep-based drivers (0 = host cores). */
    unsigned threads = 0;

    /** Parse argv; fatal() on unknown flags. */
    static BenchOptions parse(int argc, char** argv);

    /** threads, defaulted to the host core count and clamped >= 1. */
    unsigned workerThreads() const;
};

/** The Fig. 5 ablation ladder, left to right. */
enum class AblationStep
{
    tesseract,    //!< HMC baseline
    tesseractLc,  //!< + large SRAM caches, no DRAM background
    dataLocal,    //!< Dalorex chunking, interrupting invocations
    basicTsu,     //!< + non-interrupting TSU, round-robin
    uniformDistr, //!< + low-order vertex placement
    trafficAware, //!< + occupancy-based scheduling
    torusNoc,     //!< + torus instead of mesh
    dalorexFull,  //!< + barrierless frontiers
};

const char* toString(AblationStep step);

/** The six Dalorex-engine steps (tesseract* run on the baseline). */
std::vector<AblationStep> dalorexSteps();

/** MachineConfig realizing one Dalorex ablation step. */
MachineConfig ablationConfig(AblationStep step, std::uint32_t width,
                             std::uint32_t height);

/**
 * The figure machines' per-tile scratchpad provision: 4.2MB
 * (Sec. IV-B, "a 16x16 Dalorex grid with 4.2MB of memory per tile").
 */
std::uint64_t figProvisionBytes();

/** One validated Dalorex run with derived energy. */
struct DalorexRun
{
    RunStats stats;
    EnergyBreakdown energy;
    double seconds = 0.0;
    double joules = 0.0;
};

/**
 * Run `setup` on a machine with `config`; validates the kernel output
 * against the sequential reference (fatal on mismatch).
 */
DalorexRun runDalorex(const KernelSetup& setup,
                      const MachineConfig& config);

/** One validated Tesseract-baseline run. */
struct BaselineRun
{
    baseline::TesseractResult result;
    double seconds = 0.0;
    double joules = 0.0;
};

/** Run `setup` on the Tesseract model (validated). */
BaselineRun runTesseractBaseline(const KernelSetup& setup,
                                 bool large_cache);

/**
 * The Fig. 5/8/9 dataset set: AZ, WK, LJ and the RMAT entry (the
 * paper's R22). Quick scale uses 2^15..2^16-vertex stand-ins; full
 * scale uses the 2^18 stand-ins of DESIGN.md.
 */
std::vector<Dataset> figDatasets(const BenchOptions& opts);

} // namespace bench
} // namespace dalorex

#endif // DALOREX_BENCH_BENCH_UTIL_HH
