/**
 * @file
 * Fig. 6 reproduction: strong scaling of BFS over RMAT datasets —
 * runtime (cycles) and total energy (J) for grids from 1 tile up to
 * 32x32 (64x64 with --full), with the per-tile memory label the paper
 * prints next to each energy point.
 *
 * Expected shapes (Sec. V-B): runtime scales close to linearly until a
 * tile holds ~1,000 vertices ("tiles starving for work", not memory
 * bandwidth); energy reaches its minimum around ~10,000 vertices per
 * tile and rises past it as PU/SRAM leakage of underutilized tiles
 * accumulates.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"

using namespace dalorex;
using namespace dalorex::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);

    // Stand-ins for the paper's RMAT-16/22/25/26 ladder.
    const std::vector<std::string> names =
        opts.full
            ? std::vector<std::string>{"rmat12", "rmat14", "rmat16",
                                       "rmat18"}
            : std::vector<std::string>{"rmat10", "rmat12", "rmat14",
                                       "rmat16"};
    std::vector<std::uint32_t> grid_sides = {1, 2, 4, 8, 16, 32};
    if (opts.full)
        grid_sides.push_back(64);

    std::printf("Fig. 6: strong scaling of BFS on RMAT datasets "
                "(%s scale)\n\n",
                opts.full ? "full" : "quick");

    Table table({"dataset", "tiles", "cycles", "runtime_s",
                 "energy_J", "KB/tile", "vertices/tile", "PU util"});

    for (const std::string& name : names) {
        const Dataset ds = makeDataset(name, opts.seed);
        const KernelSetup setup =
            makeKernelSetup(Kernel::bfs, ds.graph, opts.seed);
        double prev_cycles = 0.0;
        for (const std::uint32_t side : grid_sides) {
            const std::uint32_t tiles = side * side;
            // The paper stops a line once tiles starve (well past the
            // ~1K vertices/tile knee); we stop below 16
            // vertices/tile.
            if (ds.graph.numVertices / tiles < 16 && tiles > 1)
                break;
            MachineConfig config = ablationConfig(
                AblationStep::dalorexFull, side, side);
            // The paper uses a regular torus up to 32x32 and adds
            // ruche channels above (Sec. IV-A).
            if (side > 32) {
                config.topology = NocTopology::torusRuche;
                config.rucheFactor = 4;
            }
            const DalorexRun run = runDalorex(setup, config);
            const double kb_per_tile =
                static_cast<double>(run.stats.scratchpadBytesMax) /
                1024.0;
            table.addRow(
                {ds.name, std::to_string(tiles),
                 std::to_string(run.stats.cycles),
                 Table::sci(run.seconds, 2),
                 Table::sci(run.joules, 3),
                 Table::fmt(kb_per_tile, 0),
                 std::to_string(ds.graph.numVertices / tiles),
                 Table::fmt(run.stats.utilization(), 3)});
            if (prev_cycles > 0.0) {
                // shape check: more tiles should not be slower by
                // more than a whisker until the starvation limit
                (void)prev_cycles;
            }
            prev_cycles = static_cast<double>(run.stats.cycles);
        }
    }

    table.print();
    maybeWriteCsv(opts, table, "fig6_scaling");
    std::printf("\nExpected shape: near-linear runtime scaling until "
                "~1K vertices/tile;\nenergy minimum near ~10K "
                "vertices/tile (leakage of starving tiles past "
                "it).\n");
    return 0;
}
