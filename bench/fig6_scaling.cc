/**
 * @file
 * Fig. 6 reproduction: strong scaling of BFS over RMAT datasets —
 * runtime (cycles) and total energy (J) for grids from 1 tile up to
 * 32x32 (64x64 with --full), with the per-tile memory the paper
 * prints next to each energy point.
 *
 * A thin wrapper over the sweep orchestrator: one Plan per dataset
 * (its grid axis stops where tiles starve), executed on the worker
 * pool and rendered through the shared aggregate schema — speedup and
 * parallel efficiency are measured against the 1-tile baseline.
 *
 * Expected shapes (Sec. V-B): runtime scales close to linearly until a
 * tile holds ~1,000 vertices ("tiles starving for work", not memory
 * bandwidth); energy reaches its minimum around ~10,000 vertices per
 * tile and rises past it as PU/SRAM leakage of underutilized tiles
 * accumulates.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "sweep/sweep.hh"

using namespace dalorex;
using namespace dalorex::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);

    // Stand-ins for the paper's RMAT-16/22/25/26 ladder.
    const std::vector<std::string> names =
        opts.full
            ? std::vector<std::string>{"rmat12", "rmat14", "rmat16",
                                       "rmat18"}
            : std::vector<std::string>{"rmat10", "rmat12", "rmat14",
                                       "rmat16"};
    std::vector<std::uint32_t> grid_sides = {1, 2, 4, 8, 16, 32};
    if (opts.full)
        grid_sides.push_back(64);

    std::printf("Fig. 6: strong scaling of BFS on RMAT datasets "
                "(%s scale)\n\n",
                opts.full ? "full" : "quick");

    std::vector<cli::Report> reports;
    for (const std::string& name : names) {
        const unsigned scale =
            static_cast<unsigned>(std::stoul(name.substr(4)));
        const std::uint32_t vertices = 1u << scale;

        sweep::Plan plan;
        plan.kernels = {kernelOrDie("bfs")};
        plan.datasets = {{name, 0}};
        plan.seed = opts.seed;
        plan.validate = true; // as the old loop: every run checked
        plan.scratchpadProvisionBytes = figProvisionBytes();
        // The paper uses a regular torus up to 32x32 and adds ruche
        // channels above (Sec. IV-A).
        sweep::Plan ruche = plan;
        ruche.topologies = {NocTopology::torusRuche};
        ruche.rucheFactor = 4;
        for (const std::uint32_t side : grid_sides) {
            // The paper stops a line once tiles starve (well past the
            // ~1K vertices/tile knee); we stop below 16 vertices/tile.
            if (side > 1 && vertices / (side * side) < 16)
                break;
            (side <= 32 ? plan : ruche)
                .grids.push_back({side, side});
        }

        for (const sweep::Plan* p : {&plan, &ruche}) {
            if (p->grids.empty())
                continue;
            const sweep::RunResult run =
                sweep::run(*p, opts.workerThreads());
            fatal_if(!run.ok, "fig6 sweep: ", run.error);
            fatal_if(!run.allRowsOk(), "fig6 sweep: ",
                     run.rowErrors().front());
            const std::vector<cli::Report> ok = run.okReports();
            reports.insert(reports.end(), ok.begin(), ok.end());
        }
    }

    // The ruche tail has no 1x1 row in its group; skip its speedup.
    const sweep::AggregateResult agg = sweep::aggregate(
        reports, {1, 1}, sweep::MissingBaseline::skip);
    fatal_if(!agg.ok, "fig6 aggregate: ", agg.error);
    const Table table = sweep::toTable(agg.rows);
    table.print();
    sweep::writeCsvIfEnabled(opts.csvDir, table, "fig6_scaling");

    // Engine-work companion table: scan-occupancy counters next to
    // the simulated cycles, so the figure distinguishes "the machine
    // simulated faster" (cycles) from "the simulator ran faster"
    // (stepped cycles / scan occupancy under active-set stepping).
    Table engine({"dataset", "grid", "cycles", "stepped_cycles",
                  "tile_scan_occ", "router_scan_occ",
                  "tile_visits_saved", "router_visits_saved"});
    for (const sweep::Row& row : agg.rows) {
        const cli::Report& r = row.report;
        const RunStats& s = r.stats;
        engine.addRow(
            {r.datasetName,
             sweep::toString({r.options.machine.width,
                              r.options.machine.height}),
             std::to_string(s.cycles),
             std::to_string(s.engineSteppedCycles),
             Table::num(s.tileScanOccupancy()),
             Table::num(s.routerScanOccupancy()),
             std::to_string(s.activeTileCyclesSaved),
             std::to_string(s.activeRouterCyclesSaved)});
    }
    std::printf("\nEngine scan work (simulator metric, not "
                "simulated time):\n");
    engine.print();
    sweep::writeCsvIfEnabled(opts.csvDir, engine,
                             "fig6_scaling_engine");
    std::printf("\nExpected shape: near-linear runtime scaling until "
                "~1K vertices/tile;\nenergy minimum near ~10K "
                "vertices/tile (leakage of starving tiles past "
                "it).\n");
    return 0;
}
