/**
 * @file
 * Fig. 5 reproduction: performance and energy improvements over
 * Tesseract for the eight-step ablation ladder, four applications
 * (BFS, WCC, PageRank, SSSP) and four datasets, all at 256 processing
 * cores (16x16 Dalorex grid vs 16-cube HMC).
 *
 * Prints one improvement table per application for performance and for
 * energy (factors over the Tesseract baseline, the paper's Y-axis),
 * then the in-text geomean ladder summary (Sec. V-A: Data-Local 6.2x,
 * TSU 4.7x, Uniform-Distr 2.6x, Traffic-Aware 1.7x, NoC+barrierless
 * 1.8x -> 221x; energy 16x / 5.2x / 3.9x -> 325x).
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace dalorex;
using namespace dalorex::bench;

namespace
{

struct CellResult
{
    double seconds = 0.0;
    double joules = 0.0;
};

/** results[step][dataset] for one kernel. */
using Ladder = std::map<AblationStep, std::vector<CellResult>>;

std::vector<AblationStep>
allSteps()
{
    std::vector<AblationStep> steps = {AblationStep::tesseract,
                                       AblationStep::tesseractLc};
    for (AblationStep step : dalorexSteps())
        steps.push_back(step);
    return steps;
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);
    const std::vector<Dataset> datasets = figDatasets(opts);
    // The paper's Fig. 5 kernels lead; the "fig5-extra" kernels
    // (k-core, histogram — no Tesseract model exists for them)
    // follow with an explicit Dalorex-only ladder — normalized to
    // the Data-Local step — instead of being silently dropped from
    // the comparison.
    std::vector<const KernelInfo*> kernels = fig5Kernels();
    for (const KernelInfo* kernel :
         KernelRegistry::instance().tagged("fig5-extra")) {
        kernels.push_back(kernel);
    }

    std::printf("Fig. 5: improvement over Tesseract, 256 cores "
                "(%s scale)\n"
                "Kernels without a Tesseract model are reported "
                "Dalorex-only,\nnormalized to the Data-Local step.\n\n",
                opts.full ? "full" : "quick");
    for (const Dataset& ds : datasets) {
        std::printf("  %-5s %s (V=%u, E=%u)\n", ds.name.c_str(),
                    ds.provenance.c_str(), ds.graph.numVertices,
                    ds.graph.numEdges);
    }
    std::printf("\n");

    // Geomean accumulators across (kernel, dataset) for the summary.
    std::map<AblationStep, std::vector<double>> perf_gains;
    std::map<AblationStep, std::vector<double>> energy_gains;

    for (const KernelInfo* kernel : kernels) {
        const bool has_tesseract =
            kernel->traits.tesseract != TesseractModel::none;
        Ladder ladder;
        for (const Dataset& ds : datasets) {
            std::fprintf(stderr, "[fig5] %s on %s...\n",
                         kernel->display.c_str(), ds.name.c_str());
            KernelSetup setup =
                makeKernelSetup(*kernel, ds.graph, opts.seed);
            setup.iterations = 5; // PageRank epochs (bench budget)
            if (has_tesseract) {
                // HMC baseline and its large-cache variant.
                const BaselineRun base =
                    runTesseractBaseline(setup, false);
                const BaselineRun lc =
                    runTesseractBaseline(setup, true);
                ladder[AblationStep::tesseract].push_back(
                    {base.seconds, base.joules});
                ladder[AblationStep::tesseractLc].push_back(
                    {lc.seconds, lc.joules});
            }
            // The six Dalorex-engine steps.
            for (const AblationStep step : dalorexSteps()) {
                const DalorexRun run =
                    runDalorex(setup, ablationConfig(step, 16, 16));
                ladder[step].push_back({run.seconds, run.joules});
            }
        }

        std::vector<std::string> headers = {"config"};
        for (const Dataset& ds : datasets)
            headers.push_back(ds.name);
        Table perf(headers);
        Table energy(headers);
        // Dalorex-only kernels normalize to the ladder's first
        // Dalorex rung; the Tesseract rows render as "-".
        const auto& base = has_tesseract
                               ? ladder[AblationStep::tesseract]
                               : ladder[AblationStep::dataLocal];
        for (const AblationStep step : allSteps()) {
            std::vector<std::string> prow = {toString(step)};
            std::vector<std::string> erow = {toString(step)};
            const bool have_row = ladder.count(step) > 0;
            for (std::size_t d = 0; d < datasets.size(); ++d) {
                if (!have_row) {
                    prow.push_back("-");
                    erow.push_back("-");
                    continue;
                }
                const double pgain =
                    base[d].seconds / ladder[step][d].seconds;
                const double egain =
                    base[d].joules / ladder[step][d].joules;
                prow.push_back(Table::fmt(pgain, 2));
                erow.push_back(Table::fmt(egain, 2));
                // The in-text geomean ladder compares against
                // Tesseract, so only its kernels feed the summary.
                if (has_tesseract) {
                    perf_gains[step].push_back(pgain);
                    energy_gains[step].push_back(egain);
                }
            }
            perf.addRow(std::move(prow));
            energy.addRow(std::move(erow));
        }

        const char* vs = has_tesseract
                             ? "improvement over Tesseract"
                             : "Dalorex-only: improvement over "
                               "Data-Local";
        std::printf("== %s: performance %s (higher is better) ==\n",
                    kernel->display.c_str(), vs);
        perf.print();
        sweep::writeCsvIfEnabled(
            opts.csvDir, perf,
            "fig5_perf_" + kernel->name);
        std::printf("\n== %s: energy %s (higher is better) ==\n",
                    kernel->display.c_str(), vs);
        energy.print();
        sweep::writeCsvIfEnabled(
            opts.csvDir, energy,
            "fig5_energy_" + kernel->name);
        std::printf("\n");
    }

    // In-text ladder summary: geomean step-over-step factors.
    Table summary({"step", "perf x (geomean)", "paper perf x",
                   "energy x (geomean)", "paper energy x"});
    struct StepRef
    {
        AblationStep from;
        AblationStep to;
        const char* paper_perf;
        const char* paper_energy;
    };
    const StepRef refs[] = {
        {AblationStep::tesseract, AblationStep::tesseractLc, "-",
         "16 (SRAM)"},
        {AblationStep::tesseract, AblationStep::dataLocal, "6.2", "-"},
        {AblationStep::dataLocal, AblationStep::basicTsu, "4.7",
         "3.9 (TSU)"},
        {AblationStep::basicTsu, AblationStep::uniformDistr, "2.6",
         "-"},
        {AblationStep::uniformDistr, AblationStep::trafficAware,
         "1.7", "-"},
        {AblationStep::trafficAware, AblationStep::torusNoc,
         "~1.4 (torus, Fig.8)", "-"},
        {AblationStep::torusNoc, AblationStep::dalorexFull,
         "~1.3 (barrierless)", "-"},
        {AblationStep::trafficAware, AblationStep::dalorexFull,
         "1.8 (NoC+barrierless)", "-"},
        {AblationStep::tesseract, AblationStep::dalorexFull, "221",
         "325"},
    };
    for (const StepRef& ref : refs) {
        std::vector<double> pf;
        std::vector<double> ef;
        for (std::size_t i = 0; i < perf_gains[ref.to].size(); ++i) {
            pf.push_back(perf_gains[ref.to][i] /
                         perf_gains[ref.from][i]);
            ef.push_back(energy_gains[ref.to][i] /
                         energy_gains[ref.from][i]);
        }
        summary.addRow({std::string(toString(ref.from)) + " -> " +
                            toString(ref.to),
                        Table::fmt(geomean(pf), 2), ref.paper_perf,
                        Table::fmt(geomean(ef), 2),
                        ref.paper_energy});
    }
    std::printf("== Sec. V-A in-text geomean ladder ==\n");
    summary.print();
    sweep::writeCsvIfEnabled(opts.csvDir, summary, "fig5_summary");
    return 0;
}
