/**
 * @file
 * google-benchmark microbenches for the hot components of the
 * simulator — regression tracking for the infrastructure itself (not
 * a paper figure): RMAT generation, CSR construction, queue
 * operations, routing, TSU arbitration, partition mapping, and a
 * small end-to-end BFS run, plus the OQT2 sizing ablation DESIGN.md
 * calls out.
 */

#include <benchmark/benchmark.h>

#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "common/rng.hh"
#include "graph/partition.hh"
#include "graph/rmat.hh"
#include "noc/topology.hh"
#include "sim/machine.hh"
#include "tile/queue.hh"
#include "tile/tsu.hh"

namespace
{

using namespace dalorex;

void
BM_RmatGeneration(benchmark::State& state)
{
    RmatParams params;
    params.scale = static_cast<unsigned>(state.range(0));
    params.edgeFactor = 10;
    for (auto _ : state) {
        benchmark::DoNotOptimize(rmatEdges(params));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        (std::int64_t(params.edgeFactor) << params.scale));
}
BENCHMARK(BM_RmatGeneration)->Arg(12)->Arg(14);

void
BM_CsrBuild(benchmark::State& state)
{
    RmatParams params;
    params.scale = static_cast<unsigned>(state.range(0));
    const EdgeList edges = rmatEdges(params);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            buildCsr(VertexId(1) << params.scale, edges));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_CsrBuild)->Arg(12)->Arg(14);

void
BM_QueuePushPop(benchmark::State& state)
{
    WordQueue queue;
    queue.init(2, 1024);
    const Word entry[2] = {1, 2};
    for (auto _ : state) {
        queue.push(entry);
        benchmark::DoNotOptimize(queue.front());
        queue.pop();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QueuePushPop);

void
BM_TopologyRoute(benchmark::State& state)
{
    const Topology topo(static_cast<NocTopology>(state.range(0)), 32,
                        32, state.range(0) == 2 ? 4u : 0u);
    Rng rng(5);
    std::vector<std::pair<TileId, TileId>> pairs;
    for (int i = 0; i < 1024; ++i)
        pairs.emplace_back(
            static_cast<TileId>(rng.below(topo.numTiles())),
            static_cast<TileId>(rng.below(topo.numTiles())));
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& [src, dst] = pairs[i++ & 1023];
        benchmark::DoNotOptimize(topo.route(src, dst));
    }
}
BENCHMARK(BM_TopologyRoute)->Arg(0)->Arg(1)->Arg(2);

void
BM_TsuPickTask(benchmark::State& state)
{
    // A tile with four tasks, two runnable.
    std::vector<TaskDef> defs(4);
    for (auto& def : defs) {
        def.paramWords = 2;
        def.iqCapacity = 64;
        def.fn = [](Machine&, Tile&, TaskCtx&) {};
    }
    Tile tile;
    tile.iqs.resize(4);
    for (auto& iq : tile.iqs) {
        iq.init(2, 64);
        iq.setHighMark(48);
    }
    const Word entry[2] = {0, 0};
    tile.iqs[1].push(entry);
    tile.iqs[3].push(entry);
    const auto policy = static_cast<SchedPolicy>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(pickTask(tile, defs, policy));
    }
}
BENCHMARK(BM_TsuPickTask)->Arg(0)->Arg(1);

void
BM_PartitionMapping(benchmark::State& state)
{
    const Partition part(1 << 20, 10 << 20, 1024,
                         static_cast<Distribution>(state.range(0)));
    Word v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(part.vertexOwner(v));
        benchmark::DoNotOptimize(part.vertexLocal(v));
        v = (v * 2654435761u + 1) & ((1u << 20) - 1);
    }
}
BENCHMARK(BM_PartitionMapping)->Arg(0)->Arg(1);

void
BM_EndToEndBfs(benchmark::State& state)
{
    RmatParams params;
    params.scale = 10;
    params.edgeFactor = 8;
    const Csr graph = rmatGraph(params);
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    RunStats stats;
    for (auto _ : state) {
        auto app = setup.makeApp();
        MachineConfig config;
        config.width = 8;
        config.height = 8;
        Machine machine(config, graph.numVertices, graph.numEdges);
        stats = machine.run(*app);
        benchmark::DoNotOptimize(stats);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        graph.numEdges);
    // Separate "simulated faster" (sim_cycles) from "simulator ran
    // faster" (stepped cycles and scan occupancy).
    state.counters["sim_cycles"] = static_cast<double>(stats.cycles);
    state.counters["stepped_cycles"] =
        static_cast<double>(stats.engineSteppedCycles);
    state.counters["tile_scan_occ"] = stats.tileScanOccupancy();
    state.counters["router_scan_occ"] = stats.routerScanOccupancy();
}
BENCHMARK(BM_EndToEndBfs)->Unit(benchmark::kMillisecond);

/**
 * Active-set stepping vs the full-scan oracle on one workload
 * (arg 0 = full, 1 = active). Cycles are identical by contract; the
 * wall-clock difference and the occupancy counters quantify the
 * scan work the active sets avoid.
 */
void
BM_EngineScanMode(benchmark::State& state)
{
    RmatParams params;
    params.scale = 10;
    params.edgeFactor = 8;
    const Csr graph = rmatGraph(params);
    const KernelSetup setup = makeKernelSetup("sssp", graph);
    const auto scan = state.range(0) == 0 ? EngineScan::full
                                          : EngineScan::active;
    RunStats stats;
    for (auto _ : state) {
        auto app = setup.makeApp();
        MachineConfig config;
        config.width = 16;
        config.height = 16;
        config.engineScan = scan;
        Machine machine(config, graph.numVertices, graph.numEdges);
        stats = machine.run(*app);
        benchmark::DoNotOptimize(stats);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        graph.numEdges);
    state.counters["sim_cycles"] = static_cast<double>(stats.cycles);
    state.counters["stepped_cycles"] =
        static_cast<double>(stats.engineSteppedCycles);
    state.counters["tile_scan_occ"] = stats.tileScanOccupancy();
    state.counters["router_scan_occ"] = stats.routerScanOccupancy();
    state.counters["tile_visits_saved"] =
        static_cast<double>(stats.activeTileCyclesSaved);
}
BENCHMARK(BM_EngineScanMode)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/** OQT2 sizing ablation (DESIGN.md Sec. 6): cycles vs OQT2. */
void
BM_Oqt2Sizing(benchmark::State& state)
{
    RmatParams params;
    params.scale = 11;
    params.edgeFactor = 8;
    const Csr graph = rmatGraph(params);
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    const auto oqt2 = static_cast<std::uint32_t>(state.range(0));
    RunStats stats;
    for (auto _ : state) {
        auto app = setup.makeApp();
        QueueSizing sizing;
        sizing.oqt2 = oqt2;
        sizing.cq2 = 2 * oqt2;
        app->setQueueSizing(sizing);
        MachineConfig config;
        config.width = 8;
        config.height = 8;
        Machine machine(config, graph.numVertices, graph.numEdges);
        stats = machine.run(*app);
    }
    state.counters["sim_cycles"] = static_cast<double>(stats.cycles);
    state.counters["stepped_cycles"] =
        static_cast<double>(stats.engineSteppedCycles);
    state.counters["tile_scan_occ"] = stats.tileScanOccupancy();
}
BENCHMARK(BM_Oqt2Sizing)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
