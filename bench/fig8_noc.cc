/**
 * @file
 * Fig. 8 reproduction: performance improvement of the 2D torus and
 * torus+ruche NoCs over the 2D mesh, per application and dataset.
 *
 * Expected shapes (Sec. V-C): the torus is ~2x the mesh at 16x16
 * (uniform router utilization instead of center contention); ruche
 * channels only pay off on the large grid, where bisection bandwidth
 * is the constraint.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"

using namespace dalorex;
using namespace dalorex::bench;

namespace
{

double
runCycles(const KernelSetup& setup, std::uint32_t side,
          NocTopology topology, std::uint32_t ruche)
{
    MachineConfig config =
        ablationConfig(AblationStep::dalorexFull, side, side);
    config.topology = topology;
    config.rucheFactor = ruche;
    const DalorexRun run = runDalorex(setup, config);
    return static_cast<double>(run.stats.cycles);
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);

    // Paper: WK, LJ, R22 on 16x16; RMAT-26 on 64x64. The large-grid
    // entry scales to 32x32 (64x64 with --full).
    std::vector<Dataset> datasets = figDatasets(opts);
    datasets.erase(datasets.begin()); // drop AZ (not in Fig. 8)
    Dataset big = makeDataset(opts.full ? "rmat17" : "rmat15",
                              opts.seed);
    big.name = "R26s";
    const std::uint32_t big_side = opts.full ? 64 : 32;
    const std::uint32_t small_side = 16;

    std::printf("Fig. 8: Torus and Torus-Ruche speedup over Mesh "
                "(%s scale)\n",
                opts.full ? "full" : "quick");
    std::printf("Datasets on %ux%u; %s on %ux%u\n\n", small_side,
                small_side, big.name.c_str(), big_side, big_side);

    Table table({"kernel", "dataset", "tiles", "mesh cyc",
                 "torus x", "torus-ruche x"});

    for (const KernelInfo* kernel : paperKernels()) {
        auto run_row = [&](const Dataset& ds, std::uint32_t side) {
            KernelSetup setup =
                makeKernelSetup(*kernel, ds.graph, opts.seed);
            setup.iterations = 5;
            const std::uint32_t ruche = side >= 32 ? 4 : 2;
            const double mesh =
                runCycles(setup, side, NocTopology::mesh, 0);
            const double torus =
                runCycles(setup, side, NocTopology::torus, 0);
            const double torus_ruche = runCycles(
                setup, side, NocTopology::torusRuche, ruche);
            table.addRow({kernel->display, ds.name,
                          std::to_string(side * side),
                          Table::fmt(mesh, 0),
                          Table::fmt(mesh / torus, 2),
                          Table::fmt(mesh / torus_ruche, 2)});
        };
        for (const Dataset& ds : datasets)
            run_row(ds, small_side);
        run_row(big, big_side);
    }

    table.print();
    sweep::writeCsvIfEnabled(opts.csvDir, table, "fig8_noc");
    std::printf("\nExpected shape: torus ~2x mesh on 16x16; ruche "
                "only helps on the large grid.\n");
    return 0;
}
