/**
 * @file
 * Fig. 7 reproduction: throughput (edges/s and operations/s) and
 * average utilized memory bandwidth while strong-scaling the largest
 * RMAT dataset across grid sizes, for all five kernels.
 *
 * A thin wrapper over the sweep orchestrator: one Plan covering all
 * kernels on the torus grids (plus a ruche Plan for the 64x64 point
 * under --full), aggregated against the 16x16 baseline.
 *
 * Expected shape (Sec. V-B): both throughput and memory bandwidth keep
 * growing to the largest simulated grid — memory bandwidth scales with
 * the tile count (one more tile = one more memory port) and never
 * saturates, unlike DRAM-based designs.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "sweep/sweep.hh"

using namespace dalorex;
using namespace dalorex::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);

    // Stand-in for the paper's RMAT-26 (67M vertices).
    const std::string name = opts.full ? "rmat18" : "rmat15";

    std::printf("Fig. 7: throughput scaling, %s, %s scale\n\n",
                name.c_str(), opts.full ? "full" : "quick");

    sweep::Plan plan;
    plan.kernels = paperKernels(); // the paper's five (tag-selected)
    plan.datasets = {{name, 0}};
    plan.grids = {{16, 16}, {32, 32}};
    plan.seed = opts.seed;
    plan.validate = true; // as the old loop: every run checked
    plan.params.push_back({"iterations", 5}); // bench budget
    plan.scratchpadProvisionBytes = figProvisionBytes();

    std::vector<cli::Report> reports;
    {
        const sweep::RunResult run =
            sweep::run(plan, opts.workerThreads());
        fatal_if(!run.ok, "fig7 sweep: ", run.error);
        fatal_if(!run.allRowsOk(), "fig7 sweep: ",
                 run.rowErrors().front());
        reports = run.okReports();
    }
    if (opts.full) {
        // The paper adds ruche channels above 32x32 (Sec. IV-A).
        sweep::Plan ruche = plan;
        ruche.grids = {{64, 64}};
        ruche.topologies = {NocTopology::torusRuche};
        ruche.rucheFactor = 4;
        const sweep::RunResult run =
            sweep::run(ruche, opts.workerThreads());
        fatal_if(!run.ok, "fig7 sweep: ", run.error);
        fatal_if(!run.allRowsOk(), "fig7 sweep: ",
                 run.rowErrors().front());
        const std::vector<cli::Report> ok = run.okReports();
        reports.insert(reports.end(), ok.begin(), ok.end());
    }

    const sweep::AggregateResult agg = sweep::aggregate(
        reports, {16, 16}, sweep::MissingBaseline::skip);
    fatal_if(!agg.ok, "fig7 aggregate: ", agg.error);
    const Table table = sweep::toTable(agg.rows);
    table.print();
    sweep::writeCsvIfEnabled(opts.csvDir, table, "fig7_throughput");
    std::printf("\nExpected shape: edges/s, ops/s and memory "
                "bandwidth all grow with the grid\n(no saturation: "
                "memory ports scale with tiles).\n");
    return 0;
}
