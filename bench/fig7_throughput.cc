/**
 * @file
 * Fig. 7 reproduction: throughput (edges/s and operations/s) and
 * average utilized memory bandwidth while strong-scaling the largest
 * RMAT dataset across grid sizes, for all five kernels.
 *
 * Expected shape (Sec. V-B): both throughput and memory bandwidth keep
 * growing to the largest simulated grid — memory bandwidth scales with
 * the tile count (one more tile = one more memory port) and never
 * saturates, unlike DRAM-based designs.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "energy/model.hh"

using namespace dalorex;
using namespace dalorex::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);

    // Stand-in for the paper's RMAT-26 (67M vertices).
    const Dataset ds =
        makeDataset(opts.full ? "rmat18" : "rmat15", opts.seed);
    std::vector<std::uint32_t> sides = {16, 32};
    if (opts.full)
        sides.push_back(64);

    std::printf("Fig. 7: throughput scaling, %s (V=%u, E=%u), "
                "%s scale\n\n",
                ds.name.c_str(), ds.graph.numVertices,
                ds.graph.numEdges, opts.full ? "full" : "quick");

    Table table({"kernel", "tiles", "edges/s", "ops/s",
                 "avg MBW B/s", "cycles"});

    for (const Kernel kernel : allKernels()) {
        KernelSetup setup =
            makeKernelSetup(kernel, ds.graph, opts.seed);
        setup.iterations = 5; // PageRank epochs (bench budget)
        for (const std::uint32_t side : sides) {
            MachineConfig config = ablationConfig(
                AblationStep::dalorexFull, side, side);
            if (side > 32) {
                config.topology = NocTopology::torusRuche;
                config.rucheFactor = 4;
            }
            const DalorexRun run = runDalorex(setup, config);
            const double edges_per_s =
                static_cast<double>(run.stats.edgesProcessed) /
                run.seconds;
            const double ops_per_s =
                static_cast<double>(run.stats.puOps) / run.seconds;
            table.addRow({toString(kernel),
                          std::to_string(side * side),
                          Table::sci(edges_per_s, 2),
                          Table::sci(ops_per_s, 2),
                          Table::sci(avgMemoryBandwidth(run.stats), 2),
                          std::to_string(run.stats.cycles)});
        }
    }

    table.print();
    maybeWriteCsv(opts, table, "fig7_throughput");
    std::printf("\nExpected shape: edges/s, ops/s and memory "
                "bandwidth all grow with the grid\n(no saturation: "
                "memory ports scale with tiles).\n");
    return 0;
}
