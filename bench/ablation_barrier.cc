/**
 * @file
 * Barrier ablation (Sec. III-C: "We characterize performance with and
 * without epoch synchronization"): barrierless vs epoch-synchronized
 * execution per kernel across dataset scales, reporting both cycles
 * and edges processed.
 *
 * This bench is also the evidence record for the one shape deviation
 * this reproduction documents (EXPERIMENTS.md): in our model the
 * barrier costs little (exact idle detection) while asynchronous
 * label-correcting BFS/SSSP pays a ~1.6-2.4x work-inefficiency tax
 * from stale-distance re-exploration, so barrierless wins only where
 * update backlogs coalesce in the bitmap frontier — WCC at >= 1K
 * vertices/tile crosses over first, matching the paper's "WCC
 * benefits the most from barrierless processing".
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"

using namespace dalorex;
using namespace dalorex::bench;

int
main(int argc, char** argv)
{
    const BenchOptions opts = BenchOptions::parse(argc, argv);

    std::vector<unsigned> scales = {14, 16};
    if (opts.full)
        scales.push_back(18);

    std::printf("Barrierless vs epoch-synchronized execution, "
                "16x16 grid\n\n");

    Table table({"kernel", "scale", "verts/tile", "sync cyc",
                 "async cyc", "async speedup", "sync edges",
                 "async edges", "work ratio"});

    for (const char* kernel_name : {"bfs", "sssp", "wcc"}) {
        const KernelInfo* kernel = kernelOrDie(kernel_name);
        for (const unsigned scale : scales) {
            const Dataset ds = makeDatasetAt("amazon", scale,
                                             opts.seed);
            const KernelSetup setup =
                makeKernelSetup(*kernel, ds.graph, opts.seed);

            MachineConfig sync_config =
                ablationConfig(AblationStep::dalorexFull, 16, 16);
            sync_config.barrier = true;
            const DalorexRun sync = runDalorex(setup, sync_config);

            const MachineConfig async_config =
                ablationConfig(AblationStep::dalorexFull, 16, 16);
            const DalorexRun async = runDalorex(setup, async_config);

            table.addRow(
                {kernel->display, std::to_string(scale),
                 std::to_string(ds.graph.numVertices / 256),
                 std::to_string(sync.stats.cycles),
                 std::to_string(async.stats.cycles),
                 Table::fmt(double(sync.stats.cycles) /
                                double(async.stats.cycles),
                            3),
                 std::to_string(sync.stats.edgesProcessed),
                 std::to_string(async.stats.edgesProcessed),
                 Table::fmt(double(async.stats.edgesProcessed) /
                                double(sync.stats.edgesProcessed),
                            3)});
        }
    }

    table.print();
    sweep::writeCsvIfEnabled(opts.csvDir, table, "ablation_barrier");
    std::printf(
        "\nasync speedup > 1: barrier removal wins. The work ratio\n"
        "(async/sync edges) is the staleness tax of asynchronous\n"
        "label-correcting execution; it shrinks as vertices/tile\n"
        "grow and update backlogs coalesce in the bitmap frontier.\n");
    return 0;
}
