/**
 * @file
 * Tests for the energy/area model: tile geometry against the paper's
 * published numbers, breakdown consistency, provisioning semantics and
 * topology-dependent wire energy.
 */

#include <gtest/gtest.h>

#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "energy/model.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"

namespace dalorex
{
namespace
{

TEST(Area, TileGeometryMatchesPaper)
{
    // Sec. V-A: "The 16x16 Dalorex with a 4.2MB memory per tile uses
    // much less chip area (305 mm^2)". 29.2 Mb/mm^2 SRAM density.
    const auto bytes =
        static_cast<std::uint64_t>(4.2 * 1024 * 1024);
    const TileGeometry geo =
        tileGeometry(bytes, NocTopology::torus);
    MachineConfig config;
    config.width = 16;
    config.height = 16;
    const double chip = chipAreaMm2(config, bytes);
    EXPECT_NEAR(chip, 305.0, 45.0); // within ~15%
    EXPECT_GT(geo.sramMm2, 0.8 * geo.totalMm2); // SRAM dominates
    EXPECT_NEAR(geo.sideMm, 1.1, 0.2);
}

TEST(Area, TorusCostsMoreThanMesh)
{
    const std::uint64_t bytes = 4 << 20;
    const double mesh =
        tileGeometry(bytes, NocTopology::mesh).totalMm2;
    const double torus =
        tileGeometry(bytes, NocTopology::torus).totalMm2;
    const double ruche =
        tileGeometry(bytes, NocTopology::torusRuche).totalMm2;
    EXPECT_LT(mesh, torus);
    EXPECT_LT(torus, ruche);
    // "justifies the area cost of an additional 0.2% of the total
    // chip area (using 4MB tiles)" — the torus adds well under 1%.
    EXPECT_LT((torus - mesh) / mesh, 0.01);
}

RunStats
sampleRun(MachineConfig& config)
{
    RmatParams params;
    params.scale = 9;
    params.edgeFactor = 6;
    const Csr graph = rmatGraph(params);
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    config.width = 4;
    config.height = 4;
    Machine machine(config, graph.numVertices, graph.numEdges);
    return machine.run(*app);
}

TEST(Energy, BreakdownSumsAndPositive)
{
    MachineConfig config;
    const RunStats stats = sampleRun(config);
    const EnergyBreakdown e = dalorexEnergy(stats, config);
    EXPECT_GT(e.logicJ, 0.0);
    EXPECT_GT(e.memoryJ, 0.0);
    EXPECT_GT(e.networkJ, 0.0);
    EXPECT_NEAR(e.logicPct() + e.memoryPct() + e.networkPct(), 100.0,
                1e-6);
    EXPECT_DOUBLE_EQ(e.totalJ(), e.logicJ + e.memoryJ + e.networkJ);
}

TEST(Energy, ProvisioningRaisesLeakage)
{
    MachineConfig config;
    const RunStats stats = sampleRun(config);
    const EnergyBreakdown sized = dalorexEnergy(stats, config);
    MachineConfig provisioned = config;
    provisioned.scratchpadProvisionBytes = 8 << 20;
    const EnergyBreakdown big = dalorexEnergy(stats, provisioned);
    EXPECT_GT(big.memoryJ, sized.memoryJ);
    // Bigger tiles also mean longer wires.
    EXPECT_GT(big.networkJ, sized.networkJ);
}

TEST(Energy, ScalesWithTechConstants)
{
    MachineConfig config;
    const RunStats stats = sampleRun(config);
    TechParams tech;
    const EnergyBreakdown base =
        dalorexEnergy(stats, config, tech);
    tech.wirePjPerFlitMm *= 2.0;
    const EnergyBreakdown wires =
        dalorexEnergy(stats, config, tech);
    EXPECT_GT(wires.networkJ, base.networkJ);
    EXPECT_DOUBLE_EQ(wires.memoryJ, base.memoryJ);

    tech = TechParams{};
    tech.puDynPjPerOp *= 3.0;
    const EnergyBreakdown ops = dalorexEnergy(stats, config, tech);
    EXPECT_GT(ops.logicJ, base.logicJ);
    EXPECT_DOUBLE_EQ(ops.networkJ, base.networkJ);
}

TEST(Energy, RunSecondsFollowFrequency)
{
    MachineConfig config;
    const RunStats stats = sampleRun(config);
    TechParams tech;
    const double base = runSeconds(stats, tech);
    EXPECT_DOUBLE_EQ(base,
                     static_cast<double>(stats.cycles) / 1.0e9);
    tech.freqHz = 2.0e9;
    EXPECT_DOUBLE_EQ(runSeconds(stats, tech), base / 2.0);
}

TEST(Energy, MemoryBandwidthPositiveAndBounded)
{
    MachineConfig config;
    const RunStats stats = sampleRun(config);
    const double bw = avgMemoryBandwidth(stats);
    EXPECT_GT(bw, 0.0);
    // A tile can move at most ~3 words/cycle (PU read+write, TSU
    // port): 16 tiles * 3 words * 4 B at 1 GHz is a hard roof.
    EXPECT_LT(bw, 16.0 * 3 * 4 * 1.0e9);
}

TEST(Energy, EmptyRunIsRejected)
{
    MachineConfig config;
    RunStats empty;
    EXPECT_DEATH((void)dalorexEnergy(empty, config), "empty run");
}

} // namespace
} // namespace dalorex
