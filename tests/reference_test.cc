/**
 * @file
 * Tests for the sequential reference kernels on hand-built graphs with
 * known answers, plus cross-kernel consistency properties.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "graph/reference.hh"
#include "graph/rmat.hh"

namespace dalorex
{
namespace
{

/** 0 -> 1 -> 2 -> 3 path. */
Csr
pathGraph()
{
    return buildCsr(4, {{0, 1}, {1, 2}, {2, 3}});
}

TEST(ReferenceBfs, PathDistances)
{
    const std::vector<Word> dist = referenceBfs(pathGraph(), 0);
    EXPECT_EQ(dist, (std::vector<Word>{0, 1, 2, 3}));
}

TEST(ReferenceBfs, UnreachableIsInf)
{
    const Csr g = buildCsr(3, {{0, 1}});
    const std::vector<Word> dist = referenceBfs(g, 0);
    EXPECT_EQ(dist[2], infDist);
}

TEST(ReferenceBfs, StarGraphOneHop)
{
    EdgeList edges;
    for (VertexId v = 1; v < 50; ++v)
        edges.emplace_back(0, v);
    const Csr g = buildCsr(50, edges);
    const std::vector<Word> dist = referenceBfs(g, 0);
    for (VertexId v = 1; v < 50; ++v)
        EXPECT_EQ(dist[v], 1u);
}

TEST(ReferenceSssp, PrefersLighterLongerPath)
{
    // 0 -> 2 direct weight 10; 0 -> 1 -> 2 weights 2 + 3.
    Csr g = buildCsr(3, {{0, 2}, {0, 1}, {1, 2}});
    g.weights.assign(g.numEdges, 0);
    for (EdgeId i = g.rowPtr[0]; i < g.rowPtr[1]; ++i)
        g.weights[i] = g.colIdx[i] == 2 ? 10 : 2;
    for (EdgeId i = g.rowPtr[1]; i < g.rowPtr[2]; ++i)
        g.weights[i] = 3;
    const std::vector<Word> dist = referenceSssp(g, 0);
    EXPECT_EQ(dist[2], 5u);
}

TEST(ReferenceSssp, UnitWeightsMatchBfs)
{
    RmatParams params;
    params.scale = 9;
    params.edgeFactor = 6;
    Csr g = rmatGraph(params);
    g.weights.assign(g.numEdges, 1);
    EXPECT_EQ(referenceSssp(g, 0), referenceBfs(g, 0));
}

TEST(ReferenceSssp, NeverBelowBfsHops)
{
    RmatParams params;
    params.scale = 9;
    params.edgeFactor = 6;
    Csr g = rmatGraph(params);
    Rng rng(3);
    addRandomWeights(g, rng, 1, 9);
    const std::vector<Word> hops = referenceBfs(g, 0);
    const std::vector<Word> dist = referenceSssp(g, 0);
    for (VertexId v = 0; v < g.numVertices; ++v) {
        if (hops[v] == infDist) {
            EXPECT_EQ(dist[v], infDist);
            continue;
        }
        // Each hop costs at least 1 and at most 9.
        EXPECT_GE(dist[v], hops[v]);
        EXPECT_LE(dist[v], hops[v] * 9u);
    }
}

TEST(ReferenceWcc, TwoComponents)
{
    const Csr g =
        buildCsr(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}},
                 {.symmetrize = true});
    const std::vector<Word> label = referenceWcc(g);
    EXPECT_EQ(label, (std::vector<Word>{0, 0, 0, 3, 3, 3}));
}

TEST(ReferenceWcc, SingletonsKeepOwnLabel)
{
    const Csr g = buildCsr(4, {{1, 2}}, {.symmetrize = true});
    const std::vector<Word> label = referenceWcc(g);
    EXPECT_EQ(label[0], 0u);
    EXPECT_EQ(label[3], 3u);
    EXPECT_EQ(label[1], 1u);
    EXPECT_EQ(label[2], 1u);
}

TEST(ReferenceWcc, DirectionIgnoredAfterSymmetrize)
{
    // A chain of only-forward edges still forms one weak component.
    const Csr g = buildCsr(5, {{4, 3}, {3, 2}, {2, 1}, {1, 0}},
                           {.symmetrize = true});
    for (const Word label : referenceWcc(g))
        EXPECT_EQ(label, 0u);
}

TEST(ReferencePageRank, UniformOnRegularRing)
{
    // A directed ring is 1-regular: ranks stay uniform.
    EdgeList edges;
    const VertexId n = 16;
    for (VertexId v = 0; v < n; ++v)
        edges.emplace_back(v, (v + 1) % n);
    const Csr g = buildCsr(n, edges);
    const std::vector<double> rank = referencePageRank(g, 0.85, 30);
    for (const double r : rank)
        EXPECT_NEAR(r, 1.0 / n, 1e-9);
}

TEST(ReferencePageRank, SinkAbsorbsRank)
{
    // 0 and 1 both point at 2; 2 points nowhere (mass decays).
    const Csr g = buildCsr(3, {{0, 2}, {1, 2}});
    const std::vector<double> rank = referencePageRank(g, 0.85, 20);
    EXPECT_GT(rank[2], rank[0]);
    EXPECT_DOUBLE_EQ(rank[0], rank[1]);
}

TEST(ReferencePageRank, MassBounded)
{
    RmatParams params;
    params.scale = 9;
    const Csr g = rmatGraph(params);
    const std::vector<double> rank = referencePageRank(g, 0.85, 10);
    double total = 0.0;
    for (const double r : rank) {
        EXPECT_GT(r, 0.0);
        total += r;
    }
    // Dangling vertices leak mass, so total <= 1 (plus epsilon).
    EXPECT_LE(total, 1.0 + 1e-9);
    EXPECT_GT(total, 0.1);
}

TEST(ReferenceSpmv, IdentityMatrix)
{
    // Diagonal ones stored column-major: y == x.
    EdgeList diag;
    for (VertexId v = 0; v < 8; ++v)
        diag.emplace_back(v, v);
    CsrBuildOptions opts;
    opts.removeSelfLoops = false;
    Csr m = buildCsr(8, diag, opts);
    m.weights.assign(m.numEdges, 1);
    const std::vector<Word> x = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(referenceSpmv(m, x), x);
}

TEST(ReferenceSpmv, ColumnMajorSemantics)
{
    // One column (0) with entries in rows 1 and 2, values 3 and 4:
    // y = [0, 3*x0, 4*x0].
    CsrBuildOptions opts;
    Csr m = buildCsr(3, {{0, 1}, {0, 2}}, opts);
    m.weights = {3, 4};
    const std::vector<Word> y = referenceSpmv(m, {5, 100, 100});
    EXPECT_EQ(y, (std::vector<Word>{0, 15, 20}));
}

TEST(ReferenceSpmv, LinearInX)
{
    RmatParams params;
    params.scale = 8;
    Csr m = rmatGraph(params);
    Rng rng(1);
    addRandomWeights(m, rng, 1, 5);
    std::vector<Word> x(m.numVertices);
    for (auto& xi : x)
        xi = static_cast<Word>(rng.range(0, 20));
    std::vector<Word> x2(x);
    for (auto& xi : x2)
        xi *= 3;
    const std::vector<Word> y = referenceSpmv(m, x);
    const std::vector<Word> y2 = referenceSpmv(m, x2);
    for (VertexId v = 0; v < m.numVertices; ++v)
        EXPECT_EQ(y2[v], 3u * y[v]);
}

} // namespace
} // namespace dalorex
