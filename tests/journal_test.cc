/**
 * @file
 * Run-journal tests: render/parse round trips, checksum verification,
 * torn-tail tolerance (the kill -9 failure mode), plan binding, and
 * writer append/reopen semantics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/journal.hh"

namespace dalorex
{
namespace journal
{
namespace
{

/** A journal path in the test's working directory, removed on exit. */
struct TempJournal
{
    std::string path;
    explicit TempJournal(const std::string& name) : path(name)
    {
        std::remove(path.c_str());
    }
    ~TempJournal() { std::remove(path.c_str()); }
};

Record
okRecord(std::uint64_t row, std::uint64_t point)
{
    Record record;
    record.row = row;
    record.pointHash = point;
    record.status = RowStatus::ok;
    record.attempts = 1;
    record.payload = "{\"cycles\":42,\"nested\":{\"a\":[1,2]}}";
    return record;
}

TEST(JournalLine, HeaderRoundTrips)
{
    const std::string line = renderHeader(0xdeadbeefcafe1234ull, 17);
    ParsedLine parsed;
    std::string err;
    ASSERT_TRUE(parseLine(line, parsed, err)) << err;
    EXPECT_TRUE(parsed.isHeader);
    EXPECT_EQ(parsed.planHash, 0xdeadbeefcafe1234ull);
    EXPECT_EQ(parsed.points, 17u);
}

TEST(JournalLine, OkRecordRoundTripsPayloadVerbatim)
{
    const Record record = okRecord(3, 0x1122334455667788ull);
    ParsedLine parsed;
    std::string err;
    ASSERT_TRUE(parseLine(renderRecord(record), parsed, err)) << err;
    EXPECT_FALSE(parsed.isHeader);
    EXPECT_EQ(parsed.record.row, 3u);
    EXPECT_EQ(parsed.record.pointHash, 0x1122334455667788ull);
    EXPECT_EQ(parsed.record.status, RowStatus::ok);
    // Byte-identity is the whole point: the payload comes back as the
    // exact bytes that went in, not a re-serialization.
    EXPECT_EQ(parsed.record.payload, record.payload);
}

TEST(JournalLine, ErrorRecordCarriesErrorAndAttempts)
{
    Record record;
    record.row = 7;
    record.pointHash = 42;
    record.status = RowStatus::failed;
    record.attempts = 3;
    record.error = "dataset file vanished: \"weird\" \\ chars";
    ParsedLine parsed;
    std::string err;
    ASSERT_TRUE(parseLine(renderRecord(record), parsed, err)) << err;
    EXPECT_EQ(parsed.record.status, RowStatus::failed);
    EXPECT_EQ(parsed.record.attempts, 3u);
    EXPECT_EQ(parsed.record.error, record.error);
}

TEST(JournalLine, CorruptionFailsTheChecksum)
{
    std::string line = renderRecord(okRecord(1, 99));
    // Flip one payload byte; the checksum must notice.
    const std::size_t at = line.find("42");
    ASSERT_NE(at, std::string::npos);
    line[at] = '9';
    ParsedLine parsed;
    std::string err;
    EXPECT_FALSE(parseLine(line, parsed, err));
    EXPECT_NE(err.find("checksum"), std::string::npos);
}

TEST(JournalLine, TornLineIsRejectedNotParsed)
{
    const std::string whole = renderRecord(okRecord(1, 99));
    for (const std::size_t keep :
         {whole.size() - 1, whole.size() / 2, std::size_t(3)}) {
        ParsedLine parsed;
        std::string err;
        EXPECT_FALSE(
            parseLine(whole.substr(0, keep), parsed, err))
            << "kept " << keep << " bytes";
    }
}

TEST(JournalReplay, WriteThenReplayRecoversEverything)
{
    TempJournal temp("journal_test_roundtrip.jsonl");
    Writer writer;
    std::string err;
    ASSERT_TRUE(writer.open(temp.path, 0xabc, 4, err)) << err;
    ASSERT_TRUE(writer.append(okRecord(0, 10)));
    Record failed;
    failed.row = 1;
    failed.pointHash = 11;
    failed.status = RowStatus::failed;
    failed.attempts = 2;
    failed.error = "mmap: transient";
    ASSERT_TRUE(writer.append(failed));
    EXPECT_EQ(writer.written(), 2u);
    writer.close();

    const Replay replayed = replay(temp.path);
    ASSERT_TRUE(replayed.ok) << replayed.error;
    EXPECT_EQ(replayed.planHash, 0xabcu);
    EXPECT_EQ(replayed.points, 4u);
    EXPECT_EQ(replayed.corrupt, 0u);
    ASSERT_EQ(replayed.records.size(), 2u);
    EXPECT_EQ(replayed.records[0].status, RowStatus::ok);
    EXPECT_EQ(replayed.records[1].status, RowStatus::failed);
}

TEST(JournalReplay, TornTrailingLineIsDroppedAndCounted)
{
    TempJournal temp("journal_test_torn.jsonl");
    {
        Writer writer;
        std::string err;
        ASSERT_TRUE(writer.open(temp.path, 1, 2, err)) << err;
        ASSERT_TRUE(writer.append(okRecord(0, 10)));
        writer.close();
    }
    // Simulate kill -9 mid-append: half a record, no newline.
    {
        std::ofstream out(temp.path, std::ios::app);
        out << renderRecord(okRecord(1, 11)).substr(0, 20);
    }
    const Replay replayed = replay(temp.path);
    ASSERT_TRUE(replayed.ok) << replayed.error;
    ASSERT_EQ(replayed.records.size(), 1u);
    EXPECT_EQ(replayed.records[0].row, 0u);
    EXPECT_EQ(replayed.corrupt, 1u);
}

TEST(JournalReplay, ReopenAppendsAndHeadersMustAgree)
{
    TempJournal temp("journal_test_reopen.jsonl");
    {
        Writer writer;
        std::string err;
        ASSERT_TRUE(writer.open(temp.path, 5, 3, err)) << err;
        ASSERT_TRUE(writer.append(okRecord(0, 10)));
    }
    {
        // The resumed run appends into the same journal with the same
        // plan identity — two headers, one plan.
        Writer writer;
        std::string err;
        ASSERT_TRUE(writer.open(temp.path, 5, 3, err)) << err;
        ASSERT_TRUE(writer.append(okRecord(1, 11)));
    }
    const Replay same = replay(temp.path);
    ASSERT_TRUE(same.ok) << same.error;
    EXPECT_EQ(same.records.size(), 2u);

    // A third session claiming a different plan poisons the file.
    {
        Writer writer;
        std::string err;
        ASSERT_TRUE(writer.open(temp.path, 6, 3, err)) << err;
    }
    const Replay mixed = replay(temp.path);
    EXPECT_FALSE(mixed.ok);
    EXPECT_NE(mixed.error.find("disagree"), std::string::npos);
}

TEST(JournalReplay, MissingFileIsAnError)
{
    const Replay replayed =
        replay("journal_test_no_such_file.jsonl");
    EXPECT_FALSE(replayed.ok);
    EXPECT_FALSE(replayed.error.empty());
}

TEST(JournalReplay, GarbageFileHasNoHeader)
{
    TempJournal temp("journal_test_garbage.jsonl");
    {
        std::ofstream out(temp.path);
        out << "not a journal\n{\"type\":\"row\"}\n";
    }
    const Replay replayed = replay(temp.path);
    EXPECT_FALSE(replayed.ok);
    EXPECT_NE(replayed.error.find("header"), std::string::npos);
}

} // namespace
} // namespace journal
} // namespace dalorex
