/**
 * @file
 * Tests for the flit-level network: delivery latency, wormhole link
 * serialization, per-channel FIFO order, endpoint backpressure, the
 * injection port, and the no-deadlock drain property under random
 * traffic on every topology (the bubble-rule check DESIGN.md calls
 * out).
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <tuple>
#include <vector>

#include "common/rng.hh"
#include "noc/network.hh"

namespace dalorex
{
namespace
{

/** Test harness: collects deliveries, optionally refusing them. */
struct Sink
{
    std::vector<std::pair<Cycle, Message>> delivered;
    bool accept = true;
    Cycle now = 0;

    Network::DeliverFn
    fn()
    {
        return [this](const Message& msg) {
            if (!accept)
                return false;
            delivered.emplace_back(now, msg);
            return true;
        };
    }
};

NocConfig
smallConfig(NocTopology topology, std::uint32_t side)
{
    NocConfig config;
    config.topology = topology;
    config.width = side;
    config.height = side;
    if (topology == NocTopology::torusRuche)
        config.rucheFactor = 2;
    config.numChannels = 2;
    config.msgWords = {3, 2, 0, 0};
    return config;
}

Message
makeMsg(TileId dest, ChannelId channel, std::uint8_t words)
{
    Message msg;
    msg.dest = dest;
    msg.channel = channel;
    msg.numWords = words;
    for (unsigned w = 0; w < words; ++w)
        msg.words[w] = 100 * dest + w;
    return msg;
}

/** Step the network until quiescent; returns cycles taken. */
Cycle
drain(Network& net, Sink& sink, Cycle start, Cycle limit = 100000)
{
    Cycle cycle = start;
    while (!net.quiescent()) {
        ++cycle;
        sink.now = cycle;
        net.step(cycle);
        if (cycle - start > limit)
            ADD_FAILURE() << "network failed to drain";
        if (cycle - start > limit)
            break;
    }
    return cycle;
}

TEST(Network, DeliversSingleMessage)
{
    Sink sink;
    Network net(smallConfig(NocTopology::torus, 4), sink.fn());
    const Message msg = makeMsg(5, 1, 2);
    EXPECT_EQ(net.tryInject(msg, 0, 0), InjectResult::ok);
    drain(net, sink, 0);
    ASSERT_EQ(sink.delivered.size(), 1u);
    EXPECT_EQ(sink.delivered[0].second.dest, 5u);
    EXPECT_EQ(sink.delivered[0].second.words[0], 500u);
    EXPECT_EQ(net.stats().messagesDelivered, 1u);
}

TEST(Network, LatencyScalesWithHops)
{
    // Distance 1 vs distance 4 on an 8x8 torus, same channel.
    auto latency = [](TileId dest) {
        Sink sink;
        Network net(smallConfig(NocTopology::torus, 8), sink.fn());
        EXPECT_EQ(net.tryInject(makeMsg(dest, 1, 2), 0, 0),
                  InjectResult::ok);
        drain(net, sink, 0);
        return sink.delivered.at(0).first;
    };
    const Cycle near = latency(1);
    const Cycle far = latency(4);
    EXPECT_EQ(far - near, 3u); // one extra cycle per extra hop
}

TEST(Network, PortSerializesInjection)
{
    // Two 3-word messages from the same tile: the local port accepts
    // the second only after 3 cycles (1 flit/cycle).
    Sink sink;
    Network net(smallConfig(NocTopology::torus, 4), sink.fn());
    EXPECT_EQ(net.tryInject(makeMsg(1, 0, 3), 0, 0),
              InjectResult::ok);
    EXPECT_EQ(net.tryInject(makeMsg(1, 0, 3), 0, 0),
              InjectResult::portBusy);
    EXPECT_EQ(net.tryInject(makeMsg(1, 0, 3), 0, 2),
              InjectResult::portBusy);
    EXPECT_EQ(net.tryInject(makeMsg(1, 0, 3), 0, 3),
              InjectResult::ok);
}

TEST(Network, ChannelFifoOrderPreserved)
{
    // Many messages from one source to one destination on one
    // channel must arrive in injection order (no interleaving on a
    // channel, Sec. III-E).
    Sink sink;
    Network net(smallConfig(NocTopology::torus, 4), sink.fn());
    Cycle cycle = 0;
    unsigned injected = 0;
    while (injected < 20) {
        Message msg = makeMsg(9, 1, 2);
        msg.words[1] = injected;
        sink.now = cycle;
        net.step(cycle);
        if (net.tryInject(msg, 0, cycle) == InjectResult::ok)
            ++injected;
        ++cycle;
    }
    drain(net, sink, cycle);
    ASSERT_EQ(sink.delivered.size(), 20u);
    for (unsigned i = 0; i < 20; ++i)
        EXPECT_EQ(sink.delivered[i].second.words[1], i);
}

TEST(Network, BackpressureHoldsMessageUntilAccepted)
{
    Sink sink;
    sink.accept = false;
    Network net(smallConfig(NocTopology::torus, 4), sink.fn());
    EXPECT_EQ(net.tryInject(makeMsg(3, 1, 2), 0, 0),
              InjectResult::ok);
    Cycle cycle = 0;
    for (; cycle < 50; ++cycle) {
        sink.now = cycle;
        net.step(cycle);
    }
    EXPECT_TRUE(sink.delivered.empty());
    EXPECT_FALSE(net.quiescent());
    EXPECT_GT(net.stats().deliveryStalls, 0u);
    // Accept now; the engine signals IQ space through wakeRouter.
    sink.accept = true;
    net.wakeRouter(3);
    drain(net, sink, cycle);
    EXPECT_EQ(sink.delivered.size(), 1u);
}

TEST(Network, InjectBlockedReportsAndClears)
{
    // Fill tile 0's local channel-0 buffer while its head cannot
    // advance (destination IQ refuses), then check the fast-path flag.
    Sink sink;
    sink.accept = false;
    NocConfig config = smallConfig(NocTopology::torus, 2);
    config.bufferSlots = 2;
    Network net(config, sink.fn());
    Cycle cycle = 0;
    // Keep injecting until the buffer refuses.
    while (true) {
        sink.now = cycle;
        net.step(cycle);
        const InjectResult res =
            net.tryInject(makeMsg(0, 0, 3), 1, cycle);
        ++cycle;
        if (res == InjectResult::bufferFull)
            break;
        ASSERT_LT(cycle, 1000u);
    }
    EXPECT_TRUE(net.injectBlocked(1, 0));
    sink.accept = true;
    net.wakeRouter(0);
    drain(net, sink, cycle);
    EXPECT_FALSE(net.injectBlocked(1, 0));
}

TEST(Network, WireStatsFollowTopology)
{
    // The same route charges twice the wire length on a folded torus.
    auto wire_units = [](NocTopology type) {
        Sink sink;
        Network net(smallConfig(type, 8), sink.fn());
        EXPECT_EQ(net.tryInject(makeMsg(3, 1, 2), 0, 0),
                  InjectResult::ok);
        drain(net, sink, 0);
        return net.stats().flitWireTiles;
    };
    EXPECT_EQ(wire_units(NocTopology::torus),
              2 * wire_units(NocTopology::mesh));
}

TEST(Network, SelfAddressedMessageDelivers)
{
    Sink sink;
    Network net(smallConfig(NocTopology::torus, 4), sink.fn());
    EXPECT_EQ(net.tryInject(makeMsg(0, 1, 2), 0, 0),
              InjectResult::ok);
    drain(net, sink, 0);
    EXPECT_EQ(sink.delivered.size(), 1u);
    EXPECT_EQ(net.stats().flitHops, 0u); // never left the router
}

/** Random all-to-all traffic must always drain (deadlock freedom). */
class NetworkDrain
    : public ::testing::TestWithParam<std::tuple<NocTopology, int>>
{
};

TEST_P(NetworkDrain, RandomTrafficDrains)
{
    const auto [topology, seed] = GetParam();
    const std::uint32_t side = 6;
    NocConfig config = smallConfig(topology, side);
    config.bufferSlots = 2; // minimum legal: stresses the bubble rule
    Sink sink;
    Network net(config, sink.fn());
    Rng rng(static_cast<std::uint64_t>(seed));

    const unsigned total = 2000;
    unsigned injected = 0;
    Cycle cycle = 0;
    std::uint64_t want_words = 0;
    while (injected < total || !net.quiescent()) {
        sink.now = cycle;
        net.step(cycle);
        // Every tile tries to inject one random message per cycle.
        for (TileId src = 0;
             src < side * side && injected < total; ++src) {
            const auto channel =
                static_cast<ChannelId>(rng.below(2));
            const auto dest = static_cast<TileId>(
                rng.below(side * side));
            Message msg = makeMsg(dest, channel,
                                  config.msgWords[channel]);
            if (net.tryInject(msg, src, cycle) == InjectResult::ok) {
                ++injected;
                want_words += msg.numWords;
            }
        }
        ++cycle;
        ASSERT_LT(cycle, 200000u) << "network deadlocked";
    }
    EXPECT_EQ(sink.delivered.size(), total);
    EXPECT_EQ(net.stats().messagesInjected, total);
    EXPECT_EQ(net.stats().messagesDelivered, total);
    EXPECT_EQ(net.inFlight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, NetworkDrain,
    ::testing::Combine(::testing::Values(NocTopology::mesh,
                                         NocTopology::torus,
                                         NocTopology::torusRuche),
                       ::testing::Values(1, 2, 3)));

/** Hot-spot traffic (everyone to one tile) also drains. */
TEST(Network, HotSpotTrafficDrains)
{
    const std::uint32_t side = 6;
    NocConfig config = smallConfig(NocTopology::torus, side);
    Sink sink;
    Network net(config, sink.fn());
    unsigned injected = 0;
    Cycle cycle = 0;
    while (injected < 1000 || !net.quiescent()) {
        sink.now = cycle;
        net.step(cycle);
        for (TileId src = 0; src < side * side && injected < 1000;
             ++src) {
            if (net.tryInject(makeMsg(17, 1, 2), src, cycle) ==
                InjectResult::ok) {
                ++injected;
            }
        }
        ++cycle;
        ASSERT_LT(cycle, 200000u) << "network deadlocked";
    }
    EXPECT_EQ(sink.delivered.size(), 1000u);
    for (const auto& [when, msg] : sink.delivered)
        EXPECT_EQ(msg.dest, 17u);
}

TEST(Network, RouterActiveCyclesTracked)
{
    Sink sink;
    Network net(smallConfig(NocTopology::torus, 4), sink.fn());
    EXPECT_EQ(net.tryInject(makeMsg(3, 1, 2), 0, 0),
              InjectResult::ok);
    drain(net, sink, 0);
    // Source router moved flits; the destination router too.
    EXPECT_GT(net.routerActiveCycles()[0], 0u);
    EXPECT_GT(net.routerActiveCycles()[3], 0u);
    std::uint64_t total = 0;
    for (const Cycle c : net.routerActiveCycles())
        total += c;
    // Inject + forward overlap at the source (2 + 1 cycles), and the
    // delivery occupies the destination for the message length.
    EXPECT_GE(total, 4u);
}

TEST(Network, RejectsBadMessages)
{
    Sink sink;
    Network net(smallConfig(NocTopology::torus, 4), sink.fn());
    Message bad = makeMsg(1, 0, 2); // channel 0 expects 3 words
    EXPECT_DEATH((void)net.tryInject(bad, 0, 0), "length");
    Message far = makeMsg(200, 1, 2); // outside the 4x4 grid
    EXPECT_DEATH((void)net.tryInject(far, 0, 0), "bad tile");
}

} // namespace
} // namespace dalorex
