/**
 * @file
 * Randomized end-to-end property tests: random graphs, random machine
 * configurations, every kernel — the run must terminate (no deadlock)
 * and match the sequential reference. Each seed derives the whole
 * scenario deterministically, so failures replay exactly.
 */

#include <gtest/gtest.h>

#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "common/rng.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"

namespace dalorex
{
namespace
{

struct Scenario
{
    Csr graph;
    MachineConfig config;
    QueueSizing sizing;
};

Scenario
deriveScenario(std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b9ull + 1);
    Scenario s;

    // Random graph: scale 7..10, edge factor 2..10, sometimes a
    // pathological shape instead of RMAT.
    const unsigned shape = static_cast<unsigned>(rng.below(4));
    if (shape == 0) {
        // Long path with chords: high diameter.
        const VertexId n =
            static_cast<VertexId>(rng.range(64, 1200));
        EdgeList edges;
        for (VertexId v = 0; v + 1 < n; ++v)
            edges.emplace_back(v, v + 1);
        for (VertexId k = 0; k < n / 4; ++k)
            edges.emplace_back(
                static_cast<VertexId>(rng.below(n)),
                static_cast<VertexId>(rng.below(n)));
        s.graph = buildCsr(n, edges);
    } else {
        RmatParams params;
        params.scale = static_cast<unsigned>(rng.range(7, 10));
        params.edgeFactor = static_cast<unsigned>(rng.range(2, 10));
        params.seed = seed;
        s.graph = rmatGraph(params);
    }

    // Random machine.
    const std::uint32_t widths[] = {1, 2, 3, 4, 5, 8};
    s.config.width = widths[rng.below(6)];
    s.config.height = widths[rng.below(6)];
    const NocTopology topologies[] = {NocTopology::mesh,
                                      NocTopology::torus,
                                      NocTopology::torusRuche};
    s.config.topology = topologies[rng.below(3)];
    if (s.config.topology == NocTopology::torusRuche) {
        if (std::min(s.config.width, s.config.height) <= 2)
            s.config.topology = NocTopology::torus;
        else
            s.config.rucheFactor = 2;
    }
    s.config.policy = rng.chance(0.5) ? SchedPolicy::trafficAware
                                      : SchedPolicy::roundRobin;
    s.config.distribution = rng.chance(0.5)
                                ? Distribution::lowOrder
                                : Distribution::highOrder;
    s.config.barrier = rng.chance(0.5);
    s.config.invokeOverhead =
        rng.chance(0.25) ? static_cast<std::uint32_t>(
                               rng.range(1, 60))
                         : 0;
    s.config.nocBufferSlots =
        static_cast<std::uint32_t>(rng.range(2, 6));

    // Random (tight) queue sizing.
    s.sizing.iq1 = static_cast<std::uint32_t>(rng.range(2, 64));
    s.sizing.iq2 = static_cast<std::uint32_t>(rng.range(4, 128));
    s.sizing.iq3 = static_cast<std::uint32_t>(rng.range(8, 512));
    s.sizing.cq1 = static_cast<std::uint32_t>(rng.range(2, 64));
    s.sizing.oqt2 = static_cast<std::uint32_t>(rng.range(2, 128));
    s.sizing.cq2 = s.sizing.oqt2 * 2;
    return s;
}

class FuzzMatrix : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzMatrix, RandomScenarioMatchesReference)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    const Scenario s = deriveScenario(seed);
    Rng rng(seed);
    const KernelInfo* kernel =
        allKernels()[rng.below(allKernels().size())];

    KernelSetup setup = makeKernelSetup(*kernel, s.graph, seed);
    setup.iterations = static_cast<unsigned>(rng.range(1, 5));
    auto app = setup.makeApp();
    app->setQueueSizing(s.sizing);
    Machine machine(s.config, setup.graph.numVertices,
                    setup.graph.numEdges);
    machine.run(*app);

    if (setup.floatResult()) {
        const std::vector<double> want = setup.referenceFloats();
        const std::vector<double> got = app->gatherFloats(machine);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t v = 0; v < got.size(); ++v)
            ASSERT_NEAR(got[v], want[v],
                        std::max(1e-9, 1e-3 * want[v]))
                << "seed " << seed << " vertex " << v;
    } else {
        ASSERT_EQ(app->gatherValues(machine),
                  setup.referenceWords())
            << "seed " << seed << " kernel " << kernel->display;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMatrix,
                         ::testing::Range(1, 41));

} // namespace
} // namespace dalorex
