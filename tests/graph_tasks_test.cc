/**
 * @file
 * Micro-level tests of the T1..T4 task bodies through small machines
 * with controlled graphs: T1's chunk-border/OQT2 range splitting, T4's
 * duplicate-free frontier draining, work optimality of synchronized
 * BFS, and the float payload encoding.
 */

#include <gtest/gtest.h>

#include "apps/bfs.hh"
#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "graph/partition.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"

namespace dalorex
{
namespace
{

TEST(FloatWords, RoundTrip)
{
    for (const float f : {0.0f, 1.0f, -3.5f, 1e-20f, 3.14159f}) {
        EXPECT_EQ(wordToFloat(floatToWord(f)), f);
    }
}

/** Star graph: hub 0 with `spokes` out-neighbors. */
Csr
star(VertexId spokes)
{
    EdgeList edges;
    for (VertexId v = 1; v <= spokes; ++v)
        edges.emplace_back(0, v);
    return buildCsr(spokes + 1, edges);
}

/**
 * Count the CQ1 messages T1 must emit for one contiguous edge range
 * under chunk-border and OQT2 splitting.
 */
std::uint32_t
expectedPieces(const Partition& part, EdgeId begin, EdgeId end,
               std::uint32_t oqt2)
{
    std::uint32_t pieces = 0;
    while (begin < end) {
        EdgeId split = part.edgeRangeSplit(begin, end);
        split = std::min<EdgeId>(split, begin + oqt2);
        begin = split;
        ++pieces;
    }
    return pieces;
}

TEST(T1Splitting, ChunkBordersAndOqt2)
{
    // Hub with 1000 edges across 4 tiles => edgesPerChunk = 250.
    const Csr graph = star(1000);
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    QueueSizing sizing;
    sizing.oqt2 = 100; // forces OQT2 splits inside each chunk
    sizing.cq2 = 200;
    app->setQueueSizing(sizing);
    MachineConfig config;
    config.width = 2;
    config.height = 2;
    Machine machine(config, graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app);

    const Partition part(graph.numVertices, graph.numEdges, 4,
                         Distribution::lowOrder);
    const std::uint32_t pieces = expectedPieces(
        part, graph.rowPtr[0], graph.rowPtr[1], sizing.oqt2);
    // Every piece is one CQ1 message, i.e., one T2 invocation.
    EXPECT_EQ(stats.invocationsPerTask[kT2], pieces);
    // The hub's range crosses 3 chunk borders and each 250-edge chunk
    // splits into 3 OQT2 batches: 12 pieces overall.
    EXPECT_EQ(pieces, 12u);
    // Each spoke receives exactly one update.
    EXPECT_EQ(stats.invocationsPerTask[kT3], 1000u);
}

TEST(T1Splitting, ZeroDegreeRootTerminates)
{
    // Root with no out-edges: T1 pops it and the run ends idle.
    const Csr graph = buildCsr(4, {{1, 2}});
    BfsApp app(graph, 0);
    MachineConfig config;
    config.width = 2;
    config.height = 2;
    Machine machine(config, graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(app);
    EXPECT_EQ(stats.invocationsPerTask[kT2], 0u);
    const std::vector<Word> dist = app.gatherValues(machine);
    EXPECT_EQ(dist[0], 0u);
    EXPECT_EQ(dist[1], infDist);
}

TEST(T4Draining, NoDuplicateExploration)
{
    // Synchronized BFS on a star explores each vertex exactly once:
    // total edges processed equals reachable edges, and T3 runs once
    // per edge.
    const Csr graph = star(500);
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    MachineConfig config;
    config.width = 4;
    config.height = 4;
    config.barrier = true;
    Machine machine(config, graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app);
    EXPECT_EQ(stats.edgesProcessed, 500u);
    EXPECT_EQ(stats.invocationsPerTask[kT3], 500u);
}

TEST(T4Draining, TinyIq1StillDrainsEverything)
{
    RmatParams params;
    params.scale = 8;
    params.edgeFactor = 5;
    const Csr graph = rmatGraph(params);
    const KernelSetup setup = makeKernelSetup("wcc", graph);
    auto app = setup.makeApp();
    QueueSizing sizing;
    sizing.iq1 = 2; // brutal throttling of exploration
    app->setQueueSizing(sizing);
    MachineConfig config;
    config.width = 4;
    config.height = 4;
    Machine machine(config, setup.graph.numVertices,
                    setup.graph.numEdges);
    machine.run(*app);
    EXPECT_EQ(app->gatherValues(machine), setup.referenceWords());
}

TEST(SyncBfs, WorkOptimalEdgeCount)
{
    // Epoch-synchronized BFS processes each reachable vertex's edges
    // at most twice (once when reached, possibly once more in the
    // epoch after an improvement) — on skewed RMAT graphs it stays
    // within a few percent of one pass over reachable edges.
    RmatParams params;
    params.scale = 10;
    params.edgeFactor = 8;
    const Csr graph = rmatGraph(params);
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    MachineConfig config;
    config.width = 4;
    config.height = 4;
    config.barrier = true;
    Machine machine(config, graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app);

    const std::vector<Word> dist = setup.referenceWords();
    std::uint64_t reachable_edges = 0;
    for (VertexId v = 0; v < graph.numVertices; ++v)
        if (dist[v] != infDist)
            reachable_edges += graph.degree(v);
    EXPECT_GE(stats.edgesProcessed, reachable_edges);
    EXPECT_LE(stats.edgesProcessed, reachable_edges * 5 / 4);
}

TEST(CrawlOrder, HubGetsIdZero)
{
    RmatParams params;
    params.scale = 10;
    params.edgeFactor = 8;
    const Csr graph = rmatGraph(params);
    const Csr crawl = crawlOrder(graph);
    // Vertex 0 of the crawl order is the max-degree vertex of the
    // undirected view; in particular its out-degree is near the top.
    const Csr und = symmetrize(crawl);
    for (VertexId v = 1; v < und.numVertices; ++v)
        EXPECT_GE(und.degree(0), und.degree(v));
}

TEST(CrawlOrder, PreservesDegreeMultiset)
{
    RmatParams params;
    params.scale = 9;
    const Csr graph = rmatGraph(params);
    const Csr crawl = crawlOrder(graph);
    EXPECT_EQ(crawl.numEdges, graph.numEdges);
    std::vector<EdgeId> a(graph.numVertices);
    std::vector<EdgeId> b(graph.numVertices);
    for (VertexId v = 0; v < graph.numVertices; ++v) {
        a[v] = graph.degree(v);
        b[v] = crawl.degree(v);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
}

TEST(CrawlOrder, NeighborsGetNearbyIds)
{
    RmatParams params;
    params.scale = 10;
    params.edgeFactor = 8;
    const Csr shuffled = rmatGraph(params);
    const Csr crawl = crawlOrder(shuffled);
    auto mean_gap = [](const Csr& g) {
        double total = 0.0;
        for (VertexId u = 0; u < g.numVertices; ++u)
            for (EdgeId i = g.rowPtr[u]; i < g.rowPtr[u + 1]; ++i)
                total += std::abs(double(u) - double(g.colIdx[i]));
        return total / g.numEdges;
    };
    // Crawl order produces far smaller id distance between endpoints
    // than the shuffled input — the SNAP-like locality structure.
    EXPECT_LT(mean_gap(crawl), 0.7 * mean_gap(shuffled));
}

TEST(RmatShuffle, RemovesPowerOfTwoHubAliasing)
{
    // Unshuffled Kronecker hubs sit at indices that alias to tile 0
    // under mod-256; the Graph500 shuffle removes the pathology.
    RmatParams raw;
    raw.scale = 12;
    raw.edgeFactor = 10;
    raw.shuffleIds = false;
    RmatParams shuffled = raw;
    shuffled.shuffleIds = true;

    auto tile0_share = [](const Csr& g) {
        std::vector<std::uint64_t> updates(256, 0);
        for (const VertexId dst : g.colIdx)
            ++updates[dst % 256];
        std::uint64_t total = 0;
        for (const auto u : updates)
            total += u;
        return double(updates[0]) / double(total);
    };
    const double raw_share = tile0_share(rmatGraph(raw));
    const double shuf_share = tile0_share(rmatGraph(shuffled));
    EXPECT_GT(raw_share, 4.0 / 256);  // hubs alias onto tile 0
    EXPECT_LT(shuf_share, 2.5 / 256); // near-uniform after shuffle
}

} // namespace
} // namespace dalorex
