/**
 * @file
 * Tests of the sweep orchestrator: grid expansion (cartesian order,
 * axis dedup, edge-case diagnostics), the worker pool, aggregation's
 * derived columns, the JSONL/CSV renderers, and the `dalorex sweep`
 * subcommand end to end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/journal.hh"
#include "graph/dataset_cache.hh"
#include "graph/graphfile.hh"
#include "sweep/aggregate.hh"
#include "sweep/pool.hh"
#include "sweep/sweep.hh"
#include "sweep/sweep_cli.hh"

namespace dalorex
{
namespace sweep
{
namespace
{

/** A small two-kernel, two-grid plan over a scale-8 RMAT graph. */
Plan
miniPlan()
{
    Plan plan;
    plan.kernels = {kernelOrDie("bfs"), kernelOrDie("wcc")};
    plan.datasets = {{"", 8}};
    plan.grids = {{2, 2}, {4, 4}};
    plan.seed = 3;
    return plan;
}

TEST(GridShapeParse, AcceptsWxHAndRejectsJunk)
{
    GridShape shape;
    ASSERT_TRUE(parseGridShape("16x16", shape));
    EXPECT_EQ(shape.width, 16u);
    EXPECT_EQ(shape.height, 16u);
    ASSERT_TRUE(parseGridShape("4x2", shape));
    EXPECT_EQ(shape.width, 4u);
    EXPECT_EQ(shape.height, 2u);

    EXPECT_FALSE(parseGridShape("", shape));
    EXPECT_FALSE(parseGridShape("16", shape));
    EXPECT_FALSE(parseGridShape("x16", shape));
    EXPECT_FALSE(parseGridShape("16x", shape));
    EXPECT_FALSE(parseGridShape("16x16x16", shape));
    EXPECT_FALSE(parseGridShape("0x4", shape));
    EXPECT_FALSE(parseGridShape("axb", shape));
}

TEST(Expand, CartesianProductInKernelMajorOrder)
{
    const ExpandResult result = expand(miniPlan());
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_EQ(result.points.size(), 4u);
    EXPECT_EQ(result.points[0].kernel->name, "bfs");
    EXPECT_EQ(result.points[0].machine.width, 2u);
    EXPECT_EQ(result.points[1].kernel->name, "bfs");
    EXPECT_EQ(result.points[1].machine.width, 4u);
    EXPECT_EQ(result.points[2].kernel->name, "wcc");
    EXPECT_EQ(result.points[3].kernel->name, "wcc");
    // The default baseline is the first grid shape.
    EXPECT_EQ(result.baseline, (GridShape{2, 2}));
}

TEST(Expand, DuplicateAxisPointsCollapse)
{
    Plan plan = miniPlan();
    plan.kernels = {kernelOrDie("bfs"), kernelOrDie("bfs"),
                    kernelOrDie("bfs")};
    plan.grids = {{2, 2}, {4, 4}, {2, 2}};
    plan.datasets = {{"", 8}, {"", 8}};
    const ExpandResult result = expand(plan);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.points.size(), 2u); // 1 kernel x 1 ds x 2 grids
}

TEST(Expand, EmptyAxisIsACleanError)
{
    Plan plan = miniPlan();
    plan.kernels.clear();
    ExpandResult result = expand(plan);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("kernel axis"), std::string::npos);

    plan = miniPlan();
    plan.grids.clear();
    result = expand(plan);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("grid axis"), std::string::npos);

    plan = miniPlan();
    plan.topologies.clear();
    result = expand(plan);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("topology axis"), std::string::npos);
}

TEST(Expand, UnknownDatasetIsACleanError)
{
    Plan plan = miniPlan();
    plan.datasets = {{"orkut", 0}};
    const ExpandResult result = expand(plan);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("orkut"), std::string::npos);
    // One line: no embedded newline in the diagnostic.
    EXPECT_EQ(result.error.find('\n'), std::string::npos);
}

TEST(Expand, RejectsScaleOverrideOnRmatNames)
{
    // rmatN names carry their scale; a pinned override would be
    // silently ignored downstream, so it is a plan error.
    Plan plan = miniPlan();
    plan.datasets = {{"rmat16", 8}};
    const ExpandResult result = expand(plan);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("rmat16"), std::string::npos);
    EXPECT_EQ(result.error.find('\n'), std::string::npos);
}

TEST(Expand, MissingBaselineIsACleanError)
{
    Plan plan = miniPlan();
    plan.baseline = {16, 16};
    const ExpandResult result = expand(plan);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("16x16"), std::string::npos);
    EXPECT_EQ(result.error.find('\n'), std::string::npos);
}

TEST(Expand, RucheFactorAppliesOnlyToRucheTopology)
{
    Plan plan = miniPlan();
    plan.topologies = {NocTopology::torus, NocTopology::torusRuche};
    plan.rucheFactor = 4;
    const ExpandResult result = expand(plan);
    ASSERT_TRUE(result.ok) << result.error;
    for (const cli::Options& o : result.points) {
        if (o.machine.topology == NocTopology::torusRuche)
            EXPECT_EQ(o.machine.rucheFactor, 4u);
        else
            EXPECT_EQ(o.machine.rucheFactor, 0u);
    }
}

TEST(Pool, CoversEveryIndexExactlyOnce)
{
    std::vector<int> hits(199, 0);
    runIndexed(hits.size(), 8,
               [&](std::size_t i) { hits[i] += 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;

    std::vector<int> serial(3, 0);
    runIndexed(serial.size(), 1,
               [&](std::size_t i) { serial[i] += 1; });
    EXPECT_EQ(serial, std::vector<int>({1, 1, 1}));
}

TEST(RunAggregate, DerivedColumnsAgainstBaseline)
{
    const RunResult result = run(miniPlan(), 2);
    ASSERT_TRUE(result.ok) << result.error;
    const std::vector<cli::Report> reports = result.okReports();
    ASSERT_EQ(reports.size(), 4u);

    const AggregateResult agg =
        aggregate(reports, result.baseline);
    ASSERT_TRUE(agg.ok) << agg.error;
    ASSERT_EQ(agg.rows.size(), 4u);

    for (const Row& row : agg.rows) {
        EXPECT_TRUE(row.hasBaseline);
        EXPECT_GT(row.energyPerEdgeJ, 0.0);
        if (row.isBaseline) {
            EXPECT_DOUBLE_EQ(row.speedup, 1.0);
            EXPECT_DOUBLE_EQ(row.parallelEff, 1.0);
        } else {
            // 4x4 has 4x the tiles of the 2x2 baseline.
            EXPECT_NEAR(row.parallelEff, row.speedup / 4.0, 1e-12);
        }
    }
    EXPECT_TRUE(agg.rows[0].isBaseline);
    EXPECT_FALSE(agg.rows[1].isBaseline);
}

TEST(RunAggregate, ScaledDatasetVariantsGroupSeparately)
{
    // Two scales of the same named stand-in share a generated name
    // ("AZ"); grouping and labels must still keep them apart.
    Plan plan;
    plan.kernels = {kernelOrDie("bfs")};
    plan.datasets = {{"amazon", 5}, {"amazon", 6}};
    plan.grids = {{1, 1}, {2, 2}};
    plan.seed = 3;

    const RunResult result = run(plan, 2);
    ASSERT_TRUE(result.ok) << result.error;
    const AggregateResult agg =
        aggregate(result.okReports(), result.baseline);
    ASSERT_TRUE(agg.ok) << agg.error;
    ASSERT_EQ(agg.rows.size(), 4u);
    // Each scale's 1x1 row is its own baseline with speedup 1.0.
    for (const Row& row : agg.rows) {
        if (row.report.options.machine.width == 1) {
            EXPECT_TRUE(row.isBaseline);
            EXPECT_DOUBLE_EQ(row.speedup, 1.0);
        }
    }
    const std::string jsonl = toJsonl(agg.rows);
    EXPECT_NE(jsonl.find("\"dataset\":\"AZ@5\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"dataset\":\"AZ@6\""), std::string::npos);
}

TEST(RunAggregate, MissingBaselineErrorsOrSkips)
{
    // Drop the baseline rows so every group misses the 2x2 shape.
    const RunResult result = run(miniPlan(), 2);
    ASSERT_TRUE(result.ok) << result.error;
    std::vector<cli::Report> no_baseline;
    for (const cli::Report& report : result.okReports())
        if (report.options.machine.width != 2)
            no_baseline.push_back(report);

    const AggregateResult strict =
        aggregate(no_baseline, result.baseline,
                  MissingBaseline::error);
    EXPECT_FALSE(strict.ok);
    EXPECT_NE(strict.error.find("2x2"), std::string::npos);
    EXPECT_EQ(strict.error.find('\n'), std::string::npos);

    const AggregateResult skip = aggregate(
        no_baseline, result.baseline, MissingBaseline::skip);
    ASSERT_TRUE(skip.ok) << skip.error;
    ASSERT_EQ(skip.rows.size(), no_baseline.size());
    for (const Row& row : skip.rows)
        EXPECT_FALSE(row.hasBaseline);
    const Table table = toTable(skip.rows);
    EXPECT_NE(table.toText().find('-'), std::string::npos);
    EXPECT_NE(toJsonl(skip.rows).find("\"speedup\":null"),
              std::string::npos);
}

/** Structural JSON check: balanced braces and quotes. */
void
expectWellFormedJson(const std::string& json)
{
    int depth = 0;
    bool in_string = false;
    for (const char c : json) {
        if (in_string) {
            in_string = c != '"';
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{')
            ++depth;
        else if (c == '}') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(json.find(",}"), std::string::npos);
}

TEST(Renderers, JsonlHasOneObjectPerRowAndSharedSchema)
{
    const RunResult result = run(miniPlan(), 2);
    ASSERT_TRUE(result.ok) << result.error;
    const AggregateResult agg =
        aggregate(result.okReports(), result.baseline);
    ASSERT_TRUE(agg.ok) << agg.error;

    const std::string jsonl = toJsonl(agg.rows);
    std::istringstream lines(jsonl);
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        ++count;
        expectWellFormedJson(line);
        for (const char* key :
             {"\"kernel\":", "\"tiles\":", "\"cycles\":",
              "\"speedup\":", "\"parallel_efficiency\":",
              "\"energy_per_edge_j\":"})
            EXPECT_NE(line.find(key), std::string::npos) << key;
    }
    EXPECT_EQ(count, agg.rows.size());

    const Table table = toTable(agg.rows);
    EXPECT_EQ(table.numRows(), agg.rows.size());
    const std::string csv = table.toCsv();
    EXPECT_NE(csv.find("speedup"), std::string::npos);
    EXPECT_NE(csv.find("energy/edge_J"), std::string::npos);
}

int
runSweep(std::vector<const char*> args, std::string& out,
         std::string& err)
{
    args.insert(args.begin(), "sweep");
    std::ostringstream out_stream;
    std::ostringstream err_stream;
    const int code =
        sweepMain(static_cast<int>(args.size()), args.data(),
                  out_stream, err_stream);
    out = out_stream.str();
    err = err_stream.str();
    return code;
}

TEST(SweepMain, EndToEndWithCsvOutput)
{
    const std::string csv_path =
        testing::TempDir() + "sweep_test_out.csv";
    std::string out;
    std::string err;
    const int code = runSweep(
        {"--kernel", "bfs,wcc", "--grid-size", "2x2,4x4", "--scale",
         "8", "--threads", "2", "--csv", csv_path.c_str()},
        out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_NE(out.find("speedup"), std::string::npos);

    std::ifstream csv(csv_path);
    ASSERT_TRUE(csv.good());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(csv, line))
        ++lines;
    EXPECT_EQ(lines, 1u + 4u); // header + one row per point
    std::remove(csv_path.c_str());
}

TEST(SweepMain, JsonModePrintsJsonl)
{
    std::string out;
    std::string err;
    const int code =
        runSweep({"--kernel", "bfs", "--grid-size", "2x2", "--scale",
                  "8", "--threads", "1", "--json"},
                 out, err);
    EXPECT_EQ(code, 0) << err;
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.front(), '{');
    expectWellFormedJson(out);
}

TEST(SweepMain, RejectsBadThreadsWithRangeError)
{
    for (const char* bad : {"0", "257", "abc", "-4"}) {
        std::string out;
        std::string err;
        const int code =
            runSweep({"--threads", bad, "--kernel", "bfs"}, out, err);
        EXPECT_EQ(code, 2) << bad;
        EXPECT_NE(err.find("--threads"), std::string::npos) << bad;
        EXPECT_TRUE(out.empty()) << bad;
    }
}

TEST(SweepMain, RejectsBadGridAndUnknownDataset)
{
    std::string out;
    std::string err;
    EXPECT_EQ(runSweep({"--grid-size", "4by4"}, out, err), 2);
    EXPECT_NE(err.find("grid"), std::string::npos);

    EXPECT_EQ(runSweep({"--dataset", "orkut", "--grid-size", "2x2"},
                       out, err),
              2);
    EXPECT_NE(err.find("orkut"), std::string::npos);

    EXPECT_EQ(runSweep({"--grid-size", "2x2", "--baseline", "8x8",
                        "--scale", "8"},
                       out, err),
              2);
    EXPECT_NE(err.find("8x8"), std::string::npos);
}

TEST(Expand, EngineThreadsAxisMultipliesPoints)
{
    Plan plan = miniPlan();
    plan.engineThreads = {1, 4};
    const ExpandResult result = expand(plan);
    ASSERT_TRUE(result.ok) << result.error;
    // 2 kernels x 2 grids x 2 engine-thread values.
    ASSERT_EQ(result.points.size(), 8u);
    EXPECT_EQ(result.points[0].machine.engineThreads, 1u);
    EXPECT_EQ(result.points[1].machine.engineThreads, 4u);

    plan.engineThreads = {0};
    EXPECT_FALSE(expand(plan).ok);
    plan.engineThreads = {};
    EXPECT_FALSE(expand(plan).ok);
}

TEST(Expand, EngineThreadsClampToEachGridsTiles)
{
    Plan plan = miniPlan();
    plan.grids = {{2, 2}, {4, 4}};
    plan.engineThreads = {16};
    const ExpandResult result = expand(plan);
    ASSERT_TRUE(result.ok) << result.error;
    for (const cli::Options& point : result.points) {
        const unsigned tiles =
            point.machine.width * point.machine.height;
        EXPECT_EQ(point.machine.engineThreads, std::min(16u, tiles))
            << toString(GridShape{point.machine.width,
                                  point.machine.height});
    }
}

TEST(Expand, EngineBarrierAndRebalanceApplyToEveryPoint)
{
    Plan plan = miniPlan();
    plan.engineBarrier = EngineBarrier::central;
    plan.engineRebalance = true;
    const ExpandResult result = expand(plan);
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_FALSE(result.points.empty());
    for (const cli::Options& point : result.points) {
        EXPECT_EQ(point.machine.engineBarrier, EngineBarrier::central);
        EXPECT_TRUE(point.machine.engineRebalance);
    }
}

TEST(RunAggregate, EngineThreadsAxisChangesNothingButTheColumn)
{
    // The engine contract one level up: points differing only in
    // engineThreads produce byte-identical stats, so their JSONL rows
    // differ in nothing but the engine_threads field.
    Plan plan;
    plan.kernels = {kernelOrDie("bfs")};
    plan.datasets = {{"", 8}};
    plan.grids = {{4, 4}};
    plan.engineThreads = {1, 4};
    plan.seed = 3;
    const RunResult result = run(plan, 1);
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_TRUE(result.allRowsOk());
    const AggregateResult agg =
        aggregate(result.okReports(), result.baseline);
    ASSERT_TRUE(agg.ok) << agg.error;
    ASSERT_EQ(agg.rows.size(), 2u);
    EXPECT_EQ(agg.rows[0].report.stats.cycles,
              agg.rows[1].report.stats.cycles);

    std::istringstream jsonl(toJsonl(agg.rows));
    std::string first;
    std::string second;
    ASSERT_TRUE(std::getline(jsonl, first));
    ASSERT_TRUE(std::getline(jsonl, second));
    const std::string one = "\"engine_threads\":1";
    const std::string four = "\"engine_threads\":4";
    EXPECT_NE(first.find(one), std::string::npos);
    EXPECT_NE(second.find(four), std::string::npos);
    second.replace(second.find(four), four.size(), one);
    EXPECT_EQ(first, second);
}

TEST(SweepParse, EngineThreadsAndParamFlags)
{
    const std::vector<const char*> args = {
        "sweep",         "--engine-threads", "1,4",
        "--engine-scan", "full",
        "--param",       "damping=0.9,iterations=20",
        "--pagerank-iters", "7"};
    const SweepParseResult parsed =
        parseSweepArgs(static_cast<int>(args.size()), args.data());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const Plan& plan = parsed.options.plan;
    EXPECT_EQ(plan.engineThreads, (std::vector<unsigned>{1, 4}));
    EXPECT_EQ(plan.engineScan, EngineScan::full);
    ASSERT_EQ(plan.params.size(), 3u);
    EXPECT_EQ(plan.params[0].name, "damping");
    EXPECT_DOUBLE_EQ(plan.params[0].value, 0.9);
    EXPECT_EQ(plan.params[1].name, "iterations");
    EXPECT_DOUBLE_EQ(plan.params[1].value, 20.0);
    // --pagerank-iters survives as a deprecated --param alias.
    EXPECT_EQ(plan.params[2].name, "iterations");
    EXPECT_DOUBLE_EQ(plan.params[2].value, 7.0);

    std::string out;
    std::string err;
    EXPECT_EQ(runSweep({"--engine-threads", "0"}, out, err), 2);
    EXPECT_NE(err.find("--engine-threads"), std::string::npos);
    EXPECT_EQ(runSweep({"--param", "frobnicate=1"}, out, err), 2);
    EXPECT_NE(err.find("frobnicate"), std::string::npos);
    // An explicit budget below the largest engine-threads value
    // cannot be honored without oversubscribing: refused.
    err.clear();
    EXPECT_EQ(runSweep({"--engine-threads", "8", "--threads", "2"},
                       out, err),
              2);
    EXPECT_NE(err.find("below the largest"), std::string::npos);
    EXPECT_EQ(runSweep({"--engine-scan", "lazy"}, out, err), 2);
}

TEST(SweepParse, EngineBarrierAndRebalanceFlags)
{
    const std::vector<const char*> args = {
        "sweep", "--engine-barrier", "central", "--engine-rebalance"};
    const SweepParseResult parsed =
        parseSweepArgs(static_cast<int>(args.size()), args.data());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.options.plan.engineBarrier,
              EngineBarrier::central);
    EXPECT_TRUE(parsed.options.plan.engineRebalance);

    std::string out;
    std::string err;
    EXPECT_EQ(runSweep({"--engine-barrier", "mcs"}, out, err), 2);
    EXPECT_NE(err.find("--engine-barrier"), std::string::npos);
}

TEST(SweepMain, EngineThreadsAboveGridTilesRunsClampedWithNote)
{
    std::string out;
    std::string err;
    const int code = runSweep({"--kernel", "bfs", "--grid-size",
                               "2x2", "--scale", "7",
                               "--engine-threads", "16", "--threads",
                               "16", "--json"},
                              out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_NE(err.find("clamped"), std::string::npos);
    EXPECT_NE(out.find("\"engine_threads\":4"), std::string::npos);
}

TEST(SweepParse, RepeatedAxisFlagsAppendConsistently)
{
    const std::vector<const char*> args = {
        "sweep",      "--topology", "mesh",     "--topology",
        "torus",      "--kernel",   "bfs",      "--kernel",
        "wcc",        "--policy",   "rr",       "--policy",
        "ta"};
    const SweepParseResult parsed =
        parseSweepArgs(static_cast<int>(args.size()), args.data());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const Plan& plan = parsed.options.plan;
    EXPECT_EQ(plan.topologies,
              (std::vector<NocTopology>{NocTopology::mesh,
                                        NocTopology::torus}));
    EXPECT_EQ(plan.kernels,
              (std::vector<const KernelInfo*>{kernelOrDie("bfs"),
                                              kernelOrDie("wcc")}));
    EXPECT_EQ(plan.policies,
              (std::vector<SchedPolicy>{SchedPolicy::roundRobin,
                                        SchedPolicy::trafficAware}));
}

TEST(RunAggregate, WorkersShareOneDatasetBuild)
{
    // The process-wide cache contract: a parallel sweep over one
    // dataset generates it exactly once, no matter how many workers
    // and points touch it.
    datasetCacheClear();
    Plan plan;
    plan.kernels = {kernelOrDie("bfs"), kernelOrDie("wcc")};
    plan.datasets = {{"", 8}};
    plan.grids = {{2, 2}, {4, 4}};
    plan.seed = 3;
    const RunResult result = run(expand(plan), 4);
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_TRUE(result.allRowsOk());
    const DatasetCacheStats stats = datasetCacheStats();
    EXPECT_EQ(stats.builds, 1u);
    EXPECT_EQ(stats.hits, 3u); // 4 points, one build
    datasetCacheClear();
}

TEST(Expand, RejectsScaleOverrideOnFileNames)
{
    Plan plan = miniPlan();
    plan.datasets = {{"file:some/graph.dlx", 8}};
    const ExpandResult result = expand(plan);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.error.find("fixed size"), std::string::npos)
        << result.error;
    EXPECT_EQ(result.error.find('\n'), std::string::npos);
}

TEST(SweepParse, FileDatasetPathsKeepTheirAtSigns)
{
    // file: names are paths; an '@' inside one is not a scale pin.
    const std::vector<const char*> args = {
        "sweep", "--dataset", "file:/tmp/snap@2026/graph.dlx"};
    const SweepParseResult parsed =
        parseSweepArgs(static_cast<int>(args.size()), args.data());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_EQ(parsed.options.plan.datasets.size(), 1u);
    EXPECT_EQ(parsed.options.plan.datasets[0].name,
              "file:/tmp/snap@2026/graph.dlx");
    EXPECT_EQ(parsed.options.plan.datasets[0].scale, 0u);
}

TEST(SweepMain, BadFileDatasetFailsItsRowsNotTheSweep)
{
    // One unreadable file: dataset on the axis fails as data (exit 1,
    // one diagnostic per row) while the healthy dataset's rows render.
    datasetCacheClear();
    std::string out;
    std::string err;
    const int code = runSweep(
        {"--kernel", "bfs", "--grid-size", "2x2", "--scale", "8",
         "--dataset", "file:no_such_graph.dlx", "--threads", "2"},
        out, err);
    EXPECT_EQ(code, 1) << err;
    EXPECT_NE(err.find("no_such_graph.dlx"), std::string::npos)
        << err;
    EXPECT_NE(out.find("rmat8"), std::string::npos) << out;
    datasetCacheClear();
}

TEST(SweepMain, FileDatasetMatchesItsGeneratedTwin)
{
    // A sweep over file:R8-snapshot and rmat8 must produce identical
    // result rows (modulo the dataset axis ordering): the loader is
    // bit-exact and the kernel RNG stream is unchanged.
    datasetCacheClear();
    const std::string path =
        testing::TempDir() + "sweep_twin_rmat8.dlx";
    std::string error;
    {
        const DatasetResult built = tryMakeDataset("rmat8", 3);
        ASSERT_TRUE(built.ok) << built.error;
        ASSERT_TRUE(saveGraphFile(path, built.dataset, error))
            << error;
    }
    const std::string file_name = "file:" + path;
    Plan plan;
    plan.kernels = {kernelOrDie("bfs")};
    plan.grids = {{2, 2}};
    plan.seed = 3;
    plan.datasets = {{"rmat8", 0}, {file_name, 0}};
    const RunResult result = run(expand(plan), 1);
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_TRUE(result.allRowsOk());
    const AggregateResult agg =
        aggregate(result.okReports(), result.baseline);
    ASSERT_TRUE(agg.ok) << agg.error;
    ASSERT_EQ(agg.rows.size(), 2u);
    EXPECT_EQ(agg.rows[0].report.stats.cycles,
              agg.rows[1].report.stats.cycles);
    EXPECT_EQ(agg.rows[0].report.datasetName,
              agg.rows[1].report.datasetName); // both "R8"
    std::remove(path.c_str());
    datasetCacheClear();
}

TEST(SweepMain, ListDatasetsMentionsTheCatalog)
{
    std::string out;
    std::string err;
    const int code = runSweep({"--list-datasets"}, out, err);
    EXPECT_EQ(code, 0) << err;
    for (const char* name :
         {"amazon", "wiki", "livejournal", "rmatN"})
        EXPECT_NE(out.find(name), std::string::npos) << name;
}

TEST(SweepMain, HelpCoversTheNewFlags)
{
    std::string out;
    std::string err;
    const int code = runSweep({"--help"}, out, err);
    EXPECT_EQ(code, 0);
    for (const char* flag :
         {"--threads", "--list-datasets", "--grid-size", "--baseline",
          "--barrier", "--journal", "--resume", "--retries",
          "--row-deadline-ms"})
        EXPECT_NE(out.find(flag), std::string::npos) << flag;
}

// --- fault tolerance: journal, resume, retries ------------------------

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST(SweepParse, FaultToleranceFlags)
{
    const std::vector<const char*> args = {
        "sweep",     "--journal",          "j.jsonl",
        "--resume",  "old.jsonl",          "--retries",
        "2",         "--retry-backoff-ms", "5",
        "--row-deadline-ms", "750"};
    const SweepParseResult parsed =
        parseSweepArgs(static_cast<int>(args.size()), args.data());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.options.journalPath, "j.jsonl");
    EXPECT_EQ(parsed.options.resumePath, "old.jsonl");
    EXPECT_EQ(parsed.options.retries, 2u);
    EXPECT_EQ(parsed.options.retryBackoffMs, 5u);
    EXPECT_EQ(parsed.options.rowDeadlineMs, 750u);

    std::string out;
    std::string err;
    EXPECT_EQ(runSweep({"--retries", "99"}, out, err), 2);
    EXPECT_NE(err.find("--retries"), std::string::npos);
}

TEST(SweepFault, KilledJournalResumesByteIdentically)
{
    // The checkpoint/resume acceptance test. A journaled sweep's
    // output files, and those of a second sweep resumed from a
    // torn copy of that journal (what a kill -9 mid-run leaves
    // behind), must be byte-identical — replayed rows come from the
    // journal payloads, not from re-execution.
    datasetCacheClear();
    const std::string dir = testing::TempDir();
    const std::string j_full = dir + "sweep_fault_full.journal";
    const std::string j_torn = dir + "sweep_fault_torn.journal";
    const std::string j_new = dir + "sweep_fault_resume.journal";
    const std::string a_rows = dir + "sweep_fault_a.jsonl";
    const std::string a_csv = dir + "sweep_fault_a.csv";
    const std::string b_rows = dir + "sweep_fault_b.jsonl";
    const std::string b_csv = dir + "sweep_fault_b.csv";
    for (const std::string& p :
         {j_full, j_torn, j_new, a_rows, a_csv, b_rows, b_csv})
        std::remove(p.c_str());

    std::string out;
    std::string err;
    const int code_a = runSweep(
        {"--kernel", "bfs,wcc", "--grid-size", "2x2,4x4", "--scale",
         "8", "--threads", "1", "--journal", j_full.c_str(),
         "--jsonl", a_rows.c_str(), "--csv", a_csv.c_str()},
        out, err);
    ASSERT_EQ(code_a, 0) << err;

    // Tear the journal after the header + two complete rows, with a
    // half-written record at the end — exactly a kill -9 footprint.
    {
        std::ifstream in(j_full);
        std::ofstream torn(j_torn, std::ios::binary);
        std::string line;
        int keep = 3; // header + 2 records
        while (keep-- > 0 && std::getline(in, line))
            torn << line << "\n";
        ASSERT_TRUE(std::getline(in, line));
        torn << line.substr(0, line.size() / 2); // no newline
    }

    const int code_b = runSweep(
        {"--kernel", "bfs,wcc", "--grid-size", "2x2,4x4", "--scale",
         "8", "--threads", "1", "--resume", j_torn.c_str(),
         "--journal", j_new.c_str(), "--jsonl", b_rows.c_str(),
         "--csv", b_csv.c_str()},
        out, err);
    ASSERT_EQ(code_b, 0) << err;
    EXPECT_NE(err.find("resumed 2 of 4"), std::string::npos) << err;

    const std::string a_rows_bytes = slurp(a_rows);
    ASSERT_FALSE(a_rows_bytes.empty());
    EXPECT_EQ(a_rows_bytes, slurp(b_rows))
        << "JSONL rows differ between journaled and resumed sweeps";
    const std::string a_csv_bytes = slurp(a_csv);
    ASSERT_FALSE(a_csv_bytes.empty());
    EXPECT_EQ(a_csv_bytes, slurp(b_csv))
        << "CSV differs between journaled and resumed sweeps";

    // Zero replayed rows were recomputed: the resumed journal holds
    // the 2 carried-forward records plus exactly the 2 missing rows.
    const journal::Replay replayed = journal::replay(j_new);
    ASSERT_TRUE(replayed.ok) << replayed.error;
    EXPECT_EQ(replayed.records.size(), 4u);

    for (const std::string& p :
         {j_full, j_torn, j_new, a_rows, a_csv, b_rows, b_csv})
        std::remove(p.c_str());
    datasetCacheClear();
}

TEST(SweepFault, ResumeRefusesAForeignPlan)
{
    datasetCacheClear();
    const std::string path =
        testing::TempDir() + "sweep_fault_foreign.journal";
    std::remove(path.c_str());
    std::string out;
    std::string err;
    ASSERT_EQ(runSweep({"--kernel", "bfs", "--grid-size", "2x2",
                        "--scale", "8", "--threads", "1",
                        "--journal", path.c_str()},
                       out, err),
              0)
        << err;
    // Same journal, different plan: refused before any row runs.
    err.clear();
    EXPECT_EQ(runSweep({"--kernel", "wcc", "--grid-size", "2x2",
                        "--scale", "8", "--threads", "1", "--resume",
                        path.c_str()},
                       out, err),
              2);
    EXPECT_NE(err.find("refusing to resume"), std::string::npos)
        << err;
    std::remove(path.c_str());
    datasetCacheClear();
}

TEST(SweepFault, TransientRowsRetryThenFailWithAttemptsJournaled)
{
    datasetCacheClear();
    datasetCacheSetNegativeTtlMs(0); // every attempt re-reads disk
    const std::string path =
        testing::TempDir() + "sweep_fault_retry.journal";
    std::remove(path.c_str());
    std::string out;
    std::string err;
    const int code = runSweep(
        {"--kernel", "bfs", "--grid-size", "2x2", "--dataset",
         "file:sweep_fault_no_such.dlx", "--threads", "1",
         "--retries", "2", "--retry-backoff-ms", "1", "--journal",
         path.c_str()},
        out, err);
    EXPECT_EQ(code, 1) << err; // rows failed, sweep survived
    const journal::Replay replayed = journal::replay(path);
    ASSERT_TRUE(replayed.ok) << replayed.error;
    ASSERT_EQ(replayed.records.size(), 1u);
    EXPECT_EQ(replayed.records[0].status, journal::RowStatus::failed);
    EXPECT_EQ(replayed.records[0].attempts, 3u) << "1 try + 2 retries";
    std::remove(path.c_str());
    datasetCacheSetNegativeTtlMs(200);
    datasetCacheClear();
}

} // namespace
} // namespace sweep
} // namespace dalorex
