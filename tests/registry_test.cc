/**
 * @file
 * Tests of the kernel registry: every registered kernel round-trips
 * name/alias parsing, renders in --list-kernels, expands under
 * `--kernel all`, and runs + validates on a tiny RMAT graph across
 * the topology x policy matrix.
 *
 * The suite also proves the API is open the hard way: it registers
 * two kernels of its own from this translation unit — one healthy,
 * one whose validator always rejects — and drives them through the
 * real CLI and sweep entry points with zero edits anywhere else. The
 * failing kernel exercises the row-level error path: its sweep row
 * fails with a one-line diagnostic while every other row survives.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "apps/graph_app.hh"
#include "common/text.hh"
#include "apps/histogram.hh"
#include "apps/kernels.hh"
#include "cli/cli.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"
#include "sweep/sweep_cli.hh"

namespace dalorex
{
namespace
{

// ---- self-registration from outside src/apps/ -------------------

KernelInfo
regtestKernelInfo()
{
    KernelInfo info;
    info.name = "regtest";
    info.display = "RegTest";
    info.aliases = {"registry-test"};
    info.summary = "test-only clone of the degree histogram, "
                   "registered from tests/registry_test.cc";
    info.tags = {"regtest"};
    info.order = 900;
    info.factory = [](const KernelSetup& setup) {
        return std::make_unique<DegreeHistogramApp>(setup.graph);
    };
    info.referenceWords = [](const KernelSetup& setup) {
        return referenceDegreeHistogram(setup.graph);
    };
    return info;
}

KernelInfo
regtestBadKernelInfo()
{
    KernelInfo info = regtestKernelInfo();
    info.name = "regtest-bad";
    info.display = "RegTestBad";
    info.aliases = {};
    info.summary = "test-only kernel whose validator always rejects";
    info.order = 901;
    info.validateWords = [](const KernelSetup&,
                            const std::vector<Word>&) {
        return ValidationResult::fail(0, "deliberate test mismatch");
    };
    return info;
}

DALOREX_REGISTER_KERNEL(regtestKernelInfo)
DALOREX_REGISTER_KERNEL(regtestBadKernelInfo)

/** The kernels shipped by the library (excludes this file's two). */
std::vector<const KernelInfo*>
shippedKernels()
{
    std::vector<const KernelInfo*> out;
    for (const KernelInfo* kernel : allKernels())
        if (!kernel->hasTag("regtest"))
            out.push_back(kernel);
    return out;
}

// ---- registry contents ------------------------------------------

TEST(Registry, ShipsTheNineKernelsInPaperOrder)
{
    std::vector<std::string> names;
    for (const KernelInfo* kernel : shippedKernels())
        names.push_back(kernel->name);
    EXPECT_EQ(names,
              (std::vector<std::string>{"bfs", "wcc", "pagerank",
                                        "sssp", "sssp-delta", "spmv",
                                        "kcore", "histogram",
                                        "triangle"}));
}

TEST(Registry, TagSetsMatchThePaperFigures)
{
    std::vector<std::string> fig5;
    for (const KernelInfo* kernel : fig5Kernels())
        fig5.push_back(kernel->name);
    EXPECT_EQ(fig5, (std::vector<std::string>{"bfs", "wcc",
                                              "pagerank", "sssp"}));

    std::vector<std::string> paper;
    for (const KernelInfo* kernel : paperKernels())
        paper.push_back(kernel->name);
    EXPECT_EQ(paper,
              (std::vector<std::string>{"bfs", "wcc", "pagerank",
                                        "sssp", "spmv"}));
}

TEST(Registry, MetadataIsCompleteAndConsistent)
{
    for (const KernelInfo* kernel : allKernels()) {
        SCOPED_TRACE(kernel->name);
        EXPECT_FALSE(kernel->name.empty());
        EXPECT_EQ(kernel->name, toLower(kernel->name));
        EXPECT_FALSE(kernel->display.empty());
        EXPECT_FALSE(kernel->summary.empty());
        EXPECT_TRUE(static_cast<bool>(kernel->factory));
        // The reference functor matches the declared result type.
        if (kernel->traits.hasFloatResult)
            EXPECT_TRUE(static_cast<bool>(kernel->referenceFloats));
        else
            EXPECT_TRUE(static_cast<bool>(kernel->referenceWords));
    }
}

TEST(Registry, NameAndAliasLookupRoundTrips)
{
    KernelRegistry& registry = KernelRegistry::instance();
    for (const KernelInfo* kernel : allKernels()) {
        SCOPED_TRACE(kernel->name);
        EXPECT_EQ(registry.find(kernel->name), kernel);
        // Case-insensitive.
        std::string upper = kernel->name;
        for (char& c : upper)
            c = static_cast<char>(std::toupper(
                static_cast<unsigned char>(c)));
        EXPECT_EQ(registry.find(upper), kernel);
        for (const std::string& alias : kernel->aliases)
            EXPECT_EQ(registry.find(alias), kernel) << alias;
        // cli::parseKernel is the same lookup.
        const KernelInfo* parsed = nullptr;
        EXPECT_TRUE(cli::parseKernel(kernel->name, parsed));
        EXPECT_EQ(parsed, kernel);
    }
    EXPECT_EQ(registry.find("dijkstra"), nullptr);
    EXPECT_EQ(registry.find(""), nullptr);
}

TEST(Registry, NewKernelsResolveByAliasToo)
{
    EXPECT_EQ(kernelOrDie("k-core")->name, "kcore");
    EXPECT_EQ(kernelOrDie("coreness")->name, "kcore");
    EXPECT_EQ(kernelOrDie("degree-histogram")->name, "histogram");
    EXPECT_EQ(kernelOrDie("deghist")->name, "histogram");
    EXPECT_EQ(kernelOrDie("registry-test")->name, "regtest");
}

// ---- CLI surfaces render from the registry ----------------------

int
runCli(std::vector<const char*> args, std::string& out,
       std::string& err)
{
    args.insert(args.begin(), "dalorex");
    std::ostringstream out_stream;
    std::ostringstream err_stream;
    const int code =
        cli::cliMain(static_cast<int>(args.size()), args.data(),
                     out_stream, err_stream);
    out = out_stream.str();
    err = err_stream.str();
    return code;
}

int
runSweep(std::vector<const char*> args, std::string& out,
         std::string& err)
{
    args.insert(args.begin(), "sweep");
    std::ostringstream out_stream;
    std::ostringstream err_stream;
    const int code =
        sweep::sweepMain(static_cast<int>(args.size()), args.data(),
                         out_stream, err_stream);
    out = out_stream.str();
    err = err_stream.str();
    return code;
}

TEST(Registry, ListKernelsShowsEveryKernelAndAlias)
{
    std::string out;
    std::string err;
    const int code = runCli({"--list-kernels"}, out, err);
    EXPECT_EQ(code, 0) << err;
    for (const KernelInfo* kernel : allKernels()) {
        EXPECT_NE(out.find(kernel->name), std::string::npos)
            << kernel->name;
        EXPECT_NE(out.find(kernel->summary), std::string::npos)
            << kernel->name;
        for (const std::string& alias : kernel->aliases)
            EXPECT_NE(out.find(alias), std::string::npos) << alias;
    }

    // The sweep subcommand shares the listing.
    std::string sweep_out;
    EXPECT_EQ(runSweep({"--list-kernels"}, sweep_out, err), 0);
    EXPECT_EQ(sweep_out, out);
}

TEST(Registry, UsageTextNamesEveryKernel)
{
    for (const KernelInfo* kernel : allKernels()) {
        EXPECT_NE(cli::usageText().find(kernel->name),
                  std::string::npos)
            << kernel->name;
        EXPECT_NE(sweep::sweepUsageText().find(kernel->name),
                  std::string::npos)
            << kernel->name;
    }
}

TEST(Registry, UnknownKernelDiagnosticListsTheRegistry)
{
    std::string out;
    std::string err;
    const int code = runCli({"--kernel", "dijkstra"}, out, err);
    EXPECT_EQ(code, 2);
    EXPECT_NE(err.find("dijkstra"), std::string::npos);
    EXPECT_NE(err.find("kcore"), std::string::npos);
    EXPECT_NE(err.find("histogram"), std::string::npos);
}

TEST(Registry, SweepKernelAllEnumeratesTheRegistry)
{
    const std::vector<const char*> args = {"sweep", "--kernel",
                                           "all"};
    const sweep::SweepParseResult parsed = sweep::parseSweepArgs(
        static_cast<int>(args.size()), args.data());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const std::vector<const KernelInfo*> expected = allKernels();
    EXPECT_EQ(parsed.options.plan.kernels, expected);
}

// ---- every kernel runs and validates ----------------------------

const Csr&
tinyGraph()
{
    static const Csr graph = [] {
        RmatParams params;
        params.scale = 7;
        params.edgeFactor = 8;
        params.seed = 17;
        return rmatGraph(params);
    }();
    return graph;
}

TEST(Registry, EveryKernelValidatesAcrossTopologyPolicyMatrix)
{
    for (const KernelInfo* kernel : allKernels()) {
        if (kernel->name == "regtest-bad")
            continue; // its validator rejects by construction
        KernelSetup setup = makeKernelSetup(*kernel, tinyGraph(), 5);
        setup.iterations = 3;
        for (const NocTopology topology :
             {NocTopology::mesh, NocTopology::torus,
              NocTopology::torusRuche}) {
            for (const SchedPolicy policy :
                 {SchedPolicy::roundRobin,
                  SchedPolicy::trafficAware}) {
                SCOPED_TRACE(kernel->name + std::string("/") +
                             toString(topology) + "/" +
                             toString(policy));
                MachineConfig config;
                config.width = 4;
                config.height = 2;
                config.topology = topology;
                if (topology == NocTopology::torusRuche)
                    config.rucheFactor = 2;
                config.policy = policy;
                auto app = setup.makeApp();
                Machine machine(config, setup.graph.numVertices,
                                setup.graph.numEdges);
                machine.run(*app);
                const ValidationResult valid =
                    validateRun(setup, *app, machine);
                EXPECT_TRUE(valid.ok) << valid.detail;
            }
        }
    }
}

TEST(Registry, CustomValidatorRejectsThroughTheSharedPath)
{
    KernelSetup setup =
        makeKernelSetup("regtest-bad", tinyGraph(), 5);
    auto app = setup.makeApp();
    MachineConfig config;
    config.width = 2;
    config.height = 2;
    Machine machine(config, setup.graph.numVertices,
                    setup.graph.numEdges);
    machine.run(*app);
    const ValidationResult valid = validateRun(setup, *app, machine);
    EXPECT_FALSE(valid.ok);
    EXPECT_NE(valid.detail.find("deliberate test mismatch"),
              std::string::npos);
}

// ---- row-level failure semantics --------------------------------

TEST(Registry, FailedScenarioExitsTwoFromTheCli)
{
    std::string out;
    std::string err;
    const int code = runCli({"--kernel", "regtest-bad", "--scale",
                             "7", "--width", "2", "--height", "2",
                             "--validate"},
                            out, err);
    EXPECT_EQ(code, 2);
    EXPECT_TRUE(out.empty());
    EXPECT_NE(err.find("deliberate test mismatch"),
              std::string::npos);
    EXPECT_EQ(std::count(err.begin(), err.end(), '\n'), 1);
}

TEST(Registry, FailedRowDoesNotKillTheSweep)
{
    std::string out;
    std::string err;
    const int code = runSweep(
        {"--kernel", "bfs,regtest-bad", "--grid-size", "2x2",
         "--scale", "7", "--threads", "2", "--validate"},
        out, err);
    EXPECT_EQ(code, 1); // rows failed, process survived
    // The bad kernel's row carries a one-line diagnostic...
    EXPECT_NE(err.find("deliberate test mismatch"),
              std::string::npos);
    EXPECT_NE(err.find("point 2/2"), std::string::npos);
    // ...while the healthy row still renders.
    EXPECT_NE(out.find("bfs"), std::string::npos);
    EXPECT_EQ(out.find("regtest-bad"), std::string::npos);
}

} // namespace
} // namespace dalorex
