/**
 * @file
 * Tests for PageRank's convergence-threshold mode: the host stops
 * iterating at the idle signal once the largest rank delta of an
 * epoch falls under epsilon (bounded above by the iteration cap).
 */

#include <gtest/gtest.h>

#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "apps/pagerank.hh"
#include "graph/reference.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"

namespace dalorex
{
namespace
{

Csr
prGraph()
{
    RmatParams params;
    params.scale = 9;
    params.edgeFactor = 8;
    params.seed = 12;
    return rmatGraph(params);
}

MachineConfig
config4x4()
{
    MachineConfig config;
    config.width = 4;
    config.height = 4;
    return config;
}

TEST(PageRankConvergence, StopsEarly)
{
    const Csr graph = prGraph();
    PageRankApp app(graph, 0.85, 50);
    app.setConvergence(1e-5);
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(app);
    EXPECT_LT(stats.epochs, 50u);
    EXPECT_EQ(stats.epochs, app.epochsRun());
    EXPECT_LT(app.lastDelta(), 1e-5);
    EXPECT_GT(app.epochsRun(), 3u); // did not stop immediately
}

TEST(PageRankConvergence, ConvergedRanksMatchFullRun)
{
    const Csr graph = prGraph();

    PageRankApp early(graph, 0.85, 50);
    early.setConvergence(1e-7);
    Machine m1(config4x4(), graph.numVertices, graph.numEdges);
    m1.run(early);
    const std::vector<double> converged = early.gatherFloats(m1);

    // A long fixed-iteration reference: the early-stopped ranks are
    // already within a small distance of the fixed point.
    const std::vector<double> fixpoint =
        referencePageRank(graph, 0.85, 60);
    for (VertexId v = 0; v < graph.numVertices; ++v) {
        EXPECT_NEAR(converged[v], fixpoint[v],
                    std::max(1e-6, 1e-2 * fixpoint[v]))
            << "vertex " << v;
    }
}

TEST(PageRankConvergence, TighterEpsilonRunsLonger)
{
    const Csr graph = prGraph();
    auto epochs_at = [&](double eps) {
        PageRankApp app(graph, 0.85, 60);
        app.setConvergence(eps);
        Machine machine(config4x4(), graph.numVertices,
                        graph.numEdges);
        machine.run(app);
        return app.epochsRun();
    };
    EXPECT_LT(epochs_at(1e-4), epochs_at(1e-8));
}

TEST(PageRankConvergence, IterationCapStillBinds)
{
    const Csr graph = prGraph();
    PageRankApp app(graph, 0.85, 3);
    app.setConvergence(1e-12); // unreachable in 3 epochs
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(app);
    EXPECT_EQ(stats.epochs, 3u);
}

TEST(PageRankConvergence, EpsilonParamFlowsThroughKernelDefaults)
{
    // The ROADMAP item: epsilon reaches PageRankApp::setConvergence
    // through --param / KernelDefaults, and the converged run still
    // validates (against the convergence-aware reference).
    const Csr graph = prGraph();
    KernelSetup setup = makeKernelSetup("pagerank", graph);
    EXPECT_TRUE(setup.kernel->defaults.usesEpsilon);
    EXPECT_DOUBLE_EQ(setup.epsilon, 0.0);

    std::vector<ParamOverride> params;
    std::string err;
    ASSERT_TRUE(parseParamOverrides("iterations=50,epsilon=1e-5",
                                    params, err))
        << err;
    applyParamOverrides(setup, params);
    EXPECT_EQ(setup.iterations, 50u);
    EXPECT_DOUBLE_EQ(setup.epsilon, 1e-5);

    auto app = setup.makeApp();
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app);
    EXPECT_LT(stats.epochs, 50u); // the threshold stopped the run
    EXPECT_GT(stats.epochs, 3u);
    EXPECT_TRUE(validateRun(setup, *app, machine));

    // Unknown/out-of-range epsilon values are rejected at parse time.
    std::vector<ParamOverride> bad;
    EXPECT_FALSE(parseParamOverrides("epsilon=1.5", bad, err));
    EXPECT_FALSE(parseParamOverrides("epsilon=-0.1", bad, err));
}

TEST(PageRankConvergence, DeltaShrinksMonotonically)
{
    // Successive runs with one more epoch each: the reported last
    // delta decreases (power iteration contracts).
    const Csr graph = prGraph();
    double previous = 1.0;
    for (unsigned iters = 2; iters <= 10; iters += 4) {
        PageRankApp app(graph, 0.85, iters);
        Machine machine(config4x4(), graph.numVertices,
                        graph.numEdges);
        machine.run(app);
        EXPECT_LT(app.lastDelta(), previous);
        previous = app.lastDelta();
    }
}

} // namespace
} // namespace dalorex
