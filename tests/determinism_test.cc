/**
 * @file
 * Golden determinism: the same seed and config must give bit-identical
 * RunStats counters across two independent runs, for one kernel per
 * app. Guards future performance refactors against nondeterminism
 * (unordered containers, address-dependent ordering, data races).
 */

#include <gtest/gtest.h>

#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"

namespace dalorex
{
namespace
{

MachineConfig
goldenConfig()
{
    MachineConfig config;
    config.width = 4;
    config.height = 4;
    config.topology = NocTopology::torus;
    config.policy = SchedPolicy::trafficAware;
    config.distribution = Distribution::lowOrder;
    return config;
}

RunStats
runOnce(Kernel kernel)
{
    RmatParams params;
    params.scale = 9;
    params.edgeFactor = 8;
    params.seed = 23;
    const Csr base = rmatGraph(params);
    const KernelSetup setup = makeKernelSetup(kernel, base, 23);

    auto app = setup.makeApp();
    Machine machine(goldenConfig(), setup.graph.numVertices,
                    setup.graph.numEdges);
    return machine.run(*app);
}

void
expectIdentical(const RunStats& a, const RunStats& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.invocationsPerTask, b.invocationsPerTask);
    EXPECT_EQ(a.puBusyCycles, b.puBusyCycles);
    EXPECT_EQ(a.puOps, b.puOps);
    EXPECT_EQ(a.sramReads, b.sramReads);
    EXPECT_EQ(a.sramWrites, b.sramWrites);
    EXPECT_EQ(a.tsuReads, b.tsuReads);
    EXPECT_EQ(a.tsuWrites, b.tsuWrites);
    EXPECT_EQ(a.localBypassMsgs, b.localBypassMsgs);
    EXPECT_EQ(a.edgesProcessed, b.edgesProcessed);

    EXPECT_EQ(a.noc.messagesInjected, b.noc.messagesInjected);
    EXPECT_EQ(a.noc.messagesDelivered, b.noc.messagesDelivered);
    EXPECT_EQ(a.noc.flitHops, b.noc.flitHops);
    EXPECT_EQ(a.noc.flitWireTiles, b.noc.flitWireTiles);
    EXPECT_EQ(a.noc.routerPassages, b.noc.routerPassages);
    EXPECT_EQ(a.noc.deliveryStalls, b.noc.deliveryStalls);

    EXPECT_EQ(a.scratchpadBytesTotal, b.scratchpadBytesTotal);
    EXPECT_EQ(a.scratchpadBytesMax, b.scratchpadBytesMax);
    EXPECT_EQ(a.puBusyPerTile, b.puBusyPerTile);
    EXPECT_EQ(a.routerActivePerTile, b.routerActivePerTile);
}

class DeterminismTest : public ::testing::TestWithParam<Kernel>
{
};

TEST_P(DeterminismTest, TwoRunsBitIdentical)
{
    const RunStats first = runOnce(GetParam());
    const RunStats second = runOnce(GetParam());
    ASSERT_GT(first.cycles, 0u);
    ASSERT_GT(first.edgesProcessed, 0u);
    expectIdentical(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, DeterminismTest, ::testing::ValuesIn(allKernels()),
    [](const ::testing::TestParamInfo<Kernel>& info) {
        return std::string(toString(info.param));
    });

} // namespace
} // namespace dalorex
