/**
 * @file
 * Golden determinism: the same seed and config must give bit-identical
 * RunStats counters across two independent runs, for one kernel per
 * app. Guards future performance refactors against nondeterminism
 * (unordered containers, address-dependent ordering, data races).
 *
 * The sweep orchestrator inherits the same contract one level up: a
 * plan run with 1 worker thread and with 8 must render byte-identical
 * JSONL.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "cli/cli.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"
#include "sweep/aggregate.hh"
#include "sweep/sweep.hh"

namespace dalorex
{
namespace
{

MachineConfig
goldenConfig()
{
    MachineConfig config;
    config.width = 4;
    config.height = 4;
    config.topology = NocTopology::torus;
    config.policy = SchedPolicy::trafficAware;
    config.distribution = Distribution::lowOrder;
    return config;
}

RunStats
runOnce(const KernelInfo* kernel)
{
    RmatParams params;
    params.scale = 9;
    params.edgeFactor = 8;
    params.seed = 23;
    const Csr base = rmatGraph(params);
    const KernelSetup setup = makeKernelSetup(*kernel, base, 23);

    auto app = setup.makeApp();
    Machine machine(goldenConfig(), setup.graph.numVertices,
                    setup.graph.numEdges);
    return machine.run(*app);
}

void
expectIdentical(const RunStats& a, const RunStats& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.epochs, b.epochs);
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.invocationsPerTask, b.invocationsPerTask);
    EXPECT_EQ(a.puBusyCycles, b.puBusyCycles);
    EXPECT_EQ(a.puOps, b.puOps);
    EXPECT_EQ(a.sramReads, b.sramReads);
    EXPECT_EQ(a.sramWrites, b.sramWrites);
    EXPECT_EQ(a.tsuReads, b.tsuReads);
    EXPECT_EQ(a.tsuWrites, b.tsuWrites);
    EXPECT_EQ(a.localBypassMsgs, b.localBypassMsgs);
    EXPECT_EQ(a.edgesProcessed, b.edgesProcessed);

    EXPECT_EQ(a.noc.messagesInjected, b.noc.messagesInjected);
    EXPECT_EQ(a.noc.messagesDelivered, b.noc.messagesDelivered);
    EXPECT_EQ(a.noc.flitHops, b.noc.flitHops);
    EXPECT_EQ(a.noc.flitWireTiles, b.noc.flitWireTiles);
    EXPECT_EQ(a.noc.routerPassages, b.noc.routerPassages);
    EXPECT_EQ(a.noc.deliveryStalls, b.noc.deliveryStalls);

    EXPECT_EQ(a.scratchpadBytesTotal, b.scratchpadBytesTotal);
    EXPECT_EQ(a.scratchpadBytesMax, b.scratchpadBytesMax);
    EXPECT_EQ(a.puBusyPerTile, b.puBusyPerTile);
    EXPECT_EQ(a.routerActivePerTile, b.routerActivePerTile);
}

class DeterminismTest
    : public ::testing::TestWithParam<const KernelInfo*>
{
};

TEST_P(DeterminismTest, TwoRunsBitIdentical)
{
    const RunStats first = runOnce(GetParam());
    const RunStats second = runOnce(GetParam());
    ASSERT_GT(first.cycles, 0u);
    ASSERT_GT(first.edgesProcessed, 0u);
    expectIdentical(first, second);
}

// ValuesIn(allKernels()) covers every registered kernel, so k-core
// and the degree histogram joined this suite with zero edits here.
INSTANTIATE_TEST_SUITE_P(
    AllKernels, DeterminismTest, ::testing::ValuesIn(allKernels()),
    [](const ::testing::TestParamInfo<const KernelInfo*>& info) {
        return info.param->display;
    });

/**
 * The sharded engine's core contract: RunStats — and therefore the
 * rendered stats/energy JSON — are byte-identical for every
 * --engine-threads value. Runs every registered kernel at 1, 2 and 8
 * engine threads (8 shards over 16 tiles gives 2-tile shards, the
 * most fragmented interesting split on this grid).
 */
class EngineThreadsDeterminism
    : public ::testing::TestWithParam<const KernelInfo*>
{
};

namespace
{

/**
 * Scenario JSON at `engine_threads` x `scan`, with the execution
 * facets — thread count, scan mode and the scan-occupancy counters
 * (the engine's own work, which differs between scan modes by
 * design) — normalized out so the strings compare byte-for-byte.
 * Everything architectural stays in the comparison.
 */
std::string
scenarioJson(const KernelInfo* kernel, unsigned engine_threads,
             EngineScan scan = EngineScan::active,
             RunStats* stats_out = nullptr,
             EngineBarrier barrier = EngineBarrier::tree,
             bool rebalance = false)
{
    cli::Options options;
    options.kernel = kernel;
    options.scale = 8;
    options.seed = 23;
    options.machine.width = 4;
    options.machine.height = 4;
    options.machine.engineThreads = engine_threads;
    options.machine.engineScan = scan;
    options.machine.engineBarrier = barrier;
    options.machine.engineRebalance = rebalance;
    cli::RunOutcome outcome = cli::runScenario(options);
    EXPECT_TRUE(outcome.ok) << outcome.error;
    if (stats_out != nullptr)
        *stats_out = outcome.report.stats;
    outcome.report.options.machine.engineThreads = 0;
    outcome.report.options.machine.engineScan = EngineScan::full;
    outcome.report.options.machine.engineBarrier =
        EngineBarrier::tree;
    outcome.report.options.machine.engineRebalance = false;
    RunStats& stats = outcome.report.stats;
    stats.engineSteppedCycles = 0;
    stats.nocSteppedCycles = 0;
    stats.tileScans = 0;
    stats.routerScans = 0;
    stats.activeTileCyclesSaved = 0;
    stats.activeRouterCyclesSaved = 0;
    stats.engineRebalances = 0;
    return cli::renderJson(outcome.report);
}

} // namespace

TEST_P(EngineThreadsDeterminism, StatsAndEnergyJsonByteIdentical)
{
    RunStats serial_stats;
    const std::string serial =
        scenarioJson(GetParam(), 1, EngineScan::active, &serial_stats);
    ASSERT_GT(serial_stats.cycles, 0u);
    RunStats two_stats;
    const std::string two =
        scenarioJson(GetParam(), 2, EngineScan::active, &two_stats);
    const std::string eight = scenarioJson(GetParam(), 8);
    EXPECT_EQ(serial, two);
    EXPECT_EQ(serial, eight);
    expectIdentical(serial_stats, two_stats);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, EngineThreadsDeterminism,
    ::testing::ValuesIn(allKernels()),
    [](const ::testing::TestParamInfo<const KernelInfo*>& info) {
        return info.param->display;
    });

/**
 * The active-set scan's core contract: the event-driven engine and
 * the full-scan reference oracle produce byte-identical stats and
 * energy JSON, at every engine-threads value, for every registered
 * kernel. The only fields allowed to differ — the scan-occupancy
 * counters, which *measure* the difference — are normalized out
 * above; everything the energy model and figure tables read is
 * compared.
 */
class EngineScanDeterminism
    : public ::testing::TestWithParam<const KernelInfo*>
{
};

TEST_P(EngineScanDeterminism, FullAndActiveScanByteIdentical)
{
    RunStats active_stats;
    const std::string active = scenarioJson(
        GetParam(), 1, EngineScan::active, &active_stats);
    ASSERT_GT(active_stats.cycles, 0u);
    RunStats full_stats;
    const std::string full =
        scenarioJson(GetParam(), 1, EngineScan::full, &full_stats);
    EXPECT_EQ(full, active);
    expectIdentical(full_stats, active_stats);
    // The full scan visits everything; the active scan must not
    // visit more, and the oracle must report zero savings.
    EXPECT_EQ(full_stats.activeTileCyclesSaved, 0u);
    EXPECT_EQ(full_stats.activeRouterCyclesSaved, 0u);
    EXPECT_LE(active_stats.tileScans, full_stats.tileScans);
    EXPECT_LE(active_stats.routerScans, full_stats.routerScans);
    // Sharding and scanning are orthogonal: the oracle agrees at
    // every thread count.
    EXPECT_EQ(scenarioJson(GetParam(), 2, EngineScan::full), active);
    EXPECT_EQ(scenarioJson(GetParam(), 8, EngineScan::full), active);
    EXPECT_EQ(scenarioJson(GetParam(), 2, EngineScan::active),
              active);
    EXPECT_EQ(scenarioJson(GetParam(), 8, EngineScan::active),
              active);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, EngineScanDeterminism,
    ::testing::ValuesIn(allKernels()),
    [](const ::testing::TestParamInfo<const KernelInfo*>& info) {
        return info.param->display;
    });

/**
 * The phase-barrier contract: the tree barrier and the std::barrier
 * oracle synchronize the same phases, so stats and energy JSON are
 * byte-identical between them, for every registered kernel, at both
 * the inline single-shard path and a contended multi-shard split.
 */
class EngineBarrierDeterminism
    : public ::testing::TestWithParam<const KernelInfo*>
{
};

TEST_P(EngineBarrierDeterminism, TreeAndCentralByteIdentical)
{
    RunStats tree_stats;
    const std::string tree =
        scenarioJson(GetParam(), 4, EngineScan::active, &tree_stats,
                     EngineBarrier::tree);
    ASSERT_GT(tree_stats.cycles, 0u);
    EXPECT_EQ(scenarioJson(GetParam(), 4, EngineScan::active, nullptr,
                           EngineBarrier::central),
              tree);
    EXPECT_EQ(scenarioJson(GetParam(), 1, EngineScan::active, nullptr,
                           EngineBarrier::central),
              tree);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, EngineBarrierDeterminism,
    ::testing::ValuesIn(allKernels()),
    [](const ::testing::TestParamInfo<const KernelInfo*>& info) {
        return info.param->display;
    });

/**
 * The rebalancer moves shard boundaries, never results: stats and
 * energy JSON with --engine-rebalance are byte-identical to the
 * static partition, and identical again across thread counts with
 * rebalancing on (the windowed occupancy decision reads deterministic
 * counters only).
 */
TEST(EngineRebalanceDeterminism, OnAndOffByteIdentical)
{
    for (const KernelInfo* kernel :
         {kernelOrDie("pagerank"), kernelOrDie("bfs"),
          kernelOrDie("histogram")}) {
        RunStats static_stats;
        const std::string static_json = scenarioJson(
            kernel, 4, EngineScan::active, &static_stats,
            EngineBarrier::tree, false);
        ASSERT_GT(static_stats.cycles, 0u);
        EXPECT_EQ(scenarioJson(kernel, 4, EngineScan::active, nullptr,
                               EngineBarrier::tree, true),
                  static_json)
            << kernel->name;
        EXPECT_EQ(scenarioJson(kernel, 8, EngineScan::active, nullptr,
                               EngineBarrier::tree, true),
                  static_json)
            << kernel->name;
    }
}

/** Run `plan` on `threads` workers and render JSONL. */
std::string
sweepJsonl(const sweep::Plan& plan, unsigned threads)
{
    const sweep::RunResult result = sweep::run(plan, threads);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_TRUE(result.allRowsOk());
    const sweep::AggregateResult agg =
        sweep::aggregate(result.okReports(), result.baseline);
    EXPECT_TRUE(agg.ok) << agg.error;
    return sweep::toJsonl(agg.rows);
}

std::vector<std::string>
sortedLines(const std::string& text)
{
    std::istringstream stream(text);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(stream, line))
        lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    return lines;
}

TEST(SweepDeterminism, JsonlByteIdenticalAcrossThreadCounts)
{
    sweep::Plan plan;
    plan.kernels = {kernelOrDie("bfs"), kernelOrDie("sssp"),
                    kernelOrDie("wcc")};
    plan.datasets = {{"", 8}};
    plan.grids = {{2, 2}, {4, 4}};
    plan.barriers = {false, true};
    plan.seed = 23;

    const std::string serial = sweepJsonl(plan, 1);
    const std::string parallel = sweepJsonl(plan, 8);
    ASSERT_FALSE(serial.empty());
    // Unsorted equality is the real contract: results land in their
    // expansion-order slots, so even row order is thread-invariant.
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(sortedLines(serial), sortedLines(parallel));
    // 3 kernels x 1 dataset x 2 grids x 2 barrier modes.
    EXPECT_EQ(std::count(serial.begin(), serial.end(), '\n'), 12);
}

} // namespace
} // namespace dalorex
