/**
 * @file
 * Shard-ownership checker tests (sim/ownership.hh).
 *
 * Three properties, matching the checker's contract:
 *
 *  1. Clean engine runs: every registered kernel, at engine-threads
 *     1/2/8 and under both scan modes, completes with the checker
 *     armed and still matches the sequential reference. In builds
 *     where the checker is compiled out this degenerates to a plain
 *     correctness matrix (still worth running); the checked variant
 *     is exercised by the Debug/sanitizer CI configurations.
 *
 *  2. The checker actually fires: a deliberate cross-shard write via
 *     Machine::debugInjectOwnershipViolation() panics (death test),
 *     as does an out-of-range checkWrite under a live claim and an
 *     unclaimed write while a foreign thread holds a claim.
 *
 *  3. Zero overhead when disabled: the hook macros expand to
 *     noexcept constant no-op expressions, checked at compile time,
 *     so no checker call can survive into Release hot paths.
 */

#include <gtest/gtest.h>

#include <thread>

#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"
#include "sim/ownership.hh"

namespace dalorex
{
namespace
{

// ---- 3. compile-time guard --------------------------------------

#if !DALOREX_OWNERSHIP_CHECKS
// The disabled expansions must be constant no-ops: noexcept, void,
// and evaluable with arbitrary (even nonsense) arguments. If a real
// function call ever leaks into the disabled path, these fail to
// compile rather than silently costing cycles.
static_assert(noexcept(DLX_OWN_WRITE(nullptr, 0u, "guard")),
              "disabled DLX_OWN_WRITE must be a noexcept no-op");
static_assert(noexcept(DLX_OWN_SCOPE(nullptr, "guard", 0u, 0u)),
              "disabled DLX_OWN_SCOPE must be a noexcept no-op");
static_assert(
    std::is_void_v<decltype(DLX_OWN_WRITE(nullptr, 0u, "guard"))>,
    "disabled DLX_OWN_WRITE must evaluate to void");
#endif

const Csr&
smallGraph()
{
    static const Csr graph = [] {
        RmatParams params;
        params.scale = 8;
        params.edgeFactor = 6;
        params.seed = 33;
        return rmatGraph(params);
    }();
    return graph;
}

// ---- 1. clean runs across the kernel x threads x scan matrix ----

class OwnershipMatrix
    : public ::testing::TestWithParam<
          std::tuple<const KernelInfo*, unsigned, EngineScan>>
{
};

TEST_P(OwnershipMatrix, KernelPassesChecker)
{
    const auto [kernel, threads, scan] = GetParam();
    KernelSetup setup = makeKernelSetup(*kernel, smallGraph());
    setup.iterations = 3;
    MachineConfig config;
    config.width = 4;
    config.height = 4;
    config.engineThreads = threads;
    config.engineScan = scan;
    auto app = setup.makeApp();
    Machine machine(config, setup.graph.numVertices,
                    setup.graph.numEdges);
    machine.run(*app);
    if (setup.floatResult()) {
        const std::vector<double> got = app->gatherFloats(machine);
        const std::vector<double> want = setup.referenceFloats();
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t v = 0; v < got.size(); ++v)
            ASSERT_NEAR(got[v], want[v],
                        std::max(1e-9, 1e-3 * want[v]))
                << "vertex " << v;
    } else {
        ASSERT_EQ(app->gatherValues(machine),
                  setup.referenceWords());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, OwnershipMatrix,
    ::testing::Combine(::testing::ValuesIn(allKernels()),
                       ::testing::Values(1u, 2u, 8u),
                       ::testing::Values(EngineScan::active,
                                         EngineScan::full)),
    [](const auto& info) {
        return std::get<0>(info.param)->display + "_t" +
               std::to_string(std::get<1>(info.param)) + "_" +
               toString(std::get<2>(info.param));
    });

// ---- 2. the checker fires on violations -------------------------

#if DALOREX_OWNERSHIP_CHECKS

// The checker's claims live in global state, so fork-based death
// tests must re-execute rather than fork mid-state (and one test
// forks with a second thread alive). GTEST_FLAG_SET is gtest >= 1.12;
// fall back to the flag variable on older releases.
void
useThreadsafeDeathTests()
{
#if defined(GTEST_FLAG_SET)
    GTEST_FLAG_SET(death_test_style, "threadsafe");
#else
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
#endif
}

TEST(OwnershipDeathTest, InjectedEngineViolationPanics)
{
    useThreadsafeDeathTests();
    MachineConfig config;
    config.width = 4;
    config.height = 1;
    Machine machine(config, 64, 256);
    EXPECT_DEATH(machine.debugInjectOwnershipViolation(),
                 "ownership");
}

TEST(OwnershipDeathTest, OutOfRangeWriteUnderClaimPanics)
{
    useThreadsafeDeathTests();
    int domain = 0;
    EXPECT_DEATH(
        {
            ownership::ScopedShardClaim claim(&domain, "test", 0, 4);
            ownership::checkWrite(&domain, 7, "oob-write");
        },
        "ownership");
}

TEST(OwnershipDeathTest, UnclaimedWriteDuringForeignPhasePanics)
{
    useThreadsafeDeathTests();
    int domain = 0;
    EXPECT_DEATH(
        {
            ownership::ScopedShardClaim claim(&domain, "test", 0, 4);
            // A different thread with no claim writes the domain
            // while this thread's phase is live: must panic.
            std::thread intruder([&] {
                ownership::checkWrite(&domain, 1, "unclaimed-write");
            });
            intruder.join();
        },
        "ownership");
}

TEST(OwnershipChecks, SerialWritesNeedNoClaim)
{
    int domain = 0;
    EXPECT_FALSE(ownership::phaseActive(&domain));
    // No claim anywhere on the domain: writes are serial-section
    // writes and must pass silently.
    ownership::checkWrite(&domain, 123, "serial-write");
    {
        ownership::ScopedShardClaim claim(&domain, "test", 0, 8);
        EXPECT_TRUE(ownership::phaseActive(&domain));
        ownership::checkWrite(&domain, 3, "in-range");
    }
    EXPECT_FALSE(ownership::phaseActive(&domain));
}

TEST(OwnershipChecks, InnermostClaimWins)
{
    useThreadsafeDeathTests();
    int domain = 0;
    ownership::ScopedShardClaim outer(&domain, "outer", 0, 16);
    ownership::checkWrite(&domain, 12, "outer-range");
    {
        // Nested claims narrow: the innermost claim on the domain
        // governs, so a write legal under the outer claim dies once
        // a tighter inner claim is live.
        ownership::ScopedShardClaim inner(&domain, "inner", 4, 8);
        ownership::checkWrite(&domain, 5, "inner-range");
        EXPECT_DEATH(ownership::checkWrite(&domain, 12, "narrowed"),
                     "ownership");
    }
    // The outer claim governs again after the inner scope ends.
    ownership::checkWrite(&domain, 12, "outer-again");
    EXPECT_TRUE(ownership::phaseActive(&domain));
}

#else // !DALOREX_OWNERSHIP_CHECKS

TEST(OwnershipDeathTest, CompiledOut)
{
    static_assert(!ownership::enabled);
    GTEST_SKIP() << "ownership checker compiled out "
                    "(DALOREX_OWNERSHIP_CHECKS=0); violation tests "
                    "run in Debug/sanitizer configurations";
}

#endif // DALOREX_OWNERSHIP_CHECKS

} // namespace
} // namespace dalorex
