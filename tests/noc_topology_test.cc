/**
 * @file
 * Tests for NoC geometry and routing: neighbor relations, wrap-around,
 * dimension-ordered routes, hop counts, ruche decomposition, wire
 * lengths and the ring-entry (bubble) classification.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "noc/topology.hh"

namespace dalorex
{
namespace
{

TEST(Topology, MeshNeighbors)
{
    const Topology t(NocTopology::mesh, 4, 4);
    EXPECT_EQ(t.neighbor(t.tileAt(1, 1), portEast), t.tileAt(2, 1));
    EXPECT_EQ(t.neighbor(t.tileAt(1, 1), portWest), t.tileAt(0, 1));
    EXPECT_EQ(t.neighbor(t.tileAt(1, 1), portNorth), t.tileAt(1, 0));
    EXPECT_EQ(t.neighbor(t.tileAt(1, 1), portSouth), t.tileAt(1, 2));
}

TEST(Topology, MeshEdgeHasNoOutwardNeighbor)
{
    const Topology t(NocTopology::mesh, 4, 4);
    EXPECT_FALSE(t.hasNeighbor(t.tileAt(0, 0), portWest));
    EXPECT_FALSE(t.hasNeighbor(t.tileAt(0, 0), portNorth));
    EXPECT_TRUE(t.hasNeighbor(t.tileAt(0, 0), portEast));
    EXPECT_FALSE(t.hasNeighbor(t.tileAt(3, 3), portEast));
    EXPECT_FALSE(t.hasNeighbor(t.tileAt(3, 3), portSouth));
}

TEST(Topology, TorusWrapsAround)
{
    const Topology t(NocTopology::torus, 4, 4);
    EXPECT_EQ(t.neighbor(t.tileAt(3, 2), portEast), t.tileAt(0, 2));
    EXPECT_EQ(t.neighbor(t.tileAt(0, 2), portWest), t.tileAt(3, 2));
    EXPECT_EQ(t.neighbor(t.tileAt(2, 0), portNorth), t.tileAt(2, 3));
    EXPECT_EQ(t.neighbor(t.tileAt(2, 3), portSouth), t.tileAt(2, 0));
}

TEST(Topology, OppositePortsPair)
{
    EXPECT_EQ(Topology::oppositePort(portEast), portWest);
    EXPECT_EQ(Topology::oppositePort(portNorth), portSouth);
    EXPECT_EQ(Topology::oppositePort(portRucheEast), portRucheWest);
    EXPECT_EQ(Topology::oppositePort(portRucheSouth),
              portRucheNorth);
}

TEST(Topology, NeighborRelationIsSymmetric)
{
    for (const NocTopology type :
         {NocTopology::mesh, NocTopology::torus,
          NocTopology::torusRuche}) {
        const Topology t(type, 8, 8,
                         type == NocTopology::torusRuche ? 2 : 0);
        for (TileId id = 0; id < t.numTiles(); ++id) {
            for (unsigned p = portEast; p < numPorts; ++p) {
                const auto port = static_cast<Port>(p);
                if (!t.hasNeighbor(id, port))
                    continue;
                const TileId other = t.neighbor(id, port);
                EXPECT_EQ(
                    t.neighbor(other, Topology::oppositePort(port)),
                    id);
            }
        }
    }
}

TEST(Topology, RouteSelfIsLocal)
{
    const Topology t(NocTopology::torus, 4, 4);
    for (TileId id = 0; id < t.numTiles(); ++id)
        EXPECT_EQ(t.route(id, id), portLocal);
}

TEST(Topology, RouteIsDimensionOrderedXFirst)
{
    const Topology t(NocTopology::mesh, 8, 8);
    // (1,1) -> (5,6): X first.
    EXPECT_EQ(t.route(t.tileAt(1, 1), t.tileAt(5, 6)), portEast);
    // Same column: Y moves.
    EXPECT_EQ(t.route(t.tileAt(5, 1), t.tileAt(5, 6)), portSouth);
}

TEST(Topology, TorusPicksShorterWrap)
{
    const Topology t(NocTopology::torus, 8, 8);
    // (0,0) -> (6,0): wrap west (distance 2) beats east (6).
    EXPECT_EQ(t.route(t.tileAt(0, 0), t.tileAt(6, 0)), portWest);
    // (0,0) -> (3,0): straight east.
    EXPECT_EQ(t.route(t.tileAt(0, 0), t.tileAt(3, 0)), portEast);
}

TEST(Topology, MeshHopCountIsManhattan)
{
    const Topology t(NocTopology::mesh, 8, 8);
    EXPECT_EQ(t.hopCount(t.tileAt(1, 2), t.tileAt(5, 7)), 4u + 5u);
    EXPECT_EQ(t.hopCount(t.tileAt(5, 7), t.tileAt(5, 7)), 0u);
}

TEST(Topology, TorusHopCountUsesWrap)
{
    const Topology t(NocTopology::torus, 8, 8);
    EXPECT_EQ(t.hopCount(t.tileAt(0, 0), t.tileAt(7, 0)), 1u);
    EXPECT_EQ(t.hopCount(t.tileAt(0, 0), t.tileAt(4, 4)), 8u);
}

TEST(Topology, RucheReducesHops)
{
    const Topology plain(NocTopology::torus, 16, 16);
    const Topology ruche(NocTopology::torusRuche, 16, 16, 4);
    // Distance 7 in X: plain needs 7 hops; ruche 4+1+1+1 = 4 hops
    // (one ruche hop of 4 plus three unit hops).
    EXPECT_EQ(plain.hopCount(0, 7), 7u);
    EXPECT_EQ(ruche.hopCount(0, 7), 4u);
}

TEST(Topology, RucheRoutesTakeLongLinksFirst)
{
    const Topology t(NocTopology::torusRuche, 16, 16, 4);
    EXPECT_EQ(t.route(t.tileAt(0, 0), t.tileAt(7, 0)),
              portRucheEast);
    EXPECT_EQ(t.route(t.tileAt(4, 0), t.tileAt(7, 0)), portEast);
}

TEST(Topology, EveryRouteTerminates)
{
    for (const NocTopology type :
         {NocTopology::mesh, NocTopology::torus,
          NocTopology::torusRuche}) {
        const Topology t(type, 6, 5,
                         type == NocTopology::torusRuche ? 2 : 0);
        for (TileId src = 0; src < t.numTiles(); ++src)
            for (TileId dst = 0; dst < t.numTiles(); ++dst)
                EXPECT_LT(t.hopCount(src, dst), 12u)
                    << toString(type) << " " << src << "->" << dst;
    }
}

TEST(Topology, WireLengths)
{
    const Topology mesh(NocTopology::mesh, 8, 8);
    const Topology torus(NocTopology::torus, 8, 8);
    const Topology ruche(NocTopology::torusRuche, 8, 8, 3);
    EXPECT_EQ(mesh.hopWireTiles(portEast), 1u);
    // Folded-torus wiring doubles neighbor wire length (Sec. III-F).
    EXPECT_EQ(torus.hopWireTiles(portEast), 2u);
    EXPECT_EQ(ruche.hopWireTiles(portRucheEast), 3u);
    EXPECT_EQ(torus.hopWireTiles(portLocal), 0u);
}

TEST(Topology, RingEntryNeedsBubble)
{
    const Topology t(NocTopology::torus, 8, 8);
    // Injection enters a ring.
    EXPECT_TRUE(t.entersRing(portLocal, portEast));
    // Turning X -> Y enters the Y ring.
    EXPECT_TRUE(t.entersRing(portWest, portSouth));
    // Continuing east (in from the west side) stays inside the ring.
    EXPECT_FALSE(t.entersRing(portWest, portEast));
    EXPECT_FALSE(t.entersRing(portNorth, portSouth));
}

TEST(Topology, MeshNeverNeedsBubble)
{
    const Topology t(NocTopology::mesh, 8, 8);
    EXPECT_FALSE(t.entersRing(portLocal, portEast));
    EXPECT_FALSE(t.entersRing(portWest, portSouth));
}

TEST(Topology, RucheLinkChangeIsRingEntry)
{
    const Topology t(NocTopology::torusRuche, 16, 16, 4);
    // Switching from the ruche ring to the unit ring (or back)
    // enters a different physical ring.
    EXPECT_TRUE(t.entersRing(portRucheWest, portEast));
    EXPECT_FALSE(t.entersRing(portRucheWest, portRucheEast));
}

TEST(Topology, DegenerateGridsRejected)
{
    EXPECT_DEATH(Topology(NocTopology::mesh, 0, 4), "degenerate");
    EXPECT_DEATH(Topology(NocTopology::torusRuche, 8, 8, 1),
                 "ruche");
    EXPECT_DEATH(Topology(NocTopology::torusRuche, 4, 4, 5),
                 "ruche");
}

} // namespace
} // namespace dalorex
