/**
 * @file
 * Tests of the `dalorex` CLI: argv parsing, bad-flag rejection, and
 * the JSON/text reports, driving cli::cliMain in-process.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hh"
#include "graph/dataset_cache.hh"
#include "graph/datasets.hh"
#include "graph/graphfile.hh"

namespace dalorex
{
namespace cli
{
namespace
{

ParseResult
parse(std::vector<const char*> args)
{
    args.insert(args.begin(), "dalorex");
    return parseArgs(static_cast<int>(args.size()), args.data());
}

TEST(CliParse, DefaultsMatchMachineConfig)
{
    const ParseResult r = parse({});
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_NE(r.options.kernel, nullptr);
    EXPECT_EQ(r.options.kernel->name, "bfs");
    EXPECT_EQ(r.options.machine.width, MachineConfig{}.width);
    EXPECT_EQ(r.options.machine.height, MachineConfig{}.height);
    EXPECT_EQ(r.options.machine.topology, NocTopology::torus);
    EXPECT_FALSE(r.options.json);
    EXPECT_FALSE(r.options.help);
}

TEST(CliParse, FullScenario)
{
    const ParseResult r = parse(
        {"--kernel", "pagerank", "--width", "8", "--height", "4",
         "--topology", "mesh", "--policy", "round-robin",
         "--distribution", "high-order", "--barrier", "--scale", "10",
         "--seed", "99", "--invoke-overhead", "50", "--json",
         "--validate"});
    ASSERT_TRUE(r.ok) << r.error;
    const Options& o = r.options;
    EXPECT_EQ(o.kernel->name, "pagerank");
    EXPECT_EQ(o.machine.width, 8u);
    EXPECT_EQ(o.machine.height, 4u);
    EXPECT_EQ(o.machine.topology, NocTopology::mesh);
    EXPECT_EQ(o.machine.policy, SchedPolicy::roundRobin);
    EXPECT_EQ(o.machine.distribution, Distribution::highOrder);
    EXPECT_TRUE(o.machine.barrier);
    EXPECT_EQ(o.machine.invokeOverhead, 50u);
    EXPECT_EQ(o.scale, 10u);
    EXPECT_EQ(o.seed, 99u);
    EXPECT_TRUE(o.json);
    EXPECT_TRUE(o.validate);
}

TEST(CliParse, AllKernelNamesParse)
{
    // Canonical names and the hand-picked aliases resolve through
    // the registry; canonical spelling round-trips for every
    // registered kernel (including ones added after this test).
    const std::vector<std::pair<const char*, const char*>> names = {
        {"bfs", "bfs"},           {"sssp", "sssp"},
        {"wcc", "wcc"},           {"pagerank", "pagerank"},
        {"pr", "pagerank"},       {"spmv", "spmv"},
        {"PageRank", "pagerank"}, {"k-core", "kcore"},
        {"deghist", "histogram"},
    };
    for (const auto& [name, canonical] : names) {
        const ParseResult r = parse({"--kernel", name});
        ASSERT_TRUE(r.ok) << name << ": " << r.error;
        EXPECT_EQ(r.options.kernel->name, canonical) << name;
    }
    for (const KernelInfo* kernel : allKernels()) {
        const ParseResult r =
            parse({"--kernel", kernel->name.c_str()});
        ASSERT_TRUE(r.ok) << kernel->name << ": " << r.error;
        EXPECT_EQ(r.options.kernel, kernel) << kernel->name;
    }
}

TEST(CliParse, RucheFactorDefaultsAndClears)
{
    // torus-ruche without a factor gets the minimum factor of 2.
    ParseResult r = parse({"--topology", "torus-ruche"});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.options.machine.rucheFactor, 2u);

    // A factor given for a non-ruche topology is dropped.
    r = parse({"--topology", "torus", "--ruche-factor", "4"});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.options.machine.rucheFactor, 0u);
}

TEST(CliParse, RejectsUnknownFlag)
{
    const ParseResult r = parse({"--frobnicate"});
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("--frobnicate"), std::string::npos);
}

TEST(CliParse, RejectsUnknownEnumValues)
{
    EXPECT_FALSE(parse({"--kernel", "dijkstra"}).ok);
    EXPECT_FALSE(parse({"--topology", "hypercube"}).ok);
    EXPECT_FALSE(parse({"--policy", "random"}).ok);
    EXPECT_FALSE(parse({"--distribution", "hash"}).ok);
}

TEST(CliParse, RejectsUnknownDatasetAtParseTime)
{
    // A usage error (exit 2), not a mid-run fatal().
    const ParseResult r = parse({"--dataset", "orkut"});
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("orkut"), std::string::npos);
    EXPECT_TRUE(parse({"--dataset", "rmat12"}).ok);
    EXPECT_TRUE(parse({"--dataset", "livejournal"}).ok);
}

TEST(CliParse, RejectsMissingAndMalformedValues)
{
    EXPECT_FALSE(parse({"--kernel"}).ok);
    EXPECT_FALSE(parse({"--width"}).ok);
    EXPECT_FALSE(parse({"--width", "0"}).ok);
    EXPECT_FALSE(parse({"--width", "-3"}).ok);
    EXPECT_FALSE(parse({"--width", "8x"}).ok);
    EXPECT_FALSE(parse({"--scale", "3"}).ok);
    EXPECT_FALSE(parse({"--scale", "27"}).ok);
    EXPECT_FALSE(parse({"--seed", "abc"}).ok);
}

TEST(CliParse, EngineThreadsFlag)
{
    const ParseResult r = parse({"--engine-threads", "8"});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.options.machine.engineThreads, 8u);

    EXPECT_FALSE(parse({"--engine-threads"}).ok);
    EXPECT_FALSE(parse({"--engine-threads", "0"}).ok);
    EXPECT_FALSE(parse({"--engine-threads", "257"}).ok);
    EXPECT_FALSE(parse({"--engine-threads", "many"}).ok);
}

TEST(CliParse, EngineScanFlag)
{
    EXPECT_EQ(parse({}).options.machine.engineScan,
              EngineScan::active); // event-driven is the default
    const ParseResult full = parse({"--engine-scan", "full"});
    ASSERT_TRUE(full.ok) << full.error;
    EXPECT_EQ(full.options.machine.engineScan, EngineScan::full);
    const ParseResult active = parse({"--engine-scan", "ACTIVE"});
    ASSERT_TRUE(active.ok) << active.error;
    EXPECT_EQ(active.options.machine.engineScan, EngineScan::active);

    EXPECT_FALSE(parse({"--engine-scan"}).ok);
    EXPECT_FALSE(parse({"--engine-scan", "lazy"}).ok);
}

TEST(CliParse, EngineBarrierFlag)
{
    EXPECT_EQ(parse({}).options.machine.engineBarrier,
              EngineBarrier::tree); // the scalable one is the default
    const ParseResult central = parse({"--engine-barrier", "central"});
    ASSERT_TRUE(central.ok) << central.error;
    EXPECT_EQ(central.options.machine.engineBarrier,
              EngineBarrier::central);
    const ParseResult tree = parse({"--engine-barrier", "TREE"});
    ASSERT_TRUE(tree.ok) << tree.error;
    EXPECT_EQ(tree.options.machine.engineBarrier,
              EngineBarrier::tree);

    EXPECT_FALSE(parse({"--engine-barrier"}).ok);
    EXPECT_FALSE(parse({"--engine-barrier", "mcs"}).ok);
}

TEST(CliParse, EngineRebalanceFlag)
{
    EXPECT_FALSE(parse({}).options.machine.engineRebalance);
    const ParseResult r = parse({"--engine-rebalance"});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.options.machine.engineRebalance);
}

TEST(CliParse, EngineThreadsClampToTilesWithNote)
{
    // 2x2 grid = 4 shards max; 16 workers would idle 12 of them.
    const ParseResult r = parse({"--width", "2", "--height", "2",
                                 "--engine-threads", "16"});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.options.machine.engineThreads, 4u);
    EXPECT_NE(r.note.find("--engine-threads"), std::string::npos);

    // At or below the tile count: no clamp, no note.
    const ParseResult fit = parse({"--width", "2", "--height", "2",
                                   "--engine-threads", "4"});
    ASSERT_TRUE(fit.ok) << fit.error;
    EXPECT_EQ(fit.options.machine.engineThreads, 4u);
    EXPECT_TRUE(fit.note.empty());
}

TEST(CliParse, ParamOverridesAndDeprecatedAlias)
{
    const ParseResult r =
        parse({"--param", "damping=0.9,iterations=20"});
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.options.params.size(), 2u);
    EXPECT_EQ(r.options.params[0].name, "damping");
    EXPECT_DOUBLE_EQ(r.options.params[0].value, 0.9);
    EXPECT_EQ(r.options.params[1].name, "iterations");
    EXPECT_DOUBLE_EQ(r.options.params[1].value, 20.0);

    // The deprecated spelling folds into the same override list.
    const ParseResult alias = parse({"--pagerank-iters", "7"});
    ASSERT_TRUE(alias.ok) << alias.error;
    ASSERT_EQ(alias.options.params.size(), 1u);
    EXPECT_EQ(alias.options.params[0].name, "iterations");
    EXPECT_DOUBLE_EQ(alias.options.params[0].value, 7.0);

    const ParseResult eps = parse({"--param", "epsilon=1e-5"});
    ASSERT_TRUE(eps.ok) << eps.error;
    ASSERT_EQ(eps.options.params.size(), 1u);
    EXPECT_EQ(eps.options.params[0].name, "epsilon");
    EXPECT_DOUBLE_EQ(eps.options.params[0].value, 1e-5);

    EXPECT_FALSE(parse({"--param", "frobnicate=3"}).ok);
    EXPECT_FALSE(parse({"--param", "damping"}).ok);
    EXPECT_FALSE(parse({"--param", "damping=2.0"}).ok);
    EXPECT_FALSE(parse({"--param", "iterations=0"}).ok);
    EXPECT_FALSE(parse({"--param", "iterations=1.5"}).ok);
    EXPECT_FALSE(parse({"--param", "epsilon=1"}).ok);
    EXPECT_FALSE(parse({"--pagerank-iters", "0"}).ok);
}

TEST(CliParse, HelpFlag)
{
    const ParseResult r = parse({"--help"});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.options.help);
    EXPECT_NE(usageText().find("--kernel"), std::string::npos);
}

int
runCli(std::vector<const char*> args, std::string& out,
       std::string& err)
{
    args.insert(args.begin(), "dalorex");
    std::ostringstream out_stream;
    std::ostringstream err_stream;
    const int code =
        cliMain(static_cast<int>(args.size()), args.data(), out_stream,
                err_stream);
    out = out_stream.str();
    err = err_stream.str();
    return code;
}

/** Extract the integer following `"key":` in a JSON string. */
std::uint64_t
jsonUint(const std::string& json, const std::string& key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = json.find(needle);
    EXPECT_NE(at, std::string::npos) << "missing key " << key;
    if (at == std::string::npos)
        return 0;
    return std::strtoull(json.c_str() + at + needle.size(), nullptr,
                         10);
}

/** Structural JSON check: balanced braces, quotes, no trailing junk. */
void
expectWellFormedJson(const std::string& json)
{
    int depth = 0;
    bool in_string = false;
    for (const char c : json) {
        if (in_string) {
            in_string = c != '"';
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{')
            ++depth;
        else if (c == '}') {
            --depth;
            ASSERT_GE(depth, 0);
        }
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(json.find(",}"), std::string::npos)
        << "trailing comma before }";
    EXPECT_EQ(json.find(",]"), std::string::npos)
        << "trailing comma before ]";
}

TEST(CliMain, JsonReportHasStatsAndEnergy)
{
    std::string out;
    std::string err;
    const int code =
        runCli({"--kernel", "bfs", "--width", "4", "--height", "4",
                "--scale", "8", "--json", "--validate"},
               out, err);
    EXPECT_EQ(code, 0) << err;
    expectWellFormedJson(out);

    EXPECT_GT(jsonUint(out, "cycles"), 0u);
    EXPECT_GT(jsonUint(out, "edges_processed"), 0u);
    EXPECT_GT(jsonUint(out, "invocations"), 0u);
    EXPECT_GT(jsonUint(out, "messages_delivered"), 0u);
    for (const char* key :
         {"logic_j", "memory_j", "network_j", "total_j", "seconds",
          "memory_bandwidth_bytes_per_sec"})
        EXPECT_NE(out.find(std::string("\"") + key + "\":"),
                  std::string::npos)
            << key;
    EXPECT_NE(out.find("\"kernel\":\"bfs\""), std::string::npos);
    EXPECT_NE(out.find("\"validated\":true"), std::string::npos);
}

TEST(CliParse, DeadlineAndMaxCyclesFlags)
{
    const ParseResult r =
        parse({"--deadline-ms", "1500", "--max-cycles", "5000"});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.options.deadlineMs, 1500u);
    EXPECT_EQ(r.options.machine.maxCycles, 5000u);
    EXPECT_FALSE(parse({"--deadline-ms", "soon"}).ok);
    EXPECT_FALSE(parse({"--max-cycles", "-1"}).ok);
}

TEST(CliMain, CompletedRunReportsCompletedStatus)
{
    std::string out;
    std::string err;
    const int code = runCli({"--kernel", "bfs", "--scale", "8",
                             "--json"},
                            out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_NE(out.find("\"status\":\"completed\""),
              std::string::npos);
}

TEST(CliMain, MaxCyclesBudgetExitsThreeWithPartialTimeoutReport)
{
    std::string out;
    std::string err;
    const int code = runCli({"--kernel", "bfs", "--scale", "8",
                             "--max-cycles", "10", "--json"},
                            out, err);
    EXPECT_EQ(code, 3) << err;
    // The partial report still prints, carrying the status.
    EXPECT_NE(out.find("\"status\":\"timeout\""), std::string::npos);
    EXPECT_NE(err.find("maxCycles"), std::string::npos);
}

TEST(CliMain, ExpiredDeadlineExitsThreeWithTimeoutStatus)
{
    // A scale-13 pagerank takes far longer than 1 ms of wall clock,
    // so the watchdog reliably trips mid-run.
    std::string out;
    std::string err;
    const int code =
        runCli({"--kernel", "pagerank", "--scale", "13",
                "--deadline-ms", "1", "--json"},
               out, err);
    EXPECT_EQ(code, 3) << err;
    EXPECT_NE(out.find("\"status\":\"timeout\""), std::string::npos);
    EXPECT_NE(err.find("deadline"), std::string::npos);
}

TEST(CliMain, ParamOverrideDrivesPageRankEpochs)
{
    std::string out;
    std::string err;
    const int code =
        runCli({"--kernel", "pagerank", "--width", "2", "--height",
                "2", "--scale", "7", "--param", "iterations=3",
                "--json"},
               out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_EQ(jsonUint(out, "epochs"), 3u);
}

TEST(CliMain, EngineThreadsSurfaceInJson)
{
    std::string out;
    std::string err;
    const int code =
        runCli({"--kernel", "bfs", "--width", "4", "--height", "4",
                "--scale", "8", "--engine-threads", "4", "--json"},
               out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_EQ(jsonUint(out, "engine_threads"), 4u);
}

TEST(CliMain, EngineThreadsClampNoteOnStderrAndClampedJson)
{
    std::string out;
    std::string err;
    const int code =
        runCli({"--kernel", "bfs", "--width", "2", "--height", "2",
                "--scale", "7", "--engine-threads", "64", "--json"},
               out, err);
    EXPECT_EQ(code, 0) << err;
    // The run proceeds clamped to one worker per shard, with a
    // one-line stderr advisory; the report shows the effective value.
    EXPECT_EQ(jsonUint(out, "engine_threads"), 4u);
    EXPECT_NE(err.find("--engine-threads"), std::string::npos);
}

TEST(CliMain, EngineBarrierAndRebalanceSurfaceInJson)
{
    std::string out;
    std::string err;
    const int code =
        runCli({"--kernel", "bfs", "--width", "4", "--height", "4",
                "--scale", "8", "--engine-threads", "4",
                "--engine-barrier", "central", "--engine-rebalance",
                "--json"},
               out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_NE(out.find("\"engine_barrier\":\"central\""),
              std::string::npos);
    EXPECT_NE(out.find("\"engine_rebalance\":true"),
              std::string::npos);
    EXPECT_NE(out.find("\"rebalances\":"), std::string::npos);
}

TEST(CliMain, TextReportMentionsKernelAndCycles)
{
    std::string out;
    std::string err;
    const int code = runCli({"--kernel", "wcc", "--width", "4",
                             "--height", "2", "--scale", "7"},
                            out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_NE(out.find("WCC"), std::string::npos);
    EXPECT_NE(out.find("cycles"), std::string::npos);
    EXPECT_NE(out.find("energy"), std::string::npos);
}

TEST(CliMain, BadFlagExitsNonZeroWithDiagnostic)
{
    std::string out;
    std::string err;
    const int code = runCli({"--bogus"}, out, err);
    EXPECT_EQ(code, 2);
    EXPECT_TRUE(out.empty());
    EXPECT_NE(err.find("--bogus"), std::string::npos);
}

TEST(CliMain, HelpPrintsUsageAndExitsZero)
{
    std::string out;
    std::string err;
    const int code = runCli({"--help"}, out, err);
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("usage: dalorex"), std::string::npos);
    // The sweep subcommand and the dataset listing are advertised.
    EXPECT_NE(out.find("sweep"), std::string::npos);
    EXPECT_NE(out.find("--list-datasets"), std::string::npos);
}

TEST(CliMain, ListDatasetsPrintsCatalogAndExitsZero)
{
    std::string out;
    std::string err;
    const int code = runCli({"--list-datasets"}, out, err);
    EXPECT_EQ(code, 0) << err;
    for (const char* name :
         {"amazon", "wiki", "livejournal", "rmatN", "file:PATH"})
        EXPECT_NE(out.find(name), std::string::npos) << name;
}

TEST(CliMain, FileDatasetIsByteIdenticalToInMemory)
{
    // The acceptance contract for on-disk graphs: a scenario run from
    // a converted file produces the same JSON report, byte for byte,
    // as the in-memory generation path — at 1 and at 8 engine
    // threads. Only the dataset axis label could differ, and it does
    // not: the file stores the canonical name ("R8").
    datasetCacheClear();
    const std::string path =
        testing::TempDir() + "cli_twin_rmat8.dlx";
    {
        const DatasetResult built = tryMakeDataset("rmat8", 1);
        ASSERT_TRUE(built.ok) << built.error;
        std::string error;
        ASSERT_TRUE(saveGraphFile(path, built.dataset, error))
            << error;
    }
    const std::string file_name = "file:" + path;
    for (const char* threads : {"1", "8"}) {
        std::string mem_out;
        std::string file_out;
        std::string err;
        ASSERT_EQ(runCli({"--kernel", "sssp", "--width", "4",
                          "--height", "4", "--dataset", "rmat8",
                          "--engine-threads", threads, "--json",
                          "--validate"},
                         mem_out, err),
                  0)
            << err;
        ASSERT_EQ(runCli({"--kernel", "sssp", "--width", "4",
                          "--height", "4", "--dataset",
                          file_name.c_str(), "--engine-threads",
                          threads, "--json", "--validate"},
                         file_out, err),
                  0)
            << err;
        EXPECT_EQ(mem_out, file_out) << "engine-threads " << threads;
    }
    std::remove(path.c_str());
    datasetCacheClear();
}

TEST(CliMain, CorruptFileDatasetFailsRecoverably)
{
    // A clean nonzero exit with a one-line diagnostic, no crash.
    datasetCacheClear();
    std::string out;
    std::string err;
    const int code = runCli(
        {"--kernel", "bfs", "--dataset", "file:no_such_graph.dlx"},
        out, err);
    EXPECT_EQ(code, 2);
    EXPECT_NE(err.find("no_such_graph.dlx"), std::string::npos)
        << err;
    datasetCacheClear();
}

} // namespace
} // namespace cli
} // namespace dalorex
