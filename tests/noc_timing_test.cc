/**
 * @file
 * Pinned wormhole timing properties of the NoC: per-hop latency,
 * link serialization throughput, the pipeline effect (latency hiding
 * under streaming), and timing determinism — the properties the
 * paper's "communication is one way only, resembling a software
 * pipeline" argument rests on (Sec. III-F).
 */

#include <gtest/gtest.h>

#include <vector>

#include "noc/network.hh"

namespace dalorex
{
namespace
{

struct Collector
{
    std::vector<Cycle> arrivals;
    Cycle now = 0;

    Network::DeliverFn
    fn()
    {
        return [this](const Message&) {
            arrivals.push_back(now);
            return true;
        };
    }
};

NocConfig
lineConfig(std::uint32_t width)
{
    NocConfig config;
    config.topology = NocTopology::mesh;
    config.width = width;
    config.height = 1;
    config.numChannels = 1;
    config.msgWords = {2, 0, 0, 0};
    return config;
}

Message
msgTo(TileId dest)
{
    Message msg;
    msg.dest = dest;
    msg.channel = 0;
    msg.numWords = 2;
    return msg;
}

/** Deliver cycle of a single message over `hops` mesh hops. */
Cycle
singleLatency(std::uint32_t hops)
{
    Collector sink;
    Network net(lineConfig(hops + 1), sink.fn());
    EXPECT_EQ(net.tryInject(msgTo(hops), 0, 0), InjectResult::ok);
    Cycle cycle = 0;
    while (!net.quiescent()) {
        ++cycle;
        sink.now = cycle;
        net.step(cycle);
        if (cycle > 1000)
            break;
    }
    return sink.arrivals.at(0);
}

TEST(NocTiming, OneCyclePerHop)
{
    const Cycle base = singleLatency(1);
    for (std::uint32_t hops = 2; hops <= 6; ++hops)
        EXPECT_EQ(singleLatency(hops), base + (hops - 1));
}

TEST(NocTiming, LinkSerializesAtMessageLength)
{
    // A saturated source streams 2-flit messages: steady-state
    // delivery rate is one message per 2 cycles (1 flit/cycle link).
    Collector sink;
    Network net(lineConfig(4), sink.fn());
    Cycle cycle = 0;
    unsigned injected = 0;
    while (injected < 32 || !net.quiescent()) {
        sink.now = cycle;
        net.step(cycle);
        if (injected < 32 &&
            net.tryInject(msgTo(3), 0, cycle) == InjectResult::ok)
            ++injected;
        ++cycle;
        ASSERT_LT(cycle, 10000u);
    }
    ASSERT_EQ(sink.arrivals.size(), 32u);
    // Steady state: consecutive arrivals exactly 2 cycles apart.
    for (std::size_t i = 8; i < sink.arrivals.size(); ++i)
        EXPECT_EQ(sink.arrivals[i] - sink.arrivals[i - 1], 2u);
}

TEST(NocTiming, PipelineHidesLatency)
{
    // The paper's pipeline argument: streaming N messages over h hops
    // costs ~(h + 2N) cycles, not N x h — distance adds latency once,
    // not per message.
    auto total_time = [](std::uint32_t hops, unsigned count) {
        Collector sink;
        Network net(lineConfig(hops + 1), sink.fn());
        Cycle cycle = 0;
        unsigned injected = 0;
        while (injected < count || !net.quiescent()) {
            sink.now = cycle;
            net.step(cycle);
            if (injected < count &&
                net.tryInject(msgTo(hops), 0, cycle) ==
                    InjectResult::ok)
                ++injected;
            ++cycle;
        }
        return sink.arrivals.back();
    };
    const Cycle near = total_time(1, 64);
    const Cycle far = total_time(6, 64);
    // 5 extra hops add ~5 cycles total, far less than 5 x 64.
    EXPECT_LE(far - near, 8u);
}

TEST(NocTiming, DeterministicTimestamps)
{
    auto run_once = [] {
        Collector sink;
        NocConfig config;
        config.topology = NocTopology::torus;
        config.width = 4;
        config.height = 4;
        config.numChannels = 2;
        config.msgWords = {3, 2, 0, 0};
        Network net(config, sink.fn());
        Cycle cycle = 0;
        unsigned injected = 0;
        while (injected < 100 || !net.quiescent()) {
            sink.now = cycle;
            net.step(cycle);
            for (TileId src = 0; src < 16 && injected < 100; ++src) {
                Message msg;
                msg.dest = (src * 7 + injected) % 16;
                msg.channel =
                    static_cast<ChannelId>(injected % 2);
                msg.numWords = config.msgWords[msg.channel];
                if (net.tryInject(msg, src, cycle) ==
                    InjectResult::ok)
                    ++injected;
            }
            ++cycle;
        }
        return sink.arrivals;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(NocTiming, ChannelsShareLinkBandwidth)
{
    // Two channels streaming from the same source halve each other's
    // throughput: total flits delivered per cycle stays bounded by
    // the 1 flit/cycle injection port.
    NocConfig config = lineConfig(4);
    config.numChannels = 2;
    config.msgWords = {2, 2, 0, 0};
    Collector sink;
    Network net(config, sink.fn());
    Cycle cycle = 0;
    unsigned injected = 0;
    Cycle first = 0;
    while (injected < 40 || !net.quiescent()) {
        sink.now = cycle;
        net.step(cycle);
        if (injected < 40) {
            Message msg = msgTo(3);
            msg.channel = static_cast<ChannelId>(injected % 2);
            if (net.tryInject(msg, 0, cycle) == InjectResult::ok) {
                if (injected == 0)
                    first = cycle;
                ++injected;
            }
        }
        ++cycle;
        ASSERT_LT(cycle, 10000u);
    }
    // 40 x 2-flit messages over one injection port: >= 80 cycles.
    EXPECT_GE(sink.arrivals.back() - first, 79u);
}

} // namespace
} // namespace dalorex
