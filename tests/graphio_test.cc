/**
 * @file
 * Tests for on-disk graphs: text-format ingestion (edge list,
 * MatrixMarket, DIMACS), the binary CSR file round trip and its
 * corruption diagnostics, the file:/rmat dataset-name fixes, the
 * process-wide dataset cache, and the `dalorex convert` driver.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "graph-convert/graph_convert.hh"
#include "graph/dataset_cache.hh"
#include "graph/datasets.hh"
#include "graph/graphfile.hh"
#include "graph/graphio.hh"

namespace dalorex
{
namespace
{

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setLogQuiet(true); }
};
const auto* const quiet_env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

std::string
tmpPath(const std::string& name)
{
    return ::testing::TempDir() + "graphio_" + name;
}

void
writeFile(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << path;
    out << content;
}

std::vector<char>
readAll(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeAll(const std::string& path, const std::vector<char>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

void
expectSameGraph(const Csr& a, const Csr& b)
{
    EXPECT_EQ(a.numVertices, b.numVertices);
    EXPECT_EQ(a.numEdges, b.numEdges);
    EXPECT_EQ(a.rowPtr, b.rowPtr);
    EXPECT_EQ(a.colIdx, b.colIdx);
    EXPECT_EQ(a.weights, b.weights);
}

// --- text ingestion ---------------------------------------------------

TEST(GraphIo, EdgeListBasics)
{
    const std::string path = tmpPath("basic.el");
    writeFile(path, "# a comment\n% another\n// and another\n"
                    "0 1\n1 2\n2 0\n2 2\n1 2\n");
    const TextGraphResult r = readTextGraph(path);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.dataset.name, fileStem(path));
    const Csr& g = r.dataset.graph;
    // Self loop (2,2) dropped, duplicate (1,2) deduped.
    EXPECT_EQ(g.numVertices, 3u);
    EXPECT_EQ(g.numEdges, 3u);
    EXPECT_FALSE(g.weighted());
}

TEST(GraphIo, EdgeListWeighted)
{
    const std::string path = tmpPath("weighted.el");
    writeFile(path, "0 1 5\n1 2 7\n");
    const TextGraphResult r = readTextGraph(path);
    ASSERT_TRUE(r.ok) << r.error;
    const Csr& g = r.dataset.graph;
    ASSERT_TRUE(g.weighted());
    EXPECT_EQ(g.weights, (std::vector<Word>{5, 7}));
}

TEST(GraphIo, EdgeListSymmetrize)
{
    const std::string path = tmpPath("sym.el");
    writeFile(path, "0 1\n1 2\n");
    TextReadOptions opts;
    opts.symmetrize = true;
    const TextGraphResult r = readTextGraph(path, opts);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.dataset.graph.numEdges, 4u);
}

TEST(GraphIo, EdgeListRejectsJunkWithLineNumber)
{
    const std::string path = tmpPath("junk.el");
    writeFile(path, "0 1\nnot an edge\n");
    const TextGraphResult r = readTextGraph(path);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find(":2"), std::string::npos) << r.error;
}

TEST(GraphIo, EdgeListRejectsMixedWeightedness)
{
    const std::string path = tmpPath("mixed.el");
    writeFile(path, "0 1 5\n1 2\n");
    const TextGraphResult r = readTextGraph(path);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("mixed"), std::string::npos) << r.error;
}

TEST(GraphIo, MatrixMarketSymmetricPattern)
{
    const std::string path = tmpPath("sympat.mtx");
    writeFile(path, "%%MatrixMarket matrix coordinate pattern "
                    "symmetric\n% comment\n3 3 2\n1 2\n2 3\n");
    const TextGraphResult r = readTextGraph(path);
    ASSERT_TRUE(r.ok) << r.error;
    const Csr& g = r.dataset.graph;
    EXPECT_EQ(g.numVertices, 3u);
    EXPECT_EQ(g.numEdges, 4u); // both entries mirrored
    EXPECT_FALSE(g.weighted());
}

TEST(GraphIo, MatrixMarketRealGeneral)
{
    const std::string path = tmpPath("realgen.mtx");
    writeFile(path, "%%MatrixMarket matrix coordinate real general\n"
                    "2 2 2\n1 2 3.0\n2 1 4.5\n");
    const TextGraphResult r = readTextGraph(path);
    ASSERT_TRUE(r.ok) << r.error;
    const Csr& g = r.dataset.graph;
    ASSERT_TRUE(g.weighted());
    EXPECT_EQ(g.weights, (std::vector<Word>{3, 5})); // 4.5 rounds up
}

TEST(GraphIo, MatrixMarketRejectsEntryOutsideShape)
{
    const std::string path = tmpPath("shape.mtx");
    writeFile(path, "%%MatrixMarket matrix coordinate pattern "
                    "general\n2 2 1\n3 1\n");
    const TextGraphResult r = readTextGraph(path);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("2x2"), std::string::npos) << r.error;
}

TEST(GraphIo, DimacsGr)
{
    const std::string path = tmpPath("road.gr");
    writeFile(path, "c road network\np sp 3 2\na 1 2 4\na 2 3 6\n");
    const TextGraphResult r = readTextGraph(path);
    ASSERT_TRUE(r.ok) << r.error;
    const Csr& g = r.dataset.graph;
    EXPECT_EQ(g.numVertices, 3u);
    EXPECT_EQ(g.numEdges, 2u);
    ASSERT_TRUE(g.weighted());
    EXPECT_EQ(g.weights, (std::vector<Word>{4, 6}));
}

TEST(GraphIo, DimacsRejectsArcBeforeProblemLine)
{
    const std::string path = tmpPath("noprob.gr");
    writeFile(path, "a 1 2 3\n");
    const TextGraphResult r = readTextGraph(path);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("problem line"), std::string::npos)
        << r.error;
}

TEST(GraphIo, AutoDetectsByContent)
{
    // No telling extension: MatrixMarket by banner, DIMACS by 'p'.
    const std::string mm = tmpPath("banner.txt");
    writeFile(mm, "%%MatrixMarket matrix coordinate pattern general\n"
                  "2 2 1\n1 2\n");
    ASSERT_TRUE(readTextGraph(mm).ok);
    const std::string gr = tmpPath("problem.txt");
    writeFile(gr, "p sp 2 1\na 1 2 9\n");
    const TextGraphResult r = readTextGraph(gr);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.dataset.graph.weighted());
}

TEST(GraphIo, MissingFileIsRecoverable)
{
    const TextGraphResult r = readTextGraph(tmpPath("nope.el"));
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

// --- binary graph files -----------------------------------------------

TEST(GraphFile, RoundTripsGeneratedDataset)
{
    const Dataset ds = makeDataset("rmat8");
    const std::string path = tmpPath("rmat8.dlx");
    std::string error;
    ASSERT_TRUE(saveGraphFile(path, ds, error)) << error;
    const GraphFileResult loaded = loadGraphFile(path);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.dataset.name, ds.name);
    EXPECT_EQ(loaded.dataset.provenance, ds.provenance);
    expectSameGraph(loaded.dataset.graph, ds.graph);
}

TEST(GraphFile, RoundTripsWeightedTextGraph)
{
    const std::string text = tmpPath("rt.gr");
    writeFile(text, "p sp 4 3\na 1 2 10\na 2 3 20\na 3 4 30\n");
    const TextGraphResult read = readTextGraph(text);
    ASSERT_TRUE(read.ok) << read.error;
    const std::string path = tmpPath("rt.dlx");
    std::string error;
    ASSERT_TRUE(saveGraphFile(path, read.dataset, error)) << error;
    const GraphFileResult loaded = loadGraphFile(path);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    expectSameGraph(loaded.dataset.graph, read.dataset.graph);
    const GraphFileInfoResult info = inspectGraphFile(path);
    ASSERT_TRUE(info.ok) << info.error;
    EXPECT_TRUE(info.header.weighted);
    EXPECT_EQ(info.header.numVertices, 4u);
    EXPECT_EQ(info.header.numEdges, 3u);
}

TEST(GraphFile, SaveIsDeterministic)
{
    const Dataset ds = makeDataset("rmat6");
    const std::string a = tmpPath("det_a.dlx");
    const std::string b = tmpPath("det_b.dlx");
    std::string error;
    ASSERT_TRUE(saveGraphFile(a, ds, error)) << error;
    ASSERT_TRUE(saveGraphFile(b, ds, error)) << error;
    EXPECT_EQ(readAll(a), readAll(b));
}

/** A valid saved file the corruption tests below mutate. */
std::vector<char>
validFileBytes(const std::string& path)
{
    std::string error;
    const Dataset ds = makeDataset("rmat6");
    EXPECT_TRUE(saveGraphFile(path, ds, error)) << error;
    return readAll(path);
}

TEST(GraphFile, LoadsFromMisalignedImage)
{
    // loadGraphFileBytes promises any-alignment parsing (every field
    // and section element goes through memcpy). Park a valid image
    // at odd offsets inside a larger buffer — offset 1 misaligns
    // every u32/u64 in the file — and expect a clean, identical
    // load. Under UBSan this doubles as the misaligned-read gate for
    // the whole header/section parse path.
    const std::string path = tmpPath("misaligned.dlx");
    const Dataset ds = makeDataset("rmat6");
    std::string error;
    ASSERT_TRUE(saveGraphFile(path, ds, error)) << error;
    const std::vector<char> bytes = readAll(path);
    for (const std::size_t offset : {1u, 3u, 7u}) {
        std::vector<std::uint8_t> buffer(bytes.size() + offset + 8,
                                         0xAB);
        std::memcpy(buffer.data() + offset, bytes.data(),
                    bytes.size());
        const GraphFileResult r = loadGraphFileBytes(
            buffer.data() + offset, bytes.size(),
            "misaligned+" + std::to_string(offset));
        ASSERT_TRUE(r.ok) << r.error;
        expectSameGraph(r.dataset.graph, ds.graph);
        EXPECT_EQ(r.dataset.name, ds.name);
    }
}

TEST(GraphFile, MisalignedImageCorruptionStillDiagnosed)
{
    // The no-crash guarantee must hold at any alignment too: flip a
    // byte in a misaligned image and expect ok == false, not UB.
    const std::string path = tmpPath("misaligned_bad.dlx");
    const std::vector<char> bytes = validFileBytes(path);
    std::vector<std::uint8_t> buffer(bytes.size() + 2, 0);
    std::memcpy(buffer.data() + 1, bytes.data(), bytes.size());
    buffer[1 + 90] ^= 0x40; // a byte past the header
    const GraphFileResult r =
        loadGraphFileBytes(buffer.data() + 1, bytes.size(), "bad");
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
}

TEST(GraphFile, RejectsTruncation)
{
    const std::string path = tmpPath("trunc.dlx");
    std::vector<char> bytes = validFileBytes(path);
    bytes.resize(40); // inside the header
    writeAll(path, bytes);
    const GraphFileResult r = loadGraphFile(path);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("truncated"), std::string::npos)
        << r.error;

    std::vector<char> shortened = validFileBytes(path);
    shortened.resize(shortened.size() - 4); // inside a section
    writeAll(path, shortened);
    const GraphFileResult r2 = loadGraphFile(path);
    ASSERT_FALSE(r2.ok);
    EXPECT_NE(r2.error.find("truncated"), std::string::npos)
        << r2.error;
}

TEST(GraphFile, RejectsForeignMagic)
{
    const std::string path = tmpPath("magic.dlx");
    std::vector<char> bytes = validFileBytes(path);
    bytes[0] = 'X';
    writeAll(path, bytes);
    const GraphFileResult r = loadGraphFile(path);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("magic"), std::string::npos) << r.error;
}

TEST(GraphFile, RejectsVersionSkew)
{
    const std::string path = tmpPath("version.dlx");
    std::vector<char> bytes = validFileBytes(path);
    bytes[8] = 99; // version field, checked before the header hash
    writeAll(path, bytes);
    const GraphFileResult r = loadGraphFile(path);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("version"), std::string::npos) << r.error;
}

TEST(GraphFile, RejectsAnyFlippedByte)
{
    const std::string path = tmpPath("flip.dlx");
    const std::vector<char> good = validFileBytes(path);
    // One flip in the header payload, one in each section region.
    for (const std::size_t offset :
         {std::size_t(20), std::size_t(90), good.size() - 2}) {
        std::vector<char> bytes = good;
        bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
        writeAll(path, bytes);
        const GraphFileResult r = loadGraphFile(path);
        ASSERT_FALSE(r.ok) << "flip at " << offset;
        EXPECT_NE(r.error.find("checksum"), std::string::npos)
            << "flip at " << offset << ": " << r.error;
    }
}

TEST(GraphFile, MissingFileIsRecoverable)
{
    const GraphFileResult r = loadGraphFile(tmpPath("missing.dlx"));
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("cannot open"), std::string::npos);
}

TEST(GraphFile, HashBytesSeparatesInputs)
{
    const std::uint8_t a[16] = {1, 2, 3};
    std::uint8_t b[16] = {1, 2, 3};
    b[15] = 1;
    EXPECT_NE(hashBytes(a, sizeof a), hashBytes(b, sizeof b));
    EXPECT_EQ(hashBytes(a, sizeof a), hashBytes(a, sizeof a));
    EXPECT_NE(hashBytes(a, 8), hashBytes(a, 9)); // length-sensitive
}

// --- dataset names: file:, rmat edge cases ----------------------------

TEST(Datasets, FileNamesAreKnownButUnlistedScaleless)
{
    EXPECT_TRUE(knownDataset("file:some/graph.dlx"));
    EXPECT_FALSE(knownDataset("file:")); // empty path
    EXPECT_TRUE(isFileDataset("file:x.dlx"));
    EXPECT_FALSE(isFileDataset("rmat8"));
    EXPECT_EQ(defaultQuickScale("file:x.dlx"), 0u);
}

TEST(Datasets, RejectsZeroPaddedRmatNames)
{
    // "rmat0016" must not alias rmat16: the canonical id is R16.
    EXPECT_FALSE(knownDataset("rmat0016"));
    EXPECT_FALSE(knownDataset("rmat08"));
    EXPECT_TRUE(knownDataset("rmat8"));
    const DatasetResult r = tryMakeDataset("rmat0016");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("leading zeros"), std::string::npos)
        << r.error;
}

TEST(Datasets, UnknownNamesFailRecoverably)
{
    const DatasetResult r = tryMakeDataset("nosuchgraph");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unknown dataset"), std::string::npos);
}

TEST(Datasets, RmatIgnoresScaleOverride)
{
    // defaultQuickScale() returns 0 for rmatN; the quick-mode path
    // used to feed that 0 into the [4, 31] range check and die.
    const DatasetResult r = tryMakeDatasetAt("rmat8", 0);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.dataset.name, "R8");
    EXPECT_EQ(r.dataset.graph.numVertices, 256u);
    const DatasetResult ignored = tryMakeDatasetAt("rmat8", 12);
    ASSERT_TRUE(ignored.ok) << ignored.error;
    EXPECT_EQ(ignored.dataset.graph.numVertices, 256u);
}

TEST(Datasets, LoadsFileDatasets)
{
    const std::string path = tmpPath("viads.dlx");
    std::string error;
    const Dataset ds = makeDataset("rmat7");
    ASSERT_TRUE(saveGraphFile(path, ds, error)) << error;
    const DatasetResult r = tryMakeDataset("file:" + path);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.dataset.name, "R7");
    expectSameGraph(r.dataset.graph, ds.graph);
    // The scale override is meaningless for a fixed-size file.
    const DatasetResult at = tryMakeDatasetAt("file:" + path, 12);
    ASSERT_TRUE(at.ok) << at.error;
    expectSameGraph(at.dataset.graph, ds.graph);
}

TEST(Datasets, CorruptFileDatasetFailsAsData)
{
    const std::string path = tmpPath("corrupt_ds.dlx");
    std::vector<char> bytes = validFileBytes(path);
    bytes[bytes.size() - 1] ^= 0x01;
    writeAll(path, bytes);
    const DatasetResult r = tryMakeDataset("file:" + path);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("checksum"), std::string::npos) << r.error;
}

// --- the process-wide dataset cache -----------------------------------

TEST(DatasetCache, BuildsOncePerKey)
{
    datasetCacheClear();
    const CachedDataset a = datasetCacheGet("rmat6", 0, 1);
    ASSERT_TRUE(a.ok) << a.error;
    const CachedDataset b = datasetCacheGet("rmat6", 0, 1);
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.dataset.get(), b.dataset.get()); // same object
    const DatasetCacheStats stats = datasetCacheStats();
    EXPECT_EQ(stats.builds, 1u);
    EXPECT_EQ(stats.hits, 1u);
    datasetCacheClear();
}

TEST(DatasetCache, DistinguishesScaleAndSeed)
{
    datasetCacheClear();
    ASSERT_TRUE(datasetCacheGet("rmat6", 0, 1).ok);
    ASSERT_TRUE(datasetCacheGet("rmat6", 0, 2).ok);
    ASSERT_TRUE(datasetCacheGet("amazon", 10, 1).ok);
    ASSERT_TRUE(datasetCacheGet("amazon", 11, 1).ok);
    EXPECT_EQ(datasetCacheStats().builds, 4u);
    datasetCacheClear();
}

TEST(DatasetCache, CachesFailuresToo)
{
    datasetCacheClear();
    const std::string name = "file:" + tmpPath("cache_missing.dlx");
    const CachedDataset a = datasetCacheGet(name, 0, 1);
    ASSERT_FALSE(a.ok);
    const CachedDataset b = datasetCacheGet(name, 0, 1);
    ASSERT_FALSE(b.ok);
    EXPECT_EQ(a.error, b.error);
    const DatasetCacheStats stats = datasetCacheStats();
    EXPECT_EQ(stats.builds, 1u);
    EXPECT_EQ(stats.hits, 1u);
    datasetCacheClear();
}

TEST(DatasetCache, NegativeEntryExpiresAndHealsAfterRetry)
{
    // The fault-tolerance contract: a file: load that fails once is
    // not poisoned forever. Once the negative entry's TTL lapses, the
    // next request retries the filesystem and succeeds if the file
    // has appeared in the meantime (e.g. an NFS blip, or a dataset
    // staged by another job).
    datasetCacheClear();
    datasetCacheSetNegativeTtlMs(0); // expire immediately
    const std::string path = tmpPath("cache_heal.dlx");
    std::remove(path.c_str());
    const std::string name = "file:" + path;

    const CachedDataset miss = datasetCacheGet(name, 0, 1);
    ASSERT_FALSE(miss.ok);
    EXPECT_TRUE(miss.transient) << "file I/O failures are transient";

    // Stage the file and ask again: with TTL 0 the negative entry is
    // already stale, so this retries the load instead of replaying
    // the cached failure.
    {
        const DatasetResult built = tryMakeDataset("rmat6", 1);
        ASSERT_TRUE(built.ok) << built.error;
        std::string error;
        ASSERT_TRUE(saveGraphFile(path, built.dataset, error))
            << error;
    }
    const CachedDataset healed = datasetCacheGet(name, 0, 1);
    EXPECT_TRUE(healed.ok) << healed.error;
    EXPECT_EQ(datasetCacheStats().builds, 2u);

    std::remove(path.c_str());
    datasetCacheSetNegativeTtlMs(200); // restore the default
    datasetCacheClear();
}

TEST(DatasetCache, FreshNegativeEntryStillServesWithinTtl)
{
    datasetCacheClear();
    datasetCacheSetNegativeTtlMs(60000); // nothing expires in-test
    const std::string name =
        "file:" + tmpPath("cache_no_heal.dlx");
    ASSERT_FALSE(datasetCacheGet(name, 0, 1).ok);
    ASSERT_FALSE(datasetCacheGet(name, 0, 1).ok);
    const DatasetCacheStats stats = datasetCacheStats();
    EXPECT_EQ(stats.builds, 1u) << "TTL not lapsed: no retry";
    EXPECT_EQ(stats.hits, 1u);
    datasetCacheSetNegativeTtlMs(200);
    datasetCacheClear();
}

// --- the convert driver -----------------------------------------------

int
runConvert(const std::vector<std::string>& args, std::string& out_text,
           std::string& err_text)
{
    std::vector<const char*> argv = {"convert"};
    for (const std::string& arg : args)
        argv.push_back(arg.c_str());
    std::ostringstream out;
    std::ostringstream err;
    const int code = convert::convertMain(
        static_cast<int>(argv.size()), argv.data(), out, err);
    out_text = out.str();
    err_text = err.str();
    return code;
}

TEST(Convert, ConvertsEdgeListAndVerifies)
{
    const std::string in = tmpPath("cli.el");
    const std::string dlx = tmpPath("cli.dlx");
    writeFile(in, "0 1\n1 2\n2 0\n");
    std::string out;
    std::string err;
    const int code =
        runConvert({in, "-o", dlx, "--verify"}, out, err);
    EXPECT_EQ(code, 0) << err;
    EXPECT_NE(out.find("converted"), std::string::npos) << out;
    EXPECT_NE(out.find("checksums         OK"), std::string::npos)
        << out;
    const GraphFileResult loaded = loadGraphFile(dlx);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.dataset.name, fileStem(in));
}

TEST(Convert, SnapshotsCatalogDatasets)
{
    const std::string dlx = tmpPath("snap.dlx");
    std::string out;
    std::string err;
    const int code =
        runConvert({"--dataset", "rmat6", "-o", dlx}, out, err);
    EXPECT_EQ(code, 0) << err;
    const GraphFileResult loaded = loadGraphFile(dlx);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    expectSameGraph(loaded.dataset.graph, makeDataset("rmat6").graph);
}

TEST(Convert, VerifyModeRejectsCorruptFiles)
{
    const std::string dlx = tmpPath("cliflip.dlx");
    std::vector<char> bytes = validFileBytes(dlx);
    bytes[bytes.size() - 3] ^= 0x10;
    writeAll(dlx, bytes);
    std::string out;
    std::string err;
    const int code = runConvert({"--verify", dlx}, out, err);
    EXPECT_EQ(code, 2);
    EXPECT_NE(err.find("checksum"), std::string::npos) << err;
}

TEST(Convert, RejectsBadUsage)
{
    std::string out;
    std::string err;
    EXPECT_EQ(runConvert({"--dataset", "nosuch", "-o", "x"}, out,
                         err),
              2);
    EXPECT_NE(err.find("unknown dataset"), std::string::npos) << err;
    EXPECT_EQ(runConvert({"a.el", "--dataset", "rmat6", "-o", "x"},
                         out, err),
              2);
    EXPECT_NE(err.find("mutually exclusive"), std::string::npos)
        << err;
    EXPECT_EQ(runConvert({"a.el"}, out, err), 2);
    EXPECT_NE(err.find("-o"), std::string::npos) << err;
}

} // namespace
} // namespace dalorex
