/**
 * @file
 * Engine-level tests: idle-detection timing, determinism, barrier
 * epochs, stats conservation, local bypass, and failure modes.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "apps/bfs.hh"
#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "graph/reference.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"

namespace dalorex
{
namespace
{

Csr
testGraph(unsigned scale = 9)
{
    RmatParams params;
    params.scale = scale;
    params.edgeFactor = 6;
    params.seed = 11;
    return rmatGraph(params);
}

MachineConfig
config4x4()
{
    MachineConfig config;
    config.width = 4;
    config.height = 4;
    return config;
}

TEST(Machine, DeterministicRuns)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("sssp", graph);

    auto run_once = [&] {
        auto app = setup.makeApp();
        Machine machine(config4x4(), graph.numVertices,
                        graph.numEdges);
        return machine.run(*app);
    };
    const RunStats a = run_once();
    const RunStats b = run_once();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.puOps, b.puOps);
    EXPECT_EQ(a.noc.flitHops, b.noc.flitHops);
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.puBusyPerTile, b.puBusyPerTile);
}

TEST(Machine, MessageConservation)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app);
    // Every injected message is delivered; nothing is left in flight.
    EXPECT_EQ(stats.noc.messagesInjected,
              stats.noc.messagesDelivered);
    EXPECT_GT(stats.noc.messagesDelivered, 0u);
}

TEST(Machine, BarrierModeCountsEpochs)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    MachineConfig config = config4x4();
    config.barrier = true;
    Machine machine(config, graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app);
    // BFS needs one epoch per reached level.
    const std::vector<Word> dist = setup.referenceWords();
    Word max_level = 0;
    for (const Word d : dist)
        if (d != infDist)
            max_level = std::max(max_level, d);
    EXPECT_GE(stats.epochs, max_level);
    EXPECT_EQ(app->gatherValues(machine), dist);
}

TEST(Machine, BarrierlessRunsOneEpoch)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app);
    EXPECT_EQ(stats.epochs, 1u);
}

TEST(Machine, SingleTileNeedsNoNetwork)
{
    const Csr graph = testGraph(8);
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    MachineConfig config;
    config.width = 1;
    config.height = 1;
    Machine machine(config, graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app);
    EXPECT_EQ(stats.noc.flitHops, 0u);
    EXPECT_GT(stats.localBypassMsgs, 0u);
    EXPECT_EQ(app->gatherValues(machine), setup.referenceWords());
}

TEST(Machine, UtilizationBounded)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("spmv", graph);
    auto app = setup.makeApp();
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app);
    EXPECT_GT(stats.utilization(), 0.0);
    EXPECT_LE(stats.utilization(), 1.0);
    for (const Cycle busy : stats.puBusyPerTile)
        EXPECT_LE(busy, stats.cycles);
}

TEST(Machine, ScratchpadFootprintReported)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app);
    EXPECT_GT(stats.scratchpadBytesTotal, 0u);
    EXPECT_GE(stats.scratchpadBytesMax * 16,
              stats.scratchpadBytesTotal);
    // Footprint at least covers the dataset arrays:
    // rowBegin+rowEnd+value per vertex, edgeIdx per edge.
    EXPECT_GE(stats.scratchpadBytesTotal,
              (std::uint64_t(graph.numVertices) * 3 +
               graph.numEdges) *
                  wordBytes);
}

TEST(Machine, InvocationsSplitPerTask)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app);
    ASSERT_EQ(stats.invocationsPerTask.size(), 4u);
    std::uint64_t sum = 0;
    for (const std::uint64_t n : stats.invocationsPerTask)
        sum += n;
    EXPECT_EQ(sum, stats.invocations);
    // T3 runs once per delivered update; T2 at least once per
    // explored vertex with edges.
    EXPECT_GT(stats.invocationsPerTask[2],
              stats.invocationsPerTask[1]);
}

TEST(Machine, InterruptOverheadSlowsRun)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("bfs", graph);

    auto cycles_with = [&](std::uint32_t overhead) {
        auto app = setup.makeApp();
        MachineConfig config = config4x4();
        config.invokeOverhead = overhead;
        Machine machine(config, graph.numVertices, graph.numEdges);
        return machine.run(*app).cycles;
    };
    const Cycle fast = cycles_with(0);
    const Cycle slow = cycles_with(50);
    EXPECT_GT(slow, fast * 2);
}

TEST(Machine, RunIsOneShot)
{
    const Csr graph = testGraph(8);
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    machine.run(*app);
    auto app2 = setup.makeApp();
    EXPECT_DEATH(machine.run(*app2), "one-shot");
}

TEST(Machine, MaxCyclesUnwindsAsTimeout)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    MachineConfig config = config4x4();
    config.maxCycles = 10; // far too small to finish
    Machine machine(config, graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app);
    EXPECT_EQ(stats.status, RunStatus::timeout);
    EXPECT_NE(stats.statusDetail.find("maxCycles"),
              std::string::npos);
    // The unwind happens at a cycle boundary. The idle fast-forward
    // may jump one event window past the budget before the check
    // fires, so the guarantee is "promptly after", not "exactly at":
    EXPECT_GT(stats.cycles, 10u);
    EXPECT_LT(stats.cycles, 100u);
}

TEST(Machine, CancelFlagUnwindsAsCancelled)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    std::atomic<bool> cancel{true}; // cancelled before the first cycle
    RunControl control;
    control.cancel = &cancel;
    const RunStats stats = machine.run(*app, &control);
    EXPECT_EQ(stats.status, RunStatus::cancelled);
    EXPECT_NE(stats.statusDetail.find("cancelled"),
              std::string::npos);
}

TEST(Machine, ExpiredDeadlineUnwindsAsTimeout)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    RunControl control;
    control.expired.store(true); // watchdog fired before the run
    const RunStats stats = machine.run(*app, &control);
    EXPECT_EQ(stats.status, RunStatus::timeout);
    EXPECT_NE(stats.statusDetail.find("deadline"),
              std::string::npos);
}

TEST(Machine, NullControlCompletesNormally)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(*app, nullptr);
    EXPECT_EQ(stats.status, RunStatus::completed);
    EXPECT_EQ(app->gatherValues(machine), setup.referenceWords());
}

TEST(Machine, NonSquareGridWorks)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("wcc", graph);
    auto app = setup.makeApp();
    MachineConfig config;
    config.width = 8;
    config.height = 2;
    Machine machine(config, setup.graph.numVertices,
                    setup.graph.numEdges);
    machine.run(*app);
    EXPECT_EQ(app->gatherValues(machine), setup.referenceWords());
}

TEST(Machine, MoreTilesThanVertices)
{
    const Csr graph = buildCsr(8, {{0, 1},
                                   {1, 2},
                                   {2, 3},
                                   {3, 4},
                                   {4, 5},
                                   {5, 6},
                                   {6, 7}});
    BfsApp app(graph, 0);
    MachineConfig config;
    config.width = 4;
    config.height = 4; // 16 tiles, 8 vertices
    Machine machine(config, graph.numVertices, graph.numEdges);
    machine.run(app);
    EXPECT_EQ(app.gatherValues(machine), referenceBfs(graph, 0));
}

TEST(Machine, EngineThreadsPreserveResultsAndStats)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("sssp", graph);

    auto run_with = [&](unsigned engine_threads) {
        auto app = setup.makeApp();
        MachineConfig config = config4x4();
        config.engineThreads = engine_threads;
        Machine machine(config, graph.numVertices, graph.numEdges);
        const RunStats stats = machine.run(*app);
        EXPECT_EQ(app->gatherValues(machine), setup.referenceWords());
        return stats;
    };
    const RunStats serial = run_with(1);
    // 5 does not divide 16 tiles: shards are uneven, and one shard
    // spans the grid remainder — the sharding must not matter.
    const RunStats sharded = run_with(5);
    EXPECT_EQ(serial.cycles, sharded.cycles);
    EXPECT_EQ(serial.puOps, sharded.puOps);
    EXPECT_EQ(serial.noc.flitHops, sharded.noc.flitHops);
    EXPECT_EQ(serial.invocations, sharded.invocations);
    EXPECT_EQ(serial.puBusyPerTile, sharded.puBusyPerTile);
    EXPECT_EQ(serial.noc.deliveryStalls, sharded.noc.deliveryStalls);
}

TEST(Machine, EngineThreadsClampToTileCount)
{
    // More engine threads than tiles: shards clamp to one per tile.
    const Csr graph = testGraph(8);
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    MachineConfig config;
    config.width = 2;
    config.height = 2;
    config.engineThreads = 64;
    Machine machine(config, graph.numVertices, graph.numEdges);
    machine.run(*app);
    EXPECT_EQ(app->gatherValues(machine), setup.referenceWords());
}

TEST(Machine, EngineScanFullVsActiveIdenticalOnUnevenShards)
{
    const Csr graph = testGraph();
    const KernelSetup setup = makeKernelSetup("sssp", graph);

    auto run_with = [&](EngineScan scan) {
        auto app = setup.makeApp();
        MachineConfig config = config4x4();
        // 5 does not divide 16 tiles: shards are uneven, so active
        // worklist maintenance crosses ragged shard borders.
        config.engineThreads = 5;
        config.engineScan = scan;
        Machine machine(config, graph.numVertices, graph.numEdges);
        const RunStats stats = machine.run(*app);
        EXPECT_EQ(app->gatherValues(machine), setup.referenceWords());
        return stats;
    };
    const RunStats full = run_with(EngineScan::full);
    const RunStats active = run_with(EngineScan::active);
    EXPECT_EQ(full.cycles, active.cycles);
    EXPECT_EQ(full.epochs, active.epochs);
    EXPECT_EQ(full.invocations, active.invocations);
    EXPECT_EQ(full.invocationsPerTask, active.invocationsPerTask);
    EXPECT_EQ(full.puOps, active.puOps);
    EXPECT_EQ(full.sramReads, active.sramReads);
    EXPECT_EQ(full.sramWrites, active.sramWrites);
    EXPECT_EQ(full.tsuReads, active.tsuReads);
    EXPECT_EQ(full.tsuWrites, active.tsuWrites);
    EXPECT_EQ(full.edgesProcessed, active.edgesProcessed);
    EXPECT_EQ(full.noc.messagesInjected, active.noc.messagesInjected);
    EXPECT_EQ(full.noc.flitHops, active.noc.flitHops);
    EXPECT_EQ(full.noc.deliveryStalls, active.noc.deliveryStalls);
    EXPECT_EQ(full.puBusyPerTile, active.puBusyPerTile);
    EXPECT_EQ(full.routerActivePerTile, active.routerActivePerTile);
    // Both engines stepped the same cycles; the active scan did it
    // with strictly fewer tile visits, and the oracle saved nothing.
    EXPECT_EQ(full.engineSteppedCycles, active.engineSteppedCycles);
    EXPECT_EQ(full.activeTileCyclesSaved, 0u);
    EXPECT_LT(active.tileScans, full.tileScans);
    EXPECT_GT(active.activeTileCyclesSaved, 0u);
}

TEST(Machine, ActiveScanFastForwardsIdleWindows)
{
    // A path graph explores one vertex per BFS level: almost every
    // tile is idle at any time, and in barrier mode each epoch ends
    // in a fully-idle drain window before the host reseeds.
    std::vector<std::pair<VertexId, VertexId>> chain;
    for (VertexId v = 0; v + 1 < 48; ++v)
        chain.push_back({v, v + 1});
    const Csr graph = buildCsr(48, chain);

    auto run_with = [&](EngineScan scan) {
        BfsApp app(graph, 0);
        MachineConfig config = config4x4();
        config.barrier = true;
        config.engineScan = scan;
        Machine machine(config, graph.numVertices, graph.numEdges);
        const RunStats stats = machine.run(app);
        EXPECT_EQ(app.gatherValues(machine), referenceBfs(graph, 0));
        return stats;
    };
    const RunStats full = run_with(EngineScan::full);
    const RunStats active = run_with(EngineScan::active);

    // The idle windows are crossed by fast-forward in one step, not
    // rediscovered cycle by cycle: far fewer loop iterations than
    // simulated cycles, identically in both modes (the fast-forward
    // decision is part of the timing contract).
    EXPECT_EQ(full.cycles, active.cycles);
    EXPECT_EQ(full.engineSteppedCycles, active.engineSteppedCycles);
    EXPECT_LT(active.engineSteppedCycles, active.cycles / 2);
    // The wall work of the stepped cycles shrinks with the active
    // set: a 16-tile grid with a 1-vertex frontier should run far
    // below half occupancy, while the full scan pays every tile.
    EXPECT_EQ(full.tileScans,
              full.engineSteppedCycles * 16);
    EXPECT_LT(active.tileScans, full.tileScans / 2);
    EXPECT_GT(active.activeTileCyclesSaved, 0u);
    EXPECT_GT(active.activeRouterCyclesSaved, 0u);
    EXPECT_LT(active.tileScanOccupancy(), 0.5);
}

TEST(Machine, CyclesIncludeIdleDetection)
{
    // An immediately-finished app still pays the idle-tree latency.
    const Csr graph = buildCsr(2, {{0, 1}});
    BfsApp app(graph, 1); // vertex 1 has no out edges
    Machine machine(config4x4(), graph.numVertices, graph.numEdges);
    const RunStats stats = machine.run(app);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_LT(stats.cycles, 200u);
}

} // namespace
} // namespace dalorex
