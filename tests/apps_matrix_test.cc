/**
 * @file
 * The correctness matrix: every kernel, across machine shapes, NoC
 * topologies, scheduling policies, data placements and barrier modes,
 * must reproduce the sequential reference output exactly (PageRank
 * within float tolerance).
 *
 * This is the property the paper validates its simulator with
 * ("correct program outputs over sequential x86 executions",
 * Sec. IV-A), swept over the configuration space.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"

namespace dalorex
{
namespace
{

const Csr&
matrixGraph()
{
    static const Csr graph = [] {
        RmatParams params;
        params.scale = 10;
        params.edgeFactor = 8;
        params.seed = 21;
        return rmatGraph(params);
    }();
    return graph;
}

void
expectMatchesReference(const KernelSetup& setup,
                       const MachineConfig& config)
{
    auto app = setup.makeApp();
    Machine machine(config, setup.graph.numVertices,
                    setup.graph.numEdges);
    machine.run(*app);
    if (setup.floatResult()) {
        const std::vector<double> got = app->gatherFloats(machine);
        const std::vector<double> want = setup.referenceFloats();
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t v = 0; v < got.size(); ++v) {
            ASSERT_NEAR(got[v], want[v],
                        std::max(1e-9, 1e-3 * want[v]))
                << "vertex " << v;
        }
    } else {
        ASSERT_EQ(app->gatherValues(machine),
                  setup.referenceWords());
    }
}

// ---- kernels x grid shapes -------------------------------------

class KernelGrid
    : public ::testing::TestWithParam<
          std::tuple<const KernelInfo*, std::pair<int, int>>>
{
};

TEST_P(KernelGrid, MatchesReference)
{
    const auto [kernel, shape] = GetParam();
    KernelSetup setup = makeKernelSetup(*kernel, matrixGraph());
    setup.iterations = 4;
    MachineConfig config;
    config.width = static_cast<std::uint32_t>(shape.first);
    config.height = static_cast<std::uint32_t>(shape.second);
    expectMatchesReference(setup, config);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelGrid,
    ::testing::Combine(
        ::testing::ValuesIn(allKernels()),
        ::testing::Values(std::pair{1, 1}, std::pair{2, 2},
                          std::pair{8, 2}, std::pair{8, 8})),
    [](const auto& info) {
        const KernelInfo* kernel = std::get<0>(info.param);
        const auto shape = std::get<1>(info.param);
        return kernel->display + "_" +
               std::to_string(shape.first) + "x" +
               std::to_string(shape.second);
    });

// ---- kernels x NoC topologies -----------------------------------

class KernelNoc
    : public ::testing::TestWithParam<
          std::tuple<const KernelInfo*, NocTopology>>
{
};

TEST_P(KernelNoc, MatchesReference)
{
    const auto [kernel, topology] = GetParam();
    KernelSetup setup = makeKernelSetup(*kernel, matrixGraph());
    setup.iterations = 4;
    MachineConfig config;
    config.width = 8;
    config.height = 8;
    config.topology = topology;
    if (topology == NocTopology::torusRuche)
        config.rucheFactor = 2;
    expectMatchesReference(setup, config);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, KernelNoc,
    ::testing::Combine(
        ::testing::ValuesIn(allKernels()),
        ::testing::Values(NocTopology::mesh, NocTopology::torus,
                          NocTopology::torusRuche)),
    [](const auto& info) {
        std::string name =
            std::get<0>(info.param)->display + "_" +
            toString(std::get<1>(info.param));
        for (auto& ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

// ---- kernels x {policy, distribution, barrier, overhead} --------

struct ModeCase
{
    const char* name;
    SchedPolicy policy;
    Distribution distribution;
    bool barrier;
    std::uint32_t overhead;
};

class KernelMode
    : public ::testing::TestWithParam<
          std::tuple<const KernelInfo*, ModeCase>>
{
};

TEST_P(KernelMode, MatchesReference)
{
    const auto [kernel, mode] = GetParam();
    KernelSetup setup = makeKernelSetup(*kernel, matrixGraph());
    setup.iterations = 4;
    MachineConfig config;
    config.width = 4;
    config.height = 4;
    config.policy = mode.policy;
    config.distribution = mode.distribution;
    config.barrier = mode.barrier;
    config.invokeOverhead = mode.overhead;
    expectMatchesReference(setup, config);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, KernelMode,
    ::testing::Combine(
        ::testing::ValuesIn(allKernels()),
        ::testing::Values(
            ModeCase{"roundrobin", SchedPolicy::roundRobin,
                     Distribution::lowOrder, false, 0},
            ModeCase{"highorder", SchedPolicy::trafficAware,
                     Distribution::highOrder, false, 0},
            ModeCase{"barrier", SchedPolicy::trafficAware,
                     Distribution::lowOrder, true, 0},
            ModeCase{"interrupting", SchedPolicy::roundRobin,
                     Distribution::highOrder, true, 50})),
    [](const auto& info) {
        return std::get<0>(info.param)->display + "_" +
               std::get<1>(info.param).name;
    });

// ---- queue sizing sweeps ----------------------------------------

class KernelQueues
    : public ::testing::TestWithParam<
          std::tuple<const KernelInfo*, int>>
{
};

TEST_P(KernelQueues, TinyQueuesStillCorrect)
{
    const auto [kernel, oqt2] = GetParam();
    KernelSetup setup = makeKernelSetup(*kernel, matrixGraph());
    setup.iterations = 3;
    auto app = setup.makeApp();
    QueueSizing sizing;
    sizing.iq1 = 4;
    sizing.iq2 = 8;
    sizing.iq3 = 16;
    sizing.cq1 = 4;
    sizing.oqt2 = static_cast<std::uint32_t>(oqt2);
    sizing.cq2 = static_cast<std::uint32_t>(2 * oqt2);
    app->setQueueSizing(sizing);
    MachineConfig config;
    config.width = 4;
    config.height = 4;
    Machine machine(config, setup.graph.numVertices,
                    setup.graph.numEdges);
    machine.run(*app);
    if (setup.floatResult()) {
        const std::vector<double> want = setup.referenceFloats();
        const std::vector<double> got = app->gatherFloats(machine);
        for (std::size_t v = 0; v < got.size(); ++v)
            ASSERT_NEAR(got[v], want[v],
                        std::max(1e-9, 1e-3 * want[v]));
    } else {
        ASSERT_EQ(app->gatherValues(machine),
                  setup.referenceWords());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, KernelQueues,
    ::testing::Combine(::testing::ValuesIn(allKernels()),
                       ::testing::Values(4, 32)),
    [](const auto& info) {
        return std::get<0>(info.param)->display + "_oqt2_" +
               std::to_string(std::get<1>(info.param));
    });

// ---- seeds / graph shapes ---------------------------------------

class KernelSeeds : public ::testing::TestWithParam<int>
{
};

TEST_P(KernelSeeds, RandomGraphsAllKernels)
{
    RmatParams params;
    params.scale = 8;
    params.edgeFactor = 6;
    params.seed = static_cast<std::uint64_t>(GetParam());
    const Csr graph = rmatGraph(params);
    for (const KernelInfo* kernel : allKernels()) {
        KernelSetup setup = makeKernelSetup(
            *kernel, graph, static_cast<std::uint64_t>(GetParam()));
        setup.iterations = 3;
        MachineConfig config;
        config.width = 4;
        config.height = 4;
        expectMatchesReference(setup, config);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelSeeds,
                         ::testing::Range(1, 9));

// ---- special graph shapes ---------------------------------------

TEST(KernelEdgeCases, PathGraphAllKernels)
{
    EdgeList edges;
    for (VertexId v = 0; v + 1 < 300; ++v)
        edges.emplace_back(v, v + 1);
    const Csr graph = buildCsr(300, edges);
    for (const KernelInfo* kernel : allKernels()) {
        KernelSetup setup = makeKernelSetup(*kernel, graph);
        setup.iterations = 3;
        MachineConfig config;
        config.width = 4;
        config.height = 2;
        expectMatchesReference(setup, config);
    }
}

TEST(KernelEdgeCases, StarGraphAllKernels)
{
    EdgeList edges;
    for (VertexId v = 1; v < 400; ++v) {
        edges.emplace_back(0, v);
        if (v % 2 == 0)
            edges.emplace_back(v, 0);
    }
    const Csr graph = buildCsr(400, edges);
    for (const KernelInfo* kernel : allKernels()) {
        KernelSetup setup = makeKernelSetup(*kernel, graph);
        setup.iterations = 3;
        MachineConfig config;
        config.width = 4;
        config.height = 4;
        expectMatchesReference(setup, config);
    }
}

TEST(KernelEdgeCases, DisconnectedComponents)
{
    EdgeList edges;
    // Three islands of 100 vertices.
    for (VertexId base : {0u, 100u, 200u})
        for (VertexId v = 0; v + 1 < 100; ++v)
            edges.emplace_back(base + v, base + v + 1);
    const Csr graph = buildCsr(300, edges);
    for (const KernelInfo* kernel : allKernels()) {
        KernelSetup setup = makeKernelSetup(*kernel, graph);
        setup.iterations = 3;
        MachineConfig config;
        config.width = 2;
        config.height = 2;
        expectMatchesReference(setup, config);
    }
}

} // namespace
} // namespace dalorex
