/**
 * @file
 * Tests for the data-distribution mapping: ownership math of both
 * placements, inverse mappings, chunk accounting, T1's range-split
 * helper, and the load-balance property that motivates the low-order
 * placement (Sec. III-A / V-A).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/stats.hh"
#include "graph/partition.hh"
#include "graph/rmat.hh"

namespace dalorex
{
namespace
{

TEST(Partition, ChunkSizes)
{
    const Partition p(100, 1000, 16, Distribution::lowOrder);
    EXPECT_EQ(p.nodesPerChunk(), 7u);  // ceil(100/16)
    EXPECT_EQ(p.edgesPerChunk(), 63u); // ceil(1000/16)
}

TEST(Partition, LowOrderInterleaves)
{
    const Partition p(64, 64, 8, Distribution::lowOrder);
    EXPECT_EQ(p.vertexOwner(0), 0u);
    EXPECT_EQ(p.vertexOwner(1), 1u);
    EXPECT_EQ(p.vertexOwner(7), 7u);
    EXPECT_EQ(p.vertexOwner(8), 0u);
    EXPECT_EQ(p.vertexLocal(8), 1u);
}

TEST(Partition, HighOrderBlocks)
{
    const Partition p(64, 64, 8, Distribution::highOrder);
    EXPECT_EQ(p.vertexOwner(0), 0u);
    EXPECT_EQ(p.vertexOwner(7), 0u);
    EXPECT_EQ(p.vertexOwner(8), 1u);
    EXPECT_EQ(p.vertexLocal(8), 0u);
}

TEST(Partition, EdgesAlwaysContiguous)
{
    for (const Distribution dist :
         {Distribution::lowOrder, Distribution::highOrder}) {
        const Partition p(64, 100, 8, dist);
        EXPECT_EQ(p.edgeOwner(0), 0u);
        EXPECT_EQ(p.edgeOwner(12), 0u);
        EXPECT_EQ(p.edgeOwner(13), 1u);
        EXPECT_EQ(p.edgeLocal(13), 0u);
    }
}

/** Round-trip property across sizes and both distributions. */
class PartitionRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<VertexId, EdgeId, std::uint32_t, Distribution>>
{
};

TEST_P(PartitionRoundTrip, VertexMappingInverts)
{
    const auto [v_count, e_count, tiles, dist] = GetParam();
    const Partition p(v_count, e_count, tiles, dist);
    for (VertexId v = 0; v < v_count; ++v) {
        const TileId owner = p.vertexOwner(v);
        EXPECT_LT(owner, tiles);
        EXPECT_LT(p.vertexLocal(v), p.nodesPerChunk());
        EXPECT_EQ(p.vertexGlobal(owner, p.vertexLocal(v)), v);
    }
}

TEST_P(PartitionRoundTrip, EdgeMappingInverts)
{
    const auto [v_count, e_count, tiles, dist] = GetParam();
    const Partition p(v_count, e_count, tiles, dist);
    for (EdgeId e = 0; e < e_count; ++e) {
        const TileId owner = p.edgeOwner(e);
        EXPECT_LT(owner, tiles);
        EXPECT_EQ(p.edgeGlobal(owner, p.edgeLocal(e)), e);
    }
}

TEST_P(PartitionRoundTrip, OwnedCountsSumToTotals)
{
    const auto [v_count, e_count, tiles, dist] = GetParam();
    const Partition p(v_count, e_count, tiles, dist);
    std::uint64_t vertices = 0;
    std::uint64_t edges = 0;
    for (TileId t = 0; t < tiles; ++t) {
        EXPECT_LE(p.ownedVertices(t), p.nodesPerChunk());
        EXPECT_LE(p.ownedEdges(t), p.edgesPerChunk());
        vertices += p.ownedVertices(t);
        edges += p.ownedEdges(t);
    }
    EXPECT_EQ(vertices, v_count);
    EXPECT_EQ(edges, e_count);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionRoundTrip,
    ::testing::Combine(::testing::Values<VertexId>(1, 7, 64, 1000),
                       ::testing::Values<EdgeId>(1, 13, 512, 4097),
                       ::testing::Values<std::uint32_t>(1, 3, 16, 64),
                       ::testing::Values(Distribution::lowOrder,
                                         Distribution::highOrder)));

TEST(Partition, EdgeRangeSplitAtChunkBorder)
{
    const Partition p(64, 100, 8, Distribution::lowOrder);
    // edgesPerChunk == 13: a range crossing 13 splits there.
    EXPECT_EQ(p.edgeRangeSplit(10, 20), 13u);
    // A range inside one chunk is not split.
    EXPECT_EQ(p.edgeRangeSplit(14, 20), 20u);
    // A range starting at a border runs to the next border.
    EXPECT_EQ(p.edgeRangeSplit(13, 40), 26u);
}

TEST(Partition, EdgeRangeSplitCoversWholeRange)
{
    const Partition p(64, 1000, 7, Distribution::lowOrder);
    // Walking the splits visits each sub-range exactly once and every
    // sub-range lands on a single tile.
    EdgeId begin = 5;
    const EdgeId end = 997;
    EdgeId covered = 0;
    while (begin < end) {
        const EdgeId split = p.edgeRangeSplit(begin, end);
        ASSERT_GT(split, begin);
        EXPECT_EQ(p.edgeOwner(begin), p.edgeOwner(split - 1));
        covered += split - begin;
        begin = split;
    }
    EXPECT_EQ(covered, 997u - 5u);
}

TEST(Partition, LowOrderBalancesSkewedDegrees)
{
    // Crawl-ordered graphs (like real SNAP inputs) concentrate hot
    // vertices at low ids; the low-order placement spreads them
    // across tiles while the high-order placement piles them onto
    // the first blocks (Sec. III-F).
    RmatParams params;
    params.scale = 12;
    params.edgeFactor = 10;
    const Csr g = crawlOrder(rmatGraph(params));
    const std::uint32_t tiles = 64;

    auto tile_degree_gini = [&](Distribution dist) {
        const Partition p(g.numVertices, g.numEdges, tiles, dist);
        std::vector<double> load(tiles, 0.0);
        for (VertexId v = 0; v < g.numVertices; ++v)
            load[p.vertexOwner(v)] += g.degree(v);
        return giniCoefficient(load);
    };

    const double low = tile_degree_gini(Distribution::lowOrder);
    const double high = tile_degree_gini(Distribution::highOrder);
    EXPECT_LT(2.0 * low, high); // interleaving at least halves it
    EXPECT_LT(low, 0.3);        // near-uniform under interleaving
}

TEST(Partition, RejectsDegenerateInputs)
{
    EXPECT_DEATH(Partition(0, 10, 4, Distribution::lowOrder),
                 "vertex");
    EXPECT_DEATH(Partition(10, 0, 4, Distribution::lowOrder), "edge");
    EXPECT_DEATH(Partition(10, 10, 0, Distribution::lowOrder),
                 "tile");
}

} // namespace
} // namespace dalorex
