/**
 * @file
 * End-to-end smoke tests: every kernel on a small graph matches its
 * sequential reference on a default machine.
 */

#include <gtest/gtest.h>

#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "graph/rmat.hh"
#include "sim/machine.hh"

namespace dalorex
{
namespace
{

Csr
smallGraph()
{
    RmatParams params;
    params.scale = 10; // 1024 vertices
    params.edgeFactor = 8;
    params.seed = 3;
    return rmatGraph(params);
}

MachineConfig
smallMachine()
{
    MachineConfig config;
    config.width = 4;
    config.height = 4;
    return config;
}

TEST(EngineSmoke, BfsMatchesReference)
{
    const Csr graph = smallGraph();
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    auto app = setup.makeApp();
    Machine machine(smallMachine(), setup.graph.numVertices,
                    setup.graph.numEdges);
    const RunStats stats = machine.run(*app);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(app->gatherValues(machine), setup.referenceWords());
}

TEST(EngineSmoke, SsspMatchesReference)
{
    const Csr graph = smallGraph();
    const KernelSetup setup = makeKernelSetup("sssp", graph);
    auto app = setup.makeApp();
    Machine machine(smallMachine(), setup.graph.numVertices,
                    setup.graph.numEdges);
    machine.run(*app);
    EXPECT_EQ(app->gatherValues(machine), setup.referenceWords());
}

TEST(EngineSmoke, WccMatchesReference)
{
    const Csr graph = smallGraph();
    const KernelSetup setup = makeKernelSetup("wcc", graph);
    auto app = setup.makeApp();
    Machine machine(smallMachine(), setup.graph.numVertices,
                    setup.graph.numEdges);
    machine.run(*app);
    EXPECT_EQ(app->gatherValues(machine), setup.referenceWords());
}

TEST(EngineSmoke, SpmvMatchesReference)
{
    const Csr graph = smallGraph();
    const KernelSetup setup = makeKernelSetup("spmv", graph);
    auto app = setup.makeApp();
    Machine machine(smallMachine(), setup.graph.numVertices,
                    setup.graph.numEdges);
    machine.run(*app);
    EXPECT_EQ(app->gatherValues(machine), setup.referenceWords());
}

TEST(EngineSmoke, PageRankMatchesReference)
{
    const Csr graph = smallGraph();
    const KernelSetup setup = makeKernelSetup("pagerank", graph);
    auto app = setup.makeApp();
    Machine machine(smallMachine(), setup.graph.numVertices,
                    setup.graph.numEdges);
    const RunStats stats = machine.run(*app);
    EXPECT_EQ(stats.epochs, setup.iterations);

    const std::vector<double> got = app->gatherFloats(machine);
    const std::vector<double> want = setup.referenceFloats();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t v = 0; v < got.size(); ++v) {
        EXPECT_NEAR(got[v], want[v],
                    std::max(1e-9, 1e-3 * want[v]))
            << "vertex " << v;
    }
}

} // namespace
} // namespace dalorex
