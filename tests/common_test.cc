/**
 * @file
 * Unit tests for the common substrate: bit utilities, RNG, statistics
 * and table rendering.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bits.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace dalorex
{
namespace
{

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(Bits, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4), 2u);
    EXPECT_EQ(log2Floor(1023), 9u);
    EXPECT_EQ(log2Floor(1024), 10u);
}

TEST(Bits, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(Bits, DivCeil)
{
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
    EXPECT_EQ(divCeil(1, 100), 1u);
    EXPECT_EQ(divCeil(0, 5), 0u);
}

TEST(Bits, MaskInOut)
{
    Word w = 0;
    w = maskInBit(w, 5);
    EXPECT_EQ(w, 32u);
    w = maskInBit(w, 0);
    EXPECT_EQ(w, 33u);
    w = maskOutBit(w, 5);
    EXPECT_EQ(w, 1u);
    w = maskOutBit(w, 0);
    EXPECT_EQ(w, 0u);
}

TEST(Bits, SearchMsb)
{
    EXPECT_EQ(searchMsb(1), 0u);
    EXPECT_EQ(searchMsb(2), 1u);
    EXPECT_EQ(searchMsb(3), 1u);
    EXPECT_EQ(searchMsb(0x80000000u), 31u);
}

TEST(Rng, DeterministicBySeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next64() == b.next64();
    EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto x = rng.range(3, 6);
        EXPECT_GE(x, 3u);
        EXPECT_LE(x, 6u);
        seen.insert(x);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values occur
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Stats, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, Stddev)
{
    EXPECT_DOUBLE_EQ(stddev({5.0, 5.0, 5.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0}), 1.0, 1e-12);
}

TEST(Stats, GiniBalancedIsZero)
{
    EXPECT_DOUBLE_EQ(giniCoefficient({3.0, 3.0, 3.0, 3.0}), 0.0);
}

TEST(Stats, GiniSkewedIsLarge)
{
    // One element holds everything: gini -> (n-1)/n.
    const double g = giniCoefficient({0.0, 0.0, 0.0, 10.0});
    EXPECT_NEAR(g, 0.75, 1e-9);
}

TEST(Stats, ImbalanceFactor)
{
    EXPECT_DOUBLE_EQ(imbalanceFactor({1.0, 1.0, 4.0}), 2.0);
    EXPECT_DOUBLE_EQ(imbalanceFactor({}), 1.0);
}

TEST(Stats, HistogramBinsAndPercentile)
{
    Histogram h(10);
    for (std::uint64_t v = 0; v < 10; ++v)
        for (std::uint64_t k = 0; k <= v; ++k)
            h.add(v);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 10u);
    EXPECT_EQ(h.totalCount(), 55u);
    EXPECT_EQ(h.percentile(1.0), 9u);
    EXPECT_LE(h.percentile(0.5), 7u);
    h.add(1000);
    EXPECT_EQ(h.overflowCount(), 1u);
}

TEST(Table, TextRendering)
{
    Table t({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    const std::string text = t.toText();
    EXPECT_NE(text.find("a"), std::string::npos);
    EXPECT_NE(text.find("333"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numCols(), 2u);
}

TEST(Table, CsvEscaping)
{
    Table t({"x"});
    t.addRow({"plain"});
    t.addRow({"with,comma"});
    t.addRow({"with\"quote"});
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("plain"), std::string::npos);
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, Format)
{
    EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(Table::fmt(10.0, 0), "10");
    EXPECT_EQ(Table::sci(12345.0, 2), "1.23e+04");
}

} // namespace
} // namespace dalorex
