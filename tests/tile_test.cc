/**
 * @file
 * Tests for the tile substrate: circular queues (wrap-around,
 * watermarks, storage accounting) and the TSU's runnable rules and
 * arbitration policies.
 */

#include <gtest/gtest.h>

#include "tile/queue.hh"
#include "tile/task.hh"
#include "tile/tile.hh"
#include "tile/tsu.hh"

namespace dalorex
{
namespace
{

TEST(WordQueue, PushPopFifo)
{
    WordQueue q;
    q.init(2, 4);
    const Word a[2] = {1, 2};
    const Word b[2] = {3, 4};
    q.push(a);
    q.push(b);
    EXPECT_EQ(q.count(), 2u);
    EXPECT_EQ(q.front()[0], 1u);
    EXPECT_EQ(q.front()[1], 2u);
    q.pop();
    EXPECT_EQ(q.front()[0], 3u);
    q.pop();
    EXPECT_TRUE(q.empty());
}

TEST(WordQueue, WrapsAround)
{
    WordQueue q;
    q.init(1, 3);
    for (Word round = 0; round < 10; ++round) {
        const Word v = round;
        q.push(&v);
        EXPECT_EQ(q.front()[0], round);
        q.pop();
    }
    EXPECT_TRUE(q.empty());
}

TEST(WordQueue, FullAndFreeEntries)
{
    WordQueue q;
    q.init(1, 2);
    const Word v = 7;
    EXPECT_EQ(q.freeEntries(), 2u);
    q.push(&v);
    q.push(&v);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.freeEntries(), 0u);
    EXPECT_DEATH(q.push(&v), "full");
}

TEST(WordQueue, PopEmptyPanics)
{
    WordQueue q;
    q.init(1, 2);
    EXPECT_DEATH(q.pop(), "empty");
    EXPECT_DEATH((void)q.front(), "empty");
}

TEST(WordQueue, StorageBytes)
{
    WordQueue q;
    q.init(3, 128);
    EXPECT_EQ(q.storageBytes(), 3u * 128u * 4u);
}

TEST(WordQueue, HighWatermark)
{
    WordQueue q;
    q.init(1, 4);
    q.setHighMark(3);
    const Word v = 0;
    q.push(&v);
    q.push(&v);
    EXPECT_FALSE(q.nearlyFull());
    q.push(&v);
    EXPECT_TRUE(q.nearlyFull());
    EXPECT_NEAR(q.occupancy(), 0.75, 1e-12);
}

TEST(MsgQueue, FifoAndWatermark)
{
    MsgQueue q;
    q.init(2, 4);
    q.setLowMark(1);
    EXPECT_TRUE(q.nearlyEmpty());
    Message m;
    m.dest = 3;
    m.channel = 1;
    m.numWords = 2;
    q.push(m);
    EXPECT_TRUE(q.nearlyEmpty()); // count 1 <= mark 1
    q.push(m);
    EXPECT_FALSE(q.nearlyEmpty());
    EXPECT_EQ(q.front().dest, 3u);
    q.pop();
    q.pop();
    EXPECT_TRUE(q.empty());
}

// ------------------------------------------------------------- TSU

/** A tile with `n` tasks and matching queues for policy tests. */
struct TsuFixture
{
    Tile tile;
    std::vector<TaskDef> defs;

    explicit TsuFixture(unsigned n)
    {
        defs.resize(n);
        tile.iqs.resize(n);
        tile.cqs.resize(1);
        tile.cqs[0].init(2, 8);
        tile.cqs[0].setLowMark(2);
        for (unsigned t = 0; t < n; ++t) {
            defs[t].name = "T" + std::to_string(t + 1);
            defs[t].paramWords = 1;
            defs[t].iqCapacity = 8 * (t + 1); // distinct sizes
            defs[t].fn = [](Machine&, Tile&, TaskCtx&) {};
            tile.iqs[t].init(1, defs[t].iqCapacity);
            tile.iqs[t].setHighMark(6 * (t + 1));
        }
    }

    void
    fill(unsigned task, unsigned entries)
    {
        const Word v = 0;
        for (unsigned i = 0; i < entries; ++i)
            tile.iqs[task].push(&v);
    }
};

TEST(Tsu, EmptyIqNotRunnable)
{
    TsuFixture f(2);
    EXPECT_FALSE(taskRunnable(f.tile, f.defs, 0));
    f.fill(0, 1);
    EXPECT_TRUE(taskRunnable(f.tile, f.defs, 0));
}

TEST(Tsu, OutputGuaranteeBlocks)
{
    TsuFixture f(1);
    f.defs[0].outChannel = 0;
    f.defs[0].maxOutMsgs = 4;
    f.fill(0, 1);
    EXPECT_TRUE(taskRunnable(f.tile, f.defs, 0));
    // Occupy the CQ so fewer than 4 entries remain.
    Message m;
    m.numWords = 2;
    for (int i = 0; i < 5; ++i)
        f.tile.cqs[0].push(m);
    EXPECT_FALSE(taskRunnable(f.tile, f.defs, 0));
}

TEST(Tsu, SelfThrottlingTaskNeedsOneEntry)
{
    TsuFixture f(1);
    f.defs[0].outChannel = 0;
    f.defs[0].maxOutMsgs = 0; // T1-style self-throttle
    f.fill(0, 1);
    Message m;
    m.numWords = 2;
    while (!f.tile.cqs[0].full())
        f.tile.cqs[0].push(m);
    EXPECT_FALSE(taskRunnable(f.tile, f.defs, 0));
    f.tile.cqs[0].pop();
    EXPECT_TRUE(taskRunnable(f.tile, f.defs, 0));
}

TEST(Tsu, LocalOutputFullBlocks)
{
    TsuFixture f(2);
    f.defs[1].outLocalTask = 0; // T4 feeds T1
    f.fill(1, 1);
    EXPECT_TRUE(taskRunnable(f.tile, f.defs, 1));
    f.fill(0, f.defs[0].iqCapacity); // IQ1 full
    EXPECT_FALSE(taskRunnable(f.tile, f.defs, 1));
}

TEST(Tsu, RoundRobinRotates)
{
    TsuFixture f(3);
    f.fill(0, 1);
    f.fill(1, 1);
    f.fill(2, 1);
    const std::uint32_t first =
        pickTask(f.tile, f.defs, SchedPolicy::roundRobin);
    EXPECT_EQ(first, 0u);
    const std::uint32_t second =
        pickTask(f.tile, f.defs, SchedPolicy::roundRobin);
    EXPECT_EQ(second, 1u);
    const std::uint32_t third =
        pickTask(f.tile, f.defs, SchedPolicy::roundRobin);
    EXPECT_EQ(third, 2u);
    EXPECT_EQ(pickTask(f.tile, f.defs, SchedPolicy::roundRobin), 0u);
}

TEST(Tsu, NoTaskWhenNothingRunnable)
{
    TsuFixture f(3);
    EXPECT_EQ(pickTask(f.tile, f.defs, SchedPolicy::roundRobin),
              noTask);
    EXPECT_EQ(pickTask(f.tile, f.defs, SchedPolicy::trafficAware),
              noTask);
}

TEST(Tsu, HighPriorityWinsOverMedium)
{
    TsuFixture f(2);
    // Task 0: IQ nearly full (high). Task 1: one entry (medium at
    // most, since it has no out channel).
    f.fill(0, 7); // mark is 6
    f.fill(1, 1);
    EXPECT_EQ(pickTask(f.tile, f.defs, SchedPolicy::trafficAware),
              0u);
}

TEST(Tsu, LargerQueueBreaksTies)
{
    TsuFixture f(2);
    // Both tasks medium (no out channel): larger IQ capacity wins.
    f.fill(0, 1);
    f.fill(1, 1);
    EXPECT_EQ(pickTask(f.tile, f.defs, SchedPolicy::trafficAware),
              1u); // capacity 16 > 8
}

TEST(Tsu, ExplorationRanksLow)
{
    TsuFixture f(2);
    f.defs[1].outLocalTask = 0; // T4-like task: exploration
    f.fill(0, 1);               // medium (no out channel)
    f.fill(1, 1);               // low (local output)
    EXPECT_EQ(pickTask(f.tile, f.defs, SchedPolicy::trafficAware),
              0u);
}

TEST(Tsu, EmptyOutChannelGivesMedium)
{
    TsuFixture f(2);
    f.defs[0].outChannel = 0; // CQ nearly empty -> medium
    f.defs[1].outChannel = 0;
    f.fill(0, 1);
    f.fill(1, 1);
    // Both medium: larger queue wins (task 1).
    EXPECT_EQ(pickTask(f.tile, f.defs, SchedPolicy::trafficAware),
              1u);
    // Fill the channel past its low mark: both drop to low; tie
    // still resolved by size.
    Message m;
    m.numWords = 2;
    for (int i = 0; i < 4; ++i)
        f.tile.cqs[0].push(m);
    EXPECT_EQ(pickTask(f.tile, f.defs, SchedPolicy::trafficAware),
              1u);
}

TEST(Tile, ScratchpadAccounting)
{
    Tile tile;
    tile.iqs.resize(1);
    tile.iqs[0].init(2, 16);
    tile.cqs.resize(1);
    tile.cqs[0].init(3, 8);
    tile.dataWords = 100;
    EXPECT_EQ(tile.scratchpadBytes(),
              100u * 4 + 2u * 16 * 4 + 3u * 8 * 4);
}

TEST(Tile, QuietReflectsState)
{
    Tile tile;
    EXPECT_TRUE(tile.quiet(5));
    tile.pu.busyUntil = 9;
    EXPECT_FALSE(tile.quiet(5));
    EXPECT_TRUE(tile.quiet(9));
    tile.pendingIqEntries = 1;
    EXPECT_FALSE(tile.quiet(9));
}

} // namespace
} // namespace dalorex
