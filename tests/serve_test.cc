/**
 * @file
 * Tests of the `dalorex serve` subsystem: the JSON reader, the wire
 * protocol (parse/render round trips, malformed/unknown/oversized
 * requests), the priority + fair-share scheduler, the server core's
 * robustness (a bad line answers with `error` and the daemon keeps
 * serving), the byte-identity contract between serve-backed and
 * standalone runs, the warm dataset cache across requests, and the
 * socket transport end to end with `dalorex sweep --via`.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cli/cli.hh"
#include "graph/dataset_cache.hh"
#include "serve/client.hh"
#include "serve/json.hh"
#include "serve/protocol.hh"
#include "serve/scheduler.hh"
#include "serve/serve_cli.hh"
#include "serve/server.hh"
#include "serve/socket_io.hh"
#include "sweep/sweep.hh"
#include "sweep/sweep_cli.hh"

namespace dalorex
{
namespace serve
{
namespace
{

// --- JSON reader -----------------------------------------------------

TEST(JsonReader, ParsesScalarsAndStructure)
{
    const JsonParseResult r = parseJson(
        R"({"a":1,"b":-2.5,"c":"x\n\u0041","d":[true,false,null],)"
        R"("big":18446744073709551615})");
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(r.value.isObject());
    std::uint64_t v = 0;
    ASSERT_TRUE(r.value.find("a")->asU64(v));
    EXPECT_EQ(v, 1u);
    EXPECT_FALSE(r.value.find("b")->asU64(v)); // negative/fractional
    EXPECT_EQ(r.value.find("c")->text, "x\nA");
    EXPECT_EQ(r.value.find("d")->items.size(), 3u);
    // 64-bit integers round-trip exactly via the raw token.
    ASSERT_TRUE(r.value.find("big")->asU64(v));
    EXPECT_EQ(v, 18446744073709551615ull);
}

TEST(JsonReader, RejectsMalformedDocuments)
{
    EXPECT_FALSE(parseJson("").ok);
    EXPECT_FALSE(parseJson("{").ok);
    EXPECT_FALSE(parseJson("{}extra").ok);
    EXPECT_FALSE(parseJson("{\"a\":01x}").ok);
    EXPECT_FALSE(parseJson("\"\\q\"").ok);
    EXPECT_FALSE(parseJson("{\"a\" 1}").ok);
    std::string deep(100, '[');
    EXPECT_FALSE(parseJson(deep).ok); // nesting guard, no crash
}

TEST(JsonReader, QuoteEscapesRoundTrip)
{
    const std::string text = "a\"b\\c\nd\te\x01";
    const JsonParseResult r = parseJson(jsonQuote(text));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.text, text);
}

// --- protocol --------------------------------------------------------

TEST(Protocol, ParsesFullRunRequest)
{
    const ParsedRequest p = parseRequestLine(
        R"({"type":"run","id":"r1","client":"alice","priority":3,)"
        R"("weight":2.5,"kernel":"pagerank","scale":8,"width":2,)"
        R"("height":4,"topology":"mesh","policy":"round-robin",)"
        R"("distribution":"high-order","barrier":true,)"
        R"("invoke_overhead":50,"engine_threads":2,)"
        R"("engine_scan":"full","params":"damping=0.9",)"
        R"("seed":7,"validate":true})");
    ASSERT_TRUE(p.ok) << p.error;
    const Request& r = p.request;
    EXPECT_EQ(r.id, "r1");
    EXPECT_EQ(r.client, "alice");
    EXPECT_EQ(r.priority, 3);
    EXPECT_DOUBLE_EQ(r.weight, 2.5);
    EXPECT_EQ(r.options.kernel->name, "pagerank");
    EXPECT_EQ(r.options.scale, 8u);
    EXPECT_EQ(r.options.machine.width, 2u);
    EXPECT_EQ(r.options.machine.height, 4u);
    EXPECT_EQ(r.options.machine.topology, NocTopology::mesh);
    EXPECT_EQ(r.options.machine.policy, SchedPolicy::roundRobin);
    EXPECT_EQ(r.options.machine.distribution,
              Distribution::highOrder);
    EXPECT_TRUE(r.options.machine.barrier);
    EXPECT_EQ(r.options.machine.invokeOverhead, 50u);
    EXPECT_EQ(r.options.machine.engineThreads, 2u);
    EXPECT_EQ(r.options.machine.engineScan, EngineScan::full);
    ASSERT_EQ(r.options.params.size(), 1u);
    EXPECT_EQ(r.options.params[0].name, "damping");
    EXPECT_EQ(r.options.seed, 7u);
    EXPECT_TRUE(r.options.validate);
    // Mesh never has a ruche factor (mirrors cli::parseArgs).
    EXPECT_EQ(r.options.machine.rucheFactor, 0u);
}

TEST(Protocol, RejectsBadRequestsWithRecoveredId)
{
    EXPECT_FALSE(parseRequestLine("not json at all").ok);
    EXPECT_FALSE(parseRequestLine("[1,2,3]").ok);
    EXPECT_FALSE(parseRequestLine(R"({"type":"run"})").ok); // no id

    ParsedRequest p =
        parseRequestLine(R"({"type":"dance","id":"x1"})");
    EXPECT_FALSE(p.ok);
    EXPECT_EQ(p.request.id, "x1");

    p = parseRequestLine(
        R"({"type":"run","id":"k1","kernel":"nope"})");
    EXPECT_FALSE(p.ok);
    EXPECT_EQ(p.request.id, "k1");
    EXPECT_NE(p.error.find("unknown kernel"), std::string::npos);

    p = parseRequestLine(
        R"({"type":"run","id":"d1","dataset":"nope"})");
    EXPECT_FALSE(p.ok);
    EXPECT_NE(p.error.find("unknown dataset"), std::string::npos);

    p = parseRequestLine(
        R"({"type":"run","id":"f1","flux_capacitor":1})");
    EXPECT_FALSE(p.ok);
    EXPECT_NE(p.error.find("unknown request field"),
              std::string::npos);

    p = parseRequestLine(
        R"({"type":"run","id":"p1","priority":101})");
    EXPECT_FALSE(p.ok);

    // Oversized line: refused, id recovered from the prefix.
    std::string big = R"({"type":"run","id":"big1","params":")";
    big += std::string(maxRequestBytes, 'x');
    big += "\"}";
    p = parseRequestLine(big);
    EXPECT_FALSE(p.ok);
    EXPECT_EQ(p.request.id, "big1");
    EXPECT_NE(p.error.find("exceeds"), std::string::npos);
}

TEST(Protocol, RenderParseRoundTripPreservesScenario)
{
    cli::Options o;
    ASSERT_TRUE(cli::parseKernel("sssp", o.kernel));
    o.scale = 9;
    o.seed = 42;
    o.machine.width = 4;
    o.machine.height = 2;
    o.machine.topology = NocTopology::torusRuche;
    o.machine.rucheFactor = 3;
    o.machine.invokeOverhead = 5;
    o.machine.engineThreads = 2;
    o.params.push_back({"iterations", 12.0});
    o.validate = true;

    const ParsedRequest p = parseRequestLine(
        renderRunRequest(o, "rt1", "tester", 2));
    ASSERT_TRUE(p.ok) << p.error;
    const cli::Options& q = p.request.options;
    EXPECT_EQ(q.kernel, o.kernel);
    EXPECT_EQ(q.scale, o.scale);
    EXPECT_EQ(q.seed, o.seed);
    EXPECT_EQ(q.machine.width, o.machine.width);
    EXPECT_EQ(q.machine.height, o.machine.height);
    EXPECT_EQ(q.machine.topology, o.machine.topology);
    EXPECT_EQ(q.machine.rucheFactor, o.machine.rucheFactor);
    EXPECT_EQ(q.machine.invokeOverhead, o.machine.invokeOverhead);
    EXPECT_EQ(q.machine.engineThreads, o.machine.engineThreads);
    ASSERT_EQ(q.params.size(), 1u);
    EXPECT_EQ(q.params[0].name, "iterations");
    EXPECT_DOUBLE_EQ(q.params[0].value, 12.0);
    EXPECT_EQ(q.validate, o.validate);
    EXPECT_EQ(p.request.priority, 2);
    EXPECT_EQ(p.request.client, "tester");
}

TEST(Protocol, ResultPayloadExtractionIsExact)
{
    const std::string payload =
        "{\"kernel\":\"bfs\",\"id\":\",\\\"report\\\":\"}\n";
    const std::string line = resultLine("r,\"x", payload);
    std::string back;
    ASSERT_TRUE(extractResultPayload(line, back));
    EXPECT_EQ(back, payload);

    EXPECT_FALSE(extractResultPayload("{\"type\":\"error\"}", back));
}

// --- scheduler -------------------------------------------------------

Job
makeJob(const std::string& client, int priority,
        const std::string& id)
{
    Job job;
    job.request.id = id;
    job.request.client = client;
    job.request.priority = priority;
    return job;
}

TEST(Scheduler, PriorityBeatsFairShareAndFifoWithinClient)
{
    FairScheduler sched;
    sched.push(makeJob("a", 0, "a1"));
    sched.push(makeJob("a", 0, "a2"));
    sched.push(makeJob("b", 5, "b1"));

    Job job;
    ASSERT_TRUE(sched.pop(job));
    EXPECT_EQ(job.request.id, "b1"); // priority first
    ASSERT_TRUE(sched.pop(job));
    EXPECT_EQ(job.request.id, "a1"); // then FIFO within the client
    ASSERT_TRUE(sched.pop(job));
    EXPECT_EQ(job.request.id, "a2");

    sched.close();
    EXPECT_FALSE(sched.pop(job)); // closed + drained
}

TEST(Scheduler, WeightsShareServiceProportionally)
{
    FairScheduler sched;
    sched.setWeight("heavy", 2.0);
    for (int i = 0; i < 9; ++i) {
        sched.push(makeJob("heavy", 0, "h" + std::to_string(i)));
        sched.push(makeJob("light", 0, "l" + std::to_string(i)));
    }
    // Over the first 6 grants, a weight-2 client gets ~2x the grants
    // of a weight-1 client (stride scheduling: vtime += 1/weight).
    int heavy = 0;
    Job job;
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(sched.pop(job));
        if (job.request.client == "heavy")
            ++heavy;
    }
    EXPECT_EQ(heavy, 4);
}

TEST(Scheduler, IdleClientRejoinsAtTheGlobalClock)
{
    FairScheduler sched;
    Job job;
    // `busy` accumulates vtime while `idle` submits nothing.
    for (int i = 0; i < 8; ++i)
        sched.push(makeJob("busy", 0, "b" + std::to_string(i)));
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(sched.pop(job));
    // A newcomer must not drain its backlog ahead of the incumbent's:
    // service alternates instead of bursting all of `idle` first.
    sched.push(makeJob("idle", 0, "i0"));
    sched.push(makeJob("idle", 0, "i1"));
    ASSERT_TRUE(sched.pop(job));
    const std::string first = job.request.client;
    ASSERT_TRUE(sched.pop(job));
    EXPECT_NE(job.request.client, first);
}

TEST(Scheduler, FairUnderConcurrentSubmissionFromFourClients)
{
    // Four client threads race their submissions in; the pop side
    // then verifies the fair-share contract survived the concurrent
    // pushes. Runs under TSan (sanitize-tsan CI job) to check the
    // scheduler's locking — push/setWeight/depth/clientStats from
    // four threads is exactly the daemon's contention pattern.
    FairScheduler sched;
    sched.setWeight("w4", 4.0);
    sched.setWeight("w2", 2.0);
    constexpr int per_client = 12;
    const std::vector<std::string> names = {"w4", "w2", "a1", "b1"};
    std::vector<std::thread> pushers;
    for (const std::string& name : names) {
        pushers.emplace_back([&sched, name] {
            for (int i = 0; i < per_client; ++i) {
                sched.push(
                    makeJob(name, 0, name + std::to_string(i)));
                (void)sched.depth();
                (void)sched.clientStats();
            }
        });
    }
    for (std::thread& t : pushers)
        t.join();

    // Once pushes settle, stride scheduling is deterministic: over
    // any prefix, grants are proportional to weight (4:2:1:1), and
    // each client's own jobs stay FIFO regardless of how the pushes
    // interleaved.
    std::map<std::string, int> grants;
    std::map<std::string, int> lastIndex;
    Job job;
    for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(sched.pop(job));
        ++grants[job.request.client];
        const std::string& client = job.request.client;
        const int index = std::stoi(
            job.request.id.substr(client.size()));
        auto it = lastIndex.find(client);
        if (it != lastIndex.end()) {
            EXPECT_LT(it->second, index) << "FIFO broke for "
                                         << client;
        }
        lastIndex[client] = index;
    }
    EXPECT_GE(grants["w4"], 7);
    EXPECT_GE(grants["w2"], 3);
    EXPECT_GE(grants["a1"], 1); // no starvation at weight 1
    EXPECT_GE(grants["b1"], 1);
    EXPECT_GT(grants["w4"], grants["w2"]);
    EXPECT_GT(grants["w2"], grants["a1"]);

    // Drain the rest: every submitted job comes out exactly once.
    int drained = 16;
    sched.close();
    while (sched.pop(job))
        ++drained;
    EXPECT_EQ(drained, per_client * 4);
}

TEST(Scheduler, ConcurrentPushPopNeverLosesOrDuplicatesJobs)
{
    // Producer/consumer crossfire — four pushers and two poppers all
    // live at once, the daemon's actual topology. The assertion is
    // exactly-once delivery; the point of running it under TSan is
    // the scheduler's mutex discipline under real contention.
    FairScheduler sched;
    constexpr int per_client = 25;
    std::mutex seenMutex;
    std::map<std::string, int> seen;
    std::vector<std::thread> poppers;
    for (int p = 0; p < 2; ++p) {
        poppers.emplace_back([&] {
            Job job;
            while (sched.pop(job)) {
                std::lock_guard<std::mutex> lock(seenMutex);
                ++seen[job.request.id];
            }
        });
    }
    std::vector<std::thread> pushers;
    for (int c = 0; c < 4; ++c) {
        pushers.emplace_back([&sched, c] {
            const std::string name = "c" + std::to_string(c);
            for (int i = 0; i < per_client; ++i)
                sched.push(
                    makeJob(name, i % 3, // mixed priorities
                            name + "_" + std::to_string(i)));
        });
    }
    for (std::thread& t : pushers)
        t.join();
    sched.close();
    for (std::thread& t : poppers)
        t.join();

    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(4 * per_client));
    for (const auto& [id, count] : seen)
        EXPECT_EQ(count, 1) << id;
    EXPECT_EQ(sched.depth(), 0u);
}

// --- server core -----------------------------------------------------

/** Collects response lines from one connection, thread-safe. */
struct Capture
{
    std::mutex mutex;
    std::vector<std::string> lines;

    Server::Sink
    sink()
    {
        return [this](const std::string& line) {
            std::lock_guard<std::mutex> lock(mutex);
            lines.push_back(line);
        };
    }

    std::vector<std::string>
    snapshot()
    {
        std::lock_guard<std::mutex> lock(mutex);
        return lines;
    }

    /** The first line whose JSON has this type and id. */
    bool
    findLine(const std::string& type, const std::string& id,
             std::string& out)
    {
        for (const std::string& line : snapshot()) {
            const JsonParseResult r = parseJson(line);
            if (!r.ok || !r.value.isObject())
                continue;
            const JsonValue* t = r.value.find("type");
            const JsonValue* i = r.value.find("id");
            if (t != nullptr && t->isString() && t->text == type &&
                i != nullptr && i->isString() && i->text == id) {
                out = line;
                return true;
            }
        }
        return false;
    }
};

/** A tiny scenario that runs in milliseconds. */
std::string
runLine(const std::string& id, const std::string& extra = "")
{
    return "{\"type\":\"run\",\"id\":\"" + id +
           "\",\"kernel\":\"bfs\",\"scale\":6,\"width\":2,"
           "\"height\":2" + extra + "}";
}

cli::Options
tinyOptions()
{
    cli::Options o;
    EXPECT_TRUE(cli::parseKernel("bfs", o.kernel));
    o.scale = 6;
    o.machine.width = 2;
    o.machine.height = 2;
    return o;
}

TEST(ServerCore, BadLinesGetErrorsAndTheDaemonKeepsServing)
{
    Server server(1);
    Capture capture;
    const std::uint64_t conn = server.openConnection(capture.sink());

    server.handleLine(conn, "garbage{{{");
    server.handleLine(conn, R"({"type":"run","id":"bad-kernel",)"
                            R"("kernel":"warp-drive"})");
    std::string big = R"({"type":"run","id":"too-big","params":")";
    big += std::string(maxRequestBytes, 'x');
    big += "\"}";
    server.handleLine(conn, big);
    server.handleLine(conn, runLine("ok-after-errors"));
    server.handleLine(conn, R"({"type":"shutdown","id":"q"})");
    server.serve(); // drains the accepted run, then returns

    std::string line;
    EXPECT_TRUE(capture.findLine("error", "", line)); // garbage
    EXPECT_TRUE(capture.findLine("error", "bad-kernel", line));
    EXPECT_NE(line.find("unknown kernel"), std::string::npos);
    EXPECT_TRUE(capture.findLine("error", "too-big", line));
    EXPECT_TRUE(capture.findLine("accepted", "ok-after-errors", line));
    EXPECT_TRUE(capture.findLine("result", "ok-after-errors", line));
    EXPECT_TRUE(capture.findLine("accepted", "q", line));
}

TEST(ServerCore, ResultPayloadIsByteIdenticalToStandaloneRun)
{
    const cli::Options options = tinyOptions();
    const cli::RunOutcome standalone = cli::runScenario(options);
    ASSERT_TRUE(standalone.ok) << standalone.error;
    const std::string expected = cli::renderJson(standalone.report);

    Server server(1);
    Capture capture;
    const std::uint64_t conn = server.openConnection(capture.sink());
    server.handleLine(conn, runLine("bytes"));
    server.requestShutdown();
    server.serve();

    std::string line;
    ASSERT_TRUE(capture.findLine("result", "bytes", line));
    std::string payload;
    ASSERT_TRUE(extractResultPayload(line, payload));
    EXPECT_EQ(payload, expected);
}

TEST(ServerCore, SecondRequestForSameDatasetBuildsNothing)
{
    datasetCacheClear();
    Server server(1);
    Capture capture;
    const std::uint64_t conn = server.openConnection(capture.sink());
    server.handleLine(conn, runLine("warm-1"));
    server.handleLine(conn, runLine("warm-2"));
    server.requestShutdown();
    server.serve();

    std::string line;
    ASSERT_TRUE(capture.findLine("result", "warm-1", line));
    ASSERT_TRUE(capture.findLine("result", "warm-2", line));
    const DatasetCacheStats cache = datasetCacheStats();
    EXPECT_EQ(cache.builds, 1u); // second request: zero extra builds
    EXPECT_EQ(cache.hits, 1u);

    // The stats response reports the same counters.
    server.handleLine(conn, R"({"type":"stats","id":"s"})");
    ASSERT_TRUE(capture.findLine("stats", "s", line));
    const JsonParseResult parsed = parseJson(line);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const JsonValue* stats = parsed.value.find("stats");
    ASSERT_NE(stats, nullptr);
    const JsonValue* dc = stats->find("dataset_cache");
    ASSERT_NE(dc, nullptr);
    std::uint64_t v = 0;
    ASSERT_TRUE(dc->find("builds")->asU64(v));
    EXPECT_EQ(v, 1u);
    ASSERT_TRUE(stats->find("runs_completed")->asU64(v));
    EXPECT_EQ(v, 2u);
}

TEST(ServerCore, ConcurrentClientsGetInterleavedButCompleteJsonl)
{
    Server server(2);
    Capture a;
    Capture b;
    const std::uint64_t connA = server.openConnection(a.sink());
    const std::uint64_t connB = server.openConnection(b.sink());

    constexpr int jobs = 3;
    std::thread clientA([&] {
        for (int i = 0; i < jobs; ++i)
            server.handleLine(
                connA, runLine("a" + std::to_string(i),
                               ",\"client\":\"alice\""));
    });
    std::thread clientB([&] {
        for (int i = 0; i < jobs; ++i)
            server.handleLine(
                connB, runLine("b" + std::to_string(i),
                               ",\"client\":\"bob\",\"priority\":1"));
    });
    clientA.join();
    clientB.join();
    server.requestShutdown();
    server.serve();

    // Every line each client got is whole, well-formed JSON with its
    // own ids only, and every request has accepted + result.
    std::string line;
    for (int i = 0; i < jobs; ++i) {
        EXPECT_TRUE(a.findLine("accepted", "a" + std::to_string(i),
                               line));
        EXPECT_TRUE(a.findLine("result", "a" + std::to_string(i),
                               line));
        EXPECT_TRUE(b.findLine("accepted", "b" + std::to_string(i),
                               line));
        EXPECT_TRUE(b.findLine("result", "b" + std::to_string(i),
                               line));
    }
    for (const std::string& got : a.snapshot()) {
        EXPECT_TRUE(parseJson(got).ok);
        EXPECT_EQ(got.find("\"id\":\"b"), std::string::npos);
    }
    for (const std::string& got : b.snapshot())
        EXPECT_TRUE(parseJson(got).ok);
}

// --- report reconstruction (the sweep --via data path) ---------------

TEST(ReportReconstruction, RebuiltReportAggregatesIdentically)
{
    const cli::Options options = tinyOptions();
    const cli::RunOutcome local = cli::runScenario(options);
    ASSERT_TRUE(local.ok) << local.error;

    cli::Report rebuilt;
    std::string err;
    ASSERT_TRUE(parseReportPayload(cli::renderJson(local.report),
                                   options, rebuilt, err))
        << err;
    EXPECT_EQ(rebuilt.stats.cycles, local.report.stats.cycles);
    EXPECT_EQ(rebuilt.stats.puOps, local.report.stats.puOps);
    EXPECT_EQ(rebuilt.stats.noc.flitHops,
              local.report.stats.noc.flitHops);
    EXPECT_DOUBLE_EQ(rebuilt.seconds, local.report.seconds);
    EXPECT_DOUBLE_EQ(rebuilt.energy.totalJ(),
                     local.report.energy.totalJ());
    EXPECT_DOUBLE_EQ(rebuilt.stats.utilization(),
                     local.report.stats.utilization());
    // The reconstructed report renders the same JSON bytes again.
    EXPECT_EQ(cli::renderJson(rebuilt),
              cli::renderJson(local.report));
}

// --- stdin transport -------------------------------------------------

TEST(ServeCli, StdinTransportAnswersAndDrainsOnShutdown)
{
    std::istringstream in(runLine("s1") + "\n" +
                          "{\"type\":\"stats\",\"id\":\"st\"}\n" +
                          "{\"type\":\"shutdown\",\"id\":\"q\"}\n");
    std::ostringstream out;
    std::ostringstream err;
    const char* argv[] = {"serve", "--workers", "1"};
    const int rc = serveMain(3, argv, in, out, err);
    EXPECT_EQ(rc, 0);
    const std::string text = out.str();
    EXPECT_NE(text.find("\"type\":\"accepted\",\"id\":\"s1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"type\":\"result\",\"id\":\"s1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"type\":\"stats\",\"id\":\"st\""),
              std::string::npos);
    EXPECT_NE(text.find("\"type\":\"accepted\",\"id\":\"q\""),
              std::string::npos);
}

TEST(ServeCli, UsageAndBadFlagsFailCleanly)
{
    std::istringstream in;
    std::ostringstream out;
    std::ostringstream err;
    const char* help[] = {"serve", "--help"};
    EXPECT_EQ(serveMain(2, help, in, out, err), 0);
    EXPECT_NE(out.str().find("usage: dalorex serve"),
              std::string::npos);

    const char* bad[] = {"serve", "--bogus"};
    EXPECT_EQ(serveMain(2, bad, in, out, err), 2);
    EXPECT_NE(err.str().find("unknown option"), std::string::npos);
}

// --- subcommand table ------------------------------------------------

TEST(SubcommandTable, HelpEnumeratesEverySubcommand)
{
    const std::string usage = cli::usageText();
    for (const cli::Subcommand& sub : cli::subcommands()) {
        EXPECT_NE(usage.find(std::string("dalorex ") + sub.name),
                  std::string::npos)
            << sub.name;
        EXPECT_NE(usage.find(sub.summary), std::string::npos)
            << sub.name;
    }
    // The historical gap this table closes: convert and serve are in.
    EXPECT_NE(usage.find("dalorex convert"), std::string::npos);
    EXPECT_NE(usage.find("dalorex serve"), std::string::npos);
}

// --- sweep cancellation (SIGINT machinery, signal-free) --------------

TEST(SweepCancel, SetFlagSkipsRemainingRowsAsInterrupted)
{
    sweep::Plan plan;
    plan.kernels = {kernelOrDie("bfs")};
    plan.datasets = {{"", 6}};
    plan.grids = {{2, 2}};
    const sweep::ExpandResult expanded = sweep::expand(plan);
    ASSERT_TRUE(expanded.ok) << expanded.error;

    std::atomic<bool> cancel{true}; // already interrupted
    const sweep::RunResult result =
        sweep::run(expanded, 1, &cancel);
    ASSERT_TRUE(result.ok);
    ASSERT_EQ(result.outcomes.size(), 1u);
    EXPECT_FALSE(result.outcomes[0].ok);
    EXPECT_EQ(result.outcomes[0].error, "interrupted");
}

// --- socket transport + sweep --via, end to end ----------------------

int
runSweep(const std::vector<std::string>& args, std::string& out)
{
    std::vector<const char*> argv = {"sweep"};
    for (const std::string& arg : args)
        argv.push_back(arg.c_str());
    std::ostringstream outStream;
    std::ostringstream errStream;
    const int rc = sweep::sweepMain(static_cast<int>(argv.size()),
                                    argv.data(), outStream,
                                    errStream);
    out = outStream.str();
    return rc;
}

TEST(ServeSocket, SweepViaDaemonMatchesLocalSweepByteForByte)
{
    const std::string path = "serve_test_e2e.sock";
    std::istringstream in;
    std::ostringstream out;
    std::ostringstream err;
    std::thread daemon([&] {
        const char* argv[] = {"serve", "--socket", path.c_str(),
                              "--workers", "2"};
        serveMain(5, argv, in, out, err);
    });
    // Wait for the daemon to listen (connectUnix succeeds).
    int probe = -1;
    std::string diag;
    for (int i = 0; i < 500 && probe < 0; ++i) {
        probe = connectUnix(path, diag);
        if (probe < 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    ASSERT_GE(probe, 0) << diag;

    const std::vector<std::string> grid = {
        "--kernel", "bfs,wcc", "--scale", "6", "--grid-size",
        "2x2,4x4", "--threads", "1", "--json"};
    std::string viaOut;
    std::vector<std::string> viaArgs = grid;
    viaArgs.insert(viaArgs.end(), {"--via", path});
    EXPECT_EQ(runSweep(viaArgs, viaOut), 0);
    std::string localOut;
    EXPECT_EQ(runSweep(grid, localOut), 0);

    // Row lines are byte-identical; only the trailing summary line
    // may differ (its dataset-cache deltas depend on run order).
    auto rows = [](const std::string& text) {
        const std::size_t last =
            text.rfind("{\"type\":\"summary\"");
        return text.substr(0, last);
    };
    EXPECT_EQ(rows(viaOut), rows(localOut));
    EXPECT_NE(viaOut.find("{\"type\":\"summary\""),
              std::string::npos);

    // Shut the daemon down over its own protocol.
    ASSERT_TRUE(sendAll(probe,
                        "{\"type\":\"shutdown\",\"id\":\"q\"}\n"));
    LineReader reader(probe);
    std::string line;
    ASSERT_EQ(reader.readLine(line), ReadStatus::line);
    EXPECT_NE(line.find("\"accepted\""), std::string::npos);
    daemon.join();
    ::close(probe);
}

// --- fault tolerance: deadlines, oversized lines, journal, drain -----

TEST(Protocol, OversizedLineReportsObservedBytesAndLimit)
{
    const std::string big(maxRequestBytes + 123, 'x');
    const ParsedRequest p = parseRequestLine(big);
    ASSERT_FALSE(p.ok);
    EXPECT_NE(p.error.find(std::to_string(big.size())),
              std::string::npos)
        << p.error;
    EXPECT_NE(p.error.find("65536-byte limit"), std::string::npos)
        << p.error;
}

TEST(Protocol, DeadlineMsRoundTripsButIsNotScenarioIdentity)
{
    const ParsedRequest p = parseRequestLine(
        runLine("dl", ",\"deadline_ms\":250"));
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.request.options.deadlineMs, 250u);
    const std::string rendered =
        renderRunRequest(p.request.options, "dl2", "");
    EXPECT_NE(rendered.find("\"deadline_ms\":250"),
              std::string::npos);

    // The run-control budget must not change which cached/journaled
    // result a scenario maps to.
    cli::Options bare = p.request.options;
    bare.deadlineMs = 0;
    EXPECT_EQ(pointHash(p.request.options), pointHash(bare));
}

TEST(ServerCore, DeadlineExpiresAsTimeoutResultAndDaemonSurvives)
{
    // A request whose compute far exceeds its wall-clock budget must
    // come back as a `result` carrying status "timeout" within ~2x
    // the budget, and the daemon must keep serving afterwards.
    datasetCacheClear();
    // Prewarm the dataset so the budget measures engine time, not
    // graph generation.
    {
        const cli::Options warm = tinyOptions();
        ASSERT_TRUE(
            datasetCacheGet("rmat10", 0, warm.seed).ok);
    }
    Server server(1);
    Capture capture;
    const std::uint64_t conn = server.openConnection(capture.sink());
    const std::uint64_t deadline_ms = 1000;
    const auto t0 = std::chrono::steady_clock::now();
    server.handleLine(
        conn, "{\"type\":\"run\",\"id\":\"dl\","
              "\"kernel\":\"pagerank\",\"scale\":10,"
              "\"width\":2,\"height\":2,"
              "\"params\":\"iterations=1000\","
              "\"deadline_ms\":" +
                  std::to_string(deadline_ms) + "}");
    server.handleLine(conn, runLine("alive-after"));
    server.requestShutdown();
    server.serve();
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();

    std::string line;
    ASSERT_TRUE(capture.findLine("result", "dl", line)) << line;
    std::string payload;
    ASSERT_TRUE(extractResultPayload(line, payload));
    EXPECT_NE(payload.find("\"status\":\"timeout\""),
              std::string::npos)
        << payload;
    EXPECT_TRUE(capture.findLine("result", "alive-after", line));
    EXPECT_LT(elapsed_ms,
              static_cast<long long>(2 * deadline_ms))
        << "timeout did not cut the run promptly";
    datasetCacheClear();
}

TEST(ServerCore, StatsReportFaultCounters)
{
    datasetCacheClear();
    Server server(1);
    Capture capture;
    const std::uint64_t conn = server.openConnection(capture.sink());
    // One deadline casualty (already expired at enqueue: the budget
    // counts from acceptance, so deadline_ms of a request that waits
    // behind a long queue can lapse before its first cycle).
    server.handleLine(
        conn, "{\"type\":\"run\",\"id\":\"t1\","
              "\"kernel\":\"pagerank\",\"scale\":8,"
              "\"width\":2,\"height\":2,"
              "\"params\":\"iterations=1000\","
              "\"deadline_ms\":1}");
    server.handleLine(conn, runLine("ok1"));
    server.requestShutdown();
    server.serve();
    server.handleLine(conn, "{\"type\":\"stats\",\"id\":\"st\"}");

    std::string line;
    ASSERT_TRUE(capture.findLine("stats", "st", line));
    EXPECT_NE(line.find("\"fault\":{"), std::string::npos) << line;
    EXPECT_NE(line.find("\"timeouts\":1"), std::string::npos) << line;
    for (const char* key :
         {"\"cancellations\":", "\"retries\":", "\"quarantined\":",
          "\"journal_written\":", "\"journal_replayed\":"})
        EXPECT_NE(line.find(key), std::string::npos) << key;
    datasetCacheClear();
}

TEST(ServerCore, JournalDirReplaysAcrossDaemonRestart)
{
    // Two Server instances sharing a --journal-dir model a daemon
    // restart: the second answers an already-journaled scenario from
    // disk, byte-identically, without re-running it.
    datasetCacheClear();
    const std::string dir =
        ::testing::TempDir() + "serve_journal_dir";
    std::remove((dir + "/_.journal").c_str());

    std::string first_payload;
    {
        Server server(1);
        std::string diag;
        ASSERT_TRUE(server.enableJournal(dir, diag)) << diag;
        Capture capture;
        const std::uint64_t conn =
            server.openConnection(capture.sink());
        server.handleLine(conn, runLine("gen1"));
        server.requestShutdown();
        server.serve();
        std::string line;
        ASSERT_TRUE(capture.findLine("result", "gen1", line));
        ASSERT_TRUE(extractResultPayload(line, first_payload));
    }
    datasetCacheClear(); // the restarted daemon starts cold
    {
        Server server(1);
        std::string diag;
        ASSERT_TRUE(server.enableJournal(dir, diag)) << diag;
        Capture capture;
        const std::uint64_t conn =
            server.openConnection(capture.sink());
        server.handleLine(conn, runLine("gen2"));
        server.requestShutdown();
        server.serve();
        std::string line;
        ASSERT_TRUE(capture.findLine("result", "gen2", line));
        std::string payload;
        ASSERT_TRUE(extractResultPayload(line, payload));
        EXPECT_EQ(payload, first_payload);

        // Replay is visible in the fault counters, and the dataset
        // cache shows the run was not recomputed.
        server.handleLine(conn, "{\"type\":\"stats\",\"id\":\"s\"}");
        ASSERT_TRUE(capture.findLine("stats", "s", line));
        EXPECT_NE(line.find("\"journal_replayed\":1"),
                  std::string::npos)
            << line;
        EXPECT_EQ(datasetCacheStats().builds, 0u)
            << "replayed run must not touch the dataset cache";
    }
    std::remove((dir + "/_.journal").c_str());
    datasetCacheClear();
}

TEST(ServeSocket, SigtermDrainsAcceptedWorkBeforeExit)
{
    // kill -TERM on a busy daemon: every accepted request still gets
    // its response before the process exits (satellite of the crash
    // recovery story — clients never see a half-served socket).
    const std::string path = "serve_test_sigterm.sock";
    std::istringstream in;
    std::ostringstream out;
    std::ostringstream err;
    int rc = -1;
    std::thread daemon([&] {
        const char* argv[] = {"serve", "--socket", path.c_str(),
                              "--workers", "1"};
        rc = serveMain(5, argv, in, out, err);
    });
    int fd = -1;
    std::string diag;
    for (int i = 0; i < 500 && fd < 0; ++i) {
        fd = connectUnix(path, diag);
        if (fd < 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    ASSERT_GE(fd, 0) << diag;

    ASSERT_TRUE(sendAll(fd, runLine("drain-1") + "\n"));
    ASSERT_TRUE(sendAll(fd, runLine("drain-2") + "\n"));
    LineReader reader(fd);
    std::string line;
    // Both accepted before the signal lands (results may already be
    // interleaved — count them too, they mustn't be lost).
    int results = 0;
    for (int accepted = 0; accepted < 2;) {
        ASSERT_EQ(reader.readLine(line), ReadStatus::line);
        if (line.find("\"accepted\"") != std::string::npos)
            ++accepted;
        if (line.find("\"type\":\"result\"") != std::string::npos)
            ++results;
    }
    ::raise(SIGTERM);

    // The daemon drains: both results arrive, then the socket closes.
    while (reader.readLine(line) == ReadStatus::line)
        if (line.find("\"type\":\"result\"") != std::string::npos)
            ++results;
    EXPECT_EQ(results, 2);
    daemon.join();
    EXPECT_EQ(rc, 0);
    EXPECT_NE(err.str().find("drained, exiting"),
              std::string::npos);
    ::close(fd);
}

} // namespace
} // namespace serve
} // namespace dalorex
