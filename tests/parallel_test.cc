/**
 * @file
 * Stress and contract tests for the worker-thread machinery behind
 * the cycle engine: the TreeBarrier / CentralBarrier phase barriers
 * (threads x iterations matrix, serial-section exactly-once and
 * visibility guarantees) and the WorkerCrew SPMD loop they ride in.
 * The whole file runs under the sanitize-tsan preset in CI, so the
 * acquire/release edges documented in parallel.hh are checked by a
 * race detector, not just by assertion.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/parallel.hh"

namespace dalorex
{
namespace
{

/** The two flavors under test, driven through the factory so the
 *  matrix below also covers makePhaseBarrier's dispatch. */
const EngineBarrier kFlavors[] = {EngineBarrier::tree,
                                  EngineBarrier::central};

std::string
flavorName(const ::testing::TestParamInfo<EngineBarrier>& info)
{
    return toString(info.param);
}

class PhaseBarrierTest : public ::testing::TestWithParam<EngineBarrier>
{
};

/**
 * The core rendezvous property, stressed across a threads x
 * iterations matrix: per sync no member may pass the barrier while
 * another has not arrived. Each member increments a shared arrival
 * counter before sync and checks after sync that every member of the
 * round arrived; a barrier that releases early fails the exact-count
 * check, and under tsan any missing ordering edge is a reported race.
 */
TEST_P(PhaseBarrierTest, ThreadsByIterationsStressMatrix)
{
    for (const unsigned members : {1u, 2u, 3u, 4u, 7u, 16u}) {
        const unsigned iterations = members <= 4 ? 2000u : 500u;
        const auto barrier = makePhaseBarrier(GetParam(), members);
        std::atomic<std::uint64_t> arrivals{0};
        std::atomic<bool> failed{false};

        const auto body = [&](unsigned member) {
            for (unsigned i = 0; i < iterations; ++i) {
                arrivals.fetch_add(1, std::memory_order_relaxed);
                barrier->sync(member);
                // Everyone from round i arrived before the sync, and
                // the trailing sync keeps round i+1 increments out,
                // so the count here is exact.
                if (arrivals.load(std::memory_order_relaxed) !=
                    std::uint64_t(members) * (i + 1))
                    failed.store(true);
                barrier->sync(member);
            }
        };

        std::vector<std::thread> threads;
        for (unsigned m = 1; m < members; ++m)
            threads.emplace_back(body, m);
        body(0);
        for (std::thread& t : threads)
            t.join();
        EXPECT_FALSE(failed.load())
            << toString(GetParam()) << " x " << members << " members";
        EXPECT_EQ(arrivals.load(),
                  std::uint64_t(members) * iterations);
    }
}

/**
 * The serial section runs exactly once per sync point, after every
 * member's pre-sync writes and before any member's return. Members
 * write into per-member slots before arriving; the serial section
 * sums them (visibility in), and every member checks the published
 * sum (visibility out).
 */
TEST_P(PhaseBarrierTest, SerialSectionExactlyOnceWithVisibility)
{
    const unsigned members = 8;
    const unsigned iterations = 1000;
    const auto barrier = makePhaseBarrier(GetParam(), members);
    std::vector<std::uint64_t> slots(members, 0);
    std::uint64_t published = 0; // plain: the barrier must order it
    std::atomic<std::uint64_t> serial_runs{0};
    std::atomic<bool> failed{false};

    const PhaseBarrier::SerialFn serial = [&] {
        serial_runs.fetch_add(1, std::memory_order_relaxed);
        published =
            std::accumulate(slots.begin(), slots.end(), 0ull);
    };

    const auto body = [&](unsigned member) {
        for (unsigned i = 1; i <= iterations; ++i) {
            slots[member] = i;
            barrier->sync(member, &serial);
            if (published != std::uint64_t(members) * i)
                failed.store(true);
            barrier->sync(member); // keep rounds from overlapping
        }
    };

    std::vector<std::thread> threads;
    for (unsigned m = 1; m < members; ++m)
        threads.emplace_back(body, m);
    body(0);
    for (std::thread& t : threads)
        t.join();
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(serial_runs.load(), iterations);
}

/** members == 1 degenerates to an inline call: no blocking, serial
 *  runs on the caller. */
TEST_P(PhaseBarrierTest, SingleMemberRunsInline)
{
    const auto barrier = makePhaseBarrier(GetParam(), 1);
    unsigned runs = 0;
    const PhaseBarrier::SerialFn serial = [&] { ++runs; };
    for (int i = 0; i < 100; ++i) {
        barrier->sync(0, &serial);
        barrier->sync(0);
    }
    EXPECT_EQ(runs, 100u);
}

/** A null or empty serial function is a plain rendezvous. */
TEST_P(PhaseBarrierTest, NullAndEmptySerialAreRendezvousOnly)
{
    const auto barrier = makePhaseBarrier(GetParam(), 2);
    const PhaseBarrier::SerialFn empty;
    const auto body = [&](unsigned member) {
        for (int i = 0; i < 500; ++i) {
            barrier->sync(member, nullptr);
            barrier->sync(member, &empty);
        }
    };
    std::thread peer(body, 1);
    body(0);
    peer.join();
}

INSTANTIATE_TEST_SUITE_P(Flavors, PhaseBarrierTest,
                         ::testing::ValuesIn(kFlavors), flavorName);

/**
 * The engine's actual shape: one WorkerCrew phase whose members loop
 * over cycles separated by barrier syncs, with the serial section
 * deciding termination — a miniature Machine::run. Checks that the
 * per-cycle totals a parallel run accumulates match the serial
 * closed form, for both barrier flavors.
 */
TEST(WorkerCrewWithBarrier, SpmdCycleLoopMatchesClosedForm)
{
    for (const EngineBarrier flavor : kFlavors) {
        const unsigned members = 4;
        const unsigned cycles = 300;
        WorkerCrew crew(members);
        const auto barrier = makePhaseBarrier(flavor, members);
        std::vector<std::uint64_t> partial(members, 0);
        std::uint64_t total = 0;
        unsigned cycle = 0;
        bool done = false;

        const PhaseBarrier::SerialFn tail = [&] {
            for (std::uint64_t& p : partial) {
                total += p;
                p = 0;
            }
            done = ++cycle >= cycles;
        };

        crew.runPhase([&](unsigned member) {
            for (;;) {
                partial[member] = member + cycle;
                barrier->sync(member, &tail);
                if (done)
                    break;
            }
        });

        // Sum over cycles c of sum over members m of (m + c).
        const std::uint64_t expected =
            std::uint64_t(cycles) * (members * (members - 1)) / 2 +
            std::uint64_t(members) * (cycles * (cycles - 1ull)) / 2;
        EXPECT_EQ(total, expected) << toString(flavor);
    }
}

/** Back-to-back syncs with no work between them must not alias
 *  epochs (a classic sense-reversal bug class). */
TEST_P(PhaseBarrierTest, BackToBackSyncsDoNotAlias)
{
    const unsigned members = 3;
    const auto barrier = makePhaseBarrier(GetParam(), members);
    std::atomic<std::uint64_t> counter{0};
    const auto body = [&](unsigned member) {
        for (int i = 0; i < 2000; ++i)
            barrier->sync(member);
        counter.fetch_add(1);
    };
    std::vector<std::thread> threads;
    for (unsigned m = 1; m < members; ++m)
        threads.emplace_back(body, m);
    body(0);
    for (std::thread& t : threads)
        t.join();
    EXPECT_EQ(counter.load(), members);
}

// --- DeadlineWatchdog ------------------------------------------------

TEST(DeadlineWatchdog, FiresExpiredDeadlines)
{
    DeadlineWatchdog watchdog;
    std::atomic<bool> flag{false};
    watchdog.arm(std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(20),
                 &flag);
    for (int i = 0; i < 500 && !flag.load(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_TRUE(flag.load());
    EXPECT_EQ(watchdog.armed(), 0u);
}

TEST(DeadlineWatchdog, DisarmedDeadlineNeverFires)
{
    DeadlineWatchdog watchdog;
    std::atomic<bool> flag{false};
    const std::uint64_t token = watchdog.arm(
        std::chrono::steady_clock::now() +
            std::chrono::milliseconds(50),
        &flag);
    watchdog.disarm(token);
    EXPECT_EQ(watchdog.armed(), 0u);
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_FALSE(flag.load());
}

TEST(DeadlineWatchdog, AlreadyPastDeadlineFiresPromptly)
{
    DeadlineWatchdog watchdog;
    std::atomic<bool> flag{false};
    watchdog.arm(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1),
                 &flag);
    for (int i = 0; i < 500 && !flag.load(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_TRUE(flag.load());
}

TEST(DeadlineWatchdog, ManyConcurrentDeadlinesAllFire)
{
    DeadlineWatchdog watchdog;
    constexpr int n = 32;
    std::vector<std::atomic<bool>> flags(n);
    const auto now = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i)
        watchdog.arm(now + std::chrono::milliseconds(1 + i % 7),
                     &flags[i]);
    bool all = false;
    for (int spin = 0; spin < 1000 && !all; ++spin) {
        all = true;
        for (int i = 0; i < n; ++i)
            all = all && flags[i].load();
        if (!all)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
    }
    EXPECT_TRUE(all);
    EXPECT_EQ(watchdog.armed(), 0u);
}

TEST(DeadlineWatchdog, ProcessSingletonIsOneInstance)
{
    EXPECT_EQ(&processDeadlineWatchdog(),
              &processDeadlineWatchdog());
}

} // namespace
} // namespace dalorex
