/**
 * @file
 * Tests for the Tesseract HMC baseline: correctness against the
 * sequential references, the large-cache variant, interrupt/DRAM cost
 * sensitivity, vertex-block load imbalance, and energy behavior.
 */

#include <gtest/gtest.h>

#include "apps/kernels.hh"
#include "baseline/tesseract.hh"
#include "common/stats.hh"
#include "graph/rmat.hh"

namespace dalorex
{
namespace baseline
{
namespace
{

const Csr&
testGraph()
{
    static const Csr graph = [] {
        RmatParams params;
        params.scale = 10;
        params.edgeFactor = 8;
        params.seed = 33;
        return rmatGraph(params);
    }();
    return graph;
}

TEST(Tesseract, BfsMatchesReference)
{
    const KernelSetup setup =
        makeKernelSetup("bfs", testGraph());
    const TesseractResult result = runTesseract(setup);
    EXPECT_EQ(result.values, setup.referenceWords());
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.epochs, 1u);
}

TEST(Tesseract, SsspMatchesReference)
{
    const KernelSetup setup =
        makeKernelSetup("sssp", testGraph());
    const TesseractResult result = runTesseract(setup);
    EXPECT_EQ(result.values, setup.referenceWords());
}

TEST(Tesseract, WccMatchesReference)
{
    const KernelSetup setup =
        makeKernelSetup("wcc", testGraph());
    const TesseractResult result = runTesseract(setup);
    EXPECT_EQ(result.values, setup.referenceWords());
}

TEST(Tesseract, SpmvMatchesReference)
{
    const KernelSetup setup =
        makeKernelSetup("spmv", testGraph());
    const TesseractResult result = runTesseract(setup);
    EXPECT_EQ(result.values, setup.referenceWords());
    EXPECT_EQ(result.epochs, 1u);
}

TEST(Tesseract, PageRankMatchesReference)
{
    KernelSetup setup = makeKernelSetup("pagerank", testGraph());
    setup.iterations = 6;
    const TesseractResult result = runTesseract(setup);
    const std::vector<double> want = setup.referenceFloats();
    ASSERT_EQ(result.floatValues.size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v) {
        EXPECT_NEAR(result.floatValues[v], want[v],
                    std::max(1e-9, 1e-3 * want[v]));
    }
    EXPECT_EQ(result.epochs, 6u);
}

TEST(Tesseract, BfsEpochsMatchLevels)
{
    const KernelSetup setup =
        makeKernelSetup("bfs", testGraph());
    const TesseractResult result = runTesseract(setup);
    Word max_level = 0;
    for (const Word d : setup.referenceWords())
        if (d != infDist)
            max_level = std::max(max_level, d);
    // One epoch per BFS level; label-correcting BSP may take one
    // extra epoch whose re-explorations produce no further updates.
    EXPECT_GE(result.epochs, max_level);
    EXPECT_LE(result.epochs, max_level + 1);
}

TEST(Tesseract, LargeCacheIsFaster)
{
    const KernelSetup setup =
        makeKernelSetup("bfs", testGraph());
    TesseractConfig base;
    TesseractConfig lc;
    lc.largeCache = true;
    const TesseractResult slow = runTesseract(setup, base);
    const TesseractResult fast = runTesseract(setup, lc);
    EXPECT_LT(fast.cycles, slow.cycles);
    EXPECT_EQ(fast.values, slow.values);
    // LC energy is far lower (the paper's 16x SRAM step): DRAM
    // dynamic and background dominate the base configuration.
    EXPECT_LT(fast.energyJ(lc) * 4.0, slow.energyJ(base));
}

TEST(Tesseract, InterruptCostDominates)
{
    const KernelSetup setup =
        makeKernelSetup("bfs", testGraph());
    TesseractConfig cheap;
    cheap.interruptCycles = 0;
    TesseractConfig expensive;
    expensive.interruptCycles = 200;
    const TesseractResult fast = runTesseract(setup, cheap);
    const TesseractResult slow = runTesseract(setup, expensive);
    EXPECT_GT(slow.cycles, fast.cycles);
}

TEST(Tesseract, VertexBlocksAreImbalanced)
{
    // Crawl-ordered graphs concentrate hot vertices in the first
    // blocks: per-core busy cycles must be visibly imbalanced.
    const Csr graph = crawlOrder(testGraph());
    const KernelSetup setup = makeKernelSetup("bfs", graph);
    const TesseractResult result = runTesseract(setup);
    std::vector<double> busy(result.coreBusyCycles.begin(),
                             result.coreBusyCycles.end());
    EXPECT_GT(imbalanceFactor(busy), 2.0);
}

TEST(Tesseract, SerdesTrafficOnlyBetweenCubes)
{
    const KernelSetup setup =
        makeKernelSetup("bfs", testGraph());
    TesseractConfig one_cube;
    one_cube.numCubes = 1;
    one_cube.vaultsPerCube = 256;
    const TesseractResult local = runTesseract(setup, one_cube);
    EXPECT_EQ(local.serdesWords, 0u);
    EXPECT_GT(local.intraCubeWords, 0u);

    const TesseractResult spread = runTesseract(setup);
    EXPECT_GT(spread.serdesWords, 0u);
}

TEST(Tesseract, EdgeAccountingConsistent)
{
    const KernelSetup setup =
        makeKernelSetup("spmv", testGraph());
    const TesseractResult result = runTesseract(setup);
    // SPMV touches each non-zero exactly once.
    EXPECT_EQ(result.edgesProcessed, setup.graph.numEdges);
    EXPECT_EQ(result.remoteCalls, setup.graph.numEdges);
}

TEST(Tesseract, EnergyComponentsRespond)
{
    const KernelSetup setup =
        makeKernelSetup("bfs", testGraph());
    TesseractConfig config;
    const TesseractResult result = runTesseract(setup, config);
    TechParams tech;
    const double base = result.energyJ(config, tech);
    tech.dramAccessPjPerWord *= 2.0;
    EXPECT_GT(result.energyJ(config, tech), base);
}

} // namespace
} // namespace baseline
} // namespace dalorex
