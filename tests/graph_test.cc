/**
 * @file
 * Unit tests for the graph substrate: CSR construction, symmetrize,
 * weights, vertex permutation, RMAT generation and the dataset
 * registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "common/stats.hh"
#include "graph/csr.hh"
#include "graph/datasets.hh"
#include "graph/rmat.hh"

namespace dalorex
{
namespace
{

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setLogQuiet(true); }
};
const auto* const quiet_env =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

TEST(Csr, BuildSortsAndIndexes)
{
    const EdgeList edges = {{2, 0}, {0, 1}, {0, 2}, {1, 2}};
    const Csr g = buildCsr(3, edges);
    EXPECT_EQ(g.numVertices, 3u);
    EXPECT_EQ(g.numEdges, 4u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.degree(2), 1u);
    // Neighbors of 0 are sorted.
    EXPECT_EQ(g.colIdx[g.rowPtr[0]], 1u);
    EXPECT_EQ(g.colIdx[g.rowPtr[0] + 1], 2u);
}

TEST(Csr, RemovesSelfLoopsByDefault)
{
    const EdgeList edges = {{0, 0}, {0, 1}, {1, 1}};
    const Csr g = buildCsr(2, edges);
    EXPECT_EQ(g.numEdges, 1u);
}

TEST(Csr, KeepsSelfLoopsWhenAsked)
{
    CsrBuildOptions opts;
    opts.removeSelfLoops = false;
    const Csr g = buildCsr(2, {{0, 0}, {0, 1}}, opts);
    EXPECT_EQ(g.numEdges, 2u);
}

TEST(Csr, DedupDropsParallelEdges)
{
    const Csr g = buildCsr(2, {{0, 1}, {0, 1}, {1, 0}});
    EXPECT_EQ(g.numEdges, 2u);
}

TEST(Csr, NoDedupKeepsParallelEdges)
{
    CsrBuildOptions opts;
    opts.dedup = false;
    const Csr g = buildCsr(2, {{0, 1}, {0, 1}}, opts);
    EXPECT_EQ(g.numEdges, 2u);
}

TEST(Csr, SymmetrizeAddsReverseEdges)
{
    const Csr g = buildCsr(3, {{0, 1}, {1, 2}});
    const Csr s = symmetrize(g);
    EXPECT_EQ(s.numEdges, 4u);
    EXPECT_EQ(s.degree(1), 2u); // 1 -> 0 and 1 -> 2
}

TEST(Csr, SymmetrizeIsIdempotent)
{
    RmatParams params;
    params.scale = 8;
    params.edgeFactor = 4;
    const Csr g = symmetrize(rmatGraph(params));
    const Csr s = symmetrize(g);
    EXPECT_EQ(g.numEdges, s.numEdges);
    EXPECT_EQ(g.rowPtr, s.rowPtr);
    EXPECT_EQ(g.colIdx, s.colIdx);
}

TEST(Csr, RandomWeightsInRange)
{
    Csr g = buildCsr(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    Rng rng(9);
    addRandomWeights(g, rng, 3, 7);
    ASSERT_TRUE(g.weighted());
    for (const Word w : g.weights) {
        EXPECT_GE(w, 3u);
        EXPECT_LE(w, 7u);
    }
}

TEST(Csr, PermutePreservesStructure)
{
    Csr g = buildCsr(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
    Rng rng(4);
    addRandomWeights(g, rng, 1, 10);
    // Reverse permutation: v -> 3 - v.
    const std::vector<VertexId> perm = {3, 2, 1, 0};
    const Csr p = permuteVertices(g, perm);
    EXPECT_EQ(p.numEdges, g.numEdges);
    // Edge (0,1,w) becomes (3,2,w).
    bool found = false;
    for (EdgeId i = p.rowPtr[3]; i < p.rowPtr[4]; ++i) {
        if (p.colIdx[i] == 2) {
            found = true;
            // Weight carried through.
            EXPECT_EQ(p.weights[i], g.weights[g.rowPtr[0]]);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Csr, InvariantsPanicOnCorruption)
{
    Csr g = buildCsr(3, {{0, 1}, {1, 2}});
    g.rowPtr[1] = 99;
    EXPECT_DEATH(g.checkInvariants(), "monoton|out of range|must");
}

TEST(Rmat, DeterministicBySeed)
{
    RmatParams params;
    params.scale = 10;
    params.edgeFactor = 4;
    const Csr a = rmatGraph(params);
    const Csr b = rmatGraph(params);
    EXPECT_EQ(a.rowPtr, b.rowPtr);
    EXPECT_EQ(a.colIdx, b.colIdx);
}

TEST(Rmat, DifferentSeedsDiffer)
{
    RmatParams params;
    params.scale = 10;
    params.edgeFactor = 4;
    const Csr a = rmatGraph(params);
    params.seed = 2;
    const Csr b = rmatGraph(params);
    EXPECT_NE(a.colIdx, b.colIdx);
}

TEST(Rmat, EdgeCountMatchesFactorBeforeCleanup)
{
    RmatParams params;
    params.scale = 9;
    params.edgeFactor = 7;
    const EdgeList edges = rmatEdges(params);
    EXPECT_EQ(edges.size(), std::size_t(7) << 9);
}

TEST(Rmat, VertexDomainRespected)
{
    RmatParams params;
    params.scale = 8;
    const Csr g = rmatGraph(params);
    EXPECT_EQ(g.numVertices, 256u);
    for (const VertexId v : g.colIdx)
        EXPECT_LT(v, 256u);
}

TEST(Rmat, GraphIsSkewed)
{
    RmatParams params;
    params.scale = 12;
    params.edgeFactor = 10;
    const Csr g = rmatGraph(params);
    std::vector<double> degrees(g.numVertices);
    for (VertexId v = 0; v < g.numVertices; ++v)
        degrees[v] = g.degree(v);
    // RMAT with a=0.57 is strongly skewed; uniform graphs sit ~0.5.
    EXPECT_GT(giniCoefficient(degrees), 0.55);
    EXPECT_GT(imbalanceFactor(degrees), 10.0);
}

TEST(Rmat, MilderParametersLessSkewed)
{
    RmatParams strong;
    strong.scale = 12;
    RmatParams mild = strong;
    mild.a = 0.3;
    mild.b = 0.25;
    mild.c = 0.25;
    auto gini = [](const Csr& g) {
        std::vector<double> d(g.numVertices);
        for (VertexId v = 0; v < g.numVertices; ++v)
            d[v] = g.degree(v);
        return giniCoefficient(d);
    };
    EXPECT_GT(gini(rmatGraph(strong)), gini(rmatGraph(mild)));
}

TEST(Datasets, AliasesResolve)
{
    EXPECT_EQ(makeDatasetAt("AZ", 10).name, "AZ");
    EXPECT_EQ(makeDatasetAt("wiki", 10).name, "WK");
    EXPECT_EQ(makeDatasetAt("LJ", 10).name, "LJ");
    EXPECT_EQ(makeDataset("rmat8").name, "R8");
}

TEST(Datasets, AverageDegreesMatchProvenance)
{
    const Dataset wk = makeDatasetAt("wiki", 12);
    const double wk_deg =
        static_cast<double>(wk.graph.numEdges) / wk.graph.numVertices;
    EXPECT_NEAR(wk_deg, 24.0, 4.0); // Wikipedia ~24 (self loops cut)

    const Dataset lj = makeDatasetAt("livejournal", 12);
    const double lj_deg =
        static_cast<double>(lj.graph.numEdges) / lj.graph.numVertices;
    EXPECT_NEAR(lj_deg, 15.0, 3.0); // LiveJournal ~15
}

TEST(Datasets, DeterministicAndSeedSensitive)
{
    const Dataset a = makeDatasetAt("amazon", 10, 5);
    const Dataset b = makeDatasetAt("amazon", 10, 5);
    const Dataset c = makeDatasetAt("amazon", 10, 6);
    EXPECT_EQ(a.graph.colIdx, b.graph.colIdx);
    EXPECT_NE(a.graph.colIdx, c.graph.colIdx);
}

TEST(Datasets, ProvenanceDocumented)
{
    for (const char* name : {"amazon", "wiki", "livejournal", "rmat8"})
        EXPECT_FALSE(makeDataset(name).provenance.empty()) << name;
}

TEST(Datasets, UnknownNameIsFatal)
{
    EXPECT_DEATH((void)makeDataset("nosuchgraph"), "unknown dataset");
}

} // namespace
} // namespace dalorex
