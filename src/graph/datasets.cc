#include "graph/datasets.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "graph/rmat.hh"

namespace dalorex
{

namespace
{

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    return s;
}

/** Amazon co-purchase stand-in: full paper size at scale 18. */
Dataset
makeAmazon(unsigned scale, std::uint64_t seed)
{
    RmatParams params;
    params.scale = scale;       // 18 = 262,144 vertices: real AZ size
    params.edgeFactor = 5;      // ~1.2M directed edges after cleanup
    params.a = 0.45;            // co-purchase graphs are mildly skewed
    params.b = 0.22;
    params.c = 0.22;
    params.seed = seed;
    Dataset ds;
    ds.name = "AZ";
    ds.provenance = "synthetic stand-in for SNAP amazon0302 "
                    "(paper size V=262K, E~1.2M at scale 18), "
                    "mild degree skew, crawl-ordered ids";
    ds.graph = crawlOrder(rmatGraph(params));
    return ds;
}

/** Wikipedia stand-in: average degree 24 kept. */
Dataset
makeWiki(unsigned scale, std::uint64_t seed)
{
    RmatParams params;
    params.scale = scale;       // paper: 4.2M vertices
    params.edgeFactor = 24;     // paper average degree 101M/4.2M ~ 24
    params.a = 0.57;
    params.b = 0.19;
    params.c = 0.19;
    params.seed = seed + 17;
    Dataset ds;
    ds.name = "WK";
    ds.provenance = "synthetic stand-in for Wikipedia links, scaled "
                    "down, avg degree 24, strong skew, crawl-ordered "
                    "ids";
    ds.graph = crawlOrder(rmatGraph(params));
    return ds;
}

/** LiveJournal stand-in: average degree 15 kept. */
Dataset
makeLiveJournal(unsigned scale, std::uint64_t seed)
{
    RmatParams params;
    params.scale = scale;       // paper: 5.3M vertices
    params.edgeFactor = 15;     // paper average degree 79M/5.3M ~ 15
    params.a = 0.55;
    params.b = 0.19;
    params.c = 0.19;
    params.seed = seed + 41;
    Dataset ds;
    ds.name = "LJ";
    ds.provenance = "synthetic stand-in for soc-LiveJournal1, scaled "
                    "down, avg degree 15, crawl-ordered ids";
    ds.graph = crawlOrder(rmatGraph(params));
    return ds;
}

} // namespace

Dataset
makeDatasetAt(const std::string& name, unsigned scale,
              std::uint64_t seed)
{
    const std::string id = lower(name);
    fatal_if(scale < 4 || scale > 31, "dataset scale out of [4,31]: ",
             scale);
    if (id == "amazon" || id == "az")
        return makeAmazon(scale, seed);
    if (id == "wiki" || id == "wikipedia" || id == "wk")
        return makeWiki(scale, seed);
    if (id == "livejournal" || id == "lj")
        return makeLiveJournal(scale, seed);
    return makeDataset(name, seed);
}

Dataset
makeDataset(const std::string& name, std::uint64_t seed)
{
    const std::string id = lower(name);
    if (id == "amazon" || id == "az")
        return makeAmazon(18, seed);
    if (id == "wiki" || id == "wikipedia" || id == "wk")
        return makeWiki(18, seed);
    if (id == "livejournal" || id == "lj")
        return makeLiveJournal(18, seed);
    if (id.rfind("rmat", 0) == 0) {
        const std::string digits = id.substr(4);
        fatal_if(digits.empty(), "dataset 'rmatN' needs a scale: ", name);
        int scale = 0;
        for (char ch : digits) {
            fatal_if(!std::isdigit(static_cast<unsigned char>(ch)),
                     "bad rmat scale in dataset name: ", name);
            scale = scale * 10 + (ch - '0');
        }
        fatal_if(scale < 4 || scale > 31,
                 "rmat scale out of [4,31]: ", scale);
        RmatParams params;
        params.scale = static_cast<unsigned>(scale);
        params.edgeFactor = 10; // paper: "average ten edges per vertex"
        params.seed = seed;
        Dataset ds;
        ds.name = "R" + digits;
        ds.provenance = "RMAT scale " + digits +
                        " per the paper (Graph500 parameters, "
                        "edge factor 10)";
        ds.graph = rmatGraph(params);
        return ds;
    }
    fatal("unknown dataset: ", name,
          " (expected amazon|wiki|livejournal|rmatN)");
}

} // namespace dalorex
