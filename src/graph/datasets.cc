#include "graph/datasets.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"
#include "common/text.hh"
#include "graph/graphfile.hh"
#include "graph/rmat.hh"

namespace dalorex
{

namespace
{

/** Amazon co-purchase stand-in: full paper size at scale 18. */
Dataset
makeAmazon(unsigned scale, std::uint64_t seed)
{
    RmatParams params;
    params.scale = scale;       // 18 = 262,144 vertices: real AZ size
    params.edgeFactor = 5;      // ~1.2M directed edges after cleanup
    params.a = 0.45;            // co-purchase graphs are mildly skewed
    params.b = 0.22;
    params.c = 0.22;
    params.seed = seed;
    Dataset ds;
    ds.name = "AZ";
    ds.provenance = "synthetic stand-in for SNAP amazon0302 "
                    "(paper size V=262K, E~1.2M at scale 18), "
                    "mild degree skew, crawl-ordered ids";
    ds.graph = crawlOrder(rmatGraph(params));
    return ds;
}

/** Wikipedia stand-in: average degree 24 kept. */
Dataset
makeWiki(unsigned scale, std::uint64_t seed)
{
    RmatParams params;
    params.scale = scale;       // paper: 4.2M vertices
    params.edgeFactor = 24;     // paper average degree 101M/4.2M ~ 24
    params.a = 0.57;
    params.b = 0.19;
    params.c = 0.19;
    params.seed = seed + 17;
    Dataset ds;
    ds.name = "WK";
    ds.provenance = "synthetic stand-in for Wikipedia links, scaled "
                    "down, avg degree 24, strong skew, crawl-ordered "
                    "ids";
    ds.graph = crawlOrder(rmatGraph(params));
    return ds;
}

/** LiveJournal stand-in: average degree 15 kept. */
Dataset
makeLiveJournal(unsigned scale, std::uint64_t seed)
{
    RmatParams params;
    params.scale = scale;       // paper: 5.3M vertices
    params.edgeFactor = 15;     // paper average degree 79M/5.3M ~ 15
    params.a = 0.55;
    params.b = 0.19;
    params.c = 0.19;
    params.seed = seed + 41;
    Dataset ds;
    ds.name = "LJ";
    ds.provenance = "synthetic stand-in for soc-LiveJournal1, scaled "
                    "down, avg degree 15, crawl-ordered ids";
    ds.graph = crawlOrder(rmatGraph(params));
    return ds;
}

/** Alias matching shared by the factories and knownDataset(). */
bool
isAmazon(const std::string& id)
{
    return id == "amazon" || id == "az";
}

bool
isWiki(const std::string& id)
{
    return id == "wiki" || id == "wikipedia" || id == "wk";
}

bool
isLiveJournal(const std::string& id)
{
    return id == "livejournal" || id == "lj";
}

/**
 * Scale encoded in an "rmatN" id; -1 when `id` is not rmat-shaped.
 * Zero-padded ids ("rmat0016") are rejected: they would generate the
 * same graph as "rmat16" under a display name ("R0016") that splits
 * sweep baseline matching from the canonical "R16".
 */
int
rmatScaleOf(const std::string& id)
{
    if (id.rfind("rmat", 0) != 0)
        return -1;
    const std::string digits = id.substr(4);
    if (digits.empty() || digits.size() > 4)
        return -1;
    if (digits.size() > 1 && digits[0] == '0')
        return -1;
    int scale = 0;
    for (char ch : digits) {
        if (!std::isdigit(static_cast<unsigned char>(ch)))
            return -1;
        scale = scale * 10 + (ch - '0');
    }
    return scale;
}

DatasetResult
failBuild(const std::string& message)
{
    DatasetResult result;
    result.ok = false;
    result.error = message;
    return result;
}

} // namespace

bool
isFileDataset(const std::string& name)
{
    return name.rfind("file:", 0) == 0;
}

std::vector<DatasetListing>
datasetCatalog()
{
    return {
        {"amazon", "az",
         "co-purchase stand-in, paper size V=262K E~1.2M, mild skew"},
        {"wiki", "wikipedia, wk",
         "Wikipedia-links stand-in, avg degree 24, strong skew"},
        {"livejournal", "lj",
         "soc-LiveJournal1 stand-in, avg degree 15"},
        {"rmatN", "",
         "RMAT at scale N in [4,31] (Graph500 parameters, edge "
         "factor 10), e.g. rmat16"},
        {"file:PATH", "",
         "on-disk binary CSR written by `dalorex convert` "
         "(mmap-loaded, checksum-validated)"},
    };
}

bool
knownDataset(const std::string& name)
{
    // The path after "file:" is case-sensitive: check it unlowered.
    if (isFileDataset(name))
        return name.size() > 5;
    const std::string id = toLower(name);
    if (isAmazon(id) || isWiki(id) || isLiveJournal(id))
        return true;
    const int scale = rmatScaleOf(id);
    return scale >= 4 && scale <= 31;
}

unsigned
defaultQuickScale(const std::string& name)
{
    if (isFileDataset(name))
        return 0; // files are fixed size
    const std::string id = toLower(name);
    if (isAmazon(id) || isLiveJournal(id))
        return 15;
    if (isWiki(id))
        return 14;
    return 0; // rmatN carries its scale in the name
}

DatasetResult
tryMakeDatasetAt(const std::string& name, unsigned scale,
                 std::uint64_t seed)
{
    // Names whose size is not scalable resolve before the range
    // check, so the 0 defaultQuickScale() returns for them can never
    // read as an out-of-range scale.
    const std::string id = toLower(name);
    if (isFileDataset(name) || id.rfind("rmat", 0) == 0)
        return tryMakeDataset(name, seed);
    if (scale < 4 || scale > 31)
        return failBuild("dataset scale out of [4,31]: " +
                         std::to_string(scale));
    DatasetResult result;
    if (isAmazon(id))
        result.dataset = makeAmazon(scale, seed);
    else if (isWiki(id))
        result.dataset = makeWiki(scale, seed);
    else if (isLiveJournal(id))
        result.dataset = makeLiveJournal(scale, seed);
    else
        return tryMakeDataset(name, seed);
    return result;
}

DatasetResult
tryMakeDataset(const std::string& name, std::uint64_t seed)
{
    if (isFileDataset(name)) {
        const std::string path = name.substr(5);
        if (path.empty())
            return failBuild("file: dataset needs a path");
        GraphFileResult loaded = loadGraphFile(path);
        if (!loaded.ok)
            return failBuild(loaded.error);
        DatasetResult result;
        result.dataset = std::move(loaded.dataset);
        return result;
    }
    const std::string id = toLower(name);
    DatasetResult result;
    if (isAmazon(id)) {
        result.dataset = makeAmazon(18, seed);
        return result;
    }
    if (isWiki(id)) {
        result.dataset = makeWiki(18, seed);
        return result;
    }
    if (isLiveJournal(id)) {
        result.dataset = makeLiveJournal(18, seed);
        return result;
    }
    if (id.rfind("rmat", 0) == 0) {
        const int scale = rmatScaleOf(id);
        if (scale < 0)
            return failBuild(
                "bad rmat scale in dataset name: " + name +
                " (want rmatN, N in [4,31] without leading zeros)");
        if (scale < 4 || scale > 31)
            return failBuild("rmat scale out of [4,31]: " +
                             std::to_string(scale));
        RmatParams params;
        params.scale = static_cast<unsigned>(scale);
        params.edgeFactor = 10; // paper: "average ten edges per vertex"
        params.seed = seed;
        Dataset& ds = result.dataset;
        ds.name = "R" + std::to_string(scale);
        ds.provenance = "RMAT scale " + std::to_string(scale) +
                        " per the paper (Graph500 parameters, "
                        "edge factor 10)";
        ds.graph = rmatGraph(params);
        return result;
    }
    return failBuild(
        "unknown dataset: " + name +
        " (expected amazon|wiki|livejournal|rmatN|file:PATH)");
}

Dataset
makeDataset(const std::string& name, std::uint64_t seed)
{
    DatasetResult result = tryMakeDataset(name, seed);
    fatal_if(!result.ok, result.error);
    return std::move(result.dataset);
}

Dataset
makeDatasetAt(const std::string& name, unsigned scale,
              std::uint64_t seed)
{
    DatasetResult result = tryMakeDatasetAt(name, scale, seed);
    fatal_if(!result.ok, result.error);
    return std::move(result.dataset);
}

} // namespace dalorex
