#include "graph/reference.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/logging.hh"

namespace dalorex
{

std::vector<Word>
referenceBfs(const Csr& graph, VertexId root)
{
    panic_if(root >= graph.numVertices, "BFS root out of range");
    std::vector<Word> dist(graph.numVertices, infDist);
    std::deque<VertexId> frontier;
    dist[root] = 0;
    frontier.push_back(root);
    while (!frontier.empty()) {
        const VertexId u = frontier.front();
        frontier.pop_front();
        const Word next = dist[u] + 1;
        for (EdgeId i = graph.rowPtr[u]; i < graph.rowPtr[u + 1]; ++i) {
            const VertexId v = graph.colIdx[i];
            if (dist[v] == infDist) {
                dist[v] = next;
                frontier.push_back(v);
            }
        }
    }
    return dist;
}

std::vector<Word>
referenceSssp(const Csr& graph, VertexId root)
{
    panic_if(root >= graph.numVertices, "SSSP root out of range");
    panic_if(!graph.weighted(), "SSSP requires edge weights");
    std::vector<Word> dist(graph.numVertices, infDist);
    using Entry = std::pair<std::uint64_t, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    dist[root] = 0;
    pq.push({0, root});
    while (!pq.empty()) {
        const auto [du, u] = pq.top();
        pq.pop();
        if (du > dist[u])
            continue;
        for (EdgeId i = graph.rowPtr[u]; i < graph.rowPtr[u + 1]; ++i) {
            const VertexId v = graph.colIdx[i];
            const std::uint64_t cand = du + graph.weights[i];
            panic_if(cand >= infDist,
                     "SSSP distance overflows the 32-bit machine word");
            if (cand < dist[v]) {
                dist[v] = static_cast<Word>(cand);
                pq.push({cand, v});
            }
        }
    }
    return dist;
}

std::vector<Word>
referenceWcc(const Csr& graph)
{
    // Iterate min-label propagation to a fixed point. On a symmetrized
    // graph this converges to the component-minimum label, matching the
    // coloring-based formulation the paper cites [57].
    std::vector<Word> label(graph.numVertices);
    for (VertexId v = 0; v < graph.numVertices; ++v)
        label[v] = v;
    bool changed = true;
    while (changed) {
        changed = false;
        for (VertexId u = 0; u < graph.numVertices; ++u) {
            for (EdgeId i = graph.rowPtr[u]; i < graph.rowPtr[u + 1];
                 ++i) {
                const VertexId v = graph.colIdx[i];
                if (label[u] < label[v]) {
                    label[v] = label[u];
                    changed = true;
                } else if (label[v] < label[u]) {
                    label[u] = label[v];
                    changed = true;
                }
            }
        }
    }
    return label;
}

std::vector<double>
referencePageRank(const Csr& graph, double damping, unsigned iterations)
{
    return referencePageRankConverged(graph, damping, iterations, 0.0);
}

std::vector<double>
referencePageRankConverged(const Csr& graph, double damping,
                           unsigned iterations, double epsilon)
{
    const auto n = static_cast<double>(graph.numVertices);
    std::vector<double> rank(graph.numVertices, 1.0 / n);
    std::vector<double> acc(graph.numVertices, 0.0);
    for (unsigned iter = 0; iter < iterations; ++iter) {
        std::fill(acc.begin(), acc.end(), 0.0);
        for (VertexId u = 0; u < graph.numVertices; ++u) {
            const EdgeId deg = graph.degree(u);
            if (deg == 0)
                continue;
            const double contrib = rank[u] / static_cast<double>(deg);
            for (EdgeId i = graph.rowPtr[u]; i < graph.rowPtr[u + 1];
                 ++i) {
                acc[graph.colIdx[i]] += contrib;
            }
        }
        double max_delta = 0.0;
        for (VertexId v = 0; v < graph.numVertices; ++v) {
            const double next = (1.0 - damping) / n + damping * acc[v];
            max_delta = std::max(max_delta,
                                 std::abs(next - rank[v]));
            rank[v] = next;
        }
        if (epsilon > 0.0 && max_delta < epsilon)
            break; // converged: same rule the host applies on-chip
    }
    return rank;
}

std::vector<Word>
referenceSpmv(const Csr& matrix, const std::vector<Word>& x)
{
    panic_if(!matrix.weighted(), "SPMV requires matrix values");
    panic_if(x.size() != matrix.numVertices, "x dimension mismatch");
    std::vector<Word> y(matrix.numVertices, 0);
    for (VertexId col = 0; col < matrix.numVertices; ++col) {
        const Word xc = x[col];
        for (EdgeId i = matrix.rowPtr[col]; i < matrix.rowPtr[col + 1];
             ++i) {
            y[matrix.colIdx[i]] += matrix.weights[i] * xc;
        }
    }
    return y;
}

} // namespace dalorex
