#include "graph/partition.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace dalorex
{

const char*
toString(Distribution dist)
{
    switch (dist) {
      case Distribution::lowOrder:
        return "low-order";
      case Distribution::highOrder:
        return "high-order";
    }
    return "?";
}

Partition::Partition(VertexId num_vertices, EdgeId num_edges,
                     std::uint32_t num_tiles, Distribution dist)
    : numVertices_(num_vertices), numEdges_(num_edges),
      numTiles_(num_tiles), dist_(dist)
{
    fatal_if(num_tiles == 0, "partition needs at least one tile");
    fatal_if(num_vertices == 0, "partition needs at least one vertex");
    fatal_if(num_edges == 0, "partition needs at least one edge");
    nodesPerChunk_ =
        static_cast<std::uint32_t>(divCeil(num_vertices, num_tiles));
    edgesPerChunk_ =
        static_cast<std::uint32_t>(divCeil(num_edges, num_tiles));
}

std::uint32_t
Partition::ownedVertices(TileId tile) const
{
    panic_if(tile >= numTiles_, "tile out of range");
    if (dist_ == Distribution::lowOrder) {
        // Elements tile, tile+T, tile+2T, ... below numVertices_.
        if (tile >= numVertices_)
            return 0;
        return (numVertices_ - tile - 1) / numTiles_ + 1;
    }
    const std::uint64_t begin =
        std::uint64_t(tile) * nodesPerChunk_;
    if (begin >= numVertices_)
        return 0;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + nodesPerChunk_, numVertices_);
    return static_cast<std::uint32_t>(end - begin);
}

std::uint32_t
Partition::ownedEdges(TileId tile) const
{
    panic_if(tile >= numTiles_, "tile out of range");
    const std::uint64_t begin = std::uint64_t(tile) * edgesPerChunk_;
    if (begin >= numEdges_)
        return 0;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + edgesPerChunk_, numEdges_);
    return static_cast<std::uint32_t>(end - begin);
}

} // namespace dalorex
