#include "graph/csr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dalorex
{

void
Csr::checkInvariants() const
{
    panic_if(rowPtr.size() != static_cast<std::size_t>(numVertices) + 1,
             "rowPtr size ", rowPtr.size(), " != V+1 = ",
             numVertices + 1);
    panic_if(colIdx.size() != numEdges, "colIdx size mismatch");
    panic_if(!weights.empty() && weights.size() != numEdges,
             "weights size mismatch");
    panic_if(rowPtr.front() != 0, "rowPtr[0] must be 0");
    panic_if(rowPtr.back() != numEdges, "rowPtr[V] must equal E");
    for (VertexId v = 0; v < numVertices; ++v)
        panic_if(rowPtr[v] > rowPtr[v + 1], "rowPtr not monotone at ", v);
    for (VertexId dst : colIdx)
        panic_if(dst >= numVertices, "colIdx out of range: ", dst);
}

Csr
buildCsr(VertexId num_vertices, const EdgeList& edges,
         const CsrBuildOptions& opts)
{
    EdgeList cleaned;
    cleaned.reserve(edges.size());
    for (const auto& [u, v] : edges) {
        panic_if(u >= num_vertices || v >= num_vertices,
                 "edge (", u, ",", v, ") outside vertex domain ",
                 num_vertices);
        if (opts.removeSelfLoops && u == v)
            continue;
        cleaned.emplace_back(u, v);
        if (opts.symmetrize && u != v)
            cleaned.emplace_back(v, u);
    }

    std::sort(cleaned.begin(), cleaned.end());
    if (opts.dedup || opts.symmetrize) {
        cleaned.erase(std::unique(cleaned.begin(), cleaned.end()),
                      cleaned.end());
    }

    Csr graph;
    graph.numVertices = num_vertices;
    graph.numEdges = static_cast<EdgeId>(cleaned.size());
    graph.rowPtr.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
    graph.colIdx.resize(cleaned.size());

    for (const auto& [u, v] : cleaned)
        ++graph.rowPtr[u + 1];
    for (VertexId v = 0; v < num_vertices; ++v)
        graph.rowPtr[v + 1] += graph.rowPtr[v];
    for (std::size_t i = 0; i < cleaned.size(); ++i)
        graph.colIdx[i] = cleaned[i].second;

    graph.checkInvariants();
    return graph;
}

Csr
symmetrize(const Csr& graph)
{
    EdgeList edges;
    edges.reserve(static_cast<std::size_t>(graph.numEdges) * 2);
    for (VertexId u = 0; u < graph.numVertices; ++u) {
        for (EdgeId i = graph.rowPtr[u]; i < graph.rowPtr[u + 1]; ++i)
            edges.emplace_back(u, graph.colIdx[i]);
    }
    CsrBuildOptions opts;
    opts.symmetrize = true;
    return buildCsr(graph.numVertices, edges, opts);
}

void
addRandomWeights(Csr& graph, Rng& rng, Word min_w, Word max_w)
{
    panic_if(min_w == 0, "zero edge weights break SSSP termination");
    panic_if(min_w > max_w, "empty weight range");
    graph.weights.resize(graph.numEdges);
    for (auto& w : graph.weights)
        w = static_cast<Word>(rng.range(min_w, max_w));
}

Csr
crawlOrder(const Csr& graph)
{
    const Csr undirected = symmetrize(graph);
    VertexId start = 0;
    for (VertexId v = 1; v < undirected.numVertices; ++v) {
        if (undirected.degree(v) > undirected.degree(start))
            start = v;
    }

    std::vector<VertexId> perm(graph.numVertices, invalidTile);
    std::vector<VertexId> queue;
    queue.reserve(graph.numVertices);
    VertexId next_id = 0;
    queue.push_back(start);
    perm[start] = next_id++;
    for (std::size_t head = 0; head < queue.size(); ++head) {
        const VertexId u = queue[head];
        for (EdgeId i = undirected.rowPtr[u];
             i < undirected.rowPtr[u + 1]; ++i) {
            const VertexId v = undirected.colIdx[i];
            if (perm[v] == invalidTile) {
                perm[v] = next_id++;
                queue.push_back(v);
            }
        }
    }
    // Unreached vertices keep their relative order at the tail.
    for (VertexId v = 0; v < graph.numVertices; ++v) {
        if (perm[v] == invalidTile)
            perm[v] = next_id++;
    }
    return permuteVertices(graph, perm);
}

Csr
permuteVertices(const Csr& graph, const std::vector<VertexId>& perm)
{
    panic_if(perm.size() != graph.numVertices,
             "permutation size mismatch");
    EdgeList edges;
    edges.reserve(graph.numEdges);
    // Carry weights through the rebuild by pairing them with edges.
    std::vector<std::pair<std::pair<VertexId, VertexId>, Word>> weighted;
    const bool has_w = graph.weighted();
    if (has_w)
        weighted.reserve(graph.numEdges);
    for (VertexId u = 0; u < graph.numVertices; ++u) {
        for (EdgeId i = graph.rowPtr[u]; i < graph.rowPtr[u + 1]; ++i) {
            const VertexId nu = perm[u];
            const VertexId nv = perm[graph.colIdx[i]];
            if (has_w)
                weighted.push_back({{nu, nv}, graph.weights[i]});
            else
                edges.emplace_back(nu, nv);
        }
    }

    CsrBuildOptions opts;
    opts.removeSelfLoops = false; // preserve the input edge set exactly
    opts.dedup = false;

    if (!has_w)
        return buildCsr(graph.numVertices, edges, opts);

    std::sort(weighted.begin(), weighted.end());
    EdgeList sorted_edges;
    sorted_edges.reserve(weighted.size());
    for (const auto& [e, w] : weighted)
        sorted_edges.push_back(e);
    Csr out = buildCsr(graph.numVertices, sorted_edges, opts);
    out.weights.resize(out.numEdges);
    for (std::size_t i = 0; i < weighted.size(); ++i)
        out.weights[i] = weighted[i].second;
    return out;
}

} // namespace dalorex
