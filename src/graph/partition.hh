/**
 * @file
 * Data distribution of dataset arrays across tiles.
 *
 * Per Sec. III-A, every dataset array is divided into equal chunks
 * across the T tiles. Two placements are modeled for vertex-indexed
 * arrays (dist, ptr, rank, ...):
 *
 *  - highOrder: contiguous blocks — tile = v / nodesPerChunk. This is
 *    the "high-order bits" placement of the Fig. 5 ablation, which
 *    concentrates hot vertices.
 *  - lowOrder: element interleaving — tile = v % T. This is full
 *    Dalorex's "low-order index bits" placement that spreads hot
 *    vertices uniformly (Sec. III-F).
 *
 * Edge-indexed arrays (edge_idx, edge_values) are always contiguous
 * equal chunks (tile = e / edgesPerChunk): Listing 1's T1 splits a
 * CSR neighbor range at chunk borders with a single division, which
 * requires contiguity. This decoupling of vertex and edge placement is
 * the paper's "equal number of edges to each tile" work-balance device
 * (Sec. V-A point 5).
 */

#ifndef DALOREX_GRAPH_PARTITION_HH
#define DALOREX_GRAPH_PARTITION_HH

#include <cstdint>

#include "common/types.hh"

namespace dalorex
{

/** Placement policy for vertex-indexed arrays. */
enum class Distribution
{
    lowOrder,  //!< interleaved: tile = v % T (full Dalorex)
    highOrder, //!< blocked: tile = v / chunk (ablation baseline)
};

const char* toString(Distribution dist);

/**
 * Maps global vertex/edge indices to (tile, local index) and back.
 * All tiles receive divCeil-sized chunks; the last chunk may be
 * partially filled (callers size local arrays by nodes/edgesPerChunk).
 */
class Partition
{
  public:
    /**
     * @param num_vertices Global vertex count (> 0).
     * @param num_edges    Global edge count (> 0).
     * @param num_tiles    Tile count T (> 0).
     * @param dist         Placement for vertex-indexed arrays.
     */
    Partition(VertexId num_vertices, EdgeId num_edges,
              std::uint32_t num_tiles, Distribution dist);

    std::uint32_t numTiles() const { return numTiles_; }
    VertexId numVertices() const { return numVertices_; }
    EdgeId numEdges() const { return numEdges_; }
    Distribution distribution() const { return dist_; }

    /** Vertex-array chunk length per tile (Listing 1 NODES_PER_CHUNK). */
    std::uint32_t nodesPerChunk() const { return nodesPerChunk_; }
    /** Edge-array chunk length per tile (Listing 1 EDGES_PER_CHUNK). */
    std::uint32_t edgesPerChunk() const { return edgesPerChunk_; }

    /** Tile owning vertex-indexed element v. */
    TileId
    vertexOwner(VertexId v) const
    {
        return dist_ == Distribution::lowOrder ? v % numTiles_
                                               : v / nodesPerChunk_;
    }

    /** Local index of vertex v inside its owner's chunk. */
    std::uint32_t
    vertexLocal(VertexId v) const
    {
        return dist_ == Distribution::lowOrder ? v / numTiles_
                                               : v % nodesPerChunk_;
    }

    /** Inverse of (vertexOwner, vertexLocal). */
    VertexId
    vertexGlobal(TileId tile, std::uint32_t local) const
    {
        return dist_ == Distribution::lowOrder
                   ? local * numTiles_ + tile
                   : tile * nodesPerChunk_ + local;
    }

    /** Number of vertices a tile actually owns (last chunks short). */
    std::uint32_t ownedVertices(TileId tile) const;

    /** Tile owning edge-indexed element e (always contiguous chunks). */
    TileId
    edgeOwner(EdgeId e) const
    {
        return e / edgesPerChunk_;
    }

    /** Local index of edge e inside its owner's chunk. */
    std::uint32_t
    edgeLocal(EdgeId e) const
    {
        return e % edgesPerChunk_;
    }

    /** Inverse of (edgeOwner, edgeLocal). */
    EdgeId
    edgeGlobal(TileId tile, std::uint32_t local) const
    {
        return tile * edgesPerChunk_ + local;
    }

    /** Number of edges a tile actually owns. */
    std::uint32_t ownedEdges(TileId tile) const;

    /**
     * First global edge index after `begin` at which the owning tile
     * changes, clamped to `end`: T1's chunk-border split point
     * (Listing 1: tile*EDGES_PER_CHUNK).
     */
    EdgeId
    edgeRangeSplit(EdgeId begin, EdgeId end) const
    {
        const EdgeId border =
            (begin / edgesPerChunk_ + 1) * edgesPerChunk_;
        return border < end ? border : end;
    }

  private:
    VertexId numVertices_;
    EdgeId numEdges_;
    std::uint32_t numTiles_;
    Distribution dist_;
    std::uint32_t nodesPerChunk_;
    std::uint32_t edgesPerChunk_;
};

} // namespace dalorex

#endif // DALOREX_GRAPH_PARTITION_HH
