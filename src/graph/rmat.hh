/**
 * @file
 * RMAT (Kronecker) synthetic graph generation.
 *
 * The paper evaluates "several different sizes of synthetic RMAT graphs
 * [35] of up to 67M vertices and 1.3B edges" with an average of ten
 * edges per vertex (Sec. IV / V-B). This generator follows the standard
 * recursive-quadrant construction of Chakrabarti et al. with the
 * Graph500 parameterization by default.
 */

#ifndef DALOREX_GRAPH_RMAT_HH
#define DALOREX_GRAPH_RMAT_HH

#include <cstdint>

#include "common/rng.hh"
#include "graph/csr.hh"

namespace dalorex
{

/** Parameters of the RMAT recursive edge placement. */
struct RmatParams
{
    /** log2 of the vertex count. */
    unsigned scale = 16;
    /** Directed edges generated = edgeFactor * 2^scale. */
    unsigned edgeFactor = 10;
    /** Quadrant probabilities (must sum to ~1). */
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;
    /** d is implied: 1 - a - b - c. */

    /** RNG seed; equal seeds give identical graphs. */
    std::uint64_t seed = 1;

    /** Drop self loops / duplicate edges during CSR build. */
    bool removeSelfLoops = true;
    bool dedup = false;

    /**
     * Apply the Graph500-standard random vertex-id permutation. Raw
     * Kronecker construction parks every hub at a power-of-two index
     * — ids whose low-order bits are all zero — which would alias
     * every hub onto tile 0 under any power-of-two low-order-bit
     * placement. Real RMAT pipelines always shuffle; keep this on.
     */
    bool shuffleIds = true;
};

/** Generate the raw directed edge list (before CSR cleanup). */
EdgeList rmatEdges(const RmatParams& params);

/** Generate an RMAT graph as CSR. */
Csr rmatGraph(const RmatParams& params);

} // namespace dalorex

#endif // DALOREX_GRAPH_RMAT_HH
