/**
 * @file
 * Compressed-Sparse-Row graph storage and construction.
 *
 * The paper stores graphs/sparse matrices "in formats like
 * Compressed-Sparse-Row (CSR) using four arrays" (Sec. II-A): the vertex
 * tuple (dist, ptr) and the edge tuple (edge_idx, edge_values). This
 * module provides the two static arrays (ptr == rowPtr, edge_idx ==
 * colIdx) plus optional per-edge weights; per-algorithm state arrays
 * (dist, rank, ...) belong to the apps.
 *
 * For SPMV the same structure is interpreted column-major: rowPtr indexes
 * matrix columns and colIdx holds row indices, so the push-style task
 * program and the reference implementation agree on y = A*x.
 */

#ifndef DALOREX_GRAPH_CSR_HH
#define DALOREX_GRAPH_CSR_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace dalorex
{

/** An immutable CSR graph (optionally weighted). */
struct Csr
{
    VertexId numVertices = 0;
    EdgeId numEdges = 0;

    /** rowPtr[v]..rowPtr[v+1] bound v's slice of colIdx (size V+1). */
    std::vector<EdgeId> rowPtr;
    /** Neighbor ids, grouped by source vertex (size E). */
    std::vector<VertexId> colIdx;
    /** Optional per-edge weights, parallel to colIdx (size E or 0). */
    std::vector<Word> weights;

    bool weighted() const { return !weights.empty(); }

    /** Out-degree of vertex v. */
    EdgeId
    degree(VertexId v) const
    {
        return rowPtr[v + 1] - rowPtr[v];
    }

    /** Verify structural invariants; panic() on violation. */
    void checkInvariants() const;
};

/** One directed edge (source, destination). */
using EdgeList = std::vector<std::pair<VertexId, VertexId>>;

/** Options controlling CSR construction from an edge list. */
struct CsrBuildOptions
{
    /** Drop (u, u) self loops. */
    bool removeSelfLoops = true;
    /** Drop duplicate (u, v) pairs. */
    bool dedup = true;
    /** Add the reverse of every edge (undirected view, e.g., for WCC). */
    bool symmetrize = false;
};

/**
 * Build a CSR from an unordered edge list.
 *
 * @param num_vertices Vertex-id domain [0, num_vertices).
 * @param edges        Directed edge list; ids must be < num_vertices.
 * @param opts         Cleanup/symmetrization options.
 */
Csr buildCsr(VertexId num_vertices, const EdgeList& edges,
             const CsrBuildOptions& opts = {});

/** Return a symmetrized (undirected-view, deduped) copy of a graph. */
Csr symmetrize(const Csr& graph);

/**
 * Attach uniform random integer weights in [min_w, max_w] to each edge
 * (SSSP inputs; Listing 1's edge_values).
 */
void addRandomWeights(Csr& graph, Rng& rng, Word min_w = 1,
                      Word max_w = 64);

/**
 * Relabel vertices so that consecutive original ids land on different
 * tiles under a block distribution — the paper's countermeasure for
 * degree-sorted inputs ("Should the graph be sorted by vertex degree, we
 * build the global CSR so that consecutive vertices fall into different
 * tiles", Sec. III-F). new_id = perm[old_id].
 */
Csr permuteVertices(const Csr& graph, const std::vector<VertexId>& perm);

/**
 * Relabel a graph into crawl order: ids follow a BFS over the
 * undirected view starting from the highest-degree vertex. This is the
 * id structure of real SNAP crawls — hubs early, neighbors at nearby
 * ids — which is exactly what makes blocked (high-order) placement
 * load-imbalanced and the low-order placement effective.
 */
Csr crawlOrder(const Csr& graph);

} // namespace dalorex

#endif // DALOREX_GRAPH_CSR_HH
