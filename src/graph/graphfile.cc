#include "graph/graphfile.hh"

#include <bit>
#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define DALOREX_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define DALOREX_HAVE_MMAP 0
#endif

// Section arrays are dumped/mapped as raw u32s; the checksums make a
// byte-swapped file fail loudly rather than load garbage.
static_assert(std::endian::native == std::endian::little,
              "dalorex graph files are little-endian");

namespace dalorex
{
namespace
{

constexpr char kMagic[8] = {'D', 'L', 'R', 'X', 'C', 'S', 'R', '\0'};
constexpr std::size_t kHeaderBytes = 88;
constexpr std::uint32_t kFlagWeighted = 1u << 0;

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ull;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

/** Pad section offsets so u32 array views are always aligned. */
std::size_t
align8(std::size_t offset)
{
    return (offset + 7) & ~std::size_t(7);
}

void
put32(std::uint8_t* base, std::size_t offset, std::uint32_t v)
{
    std::memcpy(base + offset, &v, sizeof v);
}

void
put64(std::uint8_t* base, std::size_t offset, std::uint64_t v)
{
    std::memcpy(base + offset, &v, sizeof v);
}

std::uint32_t
get32(const std::uint8_t* base, std::size_t offset)
{
    std::uint32_t v = 0;
    std::memcpy(&v, base + offset, sizeof v);
    return v;
}

std::uint64_t
get64(const std::uint8_t* base, std::size_t offset)
{
    std::uint64_t v = 0;
    std::memcpy(&v, base + offset, sizeof v);
    return v;
}

GraphFileResult
failLoad(const std::string& message)
{
    GraphFileResult result;
    result.ok = false;
    result.error = message;
    return result;
}

GraphFileInfoResult
failInspect(const std::string& message)
{
    GraphFileInfoResult result;
    result.ok = false;
    result.error = message;
    return result;
}

/**
 * A read-only view of the whole file: mmap'd where the platform has
 * it (the page cache then backs repeated loads of a hot graph), read
 * into an owned buffer elsewhere.
 */
class FileView
{
  public:
    ~FileView()
    {
#if DALOREX_HAVE_MMAP
        if (mapped_ != nullptr)
            ::munmap(mapped_, size_);
#endif
    }

    FileView(const FileView&) = delete;
    FileView& operator=(const FileView&) = delete;
    FileView() = default;

    /** Open and map/read `path`; false with `error` on failure. */
    bool
    open(const std::string& path, std::string& error)
    {
#if DALOREX_HAVE_MMAP
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) {
            error = "cannot open graph file: " + path;
            return false;
        }
        struct stat st;
        if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
            ::close(fd);
            error = "not a regular file: " + path;
            return false;
        }
        size_ = static_cast<std::size_t>(st.st_size);
        if (size_ > 0) {
            void* map =
                ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
            if (map == MAP_FAILED) {
                ::close(fd);
                error = "cannot mmap graph file: " + path;
                return false;
            }
            mapped_ = map;
        }
        ::close(fd);
        return true;
#else
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (!in) {
            error = "cannot open graph file: " + path;
            return false;
        }
        const std::streamoff end = in.tellg();
        size_ = static_cast<std::size_t>(end < 0 ? 0 : end);
        buffer_.resize(size_);
        in.seekg(0);
        if (size_ > 0 &&
            !in.read(reinterpret_cast<char*>(buffer_.data()),
                     static_cast<std::streamsize>(size_))) {
            error = "cannot read graph file: " + path;
            return false;
        }
        return true;
#endif
    }

    const std::uint8_t*
    data() const
    {
#if DALOREX_HAVE_MMAP
        return static_cast<const std::uint8_t*>(mapped_);
#else
        return buffer_.data();
#endif
    }

    std::size_t size() const { return size_; }

  private:
    std::size_t size_ = 0;
#if DALOREX_HAVE_MMAP
    void* mapped_ = nullptr;
#else
    std::vector<std::uint8_t> buffer_;
#endif
};

/**
 * Parse and fully validate a file view. On success fills `header`
 * and the section pointers (null weights when unweighted).
 */
bool
parseAndValidate(const std::uint8_t* data, std::size_t size,
                 const std::string& path, GraphFileHeader& header,
                 const std::uint8_t*& row_ptr_bytes,
                 const std::uint8_t*& col_idx_bytes,
                 const std::uint8_t*& weight_bytes, std::string& error)
{
    if (size < kHeaderBytes) {
        error = "truncated graph file (" + std::to_string(size) +
                " bytes, header needs " +
                std::to_string(kHeaderBytes) + "): " + path;
        return false;
    }
    if (std::memcmp(data, kMagic, sizeof kMagic) != 0) {
        error = "not a dalorex graph file (bad magic): " + path;
        return false;
    }
    header.version = get32(data, 8);
    if (header.version != graphFileVersion) {
        error = "unsupported graph file version " +
                std::to_string(header.version) + " (this build reads " +
                std::to_string(graphFileVersion) + "): " + path;
        return false;
    }
    if (get64(data, 80) != hashBytes(data, 80)) {
        error = "header checksum mismatch (corrupt file): " + path;
        return false;
    }

    const std::uint32_t flags = get32(data, 12);
    header.weighted = (flags & kFlagWeighted) != 0;
    header.numVertices = get64(data, 16);
    header.numEdges = get64(data, 24);
    const std::uint64_t name_bytes = get64(data, 32);
    const std::uint64_t prov_bytes = get64(data, 40);
    header.metaHash = get64(data, 48);
    header.rowPtrHash = get64(data, 56);
    header.colIdxHash = get64(data, 64);
    header.weightsHash = get64(data, 72);
    header.fileBytes = size;

    // VertexId/EdgeId are 32-bit (the paper's 32-bit machine): refuse
    // counts the in-memory representation cannot index.
    if (header.numVertices >=
            std::numeric_limits<VertexId>::max() ||
        header.numEdges > std::numeric_limits<EdgeId>::max()) {
        error = "graph exceeds the 32-bit vertex/edge id domain: " +
                path;
        return false;
    }
    if (name_bytes > size || prov_bytes > size) {
        error = "corrupt section lengths in header: " + path;
        return false;
    }

    const std::size_t meta_off = kHeaderBytes;
    const std::size_t row_off = align8(
        meta_off + static_cast<std::size_t>(name_bytes + prov_bytes));
    const std::size_t row_bytes =
        (static_cast<std::size_t>(header.numVertices) + 1) *
        sizeof(EdgeId);
    const std::size_t col_bytes =
        static_cast<std::size_t>(header.numEdges) * sizeof(VertexId);
    const std::size_t weight_sec_bytes =
        header.weighted
            ? static_cast<std::size_t>(header.numEdges) * sizeof(Word)
            : 0;
    const std::size_t expected =
        row_off + row_bytes + col_bytes + weight_sec_bytes;
    if (size != expected) {
        error = "truncated graph file (" + std::to_string(size) +
                " bytes, sections need " + std::to_string(expected) +
                "): " + path;
        return false;
    }

    if (hashBytes(data + meta_off,
                  static_cast<std::size_t>(name_bytes + prov_bytes)) !=
        header.metaHash) {
        error = "checksum mismatch in name/provenance section: " +
                path;
        return false;
    }
    row_ptr_bytes = data + row_off;
    if (hashBytes(row_ptr_bytes, row_bytes) != header.rowPtrHash) {
        error = "checksum mismatch in rowPtr section: " + path;
        return false;
    }
    col_idx_bytes = row_ptr_bytes + row_bytes;
    if (hashBytes(col_idx_bytes, col_bytes) != header.colIdxHash) {
        error = "checksum mismatch in colIdx section: " + path;
        return false;
    }
    weight_bytes = nullptr;
    if (header.weighted) {
        weight_bytes = col_idx_bytes + col_bytes;
        if (hashBytes(weight_bytes, weight_sec_bytes) !=
            header.weightsHash) {
            error = "checksum mismatch in weights section: " + path;
            return false;
        }
    }

    header.name.assign(
        reinterpret_cast<const char*>(data + meta_off),
        static_cast<std::size_t>(name_bytes));
    header.provenance.assign(
        reinterpret_cast<const char*>(data + meta_off + name_bytes),
        static_cast<std::size_t>(prov_bytes));

    // Structural invariants: checksums prove the bytes match what the
    // converter wrote; this proves what it wrote is a CSR. Elements
    // are read with get32 (memcpy), not an array view: the image may
    // sit at any alignment (see loadGraphFileBytes) and a misaligned
    // u32 load would be UB even where the hardware tolerates it.
    const auto num_vertices =
        static_cast<VertexId>(header.numVertices);
    const auto num_edges = static_cast<EdgeId>(header.numEdges);
    const auto row_at = [row_ptr_bytes](VertexId v) {
        return get32(row_ptr_bytes,
                     static_cast<std::size_t>(v) * sizeof(EdgeId));
    };
    if (row_at(0) != 0 || row_at(num_vertices) != num_edges) {
        error = "corrupt CSR structure (rowPtr bounds): " + path;
        return false;
    }
    for (VertexId v = 0; v < num_vertices; ++v) {
        if (row_at(v) > row_at(v + 1)) {
            error = "corrupt CSR structure (rowPtr not monotone at "
                    "vertex " + std::to_string(v) + "): " + path;
            return false;
        }
    }
    for (EdgeId e = 0; e < num_edges; ++e) {
        const VertexId dest = get32(
            col_idx_bytes,
            static_cast<std::size_t>(e) * sizeof(VertexId));
        if (dest >= num_vertices) {
            error = "corrupt CSR structure (colIdx out of range at "
                    "edge " + std::to_string(e) + "): " + path;
            return false;
        }
    }
    return true;
}

/** Validate `data` and build the result (alignment-agnostic). */
GraphFileResult
loadFromImage(const std::uint8_t* data, std::size_t size,
              const std::string& label)
{
    GraphFileHeader header;
    const std::uint8_t* row_ptr_bytes = nullptr;
    const std::uint8_t* col_idx_bytes = nullptr;
    const std::uint8_t* weight_bytes = nullptr;
    std::string error;
    if (!parseAndValidate(data, size, label, header, row_ptr_bytes,
                          col_idx_bytes, weight_bytes, error))
        return failLoad(error);

    GraphFileResult result;
    Dataset& ds = result.dataset;
    ds.name = header.name;
    ds.provenance = header.provenance;
    Csr& g = ds.graph;
    g.numVertices = static_cast<VertexId>(header.numVertices);
    g.numEdges = static_cast<EdgeId>(header.numEdges);
    // memcpy into sized vectors instead of assign() from typed
    // pointers: the sections may be misaligned within `data`.
    g.rowPtr.resize(static_cast<std::size_t>(g.numVertices) + 1);
    std::memcpy(g.rowPtr.data(), row_ptr_bytes,
                g.rowPtr.size() * sizeof(EdgeId));
    g.colIdx.resize(g.numEdges);
    std::memcpy(g.colIdx.data(), col_idx_bytes,
                static_cast<std::size_t>(g.numEdges) *
                    sizeof(VertexId));
    if (header.weighted) {
        g.weights.resize(g.numEdges);
        std::memcpy(g.weights.data(), weight_bytes,
                    static_cast<std::size_t>(g.numEdges) *
                        sizeof(Word));
    }
    return result;
}

} // namespace

std::uint64_t
hashBytes(const void* data, std::size_t size)
{
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    std::uint64_t h = kPrime5 ^ (size * kPrime1);
    std::size_t i = 0;
    for (; i + 8 <= size; i += 8) {
        std::uint64_t lane = 0;
        std::memcpy(&lane, bytes + i, 8);
        lane *= kPrime2;
        lane = std::rotl(lane, 31);
        lane *= kPrime3;
        h ^= lane;
        h = std::rotl(h, 27) * kPrime1 + kPrime4;
    }
    for (; i < size; ++i) {
        h ^= bytes[i] * kPrime5;
        h = std::rotl(h, 11) * kPrime1;
    }
    h ^= h >> 33;
    h *= kPrime2;
    h ^= h >> 29;
    h *= kPrime3;
    h ^= h >> 32;
    return h;
}

bool
saveGraphFile(const std::string& path, const Dataset& ds,
              std::string& error)
{
    const Csr& g = ds.graph;
    const std::size_t row_bytes =
        (static_cast<std::size_t>(g.numVertices) + 1) * sizeof(EdgeId);
    const std::size_t col_bytes =
        static_cast<std::size_t>(g.numEdges) * sizeof(VertexId);
    const std::size_t weight_sec_bytes =
        g.weighted() ? static_cast<std::size_t>(g.numEdges) *
                           sizeof(Word)
                     : 0;

    std::uint8_t header[kHeaderBytes] = {};
    std::memcpy(header, kMagic, sizeof kMagic);
    put32(header, 8, graphFileVersion);
    put32(header, 12, g.weighted() ? kFlagWeighted : 0);
    put64(header, 16, g.numVertices);
    put64(header, 24, g.numEdges);
    put64(header, 32, ds.name.size());
    put64(header, 40, ds.provenance.size());
    const std::string meta = ds.name + ds.provenance;
    put64(header, 48, hashBytes(meta.data(), meta.size()));
    put64(header, 56, hashBytes(g.rowPtr.data(), row_bytes));
    put64(header, 64, hashBytes(g.colIdx.data(), col_bytes));
    put64(header, 72,
          g.weighted() ? hashBytes(g.weights.data(), weight_sec_bytes)
                       : 0);
    put64(header, 80, hashBytes(header, 80));

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        error = "cannot open output file: " + path;
        return false;
    }
    out.write(reinterpret_cast<const char*>(header), kHeaderBytes);
    out.write(meta.data(),
              static_cast<std::streamsize>(meta.size()));
    const std::size_t pad =
        align8(kHeaderBytes + meta.size()) -
        (kHeaderBytes + meta.size());
    const char zeros[8] = {};
    out.write(zeros, static_cast<std::streamsize>(pad));
    out.write(reinterpret_cast<const char*>(g.rowPtr.data()),
              static_cast<std::streamsize>(row_bytes));
    out.write(reinterpret_cast<const char*>(g.colIdx.data()),
              static_cast<std::streamsize>(col_bytes));
    if (g.weighted())
        out.write(reinterpret_cast<const char*>(g.weights.data()),
                  static_cast<std::streamsize>(weight_sec_bytes));
    out.flush();
    if (!out) {
        error = "error writing graph file: " + path;
        return false;
    }
    return true;
}

GraphFileResult
loadGraphFile(const std::string& path)
{
    FileView view;
    std::string error;
    if (!view.open(path, error))
        return failLoad(error);
    return loadFromImage(view.data(), view.size(), path);
}

GraphFileResult
loadGraphFileBytes(const std::uint8_t* data, std::size_t size,
                   const std::string& label)
{
    if (data == nullptr && size != 0)
        return failLoad("null graph image: " + label);
    return loadFromImage(data, size, label);
}

GraphFileInfoResult
inspectGraphFile(const std::string& path)
{
    FileView view;
    std::string error;
    if (!view.open(path, error))
        return failInspect(error);

    GraphFileInfoResult result;
    const std::uint8_t* row_ptr_bytes = nullptr;
    const std::uint8_t* col_idx_bytes = nullptr;
    const std::uint8_t* weight_bytes = nullptr;
    if (!parseAndValidate(view.data(), view.size(), path,
                          result.header, row_ptr_bytes, col_idx_bytes,
                          weight_bytes, error))
        return failInspect(error);
    return result;
}

} // namespace dalorex
