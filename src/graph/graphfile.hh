/**
 * @file
 * On-disk binary CSR graph storage ("dlx" files).
 *
 * `dalorex convert` ingests text graph formats once and writes this
 * versioned, checksummed binary layout; the loader memory-maps it,
 * validates every section and materializes a Dataset in milliseconds,
 * so sweeps over multi-million-edge graphs load instead of
 * regenerating (the `tools/graph-convert` + on-disk property-graph
 * idiom of the Katana engine).
 *
 * Layout (little-endian, fixed-width fields):
 *
 *   [0,  8)  magic "DLRXCSR\0"
 *   [8, 12)  u32 format version (currently 1)
 *   [12,16)  u32 flags (bit 0: per-edge weights present)
 *   [16,24)  u64 numVertices
 *   [24,32)  u64 numEdges
 *   [32,40)  u64 name length in bytes
 *   [40,48)  u64 provenance length in bytes
 *   [48,56)  u64 meta hash (name + provenance bytes)
 *   [56,64)  u64 rowPtr section hash
 *   [64,72)  u64 colIdx section hash
 *   [72,80)  u64 weights section hash (0 when unweighted)
 *   [80,88)  u64 header hash (bytes [0, 80))
 *   [88,..)  name bytes, provenance bytes, pad to 8;
 *            rowPtr (V+1 x u32), colIdx (E x u32),
 *            weights (E x u32, only when flagged)
 *
 * All load/inspect failures — unreadable path, truncation, foreign
 * magic, version skew, any flipped byte — come back as `ok == false`
 * with a one-line diagnostic, never a crash: a corrupt file must fail
 * one sweep row, not the process.
 */

#ifndef DALOREX_GRAPH_GRAPHFILE_HH
#define DALOREX_GRAPH_GRAPHFILE_HH

#include <cstdint>
#include <string>

#include "graph/datasets.hh"

namespace dalorex
{

/** Format version written by saveGraphFile(). */
constexpr std::uint32_t graphFileVersion = 1;

/** Everything in a graph file's header (for `convert --verify`). */
struct GraphFileHeader
{
    std::uint32_t version = 0;
    bool weighted = false;
    std::uint64_t numVertices = 0;
    std::uint64_t numEdges = 0;
    std::string name;
    std::string provenance;
    std::uint64_t metaHash = 0;
    std::uint64_t rowPtrHash = 0;
    std::uint64_t colIdxHash = 0;
    std::uint64_t weightsHash = 0;
    std::uint64_t fileBytes = 0; //!< total size on disk
};

/** Outcome of loading a graph file: a Dataset, or a diagnostic. */
struct GraphFileResult
{
    Dataset dataset;
    bool ok = true;
    std::string error; //!< one line, set when !ok
};

/** Outcome of inspecting a graph file without materializing it. */
struct GraphFileInfoResult
{
    GraphFileHeader header;
    bool ok = true;
    std::string error; //!< one line, set when !ok
};

/**
 * Write `ds` (graph + name + provenance) to `path`. Returns false
 * with a one-line `error` on I/O failure. The written file round
 * trips bit-exactly: loadGraphFile() rebuilds the identical Dataset.
 */
bool saveGraphFile(const std::string& path, const Dataset& ds,
                   std::string& error);

/**
 * Memory-map `path`, validate magic/version/checksums/structure and
 * materialize the Dataset. Never crashes on bad input.
 */
GraphFileResult loadGraphFile(const std::string& path);

/**
 * Same validation and materialization over an in-memory image.
 * `data` may have ANY alignment — every multi-byte field and section
 * element is read with memcpy, so a view into the middle of a larger
 * buffer (network payload, archive member) is safe under UBSan.
 * `label` stands in for the path in diagnostics.
 */
GraphFileResult loadGraphFileBytes(const std::uint8_t* data,
                                   std::size_t size,
                                   const std::string& label);

/**
 * Validate `path` exactly like loadGraphFile() — including full
 * section checksums — but only return the header.
 */
GraphFileInfoResult inspectGraphFile(const std::string& path);

/**
 * The 64-bit section hash (xxhash-style multiply-rotate mix over
 * 8-byte lanes). Exposed so tests can forge/verify sections.
 */
std::uint64_t hashBytes(const void* data, std::size_t size);

} // namespace dalorex

#endif // DALOREX_GRAPH_GRAPHFILE_HH
