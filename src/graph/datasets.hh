/**
 * @file
 * Named evaluation datasets.
 *
 * The paper evaluates real-world graphs — Amazon (V=262K, E=1.2M),
 * Wikipedia (V=4.2M, E=101M), LiveJournal (V=5.3M, E=79M) — and RMAT
 * graphs of scale 16/22/25/26. This environment has no network access to
 * SNAP downloads, and full-scale cycle-level simulation of the largest
 * inputs exceeds the time budget, so (per DESIGN.md Sec. 3):
 *
 *  - `amazon` is generated synthetically at the paper's FULL size
 *    (V=262,144, E~1.2M) with mild degree skew matching a co-purchase
 *    network;
 *  - `wiki` and `livejournal` are power-law stand-ins scaled down ~16x
 *    with the papers' average degree preserved (24 and 15) and strong
 *    skew;
 *  - `rmatN` follows the paper exactly at any scale; the default bench
 *    scales substitute R14/R16/R18 for the paper's R16/R22/R25/R26.
 *
 * Every dataset is deterministic in (name, seed).
 */

#ifndef DALOREX_GRAPH_DATASETS_HH
#define DALOREX_GRAPH_DATASETS_HH

#include <string>
#include <vector>

#include "graph/csr.hh"

namespace dalorex
{

/** A generated dataset plus its provenance note. */
struct Dataset
{
    std::string name;       //!< short id used in result tables (AZ, ...)
    std::string provenance; //!< what it stands in for
    Csr graph;
};

/** Outcome of building a dataset: the dataset, or a diagnostic. */
struct DatasetResult
{
    Dataset dataset;
    bool ok = true;
    std::string error; //!< one line, set when !ok
};

/**
 * Build a dataset by name, recoverably.
 *
 * Names: "amazon"/"AZ", "wiki"/"WK", "livejournal"/"LJ", "rmatN" for
 * N in [4, 31] without leading zeros (e.g. "rmat16"), or
 * "file:PATH" for a binary CSR file written by `dalorex convert`.
 * Unknown names, malformed rmat ids and unreadable/corrupt graph
 * files come back as ok == false with a one-line error — a bad
 * dataset must fail one sweep row, never the process.
 */
DatasetResult tryMakeDataset(const std::string& name,
                             std::uint64_t seed = 1);

/**
 * Same, but at an explicit vertex scale (V = 2^scale): benches shrink
 * the stand-ins under --quick while preserving average degree and
 * skew. rmatN and file: names ignore the override (an rmat scale
 * lives in the name; files are fixed size), so defaultQuickScale()'s
 * 0 return for them can never trip the [4, 31] range check.
 */
DatasetResult tryMakeDatasetAt(const std::string& name, unsigned scale,
                               std::uint64_t seed = 1);

/** tryMakeDataset() for contexts that own the process (benches,
 *  examples): fatal() on any error. */
Dataset makeDataset(const std::string& name, std::uint64_t seed = 1);

/** tryMakeDatasetAt() with the same fatal() contract. */
Dataset makeDatasetAt(const std::string& name, unsigned scale,
                      std::uint64_t seed = 1);

/** True for "file:PATH" dataset names (on-disk binary CSR graphs). */
bool isFileDataset(const std::string& name);

/** One --list-datasets catalog entry. */
struct DatasetListing
{
    std::string name;    //!< canonical makeDataset() name
    std::string aliases; //!< accepted alternates ("az, AZ")
    std::string note;    //!< what it stands in for
};

/** The named datasets plus the rmatN family, in listing order. */
std::vector<DatasetListing> datasetCatalog();

/**
 * True when the name is well-formed: a catalog alias, "rmatN" with N
 * in [4, 31] (no leading zeros), or "file:" with a non-empty path.
 * Lets batch layers reject bad names up front; whether a file:
 * dataset actually loads is only known at build time, where failures
 * surface through DatasetResult.
 */
bool knownDataset(const std::string& name);

/**
 * The named stand-ins' quick-mode vertex scale (amazon/livejournal
 * 15, wiki 14); 0 for rmatN and file: names, whose size is fixed.
 * Single source for the benches' --quick shrink and `dalorex sweep
 * --quick`.
 */
unsigned defaultQuickScale(const std::string& name);

} // namespace dalorex

#endif // DALOREX_GRAPH_DATASETS_HH
