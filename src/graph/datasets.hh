/**
 * @file
 * Named evaluation datasets.
 *
 * The paper evaluates real-world graphs — Amazon (V=262K, E=1.2M),
 * Wikipedia (V=4.2M, E=101M), LiveJournal (V=5.3M, E=79M) — and RMAT
 * graphs of scale 16/22/25/26. This environment has no network access to
 * SNAP downloads, and full-scale cycle-level simulation of the largest
 * inputs exceeds the time budget, so (per DESIGN.md Sec. 3):
 *
 *  - `amazon` is generated synthetically at the paper's FULL size
 *    (V=262,144, E~1.2M) with mild degree skew matching a co-purchase
 *    network;
 *  - `wiki` and `livejournal` are power-law stand-ins scaled down ~16x
 *    with the papers' average degree preserved (24 and 15) and strong
 *    skew;
 *  - `rmatN` follows the paper exactly at any scale; the default bench
 *    scales substitute R14/R16/R18 for the paper's R16/R22/R25/R26.
 *
 * Every dataset is deterministic in (name, seed).
 */

#ifndef DALOREX_GRAPH_DATASETS_HH
#define DALOREX_GRAPH_DATASETS_HH

#include <string>
#include <vector>

#include "graph/csr.hh"

namespace dalorex
{

/** A generated dataset plus its provenance note. */
struct Dataset
{
    std::string name;       //!< short id used in result tables (AZ, ...)
    std::string provenance; //!< what it stands in for
    Csr graph;
};

/**
 * Build a dataset by name.
 *
 * Names: "amazon"/"AZ", "wiki"/"WK", "livejournal"/"LJ", or "rmatN" for
 * N in [4, 31] (e.g. "rmat16"). fatal() on unknown names.
 *
 * @param name  Dataset identifier (case-insensitive for the aliases).
 * @param seed  Generator seed (defaults match the benches).
 */
Dataset makeDataset(const std::string& name, std::uint64_t seed = 1);

/**
 * Same, but at an explicit vertex scale (V = 2^scale): benches shrink
 * the stand-ins under --quick while preserving average degree and
 * skew. rmatN names ignore the override (their scale is in the name).
 */
Dataset makeDatasetAt(const std::string& name, unsigned scale,
                      std::uint64_t seed = 1);

/** One --list-datasets catalog entry. */
struct DatasetListing
{
    std::string name;    //!< canonical makeDataset() name
    std::string aliases; //!< accepted alternates ("az, AZ")
    std::string note;    //!< what it stands in for
};

/** The named datasets plus the rmatN family, in listing order. */
std::vector<DatasetListing> datasetCatalog();

/**
 * True when makeDataset(name) would succeed: a catalog alias or
 * "rmatN" with N in [4, 31]. Lets batch layers reject bad names up
 * front instead of fatal()ing mid-run on a worker thread.
 */
bool knownDataset(const std::string& name);

/**
 * The named stand-ins' quick-mode vertex scale (amazon/livejournal
 * 15, wiki 14); 0 for rmatN. Single source for the benches' --quick
 * shrink and `dalorex sweep --quick`.
 */
unsigned defaultQuickScale(const std::string& name);

} // namespace dalorex

#endif // DALOREX_GRAPH_DATASETS_HH
