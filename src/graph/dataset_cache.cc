#include "graph/dataset_cache.hh"

#include <map>
#include <mutex>

#include "common/text.hh"

namespace dalorex
{
namespace
{

/** One cache slot; `once` serializes the build across workers. */
struct Entry
{
    std::once_flag once;
    CachedDataset value;
};

struct Cache
{
    std::mutex mutex;
    std::map<std::string, std::shared_ptr<Entry>> entries;
    DatasetCacheStats stats;
};

Cache&
cache()
{
    static Cache instance;
    return instance;
}

/**
 * Canonical cache key. Catalog aliases are case-insensitive
 * ("AZ" == "amazon" at build time), so lowercase them; file: paths
 * stay case-sensitive.
 */
std::string
cacheKey(const std::string& name, unsigned scale, std::uint64_t seed)
{
    const std::string id =
        isFileDataset(name) ? name : toLower(name);
    return id + "@" + std::to_string(scale) + "#" +
           std::to_string(seed);
}

} // namespace

CachedDataset
datasetCacheGet(const std::string& name, unsigned scale,
                std::uint64_t seed)
{
    Cache& c = cache();
    std::shared_ptr<Entry> entry;
    bool inserted = false;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        auto& slot = c.entries[cacheKey(name, scale, seed)];
        if (slot == nullptr) {
            slot = std::make_shared<Entry>();
            inserted = true;
        }
        entry = slot;
        if (inserted)
            ++c.stats.builds;
        else
            ++c.stats.hits;
    }
    // Build outside the map lock: a slow generation must not block
    // lookups of other datasets, only requests for this key.
    std::call_once(entry->once, [&] {
        DatasetResult built = scale > 0
                                  ? tryMakeDatasetAt(name, scale, seed)
                                  : tryMakeDataset(name, seed);
        if (!built.ok) {
            entry->value.ok = false;
            entry->value.error = built.error;
            return;
        }
        entry->value.dataset = std::make_shared<const Dataset>(
            std::move(built.dataset));
    });
    return entry->value;
}

DatasetCacheStats
datasetCacheStats()
{
    Cache& c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    return c.stats;
}

void
datasetCacheClear()
{
    Cache& c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.entries.clear();
    c.stats = DatasetCacheStats{};
}

} // namespace dalorex
