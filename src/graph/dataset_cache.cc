#include "graph/dataset_cache.hh"

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>

#include "common/text.hh"

namespace dalorex
{
namespace
{

using SteadyClock = std::chrono::steady_clock;

/**
 * One cache slot: a small state machine instead of a once_flag so a
 * *failed* build can be retried after its negative entry expires.
 * `building` serializes the build across workers (waiters block on
 * the condition variable, exactly like the old call_once); `failed`
 * entries answer from the cached error until `retryAfter`, then the
 * next requester flips the slot back to `building` and rebuilds.
 */
struct Entry
{
    enum class State
    {
        empty,    //!< never built (fresh slot)
        building, //!< one worker is generating/loading right now
        ready,    //!< immutable success, served forever
        failed,   //!< negative entry, served until retryAfter
    };

    std::mutex mutex;
    std::condition_variable cv;
    State state = State::empty;
    CachedDataset value;
    SteadyClock::time_point retryAfter{}; //!< failed only
};

struct Cache
{
    std::mutex mutex;
    std::map<std::string, std::shared_ptr<Entry>> entries;
    DatasetCacheStats stats;
    std::uint64_t negativeTtlMs = 200;
};

Cache&
cache()
{
    static Cache instance;
    return instance;
}

/**
 * Canonical cache key. Catalog aliases are case-insensitive
 * ("AZ" == "amazon" at build time), so lowercase them; file: paths
 * stay case-sensitive.
 */
std::string
cacheKey(const std::string& name, unsigned scale, std::uint64_t seed)
{
    const std::string id =
        isFileDataset(name) ? name : toLower(name);
    return id + "@" + std::to_string(scale) + "#" +
           std::to_string(seed);
}

} // namespace

CachedDataset
datasetCacheGet(const std::string& name, unsigned scale,
                std::uint64_t seed)
{
    Cache& c = cache();
    std::shared_ptr<Entry> entry;
    std::uint64_t negative_ttl_ms = 0;
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        auto& slot = c.entries[cacheKey(name, scale, seed)];
        if (slot == nullptr)
            slot = std::make_shared<Entry>();
        entry = slot;
        negative_ttl_ms = c.negativeTtlMs;
    }

    // Decide under the entry lock whether to serve, wait or build;
    // the build itself runs unlocked so a slow generation blocks only
    // requests for this key, never the map.
    std::unique_lock<std::mutex> lock(entry->mutex);
    for (;;) {
        if (entry->state == Entry::State::ready) {
            std::lock_guard<std::mutex> stats(c.mutex);
            ++c.stats.hits;
            return entry->value;
        }
        if (entry->state == Entry::State::failed) {
            if (SteadyClock::now() < entry->retryAfter) {
                std::lock_guard<std::mutex> stats(c.mutex);
                ++c.stats.hits;
                return entry->value;
            }
            break; // negative entry expired: this thread rebuilds
        }
        if (entry->state == Entry::State::empty)
            break; // this thread builds
        entry->cv.wait(lock); // building: await the builder's result
    }

    entry->state = Entry::State::building;
    lock.unlock();
    {
        std::lock_guard<std::mutex> stats(c.mutex);
        ++c.stats.builds;
    }

    CachedDataset result;
    DatasetResult built = scale > 0
                              ? tryMakeDatasetAt(name, scale, seed)
                              : tryMakeDataset(name, seed);
    if (!built.ok) {
        result.ok = false;
        result.error = built.error;
        // File loads fail for I/O reasons that can heal (the file
        // appears, the mount recovers); generation failures are
        // deterministic in the key and never will.
        result.transient = isFileDataset(name);
    } else {
        result.dataset =
            std::make_shared<const Dataset>(std::move(built.dataset));
    }

    lock.lock();
    entry->value = result;
    if (result.ok) {
        entry->state = Entry::State::ready;
    } else {
        entry->state = Entry::State::failed;
        entry->retryAfter =
            SteadyClock::now() +
            std::chrono::milliseconds(negative_ttl_ms);
    }
    lock.unlock();
    entry->cv.notify_all();
    return result;
}

DatasetCacheStats
datasetCacheStats()
{
    Cache& c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    return c.stats;
}

void
datasetCacheClear()
{
    Cache& c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.entries.clear();
    c.stats = DatasetCacheStats{};
}

void
datasetCacheSetNegativeTtlMs(std::uint64_t ms)
{
    Cache& c = cache();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.negativeTtlMs = ms;
}

} // namespace dalorex
