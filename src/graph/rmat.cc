#include "graph/rmat.hh"

#include <utility>
#include <vector>

#include "common/logging.hh"

namespace dalorex
{

EdgeList
rmatEdges(const RmatParams& params)
{
    const double d = 1.0 - params.a - params.b - params.c;
    fatal_if(d < 0.0, "RMAT quadrant probabilities exceed 1");
    fatal_if(params.scale == 0 || params.scale > 31,
             "RMAT scale must be in [1, 31]");

    const auto num_vertices = VertexId(1) << params.scale;
    const std::uint64_t num_edges =
        std::uint64_t(params.edgeFactor) * num_vertices;
    fatal_if(num_edges >= (std::uint64_t(1) << 32),
             "edge count exceeds the 32-bit machine limit");

    Rng rng(params.seed);
    EdgeList edges;
    edges.reserve(num_edges);

    const double ab = params.a + params.b;
    const double abc = ab + params.c;

    for (std::uint64_t e = 0; e < num_edges; ++e) {
        VertexId u = 0;
        VertexId v = 0;
        for (unsigned bit = 0; bit < params.scale; ++bit) {
            const double r = rng.uniform();
            // Pick the quadrant: a = (0,0), b = (0,1), c = (1,0),
            // d = (1,1) in (row, col) bit order.
            unsigned row_bit = 0;
            unsigned col_bit = 0;
            if (r < params.a) {
                // top-left
            } else if (r < ab) {
                col_bit = 1;
            } else if (r < abc) {
                row_bit = 1;
            } else {
                row_bit = 1;
                col_bit = 1;
            }
            u = (u << 1) | row_bit;
            v = (v << 1) | col_bit;
        }
        edges.emplace_back(u, v);
    }

    if (params.shuffleIds) {
        // Graph500-style random relabeling (Fisher-Yates), seeded
        // independently of the edge draw.
        std::vector<VertexId> perm(num_vertices);
        for (VertexId v = 0; v < num_vertices; ++v)
            perm[v] = v;
        Rng perm_rng(params.seed ^ 0x5eedf00dULL);
        for (VertexId v = num_vertices - 1; v > 0; --v) {
            const auto swap_with =
                static_cast<VertexId>(perm_rng.below(v + 1));
            std::swap(perm[v], perm[swap_with]);
        }
        for (auto& [u, v] : edges) {
            u = perm[u];
            v = perm[v];
        }
    }
    return edges;
}

Csr
rmatGraph(const RmatParams& params)
{
    CsrBuildOptions opts;
    opts.removeSelfLoops = params.removeSelfLoops;
    opts.dedup = params.dedup;
    return buildCsr(VertexId(1) << params.scale, rmatEdges(params), opts);
}

} // namespace dalorex
