#include "graph/graphio.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <tuple>
#include <vector>

#include "common/text.hh"

namespace dalorex
{
namespace
{

struct RawEdge
{
    VertexId u = 0;
    VertexId v = 0;
    Word w = 0;
};

/** Parser output before cleanup/CSR construction. */
struct ParsedGraph
{
    std::uint64_t numVertices = 0;
    std::vector<RawEdge> edges;
    bool weighted = false;
};

TextGraphResult
failRead(const std::string& message)
{
    TextGraphResult result;
    result.ok = false;
    result.error = message;
    return result;
}

std::string
atLine(const std::string& path, std::size_t line)
{
    return path + ":" + std::to_string(line);
}

const char*
skipBlanks(const char* p)
{
    while (*p == ' ' || *p == '\t' || *p == '\r')
        ++p;
    return p;
}

/** Parse one decimal u64 token; advances `p` past it on success. */
bool
takeU64(const char*& p, std::uint64_t& out)
{
    p = skipBlanks(p);
    if (!std::isdigit(static_cast<unsigned char>(*p)))
        return false;
    errno = 0;
    char* end = nullptr;
    out = std::strtoull(p, &end, 10);
    if (errno != 0)
        return false;
    p = end;
    return true;
}

/** Parse one real token (MatrixMarket values); advances `p`. */
bool
takeDouble(const char*& p, double& out)
{
    p = skipBlanks(p);
    errno = 0;
    char* end = nullptr;
    out = std::strtod(p, &end);
    if (errno != 0 || end == p)
        return false;
    p = end;
    return true;
}

bool
lineDone(const char* p)
{
    return *skipBlanks(p) == '\0';
}

/** Convert a real edge value to a Word weight; false when out of
 *  domain (negative or beyond 32 bits). */
bool
toWeight(double value, Word& out)
{
    if (!(value >= 0.0) ||
        value > static_cast<double>(
                    std::numeric_limits<Word>::max()))
        return false;
    out = static_cast<Word>(value + 0.5);
    return true;
}

bool
parseEdgeList(std::istream& in, const std::string& path,
              ParsedGraph& pg, std::string& error)
{
    std::string line;
    std::size_t lineno = 0;
    std::uint64_t max_id = 0;
    bool saw_weight = false;
    bool saw_unweighted = false;
    while (std::getline(in, line)) {
        ++lineno;
        const char* p = skipBlanks(line.c_str());
        if (*p == '\0' || *p == '#' || *p == '%' ||
            (p[0] == '/' && p[1] == '/'))
            continue;
        std::uint64_t u = 0;
        std::uint64_t v = 0;
        if (!takeU64(p, u) || !takeU64(p, v)) {
            error = "bad edge line (want: u v [w]) at " +
                    atLine(path, lineno);
            return false;
        }
        RawEdge edge;
        if (!lineDone(p)) {
            std::uint64_t w = 0;
            if (!takeU64(p, w) || !lineDone(p) ||
                w > std::numeric_limits<Word>::max()) {
                error = "bad edge weight at " + atLine(path, lineno);
                return false;
            }
            edge.w = static_cast<Word>(w);
            saw_weight = true;
        } else {
            saw_unweighted = true;
        }
        if (saw_weight && saw_unweighted) {
            error = "mixed weighted and unweighted edge lines at " +
                    atLine(path, lineno);
            return false;
        }
        if (u >= std::numeric_limits<VertexId>::max() ||
            v >= std::numeric_limits<VertexId>::max()) {
            error = "vertex id exceeds the 32-bit domain at " +
                    atLine(path, lineno);
            return false;
        }
        edge.u = static_cast<VertexId>(u);
        edge.v = static_cast<VertexId>(v);
        max_id = std::max({max_id, u, v});
        pg.edges.push_back(edge);
    }
    pg.weighted = saw_weight;
    pg.numVertices = pg.edges.empty() ? 0 : max_id + 1;
    return true;
}

bool
parseMatrixMarket(std::istream& in, const std::string& path,
                  ParsedGraph& pg, std::string& error)
{
    std::string line;
    if (!std::getline(in, line)) {
        error = "empty MatrixMarket file: " + path;
        return false;
    }
    // "%%MatrixMarket matrix coordinate <field> <symmetry>"
    std::size_t lineno = 1;
    {
        std::istringstream banner(line);
        std::string tag;
        std::string object;
        std::string storage;
        std::string field;
        std::string symmetry;
        banner >> tag >> object >> storage >> field >> symmetry;
        if (toLower(tag) != "%%matrixmarket" ||
            toLower(object) != "matrix") {
            error = "not a MatrixMarket file (bad banner): " + path;
            return false;
        }
        if (toLower(storage) != "coordinate") {
            error = "only coordinate MatrixMarket files are "
                    "supported: " + path;
            return false;
        }
        const std::string f = toLower(field);
        if (f != "real" && f != "integer" && f != "pattern") {
            error = "unsupported MatrixMarket field '" + field +
                    "' (want real|integer|pattern): " + path;
            return false;
        }
        pg.weighted = f != "pattern";
        const std::string s = toLower(symmetry);
        if (s != "general" && s != "symmetric") {
            error = "unsupported MatrixMarket symmetry '" + symmetry +
                    "' (want general|symmetric): " + path;
            return false;
        }
        pg.numVertices = s == "symmetric" ? 1 : 0; // flag, fixed below
    }
    const bool symmetric = pg.numVertices == 1;
    pg.numVertices = 0;

    std::uint64_t rows = 0;
    std::uint64_t cols = 0;
    std::uint64_t nnz = 0;
    bool have_dims = false;
    while (std::getline(in, line)) {
        ++lineno;
        const char* p = skipBlanks(line.c_str());
        if (*p == '\0' || *p == '%')
            continue;
        if (!have_dims) {
            if (!takeU64(p, rows) || !takeU64(p, cols) ||
                !takeU64(p, nnz) || !lineDone(p)) {
                error = "bad MatrixMarket size line (want: rows cols "
                        "nnz) at " + atLine(path, lineno);
                return false;
            }
            const std::uint64_t dim = std::max(rows, cols);
            if (dim >= std::numeric_limits<VertexId>::max()) {
                error = "matrix dimension exceeds the 32-bit vertex "
                        "domain: " + path;
                return false;
            }
            pg.numVertices = dim;
            pg.edges.reserve(nnz);
            have_dims = true;
            continue;
        }
        std::uint64_t i = 0;
        std::uint64_t j = 0;
        if (!takeU64(p, i) || !takeU64(p, j)) {
            error = "bad MatrixMarket entry (want: i j [value]) at " +
                    atLine(path, lineno);
            return false;
        }
        RawEdge edge;
        if (pg.weighted) {
            double value = 0.0;
            if (!takeDouble(p, value) || !toWeight(value, edge.w)) {
                error = "bad MatrixMarket value (want a real in "
                        "[0, 2^32)) at " + atLine(path, lineno);
                return false;
            }
        }
        if (!lineDone(p)) {
            error = "trailing junk on MatrixMarket entry at " +
                    atLine(path, lineno);
            return false;
        }
        if (i < 1 || i > rows || j < 1 || j > cols) {
            error = "MatrixMarket entry outside the declared " +
                    std::to_string(rows) + "x" +
                    std::to_string(cols) + " shape at " +
                    atLine(path, lineno);
            return false;
        }
        edge.u = static_cast<VertexId>(i - 1);
        edge.v = static_cast<VertexId>(j - 1);
        pg.edges.push_back(edge);
        if (symmetric && edge.u != edge.v)
            pg.edges.push_back({edge.v, edge.u, edge.w});
    }
    if (!have_dims) {
        error = "MatrixMarket file has no size line: " + path;
        return false;
    }
    return true;
}

bool
parseDimacsGr(std::istream& in, const std::string& path,
              ParsedGraph& pg, std::string& error)
{
    std::string line;
    std::size_t lineno = 0;
    std::uint64_t declared_vertices = 0;
    bool have_problem = false;
    pg.weighted = true;
    while (std::getline(in, line)) {
        ++lineno;
        const char* p = skipBlanks(line.c_str());
        if (*p == '\0' || *p == 'c')
            continue;
        if (*p == 'p') {
            ++p;
            p = skipBlanks(p);
            if (p[0] != 's' || p[1] != 'p') {
                error = "not a DIMACS shortest-path file (want 'p sp "
                        "V E') at " + atLine(path, lineno);
                return false;
            }
            p += 2;
            std::uint64_t m = 0;
            if (!takeU64(p, declared_vertices) || !takeU64(p, m) ||
                !lineDone(p)) {
                error = "bad DIMACS problem line at " +
                        atLine(path, lineno);
                return false;
            }
            if (declared_vertices >=
                std::numeric_limits<VertexId>::max()) {
                error = "DIMACS vertex count exceeds the 32-bit "
                        "domain: " + path;
                return false;
            }
            pg.numVertices = declared_vertices;
            pg.edges.reserve(m);
            have_problem = true;
            continue;
        }
        if (*p == 'a') {
            ++p;
            if (!have_problem) {
                error = "DIMACS arc before the problem line at " +
                        atLine(path, lineno);
                return false;
            }
            std::uint64_t u = 0;
            std::uint64_t v = 0;
            std::uint64_t w = 0;
            if (!takeU64(p, u) || !takeU64(p, v) || !takeU64(p, w) ||
                !lineDone(p) ||
                w > std::numeric_limits<Word>::max()) {
                error = "bad DIMACS arc (want: a u v w) at " +
                        atLine(path, lineno);
                return false;
            }
            if (u < 1 || u > declared_vertices || v < 1 ||
                v > declared_vertices) {
                error = "DIMACS arc endpoint outside [1, " +
                        std::to_string(declared_vertices) + "] at " +
                        atLine(path, lineno);
                return false;
            }
            pg.edges.push_back({static_cast<VertexId>(u - 1),
                                static_cast<VertexId>(v - 1),
                                static_cast<Word>(w)});
            continue;
        }
        error = "unknown DIMACS line type '" + std::string(1, *p) +
                "' at " + atLine(path, lineno);
        return false;
    }
    if (!have_problem) {
        error = "DIMACS file has no 'p sp V E' line: " + path;
        return false;
    }
    return true;
}

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Resolve autoDetect: extension first, then leading content. */
GraphTextFormat
detectFormat(const std::string& path)
{
    const std::string lower = toLower(path);
    if (endsWith(lower, ".mtx") || endsWith(lower, ".mm"))
        return GraphTextFormat::matrixMarket;
    if (endsWith(lower, ".gr") || endsWith(lower, ".dimacs"))
        return GraphTextFormat::dimacsGr;

    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        const char* p = skipBlanks(line.c_str());
        if (*p == '\0')
            continue;
        if (line.rfind("%%MatrixMarket", 0) == 0)
            return GraphTextFormat::matrixMarket;
        if ((*p == 'c' || *p == 'p') &&
            (p[1] == ' ' || p[1] == '\t' || p[1] == '\0'))
            return GraphTextFormat::dimacsGr;
        break;
    }
    return GraphTextFormat::edgeList;
}

} // namespace

bool
parseGraphTextFormat(const std::string& text, GraphTextFormat& out)
{
    const std::string f = toLower(text);
    if (f == "auto")
        out = GraphTextFormat::autoDetect;
    else if (f == "edgelist" || f == "el" || f == "edge-list")
        out = GraphTextFormat::edgeList;
    else if (f == "matrix-market" || f == "mtx" || f == "mm")
        out = GraphTextFormat::matrixMarket;
    else if (f == "dimacs" || f == "gr")
        out = GraphTextFormat::dimacsGr;
    else
        return false;
    return true;
}

const char*
toString(GraphTextFormat format)
{
    switch (format) {
      case GraphTextFormat::autoDetect: return "auto";
      case GraphTextFormat::edgeList: return "edgelist";
      case GraphTextFormat::matrixMarket: return "matrix-market";
      case GraphTextFormat::dimacsGr: return "dimacs";
    }
    return "auto";
}

std::string
fileStem(const std::string& path)
{
    const std::size_t slash = path.find_last_of("/\\");
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = base.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        base = base.substr(0, dot);
    return base;
}

TextGraphResult
readTextGraph(const std::string& path, const TextReadOptions& opts)
{
    std::ifstream in(path);
    if (!in)
        return failRead("cannot open input file: " + path);

    GraphTextFormat format = opts.format;
    if (format == GraphTextFormat::autoDetect)
        format = detectFormat(path);

    ParsedGraph pg;
    std::string error;
    bool parsed = false;
    switch (format) {
      case GraphTextFormat::edgeList:
        parsed = parseEdgeList(in, path, pg, error);
        break;
      case GraphTextFormat::matrixMarket:
        parsed = parseMatrixMarket(in, path, pg, error);
        break;
      case GraphTextFormat::dimacsGr:
        parsed = parseDimacsGr(in, path, pg, error);
        break;
      case GraphTextFormat::autoDetect:
        error = "unresolved graph format: " + path;
        break;
    }
    if (!parsed)
        return failRead(error);

    // Cleanup, mirroring buildCsr(): optional symmetrization, self
    // loops, then a (u, v, w) sort with first-weight-wins dedup.
    std::vector<RawEdge>& edges = pg.edges;
    if (opts.symmetrize) {
        const std::size_t directed = edges.size();
        for (std::size_t i = 0; i < directed; ++i) {
            const RawEdge e = edges[i];
            if (e.u != e.v)
                edges.push_back({e.v, e.u, e.w});
        }
    }
    if (opts.removeSelfLoops)
        edges.erase(std::remove_if(edges.begin(), edges.end(),
                                   [](const RawEdge& e) {
                                       return e.u == e.v;
                                   }),
                    edges.end());
    std::sort(edges.begin(), edges.end(),
              [](const RawEdge& a, const RawEdge& b) {
                  return std::tie(a.u, a.v, a.w) <
                         std::tie(b.u, b.v, b.w);
              });
    if (opts.dedup || opts.symmetrize)
        edges.erase(std::unique(edges.begin(), edges.end(),
                                [](const RawEdge& a,
                                   const RawEdge& b) {
                                    return a.u == b.u && a.v == b.v;
                                }),
                    edges.end());
    if (edges.empty())
        return failRead("input has no edges after cleanup: " + path);
    if (edges.size() > std::numeric_limits<EdgeId>::max())
        return failRead("edge count exceeds the 32-bit domain: " +
                        path);

    TextGraphResult result;
    Dataset& ds = result.dataset;
    ds.name = fileStem(path);
    ds.provenance =
        std::string("converted from ") + toString(format) + " " +
        path + (pg.weighted ? " (weighted)" : "") +
        (opts.symmetrize ? ", symmetrized" : "") +
        (opts.removeSelfLoops ? ", self loops removed" : "") +
        (opts.dedup || opts.symmetrize ? ", deduplicated" : "");
    Csr& g = ds.graph;
    g.numVertices = static_cast<VertexId>(pg.numVertices);
    g.numEdges = static_cast<EdgeId>(edges.size());
    g.rowPtr.assign(static_cast<std::size_t>(g.numVertices) + 1, 0);
    g.colIdx.resize(edges.size());
    if (pg.weighted)
        g.weights.resize(edges.size());
    for (const RawEdge& e : edges)
        ++g.rowPtr[e.u + 1];
    for (VertexId v = 0; v < g.numVertices; ++v)
        g.rowPtr[v + 1] += g.rowPtr[v];
    for (std::size_t i = 0; i < edges.size(); ++i) {
        g.colIdx[i] = edges[i].v;
        if (pg.weighted)
            g.weights[i] = edges[i].w;
    }
    g.checkInvariants();
    return result;
}

} // namespace dalorex
