/**
 * @file
 * Process-wide immutable dataset cache.
 *
 * Datasets are deterministic in (name, scale, seed), yet every sweep
 * worker used to regenerate — or re-load — its own private copy of
 * the identical graph: a 256-point sweep over one dataset built it
 * once per point. This cache shares one immutable Dataset per key
 * across the whole process; concurrent requests for the same key
 * block on a single builder (std::call_once per entry), so N workers
 * trigger exactly one generation or file load.
 *
 * Successful entries are never evicted: a long sweep touches its few
 * datasets thousands of times, and the working set (a handful of CSR
 * graphs) is small next to the per-scenario engine state. Failed
 * builds are cached *with an expiry*: a negative entry answers
 * repeat requests in microseconds until its retry-after stamp
 * passes, then the next request rebuilds — so one flaky mmap or a
 * graph file that appears later doesn't poison every future row
 * (retry/backoff in the sweep layer leans on exactly this).
 */

#ifndef DALOREX_GRAPH_DATASET_CACHE_HH
#define DALOREX_GRAPH_DATASET_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "graph/datasets.hh"

namespace dalorex
{

/** Outcome of a cache lookup: a shared dataset, or a diagnostic. */
struct CachedDataset
{
    /** Never null when ok; immutable and shared across workers. */
    std::shared_ptr<const Dataset> dataset;
    bool ok = true;
    std::string error; //!< one line, set when !ok
    /** !ok only: whether the failure is worth retrying later (file
     *  I/O — the negative entry expires) vs deterministic (a bad
     *  generation spec, which would fail identically forever). */
    bool transient = false;
};

/**
 * The shared dataset for (name, scale, seed), building it on first
 * use. `scale` 0 means the dataset's native size (tryMakeDataset);
 * nonzero goes through tryMakeDatasetAt. Thread-safe; build errors
 * are recoverable and cached.
 */
CachedDataset datasetCacheGet(const std::string& name, unsigned scale,
                              std::uint64_t seed);

/** Cache traffic counters (cumulative since process start/clear). */
struct DatasetCacheStats
{
    std::uint64_t builds = 0; //!< generations/loads actually run
    std::uint64_t hits = 0;   //!< requests served from the cache
};

DatasetCacheStats datasetCacheStats();

/** Drop every entry and zero the counters (tests, memory pressure). */
void datasetCacheClear();

/**
 * How long a *failed* build is served from its negative entry before
 * the next request retries the build (default 200 ms; 0 = every
 * request after a failure retries). Applies to entries created after
 * the call. Sweep retry backoff should exceed this so a retried row
 * reaches the filesystem again instead of the stale negative entry.
 */
void datasetCacheSetNegativeTtlMs(std::uint64_t ms);

} // namespace dalorex

#endif // DALOREX_GRAPH_DATASET_CACHE_HH
