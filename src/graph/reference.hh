/**
 * @file
 * Sequential reference implementations of the five evaluated kernels.
 *
 * The paper validates its simulator "to provide correct program outputs
 * over sequential x86 executions of the applications" (Sec. IV-A);
 * these functions serve the same role for every Dalorex and Tesseract
 * run in tests and benches.
 */

#ifndef DALOREX_GRAPH_REFERENCE_HH
#define DALOREX_GRAPH_REFERENCE_HH

#include <vector>

#include "graph/csr.hh"

namespace dalorex
{

/**
 * Breadth-First Search: hop count from `root` per vertex
 * (infDist if unreachable).
 */
std::vector<Word> referenceBfs(const Csr& graph, VertexId root);

/**
 * Single-Source Shortest Path over `graph.weights` (Dijkstra).
 * Distances as 64-bit-safe saturating 32-bit values; infDist if
 * unreachable. Requires a weighted graph with all weights > 0.
 */
std::vector<Word> referenceSssp(const Csr& graph, VertexId root);

/**
 * Weakly Connected Components by label propagation: every vertex gets
 * the smallest vertex id reachable in the undirected view. Pass a
 * symmetrized graph (the task program requires one too).
 */
std::vector<Word> referenceWcc(const Csr& graph);

/**
 * PageRank, push-style, run for `iterations` synchronous epochs:
 *   rank'[v] = (1-d)/V + d * sum_{u->v} rank[u]/outdeg[u]
 * Vertices with zero out-degree do not push (their mass decays), which
 * matches the task program exactly.
 */
std::vector<double> referencePageRank(const Csr& graph, double damping,
                                      unsigned iterations);

/**
 * Same, with the convergence-threshold stopping rule of
 * PageRankApp::setConvergence: stop after the first epoch whose
 * largest per-vertex rank change falls below `epsilon` (`iterations`
 * stays the hard upper bound; epsilon <= 0 disables the rule). The
 * engine evaluates the same criterion on float32 ranks, so the two
 * may stop one epoch apart near the threshold — validation for the
 * epsilon mode therefore compares within an epsilon-scaled
 * tolerance, not the exact-epoch 1e-3 default.
 */
std::vector<double> referencePageRankConverged(const Csr& graph,
                                               double damping,
                                               unsigned iterations,
                                               double epsilon);

/**
 * SPMV y = A*x with A stored column-major in the CSR arrays: rowPtr
 * indexes columns, colIdx holds row ids, weights holds values. Integer
 * math (exact under any accumulation order). Requires weights.
 */
std::vector<Word> referenceSpmv(const Csr& matrix,
                                const std::vector<Word>& x);

} // namespace dalorex

#endif // DALOREX_GRAPH_REFERENCE_HH
