/**
 * @file
 * Text graph ingestion for `dalorex convert`.
 *
 * Three interchange formats cover the common public graph corpora:
 *
 *  - plain edge lists ("u v [w]" per line, `#`/`%` comments) — the
 *    SNAP download format;
 *  - MatrixMarket coordinate files (`%%MatrixMarket matrix
 *    coordinate ...`, 1-based) — the SuiteSparse collection;
 *  - DIMACS shortest-path `.gr` files (`p sp V E`, `a u v w`,
 *    1-based) — the road-network challenge inputs.
 *
 * Every parse failure (junk tokens, out-of-range ids, truncated
 * declarations) is a recoverable one-line error naming the offending
 * line, never a crash. Cleanup mirrors buildCsr(): self loops
 * dropped, duplicates deduplicated (first weight wins on ties),
 * optional symmetrization — all deterministic, so converting the same
 * input twice writes byte-identical graph files.
 */

#ifndef DALOREX_GRAPH_GRAPHIO_HH
#define DALOREX_GRAPH_GRAPHIO_HH

#include <string>

#include "graph/datasets.hh"

namespace dalorex
{

/** The text formats `dalorex convert` ingests. */
enum class GraphTextFormat
{
    autoDetect, //!< by extension, then by leading content
    edgeList,
    matrixMarket,
    dimacsGr,
};

/** Parse a --format value; false on unknown names. */
bool parseGraphTextFormat(const std::string& text,
                          GraphTextFormat& out);

const char* toString(GraphTextFormat format);

/** Cleanup applied between parsing and CSR construction. */
struct TextReadOptions
{
    GraphTextFormat format = GraphTextFormat::autoDetect;
    /** Drop (u, u) self loops. */
    bool removeSelfLoops = true;
    /** Drop duplicate (u, v) pairs (the first weight wins). */
    bool dedup = true;
    /** Add the reverse of every edge (undirected view). */
    bool symmetrize = false;
};

/** Outcome of reading a text graph: a Dataset, or a diagnostic. */
struct TextGraphResult
{
    /** name = file stem, provenance = source format and cleanup. */
    Dataset dataset;
    bool ok = true;
    std::string error; //!< one line, set when !ok
};

/**
 * Read `path` in the given (or detected) format and build the CSR.
 * Weighted inputs (edge lists with a third column, non-pattern
 * MatrixMarket, DIMACS .gr) keep their weights as 32-bit words.
 */
TextGraphResult readTextGraph(const std::string& path,
                              const TextReadOptions& opts = {});

/** The file-name stem ("/a/b/road.gr" -> "road"). */
std::string fileStem(const std::string& path);

} // namespace dalorex

#endif // DALOREX_GRAPH_GRAPHIO_HH
