#include "sweep/sweep.hh"

#include "sweep/pool.hh"

namespace dalorex
{
namespace sweep
{

RunResult
run(const Plan& plan, unsigned threads)
{
    return run(expand(plan), threads);
}

RunResult
run(const ExpandResult& expanded, unsigned threads)
{
    return run(expanded, threads, nullptr);
}

RunResult
run(const ExpandResult& expanded, unsigned threads,
    const std::atomic<bool>* cancel)
{
    RunResult result;
    if (!expanded.ok) {
        result.ok = false;
        result.error = expanded.error;
        return result;
    }
    result.baseline = expanded.baseline;
    result.outcomes.resize(expanded.points.size());
    runIndexed(expanded.points.size(), threads, [&](std::size_t i) {
        if (cancel != nullptr && cancel->load()) {
            result.outcomes[i].ok = false;
            result.outcomes[i].error = "interrupted";
            return;
        }
        result.outcomes[i] = cli::runScenario(expanded.points[i]);
    });
    return result;
}

std::vector<cli::Report>
RunResult::okReports() const
{
    std::vector<cli::Report> reports;
    reports.reserve(outcomes.size());
    for (const cli::RunOutcome& outcome : outcomes)
        if (outcome.ok)
            reports.push_back(outcome.report);
    return reports;
}

std::vector<std::string>
RunResult::rowErrors() const
{
    std::vector<std::string> errors;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].ok)
            continue;
        errors.push_back("point " + std::to_string(i + 1) + "/" +
                         std::to_string(outcomes.size()) + ": " +
                         outcomes[i].error);
    }
    return errors;
}

} // namespace sweep
} // namespace dalorex
