#include "sweep/sweep.hh"

#include "sweep/pool.hh"

namespace dalorex
{
namespace sweep
{

RunResult
run(const Plan& plan, unsigned threads)
{
    return run(expand(plan), threads);
}

RunResult
run(const ExpandResult& expanded, unsigned threads)
{
    RunResult result;
    if (!expanded.ok) {
        result.ok = false;
        result.error = expanded.error;
        return result;
    }
    result.baseline = expanded.baseline;
    result.reports.resize(expanded.points.size());
    runIndexed(expanded.points.size(), threads, [&](std::size_t i) {
        result.reports[i] = cli::runScenario(expanded.points[i]);
    });
    return result;
}

} // namespace sweep
} // namespace dalorex
