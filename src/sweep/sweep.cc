#include "sweep/sweep.hh"

#include <chrono>
#include <thread>

#include "common/parallel.hh"
#include "graph/graphfile.hh"
#include "sweep/pool.hh"

namespace dalorex
{
namespace sweep
{
namespace
{

/** Deterministic backoff jitter: a hash of (seed, row, attempt), so
 *  reruns of the same sweep sleep identically (determinism extends to
 *  the fault path) while distinct rows still decorrelate. */
std::uint64_t
jitterMs(std::uint64_t seed, std::uint64_t row, unsigned attempt,
         std::uint64_t window)
{
    if (window == 0)
        return 0;
    const std::uint64_t words[3] = {seed, row, attempt};
    return hashBytes(words, sizeof words) % window;
}

/** Sleep that notices cancellation: a retry backoff must not hold a
 *  Ctrl-C'd sweep hostage for seconds. */
void
backoffSleep(std::uint64_t ms, const std::atomic<bool>* cancel)
{
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < until) {
        if (cancel != nullptr && cancel->load())
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<std::uint64_t>(ms, 10)));
    }
}

} // namespace

RunResult
run(const Plan& plan, unsigned threads)
{
    return run(expand(plan), threads);
}

RunResult
run(const ExpandResult& expanded, unsigned threads)
{
    return run(expanded, threads,
               static_cast<const std::atomic<bool>*>(nullptr));
}

RunResult
run(const ExpandResult& expanded, unsigned threads,
    const std::atomic<bool>* cancel)
{
    RunPolicy policy;
    policy.cancel = cancel;
    return run(expanded, threads, policy);
}

RunResult
run(const ExpandResult& expanded, unsigned threads,
    const RunPolicy& policy)
{
    RunResult result;
    if (!expanded.ok) {
        result.ok = false;
        result.error = expanded.error;
        return result;
    }
    result.baseline = expanded.baseline;
    result.outcomes.resize(expanded.points.size());
    const std::atomic<bool>* cancel = policy.cancel;
    runIndexed(expanded.points.size(), threads, [&](std::size_t i) {
        if (i < policy.skip.size() && policy.skip[i] != 0)
            return; // resolved by the caller's journal replay
        cli::RunOutcome& outcome = result.outcomes[i];
        if (cancel != nullptr && cancel->load()) {
            outcome.ok = false;
            outcome.error = "interrupted";
            outcome.status = RunStatus::cancelled;
            if (policy.onRow)
                policy.onRow(i, outcome, 0);
            return;
        }

        cli::Options options = expanded.points[i];
        options.deadlineMs = 0; // the policy watchdog owns expiry
        unsigned attempts = 0;
        for (;;) {
            ++attempts;
            RunControl control;
            control.cancel = cancel;
            std::uint64_t token = 0;
            if (policy.rowDeadlineMs > 0)
                token = processDeadlineWatchdog().arm(
                    std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(
                            policy.rowDeadlineMs),
                    &control.expired);
            outcome = cli::runScenario(options, nullptr, &control);
            if (token != 0)
                processDeadlineWatchdog().disarm(token);
            const bool cancelled =
                outcome.status == RunStatus::cancelled ||
                (cancel != nullptr && cancel->load());
            if (outcome.ok || !outcome.transient || cancelled ||
                attempts > policy.retries)
                break;
            const std::uint64_t base = policy.backoffMs
                                       << std::min(attempts - 1, 16u);
            backoffSleep(base + jitterMs(policy.seed, i, attempts,
                                         base / 2 + 1),
                         cancel);
            if (cancel != nullptr && cancel->load()) {
                outcome.ok = false;
                outcome.error = "interrupted";
                outcome.status = RunStatus::cancelled;
                break;
            }
        }
        if (policy.onRow)
            policy.onRow(i, outcome, attempts);
    });
    return result;
}

std::vector<cli::Report>
RunResult::okReports() const
{
    std::vector<cli::Report> reports;
    reports.reserve(outcomes.size());
    for (const cli::RunOutcome& outcome : outcomes)
        if (outcome.ok)
            reports.push_back(outcome.report);
    return reports;
}

std::vector<std::string>
RunResult::rowErrors() const
{
    std::vector<std::string> errors;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].ok)
            continue;
        errors.push_back("point " + std::to_string(i + 1) + "/" +
                         std::to_string(outcomes.size()) + ": " +
                         outcomes[i].error);
    }
    return errors;
}

} // namespace sweep
} // namespace dalorex
