#include "sweep/pool.hh"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace dalorex
{
namespace sweep
{

void
runIndexed(std::size_t n, unsigned threads,
           const std::function<void(std::size_t)>& job)
{
    const std::size_t workers =
        std::min<std::size_t>(std::max(1u, threads), n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            job(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    auto drain = [&] {
        for (std::size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1))
            job(i);
    };
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w)
        pool.emplace_back(drain);
    drain(); // the calling thread is worker 0
    for (std::thread& t : pool)
        t.join();
}

unsigned
defaultWorkerThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace sweep
} // namespace dalorex
