/**
 * @file
 * Aggregation of sweep results into paper-figure tables.
 *
 * Takes the cli::Report of every executed scenario point and derives
 * the columns the paper's figures are built from: speedup versus a
 * named baseline grid shape (within the scenario group that shares
 * every non-grid axis value), strong-scaling parallel efficiency, and
 * energy per processed edge. Rows render uniformly as an aligned text
 * table, RFC-4180 CSV, or JSON-lines — one flat object per row — so
 * the `dalorex sweep` subcommand and every bench/ figure driver share
 * one schema instead of ad-hoc printing.
 */

#ifndef DALOREX_SWEEP_AGGREGATE_HH
#define DALOREX_SWEEP_AGGREGATE_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "sweep/plan.hh"

namespace dalorex
{
namespace sweep
{

/** One aggregated result row: the raw report plus derived columns. */
struct Row
{
    cli::Report report;
    /** baseline seconds / this row's seconds; 1.0 on the baseline. */
    double speedup = 1.0;
    /** speedup / (tiles / baseline tiles): strong-scaling efficiency. */
    double parallelEff = 1.0;
    /** Total joules / edges processed. */
    double energyPerEdgeJ = 0.0;
    /** False when the row's group has no baseline shape (skip mode):
     *  speedup/parallelEff render as "-" / null. */
    bool hasBaseline = true;
    bool isBaseline = false;
};

/** What to do when a scenario group lacks the baseline grid shape. */
enum class MissingBaseline
{
    error, //!< fail aggregation with a one-line diagnostic
    skip,  //!< leave the group's speedup columns empty
};

/** Outcome of aggregation: derived rows, or a diagnostic. */
struct AggregateResult
{
    std::vector<Row> rows; //!< input order preserved
    bool ok = true;
    std::string error; //!< one line, set when !ok
};

/**
 * Derive speedup/efficiency/energy columns. Rows group by every
 * scenario axis except the grid shape; the group's baseline is its
 * first row whose machine is `baseline`.
 */
AggregateResult
aggregate(const std::vector<cli::Report>& reports,
          const GridShape& baseline,
          MissingBaseline missing = MissingBaseline::error);

/** Render rows with the standard sweep schema (shared by toCsv). */
Table toTable(const std::vector<Row>& rows);

/** Render rows as JSON-lines: one flat JSON object per row. */
std::string toJsonl(const std::vector<Row>& rows);

/**
 * Write `table` as `dir/name.csv` when `dir` is non-empty (the bench
 * drivers' `--csv DIR` mirror; replaces bench_util::maybeWriteCsv).
 */
void writeCsvIfEnabled(const std::string& dir, const Table& table,
                       const std::string& name);

} // namespace sweep
} // namespace dalorex

#endif // DALOREX_SWEEP_AGGREGATE_HH
