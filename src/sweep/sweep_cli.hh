/**
 * @file
 * The `dalorex sweep` subcommand: grid-spec flags (comma-separated
 * axis values) to a Plan, parallel execution, and aggregate output as
 * an aligned table, CSV and/or JSON-lines.
 *
 * Parsing and running are split from the dispatcher so tests can
 * drive them in-process, mirroring cli::parseArgs / cli::cliMain.
 */

#ifndef DALOREX_SWEEP_SWEEP_CLI_HH
#define DALOREX_SWEEP_SWEEP_CLI_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "sweep/plan.hh"

namespace dalorex
{
namespace sweep
{

/** Everything `dalorex sweep` argv determines. */
struct SweepOptions
{
    Plan plan;
    unsigned threads = 0;  //!< 0 = host core count
    /** `--via SOCKET`: submit the expanded points to a running
     *  `dalorex serve` daemon instead of executing them in-process.
     *  Output is byte-identical either way ("" = run locally). */
    std::string via;
    std::string csvPath;   //!< write aggregate CSV here ("" = off)
    std::string jsonlPath; //!< write JSONL rows here ("" = off)
    /** `--journal PATH`: append a checksummed record per row as it
     *  resolves, so a killed sweep can resume ("" = off). */
    std::string journalPath;
    /** `--resume PATH`: replay a journal from an earlier (killed or
     *  partial) run of the *same plan*; verified-complete rows are
     *  not re-run and the merged output is byte-identical to an
     *  uninterrupted sweep ("" = off). */
    std::string resumePath;
    /** Extra attempts per transiently failing row (I/O, timeout). */
    unsigned retries = 0;
    /** Base backoff before a retry; doubles per attempt. Keep above
     *  the dataset cache's negative-entry TTL (200 ms). */
    std::uint64_t retryBackoffMs = 250;
    /** Per-row wall-clock budget; expired rows fail with status
     *  timeout instead of hanging the sweep (0 = none). */
    std::uint64_t rowDeadlineMs = 0;
    bool json = false;     //!< print JSONL to stdout, not the table
    bool quick = true;     //!< stand-in scale for named datasets
    bool help = false;
    bool listDatasets = false;
    bool listKernels = false;
};

/** Outcome of parsing sweep argv: options, or a diagnostic. */
struct SweepParseResult
{
    SweepOptions options;
    bool ok = true;
    std::string error; //!< set when !ok
};

/**
 * Parse `dalorex sweep` argv (argv[0], the subcommand word, is
 * skipped). Bad axis values, out-of-range --threads and malformed
 * grids yield ok == false with a one-line error.
 */
SweepParseResult parseSweepArgs(int argc, const char* const* argv);

/** The `dalorex sweep --help` text. */
std::string sweepUsageText();

/**
 * Full subcommand behavior: parse, expand, run on the worker pool,
 * aggregate, render. Diagnostics go to `err`. Returns the process
 * exit code: 0 ok, 2 usage/plan error, 1 when individual scenario
 * rows failed (their one-line errors go to `err`; the surviving rows
 * still render).
 */
int sweepMain(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err);

} // namespace sweep
} // namespace dalorex

#endif // DALOREX_SWEEP_SWEEP_CLI_HH
