/**
 * @file
 * The sweep orchestrator: expand a declarative Plan and execute every
 * scenario point on a fixed-size worker pool.
 *
 * Each worker runs one complete engine instance per point (dataset
 * build, kernel setup, Machine, energy model) with no shared mutable
 * state; results land in their expansion-order slot, so the report
 * vector — and everything rendered from it — is byte-identical for
 * any worker count.
 */

#ifndef DALOREX_SWEEP_SWEEP_HH
#define DALOREX_SWEEP_SWEEP_HH

#include <atomic>
#include <string>
#include <vector>

#include "sweep/plan.hh"

namespace dalorex
{
namespace sweep
{

/**
 * Outcome of running a plan: one outcome per point, or a plan-level
 * diagnostic. A point that fails (impossible scenario, reference
 * mismatch under validate) fails only its own row — `ok` stays true,
 * the row's RunOutcome carries the one-line error, and the remaining
 * points still run.
 */
struct RunResult
{
    std::vector<cli::RunOutcome> outcomes; //!< expansion order
    GridShape baseline{};                  //!< resolved baseline shape
    bool ok = true;    //!< plan expanded (not: every row succeeded)
    std::string error; //!< one line, set when !ok

    /** Reports of the successful rows, expansion order preserved. */
    std::vector<cli::Report> okReports() const;
    /** One rendered line per failed row ("point 3/12: ..."). */
    std::vector<std::string> rowErrors() const;
    /** Whether every row ran and validated. */
    bool allRowsOk() const { return ok && rowErrors().empty(); }
};

/**
 * Expand `plan` and run every point on up to `threads` workers.
 * Expansion errors (empty axis, unknown dataset, missing baseline)
 * return ok == false without running anything.
 */
RunResult run(const Plan& plan, unsigned threads);

/** Run an already-expanded plan (also propagates its !ok state). */
RunResult run(const ExpandResult& expanded, unsigned threads);

/**
 * Same, with cooperative cancellation: once `*cancel` is true (a
 * SIGINT handler sets it), points not yet started fail their own row
 * with "interrupted" instead of running, while in-flight points
 * finish normally — the caller flushes the completed rows as partial
 * output. nullptr behaves like the overload above.
 */
RunResult run(const ExpandResult& expanded, unsigned threads,
              const std::atomic<bool>* cancel);

} // namespace sweep
} // namespace dalorex

#endif // DALOREX_SWEEP_SWEEP_HH
