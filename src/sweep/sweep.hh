/**
 * @file
 * The sweep orchestrator: expand a declarative Plan and execute every
 * scenario point on a fixed-size worker pool.
 *
 * Each worker runs one complete engine instance per point (dataset
 * build, kernel setup, Machine, energy model) with no shared mutable
 * state; results land in their expansion-order slot, so the report
 * vector — and everything rendered from it — is byte-identical for
 * any worker count.
 */

#ifndef DALOREX_SWEEP_SWEEP_HH
#define DALOREX_SWEEP_SWEEP_HH

#include <string>
#include <vector>

#include "sweep/plan.hh"

namespace dalorex
{
namespace sweep
{

/** Outcome of running a plan: one report per point, or a diagnostic. */
struct RunResult
{
    std::vector<cli::Report> reports; //!< expansion order
    GridShape baseline{};             //!< resolved baseline shape
    bool ok = true;
    std::string error; //!< one line, set when !ok
};

/**
 * Expand `plan` and run every point on up to `threads` workers.
 * Expansion errors (empty axis, unknown dataset, missing baseline)
 * return ok == false without running anything.
 */
RunResult run(const Plan& plan, unsigned threads);

/** Run an already-expanded plan (also propagates its !ok state). */
RunResult run(const ExpandResult& expanded, unsigned threads);

} // namespace sweep
} // namespace dalorex

#endif // DALOREX_SWEEP_SWEEP_HH
