/**
 * @file
 * The sweep orchestrator: expand a declarative Plan and execute every
 * scenario point on a fixed-size worker pool.
 *
 * Each worker runs one complete engine instance per point (dataset
 * build, kernel setup, Machine, energy model) with no shared mutable
 * state; results land in their expansion-order slot, so the report
 * vector — and everything rendered from it — is byte-identical for
 * any worker count.
 */

#ifndef DALOREX_SWEEP_SWEEP_HH
#define DALOREX_SWEEP_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sweep/plan.hh"

namespace dalorex
{
namespace sweep
{

/**
 * Outcome of running a plan: one outcome per point, or a plan-level
 * diagnostic. A point that fails (impossible scenario, reference
 * mismatch under validate) fails only its own row — `ok` stays true,
 * the row's RunOutcome carries the one-line error, and the remaining
 * points still run.
 */
struct RunResult
{
    std::vector<cli::RunOutcome> outcomes; //!< expansion order
    GridShape baseline{};                  //!< resolved baseline shape
    bool ok = true;    //!< plan expanded (not: every row succeeded)
    std::string error; //!< one line, set when !ok

    /** Reports of the successful rows, expansion order preserved. */
    std::vector<cli::Report> okReports() const;
    /** One rendered line per failed row ("point 3/12: ..."). */
    std::vector<std::string> rowErrors() const;
    /** Whether every row ran and validated. */
    bool allRowsOk() const { return ok && rowErrors().empty(); }
};

/**
 * Expand `plan` and run every point on up to `threads` workers.
 * Expansion errors (empty axis, unknown dataset, missing baseline)
 * return ok == false without running anything.
 */
RunResult run(const Plan& plan, unsigned threads);

/** Run an already-expanded plan (also propagates its !ok state). */
RunResult run(const ExpandResult& expanded, unsigned threads);

/**
 * Same, with cooperative cancellation: once `*cancel` is true (a
 * SIGINT handler sets it), points not yet started fail their own row
 * with "interrupted" instead of running, while in-flight points are
 * unwound by the engine at the next cycle boundary — the caller
 * flushes the completed rows as partial output. nullptr behaves like
 * the overload above.
 */
RunResult run(const ExpandResult& expanded, unsigned threads,
              const std::atomic<bool>* cancel);

/**
 * Fault policy for one sweep execution: cancellation, per-row
 * deadlines, retry/backoff for transient failures, resume skip mask
 * and a per-row completion hook (the journal writer).
 */
struct RunPolicy
{
    /** Cooperative cancel flag (SIGINT); also polled mid-run by the
     *  engine's serial tail, so in-flight rows unwind promptly. */
    const std::atomic<bool>* cancel = nullptr;
    /** Extra attempts for a row whose failure is transient (dataset
     *  file I/O, deadline expiry). 0 = fail on first error. */
    unsigned retries = 0;
    /** Backoff before attempt k (1-based retry): backoffMs << (k-1)
     *  plus a deterministic jitter derived from (seed, row, k). Keep
     *  it above the dataset cache's negative-entry TTL so a retry
     *  reaches the filesystem, not the cached failure. */
    std::uint64_t backoffMs = 250;
    std::uint64_t seed = 1; //!< jitter seed (determinism, not entropy)
    /** Per-row wall-clock budget; an expired row unwinds with
     *  RunStatus::timeout (0 = none). Counted per attempt. */
    std::uint64_t rowDeadlineMs = 0;
    /** Resume mask: skip[i] true = row i is already resolved and must
     *  not run (the caller prefills outcomes[i]). Empty = run all. */
    std::vector<char> skip;
    /** Called from the worker thread right after row `row` resolves
     *  (any status, but not for skip-masked rows); `attempts` counts
     *  runs performed including retries. Must be thread-safe. */
    std::function<void(std::size_t row, const cli::RunOutcome& outcome,
                       unsigned attempts)>
        onRow;
};

/**
 * Run under a fault policy. Skip-masked rows are never executed and
 * onRow is not called for them; their outcome slots come back
 * default-constructed for the caller to overwrite with its replayed
 * journal records, which is what makes a resumed sweep aggregate
 * byte-identically to an uninterrupted one.
 */
RunResult run(const ExpandResult& expanded, unsigned threads,
              const RunPolicy& policy);

} // namespace sweep
} // namespace dalorex

#endif // DALOREX_SWEEP_SWEEP_HH
