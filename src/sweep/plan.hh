/**
 * @file
 * Declarative scenario grids for the sweep orchestrator.
 *
 * A Plan names one value set per scenario axis (kernels, datasets,
 * machine shapes, topology/policy/barrier knobs); expansion takes the
 * cartesian product into concrete cli::Options, one per point, in a
 * deterministic kernel-major order. All user errors — an empty axis,
 * an unknown dataset name, a speedup baseline that is not on the grid
 * axis — surface as a one-line diagnostic at expansion time, before
 * any worker thread runs, so the parallel phase only ever sees
 * pre-validated scenarios.
 */

#ifndef DALOREX_SWEEP_PLAN_HH
#define DALOREX_SWEEP_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cli/cli.hh"

namespace dalorex
{
namespace sweep
{

/** One machine shape on the grid axis ("8x8"). */
struct GridShape
{
    std::uint32_t width = 0;
    std::uint32_t height = 0;

    std::uint32_t tiles() const { return width * height; }
    bool
    operator==(const GridShape& other) const
    {
        return width == other.width && height == other.height;
    }
};

/** Parse "WxH" (e.g. "16x16"); false on malformed text. */
bool parseGridShape(const std::string& text, GridShape& out);

/** Render a shape back as "WxH". */
std::string toString(const GridShape& shape);

/** One dataset axis point: a named dataset or an RMAT scale. */
struct DatasetSpec
{
    /** Named dataset ("amazon", "rmat14", ...); empty = RMAT at
     *  `scale`. */
    std::string name;
    /** Vertex scale override for named stand-ins (0 = native size);
     *  the RMAT scale when `name` is empty. */
    unsigned scale = 0;

    bool
    operator==(const DatasetSpec& other) const
    {
        return name == other.name && scale == other.scale;
    }
};

/**
 * A declarative scenario grid. Every axis must be non-empty at
 * expansion time; each axis is deduplicated order-preservingly, so
 * repeated points collapse instead of re-running.
 */
struct Plan
{
    /** Registry handles; `allKernels()` enumerates every registered
     *  kernel (the `--kernel all` axis). */
    std::vector<const KernelInfo*> kernels;
    std::vector<DatasetSpec> datasets;
    std::vector<GridShape> grids;
    std::vector<NocTopology> topologies{NocTopology::torus};
    std::vector<SchedPolicy> policies{SchedPolicy::trafficAware};
    std::vector<Distribution> distributions{Distribution::lowOrder};
    std::vector<bool> barriers{false};
    /**
     * Engine worker threads per point (`--engine-threads N,...`). An
     * axis like any other so scaling studies can sweep it — but stats
     * are byte-identical across its values by engine contract; only
     * wall-clock changes.
     */
    std::vector<unsigned> engineThreads{1};

    /** Cycle-stepping scan mode applied to every point (simulator
     *  only; results are byte-identical for both — the `full` oracle
     *  exists for determinism checks and scan-cost benchmarks). */
    EngineScan engineScan = EngineScan::active;
    /** Phase-barrier implementation applied to every point (simulator
     *  only; results are byte-identical for both — the `central`
     *  std::barrier oracle exists for determinism checks and barrier
     *  cost benchmarks). */
    EngineBarrier engineBarrier = EngineBarrier::tree;
    /** Occupancy-driven shard rebalancing applied to every point
     *  (simulator only; byte-identical results either way). */
    bool engineRebalance = false;
    /** Ruche hop distance applied to torus-ruche points. */
    std::uint32_t rucheFactor = 2;
    /** Extra cycles per task invocation (ablation knob). */
    std::uint32_t invokeOverhead = 0;
    /** Kernel parameter overrides (`--param damping=0.9,...`); keys
     *  a kernel declares unused are skipped per point. */
    std::vector<ParamOverride> params;
    /** Per-tile scratchpad provision in bytes (0 = size to usage). */
    std::uint64_t scratchpadProvisionBytes = 0;
    std::uint64_t seed = 1;
    /** Validate every point against the sequential reference. */
    bool validate = false;

    /**
     * Grid shape of the speedup baseline row within each scenario
     * group; {0, 0} means the first shape on the grid axis.
     */
    GridShape baseline{};
};

/** Outcome of expanding a Plan: scenario points, or a diagnostic. */
struct ExpandResult
{
    std::vector<cli::Options> points; //!< kernel-major order
    GridShape baseline{};             //!< resolved baseline shape
    bool ok = true;
    std::string error; //!< one line, set when !ok
};

/**
 * Validate `plan` and expand it into concrete scenario options.
 * Never crashes on malformed plans: empty axes, out-of-range shapes,
 * unknown dataset names and a baseline missing from the grid axis all
 * yield ok == false with a one-line error.
 */
ExpandResult expand(const Plan& plan);

} // namespace sweep
} // namespace dalorex

#endif // DALOREX_SWEEP_PLAN_HH
