#include "sweep/plan.hh"

#include <algorithm>
#include <cctype>

#include "common/text.hh"
#include "graph/datasets.hh"

namespace dalorex
{
namespace sweep
{
namespace
{

/** Order-preserving dedup, so duplicate axis points collapse. */
template <typename T>
std::vector<T>
unique(const std::vector<T>& xs)
{
    std::vector<T> out;
    for (const T& x : xs)
        if (std::find(out.begin(), out.end(), x) == out.end())
            out.push_back(x);
    return out;
}

ExpandResult
fail(const std::string& message)
{
    ExpandResult result;
    result.ok = false;
    result.error = message;
    return result;
}

} // namespace

bool
parseGridShape(const std::string& text, GridShape& out)
{
    const std::size_t x = text.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= text.size())
        return false;
    const auto digits = [](const std::string& s) {
        return !s.empty() &&
               std::all_of(s.begin(), s.end(), [](unsigned char c) {
                   return std::isdigit(c);
               });
    };
    const std::string w = text.substr(0, x);
    const std::string h = text.substr(x + 1);
    if (!digits(w) || !digits(h) || w.size() > 4 || h.size() > 4)
        return false;
    out.width = static_cast<std::uint32_t>(std::stoul(w));
    out.height = static_cast<std::uint32_t>(std::stoul(h));
    return out.width > 0 && out.height > 0;
}

std::string
toString(const GridShape& shape)
{
    return std::to_string(shape.width) + "x" +
           std::to_string(shape.height);
}

ExpandResult
expand(const Plan& plan)
{
    const std::vector<const KernelInfo*> kernels =
        unique(plan.kernels);
    const std::vector<DatasetSpec> datasets = unique(plan.datasets);
    const std::vector<GridShape> grids = unique(plan.grids);
    const std::vector<NocTopology> topologies =
        unique(plan.topologies);
    const std::vector<SchedPolicy> policies = unique(plan.policies);
    const std::vector<Distribution> distributions =
        unique(plan.distributions);
    const std::vector<bool> barriers = unique(plan.barriers);
    const std::vector<unsigned> engine_threads =
        unique(plan.engineThreads);

    if (kernels.empty())
        return fail("kernel axis is empty");
    for (const KernelInfo* kernel : kernels) {
        if (kernel == nullptr)
            return fail("kernel axis contains a null kernel handle");
    }
    if (datasets.empty())
        return fail("dataset axis is empty");
    if (grids.empty())
        return fail("grid axis is empty");
    if (topologies.empty())
        return fail("topology axis is empty");
    if (policies.empty())
        return fail("policy axis is empty");
    if (distributions.empty())
        return fail("distribution axis is empty");
    if (barriers.empty())
        return fail("barrier axis is empty");
    if (engine_threads.empty())
        return fail("engine-threads axis is empty");
    for (const unsigned threads : engine_threads) {
        if (threads < 1 || threads > 256)
            return fail("engine-threads out of [1,256]: " +
                        std::to_string(threads));
    }

    for (const GridShape& grid : grids) {
        if (grid.width < 1 || grid.width > 1024 || grid.height < 1 ||
            grid.height > 1024)
            return fail("grid shape out of [1,1024]x[1,1024]: " +
                        toString(grid));
    }
    for (const DatasetSpec& ds : datasets) {
        if (ds.name.empty()) {
            if (ds.scale < 4 || ds.scale > 26)
                return fail("RMAT scale out of [4,26]: " +
                            std::to_string(ds.scale));
        } else {
            if (!knownDataset(ds.name))
                return fail("unknown dataset: " + ds.name +
                            " (try --list-datasets)");
            if (ds.scale != 0) {
                if (toLower(ds.name).rfind("rmat", 0) == 0)
                    return fail(
                        "rmatN datasets carry their scale in the "
                        "name; drop @" + std::to_string(ds.scale) +
                        " from " + ds.name);
                if (isFileDataset(ds.name))
                    return fail(
                        "file: datasets are fixed size; drop @" +
                        std::to_string(ds.scale) + " from " +
                        ds.name);
                if (ds.scale < 4 || ds.scale > 31)
                    return fail("dataset scale out of [4,31]: " +
                                std::to_string(ds.scale));
            }
        }
    }

    ExpandResult result;
    result.baseline =
        plan.baseline.tiles() > 0 ? plan.baseline : grids.front();
    if (std::find(grids.begin(), grids.end(), result.baseline) ==
        grids.end())
        return fail("baseline grid " + toString(result.baseline) +
                    " is not on the grid axis");

    for (const KernelInfo* kernel : kernels)
      for (const DatasetSpec& ds : datasets)
        for (const GridShape& grid : grids)
          for (const NocTopology topology : topologies)
            for (const SchedPolicy policy : policies)
              for (const Distribution distribution : distributions)
                for (const bool barrier : barriers)
                  for (const unsigned threads : engine_threads) {
                      cli::Options o;
                      o.kernel = kernel;
                      o.dataset = ds.name;
                      if (ds.name.empty())
                          o.scale = ds.scale;
                      else
                          o.datasetScale = ds.scale;
                      o.seed = plan.seed;
                      o.validate = plan.validate;
                      o.params = plan.params;
                      o.machine.width = grid.width;
                      o.machine.height = grid.height;
                      o.machine.topology = topology;
                      o.machine.rucheFactor =
                          topology == NocTopology::torusRuche
                              ? std::max<std::uint32_t>(
                                    2, plan.rucheFactor)
                              : 0;
                      o.machine.policy = policy;
                      o.machine.distribution = distribution;
                      o.machine.barrier = barrier;
                      // Per-point clamp mirroring the CLI: a grid
                      // with fewer tiles than the threads axis value
                      // caps the crew at one worker per shard.
                      o.machine.engineThreads =
                          std::min(threads, grid.tiles());
                      o.machine.engineScan = plan.engineScan;
                      o.machine.engineBarrier = plan.engineBarrier;
                      o.machine.engineRebalance =
                          plan.engineRebalance;
                      o.machine.invokeOverhead = plan.invokeOverhead;
                      o.machine.scratchpadProvisionBytes =
                          plan.scratchpadProvisionBytes;
                      result.points.push_back(std::move(o));
                  }
    return result;
}

} // namespace sweep
} // namespace dalorex
