#include "sweep/aggregate.hh"
#include "common/text.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

namespace dalorex
{
namespace sweep
{
namespace
{

/** Dataset label: the scale override distinguishes e.g. WK@14 from
 *  WK@16 (the generated name alone is scale-blind). */
std::string
datasetLabel(const cli::Report& report)
{
    std::string label = report.datasetName;
    if (report.options.datasetScale > 0)
        label += "@" + std::to_string(report.options.datasetScale);
    return label;
}

/** Every axis except the grid shape: rows sharing it form a group. */
std::string
groupKey(const cli::Report& report)
{
    const cli::Options& o = report.options;
    std::ostringstream key;
    key << o.kernel->name << '|' << datasetLabel(report) << '|'
        << o.seed << '|' << toString(o.machine.topology) << '|'
        << o.machine.rucheFactor << '|' << toString(o.machine.policy)
        << '|' << toString(o.machine.distribution) << '|'
        << o.machine.barrier << '|' << o.machine.invokeOverhead << '|'
        << o.machine.scratchpadProvisionBytes << '|'
        << o.machine.engineThreads;
    return key.str();
}

GridShape
shapeOf(const cli::Report& report)
{
    return {report.options.machine.width,
            report.options.machine.height};
}

std::string
describeGroup(const cli::Report& report)
{
    const cli::Options& o = report.options;
    return o.kernel->display + " on " + datasetLabel(report) + ", " +
           toString(o.machine.topology) + "/" +
           toString(o.machine.policy);
}

} // namespace

AggregateResult
aggregate(const std::vector<cli::Report>& reports,
          const GridShape& baseline, MissingBaseline missing)
{
    AggregateResult result;

    // First matching row per group becomes that group's baseline.
    std::map<std::string, std::size_t> baselineIndex;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        if (!(shapeOf(reports[i]) == baseline))
            continue;
        baselineIndex.emplace(groupKey(reports[i]), i);
    }

    for (const cli::Report& report : reports) {
        Row row;
        row.report = report;
        row.energyPerEdgeJ =
            report.stats.edgesProcessed > 0
                ? report.energy.totalJ() /
                      static_cast<double>(report.stats.edgesProcessed)
                : 0.0;

        const auto base = baselineIndex.find(groupKey(report));
        if (base == baselineIndex.end()) {
            if (missing == MissingBaseline::error) {
                result.ok = false;
                result.error = "no baseline row (" +
                               toString(baseline) + ") for " +
                               describeGroup(report);
                result.rows.clear();
                return result;
            }
            row.hasBaseline = false;
            row.speedup = 0.0;
            row.parallelEff = 0.0;
        } else {
            const cli::Report& ref = reports[base->second];
            row.isBaseline = shapeOf(report) == baseline;
            row.speedup = report.seconds > 0.0
                              ? ref.seconds / report.seconds
                              : 0.0;
            const double tileRatio =
                static_cast<double>(
                    report.options.machine.numTiles()) /
                static_cast<double>(ref.options.machine.numTiles());
            row.parallelEff =
                tileRatio > 0.0 ? row.speedup / tileRatio : 0.0;
        }
        result.rows.push_back(std::move(row));
    }
    return result;
}

Table
toTable(const std::vector<Row>& rows)
{
    Table table({"kernel",        "dataset",     "vertices",
                 "edges",         "tiles",       "grid",
                 "topology",      "policy",      "distribution",
                 "barrier",       "eng_thr",     "cycles",
                 "epochs",
                 "seconds",       "edges_proc",  "pu_util",
                 "edges/s",       "ops/s",       "mem_bw_B/s",
                 "KB/tile",       "verts/tile",  "energy_J",
                 "logic_pct",     "memory_pct",  "network_pct",
                 "energy/edge_J", "speedup",     "par_eff"});
    for (const Row& row : rows) {
        const cli::Report& r = row.report;
        const cli::Options& o = r.options;
        const std::uint32_t tiles = o.machine.numTiles();
        table.addRow(
            {o.kernel->name, datasetLabel(r),
             std::to_string(r.numVertices),
             std::to_string(r.numEdges), std::to_string(tiles),
             toString(shapeOf(r)), toString(o.machine.topology),
             toString(o.machine.policy),
             toString(o.machine.distribution),
             o.machine.barrier ? "on" : "off",
             std::to_string(std::max(1u, o.machine.engineThreads)),
             std::to_string(r.stats.cycles),
             std::to_string(r.stats.epochs), Table::sci(r.seconds, 3),
             std::to_string(r.stats.edgesProcessed),
             Table::fmt(r.stats.utilization(), 3),
             Table::sci(static_cast<double>(r.stats.edgesProcessed) /
                            r.seconds,
                        3),
             Table::sci(static_cast<double>(r.stats.puOps) /
                            r.seconds,
                        3),
             Table::sci(r.bandwidthBytesPerSec, 3),
             Table::fmt(static_cast<double>(
                            r.stats.scratchpadBytesMax) /
                            1024.0,
                        1),
             std::to_string(r.numVertices / tiles),
             Table::sci(r.energy.totalJ(), 3),
             Table::fmt(r.energy.logicPct(), 1),
             Table::fmt(r.energy.memoryPct(), 1),
             Table::fmt(r.energy.networkPct(), 1),
             Table::sci(row.energyPerEdgeJ, 3),
             row.hasBaseline ? Table::fmt(row.speedup, 3) : "-",
             row.hasBaseline ? Table::fmt(row.parallelEff, 3) : "-"});
    }
    return table;
}

std::string
toJsonl(const std::vector<Row>& rows)
{
    std::ostringstream out;
    for (const Row& row : rows) {
        const cli::Report& r = row.report;
        const cli::Options& o = r.options;
        const std::uint32_t tiles = o.machine.numTiles();
        out << "{"
            << "\"kernel\":\"" << o.kernel->name << "\","
            << "\"dataset\":\"" << datasetLabel(r) << "\","
            << "\"vertices\":" << r.numVertices << ","
            << "\"edges\":" << r.numEdges << ","
            << "\"width\":" << o.machine.width << ","
            << "\"height\":" << o.machine.height << ","
            << "\"tiles\":" << tiles << ","
            << "\"topology\":\"" << toString(o.machine.topology)
            << "\","
            << "\"policy\":\"" << toString(o.machine.policy) << "\","
            << "\"distribution\":\""
            << toString(o.machine.distribution) << "\","
            << "\"barrier\":"
            << (o.machine.barrier ? "true" : "false") << ","
            << "\"engine_threads\":"
            << std::max(1u, o.machine.engineThreads) << ","
            << "\"seed\":" << o.seed << ","
            << "\"cycles\":" << r.stats.cycles << ","
            << "\"epochs\":" << r.stats.epochs << ","
            << "\"seconds\":" << Table::num(r.seconds) << ","
            << "\"edges_processed\":" << r.stats.edgesProcessed << ","
            << "\"pu_utilization\":"
            << Table::num(r.stats.utilization()) << ","
            << "\"edges_per_sec\":"
            << Table::num(
                   static_cast<double>(r.stats.edgesProcessed) /
                   r.seconds)
            << ","
            << "\"ops_per_sec\":"
            << Table::num(static_cast<double>(r.stats.puOps) /
                          r.seconds)
            << ","
            << "\"mem_bw_bytes_per_sec\":"
            << Table::num(r.bandwidthBytesPerSec) << ","
            << "\"kb_per_tile\":"
            << Table::num(
                   static_cast<double>(r.stats.scratchpadBytesMax) /
                   1024.0)
            << ","
            << "\"vertices_per_tile\":" << (r.numVertices / tiles)
            << ","
            << "\"energy_j\":" << Table::num(r.energy.totalJ()) << ","
            << "\"logic_pct\":" << Table::num(r.energy.logicPct())
            << ","
            << "\"memory_pct\":" << Table::num(r.energy.memoryPct())
            << ","
            << "\"network_pct\":" << Table::num(r.energy.networkPct())
            << ","
            << "\"energy_per_edge_j\":"
            << Table::num(row.energyPerEdgeJ) << ","
            << "\"speedup\":"
            << (row.hasBaseline ? Table::num(row.speedup) : "null")
            << ","
            << "\"parallel_efficiency\":"
            << (row.hasBaseline ? Table::num(row.parallelEff)
                                : "null")
            << ","
            << "\"is_baseline\":" << (row.isBaseline ? "true" : "false")
            << ","
            << "\"validated\":" << (r.validated ? "true" : "false")
            << "}\n";
    }
    return out.str();
}

void
writeCsvIfEnabled(const std::string& dir, const Table& table,
                  const std::string& name)
{
    if (dir.empty())
        return;
    table.writeCsv(dir + "/" + name + ".csv");
}

} // namespace sweep
} // namespace dalorex
