/**
 * @file
 * Compatibility shim: the worker-pool primitives moved down to
 * common/parallel.hh so the cycle engine (src/sim) and the sweep
 * orchestrator share one thread abstraction — a sweep's `--threads`
 * budget splits into `--engine-threads` per engine times the number
 * of sweep workers, all drawn from the same machinery.
 */

#ifndef DALOREX_SWEEP_POOL_HH
#define DALOREX_SWEEP_POOL_HH

#include "common/parallel.hh"

namespace dalorex
{
namespace sweep
{

using dalorex::defaultWorkerThreads;
using dalorex::runIndexed;

} // namespace sweep
} // namespace dalorex

#endif // DALOREX_SWEEP_POOL_HH
