/**
 * @file
 * A fixed-size worker pool for embarrassingly parallel index spaces.
 *
 * Workers pull indices from a shared atomic counter and each invokes
 * the job on its own stack — one engine instance per worker, no shared
 * mutable state — so results written into pre-sized slot `i` are
 * identical regardless of the thread count or scheduling order.
 */

#ifndef DALOREX_SWEEP_POOL_HH
#define DALOREX_SWEEP_POOL_HH

#include <cstddef>
#include <functional>

namespace dalorex
{
namespace sweep
{

/**
 * Invoke `job(i)` for every i in [0, n) on up to `threads` workers.
 * threads <= 1 (or n <= 1) runs inline on the calling thread. Blocks
 * until all jobs finish.
 */
void runIndexed(std::size_t n, unsigned threads,
                const std::function<void(std::size_t)>& job);

/** The host core count (>= 1): the default worker-pool size. */
unsigned defaultWorkerThreads();

} // namespace sweep
} // namespace dalorex

#endif // DALOREX_SWEEP_POOL_HH
