#include "sweep/sweep_cli.hh"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <fstream>
#include <ostream>
#include <vector>

#include "common/journal.hh"
#include "common/logging.hh"
#include "common/text.hh"
#include "graph/dataset_cache.hh"
#include "graph/datasets.hh"
#include "graph/graphfile.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "sweep/aggregate.hh"
#include "sweep/pool.hh"
#include "sweep/sweep.hh"

namespace dalorex
{
namespace sweep
{
namespace
{

/** Set by the SIGINT handler while a sweep is executing. */
std::atomic<bool> interrupted{false};

void
onInterrupt(int)
{
    interrupted.store(true);
}

/**
 * Install the SIGINT handler for the run phase and restore the old
 * one on destruction. No SA_RESTART: the serve client's blocked
 * reads must return EINTR so a ^C flushes partial rows promptly.
 */
struct InterruptGuard
{
    struct sigaction old{};

    InterruptGuard()
    {
        interrupted.store(false);
        struct sigaction sa{};
        sa.sa_handler = onInterrupt;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = 0;
        sigaction(SIGINT, &sa, &old);
    }

    ~InterruptGuard() { sigaction(SIGINT, &old, nullptr); }
};

std::vector<std::string>
splitCommas(const std::string& text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        if (comma == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

SweepParseResult
fail(const std::string& message)
{
    SweepParseResult result;
    result.ok = false;
    result.error = message;
    return result;
}

/** A --dataset entry before quick/full default scales apply. */
struct RawDataset
{
    std::string name;
    unsigned scale = 0; //!< explicit NAME@SCALE (0 = unset)
};

} // namespace

SweepParseResult
parseSweepArgs(int argc, const char* const* argv)
{
    SweepParseResult result;
    SweepOptions& o = result.options;
    std::vector<RawDataset> rawDatasets;
    std::vector<unsigned> rmatScales;
    // Axes with non-empty Plan defaults drop them on the flag's first
    // occurrence; every repeated flag then appends, like the others.
    bool sawTopology = false;
    bool sawPolicy = false;
    bool sawDistribution = false;
    bool sawEngineThreads = false;

    auto needsValue = [](const std::string& flag) {
        static const std::vector<std::string> valued = {
            "--kernel",   "--dataset",      "--scale",
            "--grid-size", "--topology",    "--policy",
            "--distribution", "--barrier",  "--baseline",
            "--ruche-factor", "--invoke-overhead", "--seed",
            "--pagerank-iters", "--param",  "--engine-threads",
            "--engine-scan", "--engine-barrier", "--threads",
            "--csv", "--jsonl", "--via",
            "--journal", "--resume", "--retries",
            "--retry-backoff-ms", "--row-deadline-ms",
        };
        return std::find(valued.begin(), valued.end(), flag) !=
               valued.end();
    };

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        std::string value;
        if (needsValue(flag)) {
            if (i + 1 >= argc)
                return fail(flag + " needs a value");
            value = argv[++i];
        }

        if (flag == "--help" || flag == "-h") {
            o.help = true;
        } else if (flag == "--list-datasets") {
            o.listDatasets = true;
        } else if (flag == "--list-kernels") {
            o.listKernels = true;
        } else if (flag == "--kernel") {
            for (const std::string& item : splitCommas(value)) {
                if (toLower(item) == "all") {
                    for (const KernelInfo* k : allKernels())
                        o.plan.kernels.push_back(k);
                    continue;
                }
                const KernelInfo* kernel = nullptr;
                if (!cli::parseKernel(item, kernel))
                    return fail(
                        "unknown kernel: " + item + " (" +
                        KernelRegistry::instance().namesText() +
                        "|all)");
                o.plan.kernels.push_back(kernel);
            }
        } else if (flag == "--dataset") {
            for (const std::string& item : splitCommas(value)) {
                RawDataset raw;
                // file: names are paths, which may contain '@';
                // their size is fixed anyway, so no @SCALE suffix.
                const std::size_t at = isFileDataset(item)
                                           ? std::string::npos
                                           : item.find('@');
                raw.name = item.substr(0, at);
                if (raw.name.empty())
                    return fail("--dataset needs a name, got: " +
                                item);
                if (at != std::string::npos) {
                    std::uint32_t scale = 0;
                    if (!cli::parseU32(item.substr(at + 1), 4, 31,
                                       scale))
                        return fail("dataset scale must be in "
                                    "[4, 31], got: " + item);
                    raw.scale = scale;
                }
                rawDatasets.push_back(std::move(raw));
            }
        } else if (flag == "--scale") {
            for (const std::string& item : splitCommas(value)) {
                std::uint32_t scale = 0;
                if (!cli::parseU32(item, 4, 26, scale))
                    return fail("--scale must be in [4, 26], got " +
                                item);
                rmatScales.push_back(scale);
            }
        } else if (flag == "--grid-size") {
            for (const std::string& item : splitCommas(value)) {
                GridShape shape;
                if (!parseGridShape(item, shape))
                    return fail("bad grid size (want WxH, e.g. "
                                "16x16): " + item);
                o.plan.grids.push_back(shape);
            }
        } else if (flag == "--topology") {
            if (!sawTopology)
                o.plan.topologies.clear();
            sawTopology = true;
            for (const std::string& item : splitCommas(value)) {
                NocTopology topology;
                if (!cli::parseTopology(item, topology))
                    return fail("unknown topology: " + item +
                                " (mesh|torus|torus-ruche)");
                o.plan.topologies.push_back(topology);
            }
        } else if (flag == "--policy") {
            if (!sawPolicy)
                o.plan.policies.clear();
            sawPolicy = true;
            for (const std::string& item : splitCommas(value)) {
                SchedPolicy policy;
                if (!cli::parsePolicy(item, policy))
                    return fail("unknown policy: " + item +
                                " (round-robin|traffic-aware)");
                o.plan.policies.push_back(policy);
            }
        } else if (flag == "--distribution") {
            if (!sawDistribution)
                o.plan.distributions.clear();
            sawDistribution = true;
            for (const std::string& item : splitCommas(value)) {
                Distribution distribution;
                if (!cli::parseDistribution(item, distribution))
                    return fail("unknown distribution: " + item +
                                " (low-order|high-order)");
                o.plan.distributions.push_back(distribution);
            }
        } else if (flag == "--barrier") {
            const std::string mode = toLower(value);
            if (mode == "off")
                o.plan.barriers = {false};
            else if (mode == "on")
                o.plan.barriers = {true};
            else if (mode == "both")
                o.plan.barriers = {false, true};
            else
                return fail("--barrier must be off|on|both, got " +
                            value);
        } else if (flag == "--baseline") {
            if (!parseGridShape(value, o.plan.baseline))
                return fail("bad --baseline (want WxH, e.g. 4x4): " +
                            value);
        } else if (flag == "--ruche-factor") {
            if (!cli::parseU32(value, 2, 64, o.plan.rucheFactor))
                return fail("--ruche-factor must be in [2, 64], got " +
                            value);
        } else if (flag == "--invoke-overhead") {
            if (!cli::parseU32(value, 0, 1'000'000,
                               o.plan.invokeOverhead))
                return fail("--invoke-overhead must be in "
                            "[0, 1000000], got " + value);
        } else if (flag == "--seed") {
            if (!cli::parseU64(value, o.plan.seed))
                return fail("--seed must be an integer, got " + value);
        } else if (flag == "--pagerank-iters") {
            // Deprecated alias for --param iterations=N.
            std::uint32_t iters = 0;
            if (!cli::parseU32(value, 1, 1000, iters))
                return fail("--pagerank-iters must be in [1, 1000], "
                            "got " + value);
            o.plan.params.push_back(
                {"iterations", static_cast<double>(iters)});
        } else if (flag == "--param") {
            std::string err;
            if (!parseParamOverrides(value, o.plan.params, err))
                return fail(err);
        } else if (flag == "--engine-threads") {
            if (!sawEngineThreads)
                o.plan.engineThreads.clear();
            sawEngineThreads = true;
            for (const std::string& item : splitCommas(value)) {
                std::uint32_t threads = 0;
                if (!cli::parseU32(item, 1, 256, threads))
                    return fail("--engine-threads must be in "
                                "[1, 256], got " + item);
                o.plan.engineThreads.push_back(threads);
            }
        } else if (flag == "--engine-scan") {
            if (!cli::parseEngineScan(value, o.plan.engineScan))
                return fail("--engine-scan must be full|active, got " +
                            value);
        } else if (flag == "--engine-barrier") {
            if (!cli::parseEngineBarrier(value, o.plan.engineBarrier))
                return fail("--engine-barrier must be tree|central, "
                            "got " + value);
        } else if (flag == "--engine-rebalance") {
            o.plan.engineRebalance = true;
        } else if (flag == "--threads") {
            std::uint32_t threads = 0;
            if (!cli::parseU32(value, 1, 256, threads))
                return fail("--threads must be in [1, 256], got " +
                            value);
            o.threads = threads;
        } else if (flag == "--via") {
            if (value.empty() || value.rfind("--", 0) == 0)
                return fail("--via needs a daemon socket path");
            o.via = value;
        } else if (flag == "--csv") {
            if (value.empty() || value.rfind("--", 0) == 0)
                return fail("--csv needs a file path");
            o.csvPath = value;
        } else if (flag == "--jsonl") {
            if (value.empty() || value.rfind("--", 0) == 0)
                return fail("--jsonl needs a file path");
            o.jsonlPath = value;
        } else if (flag == "--journal") {
            if (value.empty() || value.rfind("--", 0) == 0)
                return fail("--journal needs a file path");
            o.journalPath = value;
        } else if (flag == "--resume") {
            if (value.empty() || value.rfind("--", 0) == 0)
                return fail("--resume needs a journal file path");
            o.resumePath = value;
        } else if (flag == "--retries") {
            std::uint32_t retries = 0;
            if (!cli::parseU32(value, 0, 16, retries))
                return fail("--retries must be in [0, 16], got " +
                            value);
            o.retries = retries;
        } else if (flag == "--retry-backoff-ms") {
            if (!cli::parseU64(value, o.retryBackoffMs))
                return fail("--retry-backoff-ms must be an integer, "
                            "got " + value);
        } else if (flag == "--row-deadline-ms") {
            if (!cli::parseU64(value, o.rowDeadlineMs))
                return fail("--row-deadline-ms must be an integer, "
                            "got " + value);
        } else if (flag == "--json") {
            o.json = true;
        } else if (flag == "--quick") {
            o.quick = true;
        } else if (flag == "--full") {
            o.quick = false;
        } else if (flag == "--validate") {
            o.plan.validate = true;
        } else {
            return fail("unknown option: " + flag + " (try --help)");
        }
    }

    // Defaults that depend on other flags apply once argv is read.
    if (o.plan.kernels.empty())
        o.plan.kernels = allKernels();
    if (o.plan.grids.empty())
        o.plan.grids = {{4, 4}, {8, 8}, {16, 16}};
    for (const RawDataset& raw : rawDatasets) {
        DatasetSpec spec;
        spec.name = raw.name;
        spec.scale = raw.scale != 0 ? raw.scale
                     : o.quick      ? defaultQuickScale(raw.name)
                                    : 0;
        o.plan.datasets.push_back(std::move(spec));
    }
    for (const unsigned scale : rmatScales)
        o.plan.datasets.push_back({"", scale});
    if (o.plan.datasets.empty())
        o.plan.datasets.push_back({"", o.quick ? 10u : 14u});
    return result;
}

std::string
sweepUsageText()
{
    return
        "usage: dalorex sweep [options]\n"
        "\n"
        "Expands a scenario grid (kernels x datasets x machine shapes\n"
        "x policy knobs) into concrete runs, executes them on a\n"
        "worker pool, and prints one aggregate row per point with\n"
        "speedup vs the baseline grid, strong-scaling parallel\n"
        "efficiency and energy per edge.\n"
        "\n"
        "grid axes (comma-separated values):\n"
        "  --kernel K,...        " +
        KernelRegistry::instance().namesText() +
        "|all (default all)\n"
        "  --dataset NAME,...    amazon|wiki|livejournal|rmatN, or\n"
        "                        file:PATH for a binary CSR graph"
        " written by\n"
        "                        `dalorex convert`; NAME@SCALE pins a"
        " stand-in\n"
        "                        scale (default: RMAT at --scale)\n"
        "  --scale N,...         RMAT scales [4,26] when --dataset is"
        " absent\n"
        "                        (default: 10 quick, 14 full)\n"
        "  --grid-size WxH,...   machine shapes"
        " (default 4x4,8x8,16x16)\n"
        "  --topology T,...      mesh|torus|torus-ruche"
        " (default torus)\n"
        "  --policy P,...        round-robin|traffic-aware"
        " (default traffic-aware)\n"
        "  --distribution D,...  low-order|high-order"
        " (default low-order)\n"
        "  --barrier M           off|on|both (default off)\n"
        "  --engine-threads N,...engine worker threads per point"
        " [1, 256]\n"
        "                        (default 1; stats are byte-identical"
        " for every N)\n"
        "  --engine-scan M       full|active scan mode for every"
        " point (default\n"
        "                        active; results identical for both)\n"
        "  --engine-barrier B    tree|central phase barrier for every"
        " point\n"
        "                        (default tree; results identical for"
        " both)\n"
        "  --engine-rebalance    occupancy-driven shard rebalancing"
        " for every\n"
        "                        point (default off; results"
        " identical)\n"
        "\n"
        "scenario knobs:\n"
        "  --baseline WxH        speedup baseline shape"
        " (default: first --grid-size)\n"
        "  --ruche-factor N      ruche hop distance [2, 64]"
        " (default 2)\n"
        "  --invoke-overhead N   extra cycles per task invocation\n"
        "  --seed N              dataset/weight seed (default 1)\n"
        "  --param K=V,...       kernel parameter overrides"
        " (damping|iterations|epsilon);\n"
        "                        keys a kernel does not use are"
        " skipped\n"
        "  --pagerank-iters N    deprecated alias for"
        " --param iterations=N\n"
        "  --quick / --full      stand-in scale for named datasets"
        " (default quick)\n"
        "  --validate            check every point against the"
        " sequential reference\n"
        "\n"
        "execution and output:\n"
        "  --threads N           total thread budget [1, 256]"
        " (default: host\n"
        "                        cores); splits into sweep workers x"
        " the largest\n"
        "                        --engine-threads value and must"
        " cover it;\n"
        "                        output is identical for every N\n"
        "  --via SOCKET          submit the points to a running\n"
        "                        `dalorex serve` daemon at this Unix\n"
        "                        socket instead of running in-process\n"
        "                        (output is byte-identical)\n"
        "  --csv PATH            write the aggregate table as CSV\n"
        "  --jsonl PATH          write one JSON object per row\n"
        "\n"
        "fault tolerance:\n"
        "  --journal PATH        append one checksummed record per\n"
        "                        row as it resolves; a killed sweep\n"
        "                        resumes from it\n"
        "  --resume PATH         replay a journal from an earlier run\n"
        "                        of the same plan: completed rows are\n"
        "                        not re-run and the merged output is\n"
        "                        byte-identical to an uninterrupted\n"
        "                        sweep\n"
        "  --retries N           re-run transiently failing rows\n"
        "                        (dataset I/O, timeouts) up to N\n"
        "                        extra times [0, 16] (default 0)\n"
        "  --retry-backoff-ms M  base backoff before a retry, doubled\n"
        "                        per attempt with deterministic\n"
        "                        jitter (default 250)\n"
        "  --row-deadline-ms M   wall-clock budget per row; expired\n"
        "                        rows fail with status timeout\n"
        "                        instead of hanging the sweep\n"
        "                        (default: none)\n"
        "  --json                print JSON-lines to stdout instead"
        " of the table\n"
        "  --list-datasets       list the dataset names and exit\n"
        "  --list-kernels        list the registered kernels and"
        " exit\n"
        "  --help                this text\n"
        "\n"
        "examples:\n"
        "  dalorex sweep --kernel all --grid-size 4x4,8x8 --quick"
        " --threads 4 --csv out.csv\n"
        "  dalorex sweep --kernel bfs --scale 10,12,14"
        " --grid-size 1x1,4x4,16x16 --baseline 1x1\n";
}

int
sweepMain(int argc, const char* const* argv, std::ostream& out,
          std::ostream& err)
{
    const SweepParseResult parsed = parseSweepArgs(argc, argv);
    if (!parsed.ok) {
        err << "dalorex sweep: " << parsed.error << "\n";
        return 2;
    }
    const SweepOptions& o = parsed.options;
    if (o.help) {
        out << sweepUsageText();
        return 0;
    }
    if (o.listDatasets) {
        out << cli::datasetListText();
        return 0;
    }
    if (o.listKernels) {
        out << cli::kernelListText();
        return 0;
    }

    const ExpandResult expanded = expand(o.plan);
    if (!expanded.ok) {
        err << "dalorex sweep: " << expanded.error << "\n";
        return 2;
    }
    // Mirror the single-run CLI's advisory: points whose grid has
    // fewer tiles than the threads axis value were clamped to one
    // worker per shard during expansion.
    unsigned min_tiles = ~0u;
    for (const GridShape& grid : o.plan.grids)
        min_tiles = std::min(min_tiles, grid.tiles());
    for (const unsigned n : o.plan.engineThreads) {
        if (!o.plan.grids.empty() && n > min_tiles) {
            err << "dalorex sweep: --engine-threads values above a "
                   "grid's tile count run clamped to one thread per "
                   "shard on that grid\n";
            break;
        }
    }

    // Scenario identity: one hash per row over its canonical request
    // bytes and a plan hash over all of them. Journals bind to both,
    // so a record can never replay into a different plan or row.
    std::vector<std::uint64_t> point_hashes;
    point_hashes.reserve(expanded.points.size());
    for (const cli::Options& point : expanded.points)
        point_hashes.push_back(serve::pointHash(point));
    const std::uint64_t plan_hash =
        hashBytes(point_hashes.data(),
                  point_hashes.size() * sizeof(std::uint64_t));

    // --resume: replay the journal; rows whose record verifies are
    // masked off the run and their outcomes rebuilt through the same
    // parseReportPayload path `--via` uses, so the merged output is
    // byte-identical to an uninterrupted sweep.
    std::vector<char> skip(expanded.points.size(), 0);
    std::vector<cli::RunOutcome> replayed_outcomes(
        expanded.points.size());
    std::vector<journal::Record> replayed_records(
        expanded.points.size());
    std::uint64_t rows_replayed = 0;
    if (!o.resumePath.empty()) {
        const journal::Replay rep = journal::replay(o.resumePath);
        if (!rep.ok) {
            err << "dalorex sweep: " << rep.error << "\n";
            return 2;
        }
        if (rep.planHash != plan_hash ||
            rep.points != expanded.points.size()) {
            err << "dalorex sweep: journal " << o.resumePath
                << " records a different plan; refusing to resume\n";
            return 2;
        }
        for (const journal::Record& record : rep.records) {
            if (record.row >= expanded.points.size() ||
                record.pointHash != point_hashes[record.row])
                continue; // stale record; run the row
            cli::RunOutcome outcome;
            bool resolved = false;
            if (record.status == journal::RowStatus::ok) {
                std::string perr;
                resolved = serve::parseReportPayload(
                    record.payload, expanded.points[record.row],
                    outcome.report, perr);
            } else if (record.status ==
                       journal::RowStatus::quarantined) {
                // Permanent failures replay their error; transient
                // (`failed`) and interrupted (`skipped`) rows re-run.
                outcome.ok = false;
                outcome.error = record.error;
                resolved = true;
            }
            if (resolved) {
                skip[record.row] = 1;
                replayed_outcomes[record.row] = std::move(outcome);
                replayed_records[record.row] = record;
            } else {
                skip[record.row] = 0; // last record wins
            }
        }
        for (const char s : skip)
            rows_replayed += s != 0 ? 1 : 0;
        err << "[sweep] resumed " << rows_replayed << " of "
            << expanded.points.size() << " rows from "
            << o.resumePath;
        if (rep.corrupt > 0)
            err << " (" << rep.corrupt << " damaged line"
                << (rep.corrupt == 1 ? "" : "s") << " dropped)";
        err << "\n";
    }

    journal::Writer journal_writer;
    if (!o.journalPath.empty()) {
        std::string jerr;
        if (!journal_writer.open(o.journalPath, plan_hash,
                                 expanded.points.size(), jerr)) {
            err << "dalorex sweep: " << jerr << "\n";
            return 2;
        }
        // Journaling to a new file: carry the replayed rows forward
        // so the new journal alone resumes the remainder.
        if (o.journalPath != o.resumePath)
            for (std::size_t i = 0; i < replayed_records.size(); ++i)
                if (skip[i] != 0)
                    journal_writer.append(replayed_records[i]);
    }

    std::atomic<std::uint64_t> retried_rows{0};
    auto classify = [](const cli::RunOutcome& outcome) {
        if (outcome.ok)
            return journal::RowStatus::ok;
        if (outcome.status == RunStatus::cancelled ||
            outcome.error == "interrupted")
            return journal::RowStatus::skipped;
        return outcome.transient ? journal::RowStatus::failed
                                 : journal::RowStatus::quarantined;
    };
    auto record_row = [&](std::size_t row,
                          const cli::RunOutcome& outcome,
                          unsigned attempts) {
        if (attempts > 1)
            retried_rows.fetch_add(attempts - 1);
        if (!journal_writer.isOpen())
            return;
        journal::Record record;
        record.row = row;
        record.pointHash = point_hashes[row];
        record.status = classify(outcome);
        record.attempts = std::max(1u, attempts);
        if (record.status == journal::RowStatus::ok) {
            record.payload = cli::renderJson(outcome.report);
            while (!record.payload.empty() &&
                   record.payload.back() == '\n')
                record.payload.pop_back();
        } else {
            record.error = outcome.error;
        }
        journal_writer.append(record);
    };

    // SIGINT during the run phase degrades to a partial sweep: rows
    // already completed still aggregate, flush and report below with
    // exit code 130, instead of dropping everything on the floor.
    const DatasetCacheStats cache_before = datasetCacheStats();
    InterruptGuard sigint;
    RunResult run_result;
    if (!o.via.empty()) {
        // Client mode: the daemon executes the points; its warm
        // dataset cache and resident crew replace the local pool.
        err << "[sweep] submitting "
            << expanded.points.size() - rows_replayed
            << " scenario points to the daemon at " << o.via << "\n";
        run_result.baseline = expanded.baseline;
        std::vector<cli::Options> points = expanded.points;
        if (o.rowDeadlineMs > 0)
            for (cli::Options& point : points)
                point.deadlineMs = o.rowDeadlineMs;
        std::string via_error;
        if (!serve::runViaSocket(
                o.via, "sweep", points, run_result.outcomes,
                via_error, &interrupted, &skip,
                [&record_row](std::size_t row,
                              const cli::RunOutcome& outcome) {
                    record_row(row, outcome, 1);
                })) {
            err << "dalorex sweep: " << via_error << "\n";
            return 2;
        }
    } else {
        // One thread budget: `--threads` covers sweep workers times
        // the engine threads inside each point, so a machine-parallel
        // sweep does not oversubscribe the host. Workers = threads /
        // max axis value (at least 1). An explicit budget below the
        // largest engine-threads value cannot be honored — refuse it
        // instead of silently oversubscribing; a defaulted budget
        // grows to fit.
        unsigned max_engine_threads = 1;
        for (const unsigned n : o.plan.engineThreads)
            max_engine_threads = std::max(max_engine_threads, n);
        if (o.threads > 0 && o.threads < max_engine_threads) {
            err << "dalorex sweep: --threads " << o.threads
                << " is below the largest --engine-threads value ("
                << max_engine_threads
                << "); raise the budget or lower the axis\n";
            return 2;
        }
        const unsigned budget =
            o.threads > 0
                ? o.threads
                : std::max(defaultWorkerThreads(),
                           max_engine_threads);
        const unsigned threads =
            std::max(1u, budget / max_engine_threads);
        err << "[sweep] " << expanded.points.size()
            << " scenario points on " << threads << " worker thread"
            << (threads == 1 ? "" : "s");
        if (max_engine_threads > 1)
            err << " x " << max_engine_threads
                << " engine threads (budget " << budget << ")";
        err << "\n";

        RunPolicy policy;
        policy.cancel = &interrupted;
        policy.retries = o.retries;
        policy.backoffMs = o.retryBackoffMs;
        policy.seed = o.plan.seed;
        policy.rowDeadlineMs = o.rowDeadlineMs;
        policy.skip = skip;
        policy.onRow = record_row;
        run_result = run(expanded, threads, policy);
    }
    if (!run_result.ok) {
        err << "dalorex sweep: " << run_result.error << "\n";
        return 2;
    }
    // Replayed rows come back from the journal, not the run.
    for (std::size_t i = 0; i < skip.size() &&
                            i < run_result.outcomes.size();
         ++i)
        if (skip[i] != 0)
            run_result.outcomes[i] = replayed_outcomes[i];
    const bool was_interrupted = interrupted.load();

    // A failed point fails only its own row: report it, render the
    // survivors (whose baseline row may be among the casualties, so
    // degrade missing baselines to "-" instead of erroring). Rows an
    // interrupt skipped are summarized in one line, not per row.
    std::vector<std::string> row_errors;
    std::size_t skipped = 0;
    std::size_t quarantined = 0;
    for (std::size_t i = 0; i < run_result.outcomes.size(); ++i) {
        const cli::RunOutcome& outcome = run_result.outcomes[i];
        if (outcome.ok)
            continue;
        if (was_interrupted &&
            (outcome.status == RunStatus::cancelled ||
             outcome.error == "interrupted")) {
            ++skipped;
            continue;
        }
        if (!outcome.transient &&
            outcome.status == RunStatus::completed)
            ++quarantined;
        row_errors.push_back(
            "point " + std::to_string(i + 1) + "/" +
            std::to_string(run_result.outcomes.size()) + ": " +
            outcome.error);
    }
    for (const std::string& line : row_errors)
        err << "dalorex sweep: " << line << "\n";
    const AggregateResult agg = aggregate(
        run_result.okReports(), run_result.baseline,
        row_errors.empty() && !was_interrupted
            ? MissingBaseline::error
            : MissingBaseline::skip);
    if (!agg.ok) {
        err << "dalorex sweep: " << agg.error << "\n";
        return 2;
    }

    // One summary line closes the machine-readable outputs: row
    // accounting plus the dataset-cache traffic this sweep caused —
    // the warm-cache effect (PR 6/7) measured where users can see it.
    const DatasetCacheStats cache_after = datasetCacheStats();
    const std::string summary =
        "{\"type\":\"summary\",\"points\":" +
        std::to_string(expanded.points.size()) +
        ",\"rows_ok\":" + std::to_string(agg.rows.size()) +
        ",\"rows_failed\":" + std::to_string(row_errors.size()) +
        ",\"rows_skipped\":" + std::to_string(skipped) +
        ",\"rows_quarantined\":" + std::to_string(quarantined) +
        ",\"rows_replayed\":" + std::to_string(rows_replayed) +
        ",\"retries\":" + std::to_string(retried_rows.load()) +
        ",\"journal_written\":" +
        std::to_string(journal_writer.written()) +
        ",\"dataset_cache_builds\":" +
        std::to_string(cache_before.builds <= cache_after.builds
                           ? cache_after.builds - cache_before.builds
                           : 0) +
        ",\"dataset_cache_hits\":" +
        std::to_string(cache_before.hits <= cache_after.hits
                           ? cache_after.hits - cache_before.hits
                           : 0) +
        "}\n";

    const Table table = toTable(agg.rows);
    if (o.json)
        out << toJsonl(agg.rows) << summary;
    else
        out << table.toText();
    if (!o.csvPath.empty())
        table.writeCsv(o.csvPath);
    if (!o.jsonlPath.empty()) {
        std::ofstream file(o.jsonlPath);
        fatal_if(!file, "cannot open JSONL output file: ",
                 o.jsonlPath);
        // Rows only, no summary trailer: the summary's cache deltas
        // and replay counters depend on process history, and the
        // file's contract is byte-identity — a resumed sweep's JSONL
        // must diff clean against the uninterrupted run's. The
        // summary still closes the stdout stream under --json.
        file << toJsonl(agg.rows);
        fatal_if(!file, "error writing JSONL output file: ",
                 o.jsonlPath);
    }
    if (was_interrupted) {
        err << "[sweep] interrupted: " << agg.rows.size()
            << " completed row" << (agg.rows.size() == 1 ? "" : "s")
            << " flushed, " << skipped << " skipped\n";
        return 130;
    }
    return row_errors.empty() ? 0 : 1;
}

} // namespace sweep
} // namespace dalorex
