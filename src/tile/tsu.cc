#include "tile/tsu.hh"

#include <algorithm>

namespace dalorex
{

const char*
toString(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::roundRobin:
        return "round-robin";
      case SchedPolicy::trafficAware:
        return "traffic-aware";
    }
    return "?";
}

bool
taskRunnable(const Tile& tile, const std::vector<TaskDef>& defs,
             std::uint32_t t)
{
    const TaskDef& def = defs[t];
    if (tile.iqs[t].empty())
        return false;
    if (def.outChannel != noChannel) {
        // TSU guarantee (maxOutMsgs > 0) or, for self-throttling
        // tasks, at least one entry so an invocation can progress.
        const std::uint32_t needed = std::max(def.maxOutMsgs, 1u);
        if (tile.cqs[def.outChannel].freeEntries() < needed)
            return false;
    }
    if (def.outLocalTask != noLocalTask &&
        tile.iqs[def.outLocalTask].full()) {
        return false;
    }
    return true;
}

namespace
{

/** Priority classes of the occupancy-based policy; higher wins. */
enum : int
{
    prioLow = 0,
    prioMedium = 1,
    prioHigh = 2,
};

int
taskPriority(const Tile& tile, const TaskDef& def, std::uint32_t t)
{
    // "high priority if its IQ is nearly full"
    if (tile.iqs[t].nearlyFull())
        return prioHigh;
    // Frontier re-exploration (a task feeding a same-tile IQ, i.e.
    // T4) stays low priority: letting pending updates drain into the
    // bitmap before vertices are re-explored is what preserves work
    // efficiency in the barrierless flow — eager exploration would
    // propagate stale values (Sec. I: the TSU's closed loop exists
    // "to achieve work efficiency ... as this varies with task flow
    // order").
    if (def.outLocalTask != noLocalTask)
        return prioLow;
    // "medium priority if its OQ is nearly empty". Tasks with no
    // network output (T3: apply the update locally) rank medium by
    // default: draining updates promptly also curbs staleness.
    if (def.outChannel == noChannel ||
        tile.cqs[def.outChannel].nearlyEmpty()) {
        return prioMedium;
    }
    return prioLow;
}

} // namespace

std::uint32_t
pickTask(Tile& tile, const std::vector<TaskDef>& defs,
         SchedPolicy policy)
{
    const auto num_tasks = static_cast<std::uint32_t>(defs.size());

    if (policy == SchedPolicy::roundRobin) {
        for (std::uint32_t i = 0; i < num_tasks; ++i) {
            const std::uint32_t t =
                (tile.rrNext + i) % num_tasks;
            if (taskRunnable(tile, defs, t)) {
                tile.rrNext = (t + 1) % num_tasks;
                return t;
            }
        }
        return noTask;
    }

    // Traffic-aware: best (priority class, queue size), round-robin
    // tie-break via the rotating start point.
    std::uint32_t best = noTask;
    int best_prio = -1;
    std::uint32_t best_size = 0;
    for (std::uint32_t i = 0; i < num_tasks; ++i) {
        const std::uint32_t t = (tile.rrNext + i) % num_tasks;
        if (!taskRunnable(tile, defs, t))
            continue;
        const int prio = taskPriority(tile, defs[t], t);
        // "When two or more tasks have high/medium priority, the one
        // with a larger queue size takes precedence."
        const std::uint32_t size = tile.iqs[t].capacity();
        if (prio > best_prio ||
            (prio == best_prio && size > best_size)) {
            best = t;
            best_prio = prio;
            best_size = size;
        }
    }
    if (best != noTask)
        tile.rrNext = (best + 1) % num_tasks;
    return best;
}

} // namespace dalorex
