/**
 * @file
 * Task Scheduling Unit: the arbitration policy that picks the next task
 * to run on a tile's PU (Sec. III-E).
 *
 * A task is *runnable* iff its IQ is non-empty and its output channel
 * queue has room for the task's worst-case output ("TSU may only invoke
 * a task if its IQ is not empty and its OQ has sufficient free
 * entries"). Two policies are modeled:
 *
 *  - roundRobin: the `Basic-TSU` ablation point of Fig. 5;
 *  - trafficAware: the paper's occupancy-based closed-loop policy —
 *    high priority when the IQ is nearly full, medium when the OQ is
 *    nearly empty, low otherwise; ties go to the task with the larger
 *    configured queue size.
 */

#ifndef DALOREX_TILE_TSU_HH
#define DALOREX_TILE_TSU_HH

#include <cstdint>
#include <vector>

#include "tile/task.hh"
#include "tile/tile.hh"

namespace dalorex
{

/** TSU arbitration policy (Fig. 5: Basic-TSU vs Traffic-Aware). */
enum class SchedPolicy
{
    roundRobin,
    trafficAware,
};

const char* toString(SchedPolicy policy);

/**
 * Occupancy thresholds of the traffic-aware policy. They are baked
 * into per-queue integer watermarks when the machine finalizes its
 * queues, keeping the scheduling hot path free of floating point.
 */
struct TsuThresholds
{
    /** IQ occupancy at or above which a task becomes high priority. */
    double iqHigh = 0.75;
    /** OQ occupancy at or below which a task becomes medium priority. */
    double oqLow = 0.25;
};

/** Sentinel returned when no task is runnable. */
constexpr std::uint32_t noTask = ~std::uint32_t(0);

/** True iff task `t` of `defs` can be invoked on `tile` right now. */
bool taskRunnable(const Tile& tile, const std::vector<TaskDef>& defs,
                  std::uint32_t t);

/**
 * Pick the next task to invoke on `tile`, or noTask.
 * Advances the tile's round-robin pointer on selection. Queue
 * watermarks (WordQueue::nearlyFull, MsgQueue::nearlyEmpty) must be
 * configured from the thresholds beforehand.
 */
std::uint32_t pickTask(Tile& tile, const std::vector<TaskDef>& defs,
                       SchedPolicy policy);

} // namespace dalorex

#endif // DALOREX_TILE_TSU_HH
