/**
 * @file
 * Task and channel declarations of the Dalorex programming model.
 *
 * A program is a set of tasks (T1..T4 in Listing 1) plus the network
 * channels connecting a task's output to the next task's input queue on
 * the tile owning the target datum. "Declaring a task requires the
 * length of its IQ and whether its parameters are loaded before the
 * invocation" (Listing 1).
 */

#ifndef DALOREX_TILE_TASK_HH
#define DALOREX_TILE_TASK_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dalorex
{

class Machine;
class Tile;
class TaskCtx;

/** Sentinel: task writes no network channel. */
constexpr ChannelId noChannel = 0xff;

/** Sentinel: task writes no same-tile input queue. */
constexpr TaskId noLocalTask = 0xff;

/** The body of a task, executed by the PU at the data's tile. */
using TaskFn = void (*)(Machine& machine, Tile& tile, TaskCtx& ctx);

/** Static task configuration held in the TSU's task table. */
struct TaskDef
{
    std::string name;
    /** Words per input-queue entry (the task's parameter count). */
    std::uint8_t paramWords = 1;
    /**
     * Whether the TSU pops the IQ entry and hands the parameters to
     * the task ("Task parameters are loaded by TSU before the task
     * begins"). When false the task peeks/pops explicitly and may keep
     * the entry across invocations for partial progress (T1 style).
     */
    bool preload = true;
    /** Input-queue capacity in entries (Listing 1's [N]). */
    std::uint32_t iqCapacity = 128;
    /** Channel this task writes, or noChannel. */
    ChannelId outChannel = noChannel;
    /**
     * Worst-case messages emitted per invocation. When > 0 the TSU
     * only invokes the task if the output channel queue has this many
     * free entries (the Listing 1 OQT2 guarantee). When 0 the task
     * self-throttles by checking the queue inside its body; the TSU
     * still requires at least one free entry so a throttled task never
     * busy-spins on the PU.
     */
    std::uint32_t maxOutMsgs = 0;
    /**
     * Same-tile IQ this task pushes into (Fig. 4 shows T4's output
     * queue is IQ1), or noLocalTask. The TSU requires one free entry
     * before invoking, preventing busy-spin on a full local queue.
     */
    TaskId outLocalTask = noLocalTask;
    /**
     * Whether a network channel feeds this task's IQ (derived at
     * finalize). The Data-Local ablation charges its interrupting
     * remote-call penalty only on such tasks — local invocations
     * (T4 -> T1) never interrupted anyone in Tesseract either.
     */
    bool channelFed = false;
    TaskFn fn = nullptr;
};

/** Which distributed array's index the head flit carries. */
enum class HeadEncode
{
    vertex, //!< destination = owner of a vertex-distributed array slot
    edge,   //!< destination = owner of an edge-distributed array slot
};

/** Static channel configuration held in the TSU's channel table. */
struct ChannelDef
{
    std::string name;
    /** Flits per message = head index + parameters. */
    std::uint8_t numWords = 2;
    /** Task whose IQ receives the message at the destination. */
    TaskId targetTask = 0;
    /** Head-flit index domain (chunk table used by the head encoder). */
    HeadEncode encode = HeadEncode::vertex;
    /** Sender-side channel-queue capacity in messages. */
    std::uint32_t cqCapacity = 128;
};

} // namespace dalorex

#endif // DALOREX_TILE_TASK_HH
