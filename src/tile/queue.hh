/**
 * @file
 * Circular FIFO queues carved out of the tile scratchpad.
 *
 * "The queues are implemented as circular FIFOs using the scratchpad.
 * Queue sizes are configured at runtime based on the number of entries
 * specified next to the task declaration" (Sec. III-E). An entry is one
 * task invocation: `entryWords` machine words.
 */

#ifndef DALOREX_TILE_QUEUE_HH
#define DALOREX_TILE_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "noc/message.hh"

namespace dalorex
{

/** A FIFO of fixed-width word entries (task input queues). */
class WordQueue
{
  public:
    WordQueue() = default;

    /** Words of backing storage an (entry_words, capacity) queue
     *  needs — for arena sizing before bind-style init. */
    static std::size_t
    storageWords(std::uint32_t entry_words, std::uint32_t capacity)
    {
        return std::size_t(entry_words) * capacity;
    }

    /**
     * Size the queue: `capacity` entries of `entry_words` words.
     * With `storage` the queue is a view into a caller-owned arena of
     * storageWords() zeroed words (the engine pools every queue of a
     * Machine into one allocation); without, it owns its storage.
     */
    void
    init(std::uint32_t entry_words, std::uint32_t capacity,
         Word* storage = nullptr)
    {
        panic_if(entry_words == 0 || entry_words > maxMsgWords,
                 "queue entry width out of range: ", entry_words);
        panic_if(capacity == 0, "queue capacity must be positive");
        entryWords_ = entry_words;
        capacity_ = capacity;
        if (storage != nullptr) {
            data_ = storage;
        } else {
            owned_.assign(storageWords(entry_words, capacity), 0);
            data_ = owned_.data();
        }
        head_ = count_ = 0;
    }

    std::uint32_t entryWords() const { return entryWords_; }
    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t count() const { return count_; }
    std::uint32_t freeEntries() const { return capacity_ - count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == capacity_; }

    /** Occupancy as a fraction of capacity (TSU priority sensor). */
    double
    occupancy() const
    {
        return static_cast<double>(count_) / capacity_;
    }

    /**
     * Set the "nearly full" watermark in entries. The TSU compares
     * integer counts in its scheduling hot path instead of occupancy
     * fractions.
     */
    void setHighMark(std::uint32_t mark) { highMark_ = mark; }

    /** True when occupancy has reached the high watermark. */
    bool nearlyFull() const { return count_ >= highMark_; }

    /** Scratchpad bytes this queue occupies. */
    std::uint32_t
    storageBytes() const
    {
        return entryWords_ * capacity_ * wordBytes;
    }

    /** Append one entry of entryWords() words. panic() when full. */
    void
    push(const Word* words)
    {
        panic_if(full(), "push to full queue");
        const std::size_t base =
            std::size_t((head_ + count_) % capacity_) * entryWords_;
        for (std::uint32_t w = 0; w < entryWords_; ++w)
            data_[base + w] = words[w];
        ++count_;
    }

    /** Pointer to the oldest entry (Listing 1's peek). */
    const Word*
    front() const
    {
        panic_if(empty(), "front of empty queue");
        return &data_[std::size_t(head_) * entryWords_];
    }

    /** Drop the oldest entry (Listing 1's pop). */
    void
    pop()
    {
        panic_if(empty(), "pop of empty queue");
        head_ = (head_ + 1) % capacity_;
        --count_;
    }

  private:
    std::vector<Word> owned_;
    Word* data_ = nullptr;
    std::uint32_t entryWords_ = 0;
    std::uint32_t capacity_ = 0;
    std::uint32_t head_ = 0;
    std::uint32_t count_ = 0;
    std::uint32_t highMark_ = ~std::uint32_t(0);
};

/** A FIFO of encoded outbound messages (channel queues). */
class MsgQueue
{
  public:
    MsgQueue() = default;

    /**
     * Size the queue to `capacity` messages. With `storage` the queue
     * is a view into a caller-owned arena of `capacity`
     * default-initialized messages; without, it owns its storage.
     */
    void
    init(std::uint32_t entry_words, std::uint32_t capacity,
         Message* storage = nullptr)
    {
        panic_if(capacity == 0, "queue capacity must be positive");
        entryWords_ = entry_words;
        capacity_ = capacity;
        if (storage != nullptr) {
            data_ = storage;
        } else {
            owned_.assign(capacity, Message{});
            data_ = owned_.data();
        }
        head_ = count_ = 0;
    }

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t count() const { return count_; }
    std::uint32_t freeEntries() const { return capacity_ - count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == capacity_; }

    double
    occupancy() const
    {
        return static_cast<double>(count_) / capacity_;
    }

    /** Set the "nearly empty" watermark in entries. */
    void setLowMark(std::uint32_t mark) { lowMark_ = mark; }

    /** True when occupancy is at or below the low watermark. */
    bool nearlyEmpty() const { return count_ <= lowMark_; }

    std::uint32_t
    storageBytes() const
    {
        return entryWords_ * capacity_ * wordBytes;
    }

    void
    push(const Message& msg)
    {
        panic_if(full(), "push to full channel queue");
        data_[(head_ + count_) % capacity_] = msg;
        ++count_;
    }

    const Message&
    front() const
    {
        panic_if(empty(), "front of empty channel queue");
        return data_[head_];
    }

    void
    pop()
    {
        panic_if(empty(), "pop of empty channel queue");
        head_ = (head_ + 1) % capacity_;
        --count_;
    }

  private:
    std::vector<Message> owned_;
    Message* data_ = nullptr;
    std::uint32_t entryWords_ = 0;
    std::uint32_t capacity_ = 0;
    std::uint32_t head_ = 0;
    std::uint32_t count_ = 0;
    std::uint32_t lowMark_ = 0;
};

} // namespace dalorex

#endif // DALOREX_TILE_QUEUE_HH
