/**
 * @file
 * One processing tile: PU activity state, task input queues, channel
 * queues and scratchpad accounting (Fig. 4).
 */

#ifndef DALOREX_TILE_TILE_HH
#define DALOREX_TILE_TILE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "tile/queue.hh"

namespace dalorex
{

/** Base class for per-tile application state (local array chunks). */
class AppTileState
{
  public:
    virtual ~AppTileState() = default;
};

/**
 * Activity counters of the single-issue in-order Processing Unit.
 * Dynamic energy follows ops/reads/writes; the TSU clock-gates the PU
 * when idle, so only busyCycles draw clock power.
 */
struct PuState
{
    Cycle busyUntil = 0;       //!< PU executes a task until this cycle
    Cycle busyCycles = 0;      //!< total cycles spent executing tasks
    std::uint64_t ops = 0;        //!< ALU/control operations retired
    std::uint64_t sramReads = 0;  //!< scratchpad word reads
    std::uint64_t sramWrites = 0; //!< scratchpad word writes
    std::uint64_t invocations = 0;
};

/** A processing tile: queues + PU + app state. */
class Tile
{
  public:
    TileId id = 0;

    PuState pu;

    /** Input queues, indexed by TaskId. */
    std::vector<WordQueue> iqs;
    /** Outbound channel queues, indexed by ChannelId. */
    std::vector<MsgQueue> cqs;

    /** Entries across all IQs (engine idle detection). */
    std::uint32_t pendingIqEntries = 0;
    /** Entries across all CQs (engine idle detection). */
    std::uint32_t pendingCqEntries = 0;

    /** Round-robin pointer for TSU tie-breaking. */
    std::uint32_t rrNext = 0;
    /** Round-robin pointer for channel-queue injection. */
    std::uint32_t injectNext = 0;

    /**
     * Simulator fast-path flags (no architectural meaning): the TSU
     * found nothing runnable and sleeps until one of this tile's
     * queues mutates; per-channel injection is stalled on a full
     * buffer or full local IQ until space appears.
     */
    bool schedStalled = false;
    std::uint8_t injectStalledMask = 0;

    /** Per-task invocation counts (profile + Fig. 7 ops). */
    std::vector<std::uint64_t> taskInvocations;

    /** Application chunk data for this tile. */
    std::unique_ptr<AppTileState> state;

    /** Words of scratchpad used by application data arrays. */
    std::uint64_t dataWords = 0;

    /** True when this tile can possibly do anything this cycle. */
    bool
    quiet(Cycle now) const
    {
        return pendingIqEntries == 0 && pendingCqEntries == 0 &&
               pu.busyUntil <= now;
    }

    /** Scratchpad bytes consumed by data plus all queue storage. */
    std::uint64_t
    scratchpadBytes() const
    {
        std::uint64_t bytes = dataWords * wordBytes;
        for (const auto& iq : iqs)
            bytes += iq.storageBytes();
        for (const auto& cq : cqs)
            bytes += cq.storageBytes();
        return bytes;
    }
};

} // namespace dalorex

#endif // DALOREX_TILE_TILE_HH
