/**
 * @file
 * Triangle counting in the Dalorex task model, registered through the
 * kernel registry with no core-layer edits.
 *
 * Classic rank-oriented wedge checking over the symmetrized graph:
 * every vertex keeps its *oriented* neighborhood N+(u) — neighbors of
 * strictly higher (degree, id) rank, stored id-sorted at the vertex
 * owner — so each triangle {u, v, w} with rank u < v < w is discovered
 * exactly once, at its lowest-rank apex u. T1 explores u and streams
 * one wedge-check message per rank-ordered pair (v, w) from N+(u) to
 * the owner of v; T2 completes the neighborhood intersection
 * incrementally by binary-searching w in N+(v), bumping value[v] on a
 * hit. value[v] is thus the number of triangles whose *middle*-rank
 * vertex is v; the per-vertex array (and its sum, the global triangle
 * count) validates exactly against the sequential reference.
 *
 * Degree ordering bounds the oriented degree by O(sqrt(E)), keeping
 * the wedge count near the O(E^1.5) work bound even on RMAT's heavy
 * hubs — and it exercises edge-chunk locality harder than the
 * min-update kernels: the oriented adjacency is a second, vertex-
 * partitioned view of the edge structure.
 */

#ifndef DALOREX_APPS_TRIANGLE_HH
#define DALOREX_APPS_TRIANGLE_HH

#include "apps/graph_app.hh"

namespace dalorex
{

/** Per-tile state: the base chunks plus the oriented adjacency of the
 *  owned vertices and T1's pair-enumeration progress registers. */
struct TriangleTileState : GraphTileState
{
    /** adj[adjOff[l] .. adjOff[l+1]) = N+(owned vertex l), id-sorted. */
    std::vector<Word> adjOff;
    std::vector<Word> adj;
    /** Degree of each adj entry (pair rank-ordering needs it). */
    std::vector<Word> adjDeg;

    // T1 pair-enumeration registers ("memory-stored variables").
    bool t1Fresh = true;
    Word t1I = 0;
    Word t1J = 0;
};

/** Wedge-check triangle counting: value[v] = triangles with middle
 *  rank v. Requires the symmetrized graph. */
class TriangleApp : public GraphAppBase
{
  public:
    explicit TriangleApp(const Csr& graph);

    const char* name() const override { return "Triangles"; }
    void start(Machine& machine) override;

  protected:
    KernelTaskSet tasks() const override;
    HeadEncode cq1Encode() const override
    {
        return HeadEncode::vertex;
    }
    std::unique_ptr<GraphTileState> makeTileState() const override;
    bool usesWeights() const override { return false; }
    void initTile(Machine& machine, TileId tile,
                  GraphTileState& st) override;
};

/** Sequential reference: per-vertex middle-rank triangle counts (same
 *  orientation and wedge enumeration as the task program). */
std::vector<Word> referenceTriangles(const Csr& graph);

} // namespace dalorex

#endif // DALOREX_APPS_TRIANGLE_HH
