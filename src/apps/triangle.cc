#include "apps/triangle.hh"

#include <algorithm>
#include <memory>

#include "apps/kernels.hh"
#include "common/logging.hh"

namespace dalorex
{

namespace
{

/** Degree-then-id orientation: does `a` rank strictly before `b`? */
bool
ranksBefore(const Csr& graph, VertexId a, VertexId b)
{
    const EdgeId da = graph.degree(a);
    const EdgeId db = graph.degree(b);
    return da < db || (da == db && a < b);
}

/** N+(u): the id-sorted neighbors of u ranking strictly after u. */
std::vector<Word>
orientedNeighbors(const Csr& graph, VertexId u)
{
    std::vector<Word> out;
    for (EdgeId e = graph.rowPtr[u]; e < graph.rowPtr[u + 1]; ++e) {
        const VertexId v = graph.colIdx[e];
        if (ranksBefore(graph, u, v))
            out.push_back(v);
    }
    return out; // colIdx is id-sorted, so the filtered list is too
}

/**
 * T1: pop one vertex u from IQ1 and stream one wedge-check message
 * per rank-ordered pair (v, w) from N+(u): the owner of the middle
 * vertex v is asked whether w completes the triangle. Self-throttles
 * on CQ1 with the (i, j) pair registers, resuming mid-enumeration on
 * the next invocation (Listing 1's T1 pattern).
 */
void
triangleWedgeBody(Machine& machine, Tile& tile, TaskCtx& ctx)
{
    auto& st = machine.state<TriangleTileState>(tile);

    const Word local_v = ctx.peek()[0];
    ctx.read(); // peek(IQ1.head) via the queue register
    const Word begin = st.adjOff[local_v];
    const Word end = st.adjOff[local_v + 1];
    const Word n = end - begin;
    ctx.read(2);

    if (st.t1Fresh) {
        st.t1I = 0;
        st.t1J = 1;
        st.t1Fresh = false;
        ctx.charge(1);
    }
    Word i = st.t1I;
    Word j = st.t1J;
    while (i + 1 < n && ctx.cqFree(kCq1) > 0) {
        const Word a = st.adj[begin + i];
        const Word b = st.adj[begin + j];
        const Word deg_a = st.adjDeg[begin + i];
        const Word deg_b = st.adjDeg[begin + j];
        ctx.read(4);
        // Rank-order the pair: the middle vertex v owns the check.
        const bool a_first = deg_a < deg_b || (deg_a == deg_b && a < b);
        const Word v = a_first ? a : b;
        const Word w = a_first ? b : a;
        ctx.charge(2); // rank compare + select
        ctx.send(kCq1, v, {w, 0});
        // One wedge check is this kernel's unit of processed work.
        ctx.countEdges(1);
        ++j;
        if (j >= n) {
            ++i;
            j = i + 1;
        }
        ctx.charge(1); // loop bookkeeping
    }
    st.t1I = i;
    st.t1J = j;
    ctx.charge(1);
    if (i + 1 >= n) {
        st.t1Fresh = true;
        ctx.pop(); // every pair emitted: release the vertex
    }
}

/**
 * T2: the neighborhood-intersection step at the middle vertex's
 * owner — binary-search w in the locally stored N+(v); a hit means
 * the wedge closes into a triangle, counted at v.
 */
void
triangleIntersectBody(Machine& machine, Tile& tile, TaskCtx& ctx)
{
    auto& st = machine.state<TriangleTileState>(tile);
    const Word local_v = ctx.param(0);
    const Word w = ctx.param(1);

    Word lo = st.adjOff[local_v];
    Word hi = st.adjOff[local_v + 1];
    ctx.read(2);
    bool found = false;
    while (lo < hi) {
        const Word mid = lo + (hi - lo) / 2;
        const Word entry = st.adj[mid];
        ctx.read();
        ctx.charge(1); // compare + halve
        if (entry == w) {
            found = true;
            break;
        }
        if (entry < w)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (found) {
        st.value[local_v] += 1;
        ctx.read();
        ctx.write();
        ctx.charge(1);
    }
}

/** T3 is structurally present but fed by nothing: T2 counts locally. */
void
triangleUnusedBody(Machine& machine, Tile& tile, TaskCtx& ctx)
{
    (void)machine;
    (void)tile;
    (void)ctx;
    panic("triangle T3 invoked: no task writes CQ2");
}

} // namespace

TriangleApp::TriangleApp(const Csr& graph) : GraphAppBase(graph)
{
}

KernelTaskSet
TriangleApp::tasks() const
{
    // T4 (frontier drain) is the generic body; T1/T2 are the wedge
    // generator and the intersection probe.
    KernelTaskSet set = spmvTasks();
    set.t1 = &triangleWedgeBody;
    set.t2 = &triangleIntersectBody;
    set.t3 = &triangleUnusedBody;
    return set;
}

std::unique_ptr<GraphTileState>
TriangleApp::makeTileState() const
{
    return std::make_unique<TriangleTileState>();
}

void
TriangleApp::initTile(Machine& machine, TileId tile,
                      GraphTileState& base)
{
    auto& st = static_cast<TriangleTileState&>(base);
    const Partition& part = machine.partition();

    st.adjOff.assign(st.owned + 1, 0);
    for (std::uint32_t l = 0; l < st.owned; ++l) {
        const VertexId u = part.vertexGlobal(tile, l);
        for (const Word v : orientedNeighbors(graph_, u)) {
            st.adj.push_back(v);
            st.adjDeg.push_back(
                static_cast<Word>(graph_.degree(v)));
        }
        st.adjOff[l + 1] = static_cast<Word>(st.adj.size());
    }
    // The oriented adjacency is extra chunk data beyond the base CSR
    // arrays; account it toward the tile's scratchpad footprint.
    machine.addDataWords(tile, st.adjOff.size() + st.adj.size() +
                                   st.adjDeg.size());
}

void
TriangleApp::start(Machine& machine)
{
    // Every vertex generates its wedges exactly once: one full
    // frontier pass, barrierless.
    seedFullFrontier(machine);
}

std::vector<Word>
referenceTriangles(const Csr& graph)
{
    std::vector<std::vector<Word>> oriented(graph.numVertices);
    for (VertexId u = 0; u < graph.numVertices; ++u)
        oriented[u] = orientedNeighbors(graph, u);

    std::vector<Word> counts(graph.numVertices, 0);
    for (VertexId u = 0; u < graph.numVertices; ++u) {
        const std::vector<Word>& plus = oriented[u];
        for (std::size_t i = 0; i + 1 < plus.size(); ++i) {
            for (std::size_t j = i + 1; j < plus.size(); ++j) {
                const Word a = plus[i];
                const Word b = plus[j];
                const bool a_first = ranksBefore(graph, a, b);
                const Word v = a_first ? a : b;
                const Word w = a_first ? b : a;
                const std::vector<Word>& nv = oriented[v];
                if (std::binary_search(nv.begin(), nv.end(), w))
                    counts[v] += 1;
            }
        }
    }
    return counts;
}

namespace
{

KernelInfo
triangleKernelInfo()
{
    KernelInfo info;
    info.name = "triangle";
    info.display = "Triangles";
    info.aliases = {"tc", "triangles", "triangle-count"};
    info.summary = "triangle counting: rank-oriented wedge checks "
                   "with neighborhood-intersection probes at the "
                   "middle vertex";
    info.tags = {"extra"};
    info.order = 80;
    info.traits.symmetrize = true;
    info.factory = [](const KernelSetup& setup) {
        return std::make_unique<TriangleApp>(setup.graph);
    };
    info.referenceWords = [](const KernelSetup& setup) {
        return referenceTriangles(setup.graph);
    };
    return info;
}

} // namespace

DALOREX_REGISTER_KERNEL(triangleKernelInfo)

} // namespace dalorex
