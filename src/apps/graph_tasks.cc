#include "apps/graph_tasks.hh"

#include <algorithm>
#include <bit>

#include "apps/graph_state.hh"
#include "common/bits.hh"
#include "sim/machine.hh"

namespace dalorex
{

Word
floatToWord(float value)
{
    return std::bit_cast<Word>(value);
}

float
wordToFloat(Word word)
{
    return std::bit_cast<float>(word);
}

namespace
{

/** Where T1 reads the per-vertex payload it forwards to T2. */
enum class Payload
{
    value, //!< dist/label (BFS, SSSP, WCC)
    aux,   //!< contribution / x (PageRank, SPMV)
};

/**
 * T1: pull a vertex from IQ1 and emit one CQ1 message per edge-range
 * piece, splitting at chunk borders and at OQT2 (Listing 1). Keeps the
 * IQ1 entry and its progress registers when CQ1 fills, resuming on the
 * next invocation.
 */
template <Payload P>
void
t1Body(Machine& machine, Tile& tile, TaskCtx& ctx)
{
    auto& st = machine.state<GraphTileState>(tile);
    const Partition& part = machine.partition();

    const Word local_v = ctx.peek()[0];
    ctx.read(); // peek(IQ1.head) via the queue register

    Word begin;
    Word end;
    if (st.t1NewVertex) {
        begin = st.rowBegin[local_v];
        end = st.rowEnd[local_v];
        ctx.read(2);
    } else {
        begin = st.t1Begin;
        end = st.t1End;
        ctx.read(2);
    }

    const Word payload =
        P == Payload::value ? st.value[local_v] : st.aux[local_v];
    ctx.read();

    while (ctx.cqFree(kCq1) > 0 && begin < end) {
        // Split the message if the range crosses a chunk border or
        // exceeds OQT2 (Listing 1).
        Word split = static_cast<Word>(part.edgeRangeSplit(begin, end));
        split = std::min(split, begin + st.oqt2);
        const Word local_end =
            part.edgeLocal(begin) + (split - begin);
        ctx.charge(3); // border div, two mins
        ctx.send(kCq1, begin, {local_end, payload});
        begin = split;
    }

    st.t1Begin = begin;
    st.t1End = end;
    st.t1NewVertex = (begin == end);
    ctx.charge(2);
    if (st.t1NewVertex)
        ctx.pop(); // whole range emitted: release the vertex
}

/** How T2 turns the forwarded payload into a per-edge update. */
enum class T2Kind
{
    forward,   //!< WCC label / PageRank contribution
    plusOne,   //!< BFS hop count
    addWeight, //!< SSSP distance
    mulWeight, //!< SPMV partial product
};

/**
 * T2: walk the local edge-array slice [begin, end) and send one CQ2
 * update per neighbor. The TSU's OQT2 guarantee means CQ2 never fills
 * mid-invocation.
 */
template <T2Kind K>
void
t2Body(Machine& machine, Tile& tile, TaskCtx& ctx)
{
    auto& st = machine.state<GraphTileState>(tile);
    Word i = ctx.param(0);
    const Word end = ctx.param(1);
    Word payload = ctx.param(2);

    if (K == T2Kind::plusOne) {
        // BFS: all neighbors get the same dist+1.
        payload += 1;
        ctx.charge(1);
    }

    const Word count = end - i;
    for (; i < end; ++i) {
        const Word neigh = st.edgeIdx[i];
        ctx.read();
        Word out = payload;
        if (K == T2Kind::addWeight) {
            out += st.edgeVal[i];
            ctx.read();
            ctx.charge(1);
        } else if (K == T2Kind::mulWeight) {
            out *= st.edgeVal[i];
            ctx.read();
            ctx.charge(1);
        }
        ctx.send(kCq2, neigh, {out});
        ctx.charge(1); // loop bookkeeping
    }
    ctx.countEdges(count);
}

/** How T3 applies an incoming update at the vertex owner. */
enum class T3Kind
{
    minUpdate,  //!< BFS/SSSP/WCC: keep the smaller value + frontier
    accumInt,   //!< SPMV: y[v] += update
    accumFloat, //!< PageRank: acc[v] += update (float)
};

/**
 * T3: apply the update to the locally owned vertex. All updates are
 * atomic by construction — only this tile touches this datum.
 */
template <T3Kind K>
void
t3Body(Machine& machine, Tile& tile, TaskCtx& ctx)
{
    auto& st = machine.state<GraphTileState>(tile);
    const Word v = ctx.param(0);
    const Word update = ctx.param(1);

    if (K == T3Kind::accumInt) {
        st.value[v] += update;
        ctx.read();
        ctx.write();
        ctx.charge(1);
        return;
    }
    if (K == T3Kind::accumFloat) {
        st.acc[v] = floatToWord(wordToFloat(st.acc[v]) +
                                wordToFloat(update));
        ctx.read();
        ctx.write();
        ctx.charge(1);
        return;
    }

    // minUpdate
    const Word current = st.value[v];
    ctx.read();
    ctx.charge(1);
    if (update >= current)
        return;
    st.value[v] = update;
    ctx.write();

    // Insert the vertex into the local bitmap frontier (Listing 1).
    const Word blk = v >> 5;
    const Word bits = st.frontier[blk];
    ctx.read();
    st.frontier[blk] = maskInBit(bits, v & 31);
    ctx.write();
    ctx.charge(2);
    if (bits == 0) {
        // Only newly active blocks are announced.
        ++st.blocksInFrontier;
        ctx.charge(1);
        if (!st.barrierMode) {
            // Barrierless: tell T4 to re-explore this block now. In
            // epoch mode the host triggers T4 after the global idle
            // signal instead (Sec. III-C).
            ctx.enqueueLocal(kT4, {blk});
        }
    }
}

/**
 * T4: drain queued frontier blocks into IQ1 (Listing 1). Unlike the
 * listing we write partially drained bitmap blocks back, so no vertex
 * is pushed twice after an IQ1-full early exit.
 */
void
t4Body(Machine& machine, Tile& tile, TaskCtx& ctx)
{
    auto& st = machine.state<GraphTileState>(tile);
    (void)machine;

    while (st.blocksInFrontier > 0 && ctx.iqFree(kT1) > 0) {
        if (tile.iqs[kT4].empty())
            break; // defensive: counter/queue divergence is a bug
        const Word blk = ctx.peek()[0];
        ctx.read();
        Word bits = st.frontier[blk];
        ctx.read();
        const Word base = blk << 5;
        while (bits != 0 && ctx.iqFree(kT1) > 0) {
            const unsigned idx = searchMsb(bits);
            bits = maskOutBit(bits, idx);
            ctx.charge(2);
            ctx.enqueueLocal(kT1, {base + idx});
        }
        st.frontier[blk] = bits;
        ctx.write();
        if (bits == 0) {
            ctx.pop();
            --st.blocksInFrontier;
            ctx.charge(1);
        } else {
            break; // IQ1 filled mid-block; resume here later
        }
    }
}

} // namespace

KernelTaskSet
bfsTasks()
{
    return {&t1Body<Payload::value>, &t2Body<T2Kind::plusOne>,
            &t3Body<T3Kind::minUpdate>, &t4Body};
}

KernelTaskSet
ssspTasks()
{
    return {&t1Body<Payload::value>, &t2Body<T2Kind::addWeight>,
            &t3Body<T3Kind::minUpdate>, &t4Body};
}

KernelTaskSet
wccTasks()
{
    return {&t1Body<Payload::value>, &t2Body<T2Kind::forward>,
            &t3Body<T3Kind::minUpdate>, &t4Body};
}

KernelTaskSet
pagerankTasks()
{
    return {&t1Body<Payload::aux>, &t2Body<T2Kind::forward>,
            &t3Body<T3Kind::accumFloat>, &t4Body};
}

KernelTaskSet
spmvTasks()
{
    return {&t1Body<Payload::aux>, &t2Body<T2Kind::mulWeight>,
            &t3Body<T3Kind::accumInt>, &t4Body};
}

} // namespace dalorex
