/**
 * @file
 * Per-tile state shared by the five graph/sparse kernels.
 *
 * Holds this tile's equal-sized chunks of the dataset arrays
 * (Sec. III-A), the bitmap local frontier with its block counter
 * (Listing 1), and T1's partial-progress registers.
 *
 * The CSR `ptr` array is stored as per-vertex (rowBegin, rowEnd) pairs:
 * Listing 1 reads ptr[v] and ptr[v+1], but under low-order interleaving
 * v and v+1 live on different tiles, so each tile keeps both bounds for
 * its own vertices — the same information, locally complete.
 */

#ifndef DALOREX_APPS_GRAPH_STATE_HH
#define DALOREX_APPS_GRAPH_STATE_HH

#include <vector>

#include "common/types.hh"
#include "tile/tile.hh"

namespace dalorex
{

/** Fixed task ids of the graph kernels (registration order). */
constexpr TaskId kT1 = 0; //!< frontier vertex -> edge ranges
constexpr TaskId kT2 = 1; //!< edge range -> per-neighbor updates
constexpr TaskId kT3 = 2; //!< apply update at the owner of the vertex
constexpr TaskId kT4 = 3; //!< re-explore the local bitmap frontier

/** Fixed channel ids of the graph kernels. */
constexpr ChannelId kCq1 = 0; //!< T1 -> T2 (3 flits, edge-encoded)
constexpr ChannelId kCq2 = 1; //!< T2 -> T3 (2 flits, vertex-encoded)

/** One tile's chunks plus kernel-local registers. */
struct GraphTileState : AppTileState
{
    // Vertex-distributed chunks (length nodesPerChunk).
    std::vector<Word> rowBegin; //!< global edge index of first neighbor
    std::vector<Word> rowEnd;   //!< global edge index past the last
    std::vector<Word> value;    //!< dist / label / rank / y
    std::vector<Word> aux;      //!< PR contribution, SPMV x (optional)
    std::vector<Word> acc;      //!< PR accumulator (optional)

    // Edge-distributed chunks (length edgesPerChunk).
    std::vector<Word> edgeIdx; //!< global destination vertex ids
    std::vector<Word> edgeVal; //!< weights / matrix values (optional)

    // Local bitmap frontier (Listing 1).
    std::vector<Word> frontier;   //!< one bit per owned vertex
    Word blocksInFrontier = 0;

    // T1 partial-progress registers ("memory-stored variables").
    bool t1NewVertex = true;
    Word t1Begin = 0;
    Word t1End = 0;

    // Program constants (filled at load time).
    Word oqt2 = 256;          //!< max edges per T1->T2 message
    bool barrierMode = false; //!< epoch-synchronized frontier handling
    Word owned = 0;           //!< vertices this tile actually owns
};

} // namespace dalorex

#endif // DALOREX_APPS_GRAPH_STATE_HH
