#include "apps/histogram.hh"

#include <algorithm>

#include "apps/kernels.hh"
#include "common/logging.hh"

namespace dalorex
{

namespace
{

/**
 * T1 for the histogram: pop one vertex from IQ1, read its degree from
 * the local row bounds, and scatter one +1 to the owner of bucket
 * min(degree, V-1). Self-throttles on CQ2 like the generic T1 does on
 * CQ1, keeping the vertex queued until a message slot frees up.
 */
void
histogramScatterBody(Machine& machine, Tile& tile, TaskCtx& ctx)
{
    auto& st = machine.state<GraphTileState>(tile);
    if (ctx.cqFree(kCq2) == 0)
        return; // retry when the channel drains

    const Word local_v = ctx.peek()[0];
    ctx.read();
    const Word deg = st.rowEnd[local_v] - st.rowBegin[local_v];
    ctx.read(2);
    const Word cap =
        static_cast<Word>(machine.partition().numVertices() - 1);
    const Word bucket = std::min(deg, cap);
    ctx.charge(2); // degree subtract + bucket clamp
    ctx.send(kCq2, bucket, {1});
    // One scattered update per vertex is this kernel's unit of
    // processed work (RunStats::edgesProcessed is app-counted, and
    // throughput/energy-per-edge read it as "work items").
    ctx.countEdges(1);
    ctx.pop();
}

/** T2 is structurally present but fed by nothing: T1 writes CQ2. */
void
histogramUnusedBody(Machine& machine, Tile& tile, TaskCtx& ctx)
{
    (void)machine;
    (void)tile;
    (void)ctx;
    panic("histogram T2 invoked: no task writes CQ1");
}

} // namespace

DegreeHistogramApp::DegreeHistogramApp(const Csr& graph)
    : GraphAppBase(graph)
{
}

KernelTaskSet
DegreeHistogramApp::tasks() const
{
    // T3 (integer accumulate at the bucket's owner) and T4 (frontier
    // drain) are the generic bodies; T1 is the custom scatter.
    KernelTaskSet set = spmvTasks();
    set.t1 = &histogramScatterBody;
    set.t2 = &histogramUnusedBody;
    return set;
}

void
DegreeHistogramApp::initTile(Machine& machine, TileId tile,
                             GraphTileState& st)
{
    (void)machine;
    (void)tile;
    for (std::uint32_t l = 0; l < st.owned; ++l)
        st.value[l] = 0; // bucket counters
}

void
DegreeHistogramApp::start(Machine& machine)
{
    // Every vertex contributes exactly once: one full frontier pass.
    seedFullFrontier(machine);
}

std::vector<Word>
referenceDegreeHistogram(const Csr& graph)
{
    std::vector<Word> hist(graph.numVertices, 0);
    const Word cap = static_cast<Word>(graph.numVertices - 1);
    for (VertexId v = 0; v < graph.numVertices; ++v)
        hist[std::min(static_cast<Word>(graph.degree(v)), cap)] += 1;
    return hist;
}

namespace
{

KernelInfo
histogramKernelInfo()
{
    KernelInfo info;
    info.name = "histogram";
    info.display = "DegHist";
    info.aliases = {"degree-histogram", "deghist"};
    info.summary = "degree histogram: one-pass barrierless "
                   "scatter-reduce of per-vertex degree counts";
    info.tags = {"extra", "fig5-extra"};
    info.order = 70;
    info.factory = [](const KernelSetup& setup) {
        return std::make_unique<DegreeHistogramApp>(setup.graph);
    };
    info.referenceWords = [](const KernelSetup& setup) {
        return referenceDegreeHistogram(setup.graph);
    };
    return info;
}

} // namespace

DALOREX_REGISTER_KERNEL(histogramKernelInfo)

} // namespace dalorex
