/**
 * @file
 * Sparse matrix-vector multiplication in the Dalorex task model — the
 * paper's demonstration that Dalorex "is applicable to other domains
 * such as sparse linear algebra" (Sec. II / IV).
 *
 * The matrix is stored column-major in the CSR arrays (rowPtr indexes
 * columns, colIdx holds row ids): each column owner pushes
 * value * x[col] partial products to the owners of y[row], exactly the
 * push-based flow of the graph kernels. Integer arithmetic keeps the
 * result exact under any accumulation order.
 */

#ifndef DALOREX_APPS_SPMV_HH
#define DALOREX_APPS_SPMV_HH

#include "apps/graph_app.hh"

namespace dalorex
{

/** y = A*x, one barrierless pass. */
class SpmvApp : public GraphAppBase
{
  public:
    /**
     * @param matrix CSC-interpreted sparse matrix with values.
     * @param x      Dense input vector (length numVertices).
     */
    SpmvApp(const Csr& matrix, const std::vector<Word>& x);

    const char* name() const override { return "SPMV"; }
    void start(Machine& machine) override;

  protected:
    KernelTaskSet tasks() const override { return spmvTasks(); }
    bool usesWeights() const override { return true; }
    bool usesAux() const override { return true; }
    void initTile(Machine& machine, TileId tile,
                  GraphTileState& st) override;

  private:
    const std::vector<Word>& x_;
};

} // namespace dalorex

#endif // DALOREX_APPS_SPMV_HH
