#include "apps/registry.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/text.hh"

namespace dalorex
{

bool
KernelInfo::hasTag(const std::string& tag) const
{
    return std::find(tags.begin(), tags.end(), tag) != tags.end();
}

KernelRegistry&
KernelRegistry::instance()
{
    // Construct-on-first-use: registrations run at static init from
    // many translation units in no defined order.
    static KernelRegistry registry;
    return registry;
}

const KernelInfo*
KernelRegistry::add(KernelInfo info)
{
    fatal_if(info.name.empty(), "kernel registration needs a name");
    fatal_if(info.name != toLower(info.name), "kernel name must be "
             "lowercase: ", info.name);
    fatal_if(!info.factory, "kernel ", info.name, " needs a factory");
    fatal_if(info.traits.hasFloatResult ? !info.referenceFloats
                                        : !info.referenceWords,
             "kernel ", info.name, " needs a sequential reference "
             "matching its result type");
    if (info.display.empty())
        info.display = info.name;

    for (const auto& existing : kernels_) {
        auto taken = [&](const std::string& candidate) {
            const std::string c = toLower(candidate);
            if (c == existing->name)
                return true;
            for (const std::string& alias : existing->aliases)
                if (c == toLower(alias))
                    return true;
            return false;
        };
        fatal_if(taken(info.name), "duplicate kernel name: ",
                 info.name);
        for (const std::string& alias : info.aliases)
            fatal_if(taken(alias), "kernel ", info.name,
                     " alias collides with ", existing->name, ": ",
                     alias);
    }

    kernels_.push_back(std::make_unique<KernelInfo>(std::move(info)));
    return kernels_.back().get();
}

const KernelInfo*
KernelRegistry::find(const std::string& nameOrAlias) const
{
    const std::string key = toLower(nameOrAlias);
    for (const auto& kernel : kernels_) {
        if (kernel->name == key)
            return kernel.get();
        for (const std::string& alias : kernel->aliases)
            if (toLower(alias) == key)
                return kernel.get();
    }
    return nullptr;
}

std::vector<const KernelInfo*>
KernelRegistry::all() const
{
    std::vector<const KernelInfo*> out;
    out.reserve(kernels_.size());
    for (const auto& kernel : kernels_)
        out.push_back(kernel.get());
    std::sort(out.begin(), out.end(),
              [](const KernelInfo* a, const KernelInfo* b) {
                  if (a->order != b->order)
                      return a->order < b->order;
                  return a->name < b->name;
              });
    return out;
}

std::vector<const KernelInfo*>
KernelRegistry::tagged(const std::string& tag) const
{
    std::vector<const KernelInfo*> out;
    for (const KernelInfo* kernel : all())
        if (kernel->hasTag(tag))
            out.push_back(kernel);
    return out;
}

std::string
KernelRegistry::namesText(const std::string& sep) const
{
    std::string out;
    for (const KernelInfo* kernel : all()) {
        if (!out.empty())
            out += sep;
        out += kernel->name;
    }
    return out;
}

std::vector<const KernelInfo*>
allKernels()
{
    return KernelRegistry::instance().all();
}

std::vector<const KernelInfo*>
fig5Kernels()
{
    return KernelRegistry::instance().tagged("fig5");
}

std::vector<const KernelInfo*>
paperKernels()
{
    return KernelRegistry::instance().tagged("paper");
}

const KernelInfo*
kernelOrDie(const std::string& nameOrAlias)
{
    const KernelInfo* kernel =
        KernelRegistry::instance().find(nameOrAlias);
    fatal_if(kernel == nullptr, "unknown kernel: ", nameOrAlias, " (",
             KernelRegistry::instance().namesText(), ")");
    return kernel;
}

const KernelInfo*
defaultKernel()
{
    const KernelInfo* bfs = KernelRegistry::instance().find("bfs");
    if (bfs != nullptr)
        return bfs;
    const std::vector<const KernelInfo*> kernels = allKernels();
    fatal_if(kernels.empty(), "no kernels registered (is the kernel "
             "library linked into this binary?)");
    return kernels.front();
}

} // namespace dalorex
