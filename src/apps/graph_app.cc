#include "apps/graph_app.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace dalorex
{

GraphAppBase::GraphAppBase(const Csr& graph) : graph_(graph)
{
    panic_if(graph_.numVertices == 0 || graph_.numEdges == 0,
             "graph kernels need a non-empty graph");
}

void
GraphAppBase::setQueueSizing(const QueueSizing& sizing)
{
    fatal_if(sizing.cq2 < sizing.oqt2,
             "CQ2 capacity must cover the OQT2 guarantee");
    sizing_ = sizing;
}

void
GraphAppBase::configure(Machine& machine)
{
    const Partition& part = machine.partition();
    panic_if(part.numVertices() != graph_.numVertices ||
                 part.numEdges() != graph_.numEdges,
             "machine partition does not match the app's graph");

    const std::uint32_t npc = part.nodesPerChunk();
    const std::uint32_t epc = part.edgesPerChunk();
    const auto blocks = static_cast<std::uint32_t>(divCeil(npc, 32));
    const bool weights = usesWeights();
    panic_if(weights && !graph_.weighted(),
             "kernel needs edge values but the graph has none");

    for (TileId t = 0; t < machine.numTiles(); ++t) {
        std::unique_ptr<GraphTileState> st = makeTileState();
        st->rowBegin.assign(npc, 0);
        st->rowEnd.assign(npc, 0);
        st->value.assign(npc, 0);
        if (usesAux())
            st->aux.assign(npc, 0);
        if (usesAcc())
            st->acc.assign(npc, 0);
        st->edgeIdx.assign(epc, 0);
        if (weights)
            st->edgeVal.assign(epc, 0);
        st->frontier.assign(blocks, 0);
        st->oqt2 = sizing_.oqt2;
        st->barrierMode = machine.config().barrier || needsBarrier();
        st->owned = part.ownedVertices(t);

        for (std::uint32_t l = 0; l < st->owned; ++l) {
            const VertexId v = part.vertexGlobal(t, l);
            st->rowBegin[l] = graph_.rowPtr[v];
            st->rowEnd[l] = graph_.rowPtr[v + 1];
        }
        const std::uint32_t owned_edges = part.ownedEdges(t);
        for (std::uint32_t l = 0; l < owned_edges; ++l) {
            const EdgeId e = part.edgeGlobal(t, l);
            st->edgeIdx[l] = graph_.colIdx[e];
            if (weights)
                st->edgeVal[l] = graph_.weights[e];
        }

        initTile(machine, t, *st);

        std::uint64_t words = st->rowBegin.size() + st->rowEnd.size() +
                              st->value.size() + st->aux.size() +
                              st->acc.size() + st->edgeIdx.size() +
                              st->edgeVal.size() + st->frontier.size();
        machine.addDataWords(t, words);
        machine.setTileState(t, std::move(st));
    }

    const KernelTaskSet set = tasks();

    TaskDef t1;
    t1.name = "T1";
    t1.paramWords = 1;
    t1.preload = false; // T1 peeks and may keep the vertex (Listing 1)
    t1.iqCapacity = sizing_.iq1;
    t1.outChannel = t1OutChannel();
    t1.maxOutMsgs = 0; // self-throttling on CQ1.full
    t1.fn = set.t1;
    machine.addTask(std::move(t1));

    TaskDef t2;
    t2.name = "T2";
    t2.paramWords = 3;
    t2.preload = true;
    t2.iqCapacity = sizing_.iq2;
    t2.outChannel = kCq2;
    t2.maxOutMsgs = sizing_.oqt2; // Listing 1's OQT2 guarantee
    t2.fn = set.t2;
    machine.addTask(std::move(t2));

    TaskDef t3;
    t3.name = "T3";
    t3.paramWords = 2;
    t3.preload = true;
    t3.iqCapacity = sizing_.iq3;
    // T3's only output is the never-overflowing IQ4 (a block id is
    // queued at most once while its bits are set), so it carries no
    // runnable constraint — it must always drain the network.
    t3.fn = set.t3;
    machine.addTask(std::move(t3));

    TaskDef t4;
    t4.name = "T4";
    t4.paramWords = 1;
    t4.preload = false; // pops a block only once fully drained
    t4.iqCapacity = blocks + 1;
    t4.outLocalTask = kT1; // needs IQ1 space to make progress
    t4.fn = set.t4;
    machine.addTask(std::move(t4));

    ChannelDef cq1;
    cq1.name = "CQ1";
    cq1.numWords = 3;
    cq1.targetTask = kT2;
    cq1.encode = cq1Encode();
    cq1.cqCapacity = sizing_.cq1;
    machine.addChannel(std::move(cq1));

    ChannelDef cq2;
    cq2.name = "CQ2";
    cq2.numWords = 2;
    cq2.targetTask = kT3;
    cq2.encode = HeadEncode::vertex;
    cq2.cqCapacity = sizing_.cq2;
    machine.addChannel(std::move(cq2));
}

void
GraphAppBase::seedFullFrontier(Machine& machine)
{
    for (TileId t = 0; t < machine.numTiles(); ++t) {
        auto& st = machine.state<GraphTileState>(t);
        if (st.owned == 0)
            continue;
        const std::uint32_t full_blocks = st.owned / 32;
        for (std::uint32_t b = 0; b < full_blocks; ++b)
            st.frontier[b] = ~Word(0);
        if (st.owned % 32 != 0)
            st.frontier[full_blocks] =
                (Word(1) << (st.owned % 32)) - 1;
        const auto active = static_cast<std::uint32_t>(
            divCeil(st.owned, 32));
        st.blocksInFrontier = active;
        for (std::uint32_t b = 0; b < active; ++b)
            machine.seed(t, kT4, {b});
    }
}

void
GraphAppBase::seedRoot(Machine& machine, VertexId root)
{
    const Partition& part = machine.partition();
    machine.seed(part.vertexOwner(root), kT1,
                 {part.vertexLocal(root)});
}

bool
GraphAppBase::seedFrontierBlocks(Machine& machine)
{
    bool any = false;
    for (TileId t = 0; t < machine.numTiles(); ++t) {
        auto& st = machine.state<GraphTileState>(t);
        const auto blocks =
            static_cast<std::uint32_t>(st.frontier.size());
        // The host-triggered T4 kickoff scans the bitmap.
        machine.hostCharge(t, blocks, blocks, 0);
        if (st.blocksInFrontier == 0)
            continue;
        for (std::uint32_t b = 0; b < blocks; ++b) {
            if (st.frontier[b] != 0)
                machine.seed(t, kT4, {b});
        }
        any = true;
    }
    return any;
}

std::vector<Word>
GraphAppBase::gatherValues(Machine& machine) const
{
    const Partition& part = machine.partition();
    std::vector<Word> out(graph_.numVertices);
    for (VertexId v = 0; v < graph_.numVertices; ++v) {
        const auto& st =
            machine.state<GraphTileState>(part.vertexOwner(v));
        out[v] = st.value[part.vertexLocal(v)];
    }
    return out;
}

std::vector<double>
GraphAppBase::gatherFloats(Machine& machine) const
{
    std::vector<double> out(graph_.numVertices);
    const std::vector<Word> words = gatherValues(machine);
    for (VertexId v = 0; v < graph_.numVertices; ++v)
        out[v] = static_cast<double>(wordToFloat(words[v]));
    return out;
}

} // namespace dalorex
