/**
 * @file
 * Delta-stepping SSSP in the Dalorex task model: bucketed relaxation
 * on the host-epoch path. Vertices are relaxed in distance buckets of
 * width delta — each epoch the host reseeds only the frontier
 * vertices whose tentative distance falls inside the current bucket,
 * parking the rest in a per-tile deferred bitmap until the bucket
 * advances. A bucket may take several epochs (the classic inner
 * light-edge loop: a vertex improved while its bucket is open is
 * re-relaxed next epoch); when no frontier vertex is below the
 * bucket limit, the bucket jumps straight to the smallest deferred
 * distance. The label-correcting T1..T4 bodies are shared with
 * `sssp`, so the two kernels differ only in relaxation schedule —
 * the work-efficiency contrast the ROADMAP calls for — and both
 * validate against the same `referenceSssp`.
 *
 * This is also the sparse-frontier workload that most benefits from
 * the engine's active-set stepping: between reseeds only the tiles
 * owning in-bucket vertices (and the routers moving their updates)
 * are ever visited.
 *
 * Registered through the kernel registry alone: this file plus its
 * CMake source-list line is the whole integration.
 */

#include <algorithm>
#include <memory>

#include "apps/graph_app.hh"
#include "apps/kernels.hh"
#include "common/bits.hh"
#include "common/logging.hh"
#include "graph/reference.hh"

namespace dalorex
{

namespace
{

/** Bucket width. Edge weights are uniform in [1, 64], so width 16
 *  gives a handful of meaningfully-sized buckets on the quick
 *  datasets without degenerating into Dijkstra (delta=1) or plain
 *  label-correcting (delta=inf). */
constexpr Word kDelta = 16;

/** Per-tile state: the shared chunk arrays plus the parked frontier
 *  bits whose vertices wait for a later bucket. */
struct DeltaTileState : GraphTileState
{
    std::vector<Word> deferred; //!< one bit per owned vertex
};

class DeltaSsspApp : public GraphAppBase
{
  public:
    DeltaSsspApp(const Csr& graph, VertexId root)
        : GraphAppBase(graph), root_(root)
    {
        fatal_if(root >= graph.numVertices,
                 "SSSP root out of range");
        fatal_if(!graph.weighted(),
                 "SSSP requires a weighted graph");
    }

    const char* name() const override { return "DeltaSSSP"; }
    /** Bucket boundaries are the epochs. */
    bool needsBarrier() const override { return true; }

    void
    start(Machine& machine) override
    {
        const Partition& part = machine.partition();
        auto& st =
            machine.state<GraphTileState>(part.vertexOwner(root_));
        st.value[part.vertexLocal(root_)] = 0;
        seedRoot(machine, root_);
    }

    bool startEpoch(Machine& machine) override;

  protected:
    KernelTaskSet tasks() const override { return ssspTasks(); }
    bool usesWeights() const override { return true; }

    std::unique_ptr<GraphTileState>
    makeTileState() const override
    {
        return std::make_unique<DeltaTileState>();
    }

    void
    initTile(Machine& machine, TileId tile,
             GraphTileState& st) override
    {
        for (auto& v : st.value)
            v = infDist;
        static_cast<DeltaTileState&>(st).deferred.assign(
            st.frontier.size(), 0);
        // The parked bitmap lives in the scratchpad next to the
        // frontier bitmap; account its footprint.
        machine.addDataWords(tile, st.frontier.size());
    }

  private:
    VertexId root_;
    /** Exclusive upper distance bound of the open bucket. */
    Word bucketLimit_ = kDelta;
};

/**
 * Epoch boundary: park out-of-bucket frontier bits, reseed the rest.
 * Advances the bucket (to the smallest deferred distance's bucket)
 * whenever the open one has drained; returns false once neither
 * fresh nor parked frontier bits remain anywhere — convergence.
 */
bool
DeltaSsspApp::startEpoch(Machine& machine)
{
    for (;;) {
        bool any_in_bucket = false;
        Word min_deferred = infDist;
        for (TileId t = 0; t < machine.numTiles(); ++t) {
            auto& st = machine.state<DeltaTileState>(t);
            const auto blocks =
                static_cast<std::uint32_t>(st.frontier.size());
            // The host-triggered bucket filter scans the bitmap and
            // reads the tentative distance of every candidate.
            std::uint32_t candidates = 0;
            st.blocksInFrontier = 0;
            for (std::uint32_t b = 0; b < blocks; ++b) {
                Word bits = st.frontier[b] | st.deferred[b];
                Word in_bucket = 0;
                Word parked = 0;
                while (bits != 0) {
                    const unsigned idx = searchMsb(bits);
                    bits = maskOutBit(bits, idx);
                    const Word v = (b << 5) + idx;
                    ++candidates;
                    if (st.value[v] < bucketLimit_)
                        in_bucket = maskInBit(in_bucket, idx);
                    else {
                        parked = maskInBit(parked, idx);
                        min_deferred =
                            std::min(min_deferred, st.value[v]);
                    }
                }
                st.frontier[b] = in_bucket;
                st.deferred[b] = parked;
                if (in_bucket != 0) {
                    ++st.blocksInFrontier;
                    any_in_bucket = true;
                }
            }
            machine.hostCharge(t, blocks + 2 * candidates,
                               blocks + candidates, blocks);
        }

        if (any_in_bucket) {
            for (TileId t = 0; t < machine.numTiles(); ++t) {
                auto& st = machine.state<DeltaTileState>(t);
                if (st.blocksInFrontier == 0)
                    continue;
                const auto blocks = static_cast<std::uint32_t>(
                    st.frontier.size());
                for (std::uint32_t b = 0; b < blocks; ++b) {
                    if (st.frontier[b] != 0)
                        machine.seed(t, kT4, {b});
                }
            }
            return true;
        }
        if (min_deferred == infDist)
            return false; // no frontier anywhere: converged
        // The open bucket drained: jump to the bucket holding the
        // smallest parked distance (skipping empty buckets).
        bucketLimit_ = (min_deferred / kDelta + 1) * kDelta;
    }
}

KernelInfo
ssspDeltaKernelInfo()
{
    KernelInfo info;
    info.name = "sssp-delta";
    info.display = "DeltaSSSP";
    info.aliases = {"delta-sssp", "delta-stepping"};
    info.summary = "delta-stepping SSSP: bucketed relaxation in "
                   "epoch-synchronized distance buckets (width 16)";
    info.tags = {"extra"};
    info.order = 45; // next to the label-correcting sssp (40)
    info.traits.needsRoot = true;
    info.traits.needsWeights = true;
    info.traits.weightMin = 1;
    info.traits.weightMax = 64;
    info.traits.needsBarrier = true;
    info.factory = [](const KernelSetup& setup) {
        return std::make_unique<DeltaSsspApp>(setup.graph,
                                              setup.root);
    };
    // Same adapted graph and same exact result as `sssp`: any
    // relaxation schedule converges to the shortest distances.
    info.referenceWords = [](const KernelSetup& setup) {
        return referenceSssp(setup.graph, setup.root);
    };
    return info;
}

} // namespace

DALOREX_REGISTER_KERNEL(ssspDeltaKernelInfo)

} // namespace dalorex
