/**
 * @file
 * The T1..T4 task bodies of the graph kernels, following Listing 1.
 *
 * All kernels share T1 (explore a frontier vertex, emit edge-range
 * messages split at chunk borders and at OQT2) and T4 (drain the local
 * bitmap frontier into IQ1). T2 and T3 differ per kernel:
 *
 *   kernel    T2 per edge                 T3 at vertex owner
 *   BFS       forward dist+1              min-update + frontier insert
 *   SSSP      dist + edge weight          min-update + frontier insert
 *   WCC       forward label               min-update + frontier insert
 *   PageRank  forward contribution        float accumulate
 *   SPMV      value * x[col]              integer accumulate
 */

#ifndef DALOREX_APPS_GRAPH_TASKS_HH
#define DALOREX_APPS_GRAPH_TASKS_HH

#include "tile/task.hh"

namespace dalorex
{

/** The four task bodies of one kernel. */
struct KernelTaskSet
{
    TaskFn t1;
    TaskFn t2;
    TaskFn t3;
    TaskFn t4;
};

KernelTaskSet bfsTasks();
KernelTaskSet ssspTasks();
KernelTaskSet wccTasks();
KernelTaskSet pagerankTasks();
KernelTaskSet spmvTasks();

/** Reinterpret a float as a machine word (flit payloads). */
Word floatToWord(float value);
/** Reinterpret a machine word as a float. */
float wordToFloat(Word word);

} // namespace dalorex

#endif // DALOREX_APPS_GRAPH_TASKS_HH
