/**
 * @file
 * Weakly Connected Components in the Dalorex task model, implemented
 * with graph coloring / min-label propagation as in the paper's cited
 * approach [57] (Sec. IV).
 */

#ifndef DALOREX_APPS_WCC_HH
#define DALOREX_APPS_WCC_HH

#include "apps/graph_app.hh"

namespace dalorex
{

/**
 * WCC: every vertex converges to the minimum vertex id of its weakly
 * connected component. Pass a symmetrized graph (weak connectivity
 * means reachability in either direction).
 */
class WccApp : public GraphAppBase
{
  public:
    explicit WccApp(const Csr& graph);

    const char* name() const override { return "WCC"; }
    void start(Machine& machine) override;
    bool startEpoch(Machine& machine) override;

  protected:
    KernelTaskSet tasks() const override { return wccTasks(); }
    bool usesWeights() const override { return false; }
    void initTile(Machine& machine, TileId tile,
                  GraphTileState& st) override;
};

} // namespace dalorex

#endif // DALOREX_APPS_WCC_HH
