/**
 * @file
 * Shared scaffolding of the five graph/sparse kernels: array
 * distribution, task/channel registration, frontier seeding and result
 * gathering.
 */

#ifndef DALOREX_APPS_GRAPH_APP_HH
#define DALOREX_APPS_GRAPH_APP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/graph_state.hh"
#include "apps/graph_tasks.hh"
#include "graph/csr.hh"
#include "sim/app.hh"
#include "sim/machine.hh"

namespace dalorex
{

/**
 * Queue and OQT2 sizing of the kernel programs. Defaults follow
 * Listing 1's shape (IQ1 small, IQ3 deep) scaled to entry counts that
 * keep per-tile queue storage in the tens of kilobytes.
 */
struct QueueSizing
{
    std::uint32_t iq1 = 32;   //!< T1 input (frontier vertices)
    std::uint32_t iq2 = 128;  //!< T2 input (edge ranges)
    std::uint32_t iq3 = 1024; //!< T3 input (vertex updates)
    std::uint32_t cq1 = 128;  //!< T1 -> network
    std::uint32_t cq2 = 512;  //!< T2 -> network (>= oqt2)
    std::uint32_t oqt2 = 256; //!< max edges per T1->T2 message
};

/** Base class implementing the common structure of the kernels. */
class GraphAppBase : public App
{
  public:
    /** The graph must outlive the app. */
    explicit GraphAppBase(const Csr& graph);

    /** Override queue sizing before the run (ablation benches). */
    void setQueueSizing(const QueueSizing& sizing);

    void configure(Machine& machine) override;

    /** Collect the distributed `value` array back into global order. */
    std::vector<Word> gatherValues(Machine& machine) const;
    /** Same, reinterpreting the words as floats (PageRank ranks). */
    std::vector<double> gatherFloats(Machine& machine) const;

  protected:
    /** The kernel's T1..T4 bodies. */
    virtual KernelTaskSet tasks() const = 0;
    /**
     * Channel T1 writes: CQ1 (edge-encoded, feeding T2) for the
     * edge-walking kernels; scatter-reduce kernels that emit one
     * vertex-keyed update per explored vertex override this to CQ2.
     */
    virtual ChannelId t1OutChannel() const { return kCq1; }
    /**
     * CQ1 head-flit encoding: edge-encoded for the edge-walking
     * kernels; kernels whose T2 operates on vertex-owned state
     * (triangle counting's neighborhood intersection) override this
     * to HeadEncode::vertex.
     */
    virtual HeadEncode cq1Encode() const { return HeadEncode::edge; }
    /**
     * Per-tile state factory: kernels carrying extra chunk arrays
     * (triangle counting's oriented adjacency) return a GraphTileState
     * subclass; the base arrays are filled by configure() either way.
     */
    virtual std::unique_ptr<GraphTileState>
    makeTileState() const
    {
        return std::make_unique<GraphTileState>();
    }
    /** Whether edge values are stored (SSSP weights, SPMV values). */
    virtual bool usesWeights() const = 0;
    /** Whether the aux vertex array exists (PR contribution, x). */
    virtual bool usesAux() const { return false; }
    /** Whether the acc vertex array exists (PR accumulator). */
    virtual bool usesAcc() const { return false; }
    /** Kernel-specific initialization of a tile's value/aux arrays. */
    virtual void initTile(Machine& machine, TileId tile,
                          GraphTileState& st) = 0;

    /** Mark every owned vertex active and queue all blocks to T4. */
    void seedFullFrontier(Machine& machine);
    /** Push one vertex into its owner's IQ1 (BFS/SSSP root). */
    void seedRoot(Machine& machine, VertexId root);
    /**
     * Epoch restart (barrier mode): queue every non-empty bitmap block
     * to T4 on every tile, charging the host-triggered scan. Returns
     * false when no frontier bits remain anywhere (converged).
     */
    bool seedFrontierBlocks(Machine& machine);

    const Csr& graph_;
    QueueSizing sizing_;
};

} // namespace dalorex

#endif // DALOREX_APPS_GRAPH_APP_HH
