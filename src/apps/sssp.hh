/**
 * @file
 * Single-Source Shortest Path in the Dalorex task model (Listing 1):
 * weighted distance from a root vertex (Sec. IV).
 */

#ifndef DALOREX_APPS_SSSP_HH
#define DALOREX_APPS_SSSP_HH

#include "apps/graph_app.hh"

namespace dalorex
{

/** SSSP: label-correcting distance propagation over edge weights. */
class SsspApp : public GraphAppBase
{
  public:
    /** The graph must carry positive edge weights. */
    SsspApp(const Csr& graph, VertexId root);

    const char* name() const override { return "SSSP"; }
    void start(Machine& machine) override;
    bool startEpoch(Machine& machine) override;

  protected:
    KernelTaskSet tasks() const override { return ssspTasks(); }
    bool usesWeights() const override { return true; }
    void initTile(Machine& machine, TileId tile,
                  GraphTileState& st) override;

  private:
    VertexId root_;
};

} // namespace dalorex

#endif // DALOREX_APPS_SSSP_HH
