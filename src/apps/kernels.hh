/**
 * @file
 * Kernel setup factory: adapts a base dataset for each of the five
 * evaluated kernels (weights for SSSP/SPMV, symmetrization for WCC, an
 * input vector for SPMV), owns the adapted graph, builds the App, and
 * computes the sequential reference result for validation.
 */

#ifndef DALOREX_APPS_KERNELS_HH
#define DALOREX_APPS_KERNELS_HH

#include <memory>
#include <string>
#include <vector>

#include "graph/csr.hh"
#include "sim/app.hh"

namespace dalorex
{

class GraphAppBase;

/** The five kernels of the paper's evaluation (Sec. IV). */
enum class Kernel
{
    bfs,
    sssp,
    wcc,
    pagerank,
    spmv,
};

const char* toString(Kernel kernel);

/** All five, in the paper's Fig. 7/8/9 order. */
std::vector<Kernel> allKernels();

/** The Fig. 5 subset (BFS, WCC, PageRank, SSSP). */
std::vector<Kernel> fig5Kernels();

/** A kernel instance bound to its adapted dataset. */
struct KernelSetup
{
    Kernel kernel;
    Csr graph;           //!< adapted copy (weights/symmetrized)
    std::vector<Word> x; //!< SPMV input vector (else empty)
    VertexId root = 0;   //!< BFS/SSSP source
    double damping = 0.85;
    unsigned iterations = 10; //!< PageRank epochs

    /** Build the App; the returned app references this->graph. */
    std::unique_ptr<GraphAppBase> makeApp() const;

    /** Sequential reference for integer-valued kernels. */
    std::vector<Word> referenceWords() const;
    /** Sequential reference for PageRank. */
    std::vector<double> referenceFloats() const;
};

/**
 * Adapt `base` for `kernel`:
 *  - BFS: as-is; root = first vertex with out-degree > 0;
 *  - SSSP: + uniform random weights in [1, 64];
 *  - WCC: symmetrized;
 *  - PageRank: as-is, damping 0.85, 10 iterations;
 *  - SPMV: + values in [1, 16], x in [0, 255].
 */
KernelSetup makeKernelSetup(Kernel kernel, const Csr& base,
                            std::uint64_t seed = 7);

/** First vertex with out-degree > 0 (deterministic search root). */
VertexId pickRoot(const Csr& graph);

/**
 * Validate a finished run's per-vertex words against the setup's
 * sequential reference; fatal() on mismatch. Shared by the CLI, the
 * sweep orchestrator and the figure benches.
 */
void validateWords(const KernelSetup& setup,
                   const std::vector<Word>& got);

/** Same for PageRank ranks (relative tolerance 1e-3). */
void validateFloats(const KernelSetup& setup,
                    const std::vector<double>& got);

} // namespace dalorex

#endif // DALOREX_APPS_KERNELS_HH
