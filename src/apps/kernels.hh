/**
 * @file
 * Kernel setup: adapts a base dataset for a registered kernel, driven
 * entirely by the kernel's declared traits (weights for SSSP/SPMV,
 * symmetrization for WCC/k-core, an input vector for SPMV), owns the
 * adapted graph, builds the App through the kernel's factory, and
 * checks runs against the kernel's sequential reference.
 *
 * No per-kernel code lives here: kernels describe themselves via
 * KernelInfo (apps/registry.hh) and this module interprets the
 * description, so new kernels need no edits in this file.
 */

#ifndef DALOREX_APPS_KERNELS_HH
#define DALOREX_APPS_KERNELS_HH

#include <memory>
#include <string>
#include <vector>

#include "apps/registry.hh"
#include "graph/csr.hh"
#include "sim/app.hh"

namespace dalorex
{

class GraphAppBase;
class Machine;

/** A kernel instance bound to its adapted dataset. */
struct KernelSetup
{
    const KernelInfo* kernel = nullptr;
    Csr graph;           //!< adapted copy (weights/symmetrized)
    std::vector<Word> x; //!< SPMV input vector (else empty)
    VertexId root = 0;   //!< BFS/SSSP source
    double damping = 0.85;    //!< from kernel->defaults
    unsigned iterations = 10; //!< synchronous epochs (PageRank)
    double epsilon = 0.0;     //!< convergence threshold (0 = off)

    /** Whether the result validates as floats (kernel trait). */
    bool
    floatResult() const
    {
        return kernel->traits.hasFloatResult;
    }

    /** Build the App; the returned app references this->graph. */
    std::unique_ptr<GraphAppBase> makeApp() const;

    /** Sequential reference for integer-valued kernels. */
    std::vector<Word> referenceWords() const;
    /** Sequential reference for float-valued kernels. */
    std::vector<double> referenceFloats() const;
};

/**
 * Adapt `base` for `kernel` per its declared traits:
 *  - traits.symmetrize: undirected view (WCC, k-core);
 *  - traits.needsWeights: + uniform random weights in
 *    [weightMin, weightMax] (SSSP, SPMV);
 *  - traits.needsInputVector: + x in [0, 255] (SPMV);
 *  - traits.needsRoot: root = first vertex with out-degree > 0;
 *  - defaults: damping/iterations copied from kernel->defaults.
 */
KernelSetup makeKernelSetup(const KernelInfo& kernel, const Csr& base,
                            std::uint64_t seed = 7);

/** Same, looking the kernel up by name/alias (fatal() on unknown). */
KernelSetup makeKernelSetup(const std::string& kernel, const Csr& base,
                            std::uint64_t seed = 7);

/** First vertex with out-degree > 0 (deterministic search root). */
VertexId pickRoot(const Csr& graph);

/**
 * Parse a `--param` value ("damping=0.9,iterations=20") into
 * overrides. Unknown keys, malformed numbers and out-of-range values
 * (damping in (0, 1), iterations in [1, 1000]) yield false with a
 * one-line diagnostic — the key set is validated here, once, instead
 * of per scenario point.
 */
bool parseParamOverrides(const std::string& text,
                         std::vector<ParamOverride>& out,
                         std::string& err);

/**
 * Apply overrides to a setup per its kernel's KernelDefaults: keys
 * the kernel declares unused are skipped, so one override list can
 * span every kernel of a sweep (PageRank takes damping/iterations,
 * BFS takes neither).
 */
void applyParamOverrides(KernelSetup& setup,
                         const std::vector<ParamOverride>& params);

/**
 * Check a finished run's per-vertex words against the setup's
 * sequential reference (the kernel's validator; exact equality by
 * default). Returns the mismatch as data instead of fatal()ing, so a
 * failed scenario fails its own sweep row, not the whole process.
 */
ValidationResult validateWords(const KernelSetup& setup,
                               const std::vector<Word>& got);

/** Same for float-valued kernels (1e-3 relative tolerance default). */
ValidationResult validateFloats(const KernelSetup& setup,
                                const std::vector<double>& got);

/**
 * The default float comparison with an extra absolute `slack` added
 * to every per-vertex tolerance — for kernels whose engine and
 * reference may legitimately diverge by a bounded amount (PageRank's
 * convergence-threshold mode stops within O(epsilon) of the
 * reference). slack == 0 is exactly the default validator.
 */
ValidationResult validateFloatsWithSlack(const KernelSetup& setup,
                                         const std::vector<double>& got,
                                         double slack);

/**
 * Gather the app's result from `machine` (words or floats per the
 * kernel's trait) and validate it. Shared by the CLI, the sweep
 * orchestrator, the figure benches and the test matrices.
 */
ValidationResult validateRun(const KernelSetup& setup,
                             GraphAppBase& app, Machine& machine);

} // namespace dalorex

#endif // DALOREX_APPS_KERNELS_HH
