#include "apps/kcore.hh"

#include <algorithm>

#include "apps/kernels.hh"
#include "common/bits.hh"
#include "common/logging.hh"

namespace dalorex
{

namespace
{

/**
 * T3 for k-core: one decrement of the receiving vertex's residual
 * degree per edge from a peeled neighbor. Decrements addressed to
 * already-peeled vertices are dropped (their coreness is sealed).
 * Unlike the min-update kernels nothing re-enters the frontier here —
 * peeling decisions are made by the host at the epoch boundary.
 */
void
kcoreApplyBody(Machine& machine, Tile& tile, TaskCtx& ctx)
{
    auto& st = machine.state<GraphTileState>(tile);
    const Word v = ctx.param(0);

    const Word alive = st.acc[v];
    ctx.read();
    ctx.charge(1);
    if (alive == 0)
        return;
    st.aux[v] -= 1;
    ctx.read();
    ctx.write();
    ctx.charge(1);
}

} // namespace

KCoreApp::KCoreApp(const Csr& graph) : GraphAppBase(graph) {}

KernelTaskSet
KCoreApp::tasks() const
{
    // T1 (explore a peeled vertex's edge ranges) and T2 (one update
    // per edge) are the generic label-forwarding bodies; only the
    // apply step differs.
    KernelTaskSet set = wccTasks();
    set.t3 = &kcoreApplyBody;
    return set;
}

void
KCoreApp::initTile(Machine& machine, TileId tile, GraphTileState& st)
{
    (void)machine;
    (void)tile;
    for (std::uint32_t l = 0; l < st.owned; ++l) {
        st.value[l] = 0;                            // coreness
        st.aux[l] = st.rowEnd[l] - st.rowBegin[l];  // residual degree
        st.acc[l] = 1;                              // alive
    }
}

void
KCoreApp::start(Machine& machine)
{
    peelAndSeed(machine);
}

bool
KCoreApp::startEpoch(Machine& machine)
{
    return peelAndSeed(machine);
}

bool
KCoreApp::peelAndSeed(Machine& machine)
{
    for (;;) {
        std::uint64_t alive = 0;
        bool peeled = false;
        for (TileId t = 0; t < machine.numTiles(); ++t) {
            auto& st = machine.state<GraphTileState>(t);
            std::uint32_t peeled_here = 0;
            for (std::uint32_t l = 0; l < st.owned; ++l) {
                if (st.acc[l] == 0)
                    continue;
                if (st.aux[l] > level_) {
                    ++alive;
                    continue;
                }
                // Peel: coreness is the current level; the vertex
                // becomes the next epoch's frontier so T1 streams its
                // edges exactly once.
                st.value[l] = level_;
                st.acc[l] = 0;
                const Word blk = l >> 5;
                if (st.frontier[blk] == 0)
                    ++st.blocksInFrontier;
                st.frontier[blk] = maskInBit(st.frontier[blk], l & 31);
                ++peeled_here;
                peeled = true;
            }
            // The host-triggered peel scan reads the alive flag and
            // residual degree of every owned vertex; peeled vertices
            // add a coreness/flag/bitmap write burst.
            machine.hostCharge(t, 2 * st.owned + 2 * peeled_here,
                               2 * st.owned, 3 * peeled_here);
        }

        if (peeled) {
            for (TileId t = 0; t < machine.numTiles(); ++t) {
                auto& st = machine.state<GraphTileState>(t);
                if (st.blocksInFrontier == 0)
                    continue;
                const auto blocks =
                    static_cast<std::uint32_t>(st.frontier.size());
                for (std::uint32_t b = 0; b < blocks; ++b) {
                    if (st.frontier[b] != 0)
                        machine.seed(t, kT4, {b});
                }
            }
            return true;
        }
        if (alive == 0)
            return false; // every vertex peeled: done
        ++level_; // nobody at this level: raise k and rescan
    }
}

std::vector<Word>
referenceKCore(const Csr& graph)
{
    const VertexId n = graph.numVertices;
    std::vector<Word> core(n, 0);
    std::vector<Word> deg(n, 0);
    std::vector<std::uint8_t> alive(n, 1);
    for (VertexId v = 0; v < n; ++v)
        deg[v] = static_cast<Word>(graph.degree(v));

    VertexId remaining = n;
    Word level = 0;
    std::vector<VertexId> peel;
    while (remaining > 0) {
        peel.clear();
        for (VertexId v = 0; v < n; ++v) {
            if (alive[v] && deg[v] <= level)
                peel.push_back(v);
        }
        if (peel.empty()) {
            ++level;
            continue;
        }
        // Same schedule as the task program: the peel set is fixed
        // before any decrement applies, and decrements to vertices
        // peeled in the same round are dropped.
        for (const VertexId v : peel) {
            core[v] = level;
            alive[v] = 0;
        }
        for (const VertexId v : peel) {
            for (EdgeId e = graph.rowPtr[v]; e < graph.rowPtr[v + 1];
                 ++e) {
                const VertexId w = graph.colIdx[e];
                if (alive[w])
                    deg[w] -= 1;
            }
        }
        remaining -= static_cast<VertexId>(peel.size());
    }
    return core;
}

namespace
{

KernelInfo
kcoreKernelInfo()
{
    KernelInfo info;
    info.name = "kcore";
    info.display = "KCore";
    info.aliases = {"k-core", "coreness"};
    info.summary = "k-core decomposition: per-vertex coreness by "
                   "level-synchronous peeling (epoch barrier)";
    info.tags = {"extra", "fig5-extra"};
    info.order = 60;
    info.traits.symmetrize = true;
    info.traits.needsBarrier = true;
    info.factory = [](const KernelSetup& setup) {
        return std::make_unique<KCoreApp>(setup.graph);
    };
    info.referenceWords = [](const KernelSetup& setup) {
        return referenceKCore(setup.graph);
    };
    return info;
}

} // namespace

DALOREX_REGISTER_KERNEL(kcoreKernelInfo)

} // namespace dalorex
