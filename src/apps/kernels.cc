#include "apps/kernels.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "apps/graph_app.hh"
#include "common/logging.hh"

namespace dalorex
{

VertexId
pickRoot(const Csr& graph)
{
    for (VertexId v = 0; v < graph.numVertices; ++v) {
        if (graph.degree(v) > 0)
            return v;
    }
    panic("graph has no edges: no usable search root");
}

KernelSetup
makeKernelSetup(const KernelInfo& kernel, const Csr& base,
                std::uint64_t seed)
{
    KernelSetup setup;
    setup.kernel = &kernel;
    setup.damping = kernel.defaults.damping;
    setup.iterations = kernel.defaults.iterations;
    setup.epsilon = kernel.defaults.epsilon;

    const KernelTraits& traits = kernel.traits;
    setup.graph = traits.symmetrize ? symmetrize(base) : base;

    // One RNG stream in a fixed trait order (weights, then x) keeps
    // adapted datasets bit-identical to the pre-registry factory.
    // Graphs loaded from converted files may carry real edge weights;
    // those are kept, and synthetic weights are drawn only for
    // unweighted inputs (every generated dataset is unweighted, so
    // the established stream is unchanged).
    Rng rng(seed);
    if (traits.needsWeights && !setup.graph.weighted())
        addRandomWeights(setup.graph, rng, traits.weightMin,
                         traits.weightMax);
    if (traits.needsInputVector) {
        setup.x.resize(setup.graph.numVertices);
        for (auto& xi : setup.x)
            xi = static_cast<Word>(rng.range(0, 255));
    }
    if (traits.needsRoot)
        setup.root = pickRoot(setup.graph);
    return setup;
}

KernelSetup
makeKernelSetup(const std::string& kernel, const Csr& base,
                std::uint64_t seed)
{
    return makeKernelSetup(*kernelOrDie(kernel), base, seed);
}

bool
parseParamOverrides(const std::string& text,
                    std::vector<ParamOverride>& out, std::string& err)
{
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string item =
            text.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        start = comma == std::string::npos ? text.size() + 1
                                           : comma + 1;
        const std::size_t eq = item.find('=');
        if (item.empty() || eq == std::string::npos || eq == 0 ||
            eq + 1 == item.size()) {
            err = "--param wants NAME=VALUE[,NAME=VALUE...], got: " +
                  (item.empty() ? text : item);
            return false;
        }
        ParamOverride param;
        param.name = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        char* end = nullptr;
        param.value = std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size()) {
            err = "--param " + param.name +
                  " wants a number, got: " + value;
            return false;
        }
        if (param.name == "damping") {
            if (!(param.value > 0.0 && param.value < 1.0)) {
                err = "--param damping must be in (0, 1), got: " +
                      value;
                return false;
            }
        } else if (param.name == "iterations") {
            if (param.value < 1.0 || param.value > 1000.0 ||
                param.value != std::floor(param.value)) {
                err = "--param iterations must be an integer in "
                      "[1, 1000], got: " + value;
                return false;
            }
        } else if (param.name == "epsilon") {
            if (!(param.value >= 0.0 && param.value < 1.0)) {
                err = "--param epsilon must be in [0, 1) "
                      "(0 disables convergence), got: " + value;
                return false;
            }
        } else {
            err = "unknown --param key: " + param.name +
                  " (damping|iterations|epsilon)";
            return false;
        }
        out.push_back(std::move(param));
    }
    return true;
}

void
applyParamOverrides(KernelSetup& setup,
                    const std::vector<ParamOverride>& params)
{
    panic_if(setup.kernel == nullptr, "KernelSetup has no kernel");
    const KernelDefaults& defaults = setup.kernel->defaults;
    for (const ParamOverride& param : params) {
        if (param.name == "damping" && defaults.usesDamping)
            setup.damping = param.value;
        else if (param.name == "iterations" && defaults.usesIterations)
            setup.iterations = static_cast<unsigned>(param.value);
        else if (param.name == "epsilon" && defaults.usesEpsilon)
            setup.epsilon = param.value;
        // Keys the kernel declares unused are skipped so one --param
        // list can span a multi-kernel sweep.
    }
}

std::unique_ptr<GraphAppBase>
KernelSetup::makeApp() const
{
    panic_if(kernel == nullptr, "KernelSetup has no kernel");
    return kernel->factory(*this);
}

std::vector<Word>
KernelSetup::referenceWords() const
{
    panic_if(kernel == nullptr, "KernelSetup has no kernel");
    panic_if(!kernel->referenceWords, kernel->display,
             " has a float-valued reference; use referenceFloats()");
    return kernel->referenceWords(*this);
}

std::vector<double>
KernelSetup::referenceFloats() const
{
    panic_if(kernel == nullptr, "KernelSetup has no kernel");
    panic_if(!kernel->referenceFloats, kernel->display,
             " has a word-valued reference; use referenceWords()");
    return kernel->referenceFloats(*this);
}

namespace
{

ValidationResult
defaultValidateWords(const KernelSetup& setup,
                     const std::vector<Word>& got)
{
    const std::vector<Word> want = setup.referenceWords();
    if (got.size() != want.size()) {
        std::ostringstream what;
        what << setup.kernel->display << " output has " << got.size()
             << " values, reference has " << want.size();
        return ValidationResult::fail(0, what.str());
    }
    for (std::size_t v = 0; v < got.size(); ++v) {
        if (got[v] != want[v]) {
            std::ostringstream what;
            what << setup.kernel->display
                 << " output does not match the sequential reference"
                 << " at vertex " << v << ": got " << got[v]
                 << ", want " << want[v];
            return ValidationResult::fail(v, what.str());
        }
    }
    return ValidationResult::pass();
}

} // namespace

ValidationResult
validateFloatsWithSlack(const KernelSetup& setup,
                        const std::vector<double>& got, double slack)
{
    const std::vector<double> want = setup.referenceFloats();
    if (got.size() != want.size()) {
        std::ostringstream what;
        what << setup.kernel->display << " output has " << got.size()
             << " values, reference has " << want.size();
        return ValidationResult::fail(0, what.str());
    }
    for (std::size_t v = 0; v < got.size(); ++v) {
        const double tol = std::max(1e-9, 1e-3 * want[v]) + slack;
        if (std::abs(got[v] - want[v]) > tol) {
            std::ostringstream what;
            what << setup.kernel->display << " mismatch at vertex "
                 << v << ": " << got[v] << " vs " << want[v];
            return ValidationResult::fail(v, what.str());
        }
    }
    return ValidationResult::pass();
}

ValidationResult
validateWords(const KernelSetup& setup, const std::vector<Word>& got)
{
    panic_if(setup.kernel == nullptr, "KernelSetup has no kernel");
    if (setup.kernel->validateWords)
        return setup.kernel->validateWords(setup, got);
    return defaultValidateWords(setup, got);
}

ValidationResult
validateFloats(const KernelSetup& setup,
               const std::vector<double>& got)
{
    panic_if(setup.kernel == nullptr, "KernelSetup has no kernel");
    if (setup.kernel->validateFloats)
        return setup.kernel->validateFloats(setup, got);
    return validateFloatsWithSlack(setup, got, 0.0);
}

ValidationResult
validateRun(const KernelSetup& setup, GraphAppBase& app,
            Machine& machine)
{
    if (setup.floatResult())
        return validateFloats(setup, app.gatherFloats(machine));
    return validateWords(setup, app.gatherValues(machine));
}

} // namespace dalorex
