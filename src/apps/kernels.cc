#include "apps/kernels.hh"

#include <algorithm>
#include <cmath>

#include "apps/bfs.hh"
#include "apps/pagerank.hh"
#include "apps/spmv.hh"
#include "apps/sssp.hh"
#include "apps/wcc.hh"
#include "common/logging.hh"
#include "graph/reference.hh"

namespace dalorex
{

const char*
toString(Kernel kernel)
{
    switch (kernel) {
      case Kernel::bfs:
        return "BFS";
      case Kernel::sssp:
        return "SSSP";
      case Kernel::wcc:
        return "WCC";
      case Kernel::pagerank:
        return "PageRank";
      case Kernel::spmv:
        return "SPMV";
    }
    return "?";
}

std::vector<Kernel>
allKernels()
{
    return {Kernel::bfs, Kernel::wcc, Kernel::pagerank, Kernel::sssp,
            Kernel::spmv};
}

std::vector<Kernel>
fig5Kernels()
{
    return {Kernel::bfs, Kernel::wcc, Kernel::pagerank, Kernel::sssp};
}

VertexId
pickRoot(const Csr& graph)
{
    for (VertexId v = 0; v < graph.numVertices; ++v) {
        if (graph.degree(v) > 0)
            return v;
    }
    panic("graph has no edges: no usable search root");
}

KernelSetup
makeKernelSetup(Kernel kernel, const Csr& base, std::uint64_t seed)
{
    KernelSetup setup;
    setup.kernel = kernel;
    Rng rng(seed);

    switch (kernel) {
      case Kernel::bfs:
        setup.graph = base;
        setup.root = pickRoot(setup.graph);
        break;
      case Kernel::sssp:
        setup.graph = base;
        addRandomWeights(setup.graph, rng, 1, 64);
        setup.root = pickRoot(setup.graph);
        break;
      case Kernel::wcc:
        setup.graph = symmetrize(base);
        break;
      case Kernel::pagerank:
        setup.graph = base;
        break;
      case Kernel::spmv:
        setup.graph = base;
        addRandomWeights(setup.graph, rng, 1, 16);
        setup.x.resize(setup.graph.numVertices);
        for (auto& xi : setup.x)
            xi = static_cast<Word>(rng.range(0, 255));
        break;
    }
    return setup;
}

std::unique_ptr<GraphAppBase>
KernelSetup::makeApp() const
{
    switch (kernel) {
      case Kernel::bfs:
        return std::make_unique<BfsApp>(graph, root);
      case Kernel::sssp:
        return std::make_unique<SsspApp>(graph, root);
      case Kernel::wcc:
        return std::make_unique<WccApp>(graph);
      case Kernel::pagerank:
        return std::make_unique<PageRankApp>(graph, damping,
                                             iterations);
      case Kernel::spmv:
        return std::make_unique<SpmvApp>(graph, x);
    }
    panic("unreachable kernel");
}

std::vector<Word>
KernelSetup::referenceWords() const
{
    switch (kernel) {
      case Kernel::bfs:
        return referenceBfs(graph, root);
      case Kernel::sssp:
        return referenceSssp(graph, root);
      case Kernel::wcc:
        return referenceWcc(graph);
      case Kernel::spmv:
        return referenceSpmv(graph, x);
      case Kernel::pagerank:
        panic("PageRank reference is float; use referenceFloats()");
    }
    panic("unreachable kernel");
}

std::vector<double>
KernelSetup::referenceFloats() const
{
    panic_if(kernel != Kernel::pagerank,
             "referenceFloats is PageRank-only");
    return referencePageRank(graph, damping, iterations);
}

void
validateWords(const KernelSetup& setup, const std::vector<Word>& got)
{
    const std::vector<Word> want = setup.referenceWords();
    fatal_if(got != want, toString(setup.kernel),
             " output does not match the sequential reference");
}

void
validateFloats(const KernelSetup& setup,
               const std::vector<double>& got)
{
    const std::vector<double> want = setup.referenceFloats();
    fatal_if(got.size() != want.size(), "PageRank size mismatch");
    for (std::size_t v = 0; v < got.size(); ++v) {
        const double tol = std::max(1e-9, 1e-3 * want[v]);
        fatal_if(std::abs(got[v] - want[v]) > tol,
                 "PageRank mismatch at vertex ", v, ": ", got[v],
                 " vs ", want[v]);
    }
}

} // namespace dalorex
