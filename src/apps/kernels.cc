#include "apps/kernels.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "apps/graph_app.hh"
#include "common/logging.hh"

namespace dalorex
{

VertexId
pickRoot(const Csr& graph)
{
    for (VertexId v = 0; v < graph.numVertices; ++v) {
        if (graph.degree(v) > 0)
            return v;
    }
    panic("graph has no edges: no usable search root");
}

KernelSetup
makeKernelSetup(const KernelInfo& kernel, const Csr& base,
                std::uint64_t seed)
{
    KernelSetup setup;
    setup.kernel = &kernel;
    setup.damping = kernel.defaults.damping;
    setup.iterations = kernel.defaults.iterations;

    const KernelTraits& traits = kernel.traits;
    setup.graph = traits.symmetrize ? symmetrize(base) : base;

    // One RNG stream in a fixed trait order (weights, then x) keeps
    // adapted datasets bit-identical to the pre-registry factory.
    Rng rng(seed);
    if (traits.needsWeights)
        addRandomWeights(setup.graph, rng, traits.weightMin,
                         traits.weightMax);
    if (traits.needsInputVector) {
        setup.x.resize(setup.graph.numVertices);
        for (auto& xi : setup.x)
            xi = static_cast<Word>(rng.range(0, 255));
    }
    if (traits.needsRoot)
        setup.root = pickRoot(setup.graph);
    return setup;
}

KernelSetup
makeKernelSetup(const std::string& kernel, const Csr& base,
                std::uint64_t seed)
{
    return makeKernelSetup(*kernelOrDie(kernel), base, seed);
}

std::unique_ptr<GraphAppBase>
KernelSetup::makeApp() const
{
    panic_if(kernel == nullptr, "KernelSetup has no kernel");
    return kernel->factory(*this);
}

std::vector<Word>
KernelSetup::referenceWords() const
{
    panic_if(kernel == nullptr, "KernelSetup has no kernel");
    panic_if(!kernel->referenceWords, kernel->display,
             " has a float-valued reference; use referenceFloats()");
    return kernel->referenceWords(*this);
}

std::vector<double>
KernelSetup::referenceFloats() const
{
    panic_if(kernel == nullptr, "KernelSetup has no kernel");
    panic_if(!kernel->referenceFloats, kernel->display,
             " has a word-valued reference; use referenceWords()");
    return kernel->referenceFloats(*this);
}

namespace
{

ValidationResult
defaultValidateWords(const KernelSetup& setup,
                     const std::vector<Word>& got)
{
    const std::vector<Word> want = setup.referenceWords();
    if (got.size() != want.size()) {
        std::ostringstream what;
        what << setup.kernel->display << " output has " << got.size()
             << " values, reference has " << want.size();
        return ValidationResult::fail(0, what.str());
    }
    for (std::size_t v = 0; v < got.size(); ++v) {
        if (got[v] != want[v]) {
            std::ostringstream what;
            what << setup.kernel->display
                 << " output does not match the sequential reference"
                 << " at vertex " << v << ": got " << got[v]
                 << ", want " << want[v];
            return ValidationResult::fail(v, what.str());
        }
    }
    return ValidationResult::pass();
}

ValidationResult
defaultValidateFloats(const KernelSetup& setup,
                      const std::vector<double>& got)
{
    const std::vector<double> want = setup.referenceFloats();
    if (got.size() != want.size()) {
        std::ostringstream what;
        what << setup.kernel->display << " output has " << got.size()
             << " values, reference has " << want.size();
        return ValidationResult::fail(0, what.str());
    }
    for (std::size_t v = 0; v < got.size(); ++v) {
        const double tol = std::max(1e-9, 1e-3 * want[v]);
        if (std::abs(got[v] - want[v]) > tol) {
            std::ostringstream what;
            what << setup.kernel->display << " mismatch at vertex "
                 << v << ": " << got[v] << " vs " << want[v];
            return ValidationResult::fail(v, what.str());
        }
    }
    return ValidationResult::pass();
}

} // namespace

ValidationResult
validateWords(const KernelSetup& setup, const std::vector<Word>& got)
{
    panic_if(setup.kernel == nullptr, "KernelSetup has no kernel");
    if (setup.kernel->validateWords)
        return setup.kernel->validateWords(setup, got);
    return defaultValidateWords(setup, got);
}

ValidationResult
validateFloats(const KernelSetup& setup,
               const std::vector<double>& got)
{
    panic_if(setup.kernel == nullptr, "KernelSetup has no kernel");
    if (setup.kernel->validateFloats)
        return setup.kernel->validateFloats(setup, got);
    return defaultValidateFloats(setup, got);
}

ValidationResult
validateRun(const KernelSetup& setup, GraphAppBase& app,
            Machine& machine)
{
    if (setup.floatResult())
        return validateFloats(setup, app.gatherFloats(machine));
    return validateWords(setup, app.gatherValues(machine));
}

} // namespace dalorex
