#include "apps/bfs.hh"

#include "apps/kernels.hh"
#include "common/logging.hh"
#include "graph/reference.hh"

namespace dalorex
{

BfsApp::BfsApp(const Csr& graph, VertexId root)
    : GraphAppBase(graph), root_(root)
{
    fatal_if(root >= graph.numVertices, "BFS root out of range");
}

void
BfsApp::initTile(Machine& machine, TileId tile, GraphTileState& st)
{
    (void)machine;
    (void)tile;
    for (auto& v : st.value)
        v = infDist;
}

void
BfsApp::start(Machine& machine)
{
    const Partition& part = machine.partition();
    auto& st =
        machine.state<GraphTileState>(part.vertexOwner(root_));
    st.value[part.vertexLocal(root_)] = 0;
    seedRoot(machine, root_);
}

bool
BfsApp::startEpoch(Machine& machine)
{
    return seedFrontierBlocks(machine);
}

namespace
{

KernelInfo
bfsKernelInfo()
{
    KernelInfo info;
    info.name = "bfs";
    info.display = "BFS";
    info.summary = "breadth-first search: hop count from a root "
                   "vertex (barrierless min-update)";
    info.tags = {"fig5", "paper"};
    info.order = 10;
    info.traits.needsRoot = true;
    info.traits.tesseract = TesseractModel::bfs;
    info.factory = [](const KernelSetup& setup) {
        return std::make_unique<BfsApp>(setup.graph, setup.root);
    };
    info.referenceWords = [](const KernelSetup& setup) {
        return referenceBfs(setup.graph, setup.root);
    };
    return info;
}

} // namespace

DALOREX_REGISTER_KERNEL(bfsKernelInfo)

} // namespace dalorex
