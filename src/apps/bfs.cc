#include "apps/bfs.hh"

#include "common/logging.hh"

namespace dalorex
{

BfsApp::BfsApp(const Csr& graph, VertexId root)
    : GraphAppBase(graph), root_(root)
{
    fatal_if(root >= graph.numVertices, "BFS root out of range");
}

void
BfsApp::initTile(Machine& machine, TileId tile, GraphTileState& st)
{
    (void)machine;
    (void)tile;
    for (auto& v : st.value)
        v = infDist;
}

void
BfsApp::start(Machine& machine)
{
    const Partition& part = machine.partition();
    auto& st =
        machine.state<GraphTileState>(part.vertexOwner(root_));
    st.value[part.vertexLocal(root_)] = 0;
    seedRoot(machine, root_);
}

bool
BfsApp::startEpoch(Machine& machine)
{
    return seedFrontierBlocks(machine);
}

} // namespace dalorex
