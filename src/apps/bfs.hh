/**
 * @file
 * Breadth-First Search in the Dalorex task model: hop count from a
 * root vertex to every reachable vertex (Sec. IV).
 */

#ifndef DALOREX_APPS_BFS_HH
#define DALOREX_APPS_BFS_HH

#include "apps/graph_app.hh"

namespace dalorex
{

/** BFS: label-correcting hop-distance propagation, barrierless. */
class BfsApp : public GraphAppBase
{
  public:
    /** @param root Source vertex; should have out-degree > 0. */
    BfsApp(const Csr& graph, VertexId root);

    const char* name() const override { return "BFS"; }
    void start(Machine& machine) override;
    bool startEpoch(Machine& machine) override;

  protected:
    KernelTaskSet tasks() const override { return bfsTasks(); }
    bool usesWeights() const override { return false; }
    void initTile(Machine& machine, TileId tile,
                  GraphTileState& st) override;

  private:
    VertexId root_;
};

} // namespace dalorex

#endif // DALOREX_APPS_BFS_HH
