/**
 * @file
 * Degree histogram in the Dalorex task model: a barrierless
 * scatter-reduce registered through the kernel registry with no
 * core-layer edits.
 *
 * Every vertex is explored exactly once (one full frontier pass, like
 * SPMV); instead of walking its edges, T1 reads the vertex's degree
 * from its locally owned row bounds and scatters a single +1 update to
 * the tile owning histogram bucket `min(degree, V-1)`. T3 accumulates
 * the counts into the distributed value array, so the gathered result
 * is value[d] = number of vertices with (capped) out-degree d.
 */

#ifndef DALOREX_APPS_HISTOGRAM_HH
#define DALOREX_APPS_HISTOGRAM_HH

#include "apps/graph_app.hh"

namespace dalorex
{

/** Barrierless degree-histogram scatter-reduce. */
class DegreeHistogramApp : public GraphAppBase
{
  public:
    explicit DegreeHistogramApp(const Csr& graph);

    const char* name() const override { return "DegHist"; }
    void start(Machine& machine) override;

  protected:
    KernelTaskSet tasks() const override;
    /** T1 scatters vertex-keyed bucket updates directly. */
    ChannelId t1OutChannel() const override { return kCq2; }
    bool usesWeights() const override { return false; }
    void initTile(Machine& machine, TileId tile,
                  GraphTileState& st) override;
};

/** Sequential reference: hist[min(degree(v), V-1)] over all v. */
std::vector<Word> referenceDegreeHistogram(const Csr& graph);

} // namespace dalorex

#endif // DALOREX_APPS_HISTOGRAM_HH
