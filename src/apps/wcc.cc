#include "apps/wcc.hh"

#include "apps/kernels.hh"
#include "graph/reference.hh"

namespace dalorex
{

WccApp::WccApp(const Csr& graph) : GraphAppBase(graph) {}

void
WccApp::initTile(Machine& machine, TileId tile, GraphTileState& st)
{
    // Initial color: the vertex's own global id.
    const Partition& part = machine.partition();
    for (std::uint32_t l = 0; l < st.owned; ++l)
        st.value[l] = part.vertexGlobal(tile, l);
}

void
WccApp::start(Machine& machine)
{
    // Every vertex starts active, pushing its label to its neighbors.
    seedFullFrontier(machine);
}

bool
WccApp::startEpoch(Machine& machine)
{
    return seedFrontierBlocks(machine);
}

namespace
{

KernelInfo
wccKernelInfo()
{
    KernelInfo info;
    info.name = "wcc";
    info.display = "WCC";
    info.summary = "weakly connected components by label propagation "
                   "on the symmetrized graph (barrierless)";
    info.tags = {"fig5", "paper"};
    info.order = 20;
    info.traits.symmetrize = true;
    info.traits.tesseract = TesseractModel::wcc;
    info.factory = [](const KernelSetup& setup) {
        return std::make_unique<WccApp>(setup.graph);
    };
    info.referenceWords = [](const KernelSetup& setup) {
        return referenceWcc(setup.graph);
    };
    return info;
}

} // namespace

DALOREX_REGISTER_KERNEL(wccKernelInfo)

} // namespace dalorex
