#include "apps/wcc.hh"

namespace dalorex
{

WccApp::WccApp(const Csr& graph) : GraphAppBase(graph) {}

void
WccApp::initTile(Machine& machine, TileId tile, GraphTileState& st)
{
    // Initial color: the vertex's own global id.
    const Partition& part = machine.partition();
    for (std::uint32_t l = 0; l < st.owned; ++l)
        st.value[l] = part.vertexGlobal(tile, l);
}

void
WccApp::start(Machine& machine)
{
    // Every vertex starts active, pushing its label to its neighbors.
    seedFullFrontier(machine);
}

bool
WccApp::startEpoch(Machine& machine)
{
    return seedFrontierBlocks(machine);
}

} // namespace dalorex
