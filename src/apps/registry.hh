/**
 * @file
 * The kernel registry: the open, self-describing kernel library of the
 * Dalorex programming model.
 *
 * "Application programmers would not program Dalorex directly.
 * Instead, DSLs ... could invoke our kernel library" (Sec. III-B) —
 * which makes the kernel set an API, not a hardcoded enum. Each kernel
 * registers one KernelInfo describing everything its consumers need:
 * CLI names and aliases, dataset-adaptation traits (weights,
 * symmetrization, input vector), scheduling traits (inherent barrier,
 * float-valued result), per-kernel default parameters (root, damping,
 * iterations — Katana-plan style), figure-set tags, an App factory, a
 * sequential-reference functor and a validator.
 *
 * The CLI parser, the sweep grid axes, the figure drivers and the test
 * matrices all enumerate the registry instead of switching on an enum,
 * so adding a kernel is one new file in src/apps/ (plus its CMake
 * source-list line) — zero edits under src/cli/, src/sweep/ or
 * src/sim/. See README.md "Adding a kernel".
 */

#ifndef DALOREX_APPS_REGISTRY_HH
#define DALOREX_APPS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dalorex
{

class GraphAppBase;
struct KernelSetup;

/** Outcome of checking a run against the sequential reference. */
struct ValidationResult
{
    bool ok = true;
    /** Vertex index of the first divergence (when !ok). */
    std::size_t firstMismatch = 0;
    /** One-line diagnostic ("" when ok). */
    std::string detail;

    explicit operator bool() const { return ok; }

    static ValidationResult pass() { return {}; }
    static ValidationResult
    fail(std::size_t at, std::string what)
    {
        ValidationResult result;
        result.ok = false;
        result.firstMismatch = at;
        result.detail = std::move(what);
        return result;
    }
};

/**
 * Which closed-form Tesseract (HMC baseline) model reproduces this
 * kernel. The baseline is a comparison artifact of Fig. 5, not part of
 * the open kernel API: kernels without a model (`none`) simply cannot
 * run on the Tesseract baseline and are excluded from the Fig. 5 set.
 */
enum class TesseractModel
{
    none,     //!< no baseline model: Dalorex-engine only
    bfs,      //!< min-update epochs, root-seeded, dist+1 per edge
    sssp,     //!< min-update epochs, root-seeded, dist+weight
    wcc,      //!< min-update epochs, all-seeded, label forwarding
    pagerank, //!< synchronous rank push epochs
    spmv,     //!< one scatter epoch over all columns
};

/** Dataset-adaptation and scheduling traits of one kernel. */
struct KernelTraits
{
    /** Attach uniform random edge weights in [weightMin, weightMax]
     *  (SSSP distances, SPMV matrix values). */
    bool needsWeights = false;
    Word weightMin = 1;
    Word weightMax = 64;
    /** Run on the symmetrized (undirected-view) graph (WCC, k-core). */
    bool symmetrize = false;
    /** Seed from a search root (first vertex with out-degree > 0). */
    bool needsRoot = false;
    /** Build a random input vector x in [0, 255] (SPMV). */
    bool needsInputVector = false;
    /** Inherent per-epoch synchronization (PageRank, k-core). */
    bool needsBarrier = false;
    /** Result is float-valued: validate within relative tolerance. */
    bool hasFloatResult = false;
    /** Closed-form Tesseract baseline model, if any. */
    TesseractModel tesseract = TesseractModel::none;
};

/** Per-kernel default parameters (overridable per KernelSetup). */
struct KernelDefaults
{
    double damping = 0.85;    //!< PageRank damping factor d
    unsigned iterations = 10; //!< synchronous epoch budget
    /** Convergence threshold: stop once an epoch's largest
     *  per-vertex change falls below it (0 = fixed iterations;
     *  `iterations` stays the hard upper bound). */
    double epsilon = 0.0;
    /** Whether damping/iterations/epsilon are meaningful for this
     *  kernel (drives --list-kernels and which --param keys
     *  apply). */
    bool usesDamping = false;
    bool usesIterations = false;
    bool usesEpsilon = false;
};

/**
 * One `--param name=value` override (CLI and sweep). The key set is
 * the KernelDefaults fields ("damping", "iterations", "epsilon");
 * overrides for keys a kernel declares unused are ignored, so one
 * --param can span a multi-kernel sweep. Parsed and applied in
 * apps/kernels.hh.
 */
struct ParamOverride
{
    std::string name; //!< lowercase KernelDefaults field name
    double value = 0.0;
};

/** One self-describing kernel of the library. */
struct KernelInfo
{
    /** Canonical CLI name, lowercase ("bfs", "pagerank", "kcore"). */
    std::string name;
    /** Report/table display name ("BFS", "PageRank", "KCore"). */
    std::string display;
    /** Accepted alternate CLI spellings ("pr", "k-core"). */
    std::vector<std::string> aliases;
    /** One-line description for --list-kernels. */
    std::string summary;
    /** Figure-set membership ("fig5", "paper"); drivers select by
     *  tag instead of naming kernels. */
    std::vector<std::string> tags;
    /** Listing/enumeration order (paper's Fig. 7/8/9 order first);
     *  ties break by name, so output never depends on link order. */
    unsigned order = 1000;

    KernelTraits traits;
    KernelDefaults defaults;

    /** Build the App for an adapted setup (references setup.graph). */
    std::function<std::unique_ptr<GraphAppBase>(const KernelSetup&)>
        factory;
    /** Sequential reference for integer-valued kernels. */
    std::function<std::vector<Word>(const KernelSetup&)>
        referenceWords;
    /** Sequential reference for float-valued kernels. */
    std::function<std::vector<double>(const KernelSetup&)>
        referenceFloats;
    /** Validator override; empty = exact word equality. */
    std::function<ValidationResult(const KernelSetup&,
                                   const std::vector<Word>&)>
        validateWords;
    /** Validator override; empty = 1e-3 relative tolerance. */
    std::function<ValidationResult(const KernelSetup&,
                                   const std::vector<double>&)>
        validateFloats;

    bool hasTag(const std::string& tag) const;
};

/**
 * The process-wide kernel table. Kernels self-register from their own
 * translation unit via DALOREX_REGISTER_KERNEL at static-init time;
 * the registry is immutable once main() starts.
 */
class KernelRegistry
{
  public:
    static KernelRegistry& instance();

    /**
     * Register a kernel; fatal() on a duplicate name/alias or a
     * missing factory/reference. Returns the stable handle every
     * consumer passes around (KernelSetup, cli::Options, sweep::Plan).
     */
    const KernelInfo* add(KernelInfo info);

    /** Case-insensitive lookup by name or alias; nullptr if unknown. */
    const KernelInfo* find(const std::string& nameOrAlias) const;

    /** Every kernel, ordered by (order, name). */
    std::vector<const KernelInfo*> all() const;

    /** The kernels carrying `tag`, ordered by (order, name). */
    std::vector<const KernelInfo*> tagged(const std::string& tag) const;

    /** Canonical names joined by `sep` ("bfs|sssp|..."), for usage
     *  text and one-line diagnostics. */
    std::string namesText(const std::string& sep = "|") const;

  private:
    KernelRegistry() = default;

    /** unique_ptr keeps handles stable across vector growth. */
    std::vector<std::unique_ptr<KernelInfo>> kernels_;
};

/** Every registered kernel (paper order first). */
std::vector<const KernelInfo*> allKernels();

/** The Fig. 5 ablation subset (tag "fig5"). */
std::vector<const KernelInfo*> fig5Kernels();

/** The paper's five evaluated kernels (tag "paper"). */
std::vector<const KernelInfo*> paperKernels();

/** Lookup that fatal()s on unknown names (bench/test convenience). */
const KernelInfo* kernelOrDie(const std::string& nameOrAlias);

/**
 * The default CLI kernel (bfs). Separate from find() so cli::Options
 * can default-initialize without spelling a name lookup.
 */
const KernelInfo* defaultKernel();

} // namespace dalorex

/**
 * Self-register a kernel from its own translation unit. `makeInfo` is
 * a function returning the filled KernelInfo; the returned handle is
 * kept alive only to anchor the registration:
 *
 *   namespace { KernelInfo myKernelInfo() { ... } }
 *   DALOREX_REGISTER_KERNEL(myKernelInfo)
 */
#define DALOREX_REGISTER_KERNEL(makeInfo)                                 \
    [[maybe_unused]] static const ::dalorex::KernelInfo*                  \
        dalorexKernelRegistration_##makeInfo =                            \
            ::dalorex::KernelRegistry::instance().add(makeInfo());

#endif // DALOREX_APPS_REGISTRY_HH
