/**
 * @file
 * PageRank in the Dalorex task model. PageRank "necessitates per-epoch
 * synchronization" (Fig. 5 caption): each epoch pushes every vertex's
 * contribution rank/outdeg to its neighbors; the host finalizes ranks
 * when the chip goes idle and triggers the next epoch.
 */

#ifndef DALOREX_APPS_PAGERANK_HH
#define DALOREX_APPS_PAGERANK_HH

#include "apps/graph_app.hh"

namespace dalorex
{

/** Push-style synchronous PageRank over float32 flit payloads. */
class PageRankApp : public GraphAppBase
{
  public:
    /**
     * @param damping    The damping factor d (paper default 0.85).
     * @param iterations Synchronous epochs to run (upper bound when
     *                   a convergence threshold is set).
     */
    PageRankApp(const Csr& graph, double damping = 0.85,
                unsigned iterations = 10);

    /**
     * Stop as soon as the largest per-vertex rank change of an epoch
     * falls below `epsilon` (checked by the host at the idle signal,
     * the natural use of the paper's per-epoch synchronization).
     * `iterations` remains the hard upper bound.
     */
    void setConvergence(double epsilon) { epsilon_ = epsilon; }

    /** Epochs actually executed (after run). */
    unsigned epochsRun() const { return completed_; }
    /** Largest rank change of the last finalized epoch. */
    double lastDelta() const { return lastDelta_; }

    const char* name() const override { return "PageRank"; }
    bool needsBarrier() const override { return true; }
    void start(Machine& machine) override;
    bool startEpoch(Machine& machine) override;

  protected:
    KernelTaskSet tasks() const override { return pagerankTasks(); }
    bool usesWeights() const override { return false; }
    bool usesAux() const override { return true; }
    bool usesAcc() const override { return true; }
    void initTile(Machine& machine, TileId tile,
                  GraphTileState& st) override;

  private:
    /** rank' = (1-d)/V + d*acc for every owned vertex; reset acc. */
    void finalizeEpoch(Machine& machine);

    double damping_;
    unsigned iterations_;
    unsigned completed_ = 0;
    double epsilon_ = 0.0; //!< 0 = fixed iteration count
    double lastDelta_ = 0.0;
};

} // namespace dalorex

#endif // DALOREX_APPS_PAGERANK_HH
