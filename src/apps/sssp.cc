#include "apps/sssp.hh"

#include "common/logging.hh"

namespace dalorex
{

SsspApp::SsspApp(const Csr& graph, VertexId root)
    : GraphAppBase(graph), root_(root)
{
    fatal_if(root >= graph.numVertices, "SSSP root out of range");
    fatal_if(!graph.weighted(), "SSSP requires a weighted graph");
}

void
SsspApp::initTile(Machine& machine, TileId tile, GraphTileState& st)
{
    (void)machine;
    (void)tile;
    for (auto& v : st.value)
        v = infDist;
}

void
SsspApp::start(Machine& machine)
{
    const Partition& part = machine.partition();
    auto& st =
        machine.state<GraphTileState>(part.vertexOwner(root_));
    st.value[part.vertexLocal(root_)] = 0;
    seedRoot(machine, root_);
}

bool
SsspApp::startEpoch(Machine& machine)
{
    return seedFrontierBlocks(machine);
}

} // namespace dalorex
