#include "apps/sssp.hh"

#include "apps/kernels.hh"
#include "common/logging.hh"
#include "graph/reference.hh"

namespace dalorex
{

SsspApp::SsspApp(const Csr& graph, VertexId root)
    : GraphAppBase(graph), root_(root)
{
    fatal_if(root >= graph.numVertices, "SSSP root out of range");
    fatal_if(!graph.weighted(), "SSSP requires a weighted graph");
}

void
SsspApp::initTile(Machine& machine, TileId tile, GraphTileState& st)
{
    (void)machine;
    (void)tile;
    for (auto& v : st.value)
        v = infDist;
}

void
SsspApp::start(Machine& machine)
{
    const Partition& part = machine.partition();
    auto& st =
        machine.state<GraphTileState>(part.vertexOwner(root_));
    st.value[part.vertexLocal(root_)] = 0;
    seedRoot(machine, root_);
}

bool
SsspApp::startEpoch(Machine& machine)
{
    return seedFrontierBlocks(machine);
}

namespace
{

KernelInfo
ssspKernelInfo()
{
    KernelInfo info;
    info.name = "sssp";
    info.display = "SSSP";
    info.summary = "single-source shortest paths over random edge "
                   "weights in [1, 64] (barrierless min-update)";
    info.tags = {"fig5", "paper"};
    info.order = 40;
    info.traits.needsRoot = true;
    info.traits.needsWeights = true;
    info.traits.weightMin = 1;
    info.traits.weightMax = 64;
    info.traits.tesseract = TesseractModel::sssp;
    info.factory = [](const KernelSetup& setup) {
        return std::make_unique<SsspApp>(setup.graph, setup.root);
    };
    info.referenceWords = [](const KernelSetup& setup) {
        return referenceSssp(setup.graph, setup.root);
    };
    return info;
}

} // namespace

DALOREX_REGISTER_KERNEL(ssspKernelInfo)

} // namespace dalorex
