#include "apps/spmv.hh"

#include "apps/kernels.hh"
#include "common/logging.hh"
#include "graph/reference.hh"

namespace dalorex
{

SpmvApp::SpmvApp(const Csr& matrix, const std::vector<Word>& x)
    : GraphAppBase(matrix), x_(x)
{
    fatal_if(!matrix.weighted(), "SPMV needs matrix values");
    fatal_if(x.size() != matrix.numVertices,
             "x dimension does not match the matrix");
}

void
SpmvApp::initTile(Machine& machine, TileId tile, GraphTileState& st)
{
    const Partition& part = machine.partition();
    for (std::uint32_t l = 0; l < st.owned; ++l) {
        st.value[l] = 0; // y accumulator
        st.aux[l] = x_[part.vertexGlobal(tile, l)];
    }
}

void
SpmvApp::start(Machine& machine)
{
    // Every column is processed exactly once: one full frontier pass.
    seedFullFrontier(machine);
}

namespace
{

KernelInfo
spmvKernelInfo()
{
    KernelInfo info;
    info.name = "spmv";
    info.display = "SPMV";
    info.summary = "sparse matrix-vector product y = A*x with integer "
                   "values in [1, 16], x in [0, 255] (one pass)";
    info.tags = {"paper"};
    info.order = 50;
    info.traits.needsWeights = true;
    info.traits.weightMin = 1;
    info.traits.weightMax = 16;
    info.traits.needsInputVector = true;
    info.traits.tesseract = TesseractModel::spmv;
    info.factory = [](const KernelSetup& setup) {
        return std::make_unique<SpmvApp>(setup.graph, setup.x);
    };
    info.referenceWords = [](const KernelSetup& setup) {
        return referenceSpmv(setup.graph, setup.x);
    };
    return info;
}

} // namespace

DALOREX_REGISTER_KERNEL(spmvKernelInfo)

} // namespace dalorex
