#include "apps/spmv.hh"

#include "common/logging.hh"

namespace dalorex
{

SpmvApp::SpmvApp(const Csr& matrix, const std::vector<Word>& x)
    : GraphAppBase(matrix), x_(x)
{
    fatal_if(!matrix.weighted(), "SPMV needs matrix values");
    fatal_if(x.size() != matrix.numVertices,
             "x dimension does not match the matrix");
}

void
SpmvApp::initTile(Machine& machine, TileId tile, GraphTileState& st)
{
    const Partition& part = machine.partition();
    for (std::uint32_t l = 0; l < st.owned; ++l) {
        st.value[l] = 0; // y accumulator
        st.aux[l] = x_[part.vertexGlobal(tile, l)];
    }
}

void
SpmvApp::start(Machine& machine)
{
    // Every column is processed exactly once: one full frontier pass.
    seedFullFrontier(machine);
}

} // namespace dalorex
