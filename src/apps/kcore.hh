/**
 * @file
 * k-core decomposition in the Dalorex task model: per-vertex coreness
 * by level-synchronous peeling (ParK/PKC-style), registered through
 * the kernel registry with no core-layer edits.
 *
 * Peeling is inherently epoch-synchronized, so it exercises the same
 * host-triggered barrier path as PageRank: at every idle signal the
 * host scans the owned vertices, peels those whose residual degree
 * dropped to the current level (their coreness is that level), and
 * seeds them as the next epoch's frontier; the chip then streams their
 * edges, decrementing the residual degree of each still-alive
 * neighbor. When a level peels nobody, the level rises.
 */

#ifndef DALOREX_APPS_KCORE_HH
#define DALOREX_APPS_KCORE_HH

#include "apps/graph_app.hh"

namespace dalorex
{

/** k-core peeling: value = coreness, aux = residual degree,
 *  acc = alive flag. Requires a symmetrized graph. */
class KCoreApp : public GraphAppBase
{
  public:
    explicit KCoreApp(const Csr& graph);

    /** Peel level reached (after run: the graph's degeneracy). */
    Word degeneracy() const { return level_; }

    const char* name() const override { return "KCore"; }
    bool needsBarrier() const override { return true; }
    void start(Machine& machine) override;
    bool startEpoch(Machine& machine) override;

  protected:
    KernelTaskSet tasks() const override;
    bool usesWeights() const override { return false; }
    bool usesAux() const override { return true; }
    bool usesAcc() const override { return true; }
    void initTile(Machine& machine, TileId tile,
                  GraphTileState& st) override;

  private:
    /**
     * Host scan at the idle signal: peel every alive vertex with
     * residual degree <= level_ into the bitmap frontier, raising
     * level_ past empty levels. Returns false when nothing is left
     * alive (decomposition complete).
     */
    bool peelAndSeed(Machine& machine);

    Word level_ = 0;
};

/** Sequential reference: coreness of every vertex (same peeling). */
std::vector<Word> referenceKCore(const Csr& graph);

} // namespace dalorex

#endif // DALOREX_APPS_KCORE_HH
