#include "apps/pagerank.hh"

#include "apps/kernels.hh"
#include "common/logging.hh"
#include "graph/reference.hh"

namespace dalorex
{

PageRankApp::PageRankApp(const Csr& graph, double damping,
                         unsigned iterations)
    : GraphAppBase(graph), damping_(damping), iterations_(iterations)
{
    fatal_if(damping <= 0.0 || damping >= 1.0,
             "PageRank damping must be in (0, 1)");
    fatal_if(iterations == 0, "PageRank needs at least one iteration");
}

void
PageRankApp::initTile(Machine& machine, TileId tile, GraphTileState& st)
{
    (void)machine;
    (void)tile;
    const auto init_rank = static_cast<float>(
        1.0 / static_cast<double>(graph_.numVertices));
    for (std::uint32_t l = 0; l < st.owned; ++l) {
        st.value[l] = floatToWord(init_rank);
        const Word deg = st.rowEnd[l] - st.rowBegin[l];
        st.aux[l] = floatToWord(
            deg == 0 ? 0.0f : init_rank / static_cast<float>(deg));
        st.acc[l] = floatToWord(0.0f);
    }
}

void
PageRankApp::start(Machine& machine)
{
    seedFullFrontier(machine);
}

void
PageRankApp::finalizeEpoch(Machine& machine)
{
    const auto base = static_cast<float>(
        (1.0 - damping_) / static_cast<double>(graph_.numVertices));
    const auto d = static_cast<float>(damping_);
    double max_delta = 0.0;
    for (TileId t = 0; t < machine.numTiles(); ++t) {
        auto& st = machine.state<GraphTileState>(t);
        for (std::uint32_t l = 0; l < st.owned; ++l) {
            const float rank = base + d * wordToFloat(st.acc[l]);
            const float previous = wordToFloat(st.value[l]);
            max_delta = std::max(
                max_delta,
                std::abs(static_cast<double>(rank - previous)));
            st.value[l] = floatToWord(rank);
            st.acc[l] = floatToWord(0.0f);
            const Word deg = st.rowEnd[l] - st.rowBegin[l];
            st.aux[l] = floatToWord(
                deg == 0 ? 0.0f : rank / static_cast<float>(deg));
        }
        // Per-vertex epilogue work runs on the tile's PU after the
        // idle signal: ~2 reads, 2 writes and 6 ALU/FPU ops per vertex
        // (rank update, accumulator reset, contribution divide).
        machine.hostCharge(t, 6 * st.owned, 2 * st.owned,
                           2 * st.owned);
    }
    lastDelta_ = max_delta;
}

bool
PageRankApp::startEpoch(Machine& machine)
{
    finalizeEpoch(machine);
    ++completed_;
    if (completed_ >= iterations_)
        return false;
    if (epsilon_ > 0.0 && lastDelta_ < epsilon_)
        return false; // converged: the host stops iterating
    seedFullFrontier(machine);
    return true;
}

namespace
{

KernelInfo
pagerankKernelInfo()
{
    KernelInfo info;
    info.name = "pagerank";
    info.display = "PageRank";
    info.aliases = {"pr"};
    info.summary = "push-style synchronous PageRank, damping 0.85, "
                   "10 epochs (inherent per-epoch barrier)";
    info.tags = {"fig5", "paper"};
    info.order = 30;
    info.traits.needsBarrier = true;
    info.traits.hasFloatResult = true;
    info.traits.tesseract = TesseractModel::pagerank;
    info.defaults.damping = 0.85;
    info.defaults.iterations = 10;
    info.defaults.epsilon = 0.0; // fixed iterations by default
    info.defaults.usesDamping = true;
    info.defaults.usesIterations = true;
    info.defaults.usesEpsilon = true;
    info.factory = [](const KernelSetup& setup) {
        auto app = std::make_unique<PageRankApp>(
            setup.graph, setup.damping, setup.iterations);
        if (setup.epsilon > 0.0)
            app->setConvergence(setup.epsilon);
        return app;
    };
    info.referenceFloats = [](const KernelSetup& setup) {
        return referencePageRankConverged(setup.graph, setup.damping,
                                          setup.iterations,
                                          setup.epsilon);
    };
    // With a convergence threshold the engine (float32 deltas, push
    // order of the chip) and the reference (double deltas) may stop
    // one epoch apart around the cutoff; both are then within
    // O(epsilon) of each other, so the default comparison widens by
    // an epsilon-scaled margin. epsilon == 0 is exactly the default
    // validator.
    info.validateFloats = [](const KernelSetup& setup,
                             const std::vector<double>& got) {
        return validateFloatsWithSlack(
            setup, got,
            setup.epsilon > 0.0 ? 4.0 * setup.epsilon : 0.0);
    };
    return info;
}

} // namespace

DALOREX_REGISTER_KERNEL(pagerankKernelInfo)

} // namespace dalorex
