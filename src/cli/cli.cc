#include "cli/cli.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <vector>

#include "apps/graph_app.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "common/text.hh"
#include "graph/dataset_cache.hh"
#include "graph/datasets.hh"

namespace dalorex
{
namespace cli
{
namespace
{

ParseResult
fail(const std::string& message)
{
    ParseResult result;
    result.ok = false;
    result.error = message;
    return result;
}

} // namespace

bool
parseU64(const std::string& text, std::uint64_t& out)
{
    if (text.empty() ||
        !std::all_of(text.begin(), text.end(), [](unsigned char c) {
            return std::isdigit(c);
        }))
        return false;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

bool
parseU32(const std::string& text, std::uint32_t min, std::uint32_t max,
         std::uint32_t& out)
{
    std::uint64_t v = 0;
    if (!parseU64(text, v) || v < min || v > max)
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

bool
parseKernel(const std::string& text, const KernelInfo*& out)
{
    const KernelInfo* kernel =
        KernelRegistry::instance().find(text);
    if (kernel == nullptr)
        return false;
    out = kernel;
    return true;
}

bool
parseTopology(const std::string& text, NocTopology& out)
{
    const std::string t = toLower(text);
    if (t == "mesh")
        out = NocTopology::mesh;
    else if (t == "torus")
        out = NocTopology::torus;
    else if (t == "torus-ruche" || t == "ruche")
        out = NocTopology::torusRuche;
    else
        return false;
    return true;
}

bool
parsePolicy(const std::string& text, SchedPolicy& out)
{
    const std::string p = toLower(text);
    if (p == "round-robin" || p == "rr")
        out = SchedPolicy::roundRobin;
    else if (p == "traffic-aware" || p == "ta")
        out = SchedPolicy::trafficAware;
    else
        return false;
    return true;
}

bool
parseEngineScan(const std::string& text, EngineScan& out)
{
    const std::string s = toLower(text);
    if (s == "full")
        out = EngineScan::full;
    else if (s == "active")
        out = EngineScan::active;
    else
        return false;
    return true;
}

bool
parseEngineBarrier(const std::string& text, EngineBarrier& out)
{
    const std::string b = toLower(text);
    if (b == "tree")
        out = EngineBarrier::tree;
    else if (b == "central")
        out = EngineBarrier::central;
    else
        return false;
    return true;
}

bool
parseDistribution(const std::string& text, Distribution& out)
{
    const std::string d = toLower(text);
    if (d == "low-order" || d == "low")
        out = Distribution::lowOrder;
    else if (d == "high-order" || d == "high")
        out = Distribution::highOrder;
    else
        return false;
    return true;
}

ParseResult
parseArgs(int argc, const char* const* argv)
{
    ParseResult result;
    Options& o = result.options;

    // Flags taking a value, so the loop can uniformly fetch it.
    auto needsValue = [](const std::string& flag) {
        static const std::vector<std::string> valued = {
            "--kernel",       "--width",        "--height",
            "--topology",     "--ruche-factor", "--policy",
            "--distribution", "--scale",        "--dataset",
            "--seed",         "--invoke-overhead", "--max-cycles",
            "--engine-threads", "--engine-scan", "--engine-barrier",
            "--param",          "--pagerank-iters", "--deadline-ms",
        };
        return std::find(valued.begin(), valued.end(), flag) !=
               valued.end();
    };

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        std::string value;
        if (needsValue(flag)) {
            if (i + 1 >= argc)
                return fail(flag + " needs a value");
            value = argv[++i];
        }

        if (flag == "--help" || flag == "-h") {
            o.help = true;
        } else if (flag == "--kernel") {
            if (!parseKernel(value, o.kernel))
                return fail("unknown kernel: " + value + " (" +
                            KernelRegistry::instance().namesText() +
                            "; try --list-kernels)");
        } else if (flag == "--width") {
            if (!parseU32(value, 1, 1024, o.machine.width))
                return fail("--width must be in [1, 1024], got " +
                            value);
        } else if (flag == "--height") {
            if (!parseU32(value, 1, 1024, o.machine.height))
                return fail("--height must be in [1, 1024], got " +
                            value);
        } else if (flag == "--topology") {
            if (!parseTopology(value, o.machine.topology))
                return fail("unknown topology: " + value +
                            " (mesh|torus|torus-ruche)");
        } else if (flag == "--ruche-factor") {
            if (!parseU32(value, 2, 64, o.machine.rucheFactor))
                return fail("--ruche-factor must be in [2, 64], got " +
                            value);
        } else if (flag == "--policy") {
            if (!parsePolicy(value, o.machine.policy))
                return fail("unknown policy: " + value +
                            " (round-robin|traffic-aware)");
        } else if (flag == "--distribution") {
            if (!parseDistribution(value, o.machine.distribution))
                return fail("unknown distribution: " + value +
                            " (low-order|high-order)");
        } else if (flag == "--barrier") {
            o.machine.barrier = true;
        } else if (flag == "--invoke-overhead") {
            if (!parseU32(value, 0, 1'000'000,
                          o.machine.invokeOverhead))
                return fail("--invoke-overhead must be in "
                            "[0, 1000000], got " + value);
        } else if (flag == "--max-cycles") {
            std::uint64_t v = 0;
            if (!parseU64(value, v))
                return fail("--max-cycles must be a cycle count, got " +
                            value);
            o.machine.maxCycles = v;
        } else if (flag == "--deadline-ms") {
            if (!parseU64(value, o.deadlineMs))
                return fail("--deadline-ms must be a millisecond "
                            "count, got " + value);
        } else if (flag == "--engine-threads") {
            std::uint32_t threads = 0;
            if (!parseU32(value, 1, 256, threads))
                return fail("--engine-threads must be in [1, 256], "
                            "got " + value);
            o.machine.engineThreads = threads;
        } else if (flag == "--engine-scan") {
            if (!parseEngineScan(value, o.machine.engineScan))
                return fail("--engine-scan must be full|active, got " +
                            value);
        } else if (flag == "--engine-barrier") {
            if (!parseEngineBarrier(value, o.machine.engineBarrier))
                return fail("--engine-barrier must be tree|central, "
                            "got " + value);
        } else if (flag == "--engine-rebalance") {
            o.machine.engineRebalance = true;
        } else if (flag == "--param") {
            std::string err;
            if (!parseParamOverrides(value, o.params, err))
                return fail(err);
        } else if (flag == "--pagerank-iters") {
            // Deprecated alias for --param iterations=N.
            std::uint32_t iters = 0;
            if (!parseU32(value, 1, 1000, iters))
                return fail("--pagerank-iters must be in [1, 1000], "
                            "got " + value);
            o.params.push_back(
                {"iterations", static_cast<double>(iters)});
        } else if (flag == "--scale") {
            std::uint32_t v = 0;
            if (!parseU32(value, 4, 26, v))
                return fail("--scale must be in [4, 26], got " + value);
            o.scale = v;
        } else if (flag == "--dataset") {
            if (value.empty())
                return fail("--dataset needs a name");
            if (!knownDataset(value))
                return fail("unknown dataset: " + value +
                            " (try --list-datasets)");
            o.dataset = value;
        } else if (flag == "--seed") {
            if (!parseU64(value, o.seed))
                return fail("--seed must be an integer, got " + value);
        } else if (flag == "--json") {
            o.json = true;
        } else if (flag == "--time-engine") {
            o.timeEngine = true;
        } else if (flag == "--validate") {
            o.validate = true;
        } else if (flag == "--list-datasets") {
            o.listDatasets = true;
        } else if (flag == "--list-kernels") {
            o.listKernels = true;
        } else {
            return fail("unknown option: " + flag + " (try --help)");
        }
    }

    if (o.machine.topology == NocTopology::torusRuche &&
        o.machine.rucheFactor < 2)
        o.machine.rucheFactor = 2;
    if (o.machine.topology != NocTopology::torusRuche)
        o.machine.rucheFactor = 0;

    // The engine shards one contiguous tile range per worker, so
    // threads beyond the tile count could never receive a shard.
    // Clamp here — where width/height are known regardless of flag
    // order — so the rendered engine_threads matches what actually
    // runs, with a one-line note instead of silently wasted workers.
    const std::uint32_t tiles = o.machine.numTiles();
    if (o.machine.engineThreads > tiles) {
        result.note = "--engine-threads " +
                      std::to_string(o.machine.engineThreads) +
                      " exceeds the " +
                      std::to_string(o.machine.width) + "x" +
                      std::to_string(o.machine.height) + " grid's " +
                      std::to_string(tiles) + " shards; using " +
                      std::to_string(tiles);
        o.machine.engineThreads = tiles;
    }
    return result;
}

const std::vector<Subcommand>&
subcommands()
{
    static const std::vector<Subcommand> table = {
        {"sweep", "[options]",
         "expand a scenario grid and run every point on a worker "
         "pool"},
        {"convert", "[options] [INPUT]",
         "turn edge-list/MatrixMarket/DIMACS inputs into binary CSR "
         "graph files"},
        {"serve", "[options]",
         "long-lived daemon running JSON scenario requests with warm "
         "caches"},
    };
    return table;
}

std::string
usageText()
{
    std::string usage = "usage: dalorex [options]\n";
    for (const Subcommand& sub : subcommands())
        usage += std::string("       dalorex ") + sub.name + " " +
                 sub.args + "\n";
    usage +=
        "\n"
        "Runs one kernel scenario on the cycle-level Dalorex engine\n"
        "and reports runtime statistics plus the energy model.\n"
        "\n"
        "subcommands (each has its own --help):\n";
    for (const Subcommand& sub : subcommands())
        usage += std::string("  ") + sub.name + "\n      " +
                 sub.summary + "\n";
    return usage +
        "\n"
        "scenario:\n"
        "  --kernel K           " +
        KernelRegistry::instance().namesText() +
        " (default bfs)\n"
        "  --scale N            RMAT dataset scale, V = 2^N"
        " (default 12)\n"
        "  --dataset NAME       named dataset instead of --scale:\n"
        "                       amazon|wiki|livejournal|rmatN, or\n"
        "                       file:PATH for a binary CSR graph\n"
        "                       written by `dalorex convert`\n"
        "  --seed N             dataset/weight seed (default 1)\n"
        "\n"
        "machine:\n"
        "  --width N            grid width (default 16)\n"
        "  --height N           grid height (default 16)\n"
        "  --topology T         mesh|torus|torus-ruche"
        " (default torus)\n"
        "  --ruche-factor N     ruche hop distance (torus-ruche)\n"
        "  --policy P           round-robin|traffic-aware"
        " (default traffic-aware)\n"
        "  --distribution D     low-order|high-order"
        " (default low-order)\n"
        "  --barrier            force epoch-synchronized execution\n"
        "  --invoke-overhead N  extra cycles per task invocation\n"
        "  --max-cycles N       hard cycle limit (0 = none); the run\n"
        "                       ends with status \"timeout\" and exit\n"
        "                       code 3 when exceeded\n"
        "  --deadline-ms N      wall-clock budget for the engine run\n"
        "                       (0 = none): a watchdog thread expires\n"
        "                       it and the run unwinds with status\n"
        "                       \"timeout\" at a cycle boundary\n"
        "\n"
        "execution (simulator only; never changes results):\n"
        "  --engine-threads N   engine worker threads [1, 256]\n"
        "                       (default 1; clamped to the tile\n"
        "                       count; stats are byte-identical for\n"
        "                       every N)\n"
        "  --engine-barrier B   tree|central (default tree): the\n"
        "                       cycle loop's worker barrier — the\n"
        "                       MCS-style sense-reversing tree or the\n"
        "                       centralized std::barrier reference;\n"
        "                       stats are byte-identical for both\n"
        "  --engine-rebalance   re-split the shard tile ranges when\n"
        "                       the active set concentrates (off by\n"
        "                       default; stats stay byte-identical)\n"
        "  --engine-scan M      full|active (default active): step\n"
        "                       only the active tile/router worklists\n"
        "                       or keep the exhaustive per-cycle scan\n"
        "                       as a reference oracle; stats are\n"
        "                       byte-identical for both\n"
        "  --time-engine        print the engine-loop wall time to\n"
        "                       stderr (engine_wall_seconds X); the\n"
        "                       stdout report stays byte-identical\n"
        "\n"
        "kernel parameters:\n"
        "  --param K=V,...      override kernel defaults, e.g.\n"
        "                       damping=0.9,iterations=20,\n"
        "                       epsilon=1e-5 (PageRank convergence\n"
        "                       stop; iterations stays the cap);\n"
        "                       keys a kernel does not use are\n"
        "                       skipped\n"
        "  --pagerank-iters N   deprecated alias for\n"
        "                       --param iterations=N\n"
        "\n"
        "output:\n"
        "  --json               emit one JSON object instead of text\n"
        "  --validate           check output against the sequential\n"
        "                       reference (exit 2 on mismatch)\n"
        "  --list-datasets      list the named datasets and exit\n"
        "  --list-kernels       list the registered kernels and exit\n"
        "  --help               this text\n"
        "\n"
        "examples:\n"
        "  dalorex --kernel pagerank --width 8 --height 8"
        " --topology torus --json\n"
        "  dalorex --kernel sssp --dataset amazon --width 16"
        " --height 16 --validate\n";
}

std::string
kernelListText()
{
    std::ostringstream out;
    out << "kernels (from the registry; names and aliases are "
           "case-insensitive):\n";
    for (const KernelInfo* kernel : allKernels()) {
        out << "  " << kernel->name;
        if (!kernel->aliases.empty()) {
            out << " (";
            for (std::size_t i = 0; i < kernel->aliases.size(); ++i)
                out << (i > 0 ? ", " : "") << kernel->aliases[i];
            out << ")";
        }
        out << "\n      " << kernel->summary << "\n      ";
        const KernelTraits& traits = kernel->traits;
        out << (traits.needsBarrier ? "epoch-synchronized"
                                    : "barrierless");
        if (traits.symmetrize)
            out << ", symmetrized graph";
        if (traits.needsWeights)
            out << ", edge values in [" << traits.weightMin << ", "
                << traits.weightMax << "]";
        if (traits.needsInputVector)
            out << ", input vector x";
        if (traits.needsRoot)
            out << ", root-seeded";
        out << (traits.hasFloatResult
                    ? "; float result (1e-3 rel tolerance)"
                    : "; exact integer result");
        if (kernel->defaults.usesDamping)
            out << "; damping " << kernel->defaults.damping;
        if (kernel->defaults.usesIterations)
            out << "; " << kernel->defaults.iterations
                << " epochs default";
        if (kernel->defaults.usesEpsilon)
            out << "; epsilon "
                << (kernel->defaults.epsilon > 0.0
                        ? std::to_string(kernel->defaults.epsilon)
                        : std::string("off"))
                << " (convergence stop)";
        if (!kernel->tags.empty()) {
            out << "\n      figure sets: ";
            for (std::size_t i = 0; i < kernel->tags.size(); ++i)
                out << (i > 0 ? ", " : "") << kernel->tags[i];
        }
        out << "\n";
    }
    return out.str();
}

std::string
datasetListText()
{
    std::ostringstream out;
    out << "datasets (deterministic in name and --seed):\n";
    for (const DatasetListing& ds : datasetCatalog()) {
        out << "  " << ds.name;
        if (!ds.aliases.empty())
            out << " (" << ds.aliases << ")";
        out << "\n      " << ds.note << "\n";
    }
    const DatasetCacheStats cache = datasetCacheStats();
    out << "dataset cache (this process): " << cache.builds
        << " builds, " << cache.hits << " hits\n";
    return out.str();
}

namespace
{

RunOutcome
failRun(RunOutcome outcome, const std::string& message)
{
    outcome.ok = false;
    outcome.error = message;
    return outcome;
}

} // namespace

RunOutcome
runScenario(const Options& options)
{
    return runScenario(options, nullptr);
}

RunOutcome
runScenario(const Options& options, EngineArenas* pool)
{
    return runScenario(options, pool, nullptr);
}

RunOutcome
runScenario(const Options& options, EngineArenas* pool,
            RunControl* control)
{
    RunOutcome outcome;
    Report& report = outcome.report;
    report.options = options;

    if (options.kernel == nullptr)
        return failRun(std::move(outcome), "scenario has no kernel");

    // All dataset construction flows through the process-wide
    // immutable cache: N sweep workers hitting the same (name, scale,
    // seed) share one generated or mmap-loaded graph, and any build
    // failure (unknown name, missing/corrupt graph file) fails this
    // row recoverably instead of killing the process.
    const std::string dataset_name =
        !options.dataset.empty()
            ? options.dataset
            : "rmat" + std::to_string(options.scale);
    if (!knownDataset(dataset_name))
        return failRun(std::move(outcome),
                       "unknown dataset: " + dataset_name +
                           " (try --list-datasets)");
    const CachedDataset cached = datasetCacheGet(
        dataset_name, options.datasetScale, options.seed);
    if (!cached.ok) {
        // A failed file: load is I/O and worth retrying (the cache's
        // negative entry expires); a failed generation is not.
        outcome.transient = cached.transient;
        return failRun(std::move(outcome), cached.error);
    }
    report.datasetName = !options.dataset.empty()
                             ? cached.dataset->name
                             : dataset_name;

    KernelSetup setup = makeKernelSetup(
        *options.kernel, cached.dataset->graph, options.seed);
    applyParamOverrides(setup, options.params);
    report.numVertices = setup.graph.numVertices;
    report.numEdges = setup.graph.numEdges;

    auto app = setup.makeApp();
    Machine machine(options.machine, setup.graph.numVertices,
                    setup.graph.numEdges, pool);

    // The caller's RunControl (cancel propagation) or a local one;
    // a nonzero deadline arms the process-wide watchdog on it either
    // way, so `--deadline-ms` works for every entry point.
    RunControl local_control;
    RunControl* ctl = control != nullptr ? control : &local_control;
    std::uint64_t watchdog_token = 0;
    if (options.deadlineMs > 0)
        watchdog_token = processDeadlineWatchdog().arm(
            std::chrono::steady_clock::now() +
                std::chrono::milliseconds(options.deadlineMs),
            &ctl->expired);

    const auto engine_start = std::chrono::steady_clock::now();
    report.stats = machine.run(*app, ctl);
    report.engineWallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - engine_start)
            .count();
    if (watchdog_token != 0)
        processDeadlineWatchdog().disarm(watchdog_token);

    // Derived quantities are computed even for an early-unwound run:
    // the partial report is the payload a timed-out serve request
    // answers with (status says how far it got). A run unwound before
    // its first cycle committed has no energy to model — leave the
    // breakdown zeroed rather than panic.
    if (report.stats.cycles > 0) {
        report.energy = dalorexEnergy(report.stats, options.machine);
        report.seconds = runSeconds(report.stats);
        report.bandwidthBytesPerSec =
            avgMemoryBandwidth(report.stats);
    }

    outcome.status = report.stats.status;
    if (outcome.status != RunStatus::completed) {
        outcome.ok = false;
        outcome.transient = outcome.status == RunStatus::timeout;
        outcome.error = std::string(toString(outcome.status)) + ": " +
                        report.stats.statusDetail;
        return outcome;
    }

    if (options.validate) {
        const ValidationResult valid =
            validateRun(setup, *app, machine);
        if (!valid)
            return failRun(std::move(outcome),
                           options.kernel->name + " on " +
                               report.datasetName + ": " +
                               valid.detail);
        report.validated = true;
    }
    return outcome;
}

std::string
renderJson(const Report& report)
{
    const Options& o = report.options;
    const RunStats& s = report.stats;
    std::ostringstream out;
    out << "{";
    out << "\"kernel\":\"" << o.kernel->name << "\",";
    out << "\"dataset\":{"
        << "\"name\":\"" << report.datasetName << "\","
        << "\"vertices\":" << report.numVertices << ","
        << "\"edges\":" << report.numEdges << ","
        << "\"seed\":" << o.seed << "},";
    out << "\"machine\":{"
        << "\"width\":" << o.machine.width << ","
        << "\"height\":" << o.machine.height << ","
        << "\"tiles\":" << o.machine.numTiles() << ","
        << "\"topology\":\"" << toString(o.machine.topology) << "\","
        << "\"ruche_factor\":" << o.machine.rucheFactor << ","
        << "\"policy\":\"" << toString(o.machine.policy) << "\","
        << "\"distribution\":\"" << toString(o.machine.distribution)
        << "\","
        << "\"barrier\":" << (o.machine.barrier ? "true" : "false")
        << ","
        << "\"invoke_overhead\":" << o.machine.invokeOverhead << ","
        << "\"engine_threads\":"
        << std::max(1u, o.machine.engineThreads) << ","
        << "\"engine_scan\":\"" << toString(o.machine.engineScan)
        << "\","
        << "\"engine_barrier\":\""
        << toString(o.machine.engineBarrier) << "\","
        << "\"engine_rebalance\":"
        << (o.machine.engineRebalance ? "true" : "false") << "},";
    out << "\"stats\":{"
        << "\"cycles\":" << s.cycles << ","
        << "\"epochs\":" << s.epochs << ","
        << "\"invocations\":" << s.invocations << ","
        << "\"edges_processed\":" << s.edgesProcessed << ","
        << "\"pu_busy_cycles\":" << s.puBusyCycles << ","
        << "\"pu_ops\":" << s.puOps << ","
        << "\"sram_reads\":" << s.sramReads << ","
        << "\"sram_writes\":" << s.sramWrites << ","
        << "\"tsu_reads\":" << s.tsuReads << ","
        << "\"tsu_writes\":" << s.tsuWrites << ","
        << "\"local_bypass_msgs\":" << s.localBypassMsgs << ","
        << "\"utilization\":" << Table::num(s.utilization()) << ","
        << "\"scratchpad_bytes_total\":" << s.scratchpadBytesTotal
        << ","
        << "\"scratchpad_bytes_max\":" << s.scratchpadBytesMax << ","
        << "\"noc\":{"
        << "\"messages_injected\":" << s.noc.messagesInjected << ","
        << "\"messages_delivered\":" << s.noc.messagesDelivered << ","
        << "\"flit_hops\":" << s.noc.flitHops << ","
        << "\"flit_wire_tiles\":" << s.noc.flitWireTiles << ","
        << "\"router_passages\":" << s.noc.routerPassages << ","
        << "\"delivery_stalls\":" << s.noc.deliveryStalls << "},"
        // Simulator execution metrics: how much scan work the engine
        // itself did. These vary with --engine-scan (and are the only
        // stats that may), so the determinism suite normalizes them
        // out before byte-comparing reports.
        << "\"engine\":{"
        << "\"stepped_cycles\":" << s.engineSteppedCycles << ","
        << "\"noc_stepped_cycles\":" << s.nocSteppedCycles << ","
        << "\"tile_scans\":" << s.tileScans << ","
        << "\"router_scans\":" << s.routerScans << ","
        << "\"active_tile_cycles_saved\":" << s.activeTileCyclesSaved
        << ","
        << "\"active_router_cycles_saved\":"
        << s.activeRouterCyclesSaved << ","
        << "\"rebalances\":" << s.engineRebalances << ","
        << "\"tile_scan_occupancy\":"
        << Table::num(s.tileScanOccupancy()) << ","
        << "\"router_scan_occupancy\":"
        << Table::num(s.routerScanOccupancy()) << "}},";
    out << "\"energy\":{"
        << "\"logic_j\":" << Table::num(report.energy.logicJ) << ","
        << "\"memory_j\":" << Table::num(report.energy.memoryJ) << ","
        << "\"network_j\":" << Table::num(report.energy.networkJ)
        << ","
        << "\"total_j\":" << Table::num(report.energy.totalJ()) << ","
        << "\"logic_pct\":" << Table::num(report.energy.logicPct())
        << ","
        << "\"memory_pct\":" << Table::num(report.energy.memoryPct())
        << ","
        << "\"network_pct\":" << Table::num(report.energy.networkPct())
        << "},";
    out << "\"seconds\":" << Table::num(report.seconds) << ",";
    out << "\"memory_bandwidth_bytes_per_sec\":"
        << Table::num(report.bandwidthBytesPerSec) << ",";
    out << "\"status\":\"" << toString(s.status) << "\",";
    out << "\"validated\":" << (report.validated ? "true" : "false");
    out << "}\n";
    return out.str();
}

std::string
renderText(const Report& report)
{
    const Options& o = report.options;
    const RunStats& s = report.stats;
    std::ostringstream out;
    out << "kernel            " << o.kernel->display << " on "
        << report.datasetName << " (V=" << report.numVertices
        << ", E=" << report.numEdges << ", seed=" << o.seed << ")\n";
    out << "machine           " << o.machine.width << "x"
        << o.machine.height << " " << toString(o.machine.topology)
        << ", " << toString(o.machine.policy) << ", "
        << toString(o.machine.distribution)
        << (o.machine.barrier ? ", barrier" : "") << "\n";
    out << "cycles            " << s.cycles << " (" << s.epochs
        << " epoch" << (s.epochs == 1 ? "" : "s") << ", "
        << Table::num(report.seconds * 1e3) << " ms at 1 GHz)\n";
    out << "invocations       " << s.invocations << "\n";
    out << "edges processed   " << s.edgesProcessed << "\n";
    out << "PU utilization    "
        << Table::num(100.0 * s.utilization()) << " %\n";
    out << "mem accesses      " << s.memAccesses() << " words ("
        << Table::num(report.bandwidthBytesPerSec / 1e9) << " GB/s)\n";
    out << "NoC               " << s.noc.messagesDelivered
        << " msgs, " << s.noc.flitHops << " flit-hops, "
        << s.noc.deliveryStalls << " stalls\n";
    out << "engine scan       " << toString(o.machine.engineScan)
        << ": " << s.engineSteppedCycles << " of " << s.cycles
        << " cycles stepped, tile occupancy "
        << Table::num(100.0 * s.tileScanOccupancy())
        << " %, router occupancy "
        << Table::num(100.0 * s.routerScanOccupancy()) << " %\n";
    out << "energy            "
        << Table::num(report.energy.totalJ() * 1e3) << " mJ (logic "
        << Table::num(report.energy.logicPct()) << " %, memory "
        << Table::num(report.energy.memoryPct()) << " %, network "
        << Table::num(report.energy.networkPct()) << " %)\n";
    if (s.status != RunStatus::completed)
        out << "status            " << toString(s.status) << " ("
            << s.statusDetail << "); stats above are partial\n";
    if (report.validated)
        out << "validated         output matches the sequential"
               " reference\n";
    return out.str();
}

int
cliMain(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err)
{
    const ParseResult parsed = parseArgs(argc, argv);
    if (!parsed.ok) {
        err << "dalorex: " << parsed.error << "\n";
        return 2;
    }
    if (!parsed.note.empty())
        err << "dalorex: " << parsed.note << "\n";
    if (parsed.options.help) {
        out << usageText();
        return 0;
    }
    if (parsed.options.listDatasets) {
        out << datasetListText();
        return 0;
    }
    if (parsed.options.listKernels) {
        out << kernelListText();
        return 0;
    }
    const RunOutcome outcome = runScenario(parsed.options);
    if (!outcome.ok && outcome.status == RunStatus::completed) {
        err << "dalorex: " << outcome.error << "\n";
        return 2;
    }
    if (parsed.options.timeEngine)
        err << "engine_wall_seconds "
            << outcome.report.engineWallSeconds << "\n";
    out << (parsed.options.json ? renderJson(outcome.report)
                                : renderText(outcome.report));
    if (outcome.status != RunStatus::completed) {
        // Timeout / cancel / deadlock: the partial report above says
        // how far the run got; a distinct exit code says it's partial.
        err << "dalorex: " << outcome.error << "\n";
        return 3;
    }
    return 0;
}

} // namespace cli
} // namespace dalorex
