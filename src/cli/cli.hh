/**
 * @file
 * The `dalorex` experiment front door: one binary that builds a
 * scenario (kernel + dataset + machine shape + policy knobs) from
 * argv, runs it on the cycle-level engine, and reports RunStats plus
 * the energy model as text or JSON.
 *
 * Parsing, running and rendering are split from main() so tests can
 * drive them directly and later PRs can sweep scenarios in-process.
 */

#ifndef DALOREX_CLI_CLI_HH
#define DALOREX_CLI_CLI_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "apps/kernels.hh"
#include "energy/model.hh"
#include "sim/machine.hh"

namespace dalorex
{
namespace cli
{

/** One scenario, fully determined by argv. */
struct Options
{
    /** Registry handle of the scenario's kernel (never null). */
    const KernelInfo* kernel = defaultKernel();
    MachineConfig machine; //!< width/height/topology/policy/...
    /** Named dataset ("amazon", "wiki", "rmat14", ...); empty = RMAT
     *  at `scale`. */
    std::string dataset;
    unsigned scale = 12; //!< RMAT scale when `dataset` is empty
    /** Vertex-scale override for named stand-ins (0 = native size);
     *  set by the sweep layer's quick/full and NAME@SCALE specs. */
    unsigned datasetScale = 0;
    /** Kernel parameter overrides (`--param damping=0.9,...`),
     *  applied through each kernel's KernelDefaults; keys a kernel
     *  declares unused are skipped. `--pagerank-iters N` survives as
     *  a deprecated alias for iterations=N. */
    std::vector<ParamOverride> params;
    std::uint64_t seed = 1;   //!< dataset/weight seed
    /**
     * Wall-clock budget for the engine run in milliseconds (0 =
     * none). The process-wide DeadlineWatchdog arms when the run
     * starts; expiry unwinds the engine at a cycle boundary with
     * RunStatus::timeout instead of the run hanging or being killed.
     * A run-control knob, not scenario identity: it is never rendered
     * into reports, so a completed run's bytes are identical with or
     * without a deadline.
     */
    std::uint64_t deadlineMs = 0;
    bool json = false;        //!< emit JSON instead of text
    /** Print the engine-loop wall time to stderr (one line,
     *  `engine_wall_seconds X`): perf tooling reads it without
     *  disturbing the byte-identical stdout contract. */
    bool timeEngine = false;
    bool validate = false;    //!< check against sequential reference
    bool help = false;        //!< --help was requested
    bool listDatasets = false; //!< --list-datasets was requested
    bool listKernels = false; //!< --list-kernels was requested
};

/** Outcome of parsing argv: options, or a diagnostic. */
struct ParseResult
{
    Options options;
    bool ok = true;
    std::string error; //!< set when !ok
    /** One-line advisory printed to stderr on success (e.g. the
     *  --engine-threads > tiles clamp); empty when nothing to say. */
    std::string note;
};

/**
 * Parse argv (argv[0] is skipped). Unknown flags, missing values and
 * out-of-range numbers yield ok == false with a one-line error.
 */
ParseResult parseArgs(int argc, const char* const* argv);

/**
 * One `dalorex` subcommand. The table below is the single source of
 * truth for what subcommands exist: main() dispatches from it and
 * usageText() renders its usage lines and summaries from it, so a
 * new subcommand cannot appear in one place and not the other.
 */
struct Subcommand
{
    const char* name;    //!< argv[1] word ("sweep")
    const char* args;    //!< usage-line argument sketch
    const char* summary; //!< one line for the top-level help
};

/** Every subcommand of the `dalorex` binary, dispatch order. */
const std::vector<Subcommand>& subcommands();

/** The --help text (kernel names rendered from the registry). */
std::string usageText();

/** The --list-datasets text (shared with `dalorex sweep`). */
std::string datasetListText();

/** The --list-kernels text: every registered kernel's name, aliases,
 *  traits, defaults and tags (shared with `dalorex sweep`). */
std::string kernelListText();

// Name parsers shared with the sweep grid flags; all return false on
// unknown names and accept the usage-text aliases. The kernel parser
// resolves through the registry, so new kernels parse with no edits
// here.
bool parseKernel(const std::string& text, const KernelInfo*& out);
bool parseTopology(const std::string& text, NocTopology& out);
bool parsePolicy(const std::string& text, SchedPolicy& out);
bool parseDistribution(const std::string& text, Distribution& out);
bool parseEngineScan(const std::string& text, EngineScan& out);
bool parseEngineBarrier(const std::string& text, EngineBarrier& out);

/** Parse a decimal unsigned integer; false on junk or overflow. */
bool parseU64(const std::string& text, std::uint64_t& out);

/** Same, bounds-checked into [min, max]. */
bool parseU32(const std::string& text, std::uint32_t min,
              std::uint32_t max, std::uint32_t& out);

/** Everything measured by one scenario run. */
struct Report
{
    Options options;
    std::string datasetName;
    VertexId numVertices = 0;
    EdgeId numEdges = 0;
    RunStats stats;
    EnergyBreakdown energy;
    double seconds = 0.0;
    double bandwidthBytesPerSec = 0.0;
    /** Host wall time of Machine::run alone (simulator speed). Not
     *  rendered in the JSON/text reports, which therefore stay
     *  byte-identical across reruns of the same scenario; between
     *  --engine-scan modes the reports differ only in the
     *  engine_scan field and the stats.engine scan counters, which
     *  determinism_test and tools/bench_pr5.py normalize out. */
    double engineWallSeconds = 0.0;
    bool validated = false;
};

/** One scenario run, or a one-line diagnostic. */
struct RunOutcome
{
    Report report;
    bool ok = true;
    /** Set when !ok: impossible scenario or reference mismatch. */
    std::string error;
    /**
     * How the engine run ended (mirrors report.stats.status). A
     * timeout/cancelled/deadlock run has ok == false but the report
     * is still filled with the partial stats, so callers (serve) can
     * answer with a `result` carrying status:"timeout" rather than a
     * bare error line.
     */
    RunStatus status = RunStatus::completed;
    /**
     * Whether the failure is plausibly transient (a dataset-file I/O
     * error, a wall-clock timeout) and worth retrying with backoff —
     * vs permanent (unknown scenario, validation mismatch), which the
     * sweep layer quarantines instead of re-running.
     */
    bool transient = false;
};

/**
 * Build the dataset and kernel, run the machine, derive energy.
 * Impossible scenarios (e.g. unknown dataset name) and reference
 * mismatches under options.validate come back as ok == false with a
 * one-line diagnostic instead of killing the process, so one bad
 * point fails its own sweep row, not the whole grid.
 */
RunOutcome runScenario(const Options& options);

/**
 * Same, recycling the engine's queue arenas through `pool` (see
 * EngineArenas). Long-lived callers — `dalorex serve`, sweep workers —
 * pass one pool per worker so back-to-back runs reuse the grown
 * allocations; results are byte-identical either way.
 */
RunOutcome runScenario(const Options& options, EngineArenas* pool);

/**
 * Same, under cooperative run control. `control` (may be nullptr) is
 * polled by the engine's serial tail: an externally set cancel flag
 * unwinds the run as cancelled, and options.deadlineMs (or a watchdog
 * the caller armed on control->expired itself) unwinds it as a
 * timeout — both at a cycle boundary, with the partial report filled.
 */
RunOutcome runScenario(const Options& options, EngineArenas* pool,
                       RunControl* control);

/** Render a report as a single valid JSON object (with newline). */
std::string renderJson(const Report& report);

/** Render a report as a human-readable text block. */
std::string renderText(const Report& report);

/**
 * Full program behavior: parse, run, print to `out`; diagnostics go
 * to `err`. Returns the process exit code (0 ok, 2 on a usage error
 * or an impossible/failed scenario — one-line diagnostic on err, 3
 * when the run unwound early via timeout/cancel/deadlock — the
 * partial report is still printed with its status field).
 */
int cliMain(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

} // namespace cli
} // namespace dalorex

#endif // DALOREX_CLI_CLI_HH
