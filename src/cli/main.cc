/**
 * @file
 * Entry point of the `dalorex` binary: dispatches the `sweep` and
 * `convert` subcommands, otherwise runs one scenario. All behavior
 * lives in cli::cliMain / sweep::sweepMain / convert::convertMain so
 * tests can drive them in-process.
 */

#include <cstring>
#include <iostream>

#include "cli/cli.hh"
#include "graph-convert/graph_convert.hh"
#include "sweep/sweep_cli.hh"

int
main(int argc, char** argv)
{
    if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
        return dalorex::sweep::sweepMain(argc - 1, argv + 1, std::cout,
                                         std::cerr);
    if (argc > 1 && std::strcmp(argv[1], "convert") == 0)
        return dalorex::convert::convertMain(argc - 1, argv + 1,
                                             std::cout, std::cerr);
    return dalorex::cli::cliMain(argc, argv, std::cout, std::cerr);
}
