/**
 * @file
 * Entry point of the `dalorex` binary; all behavior lives in
 * cli::cliMain so tests can drive it in-process.
 */

#include <iostream>

#include "cli/cli.hh"

int
main(int argc, char** argv)
{
    return dalorex::cli::cliMain(argc, argv, std::cout, std::cerr);
}
