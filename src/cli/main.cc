/**
 * @file
 * Entry point of the `dalorex` binary: dispatches the subcommands
 * enumerated by cli::subcommands() — the same table the top-level
 * help renders, so the two cannot drift — otherwise runs one
 * scenario. All behavior lives in the per-subcommand mains so tests
 * can drive them in-process.
 */

#include <iostream>

#include "cli/cli.hh"
#include "graph-convert/graph_convert.hh"
#include "serve/serve_cli.hh"
#include "sweep/sweep_cli.hh"

namespace
{

int
dispatch(const dalorex::cli::Subcommand& sub, int argc, char** argv)
{
    const std::string name = sub.name;
    if (name == "sweep")
        return dalorex::sweep::sweepMain(argc, argv, std::cout,
                                         std::cerr);
    if (name == "convert")
        return dalorex::convert::convertMain(argc, argv, std::cout,
                                             std::cerr);
    if (name == "serve")
        return dalorex::serve::serveMain(argc, argv, std::cin,
                                         std::cout, std::cerr);
    std::cerr << "dalorex: subcommand table lists '" << name
              << "' but main() cannot dispatch it\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc > 1) {
        for (const dalorex::cli::Subcommand& sub :
             dalorex::cli::subcommands()) {
            if (sub.name == std::string(argv[1]))
                return dispatch(sub, argc - 1, argv + 1);
        }
    }
    return dalorex::cli::cliMain(argc, argv, std::cout, std::cerr);
}
