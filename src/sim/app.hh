/**
 * @file
 * Application interface of the Dalorex programming model.
 *
 * "Application programmers would not program Dalorex directly. Instead,
 * DSLs ... could invoke our kernel library" (Sec. III-B). An App is one
 * kernel of that library: it declares tasks and channels, distributes
 * its data arrays into per-tile chunks, seeds the initial task
 * invocations, and (in epoch-synchronized mode) restarts epochs when
 * the chip goes idle.
 */

#ifndef DALOREX_SIM_APP_HH
#define DALOREX_SIM_APP_HH

namespace dalorex
{

class Machine;

/** One kernel written in the Dalorex task programming model. */
class App
{
  public:
    virtual ~App() = default;

    /** Kernel name for reports (e.g. "BFS"). */
    virtual const char* name() const = 0;

    /**
     * Whether the kernel inherently needs per-epoch synchronization.
     * PageRank does ("since PageRank necessitates per-epoch
     * synchronization ... still uses a global barrier", Fig. 5); the
     * others run barrierless unless the machine forces barriers.
     */
    virtual bool needsBarrier() const { return false; }

    /**
     * Register tasks/channels and install per-tile state (the local
     * chunks of the dataset arrays). Called once before the run.
     */
    virtual void configure(Machine& machine) = 0;

    /** Seed the initial task invocations (e.g., the root vertex). */
    virtual void start(Machine& machine) = 0;

    /**
     * Epoch-synchronized mode only: the chip went idle; seed the next
     * epoch's work. Return false when the algorithm has converged
     * (run ends). Never called in barrierless mode.
     */
    virtual bool startEpoch(Machine& machine) { (void)machine;
        return false; }
};

} // namespace dalorex

#endif // DALOREX_SIM_APP_HH
