/**
 * @file
 * Shard-ownership checker: debug-build instrumentation proving the
 * engine's isolation invariant at runtime.
 *
 * The whole determinism story of the sharded engine (byte-identical
 * RunStats at any --engine-threads) rests on one rule: during a
 * parallel phase, a worker writes only state owned by its shard —
 * its contiguous tile/router index range — and every cross-shard
 * effect is staged, bucketed by destination shard, and committed by
 * the destination's owner in deterministic source order. This file
 * makes that rule checkable: the engine claims its shard's index
 * range on entry to each parallel phase (RAII), and every mutation
 * point calls a check hook that panics if the written index falls
 * outside the claiming thread's range, or if a thread with no claim
 * writes at all while a parallel phase is running somewhere in the
 * same domain. The parallel commit phase takes its own claim scope
 * ("noc-commit" in Network::commitShard): the same router range as
 * the compute phase, but covering the *application* of effects other
 * shards staged for it — so a commit that touches a router outside
 * its own range (the bug class the destination bucketing exists to
 * prevent) trips the checker, not just the determinism diff.
 *
 * A *domain* is one index space; the engine uses the owning Machine
 * as the domain for both tile and router writes (tile id == router
 * id, and the Machine and its Network split shards with the same
 * formula, so one claim covers both phases).
 *
 * Cost model: the checker exists only when DALOREX_OWNERSHIP_CHECKS
 * is 1 (CMake option, default ON in Debug and OFF otherwise). When
 * disabled, every hook macro expands to `((void)0)` and ownership.cc
 * compiles to an empty TU, so Release hot paths carry zero extra
 * instructions and zero extra symbols. The disabled expansion is a
 * noexcept constant expression, which ownership_test exploits as a
 * compile-time guard that no checker call survives into such builds.
 */

#ifndef DALOREX_SIM_OWNERSHIP_HH
#define DALOREX_SIM_OWNERSHIP_HH

#include <cstdint>

#if !defined(DALOREX_OWNERSHIP_CHECKS)
#define DALOREX_OWNERSHIP_CHECKS 0
#endif

namespace dalorex
{
namespace ownership
{

/** True in builds that carry the checker (compile-time constant). */
constexpr bool enabled = DALOREX_OWNERSHIP_CHECKS != 0;

#if DALOREX_OWNERSHIP_CHECKS

/**
 * Claim [begin, end) of `domain`'s index space for the calling
 * thread for the lifetime of the scope. Claims nest (a thread may
 * re-claim the same domain, e.g. a test driving engine internals),
 * and the per-domain active-phase count lets writes from unclaimed
 * threads be detected as long as any claim is live.
 */
class ScopedShardClaim
{
  public:
    ScopedShardClaim(const void* domain, const char* phase,
                     std::uint32_t begin, std::uint32_t end);
    ~ScopedShardClaim();

    ScopedShardClaim(const ScopedShardClaim&) = delete;
    ScopedShardClaim& operator=(const ScopedShardClaim&) = delete;
};

/**
 * Assert that the calling thread may write index `index` of
 * `domain`: either the thread holds a claim on the domain covering
 * the index, or no parallel phase is active on the domain at all
 * (serial sections need no claim). Panics with `what`, the index and
 * the offending claim on violation.
 */
void checkWrite(const void* domain, std::uint32_t index,
                const char* what);

/** True while any thread holds a claim on `domain` (test hook). */
bool phaseActive(const void* domain);

#define DLX_OWN_SCOPE(domain, phase, begin, end)                          \
    ::dalorex::ownership::ScopedShardClaim dlx_own_scope_               \
    {                                                                     \
        (domain), (phase), (begin), (end)                                 \
    }
#define DLX_OWN_WRITE(domain, index, what)                                \
    ::dalorex::ownership::checkWrite((domain), (index), (what))

#else

// Disabled build: the hooks must vanish entirely. Both expansions are
// noexcept constant no-ops; ownership_test static_asserts on exactly
// that property to prove no checker code can hide in the hot path.
#define DLX_OWN_SCOPE(domain, phase, begin, end) ((void)0)
#define DLX_OWN_WRITE(domain, index, what) ((void)0)

#endif // DALOREX_OWNERSHIP_CHECKS

} // namespace ownership
} // namespace dalorex

#endif // DALOREX_SIM_OWNERSHIP_HH
