#include "sim/machine.hh"

#include <algorithm>
#include <cmath>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/ownership.hh"

namespace dalorex
{

namespace
{
constexpr Cycle neverCycle = ~Cycle(0);
} // namespace

double
RunStats::utilization() const
{
    if (cycles == 0 || puBusyPerTile.empty())
        return 0.0;
    return static_cast<double>(puBusyCycles) /
           (static_cast<double>(cycles) *
            static_cast<double>(puBusyPerTile.size()));
}

double
RunStats::tileScanOccupancy() const
{
    const std::uint64_t denominator = tileScans + activeTileCyclesSaved;
    if (denominator == 0)
        return 0.0;
    return static_cast<double>(tileScans) /
           static_cast<double>(denominator);
}

double
RunStats::routerScanOccupancy() const
{
    const std::uint64_t denominator =
        routerScans + activeRouterCyclesSaved;
    if (denominator == 0)
        return 0.0;
    return static_cast<double>(routerScans) /
           static_cast<double>(denominator);
}

// ---------------------------------------------------------------- TaskCtx

TaskCtx::TaskCtx(Machine& machine, Tile& tile, std::uint32_t task,
                 ShardCtx& shard)
    : machine_(machine), tile_(tile), task_(task), shard_(shard)
{
}

const Word*
TaskCtx::peek() const
{
    return tile_.iqs[task_].front();
}

void
TaskCtx::pop()
{
    DLX_OWN_WRITE(&machine_, tile_.id, "TaskCtx::pop");
    tile_.iqs[task_].pop();
    --tile_.pendingIqEntries;
    --shard_.pendingIqDelta;
    ++mutations_;
    // IQ space appeared: re-arm deliveries and self-injections
    // sleeping on this tile.
    machine_.network_->wakeRouter(tile_.id);
    tile_.injectStalledMask = 0;
}

std::uint32_t
TaskCtx::cqFree(ChannelId channel) const
{
    return tile_.cqs[channel].freeEntries();
}

void
TaskCtx::send(ChannelId channel, Word index,
              std::initializer_list<Word> rest)
{
    const ChannelDef& def = machine_.channelDefs_[channel];
    panic_if(rest.size() + 1 != def.numWords,
             "send on channel ", def.name, " with ", rest.size() + 1,
             " words, expected ", int(def.numWords));

    const Partition& part = machine_.partition_;
    Message msg;
    msg.channel = channel;
    msg.numWords = def.numWords;
    if (def.encode == HeadEncode::vertex) {
        msg.dest = part.vertexOwner(index);
        msg.words[0] = part.vertexLocal(index);
    } else {
        msg.dest = part.edgeOwner(index);
        msg.words[0] = part.edgeLocal(index);
    }
    unsigned w = 1;
    for (Word word : rest)
        msg.words[w++] = word;

    DLX_OWN_WRITE(&machine_, tile_.id, "TaskCtx::send");
    tile_.cqs[channel].push(msg);
    ++tile_.pendingCqEntries;
    ++shard_.pendingCqDelta;
    ++mutations_;
    // The PU stores each flit into the channel queue.
    write(def.numWords);
}

std::uint32_t
TaskCtx::iqFree(TaskId task) const
{
    return tile_.iqs[task].freeEntries();
}

void
TaskCtx::enqueueLocal(TaskId task, std::initializer_list<Word> words)
{
    WordQueue& iq = tile_.iqs[task];
    panic_if(words.size() != iq.entryWords(),
             "enqueueLocal entry width mismatch on task ", int(task));
    DLX_OWN_WRITE(&machine_, tile_.id, "TaskCtx::enqueueLocal");
    Word buf[maxMsgWords];
    unsigned w = 0;
    for (Word word : words)
        buf[w++] = word;
    iq.push(buf);
    ++tile_.pendingIqEntries;
    ++shard_.pendingIqDelta;
    ++mutations_;
    write(static_cast<std::uint32_t>(words.size()));
}

void
TaskCtx::countEdges(std::uint64_t n)
{
    shard_.edgesProcessed += n;
}

// ---------------------------------------------------------------- Machine

Machine::Machine(const MachineConfig& config, VertexId num_vertices,
                 EdgeId num_edges, EngineArenas* recycle)
    : config_(config),
      partition_(num_vertices, num_edges, config.numTiles(),
                 config.distribution),
      recycle_(recycle)
{
    fatal_if(config_.numTiles() == 0, "machine needs at least one tile");
    if (config_.topology == NocTopology::torusRuche)
        fatal_if(config_.rucheFactor < 2,
                 "torus-ruche requires rucheFactor >= 2");
    tiles_.resize(config_.numTiles());
    for (TileId t = 0; t < tiles_.size(); ++t)
        tiles_[t].id = t;
    if (recycle_ != nullptr) {
        // Adopt the pool's capacity; finalizeQueues() assign()s every
        // element it uses, so stale contents cannot leak into a run.
        iqArena_ = std::move(recycle_->iq);
        cqArena_ = std::move(recycle_->cq);
    }
}

Machine::~Machine()
{
    if (recycle_ != nullptr) {
        // The tiles' queue views die with us; hand the raw capacity
        // back to the pool for the next Machine.
        recycle_->iq = std::move(iqArena_);
        recycle_->cq = std::move(cqArena_);
    }
}

TaskId
Machine::addTask(TaskDef def)
{
    panic_if(finalized_, "addTask after finalize");
    panic_if(def.fn == nullptr, "task ", def.name, " has no body");
    panic_if(def.paramWords == 0 || def.paramWords > maxMsgWords,
             "task ", def.name, " parameter width out of range");
    taskDefs_.push_back(std::move(def));
    return static_cast<TaskId>(taskDefs_.size() - 1);
}

ChannelId
Machine::addChannel(ChannelDef def)
{
    panic_if(finalized_, "addChannel after finalize");
    panic_if(def.numWords == 0 || def.numWords > maxMsgWords,
             "channel ", def.name, " word count out of range");
    channelDefs_.push_back(std::move(def));
    return static_cast<ChannelId>(channelDefs_.size() - 1);
}

void
Machine::setTileState(TileId tile, std::unique_ptr<AppTileState> state)
{
    tiles_[tile].state = std::move(state);
}

void
Machine::addDataWords(TileId tile, std::uint64_t words)
{
    tiles_[tile].dataWords += words;
}

void
Machine::finalizeQueues()
{
    panic_if(taskDefs_.empty(), "app registered no tasks");
    for (const ChannelDef& ch : channelDefs_) {
        panic_if(ch.targetTask >= taskDefs_.size(),
                 "channel ", ch.name, " targets unknown task");
        panic_if(taskDefs_[ch.targetTask].paramWords != ch.numWords,
                 "channel ", ch.name, " word count ", int(ch.numWords),
                 " does not match target task IQ entry width ",
                 int(taskDefs_[ch.targetTask].paramWords));
    }
    for (const ChannelDef& ch : channelDefs_)
        taskDefs_[ch.targetTask].channelFed = true;
    for (const TaskDef& def : taskDefs_) {
        panic_if(def.outChannel != noChannel &&
                     def.outChannel >= channelDefs_.size(),
                 "task ", def.name, " writes unknown channel");
        if (def.outChannel != noChannel && def.maxOutMsgs > 0) {
            panic_if(channelDefs_[def.outChannel].cqCapacity <
                         def.maxOutMsgs,
                     "task ", def.name,
                     " can never run: maxOutMsgs exceeds CQ capacity");
        }
    }

    // Pool the backing storage of every tile queue into two arenas —
    // one allocation each for all IQ words and all CQ messages in the
    // machine instead of tiles x queues small heap blocks.
    std::size_t iq_words_per_tile = 0;
    for (const TaskDef& def : taskDefs_)
        iq_words_per_tile +=
            WordQueue::storageWords(def.paramWords, def.iqCapacity);
    std::size_t cq_msgs_per_tile = 0;
    for (const ChannelDef& ch : channelDefs_)
        cq_msgs_per_tile += ch.cqCapacity;
    iqArena_.assign(iq_words_per_tile * tiles_.size(), 0);
    cqArena_.assign(cq_msgs_per_tile * tiles_.size(), Message{});
    std::size_t iq_next = 0;
    std::size_t cq_next = 0;

    for (Tile& tile : tiles_) {
        tile.iqs.resize(taskDefs_.size());
        for (std::size_t t = 0; t < taskDefs_.size(); ++t) {
            WordQueue& iq = tile.iqs[t];
            iq.init(taskDefs_[t].paramWords, taskDefs_[t].iqCapacity,
                    &iqArena_[iq_next]);
            iq_next += WordQueue::storageWords(
                taskDefs_[t].paramWords, taskDefs_[t].iqCapacity);
            // Bake the traffic-aware occupancy thresholds into
            // integer watermarks (scheduling hot path).
            iq.setHighMark(static_cast<std::uint32_t>(std::ceil(
                config_.thresholds.iqHigh * iq.capacity())));
        }
        tile.cqs.resize(channelDefs_.size());
        for (std::size_t c = 0; c < channelDefs_.size(); ++c) {
            MsgQueue& cq = tile.cqs[c];
            cq.init(channelDefs_[c].numWords,
                    channelDefs_[c].cqCapacity, &cqArena_[cq_next]);
            cq_next += channelDefs_[c].cqCapacity;
            cq.setLowMark(static_cast<std::uint32_t>(std::floor(
                config_.thresholds.oqLow * cq.capacity())));
        }
        tile.taskInvocations.assign(taskDefs_.size(), 0);
    }
    finalized_ = true;
}

void
Machine::buildShards(unsigned shards)
{
    const auto tiles = static_cast<TileId>(tiles_.size());
    const unsigned n =
        std::max(1u, std::min<unsigned>(shards, tiles));
    shards_.assign(n, ShardCtx{});
    tileShard_.assign(tiles, 0);
    for (unsigned s = 0; s < n; ++s) {
        ShardCtx& shard = shards_[s];
        shard.index = s;
        shard.beginTile =
            static_cast<TileId>(std::uint64_t(tiles) * s / n);
        shard.endTile =
            static_cast<TileId>(std::uint64_t(tiles) * (s + 1) / n);
        for (TileId t = shard.beginTile; t < shard.endTile; ++t)
            tileShard_[t] = s;
        shard.activeMask.assign(
            (shard.endTile - shard.beginTile + 63) / 64, 0);
    }
}

void
Machine::reshard(const std::vector<TileId>& bounds)
{
    for (unsigned s = 0; s < shards_.size(); ++s) {
        ShardCtx& shard = shards_[s];
        shard.beginTile = bounds[s];
        shard.endTile = bounds[s + 1];
        for (TileId t = shard.beginTile; t < shard.endTile; ++t)
            tileShard_[t] = s;
        shard.activeMask.assign(
            (shard.endTile - shard.beginTile + 63) / 64, 0);
    }
    // Rebuild the worklists from the quiet-state ground truth (the
    // old masks' deferred-removal stragglers are dropped; membership
    // of every non-quiet tile is what the invariant requires).
    for (TileId t = 0; t < tiles_.size(); ++t) {
        if (!tiles_[t].quiet(now_))
            activateTile(t);
    }
}

void
Machine::maybeRebalance()
{
    // Measurement window and trigger thresholds. A window is ~1k
    // stepped cycles (fast-forward compresses idle stretches, so
    // windows track engine work, not simulated time); rebalancing
    // fires only after `streakWindows` consecutive windows whose
    // busiest shard carries more than 3/2 of the mean active load.
    constexpr Cycle windowCycles = 1024;
    constexpr unsigned streakWindows = 2;
    constexpr std::uint64_t activeWeight = 7;

    const auto n = static_cast<unsigned>(shards_.size());
    if (n < 2)
        return;
    if (++rebalanceTick_ < windowCycles)
        return;
    rebalanceTick_ = 0;

    const auto tiles = static_cast<TileId>(tiles_.size());
    std::uint64_t total_active = 0;
    std::uint64_t max_active = 0;
    for (const ShardCtx& shard : shards_) {
        std::uint64_t active = 0;
        for (TileId t = shard.beginTile; t < shard.endTile; ++t)
            active += tiles_[t].quiet(now_) ? 0 : 1;
        total_active += active;
        max_active = std::max(max_active, active);
    }
    // Balanced (or idle) window: max <= 1.5x mean resets the streak.
    if (total_active == 0 ||
        max_active * n * 2 <= total_active * 3) {
        imbalanceStreak_ = 0;
        return;
    }
    if (++imbalanceStreak_ < streakWindows)
        return;
    imbalanceStreak_ = 0;

    // Re-split by weight: an active tile costs `activeWeight` extra
    // over the baseline 1 every tile pays (quiet tiles still get
    // scanned into worklists and carry commit traffic), so the new
    // boundaries equalize expected per-shard work, each shard keeping
    // at least one tile.
    rebalancePrefix_.resize(tiles + 1);
    rebalancePrefix_[0] = 0;
    for (TileId t = 0; t < tiles; ++t) {
        rebalancePrefix_[t + 1] =
            rebalancePrefix_[t] + 1 +
            (tiles_[t].quiet(now_) ? 0 : activeWeight);
    }
    const std::uint64_t total_weight = rebalancePrefix_[tiles];

    std::vector<TileId> bounds(n + 1, 0);
    bounds[n] = tiles;
    TileId cursor = 0;
    bool changed = false;
    for (unsigned s = 1; s < n; ++s) {
        const std::uint64_t target = total_weight * s / n;
        while (cursor < tiles && rebalancePrefix_[cursor] < target)
            ++cursor;
        cursor = std::max<TileId>(cursor, bounds[s - 1] + 1);
        cursor = std::min<TileId>(cursor, tiles - (n - s));
        bounds[s] = cursor;
        changed |= bounds[s] != shards_[s].beginTile;
    }
    if (!changed)
        return;

    reshard(bounds);
    network_->reshard(bounds);
    ++stats_.engineRebalances;
}

void
Machine::activateTile(TileId t)
{
    if (shards_.empty())
        return; // pre-run call; the initial sweep in run() covers it
    DLX_OWN_WRITE(this, t, "activateTile");
    ShardCtx& shard = shards_[tileShard_[t]];
    worklistAdd(shard.activeMask, t - shard.beginTile);
}

#if DALOREX_OWNERSHIP_CHECKS
void
Machine::debugInjectOwnershipViolation()
{
    // Test-only hook proving the checker fires: claim the first
    // shard's tile range as if this thread were its parallel worker,
    // then touch the last shard's worklist — exactly the cross-shard
    // write the two-phase contract forbids. Needs >= 2 shards so the
    // last tile is foreign to shard 0.
    if (shards_.empty())
        buildShards(2);
    panic_if(shards_.size() < 2 || tiles_.empty(),
             "debugInjectOwnershipViolation needs a multi-shard "
             "machine (>= 2 tiles)");
    const ShardCtx& first = shards_.front();
    ownership::ScopedShardClaim claim(this, "injected-violation",
                                      first.beginTile, first.endTile);
    activateTile(static_cast<TileId>(tiles_.size() - 1));
}
#endif

void
Machine::seed(TileId tile_id, TaskId task, std::initializer_list<Word> words)
{
    panic_if(!finalized_, "seed before queues are finalized");
    Tile& tile = tiles_[tile_id];
    WordQueue& iq = tile.iqs[task];
    panic_if(words.size() != iq.entryWords(),
             "seed entry width mismatch on task ", int(task));
    panic_if(iq.full(), "seeding overflows IQ of task ",
             taskDefs_[task].name, " on tile ", tile_id,
             " (increase iqCapacity)");
    Word buf[maxMsgWords];
    unsigned w = 0;
    for (Word word : words)
        buf[w++] = word;
    iq.push(buf);
    ++tile.pendingIqEntries;
    ++pendingIq_;
    tile.schedStalled = false;
    activateTile(tile_id);
}

void
Machine::hostCharge(TileId tile_id, std::uint32_t ops,
                    std::uint32_t reads, std::uint32_t writes)
{
    Tile& tile = tiles_[tile_id];
    const Cycle base = std::max(tile.pu.busyUntil, now_);
    const Cycle cost = ops + reads + writes;
    tile.pu.busyUntil = base + cost;
    tile.pu.busyCycles += cost;
    tile.pu.ops += ops;
    tile.pu.sramReads += reads;
    tile.pu.sramWrites += writes;
    activateTile(tile_id);
}

bool
Machine::deliver(const Message& msg)
{
    const ChannelDef& def = channelDefs_[msg.channel];
    Tile& tile = tiles_[msg.dest];
    WordQueue& iq = tile.iqs[def.targetTask];
    if (iq.full())
        return false; // endpoint backpressure
    DLX_OWN_WRITE(this, msg.dest, "deliver");
    iq.push(msg.words.data());
    ++tile.pendingIqEntries;
    // Deliveries happen at the destination's own router, so the
    // owning shard is always the one computing this call.
    ShardCtx& shard = shards_[tileShard_[msg.dest]];
    ++shard.pendingIqDelta;
    shard.tsuWrites += def.numWords;
    shard.progressed = true;
    tile.schedStalled = false; // new input may unblock the TSU
    activateTile(msg.dest);
    return true;
}

void
Machine::injectFromCqs(Tile& tile, Cycle now, ShardCtx& shard)
{
    if (tile.pendingCqEntries == 0)
        return;
    const auto num_channels =
        static_cast<std::uint32_t>(channelDefs_.size());
    for (std::uint32_t i = 0; i < num_channels; ++i) {
        const auto c = static_cast<ChannelId>(
            (tile.injectNext + i) % num_channels);
        if ((tile.injectStalledMask >> c) & 1)
            continue; // stalled on a full buffer/IQ; wait for a pop
        MsgQueue& cq = tile.cqs[c];
        if (cq.empty())
            continue;
        const Message& msg = cq.front();
        if (msg.dest == tile.id) {
            // "An OQ can be either another task's input queue (IQ) if
            // it operates over data residing in the same tile": local
            // delivery bypasses the network through the TSU.
            const ChannelDef& def = channelDefs_[msg.channel];
            WordQueue& iq = tile.iqs[def.targetTask];
            if (iq.full()) {
                // Wait for this tile's IQs to drain (pop re-arms).
                tile.injectStalledMask |= std::uint8_t(1) << c;
                continue;
            }
            iq.push(msg.words.data());
            ++tile.pendingIqEntries;
            ++shard.pendingIqDelta;
            shard.tsuReads += def.numWords;
            shard.tsuWrites += def.numWords;
            ++shard.localBypassMsgs;
            tile.schedStalled = false;
        } else {
            const InjectResult res =
                network_->tryInject(msg, tile.id, now, shard.index);
            if (res == InjectResult::bufferFull) {
                // onInjectSpace re-arms when the buffer pops.
                tile.injectStalledMask |= std::uint8_t(1) << c;
                continue;
            }
            if (res == InjectResult::portBusy)
                continue; // transient: retry next cycle
            shard.tsuReads += msg.numWords;
        }
        cq.pop();
        --tile.pendingCqEntries;
        --shard.pendingCqDelta;
        shard.progressed = true;
        tile.schedStalled = false; // CQ space may unblock the TSU
        tile.injectNext = (c + 1) % num_channels;
        break; // one message through the local port per cycle
    }
}

void
Machine::stepPu(Tile& tile, Cycle now, ShardCtx& shard)
{
    if (tile.pu.busyUntil > now || tile.pendingIqEntries == 0 ||
        tile.schedStalled) {
        return;
    }

    const std::uint32_t t =
        pickTask(tile, taskDefs_, config_.policy);
    if (t == noTask) {
        // Nothing runnable: sleep until one of this tile's queues
        // mutates (deliver / inject / seed re-arm the flag).
        tile.schedStalled = true;
        return;
    }

    const TaskDef& def = taskDefs_[t];
    TaskCtx ctx(*this, tile, t, shard);

    Word params[maxMsgWords];
    if (def.preload) {
        // "Task parameters are loaded by TSU before the task begins."
        const Word* entry = tile.iqs[t].front();
        for (unsigned w = 0; w < def.paramWords; ++w)
            params[w] = entry[w];
        ctx.params_ = params;
        tile.iqs[t].pop();
        --tile.pendingIqEntries;
        --shard.pendingIqDelta;
        shard.tsuReads += def.paramWords;
        // IQ space appeared: re-arm deliveries and self-injections
        // sleeping on this tile.
        network_->wakeRouter(tile.id);
        tile.injectStalledMask = 0;
    }

    def.fn(*this, tile, ctx);

    // Base invocation cost: TSU handoff + task entry/exit on the PU.
    // The interrupting-invocation ablation (Data-Local) penalizes only
    // channel-fed tasks: those are the remote calls that interrupted
    // a Tesseract core.
    constexpr std::uint32_t invocation_base = 2;
    const Cycle cost = std::max<Cycle>(
        1, ctx.cyclesCharged() + invocation_base +
               (def.channelFed ? config_.invokeOverhead : 0));
    tile.pu.busyUntil = now + cost;
    tile.pu.busyCycles += cost;
    tile.pu.ops += ctx.opsCharged();
    tile.pu.sramReads += ctx.readsCharged();
    tile.pu.sramWrites += ctx.writesCharged();
    ++tile.pu.invocations;
    ++tile.taskInvocations[t];
    // Only invocations that move queue state count as progress; an
    // invocation that cannot act must not placate the deadlock
    // watchdog.
    if (def.preload || ctx.mutations() > 0)
        shard.progressed = true;
}

void
Machine::stepTile(Tile& tile, Cycle now, ShardCtx& shard)
{
    DLX_OWN_WRITE(this, tile.id, "stepTile");
    if (!tile.quiet(now)) {
        injectFromCqs(tile, now, shard);
        stepPu(tile, now, shard);
    }
    // Idle/fast-forward aggregates, maintained here so the serial
    // part of the loop is O(shards), not O(tiles). Quiet tiles
    // contribute nothing (busyUntil <= now, no pending CQ), which is
    // what makes the active-set scan aggregate-equivalent to the
    // full one.
    const Cycle busy = tile.pu.busyUntil;
    if (busy > shard.maxBusyUntil)
        shard.maxBusyUntil = busy;
    if (busy > now && busy < shard.nextEvent)
        shard.nextEvent = busy;
    if (tile.pendingCqEntries > 0) {
        const Cycle free_at = network_->injectFreeAt(tile.id);
        if (free_at > now && free_at < shard.nextEvent)
            shard.nextEvent = free_at;
    }
}

void
Machine::tilePhase(unsigned shard_index, Cycle now)
{
    ShardCtx& shard = shards_[shard_index];
    DLX_OWN_SCOPE(this, "tile-phase", shard.beginTile, shard.endTile);
    shard.maxBusyUntil = 0;
    shard.nextEvent = neverCycle;

    if (config_.engineScan == EngineScan::full) {
        // Reference oracle: visit every tile, every cycle.
        shard.tileScans += shard.endTile - shard.beginTile;
        for (TileId t = shard.beginTile; t < shard.endTile; ++t)
            stepTile(tiles_[t], now, shard);
        return;
    }

    // Active-set scan: visit only the queued tiles, dropping every
    // tile that is quiet after its step (activity created later
    // re-queues it through activateTile). The no-mid-sweep-growth
    // precondition holds because a tile's step never activates
    // *other* tiles — all task effects are tile-local and
    // deliveries happen in the NoC phase.
    worklistSweep(shard.activeMask, [&](std::size_t off) {
        ++shard.tileScans;
        Tile& tile =
            tiles_[shard.beginTile + static_cast<TileId>(off)];
        stepTile(tile, now, shard);
        return !tile.quiet(now);
    });
}

RunStats
Machine::run(App& app)
{
    return run(app, nullptr);
}

RunStats
Machine::run(App& app, const RunControl* control)
{
    panic_if(ran_, "Machine::run is one-shot; build a new Machine");
    ran_ = true;

    app.configure(*this);
    finalizeQueues();
    buildShards(std::max(1u, config_.engineThreads));
    const auto num_shards =
        static_cast<unsigned>(shards_.size());

    NocConfig noc_config;
    noc_config.topology = config_.topology;
    noc_config.width = config_.width;
    noc_config.height = config_.height;
    noc_config.rucheFactor = config_.rucheFactor;
    noc_config.bufferSlots = config_.nocBufferSlots;
    noc_config.scanMode = config_.engineScan;
    noc_config.numChannels =
        std::max<std::uint32_t>(1,
                                static_cast<std::uint32_t>(
                                    channelDefs_.size()));
    for (std::size_t c = 0; c < channelDefs_.size(); ++c)
        noc_config.msgWords[c] = channelDefs_[c].numWords;
    if (channelDefs_.empty())
        noc_config.msgWords[0] = 1;
    network_ = std::make_unique<Network>(
        noc_config,
        [this](const Message& msg) { return deliver(msg); },
        [this](TileId tile, ChannelId channel) {
            tiles_[tile].injectStalledMask &=
                ~(std::uint8_t(1) << channel);
        });
    network_->setNumShards(num_shards);
    // Router id == tile id and both layers use the identical shard
    // split, so tile-phase and NoC-phase writes share one ownership
    // domain: this Machine.
    network_->setOwnershipDomain(this);

    app.start(*this);

    // Establish the worklist invariant before the first cycle: every
    // non-quiet tile — whatever path configure()/start() used to
    // touch it — is queued on its shard.
    for (TileId t = 0; t < tiles_.size(); ++t) {
        if (!tiles_[t].quiet(0))
            activateTile(t);
    }

    const bool use_barrier = config_.barrier || app.needsBarrier();
    const Cycle idle_latency =
        2 * log2Ceil(std::max<std::uint64_t>(2, config_.numTiles())) + 2;
    const Cycle barrier_latency =
        idle_latency + config_.width + config_.height;

    stats_.epochs = 1;
    lastProgress_ = 0;

    // One crew member per shard; with one shard the phases run inline
    // on this thread and the crew spawns nothing. The whole run is a
    // single crew session: every member executes the SPMD cycle loop
    // below, synchronized by the configured phase barrier, and the
    // per-cycle serial section rides inside the tail barrier's
    // completion step instead of costing its own rendezvous. With NoC
    // traffic a cycle is three barrier syncs (compute | commit |
    // tiles+serial); a quiescent cycle is one.
    WorkerCrew crew(num_shards);
    const std::unique_ptr<PhaseBarrier> barrier =
        makePhaseBarrier(config_.engineBarrier, num_shards);

    // Cycle-loop control block. Written only by the serial section;
    // the barrier's release chain publishes it to every member.
    struct CycleCtl
    {
        bool stepNoc = false;
        bool done = false;
    };
    CycleCtl ctl;

    // The per-cycle serial section: merge the cycle's shard deltas in
    // fixed order, decide termination/epoch/fast-forward, and set up
    // the next cycle. Runs exactly once per cycle, after every worker
    // arrived at the tail barrier — so it owns the world.
    const PhaseBarrier::SerialFn serial_tail = [&] {
        bool progressed = false;
        Cycle max_busy = now_;
        Cycle next_event = neverCycle;
        for (ShardCtx& shard : shards_) {
            pendingIq_ += shard.pendingIqDelta;
            shard.pendingIqDelta = 0;
            pendingCq_ += shard.pendingCqDelta;
            shard.pendingCqDelta = 0;
            progressed |= shard.progressed;
            shard.progressed = false;
            max_busy = std::max(max_busy, shard.maxBusyUntil);
            next_event = std::min(next_event, shard.nextEvent);
        }
        if (progressed)
            lastProgress_ = now_;

        if (allIdle()) {
            // Drain the tail: the last tasks' busy time still counts.
            now_ = max_busy;
            if (!(use_barrier && app.startEpoch(*this))) {
                ctl.done = true;
                return;
            }
            now_ += barrier_latency;
            ++stats_.epochs;
            lastProgress_ = now_;
        } else {
            // Cooperative unwind points: a set cancel/expired flag or
            // a tripped cycle watchdog ends the run at this cycle
            // boundary with a status instead of killing the process.
            // Every worker is parked in the tail barrier here, so the
            // crew exits the SPMD loop together and the partial stats
            // are exactly the state after `now_` committed cycles.
            if (control != nullptr && control->cancel != nullptr &&
                control->cancel->load(std::memory_order_relaxed)) {
                stats_.status = RunStatus::cancelled;
                stats_.statusDetail =
                    "cancelled at cycle " + std::to_string(now_);
                ctl.done = true;
                return;
            }
            if (control != nullptr &&
                control->expired.load(std::memory_order_relaxed)) {
                stats_.status = RunStatus::timeout;
                stats_.statusDetail =
                    "wall-clock deadline expired at cycle " +
                    std::to_string(now_);
                ctl.done = true;
                return;
            }
            if (now_ - lastProgress_ > config_.watchdogCycles) {
                stats_.status = RunStatus::deadlock;
                stats_.statusDetail =
                    "no progress for " +
                    std::to_string(config_.watchdogCycles) +
                    " cycles at cycle " + std::to_string(now_) +
                    ": pendingIq=" + std::to_string(pendingIq_) +
                    " pendingCq=" + std::to_string(pendingCq_) +
                    " inFlight=" +
                    std::to_string(network_->inFlight());
                ctl.done = true;
                return;
            }
            if (config_.maxCycles != 0 && now_ > config_.maxCycles) {
                stats_.status = RunStatus::timeout;
                stats_.statusDetail =
                    "exceeded maxCycles = " +
                    std::to_string(config_.maxCycles);
                ctl.done = true;
                return;
            }

            // Exactness-preserving fast-forward: if this cycle had no
            // activity and the network is empty, nothing can happen
            // until the next timed event — a PU completing its task
            // or an injection port finishing serialization. Jump
            // there. (Every other wake-up is event-driven and thus
            // implies activity.) The per-shard aggregates make this
            // O(shards), not O(tiles); with the active-set scan the
            // skipped window costs nothing — a fully-idle
            // barrier/drain window is crossed in one step, and when
            // no shard has an active member at all the cycle lands
            // directly on allIdle() above.
            if (network_->quiescent() && lastProgress_ != now_ &&
                next_event != neverCycle && next_event > now_ + 1) {
                now_ = next_event - 1; // increment lands on `next`
            }
        }

        if (config_.engineRebalance)
            maybeRebalance();

        ++now_;
        ++stats_.engineSteppedCycles;
        ctl.stepNoc = !network_->quiescent();
        if (ctl.stepNoc)
            ++stats_.nocSteppedCycles;
    };

    now_ = 0;
    ++stats_.engineSteppedCycles;
    ctl.stepNoc = !network_->quiescent();
    if (ctl.stepNoc)
        ++stats_.nocSteppedCycles;

    crew.runPhase([&](unsigned member) {
        for (;;) {
            if (ctl.stepNoc) {
                network_->stepCompute(member, now_);
                barrier->sync(member);
                network_->commitShard(member, now_);
                barrier->sync(member);
            }
            tilePhase(member, now_);
            barrier->sync(member, &serial_tail);
            if (ctl.done)
                break;
        }
    });

    // A completed run pays the idle-tree detection latency; an early
    // unwind reports exactly the committed cycle count.
    stats_.cycles = stats_.status == RunStatus::completed
                        ? now_ + idle_latency
                        : now_;
    stats_.invocationsPerTask.assign(taskDefs_.size(), 0);
    stats_.puBusyPerTile.resize(tiles_.size());
    for (TileId t = 0; t < tiles_.size(); ++t) {
        const Tile& tile = tiles_[t];
        stats_.puBusyPerTile[t] = tile.pu.busyCycles;
        stats_.puBusyCycles += tile.pu.busyCycles;
        stats_.puOps += tile.pu.ops;
        stats_.sramReads += tile.pu.sramReads;
        stats_.sramWrites += tile.pu.sramWrites;
        stats_.invocations += tile.pu.invocations;
        for (std::size_t k = 0; k < taskDefs_.size(); ++k)
            stats_.invocationsPerTask[k] += tile.taskInvocations[k];
        const std::uint64_t bytes = tile.scratchpadBytes();
        stats_.scratchpadBytesTotal += bytes;
        stats_.scratchpadBytesMax =
            std::max(stats_.scratchpadBytesMax, bytes);
    }
    for (const ShardCtx& shard : shards_) {
        stats_.tsuReads += shard.tsuReads;
        stats_.tsuWrites += shard.tsuWrites;
        stats_.localBypassMsgs += shard.localBypassMsgs;
        stats_.edgesProcessed += shard.edgesProcessed;
        stats_.tileScans += shard.tileScans;
    }
    // Scan-occupancy: the visits a full scan would have performed
    // minus the visits actually performed (exactly 0 in full mode).
    stats_.routerScans = network_->routerScans();
    stats_.activeTileCyclesSaved =
        stats_.engineSteppedCycles * tiles_.size() - stats_.tileScans;
    stats_.activeRouterCyclesSaved =
        stats_.nocSteppedCycles * tiles_.size() - stats_.routerScans;
    stats_.noc = network_->stats();
    stats_.routerActivePerTile = network_->routerActiveCycles();
    return stats_;
}

} // namespace dalorex
