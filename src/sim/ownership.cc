#include "sim/ownership.hh"

#if DALOREX_OWNERSHIP_CHECKS

#include <atomic>
#include <map>
#include <mutex>
#include <vector>

#include "common/logging.hh"

namespace dalorex
{
namespace ownership
{
namespace
{

/** One live claim of the calling thread. */
struct Claim
{
    const void* domain;
    const char* phase;
    std::uint32_t begin;
    std::uint32_t end;
};

/** Claims held by this thread, innermost last (depth is ~1). */
thread_local std::vector<Claim> tClaims;

/**
 * Domains with at least one live claim on any thread. A write from a
 * thread with no claim is only a violation while the domain is in a
 * parallel phase — i.e. while this count is non-zero — so serial
 * sections (commit, setup, teardown) need no claims at all.
 */
std::mutex gMutex;
std::map<const void*, std::uint32_t> gActive;

const Claim*
findClaim(const void* domain)
{
    for (auto it = tClaims.rbegin(); it != tClaims.rend(); ++it)
        if (it->domain == domain)
            return &*it;
    return nullptr;
}

} // namespace

ScopedShardClaim::ScopedShardClaim(const void* domain,
                                   const char* phase,
                                   std::uint32_t begin,
                                   std::uint32_t end)
{
    tClaims.push_back(Claim{domain, phase, begin, end});
    std::lock_guard<std::mutex> lock(gMutex);
    ++gActive[domain];
}

ScopedShardClaim::~ScopedShardClaim()
{
    const Claim claim = tClaims.back();
    tClaims.pop_back();
    std::lock_guard<std::mutex> lock(gMutex);
    auto it = gActive.find(claim.domain);
    if (it != gActive.end() && --it->second == 0)
        gActive.erase(it);
}

bool
phaseActive(const void* domain)
{
    std::lock_guard<std::mutex> lock(gMutex);
    return gActive.find(domain) != gActive.end();
}

void
checkWrite(const void* domain, std::uint32_t index, const char* what)
{
    if (const Claim* claim = findClaim(domain)) {
        if (index < claim->begin || index >= claim->end)
            panic("shard-ownership violation: ", what, " wrote index ",
                  index, " during parallel phase '", claim->phase,
                  "' but the executing worker owns only [",
                  claim->begin, ", ", claim->end,
                  ") — cross-shard effects must be staged and "
                  "committed serially");
        return;
    }
    if (phaseActive(domain))
        panic("shard-ownership violation: ", what, " wrote index ",
              index, " from a thread holding no shard claim while a "
              "parallel phase is active — only claimed workers may "
              "touch shared engine state mid-phase");
}

} // namespace ownership
} // namespace dalorex

#endif // DALOREX_OWNERSHIP_CHECKS
