/**
 * @file
 * The Dalorex machine: a 2D grid of processing tiles connected by the
 * NoC, simulated cycle by cycle.
 *
 * Each cycle the engine (1) advances the network, (2) drains channel
 * queues into the network at every tile (the router's local input
 * port), and (3) lets each idle PU's TSU pick and execute a runnable
 * task, charging its cycle cost. Termination follows the paper's
 * hierarchical idle signal: when every queue, PU and router is empty,
 * the run completes after an idle-tree detection latency; in
 * epoch-synchronized mode the host instead triggers the next epoch
 * (Sec. III-C).
 *
 * Execution is sharded: the tiles are split into contiguous ranges,
 * one per engine worker (MachineConfig::engineThreads). Each cycle the
 * NoC compute phase and the tile phase run shard-parallel; everything
 * a shard mutates is either owned by it (its tiles, their routers) or
 * staged/accumulated per shard and merged serially in fixed shard
 * order. No phase ever reads another shard's in-cycle mutations, so
 * RunStats are byte-identical for every engineThreads value — the
 * serial engine is simply the one-shard case.
 *
 * Stepping is event-driven (EngineScan::active): each shard keeps an
 * intrusive active-tile worklist — a tile is on it iff its PU is
 * busy, it has pending IQ entries or pending CQ entries — maintained
 * incrementally at the exact points activity is created (deliveries,
 * seeds, host epoch charges; a stepped tile's own pushes keep it
 * non-quiet). The tile phase iterates only the worklist, dropping
 * tiles that went quiet (deferred removal keeps membership O(1)), so
 * barrier windows, convergence tails and sparse frontiers cost
 * O(active) per cycle instead of O(tiles). EngineScan::full keeps
 * the exhaustive scan as a reference oracle; both modes produce
 * byte-identical RunStats.
 *
 * The ablation ladder of Fig. 5 maps onto MachineConfig knobs:
 * distribution (Uniform-Distr), policy (Traffic-Aware), topology
 * (Torus-NoC), barrier + invokeOverhead (Data-Local vs Basic-TSU).
 */

#ifndef DALOREX_SIM_MACHINE_HH
#define DALOREX_SIM_MACHINE_HH

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "graph/partition.hh"
#include "noc/network.hh"
#include "sim/app.hh"
#include "tile/task.hh"
#include "tile/tile.hh"
#include "tile/tsu.hh"

namespace dalorex
{

/** Static configuration of one Dalorex machine instance. */
struct MachineConfig
{
    std::uint32_t width = 16;
    std::uint32_t height = 16;
    NocTopology topology = NocTopology::torus;
    std::uint32_t rucheFactor = 0;    //!< for torusRuche
    std::uint32_t nocBufferSlots = 4; //!< per (port, channel), messages
    SchedPolicy policy = SchedPolicy::trafficAware;
    TsuThresholds thresholds{};
    Distribution distribution = Distribution::lowOrder;
    /** Run epoch-synchronized (global barrier between epochs). */
    bool barrier = false;
    /**
     * Extra cycles charged per task invocation: 50 models Tesseract's
     * interrupting remote calls (ablation Data-Local); 0 models the
     * TSU's non-interrupting invocation.
     */
    std::uint32_t invokeOverhead = 0;
    /**
     * Engine worker threads: the tile grid is split into this many
     * contiguous shards stepped in parallel each cycle. Results are
     * byte-identical for every value (see the file comment); raising
     * it only buys wall-clock speed on large grids. Clamped to the
     * tile count; 0 behaves like 1.
     */
    unsigned engineThreads = 1;
    /**
     * Cycle-stepping scan mode (simulator only; never changes
     * results). `active` (default) iterates per-shard active-tile and
     * active-router worklists maintained event-driven — O(active) per
     * cycle; `full` keeps the exhaustive per-cycle scan as a
     * reference oracle. RunStats and energy are byte-identical for
     * both (asserted by determinism_test); only the scan-occupancy
     * counters and the simulator's wall clock differ.
     */
    EngineScan engineScan = EngineScan::active;
    /**
     * Cycle-loop barrier implementation (simulator only; never
     * changes results). `tree` (default) synchronizes the shard
     * workers through the MCS-style sense-reversing tree barrier;
     * `central` keeps the centralized std::barrier as a reference.
     * determinism_test asserts byte-identical reports for both.
     */
    EngineBarrier engineBarrier = EngineBarrier::tree;
    /**
     * Occupancy-driven shard rebalancing (simulator only; never
     * changes results — architectural stats are partition-invariant
     * by the sharded-engine contract). When on, the serial section
     * periodically measures each shard's active-tile population and,
     * on sustained imbalance, re-splits the contiguous tile ranges so
     * workers carry similar active sets. Decisions read only
     * deterministic engine counters, so a given (scenario,
     * engineThreads) pair always rebalances identically.
     */
    bool engineRebalance = false;
    /** End the run with RunStatus::deadlock if this many cycles pass
     *  without progress (a kernel bug; used to panic the process). */
    Cycle watchdogCycles = 1'000'000;
    /** Hard cycle limit (0 = none); exceeding it ends the run with
     *  RunStatus::timeout instead of killing the process. */
    Cycle maxCycles = 0;
    /**
     * Fabrication-time scratchpad capacity per tile in bytes; 0 sizes
     * tiles to their actual usage (the Fig. 6 energy study). The
     * Fig. 5 16x16 comparison provisions 4.2MB per tile (Sec. IV-B),
     * which sets SRAM leakage and the tile side length (NoC wire
     * energy) regardless of dataset footprint.
     */
    std::uint64_t scratchpadProvisionBytes = 0;

    std::uint32_t numTiles() const { return width * height; }
};

/**
 * Cooperative run control for Machine::run. The engine polls it once
 * per cycle in the serial tail of the phase barrier, so a set flag
 * unwinds the whole SPMD crew deterministically at the next cycle
 * boundary — stats stay internally consistent up to the cycle the run
 * stopped — instead of the process being SIGKILLed. `cancel` is an
 * optional external flag (a SIGINT handler, a sweep-wide interrupt);
 * `expired` is set by a DeadlineWatchdog when the run's wall-clock
 * budget lapses and yields RunStatus::timeout.
 */
struct RunControl
{
    const std::atomic<bool>* cancel = nullptr;
    std::atomic<bool> expired{false};
};

/** Everything measured during one run (energy model input). */
struct RunStats
{
    /** How the run ended (completed unless RunControl / the cycle
     *  watchdogs stopped it early; see RunStatus). */
    RunStatus status = RunStatus::completed;
    /** One-line diagnostic for a non-completed status ("" otherwise),
     *  e.g. the deadlock watchdog's pending-work counters. */
    std::string statusDetail;

    Cycle cycles = 0;             //!< total runtime incl. idle detect
    std::uint32_t epochs = 1;     //!< barrier mode: epochs executed
    std::uint64_t invocations = 0;
    std::vector<std::uint64_t> invocationsPerTask;

    std::uint64_t puBusyCycles = 0; //!< sum over tiles
    std::uint64_t puOps = 0;        //!< ALU/control ops, all tiles
    std::uint64_t sramReads = 0;    //!< PU scratchpad word reads
    std::uint64_t sramWrites = 0;   //!< PU scratchpad word writes
    std::uint64_t tsuReads = 0;     //!< TSU queue-port word reads
    std::uint64_t tsuWrites = 0;    //!< TSU queue-port word writes
    std::uint64_t localBypassMsgs = 0; //!< OQ->IQ same-tile deliveries
    std::uint64_t edgesProcessed = 0;  //!< app-counted edge visits

    NocStats noc;

    /**
     * Simulator execution metrics (scan-occupancy instrumentation).
     * These measure the engine's own work — cycle-loop iterations
     * actually stepped (fast-forward skips the rest), tile/router
     * visits performed, and the visits the active-set scan avoided
     * relative to a full scan. They are *not* architectural: they
     * differ between EngineScan modes by design and are normalized
     * out of the determinism contract (see determinism_test), like
     * engineThreads.
     */
    Cycle engineSteppedCycles = 0;   //!< cycle-loop iterations run
    Cycle nocSteppedCycles = 0;      //!< iterations with NoC traffic
    std::uint64_t tileScans = 0;     //!< tile visits, all tile phases
    std::uint64_t routerScans = 0;   //!< router visits, all NoC phases
    /** Tile visits a full scan would have done but the active-set
     *  scan skipped (0 under EngineScan::full). */
    std::uint64_t activeTileCyclesSaved = 0;
    /** Same for router visits in the NoC compute phases. */
    std::uint64_t activeRouterCyclesSaved = 0;
    /** Shard-boundary re-splits performed by the rebalancer (0 when
     *  engineRebalance is off or the load stayed balanced). */
    std::uint64_t engineRebalances = 0;
    /** Fraction of the full tile scan actually performed in [0, 1]. */
    double tileScanOccupancy() const;
    /** Fraction of the full router scan actually performed. */
    double routerScanOccupancy() const;

    std::uint64_t scratchpadBytesTotal = 0;
    std::uint64_t scratchpadBytesMax = 0; //!< largest tile footprint

    /** Per-tile PU busy cycles (Fig. 10 heatmap). */
    std::vector<Cycle> puBusyPerTile;
    /** Per-tile router active cycles (Fig. 10 heatmap). */
    std::vector<Cycle> routerActivePerTile;

    /** Mean PU utilization in [0, 1]. */
    double utilization() const;
    /** All scratchpad word accesses (memory-bandwidth numerator). */
    std::uint64_t
    memAccesses() const
    {
        return sramReads + sramWrites + tsuReads + tsuWrites;
    }
};

/**
 * Execution context handed to a task body. All scratchpad traffic and
 * ALU work the task performs must be charged through it; the PU stays
 * busy for the accumulated cycle count.
 */
/**
 * One engine shard: a contiguous tile range plus everything its
 * worker accumulates during a cycle. Deltas and the progress flag are
 * merged (and reset) serially after the tile phase; the stat counters
 * accumulate across the whole run and fold into RunStats at the end.
 * Cache-line aligned so concurrent shard workers never false-share.
 */
struct alignas(64) ShardCtx
{
    std::uint32_t index = 0; //!< shard id (network stat routing)
    TileId beginTile = 0;
    TileId endTile = 0;

    // Per-cycle deltas against the engine's global counters.
    std::int64_t pendingIqDelta = 0;
    std::int64_t pendingCqDelta = 0;
    bool progressed = false;

    // Per-cycle idle/fast-forward aggregates over the shard's tiles,
    // refreshed by each tile phase: the busiest PU (drain tail) and
    // the earliest future event (exactness-preserving fast-forward).
    Cycle maxBusyUntil = 0;
    Cycle nextEvent = ~Cycle(0);

    /**
     * Active-tile worklist (EngineScan::active), kept as an intrusive
     * bitmap over the shard's tile range (bit t - beginTile).
     * Invariant between phases: every non-quiet tile of the shard —
     * busy PU, pending IQ entries or pending CQ entries — has its
     * bit set. Bits are set at the points where activity is created
     * (deliveries, seeds, host charges; O(1), idempotent) and
     * cleared by the removal sweep inside the tile phase once a tile
     * is quiet. A bitmap instead of an index list keeps the
     * iteration in ascending tile order — the same prefetch-friendly
     * memory walk as the full scan, minus the quiet tiles.
     */
    std::vector<std::uint64_t> activeMask;
    /** Tile visits this shard performed (whole-run accumulator). */
    std::uint64_t tileScans = 0;

    // Whole-run stat accumulators (merged in shard order at the end).
    std::uint64_t tsuReads = 0;
    std::uint64_t tsuWrites = 0;
    std::uint64_t localBypassMsgs = 0;
    std::uint64_t edgesProcessed = 0;
};

class TaskCtx
{
  public:
    TaskCtx(Machine& machine, Tile& tile, std::uint32_t task,
            ShardCtx& shard);

    /** Pre-loaded parameter i (preload tasks only). */
    Word
    param(unsigned i) const
    {
        return params_[i];
    }

    /** Peek the head entry of this task's IQ without popping (T1). */
    const Word* peek() const;
    /** Pop the head entry of this task's IQ (T1 once done). */
    void pop();

    /** Free message slots in a channel queue (T1's !CQ1.full). */
    std::uint32_t cqFree(ChannelId channel) const;

    /**
     * Emit a message on `channel`: the head flit is the *global* index
     * into the channel's distributed array (the head encoder derives
     * destination tile + local index), `rest` are the remaining
     * parameter flits. The channel queue must have space — TSU
     * guarantee or a prior cqFree() check. Charges one store per flit.
     */
    void send(ChannelId channel, Word index,
              std::initializer_list<Word> rest);

    /** Free entries in a local task's IQ (T4's !IQ1.full). */
    std::uint32_t iqFree(TaskId task) const;

    /** Enqueue into a same-tile task's IQ (T3 -> IQ4, T4 -> IQ1). */
    void enqueueLocal(TaskId task, std::initializer_list<Word> words);

    /** Charge ALU/control operations (1 cycle each). */
    void
    charge(std::uint32_t ops)
    {
        ops_ += ops;
    }

    /** Charge scratchpad word reads (1 cycle each). */
    void
    read(std::uint32_t n = 1)
    {
        reads_ += n;
    }

    /** Charge scratchpad word writes (1 cycle each). */
    void
    write(std::uint32_t n = 1)
    {
        writes_ += n;
    }

    /** Count app-level edge visits (throughput metric of Fig. 7). */
    void countEdges(std::uint64_t n);

    /** Total cycles accumulated so far. */
    std::uint32_t
    cyclesCharged() const
    {
        return ops_ + reads_ + writes_;
    }

    std::uint32_t opsCharged() const { return ops_; }
    std::uint32_t readsCharged() const { return reads_; }
    std::uint32_t writesCharged() const { return writes_; }

    /** Queue pushes/pops performed (watchdog progress signal). */
    std::uint32_t mutations() const { return mutations_; }

  private:
    friend class Machine;

    Machine& machine_;
    Tile& tile_;
    std::uint32_t task_;
    ShardCtx& shard_;
    const Word* params_ = nullptr;
    std::uint32_t ops_ = 0;
    std::uint32_t reads_ = 0;
    std::uint32_t writes_ = 0;
    std::uint32_t mutations_ = 0;
};

/**
 * Recyclable engine allocations, for callers that run many machines
 * back to back (the sweep library, `dalorex serve`). A Machine built
 * with one adopts the vectors as its queue arenas and returns them on
 * destruction, so successive runs reuse the grown capacity instead of
 * re-faulting fresh pages. Purely an allocation-reuse contract:
 * finalizeQueues() value-(re)initializes every element it uses, so
 * results are byte-identical with or without recycling.
 */
struct EngineArenas
{
    std::vector<Word> iq;
    std::vector<Message> cq;
};

/** The simulated Dalorex chip. */
class Machine
{
  public:
    /**
     * @param config       Machine shape and policy knobs.
     * @param num_vertices Dataset vertex count (partitioning).
     * @param num_edges    Dataset edge count (partitioning).
     * @param recycle      Optional arena pool to adopt and, on
     *                     destruction, return (see EngineArenas).
     */
    Machine(const MachineConfig& config, VertexId num_vertices,
            EdgeId num_edges, EngineArenas* recycle = nullptr);
    ~Machine();

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    // --- registration (App::configure) ----------------------------
    /** Register a task; returns its TaskId (registration order). */
    TaskId addTask(TaskDef def);
    /** Register a channel; returns its ChannelId. */
    ChannelId addChannel(ChannelDef def);
    /** Install per-tile app state. */
    void setTileState(TileId tile,
                      std::unique_ptr<AppTileState> state);
    /** Account `words` of scratchpad data on a tile. */
    void addDataWords(TileId tile, std::uint64_t words);

    // --- host operations (seeding / epoch control) ----------------
    /** Host-side push into a tile's IQ (program load; not charged). */
    void seed(TileId tile, TaskId task,
              std::initializer_list<Word> words);
    /** Charge host-triggered per-tile work (epoch bitmap scans). */
    void hostCharge(TileId tile, std::uint32_t ops, std::uint32_t reads,
                    std::uint32_t writes);

    // --- run -------------------------------------------------------
    /** Execute the app to completion; callable once per Machine. */
    RunStats run(App& app);
    /**
     * Same, under cooperative control: `control` (may be nullptr) is
     * polled in the per-cycle serial section, so cancellation or a
     * watchdog-expired deadline unwinds the run at a cycle boundary
     * with RunStats::status reporting why (see RunControl).
     */
    RunStats run(App& app, const RunControl* control);

#if DALOREX_OWNERSHIP_CHECKS
    /**
     * Test-only: perform a deliberate cross-shard write under a
     * parallel-phase claim so ownership_test can prove the checker
     * fires (panics). Never reached by real execution paths.
     */
    void debugInjectOwnershipViolation();
#endif

    // --- accessors ---------------------------------------------------
    const MachineConfig& config() const { return config_; }
    const Partition& partition() const { return partition_; }
    std::uint32_t numTiles() const { return config_.numTiles(); }
    Tile& tile(TileId t) { return tiles_[t]; }
    const Tile& tileRef(TileId t) const { return tiles_[t]; }

    /** App state of a tile, downcast to the app's type. */
    template <typename StateT>
    StateT&
    state(TileId t)
    {
        return static_cast<StateT&>(*tiles_[t].state);
    }

    /** App state of the tile a TaskCtx runs on. */
    template <typename StateT>
    StateT&
    state(const Tile& tile)
    {
        return static_cast<StateT&>(*tiles_[tile.id].state);
    }

    const std::vector<TaskDef>& taskDefs() const { return taskDefs_; }
    const std::vector<ChannelDef>&
    channelDefs() const
    {
        return channelDefs_;
    }

  private:
    friend class TaskCtx;

    /** Deliver a network message into its target task's IQ. */
    bool deliver(const Message& msg);
    /** Move at most one CQ message into the network / local IQ. */
    void injectFromCqs(Tile& tile, Cycle now, ShardCtx& shard);
    /** Let the TSU invoke one task if the PU is idle. */
    void stepPu(Tile& tile, Cycle now, ShardCtx& shard);
    /** Size all queues after registration (arena-pooled storage). */
    void finalizeQueues();
    /** Partition tiles into `shards` contiguous ranges. */
    void buildShards(unsigned shards);
    /**
     * Queue a tile on its shard's active worklist (no-op when already
     * a member). Called wherever activity is created: deliveries,
     * host seeds/charges and the initial post-start sweep. Only the
     * owning shard's worker (or a serial section) may call this.
     */
    void activateTile(TileId t);
    /** Step one tile (inject + PU) and fold its idle/fast-forward
     *  contribution into the shard aggregates. */
    void stepTile(Tile& tile, Cycle now, ShardCtx& shard);
    /** Advance one shard's tiles one cycle (inject + PU step) and
     *  refresh its idle/fast-forward aggregates. Walks the full tile
     *  range or the active worklist per MachineConfig::engineScan. */
    void tilePhase(unsigned shard_index, Cycle now);
    /**
     * Rebalancer (serial section only, engineRebalance on): every
     * window of stepped cycles, measure each shard's active-tile
     * population from the tile ground truth; after sustained
     * imbalance, re-split the contiguous tile ranges by active-tile
     * weight. Inputs are deterministic engine state, so a (scenario,
     * engineThreads) pair always rebalances at the same cycles to
     * the same boundaries.
     */
    void maybeRebalance();
    /** Move the shard boundaries to `bounds` (same shard count),
     *  preserving whole-run accumulators and rebuilding the tile
     *  worklists from the quiet-state ground truth. */
    void reshard(const std::vector<TileId>& bounds);
    /** Global idle check (exact outstanding-work counters). */
    bool
    allIdle() const
    {
        return pendingIq_ == 0 && pendingCq_ == 0 &&
               network_ && network_->quiescent();
    }

    MachineConfig config_;
    Partition partition_;
    std::vector<TaskDef> taskDefs_;
    std::vector<ChannelDef> channelDefs_;
    std::vector<Tile> tiles_;
    std::unique_ptr<Network> network_;

    // Pooled backing storage of every tile queue (finalizeQueues).
    std::vector<Word> iqArena_;
    std::vector<Message> cqArena_;
    EngineArenas* recycle_ = nullptr; //!< arena pool to return to

    // Execution shards: contiguous tile ranges plus per-shard
    // accumulators; tileShard_ maps tile -> owning shard.
    std::vector<ShardCtx> shards_;
    std::vector<std::uint32_t> tileShard_;

    bool finalized_ = false;
    bool ran_ = false;
    Cycle now_ = 0;

    // Exact outstanding-work accounting for idle detection.
    std::uint64_t pendingIq_ = 0;
    std::uint64_t pendingCq_ = 0;
    Cycle lastProgress_ = 0;

    // Rebalancer state (serial section only).
    Cycle rebalanceTick_ = 0;
    unsigned imbalanceStreak_ = 0;
    /** Scratch prefix-weight buffer reused across windows. */
    std::vector<std::uint64_t> rebalancePrefix_;

    RunStats stats_;
};

} // namespace dalorex

#endif // DALOREX_SIM_MACHINE_HH
