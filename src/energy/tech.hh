/**
 * @file
 * 7nm technology parameters of the paper's power and area model
 * (Sec. IV-A). Each constant cites the paper's source:
 *
 *  - SRAM: 29.2 Mb/mm^2 density, 5.8 pJ read / 9.1 pJ write per bank
 *    access, 16.9 uW leakage per 32 KB macro, 0.82 ns access (hence
 *    the 1 GHz clock) — Yokoyama et al. [65].
 *  - NoC: 8 pJ to move a 32-bit flit one millimeter — McKeown et al.
 *    [41]; router traversal energy "similar to an ALU operation";
 *    area ratios from Ou et al. [48] ("a 32-bit 2D torus is 50% bigger
 *    than a 2D mesh").
 *  - PU: single-issue in-order core in the Celerity/Snitch/Ariane
 *    class [15][68][70], energy from the Ariane 22nm reports [67]
 *    scaled to 7nm with Stillmaker/Xie ratios [58][64].
 *  - DRAM/HMC (Tesseract baseline): access energy roughly an order of
 *    magnitude above SRAM plus dominant background/refresh power —
 *    Micron power calculator [62], Pugsley et al. [52]; the paper
 *    notes "the energy of refreshing DRAM has the biggest impact on
 *    Tesseract".
 */

#ifndef DALOREX_ENERGY_TECH_HH
#define DALOREX_ENERGY_TECH_HH

namespace dalorex
{

/** Technology constants; defaults model 7nm at 1 GHz. */
struct TechParams
{
    // --- clock -----------------------------------------------------
    double freqHz = 1.0e9;

    // --- SRAM scratchpad [65] ---------------------------------------
    double sramReadPj = 5.8;
    double sramWritePj = 9.1;
    double sramLeakWPer32kb = 16.9e-6;
    double sramMbPerMm2 = 29.2; //!< megabits per mm^2

    // --- processing unit [67][58][64] -------------------------------
    double puDynPjPerOp = 5.0;  //!< per retired instruction
    double puLeakW = 1.0e-4;    //!< leakage per PU
    double puAreaMm2 = 0.04;    //!< slim in-order core
    double tsuPjPerInvocation = 2.0; //!< task table + queue pointers

    // --- network [41][48] --------------------------------------------
    double wirePjPerFlitMm = 8.0;
    double routerPjPerFlit = 1.0; //!< "similar to an ALU operation"
    double meshRouterAreaMm2 = 0.004;  //!< ~0.3% of a 4MB tile
    double torusRouterAreaMm2 = 0.006; //!< mesh x 1.5 [48]
    double rucheExtraAreaMm2 = 0.008;  //!< torus-ruche ~ 2x torus

    // --- DRAM / HMC for the Tesseract baseline [62][52][2] ----------
    /** HMC energy ~14.5 pJ/bit => ~465 pJ per 32-bit word. */
    double dramAccessPjPerWord = 465.0;
    /**
     * Refresh + standby of the *used* DRAM banks and vault logic per
     * cube; unused bitlines are switched off (Sec. V-A), yet "the
     * energy of refreshing DRAM has the biggest impact on Tesseract".
     */
    double dramBackgroundWPerCube = 0.25;
    double serdesPjPerWord = 35.0;      //!< inter-cube link traversal
    double cacheReadPj = 8.0;  //!< Tesseract-LC 2MB cache access
    double cacheWritePj = 12.0;
    /** Leakage of one core's 2MB Tesseract-LC cache (64 macros). */
    double cacheLeakWPerCore = 1.1e-3;
};

} // namespace dalorex

#endif // DALOREX_ENERGY_TECH_HH
