/**
 * @file
 * Energy and area accounting for Dalorex runs.
 *
 * Energy splits into the three Fig. 9 components:
 *  - logic:   PU dynamic (per op) + PU leakage + TSU invocations;
 *  - memory:  SRAM dynamic (per word access) + SRAM leakage over the
 *             provisioned scratchpad capacity;
 *  - network: wire energy (flit-hops x physical hop length) + router
 *             traversal energy.
 *
 * The tile's physical side length — which sets NoC wire lengths — comes
 * from the area model: scratchpad SRAM density plus PU and router area
 * (Sec. V-A reports 305 mm^2 for 16x16 tiles of 4.2 MB).
 */

#ifndef DALOREX_ENERGY_MODEL_HH
#define DALOREX_ENERGY_MODEL_HH

#include "energy/tech.hh"
#include "sim/machine.hh"

namespace dalorex
{

/** Joules per Fig. 9 component. */
struct EnergyBreakdown
{
    double logicJ = 0.0;
    double memoryJ = 0.0;
    double networkJ = 0.0;

    double totalJ() const { return logicJ + memoryJ + networkJ; }

    /** Component shares in percent (Fig. 9 bars). */
    double logicPct() const;
    double memoryPct() const;
    double networkPct() const;
};

/** Physical geometry of one tile. */
struct TileGeometry
{
    double sramMm2 = 0.0;
    double puMm2 = 0.0;
    double routerMm2 = 0.0;
    double totalMm2 = 0.0;
    double sideMm = 0.0; //!< sqrt(total): NoC hop unit length
};

/** Area of a tile provisioned with `scratchpad_bytes` of SRAM. */
TileGeometry tileGeometry(std::uint64_t scratchpad_bytes,
                          NocTopology topology,
                          const TechParams& tech = {});

/** Chip area of a full machine (tiles x tile area). */
double chipAreaMm2(const MachineConfig& config,
                   std::uint64_t scratchpad_bytes_per_tile,
                   const TechParams& tech = {});

/** Energy of one Dalorex run from its measured activity. */
EnergyBreakdown dalorexEnergy(const RunStats& stats,
                              const MachineConfig& config,
                              const TechParams& tech = {});

/** Wall-clock seconds of a run at the modeled frequency. */
double runSeconds(const RunStats& stats, const TechParams& tech = {});

/** Average utilized memory bandwidth in bytes/s (Fig. 7). */
double avgMemoryBandwidth(const RunStats& stats,
                          const TechParams& tech = {});

} // namespace dalorex

#endif // DALOREX_ENERGY_MODEL_HH
