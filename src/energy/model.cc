#include "energy/model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dalorex
{

namespace
{

double
pct(double part, double total)
{
    return total <= 0.0 ? 0.0 : 100.0 * part / total;
}

} // namespace

double
EnergyBreakdown::logicPct() const
{
    return pct(logicJ, totalJ());
}

double
EnergyBreakdown::memoryPct() const
{
    return pct(memoryJ, totalJ());
}

double
EnergyBreakdown::networkPct() const
{
    return pct(networkJ, totalJ());
}

TileGeometry
tileGeometry(std::uint64_t scratchpad_bytes, NocTopology topology,
             const TechParams& tech)
{
    TileGeometry geo;
    const double megabits =
        static_cast<double>(scratchpad_bytes) * 8.0 / 1.0e6;
    geo.sramMm2 = megabits / tech.sramMbPerMm2;
    geo.puMm2 = tech.puAreaMm2;
    switch (topology) {
      case NocTopology::mesh:
        geo.routerMm2 = tech.meshRouterAreaMm2;
        break;
      case NocTopology::torus:
        geo.routerMm2 = tech.torusRouterAreaMm2;
        break;
      case NocTopology::torusRuche:
        geo.routerMm2 =
            tech.torusRouterAreaMm2 + tech.rucheExtraAreaMm2;
        break;
    }
    geo.totalMm2 = geo.sramMm2 + geo.puMm2 + geo.routerMm2;
    geo.sideMm = std::sqrt(geo.totalMm2);
    return geo;
}

double
chipAreaMm2(const MachineConfig& config,
            std::uint64_t scratchpad_bytes_per_tile,
            const TechParams& tech)
{
    const TileGeometry geo = tileGeometry(scratchpad_bytes_per_tile,
                                          config.topology, tech);
    return geo.totalMm2 * config.numTiles();
}

double
runSeconds(const RunStats& stats, const TechParams& tech)
{
    return static_cast<double>(stats.cycles) / tech.freqHz;
}

double
avgMemoryBandwidth(const RunStats& stats, const TechParams& tech)
{
    const double seconds = runSeconds(stats, tech);
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(stats.memAccesses()) * wordBytes /
           seconds;
}

EnergyBreakdown
dalorexEnergy(const RunStats& stats, const MachineConfig& config,
              const TechParams& tech)
{
    panic_if(stats.cycles == 0, "energy of an empty run");
    const double seconds = runSeconds(stats, tech);
    const double pj = 1.0e-12;

    EnergyBreakdown e;

    // --- logic -------------------------------------------------------
    const double pu_dynamic =
        static_cast<double>(stats.puOps) * tech.puDynPjPerOp * pj;
    const double tsu_dynamic = static_cast<double>(stats.invocations) *
                               tech.tsuPjPerInvocation * pj;
    const double pu_leak =
        tech.puLeakW * config.numTiles() * seconds;
    e.logicJ = pu_dynamic + tsu_dynamic + pu_leak;

    // --- memory ------------------------------------------------------
    // Leakage follows the *provisioned* capacity: a fabricated tile
    // leaks over its whole scratchpad even if the dataset chunk is
    // smaller (Fig. 5 provisions 4.2MB tiles; Fig. 6 sizes tiles to
    // fit, config.scratchpadProvisionBytes == 0).
    const std::uint64_t reads = stats.sramReads + stats.tsuReads;
    const std::uint64_t writes = stats.sramWrites + stats.tsuWrites;
    const double sram_dynamic =
        (static_cast<double>(reads) * tech.sramReadPj +
         static_cast<double>(writes) * tech.sramWritePj) *
        pj;
    const std::uint64_t provisioned_total =
        std::max(stats.scratchpadBytesTotal,
                 config.scratchpadProvisionBytes * config.numTiles());
    const double macros32k =
        static_cast<double>(provisioned_total) / (32.0 * 1024);
    const double sram_leak =
        macros32k * tech.sramLeakWPer32kb * seconds;
    e.memoryJ = sram_dynamic + sram_leak;

    // --- network -----------------------------------------------------
    // Wire energy uses the physical hop lengths accumulated by the NoC
    // (tile-side units: 1 mesh, 2 folded torus, R ruche) scaled by the
    // tile side length from the area model.
    const std::uint64_t per_tile_bytes =
        config.numTiles() == 0
            ? 0
            : provisioned_total / config.numTiles();
    const TileGeometry geo =
        tileGeometry(per_tile_bytes, config.topology, tech);
    const double wire =
        static_cast<double>(stats.noc.flitWireTiles) * geo.sideMm *
        tech.wirePjPerFlitMm * pj;
    const double router = static_cast<double>(stats.noc.routerPassages) *
                          tech.routerPjPerFlit * pj;
    e.networkJ = wire + router;

    return e;
}

} // namespace dalorex
