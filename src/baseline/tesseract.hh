/**
 * @file
 * Tesseract baseline: HMC-based processing-in-memory graph system
 * (Ahn et al. [2]), modeled at epoch granularity as the Fig. 5
 * comparison point.
 *
 * Architecture modeled per the paper's Sec. IV-B configuration: 16
 * Hybrid Memory Cubes x 16 vaults, one in-order core per vault (256
 * cores total). Data is distributed vertex-based: each core owns a
 * contiguous vertex block plus its adjacency rows in its local DRAM
 * vault — the placement whose load imbalance Dalorex's chunking fixes.
 * Remote vertex updates are non-blocking remote function calls that
 * *interrupt* the receiving core, "incurring 50-cycle penalties"
 * (Sec. II-C). Every epoch ends with a global barrier.
 *
 * Timing model (documented substitution for the authors' Zsim setup,
 * DESIGN.md Sec. 3): per epoch, each core's cycles are the sum of its
 * compute phase (vertex reads + edge streaming + message issue) and
 * its apply phase (interrupt + DRAM read-modify-write per received
 * call); inter-cube traffic serializes over the cube's SerDes links;
 * the epoch takes the maximum core time plus communication and barrier
 * costs. The Tesseract-LC variant gives each core an SRAM-speed 2MB
 * cache and removes DRAM background power (Fig. 5's Tesseract-LC bar).
 */

#ifndef DALOREX_BASELINE_TESSERACT_HH
#define DALOREX_BASELINE_TESSERACT_HH

#include <cstdint>
#include <vector>

#include "apps/kernels.hh"
#include "energy/tech.hh"
#include "graph/csr.hh"

namespace dalorex
{
namespace baseline
{

/** Tesseract machine configuration (defaults: the paper's setup). */
struct TesseractConfig
{
    std::uint32_t numCubes = 16;
    std::uint32_t vaultsPerCube = 16; //!< one core per vault
    /** Remote-call receive penalty (Sec. II-C: 50 cycles). */
    std::uint32_t interruptCycles = 50;
    /** Large-cache variant (Fig. 5 "Tesseract-LC"). */
    bool largeCache = false;

    // DRAM vault timing (cycles at 1 GHz) as seen by the blocking
    // in-order vault core. Random touches pay activate + precharge +
    // bus turnaround on a vault contended by incoming remote calls.
    std::uint32_t dramVertexReadCycles = 80; //!< random row touch
    std::uint32_t dramEdgeStreamCycles = 2;  //!< sequential stream
    std::uint32_t dramRmwCycles = 100;       //!< read-modify-write
    // Tesseract-LC timing (SRAM-cache speed).
    std::uint32_t cacheVertexReadCycles = 2;
    std::uint32_t cacheEdgeStreamCycles = 1;
    std::uint32_t cacheRmwCycles = 4;

    /** Remote-call message size in 32-bit words (addr + arg + fn). */
    std::uint32_t wordsPerCall = 3;
    /** Aggregate inter-cube SerDes bandwidth per cube (words/cycle). */
    double serdesWordsPerCycle = 4.0;
    /** Per-epoch barrier cost (cycles). */
    std::uint32_t barrierCycles = 128;

    std::uint32_t numCores() const { return numCubes * vaultsPerCube; }
};

/** Energy-relevant activity plus timing of one Tesseract run. */
struct TesseractResult
{
    Cycle cycles = 0;
    std::uint32_t epochs = 0;

    std::uint64_t dramAccesses = 0;  //!< word-granularity touches
    std::uint64_t cacheAccesses = 0; //!< LC variant accesses
    std::uint64_t serdesWords = 0;   //!< words crossing cube links
    std::uint64_t intraCubeWords = 0;
    std::uint64_t coreOps = 0;       //!< retired instructions
    std::uint64_t remoteCalls = 0;
    std::uint64_t edgesProcessed = 0;

    /** Kernel output for validation (BFS/SSSP/WCC/SPMV). */
    std::vector<Word> values;
    /** PageRank output for validation. */
    std::vector<double> floatValues;

    /** Per-core busy cycles (load-imbalance analysis). */
    std::vector<Cycle> coreBusyCycles;

    double energyJ(const TesseractConfig& config,
                   const TechParams& tech = {}) const;
};

/** Run one kernel setup on the Tesseract model. */
TesseractResult runTesseract(const KernelSetup& setup,
                             const TesseractConfig& config = {});

} // namespace baseline
} // namespace dalorex

#endif // DALOREX_BASELINE_TESSERACT_HH
