#include "baseline/tesseract.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace dalorex
{
namespace baseline
{

namespace
{

/** Contiguous vertex-block ownership (Tesseract's distribution). */
struct VertexBlocks
{
    std::uint32_t chunk;

    VertexBlocks(VertexId num_vertices, std::uint32_t cores)
        : chunk(static_cast<std::uint32_t>(
              divCeil(num_vertices, cores)))
    {
    }

    std::uint32_t owner(VertexId v) const { return v / chunk; }
};

/** One buffered remote function call. */
struct RemoteCall
{
    VertexId dst;
    Word arg;
};

/** Shared per-epoch accounting helpers. */
class EpochRunner
{
  public:
    EpochRunner(const Csr& graph, const TesseractConfig& config,
                TesseractResult& result)
        : graph_(graph), config_(config), result_(result),
          blocks_(graph.numVertices, config.numCores()),
          compute_(config.numCores(), 0),
          apply_(config.numCores(), 0),
          cubeOut_(config.numCubes, 0), cubeIn_(config.numCubes, 0)
    {
        result_.coreBusyCycles.assign(config.numCores(), 0);
    }

    std::uint32_t
    cubeOf(std::uint32_t core) const
    {
        return core / config_.vaultsPerCube;
    }

    void
    beginEpoch()
    {
        std::fill(compute_.begin(), compute_.end(), 0);
        std::fill(apply_.begin(), apply_.end(), 0);
        std::fill(cubeOut_.begin(), cubeOut_.end(), 0);
        std::fill(cubeIn_.begin(), cubeIn_.end(), 0);
        calls_.clear();
    }

    /**
     * Charge the compute phase of one active vertex and buffer one
     * remote call per out-edge carrying `args[i]`.
     */
    void
    processVertex(VertexId v, const std::vector<Word>& args)
    {
        const std::uint32_t core = blocks_.owner(v);
        const EdgeId begin = graph_.rowPtr[v];
        const EdgeId end = graph_.rowPtr[v + 1];
        const auto deg = static_cast<std::uint32_t>(end - begin);

        const bool lc = config_.largeCache;
        const std::uint32_t vertex_read =
            lc ? config_.cacheVertexReadCycles
               : config_.dramVertexReadCycles;
        const std::uint32_t edge_stream =
            lc ? config_.cacheEdgeStreamCycles
               : config_.dramEdgeStreamCycles;

        // Per edge: stream the (dst, weight) pair plus ~8 cycles of
        // remote-call marshalling on the in-order core (argument
        // packing, address translation, message enqueue).
        compute_[core] += vertex_read +
                          std::uint64_t(deg) * (edge_stream + 8);
        countMem(2 + std::uint64_t(deg) * 2);
        result_.coreOps += 4 + std::uint64_t(deg) * 8;
        result_.edgesProcessed += deg;

        for (EdgeId i = begin; i < end; ++i) {
            const VertexId dst = graph_.colIdx[i];
            calls_.push_back({dst, args[i - begin]});
            ++result_.remoteCalls;
            const std::uint32_t dst_core = blocks_.owner(dst);
            if (cubeOf(core) != cubeOf(dst_core)) {
                result_.serdesWords += config_.wordsPerCall;
                cubeOut_[cubeOf(core)] += config_.wordsPerCall;
                cubeIn_[cubeOf(dst_core)] += config_.wordsPerCall;
            } else {
                result_.intraCubeWords += config_.wordsPerCall;
            }
        }
    }

    /** Charge the apply phase of one received remote call. */
    void
    chargeApply(VertexId dst)
    {
        const std::uint32_t core = blocks_.owner(dst);
        const std::uint32_t rmw = config_.largeCache
                                      ? config_.cacheRmwCycles
                                      : config_.dramRmwCycles;
        apply_[core] += config_.interruptCycles + rmw + 3;
        countMem(2);
        result_.coreOps += 3;
    }

    /** Close the epoch: max core time + link serialization + barrier. */
    void
    endEpoch()
    {
        Cycle worst = 0;
        for (std::uint32_t c = 0; c < compute_.size(); ++c) {
            const Cycle busy = compute_[c] + apply_[c];
            result_.coreBusyCycles[c] += busy;
            worst = std::max(worst, busy);
        }
        Cycle link = 0;
        for (std::uint32_t q = 0; q < config_.numCubes; ++q) {
            const auto words =
                std::max(cubeOut_[q], cubeIn_[q]);
            link = std::max(
                link, static_cast<Cycle>(
                          static_cast<double>(words) /
                          config_.serdesWordsPerCycle));
        }
        result_.cycles += worst + link + config_.barrierCycles;
        ++result_.epochs;
    }

    std::vector<RemoteCall>& calls() { return calls_; }

  private:
    void
    countMem(std::uint64_t words)
    {
        if (config_.largeCache)
            result_.cacheAccesses += words;
        else
            result_.dramAccesses += words;
    }

    const Csr& graph_;
    const TesseractConfig& config_;
    TesseractResult& result_;
    VertexBlocks blocks_;
    std::vector<Cycle> compute_;
    std::vector<Cycle> apply_;
    std::vector<std::uint64_t> cubeOut_;
    std::vector<std::uint64_t> cubeIn_;
    std::vector<RemoteCall> calls_;
};

/** BFS/SSSP/WCC: min-update propagation in BSP epochs. */
TesseractResult
runMinUpdate(const KernelSetup& setup, const TesseractConfig& config)
{
    const Csr& graph = setup.graph;
    TesseractResult result;
    EpochRunner runner(graph, config, result);

    const TesseractModel model = setup.kernel->traits.tesseract;
    result.values.assign(graph.numVertices, infDist);
    std::vector<VertexId> frontier;
    if (model == TesseractModel::wcc) {
        for (VertexId v = 0; v < graph.numVertices; ++v)
            result.values[v] = v;
        frontier.resize(graph.numVertices);
        for (VertexId v = 0; v < graph.numVertices; ++v)
            frontier[v] = v;
    } else {
        result.values[setup.root] = 0;
        frontier.push_back(setup.root);
    }

    std::vector<Word> args;
    std::vector<std::uint8_t> updated(graph.numVertices, 0);
    while (!frontier.empty()) {
        runner.beginEpoch();
        for (const VertexId v : frontier) {
            const EdgeId begin = graph.rowPtr[v];
            const EdgeId end = graph.rowPtr[v + 1];
            args.clear();
            for (EdgeId i = begin; i < end; ++i) {
                switch (model) {
                  case TesseractModel::bfs:
                    args.push_back(result.values[v] + 1);
                    break;
                  case TesseractModel::sssp:
                    args.push_back(result.values[v] +
                                   graph.weights[i]);
                    break;
                  default: // WCC forwards the label
                    args.push_back(result.values[v]);
                    break;
                }
            }
            runner.processVertex(v, args);
        }
        std::vector<VertexId> next;
        for (const RemoteCall& call : runner.calls()) {
            runner.chargeApply(call.dst);
            if (call.arg < result.values[call.dst]) {
                result.values[call.dst] = call.arg;
                if (!updated[call.dst]) {
                    updated[call.dst] = 1;
                    next.push_back(call.dst);
                }
            }
        }
        for (const VertexId v : next)
            updated[v] = 0;
        std::sort(next.begin(), next.end());
        frontier = std::move(next);
        runner.endEpoch();
    }
    return result;
}

/** PageRank: every vertex active each of `iterations` epochs. */
TesseractResult
runPageRank(const KernelSetup& setup, const TesseractConfig& config)
{
    const Csr& graph = setup.graph;
    TesseractResult result;
    EpochRunner runner(graph, config, result);

    const auto n = static_cast<double>(graph.numVertices);
    std::vector<double> rank(graph.numVertices, 1.0 / n);
    std::vector<double> acc(graph.numVertices, 0.0);
    std::vector<Word> args;

    for (unsigned iter = 0; iter < setup.iterations; ++iter) {
        runner.beginEpoch();
        std::fill(acc.begin(), acc.end(), 0.0);
        for (VertexId v = 0; v < graph.numVertices; ++v) {
            const EdgeId deg = graph.degree(v);
            if (deg == 0)
                continue;
            const auto contrib = static_cast<float>(
                rank[v] / static_cast<double>(deg));
            args.assign(deg, std::bit_cast<Word>(contrib));
            runner.processVertex(v, args);
        }
        for (const RemoteCall& call : runner.calls()) {
            runner.chargeApply(call.dst);
            acc[call.dst] += static_cast<double>(
                std::bit_cast<float>(call.arg));
        }
        for (VertexId v = 0; v < graph.numVertices; ++v)
            rank[v] = (1.0 - setup.damping) / n +
                      setup.damping * acc[v];
        // Rank epilogue (2 accesses + few ops per vertex per core).
        result.coreOps += graph.numVertices * 4ull;
        runner.endEpoch();
    }
    result.floatValues = std::move(rank);
    return result;
}

/** SPMV: one push epoch over all columns. */
TesseractResult
runSpmv(const KernelSetup& setup, const TesseractConfig& config)
{
    const Csr& graph = setup.graph;
    TesseractResult result;
    EpochRunner runner(graph, config, result);

    result.values.assign(graph.numVertices, 0);
    std::vector<Word> args;
    runner.beginEpoch();
    for (VertexId col = 0; col < graph.numVertices; ++col) {
        const EdgeId begin = graph.rowPtr[col];
        const EdgeId end = graph.rowPtr[col + 1];
        if (begin == end)
            continue;
        args.clear();
        for (EdgeId i = begin; i < end; ++i)
            args.push_back(graph.weights[i] * setup.x[col]);
        runner.processVertex(col, args);
    }
    for (const RemoteCall& call : runner.calls()) {
        runner.chargeApply(call.dst);
        result.values[call.dst] += call.arg;
    }
    runner.endEpoch();
    return result;
}

} // namespace

TesseractResult
runTesseract(const KernelSetup& setup, const TesseractConfig& config)
{
    fatal_if(config.numCores() == 0, "Tesseract needs cores");
    switch (setup.kernel->traits.tesseract) {
      case TesseractModel::bfs:
      case TesseractModel::sssp:
      case TesseractModel::wcc:
        return runMinUpdate(setup, config);
      case TesseractModel::pagerank:
        return runPageRank(setup, config);
      case TesseractModel::spmv:
        return runSpmv(setup, config);
      case TesseractModel::none:
        break;
    }
    fatal("kernel ", setup.kernel->name, " declares no Tesseract "
          "baseline model (traits.tesseract == none)");
}

double
TesseractResult::energyJ(const TesseractConfig& config,
                         const TechParams& tech) const
{
    const double pj = 1.0e-12;
    const double seconds =
        static_cast<double>(cycles) / tech.freqHz;

    // Memory: DRAM (or LC cache) dynamic plus DRAM background power;
    // the LC variant trades the DRAM background for cache leakage.
    double memory =
        static_cast<double>(dramAccesses) * tech.dramAccessPjPerWord *
            pj +
        static_cast<double>(cacheAccesses) *
            (tech.cacheReadPj + tech.cacheWritePj) * 0.5 * pj;
    if (config.largeCache) {
        memory +=
            tech.cacheLeakWPerCore * config.numCores() * seconds;
    } else {
        memory +=
            tech.dramBackgroundWPerCube * config.numCubes * seconds;
    }

    // Logic: core dynamic + leakage.
    const double logic =
        static_cast<double>(coreOps) * tech.puDynPjPerOp * pj +
        tech.puLeakW * config.numCores() * seconds;

    // Network: SerDes crossings + intra-cube crossbar.
    const double network =
        static_cast<double>(serdesWords) * tech.serdesPjPerWord * pj +
        static_cast<double>(intraCubeWords) * tech.routerPjPerFlit *
            pj;

    return memory + logic + network;
}

} // namespace baseline
} // namespace dalorex
