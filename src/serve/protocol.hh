/**
 * @file
 * The `dalorex serve` wire protocol: newline-delimited JSON both ways.
 *
 * Requests (one JSON object per line):
 *   {"type":"run","id":"r1","kernel":"bfs","dataset":"rmat10",
 *    "width":4,"height":4,...,"client":"alice","priority":1,
 *    "weight":2}                        -> accepted + result|error
 *   {"type":"stats","id":"s1"}          -> stats snapshot
 *   {"type":"shutdown","id":"q1"}       -> accepted; daemon drains
 *
 * Responses:
 *   {"type":"accepted","id":...,"queued":N}
 *   {"type":"result","id":...,"report":{...}}   (see below)
 *   {"type":"error","id":...,"error":"one line"}
 *   {"type":"stats","id":...,"stats":{...}}
 *
 * The `report` payload of a result is the *exact* cli::renderJson
 * output of the scenario — byte-identical to what a standalone
 * `dalorex --json` run of the same scenario prints — embedded
 * verbatim. extractResultPayload() recovers those bytes, so clients
 * (and CI) can diff serve-backed runs against standalone runs without
 * any re-serialization.
 *
 * Every scenario field mirrors one `dalorex` CLI flag and parses
 * through the same cli:: parsers, so the two front doors cannot
 * drift. Unknown fields are an error: a typoed knob must fail the
 * request, not silently run a default scenario.
 */

#ifndef DALOREX_SERVE_PROTOCOL_HH
#define DALOREX_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "cli/cli.hh"

namespace dalorex
{
namespace serve
{

/** Request line length cap: an oversized line is refused with an
 *  `error` response instead of being buffered without bound. */
constexpr std::size_t maxRequestBytes = 64 * 1024;

/** One parsed request. */
struct Request
{
    enum class Type
    {
        run,      //!< execute a scenario
        stats,    //!< report daemon counters
        shutdown, //!< drain in-flight work and exit
    };

    Type type = Type::run;
    std::string id;              //!< echoed on every response
    std::string client = "anon"; //!< fair-share accounting key
    int priority = 0;            //!< higher runs first [-100, 100]
    /** Fair-share weight for this client (sticky; 0 = leave as is). */
    double weight = 0.0;
    cli::Options options;        //!< run requests only
};

/** Outcome of parsing one request line. */
struct ParsedRequest
{
    Request request;
    bool ok = true;
    /** One line, set when !ok. The id is still recovered on a
     *  best-effort basis so the error response can carry it. */
    std::string error;
};

/**
 * Parse one request line. Malformed JSON, unknown types/fields, bad
 * values and oversized lines all come back ok == false with a
 * one-line error; request.id carries whatever id could be recovered.
 */
ParsedRequest parseRequestLine(const std::string& line);

/**
 * Render a run request for `options` (the sweep client's serializer).
 * Every CLI-settable scenario field is emitted explicitly, so the
 * server parses exactly the submitted scenario regardless of its own
 * defaults.
 */
std::string renderRunRequest(const cli::Options& options,
                             const std::string& id,
                             const std::string& client,
                             int priority = 0);

/** Render a stats / shutdown request line. */
std::string renderControlRequest(const std::string& type,
                                 const std::string& id);

/**
 * Canonical scenario identity hash: the FNV-1a of the options'
 * renderRunRequest bytes with empty id/client and run-control knobs
 * (deadline_ms) zeroed. The sweep journal keys rows by it and the
 * serve journal keys per-client results by it, so the same scenario
 * hashes identically whether submitted locally, via socket, with or
 * without a deadline.
 */
std::uint64_t pointHash(const cli::Options& options);

// --- responses -------------------------------------------------------

/** {"type":"accepted","id":...,"queued":N} */
std::string acceptedLine(const std::string& id, std::uint64_t queued);

/** {"type":"error","id":...,"error":...} */
std::string errorLine(const std::string& id, const std::string& error);

/**
 * {"type":"result","id":...,"report":PAYLOAD} where PAYLOAD is the
 * cli::renderJson output (sans trailing newline) embedded verbatim.
 */
std::string resultLine(const std::string& id,
                       const std::string& reportJson);

/**
 * Recover the verbatim report payload from a result line (the bytes
 * cli::renderJson produced, with its trailing newline restored).
 * False when the line is not a well-formed result.
 */
bool extractResultPayload(const std::string& line, std::string& out);

/**
 * Rebuild a cli::Report from a result payload. `submitted` must be
 * the options the request was built from — the report's scenario
 * identity (kernel, machine, seed, labels) comes from it, while the
 * measured facts (dataset name/size, every RunStats counter, the
 * validated flag) parse out of the payload. Derived quantities
 * (energy, seconds, bandwidth, utilization) are recomputed locally
 * from those integers, so a reconstructed report aggregates
 * byte-identically to one produced in-process.
 */
bool parseReportPayload(const std::string& payload,
                        const cli::Options& submitted,
                        cli::Report& out, std::string& err);

} // namespace serve
} // namespace dalorex

#endif // DALOREX_SERVE_PROTOCOL_HH
