/**
 * @file
 * The `dalorex serve` daemon core, transport-agnostic.
 *
 * A Server owns the FairScheduler and one persistent WorkerCrew;
 * transports (stdin, Unix socket — see transport.hh) own the bytes.
 * A transport registers each client as a connection with a write sink,
 * feeds request lines to handleLine(), and the server pushes response
 * lines back through the sink — from the reader thread for `accepted`/
 * `stats`/`error`, from whichever crew member ran the scenario for
 * `result`. Per-connection write locks keep concurrent lines whole
 * (interleaved but never torn).
 *
 * serve() blocks running the crew until shutdown is requested (a
 * `shutdown` request, transport EOF, or a signal) and every already-
 * accepted job has drained. Hot state stays resident across requests:
 * datasets live in the process-wide cache, and each crew member keeps
 * an EngineArenas pool so back-to-back runs reuse engine allocations.
 *
 * Keeping the core free of fds/sockets is what makes the protocol
 * robustness tests cheap: serve_test drives handleLine() directly and
 * asserts on captured sink output, no processes or sockets involved.
 */

#ifndef DALOREX_SERVE_SERVER_HH
#define DALOREX_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/journal.hh"
#include "serve/scheduler.hh"
#include "sim/machine.hh"

namespace dalorex
{
namespace serve
{

class Server
{
  public:
    /** Receives one complete response line (with trailing newline). */
    using Sink = std::function<void(const std::string& line)>;

    /** @param workers Crew size; run requests execute `workers` at a
     *                 time (the caller of serve() is worker 0). */
    explicit Server(unsigned workers);

    /** Register a client; the returned id routes handleLine(). */
    std::uint64_t openConnection(Sink sink);

    /** Unregister a client. In-flight results for it are dropped. */
    void closeConnection(std::uint64_t connection);

    /**
     * Process one request line from a connection (thread-safe). Every
     * line gets at least one response line; a run request gets
     * `accepted` now and `result`/`error` when it executes.
     */
    void handleLine(std::uint64_t connection, const std::string& line);

    /**
     * Run the crew until shutdown is requested and every accepted job
     * has drained. Blocks the caller (it serves as worker 0).
     */
    void serve();

    /** Stop accepting run requests and end serve() once drained. */
    void requestShutdown();

    bool
    shutdownRequested() const
    {
        return shutdown_.load(std::memory_order_acquire);
    }

    /** The `stats` response line for request `id`. */
    std::string statsLine(const std::string& id) const;

    /**
     * Retry transiently failing runs (dataset-file I/O) up to
     * `retries` extra times, sleeping backoffMs << attempt between
     * tries, before the error is answered. Deadline expiries are never
     * retried — their budget is already spent.
     */
    void setRetries(unsigned retries, std::uint64_t backoffMs = 250);

    /**
     * Persist a per-client result journal under `dir` (created if
     * missing): every completed run request appends its verbatim
     * report payload keyed by the scenario's pointHash(), and a
     * request whose scenario is already journaled for that client is
     * answered from the journal without re-running — which is how a
     * restarted daemon resumes a `--via SOCKET` sweep. False with a
     * one-line `err` when the directory cannot be created.
     */
    bool enableJournal(const std::string& dir, std::string& err);

    /**
     * Answer a line the transport refused to buffer (an unterminated
     * line past the hard cap) with the standard oversized-line error,
     * naming the observed byte count, before the caller drops the
     * peer. No request id was parseable, so the error carries none.
     */
    void rejectOversized(std::uint64_t connection,
                         std::size_t observedBytes);

    unsigned workers() const { return workers_; }

  private:
    struct Connection
    {
        Sink sink;
        std::mutex writeMutex; //!< keeps concurrent lines whole
        bool open = true;
    };

    /** Send one line to a connection (dropped if it closed). */
    void respond(std::uint64_t connection, const std::string& line);

    /** Crew-member body: pop + execute until closed and drained. */
    void workerLoop(unsigned member);

    /** One client's durable results (journalMutex_ held). */
    struct ClientJournal
    {
        journal::Writer writer;
        /** pointHash -> verbatim report payload (no newline). */
        std::map<std::uint64_t, std::string> payloads;
        std::uint64_t nextRow = 0;
    };

    /** The client's journal, loading/creating it on first use.
     *  journalMutex_ must be held; never null once journaling is on. */
    ClientJournal* clientJournal(const std::string& client);

    /** Answer from the client's journal if the scenario is recorded.
     *  True when a result line was sent. */
    bool replayFromJournal(const Job& job, std::uint64_t point);

    /** Record a completed run in the client's journal. */
    void recordInJournal(const std::string& client,
                         std::uint64_t point,
                         const std::string& payload);

    const unsigned workers_;
    const std::chrono::steady_clock::time_point start_;
    FairScheduler scheduler_;
    std::atomic<bool> shutdown_{false};

    mutable std::mutex connMutex_;
    std::map<std::uint64_t, std::shared_ptr<Connection>> connections_;
    std::uint64_t nextConnection_ = 1;

    /** Per-crew-member engine allocation pools (index = member). */
    std::vector<EngineArenas> arenas_;

    /** Serve-side retry policy (set before serve() starts). */
    unsigned retries_ = 0;
    std::uint64_t backoffMs_ = 250;

    /** Journal root; empty = journaling off (set before serve()). */
    std::string journalDir_;
    std::mutex journalMutex_;
    std::map<std::string, std::unique_ptr<ClientJournal>> journals_;

    mutable std::mutex statsMutex_;
    std::uint64_t rejected_ = 0;  //!< lines answered with `error`
    std::uint64_t completed_ = 0; //!< runs that produced a `result`
    std::uint64_t failed_ = 0;    //!< runs that produced an `error`
    // Fault-layer counters (the stats `fault` object).
    std::uint64_t timeouts_ = 0;      //!< deadline-expired results
    std::uint64_t cancellations_ = 0; //!< cancelled-run results
    std::uint64_t retriedRuns_ = 0;   //!< extra attempts performed
    std::uint64_t quarantined_ = 0;   //!< permanent failures answered
    std::uint64_t journalWritten_ = 0;
    std::uint64_t journalReplayed_ = 0;
    std::map<std::string, std::uint64_t> completedPerClient_;
};

} // namespace serve
} // namespace dalorex

#endif // DALOREX_SERVE_SERVER_HH
