/**
 * @file
 * The `dalorex serve` daemon core, transport-agnostic.
 *
 * A Server owns the FairScheduler and one persistent WorkerCrew;
 * transports (stdin, Unix socket — see transport.hh) own the bytes.
 * A transport registers each client as a connection with a write sink,
 * feeds request lines to handleLine(), and the server pushes response
 * lines back through the sink — from the reader thread for `accepted`/
 * `stats`/`error`, from whichever crew member ran the scenario for
 * `result`. Per-connection write locks keep concurrent lines whole
 * (interleaved but never torn).
 *
 * serve() blocks running the crew until shutdown is requested (a
 * `shutdown` request, transport EOF, or a signal) and every already-
 * accepted job has drained. Hot state stays resident across requests:
 * datasets live in the process-wide cache, and each crew member keeps
 * an EngineArenas pool so back-to-back runs reuse engine allocations.
 *
 * Keeping the core free of fds/sockets is what makes the protocol
 * robustness tests cheap: serve_test drives handleLine() directly and
 * asserts on captured sink output, no processes or sockets involved.
 */

#ifndef DALOREX_SERVE_SERVER_HH
#define DALOREX_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/scheduler.hh"
#include "sim/machine.hh"

namespace dalorex
{
namespace serve
{

class Server
{
  public:
    /** Receives one complete response line (with trailing newline). */
    using Sink = std::function<void(const std::string& line)>;

    /** @param workers Crew size; run requests execute `workers` at a
     *                 time (the caller of serve() is worker 0). */
    explicit Server(unsigned workers);

    /** Register a client; the returned id routes handleLine(). */
    std::uint64_t openConnection(Sink sink);

    /** Unregister a client. In-flight results for it are dropped. */
    void closeConnection(std::uint64_t connection);

    /**
     * Process one request line from a connection (thread-safe). Every
     * line gets at least one response line; a run request gets
     * `accepted` now and `result`/`error` when it executes.
     */
    void handleLine(std::uint64_t connection, const std::string& line);

    /**
     * Run the crew until shutdown is requested and every accepted job
     * has drained. Blocks the caller (it serves as worker 0).
     */
    void serve();

    /** Stop accepting run requests and end serve() once drained. */
    void requestShutdown();

    bool
    shutdownRequested() const
    {
        return shutdown_.load(std::memory_order_acquire);
    }

    /** The `stats` response line for request `id`. */
    std::string statsLine(const std::string& id) const;

    unsigned workers() const { return workers_; }

  private:
    struct Connection
    {
        Sink sink;
        std::mutex writeMutex; //!< keeps concurrent lines whole
        bool open = true;
    };

    /** Send one line to a connection (dropped if it closed). */
    void respond(std::uint64_t connection, const std::string& line);

    /** Crew-member body: pop + execute until closed and drained. */
    void workerLoop(unsigned member);

    const unsigned workers_;
    const std::chrono::steady_clock::time_point start_;
    FairScheduler scheduler_;
    std::atomic<bool> shutdown_{false};

    mutable std::mutex connMutex_;
    std::map<std::uint64_t, std::shared_ptr<Connection>> connections_;
    std::uint64_t nextConnection_ = 1;

    /** Per-crew-member engine allocation pools (index = member). */
    std::vector<EngineArenas> arenas_;

    mutable std::mutex statsMutex_;
    std::uint64_t rejected_ = 0;  //!< lines answered with `error`
    std::uint64_t completed_ = 0; //!< runs that produced a `result`
    std::uint64_t failed_ = 0;    //!< runs that produced an `error`
    std::map<std::string, std::uint64_t> completedPerClient_;
};

} // namespace serve
} // namespace dalorex

#endif // DALOREX_SERVE_SERVER_HH
