#include "serve/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace dalorex
{
namespace serve
{
namespace
{

/** Cursor over the source text with one-line error reporting. */
struct Parser
{
    explicit Parser(const std::string& text) : src(text) {}

    const std::string& src;
    std::size_t pos = 0;
    bool ok = true;
    std::string error;
    int depth = 0; //!< nesting guard against stack exhaustion

    static constexpr int maxDepth = 64;

    bool
    fail(const std::string& message)
    {
        if (ok) {
            ok = false;
            error = message + " at byte " + std::to_string(pos);
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos < src.size() &&
               (src[pos] == ' ' || src[pos] == '\t' ||
                src[pos] == '\n' || src[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < src.size() && src[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char* word)
    {
        const std::size_t start = pos;
        for (const char* p = word; *p != '\0'; ++p, ++pos) {
            if (pos >= src.size() || src[pos] != *p) {
                pos = start;
                return false;
            }
        }
        return true;
    }

    bool parseValue(JsonValue& out);
    bool parseString(std::string& out);
    bool parseNumber(JsonValue& out);
    bool parseObject(JsonValue& out);
    bool parseArray(JsonValue& out);
};

/** Append a Unicode code point as UTF-8. */
void
appendUtf8(std::string& out, std::uint32_t cp)
{
    if (cp < 0x80) {
        out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
        out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
}

bool
Parser::parseString(std::string& out)
{
    if (!consume('"'))
        return fail("expected string");
    out.clear();
    while (pos < src.size()) {
        const char c = src[pos];
        if (c == '"') {
            ++pos;
            return true;
        }
        if (static_cast<unsigned char>(c) < 0x20)
            return fail("unescaped control character in string");
        if (c != '\\') {
            out.push_back(c);
            ++pos;
            continue;
        }
        ++pos; // backslash
        if (pos >= src.size())
            return fail("truncated escape");
        const char esc = src[pos++];
        switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
            auto hex4 = [&](std::uint32_t& v) {
                v = 0;
                for (int i = 0; i < 4; ++i) {
                    if (pos >= src.size() ||
                        !std::isxdigit(
                            static_cast<unsigned char>(src[pos])))
                        return false;
                    const char h = src[pos++];
                    v = (v << 4) |
                        static_cast<std::uint32_t>(
                            h <= '9' ? h - '0'
                                     : (h | 0x20) - 'a' + 10);
                }
                return true;
            };
            std::uint32_t cp = 0;
            if (!hex4(cp))
                return fail("bad \\u escape");
            if (cp >= 0xD800 && cp <= 0xDBFF) {
                // High surrogate: a low surrogate must follow.
                if (!consume('\\') || !consume('u'))
                    return fail("unpaired surrogate");
                std::uint32_t lo = 0;
                if (!hex4(lo) || lo < 0xDC00 || lo > 0xDFFF)
                    return fail("unpaired surrogate");
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                return fail("unpaired surrogate");
            }
            appendUtf8(out, cp);
            break;
        }
        default:
            return fail("unknown escape");
        }
    }
    return fail("unterminated string");
}

bool
Parser::parseNumber(JsonValue& out)
{
    const std::size_t start = pos;
    if (consume('-')) {
    }
    while (pos < src.size() &&
           std::isdigit(static_cast<unsigned char>(src[pos])))
        ++pos;
    if (consume('.')) {
        while (pos < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[pos])))
            ++pos;
    }
    if (pos < src.size() && (src[pos] == 'e' || src[pos] == 'E')) {
        ++pos;
        if (pos < src.size() && (src[pos] == '+' || src[pos] == '-'))
            ++pos;
        while (pos < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[pos])))
            ++pos;
    }
    out.kind = JsonValue::Kind::number;
    out.raw = src.substr(start, pos - start);
    errno = 0;
    char* end = nullptr;
    out.number = std::strtod(out.raw.c_str(), &end);
    if (out.raw.empty() || end != out.raw.c_str() + out.raw.size() ||
        errno == ERANGE)
        return fail("bad number");
    return true;
}

bool
Parser::parseObject(JsonValue& out)
{
    out.kind = JsonValue::Kind::object;
    ++pos; // '{'
    skipSpace();
    if (consume('}'))
        return true;
    while (true) {
        skipSpace();
        std::string key;
        if (!parseString(key))
            return false;
        skipSpace();
        if (!consume(':'))
            return fail("expected ':'");
        JsonValue value;
        if (!parseValue(value))
            return false;
        out.members.emplace_back(std::move(key), std::move(value));
        skipSpace();
        if (consume(','))
            continue;
        if (consume('}'))
            return true;
        return fail("expected ',' or '}'");
    }
}

bool
Parser::parseArray(JsonValue& out)
{
    out.kind = JsonValue::Kind::array;
    ++pos; // '['
    skipSpace();
    if (consume(']'))
        return true;
    while (true) {
        JsonValue value;
        if (!parseValue(value))
            return false;
        out.items.push_back(std::move(value));
        skipSpace();
        if (consume(','))
            continue;
        if (consume(']'))
            return true;
        return fail("expected ',' or ']'");
    }
}

bool
Parser::parseValue(JsonValue& out)
{
    skipSpace();
    if (pos >= src.size())
        return fail("unexpected end of input");
    if (++depth > maxDepth)
        return fail("nesting too deep");
    bool result = false;
    const char c = src[pos];
    if (c == '{') {
        result = parseObject(out);
    } else if (c == '[') {
        result = parseArray(out);
    } else if (c == '"') {
        out.kind = JsonValue::Kind::string;
        result = parseString(out.text);
    } else if (c == 't' && literal("true")) {
        out.kind = JsonValue::Kind::boolean;
        out.boolean = true;
        result = true;
    } else if (c == 'f' && literal("false")) {
        out.kind = JsonValue::Kind::boolean;
        out.boolean = false;
        result = true;
    } else if (c == 'n' && literal("null")) {
        out.kind = JsonValue::Kind::null;
        result = true;
    } else if (c == '-' ||
               std::isdigit(static_cast<unsigned char>(c))) {
        result = parseNumber(out);
    } else {
        result = fail("unexpected character");
    }
    --depth;
    return result;
}

} // namespace

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (kind != Kind::object)
        return nullptr;
    for (const auto& [name, value] : members)
        if (name == key)
            return &value;
    return nullptr;
}

bool
JsonValue::asU64(std::uint64_t& out) const
{
    if (kind != Kind::number || raw.empty())
        return false;
    for (const char c : raw)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false; // rejects '-', '.', exponents
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
    if (errno != 0 || end != raw.c_str() + raw.size())
        return false;
    out = v;
    return true;
}

JsonParseResult
parseJson(const std::string& text)
{
    JsonParseResult result;
    Parser parser{text};
    if (!parser.parseValue(result.value)) {
        result.ok = false;
        result.error = parser.error;
        return result;
    }
    parser.skipSpace();
    if (parser.pos != text.size()) {
        result.ok = false;
        result.error = "trailing garbage at byte " +
                       std::to_string(parser.pos);
    }
    return result;
}

std::string
jsonQuote(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* hex = "0123456789abcdef";
                out += "\\u00";
                out.push_back(hex[(c >> 4) & 0xF]);
                out.push_back(hex[c & 0xF]);
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace serve
} // namespace dalorex
