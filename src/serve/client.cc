#include "serve/client.hh"

#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/json.hh"
#include "serve/protocol.hh"
#include "serve/socket_io.hh"

namespace dalorex
{
namespace serve
{
namespace
{

/** Row index from a "p<index>" request id; false on junk. */
bool
rowFromId(const std::string& id, std::size_t rows, std::size_t& out)
{
    if (id.size() < 2 || id[0] != 'p')
        return false;
    std::uint64_t v = 0;
    for (std::size_t i = 1; i < id.size(); ++i) {
        if (id[i] < '0' || id[i] > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(id[i] - '0');
        if (v >= rows)
            return false;
    }
    out = static_cast<std::size_t>(v);
    return true;
}

} // namespace

bool
runViaSocket(const std::string& socketPath, const std::string& client,
             const std::vector<cli::Options>& points,
             std::vector<cli::RunOutcome>& outcomes, std::string& err,
             const std::atomic<bool>* cancel,
             const std::vector<char>* skip,
             const std::function<void(std::size_t,
                                      const cli::RunOutcome&)>& onRow)
{
    outcomes.assign(points.size(), cli::RunOutcome{});
    auto masked = [skip](std::size_t i) {
        return skip != nullptr && i < skip->size() &&
               (*skip)[i] != 0;
    };
    std::vector<bool> resolved(points.size(), false);
    std::size_t remaining = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (masked(i))
            resolved[i] = true; // the caller's journal owns this row
        else
            ++remaining;
    }
    if (remaining == 0)
        return true;

    const int fd = connectUnix(socketPath, err);
    if (fd < 0)
        return false;

    // Writer on its own thread: with every request written before
    // any response is read, a big grid could fill both socket
    // buffers and deadlock client and daemon against each other.
    std::thread writer([&points, &client, fd, &masked] {
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (masked(i))
                continue;
            const std::string line =
                renderRunRequest(points[i], "p" + std::to_string(i),
                                 client) +
                "\n";
            if (!sendAll(fd, line))
                return; // reader sees the broken socket too
        }
    });
    bool transportOk = true;
    bool interrupted = false;
    LineReader reader(fd);
    std::string line;
    while (remaining > 0) {
        const ReadStatus status = reader.readLine(line);
        if (status == ReadStatus::interrupted) {
            if (cancel != nullptr && cancel->load()) {
                interrupted = true;
                break;
            }
            continue;
        }
        if (status == ReadStatus::eof || status == ReadStatus::error) {
            transportOk = false;
            err = "daemon connection closed with " +
                  std::to_string(remaining) + " of " +
                  std::to_string(points.size()) +
                  " rows outstanding";
            break;
        }

        std::string payload;
        if (extractResultPayload(line, payload)) {
            // The id sits in fixed position: {"type":"result","id":X
            const JsonParseResult parsed = parseJson(line);
            const JsonValue* id =
                parsed.ok ? parsed.value.find("id") : nullptr;
            std::size_t row = 0;
            if (id == nullptr || !id->isString() ||
                !rowFromId(id->text, points.size(), row) ||
                resolved[row])
                continue; // not ours; ignore
            cli::RunOutcome& outcome = outcomes[row];
            std::string perr;
            if (!parseReportPayload(payload, points[row],
                                    outcome.report, perr)) {
                outcome.ok = false;
                outcome.error = perr;
            } else if (outcome.report.stats.status !=
                       RunStatus::completed) {
                // The daemon unwound the run early (deadline, cancel)
                // and answered with a partial-report result; that
                // fails the row here exactly like a local unwind.
                outcome.ok = false;
                outcome.status = outcome.report.stats.status;
                outcome.transient =
                    outcome.status == RunStatus::timeout;
                outcome.error =
                    std::string(toString(outcome.status)) +
                    ": daemon run unwound early";
            }
            resolved[row] = true;
            --remaining;
            if (onRow)
                onRow(row, outcome);
            continue;
        }

        const JsonParseResult parsed = parseJson(line);
        if (!parsed.ok || !parsed.value.isObject())
            continue; // daemon noise; not fatal
        const JsonValue* type = parsed.value.find("type");
        const JsonValue* id = parsed.value.find("id");
        if (type == nullptr || !type->isString() || id == nullptr ||
            !id->isString())
            continue;
        std::size_t row = 0;
        if (!rowFromId(id->text, points.size(), row) || resolved[row])
            continue;
        if (type->text == "error") {
            const JsonValue* message = parsed.value.find("error");
            outcomes[row].ok = false;
            outcomes[row].error =
                message != nullptr && message->isString()
                    ? message->text
                    : "daemon error";
            resolved[row] = true;
            --remaining;
            if (onRow)
                onRow(row, outcomes[row]);
        }
        // "accepted" lines carry no outcome; skip.
    }

    // Unblock the writer if it is still pushing requests nobody will
    // answer (interrupt / broken transport).
    ::shutdown(fd, SHUT_RDWR);
    writer.join();
    ::close(fd);

    if (interrupted) {
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (resolved[i])
                continue;
            outcomes[i].ok = false;
            outcomes[i].error = "interrupted";
        }
        return true; // partial results are the point of SIGINT flush
    }
    return transportOk;
}

} // namespace serve
} // namespace dalorex
