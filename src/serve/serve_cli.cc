#include "serve/serve_cli.hh"

#include <atomic>
#include <csignal>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cli/cli.hh"
#include "common/parallel.hh"
#include "serve/server.hh"
#include "serve/socket_io.hh"

namespace dalorex
{
namespace serve
{
namespace
{

/** Set by the SIGINT/SIGTERM handler; polled by the transports. */
std::atomic<bool> signalled{false};

void
onSignal(int)
{
    signalled.store(true);
}

/**
 * Install SIGINT/SIGTERM handlers for the daemon's lifetime and
 * restore the previous ones on destruction. No SA_RESTART: a blocked
 * read must return EINTR so the transport notices the shutdown.
 */
struct SignalGuard
{
    struct sigaction oldInt{};
    struct sigaction oldTerm{};

    SignalGuard()
    {
        signalled.store(false);
        struct sigaction sa{};
        sa.sa_handler = onSignal;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = 0;
        sigaction(SIGINT, &sa, &oldInt);
        sigaction(SIGTERM, &sa, &oldTerm);
    }

    ~SignalGuard()
    {
        sigaction(SIGINT, &oldInt, nullptr);
        sigaction(SIGTERM, &oldTerm, nullptr);
    }
};

ServeParseResult
fail(const std::string& message)
{
    ServeParseResult result;
    result.ok = false;
    result.error = message;
    return result;
}

/**
 * Stdin transport: the caller's thread reads request lines while the
 * crew serves on a helper thread, so signals interrupt the read.
 */
int
serveOnStreams(Server& server, std::istream& in, std::ostream& out)
{
    const std::uint64_t conn =
        server.openConnection([&out](const std::string& line) {
            out << line;
            out.flush();
        });
    std::thread crew([&server] { server.serve(); });

    std::string line;
    while (!server.shutdownRequested() && !signalled.load() &&
           std::getline(in, line))
        server.handleLine(conn, line);

    // EOF, a shutdown request, or a signal: drain and leave. serve()
    // returns only after every accepted job's response went out, so
    // the connection closes strictly after the last result line.
    server.requestShutdown();
    crew.join();
    server.closeConnection(conn);
    return 0;
}

/** Socket transport state shared by accept/reader/teardown. */
struct SocketState
{
    std::mutex mutex;
    std::map<std::uint64_t, int> fds; //!< open connections
    std::vector<std::thread> readers;
};

void
readConnection(Server& server, SocketState& state, std::uint64_t conn,
               int fd)
{
    LineReader reader(fd);
    std::string line;
    while (true) {
        const ReadStatus status = reader.readLine(line);
        if (status == ReadStatus::line) {
            server.handleLine(conn, line);
            continue;
        }
        if (status == ReadStatus::interrupted &&
            !server.shutdownRequested() && !signalled.load())
            continue;
        if (status == ReadStatus::overflow)
            // Tell the peer how big its unterminated line got before
            // cutting it loose, instead of a silent hangup.
            server.rejectOversized(conn, reader.bufferedBytes());
        break; // EOF, broken pipe, buffer abuse, or shutdown
    }
    server.closeConnection(conn);
    std::lock_guard<std::mutex> lock(state.mutex);
    state.fds.erase(conn);
    ::close(fd);
}

void
acceptLoop(Server& server, SocketState& state, int listenFd)
{
    while (!server.shutdownRequested()) {
        if (signalled.load()) {
            // Promote the signal to an orderly shutdown from a
            // normal thread (the handler itself cannot take locks).
            server.requestShutdown();
            break;
        }
        pollfd pfd{listenFd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue; // timeout/EINTR: re-check the flags
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        const std::uint64_t conn =
            server.openConnection([fd](const std::string& line) {
                sendAll(fd, line);
            });
        std::lock_guard<std::mutex> lock(state.mutex);
        state.fds.emplace(conn, fd);
        state.readers.emplace_back([&server, &state, conn, fd] {
            readConnection(server, state, conn, fd);
        });
    }
}

int
serveOnSocket(Server& server, const std::string& path,
              std::ostream& err)
{
    std::string diag;
    const int listenFd = listenUnix(path, diag);
    if (listenFd < 0) {
        err << "dalorex serve: " << diag << "\n";
        return 2;
    }
    err << "[serve] listening on " << path << " with "
        << server.workers() << " worker"
        << (server.workers() == 1 ? "" : "s") << "\n";

    SocketState state;
    std::thread acceptor([&server, &state, listenFd] {
        acceptLoop(server, state, listenFd);
    });

    server.serve(); // blocks until shutdown + drain
    acceptor.join();
    ::close(listenFd);
    ::unlink(path.c_str());

    // Readers may still be blocked on idle clients; every accepted
    // job has already been answered, so cut the read sides loose.
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        for (const auto& [conn, fd] : state.fds) {
            (void)conn;
            ::shutdown(fd, SHUT_RD);
        }
    }
    for (std::thread& reader : state.readers)
        reader.join();
    err << "[serve] drained, exiting\n";
    return 0;
}

} // namespace

ServeParseResult
parseServeArgs(int argc, const char* const* argv)
{
    ServeParseResult result;
    ServeOptions& o = result.options;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--help" || flag == "-h") {
            o.help = true;
        } else if (flag == "--socket") {
            if (i + 1 >= argc)
                return fail("--socket needs a path");
            o.socketPath = argv[++i];
            if (o.socketPath.empty())
                return fail("--socket needs a non-empty path");
        } else if (flag == "--workers") {
            if (i + 1 >= argc)
                return fail("--workers needs a value");
            std::uint32_t workers = 0;
            if (!cli::parseU32(argv[++i], 1, 256, workers))
                return fail(std::string("--workers must be in "
                                        "[1, 256], got ") +
                            argv[i]);
            o.workers = workers;
        } else if (flag == "--journal-dir") {
            if (i + 1 >= argc)
                return fail("--journal-dir needs a path");
            o.journalDir = argv[++i];
            if (o.journalDir.empty())
                return fail("--journal-dir needs a non-empty path");
        } else if (flag == "--retries") {
            if (i + 1 >= argc)
                return fail("--retries needs a value");
            std::uint32_t retries = 0;
            if (!cli::parseU32(argv[++i], 0, 16, retries))
                return fail(std::string("--retries must be in "
                                        "[0, 16], got ") +
                            argv[i]);
            o.retries = retries;
        } else {
            return fail("unknown option: " + flag + " (try --help)");
        }
    }
    return result;
}

std::string
serveUsageText()
{
    return
        "usage: dalorex serve [options]\n"
        "\n"
        "Long-lived experiment daemon. Accepts newline-delimited JSON\n"
        "requests on stdin (default) or a Unix domain socket, runs\n"
        "each scenario on a persistent worker crew with a priority +\n"
        "fair-share queue, and streams JSONL responses. Datasets stay\n"
        "cached and mmap'd across requests and engine allocations are\n"
        "reused, so repeated scenarios skip all setup; result\n"
        "payloads are byte-identical to a standalone `dalorex --json`\n"
        "run of the same scenario.\n"
        "\n"
        "options:\n"
        "  --socket PATH   listen on a Unix domain socket instead of\n"
        "                  stdin/stdout (the path is replaced and\n"
        "                  removed on exit)\n"
        "  --workers N     concurrent run slots [1, 256] (default:\n"
        "                  host cores)\n"
        "  --journal-dir D persist one result journal per client\n"
        "                  under D; a restarted daemon answers\n"
        "                  journaled scenarios from disk, so `sweep\n"
        "                  --via` clients resume without recomputing\n"
        "  --retries N     re-run transiently failing scenarios\n"
        "                  (dataset file I/O) up to N extra times with\n"
        "                  exponential backoff [0, 16] (default: 0)\n"
        "  --help          this text\n"
        "\n"
        "requests (one JSON object per line):\n"
        "  {\"type\":\"run\",\"id\":\"r1\",\"kernel\":\"bfs\","
        "\"dataset\":\"wiki\",\n"
        "   \"width\":8,\"height\":8,...}   scenario fields mirror"
        " the\n"
        "                                dalorex flags; \"client\","
        " \"priority\"\n"
        "                                [-100,100] and \"weight\""
        " (0,1000]\n"
        "                                steer the queue\n"
        "  {\"type\":\"stats\",\"id\":\"s1\"}      daemon counters"
        " (uptime, queue\n"
        "                                depths, per-client, dataset"
        " cache)\n"
        "  {\"type\":\"shutdown\",\"id\":\"q1\"}   drain accepted"
        " work and exit\n"
        "\n"
        "responses (JSONL, ids echoed):\n"
        "  {\"type\":\"accepted\",\"id\":...,\"queued\":N}\n"
        "  {\"type\":\"result\",\"id\":...,\"report\":{...}}   the"
        " exact\n"
        "                                `dalorex --json` bytes\n"
        "  {\"type\":\"error\",\"id\":...,\"error\":\"...\"}    bad"
        " request or\n"
        "                                failed run; the daemon keeps"
        " serving\n"
        "  {\"type\":\"stats\",\"id\":...,\"stats\":{...}}\n"
        "\n"
        "examples:\n"
        "  echo '{\"type\":\"run\",\"id\":\"r1\",\"kernel\":\"bfs\","
        "\"scale\":8,\n"
        "         \"width\":4,\"height\":4}' | dalorex serve\n"
        "  dalorex serve --socket /tmp/dalorex.sock --workers 4 &\n"
        "  dalorex sweep --quick --via /tmp/dalorex.sock\n";
}

int
serveMain(int argc, const char* const* argv, std::istream& in,
          std::ostream& out, std::ostream& err)
{
    const ServeParseResult parsed = parseServeArgs(argc, argv);
    if (!parsed.ok) {
        err << "dalorex serve: " << parsed.error << "\n";
        return 2;
    }
    const ServeOptions& o = parsed.options;
    if (o.help) {
        out << serveUsageText();
        return 0;
    }

    const unsigned workers =
        o.workers > 0 ? o.workers : defaultWorkerThreads();
    Server server(workers);
    if (o.retries > 0)
        server.setRetries(o.retries);
    if (!o.journalDir.empty()) {
        std::string diag;
        if (!server.enableJournal(o.journalDir, diag)) {
            err << "dalorex serve: " << diag << "\n";
            return 2;
        }
    }
    SignalGuard signals;
    return o.socketPath.empty()
               ? serveOnStreams(server, in, out)
               : serveOnSocket(server, o.socketPath, err);
}

} // namespace serve
} // namespace dalorex
