#include "serve/scheduler.hh"

#include <limits>

namespace dalorex
{
namespace serve
{

void
FairScheduler::setWeight(const std::string& client, double weight)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (weight > 0.0)
        clients_[client].weight = weight;
}

std::uint64_t
FairScheduler::push(Job job)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_)
        return 0;
    ClientQueue& q = clients_[job.request.client];
    if (job.request.weight > 0.0)
        q.weight = job.request.weight;
    if (q.queued == 0)
        // Re-activation: an idle client rejoins at the global clock
        // instead of a stale (small) vtime, so time spent idle does
        // not turn into a burst that starves active clients.
        q.vtime = std::max(q.vtime, clock_);
    const std::uint64_t ahead = depth_;
    const int priority = job.request.priority;
    job.enqueuedAt = std::chrono::steady_clock::now();
    q.pending[priority].push_back(std::move(job));
    ++q.queued;
    ++q.submitted;
    ++depth_;
    ready_.notify_one();
    return ahead;
}

bool
FairScheduler::pop(Job& out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return depth_ > 0 || closed_; });
    if (depth_ == 0)
        return false; // closed and drained

    // Highest pending priority wins outright; fair share only breaks
    // ties within that priority level.
    int top = std::numeric_limits<int>::min();
    for (const auto& [name, q] : clients_) {
        (void)name;
        if (q.queued > 0)
            top = std::max(top, q.topPriority());
    }

    // Among clients pending at `top`, schedule the smallest virtual
    // clock; ties go to the lexicographically first client name so
    // the order is deterministic. std::map iteration gives us the
    // names in sorted order, so strict `<` suffices.
    ClientQueue* best = nullptr;
    for (auto& [name, q] : clients_) {
        (void)name;
        if (q.queued == 0 || q.topPriority() != top)
            continue;
        if (best == nullptr || q.vtime < best->vtime)
            best = &q;
    }

    auto it = best->pending.rbegin();
    std::deque<Job>& fifo = it->second;
    out = std::move(fifo.front());
    fifo.pop_front();
    if (fifo.empty())
        best->pending.erase(it->first);
    --best->queued;
    --depth_;
    ++best->scheduled;
    clock_ = std::max(clock_, best->vtime);
    best->vtime += 1.0 / best->weight;
    return true;
}

void
FairScheduler::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    ready_.notify_all();
}

std::uint64_t
FairScheduler::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return depth_;
}

std::vector<ClientStats>
FairScheduler::clientStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ClientStats> out;
    out.reserve(clients_.size());
    for (const auto& [name, q] : clients_)
        out.push_back(
            {name, q.weight, q.submitted, q.scheduled, q.queued});
    return out;
}

} // namespace serve
} // namespace dalorex
