/**
 * @file
 * Minimal JSON reader for the serve protocol.
 *
 * `dalorex serve` speaks newline-delimited JSON, so the daemon needs
 * to *parse* JSON for the first time (every other layer only renders
 * it). This is a small recursive-descent parser producing an owning
 * JsonValue tree: objects preserve key order, numbers keep their raw
 * token text so 64-bit integers (seeds, cycle counts) round-trip
 * exactly instead of sagging through a double. Errors are data — a
 * malformed request line must produce a one-line `error` response,
 * never kill the daemon.
 */

#ifndef DALOREX_SERVE_JSON_HH
#define DALOREX_SERVE_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dalorex
{
namespace serve
{

/** One parsed JSON value (an owning tree). */
struct JsonValue
{
    enum class Kind
    {
        null,
        boolean,
        number,
        string,
        array,
        object,
    };

    Kind kind = Kind::null;
    bool boolean = false;
    double number = 0.0;
    std::string raw;  //!< number: the exact source token
    std::string text; //!< string: the unescaped contents
    std::vector<JsonValue> items; //!< array elements
    std::vector<std::pair<std::string, JsonValue>> members; //!< object

    bool isNull() const { return kind == Kind::null; }
    bool isBool() const { return kind == Kind::boolean; }
    bool isNumber() const { return kind == Kind::number; }
    bool isString() const { return kind == Kind::string; }
    bool isArray() const { return kind == Kind::array; }
    bool isObject() const { return kind == Kind::object; }

    /** Object member by key; nullptr when absent or not an object. */
    const JsonValue* find(const std::string& key) const;

    /**
     * The number as an exact unsigned 64-bit integer; false when the
     * value is not a number, is negative/fractional, or overflows.
     */
    bool asU64(std::uint64_t& out) const;
};

/** Outcome of parsing one JSON document. */
struct JsonParseResult
{
    JsonValue value;
    bool ok = true;
    std::string error; //!< one line with a byte offset, set when !ok
};

/**
 * Parse `text` as exactly one JSON document (trailing whitespace
 * allowed, trailing garbage is an error). Handles the full scalar
 * escape set including \uXXXX surrogate pairs (decoded to UTF-8).
 */
JsonParseResult parseJson(const std::string& text);

/** Render `text` as a quoted JSON string with all escapes applied. */
std::string jsonQuote(const std::string& text);

} // namespace serve
} // namespace dalorex

#endif // DALOREX_SERVE_JSON_HH
