#include "serve/server.hh"

#include <sstream>
#include <utility>

#include "cli/cli.hh"
#include "common/parallel.hh"
#include "graph/dataset_cache.hh"
#include "serve/json.hh"

namespace dalorex
{
namespace serve
{

Server::Server(unsigned workers)
    : workers_(workers == 0 ? 1 : workers),
      start_(std::chrono::steady_clock::now()),
      arenas_(workers_)
{
}

std::uint64_t
Server::openConnection(Sink sink)
{
    std::lock_guard<std::mutex> lock(connMutex_);
    const std::uint64_t id = nextConnection_++;
    auto conn = std::make_shared<Connection>();
    conn->sink = std::move(sink);
    connections_.emplace(id, std::move(conn));
    return id;
}

void
Server::closeConnection(std::uint64_t connection)
{
    std::shared_ptr<Connection> conn;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        auto it = connections_.find(connection);
        if (it == connections_.end())
            return;
        conn = it->second;
        connections_.erase(it);
    }
    // Flip under the write lock so no sink call can still be running
    // when the transport tears the peer down.
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    conn->open = false;
}

void
Server::respond(std::uint64_t connection, const std::string& line)
{
    std::shared_ptr<Connection> conn;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        auto it = connections_.find(connection);
        if (it == connections_.end())
            return;
        conn = it->second;
    }
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (conn->open)
        conn->sink(line);
}

void
Server::handleLine(std::uint64_t connection, const std::string& line)
{
    // Blank lines are keep-alive noise, not requests.
    if (line.find_first_not_of(" \t\r") == std::string::npos)
        return;

    ParsedRequest parsed = parseRequestLine(line);
    if (!parsed.ok) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++rejected_;
        }
        respond(connection,
                errorLine(parsed.request.id, parsed.error));
        return;
    }
    Request& request = parsed.request;

    switch (request.type) {
    case Request::Type::stats:
        respond(connection, statsLine(request.id));
        return;
    case Request::Type::shutdown:
        respond(connection,
                acceptedLine(request.id, scheduler_.depth()));
        requestShutdown();
        return;
    case Request::Type::run:
        break;
    }

    if (shutdownRequested()) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++rejected_;
        }
        respond(connection,
                errorLine(request.id, "daemon is shutting down"));
        return;
    }

    // `accepted` is sent before the job is visible to workers so it
    // always precedes the `result` line for the same id.
    respond(connection,
            acceptedLine(request.id, scheduler_.depth()));
    scheduler_.push(Job{std::move(request), connection});
}

void
Server::workerLoop(unsigned member)
{
    Job job;
    while (scheduler_.pop(job)) {
        const cli::RunOutcome outcome =
            cli::runScenario(job.request.options, &arenas_[member]);
        if (!outcome.ok) {
            {
                std::lock_guard<std::mutex> lock(statsMutex_);
                ++failed_;
            }
            respond(job.connection,
                    errorLine(job.request.id, outcome.error));
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++completed_;
            ++completedPerClient_[job.request.client];
        }
        respond(job.connection,
                resultLine(job.request.id,
                           cli::renderJson(outcome.report)));
    }
}

void
Server::serve()
{
    WorkerCrew crew(workers_);
    crew.runPhase([this](unsigned member) { workerLoop(member); });
}

void
Server::requestShutdown()
{
    shutdown_.store(true, std::memory_order_release);
    scheduler_.close();
}

std::string
Server::statsLine(const std::string& id) const
{
    const auto uptime =
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    const DatasetCacheStats cache = datasetCacheStats();
    const std::vector<ClientStats> clients =
        scheduler_.clientStats();

    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::map<std::string, std::uint64_t> perClient;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        rejected = rejected_;
        completed = completed_;
        failed = failed_;
        perClient = completedPerClient_;
    }

    std::ostringstream out;
    out << "{\"type\":\"stats\",\"id\":" << jsonQuote(id)
        << ",\"stats\":{"
        << "\"uptime_seconds\":" << uptime
        << ",\"workers\":" << workers_
        << ",\"queue_depth\":" << scheduler_.depth()
        << ",\"runs_completed\":" << completed
        << ",\"runs_failed\":" << failed
        << ",\"requests_rejected\":" << rejected
        << ",\"dataset_cache\":{\"builds\":" << cache.builds
        << ",\"hits\":" << cache.hits << "}"
        << ",\"clients\":[";
    bool first = true;
    for (const ClientStats& c : clients) {
        if (!first)
            out << ",";
        first = false;
        const auto done = perClient.find(c.client);
        out << "{\"client\":" << jsonQuote(c.client)
            << ",\"weight\":" << c.weight
            << ",\"submitted\":" << c.submitted
            << ",\"scheduled\":" << c.scheduled
            << ",\"queued\":" << c.queued << ",\"completed\":"
            << (done != perClient.end() ? done->second : 0) << "}";
    }
    out << "]}}\n";
    return out.str();
}

} // namespace serve
} // namespace dalorex
