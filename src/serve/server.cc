#include "serve/server.hh"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include <sys/stat.h>

#include "cli/cli.hh"
#include "common/parallel.hh"
#include "graph/dataset_cache.hh"
#include "serve/json.hh"

namespace dalorex
{
namespace serve
{
namespace
{

/** Client names become journal file names; keep them path-safe. */
std::string
sanitizeClientName(const std::string& client)
{
    std::string out;
    out.reserve(client.size());
    for (char c : client) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' ||
                          c == '.' || c == '_';
        out += safe ? c : '_';
    }
    return out.empty() ? std::string("_") : out;
}

} // namespace

Server::Server(unsigned workers)
    : workers_(workers == 0 ? 1 : workers),
      start_(std::chrono::steady_clock::now()),
      arenas_(workers_)
{
}

std::uint64_t
Server::openConnection(Sink sink)
{
    std::lock_guard<std::mutex> lock(connMutex_);
    const std::uint64_t id = nextConnection_++;
    auto conn = std::make_shared<Connection>();
    conn->sink = std::move(sink);
    connections_.emplace(id, std::move(conn));
    return id;
}

void
Server::closeConnection(std::uint64_t connection)
{
    std::shared_ptr<Connection> conn;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        auto it = connections_.find(connection);
        if (it == connections_.end())
            return;
        conn = it->second;
        connections_.erase(it);
    }
    // Flip under the write lock so no sink call can still be running
    // when the transport tears the peer down.
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    conn->open = false;
}

void
Server::respond(std::uint64_t connection, const std::string& line)
{
    std::shared_ptr<Connection> conn;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        auto it = connections_.find(connection);
        if (it == connections_.end())
            return;
        conn = it->second;
    }
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (conn->open)
        conn->sink(line);
}

void
Server::handleLine(std::uint64_t connection, const std::string& line)
{
    // Blank lines are keep-alive noise, not requests.
    if (line.find_first_not_of(" \t\r") == std::string::npos)
        return;

    ParsedRequest parsed = parseRequestLine(line);
    if (!parsed.ok) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++rejected_;
        }
        respond(connection,
                errorLine(parsed.request.id, parsed.error));
        return;
    }
    Request& request = parsed.request;

    switch (request.type) {
    case Request::Type::stats:
        respond(connection, statsLine(request.id));
        return;
    case Request::Type::shutdown:
        respond(connection,
                acceptedLine(request.id, scheduler_.depth()));
        requestShutdown();
        return;
    case Request::Type::run:
        break;
    }

    if (shutdownRequested()) {
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++rejected_;
        }
        respond(connection,
                errorLine(request.id, "daemon is shutting down"));
        return;
    }

    // `accepted` is sent before the job is visible to workers so it
    // always precedes the `result` line for the same id.
    respond(connection,
            acceptedLine(request.id, scheduler_.depth()));
    scheduler_.push(Job{std::move(request), connection});
}

void
Server::setRetries(unsigned retries, std::uint64_t backoffMs)
{
    retries_ = retries;
    backoffMs_ = backoffMs;
}

bool
Server::enableJournal(const std::string& dir, std::string& err)
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
        err = "cannot create journal directory " + dir + ": " +
              std::strerror(errno);
        return false;
    }
    journalDir_ = dir;
    return true;
}

Server::ClientJournal*
Server::clientJournal(const std::string& client)
{
    auto it = journals_.find(client);
    if (it != journals_.end())
        return it->second.get();

    auto cj = std::make_unique<ClientJournal>();
    const std::string path =
        journalDir_ + "/" + sanitizeClientName(client) + ".journal";
    // A serve journal has no sweep plan to bind to: plan hash 0 and
    // point count 0 are its fixed header, and every reopen appends the
    // same header (replay verifies repeated headers agree).
    const journal::Replay replayed = journal::replay(path);
    if (replayed.ok) {
        for (const journal::Record& r : replayed.records) {
            if (r.status == journal::RowStatus::ok)
                cj->payloads[r.pointHash] = r.payload;
            cj->nextRow = std::max(cj->nextRow, r.row + 1);
        }
    }
    std::string err;
    cj->writer.open(path, 0, 0, err); // failure: journaling degrades
                                      // to in-memory for this client
    ClientJournal* raw = cj.get();
    journals_.emplace(client, std::move(cj));
    return raw;
}

bool
Server::replayFromJournal(const Job& job, std::uint64_t point)
{
    std::string payload;
    {
        std::lock_guard<std::mutex> lock(journalMutex_);
        ClientJournal* cj = clientJournal(job.request.client);
        const auto hit = cj->payloads.find(point);
        if (hit == cj->payloads.end())
            return false;
        payload = hit->second;
    }
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++completed_;
        ++journalReplayed_;
        ++completedPerClient_[job.request.client];
    }
    respond(job.connection, resultLine(job.request.id, payload));
    return true;
}

void
Server::recordInJournal(const std::string& client,
                        std::uint64_t point,
                        const std::string& payload)
{
    bool written = false;
    {
        std::lock_guard<std::mutex> lock(journalMutex_);
        ClientJournal* cj = clientJournal(client);
        if (cj->payloads.count(point) != 0)
            return; // a concurrent duplicate already recorded it
        journal::Record record;
        record.row = cj->nextRow++;
        record.pointHash = point;
        record.status = journal::RowStatus::ok;
        record.payload = payload;
        cj->payloads[point] = payload;
        written = cj->writer.append(record);
    }
    if (written) {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++journalWritten_;
    }
}

void
Server::workerLoop(unsigned member)
{
    Job job;
    while (scheduler_.pop(job)) {
        const std::uint64_t point = pointHash(job.request.options);
        if (!journalDir_.empty() && replayFromJournal(job, point))
            continue;

        cli::Options options = job.request.options;
        const std::uint64_t deadline_ms = options.deadlineMs;
        options.deadlineMs = 0; // the watchdog below owns expiry

        cli::RunOutcome outcome;
        for (unsigned attempt = 0;; ++attempt) {
            RunControl control;
            std::uint64_t token = 0;
            if (deadline_ms > 0)
                // The budget counts from acceptance, so queueing
                // delay spends it too; an already-expired deadline
                // fires the flag immediately and the engine unwinds
                // on its first cycle.
                token = processDeadlineWatchdog().arm(
                    job.enqueuedAt +
                        std::chrono::milliseconds(deadline_ms),
                    &control.expired);
            outcome =
                cli::runScenario(options, &arenas_[member], &control);
            if (token != 0)
                processDeadlineWatchdog().disarm(token);
            // Retry only still-retriable transients (dataset I/O). A
            // timed-out run is transient to *callers*, but its budget
            // is spent here — answer it now.
            if (outcome.ok || attempt >= retries_ ||
                !outcome.transient ||
                outcome.status != RunStatus::completed)
                break;
            {
                std::lock_guard<std::mutex> lock(statsMutex_);
                ++retriedRuns_;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(
                backoffMs_ << std::min(attempt, 16u)));
        }

        if (outcome.status != RunStatus::completed) {
            // Early-unwound runs still answer with a `result`: the
            // payload carries status/partial stats, and the requester
            // decides what a timeout means for it.
            {
                std::lock_guard<std::mutex> lock(statsMutex_);
                if (outcome.status == RunStatus::timeout)
                    ++timeouts_;
                else if (outcome.status == RunStatus::cancelled)
                    ++cancellations_;
                else
                    ++failed_;
            }
            respond(job.connection,
                    resultLine(job.request.id,
                               cli::renderJson(outcome.report)));
            continue;
        }
        if (!outcome.ok) {
            {
                std::lock_guard<std::mutex> lock(statsMutex_);
                ++failed_;
                if (!outcome.transient)
                    ++quarantined_;
            }
            respond(job.connection,
                    errorLine(job.request.id, outcome.error));
            continue;
        }

        std::string payload = cli::renderJson(outcome.report);
        while (!payload.empty() && payload.back() == '\n')
            payload.pop_back();
        if (!journalDir_.empty())
            recordInJournal(job.request.client, point, payload);
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++completed_;
            ++completedPerClient_[job.request.client];
        }
        respond(job.connection, resultLine(job.request.id, payload));
    }
}

void
Server::rejectOversized(std::uint64_t connection,
                        std::size_t observedBytes)
{
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++rejected_;
    }
    respond(connection,
            errorLine("", "request line of " +
                              std::to_string(observedBytes) +
                              " bytes exceeds the " +
                              std::to_string(maxRequestBytes) +
                              "-byte limit"));
}

void
Server::serve()
{
    WorkerCrew crew(workers_);
    crew.runPhase([this](unsigned member) { workerLoop(member); });
}

void
Server::requestShutdown()
{
    shutdown_.store(true, std::memory_order_release);
    scheduler_.close();
}

std::string
Server::statsLine(const std::string& id) const
{
    const auto uptime =
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    const DatasetCacheStats cache = datasetCacheStats();
    const std::vector<ClientStats> clients =
        scheduler_.clientStats();

    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t cancellations = 0;
    std::uint64_t retried = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t journal_written = 0;
    std::uint64_t journal_replayed = 0;
    std::map<std::string, std::uint64_t> perClient;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        rejected = rejected_;
        completed = completed_;
        failed = failed_;
        timeouts = timeouts_;
        cancellations = cancellations_;
        retried = retriedRuns_;
        quarantined = quarantined_;
        journal_written = journalWritten_;
        journal_replayed = journalReplayed_;
        perClient = completedPerClient_;
    }

    std::ostringstream out;
    out << "{\"type\":\"stats\",\"id\":" << jsonQuote(id)
        << ",\"stats\":{"
        << "\"uptime_seconds\":" << uptime
        << ",\"workers\":" << workers_
        << ",\"queue_depth\":" << scheduler_.depth()
        << ",\"runs_completed\":" << completed
        << ",\"runs_failed\":" << failed
        << ",\"requests_rejected\":" << rejected
        << ",\"dataset_cache\":{\"builds\":" << cache.builds
        << ",\"hits\":" << cache.hits << "}"
        << ",\"fault\":{\"timeouts\":" << timeouts
        << ",\"cancellations\":" << cancellations
        << ",\"retries\":" << retried
        << ",\"quarantined\":" << quarantined
        << ",\"journal_written\":" << journal_written
        << ",\"journal_replayed\":" << journal_replayed << "}"
        << ",\"clients\":[";
    bool first = true;
    for (const ClientStats& c : clients) {
        if (!first)
            out << ",";
        first = false;
        const auto done = perClient.find(c.client);
        out << "{\"client\":" << jsonQuote(c.client)
            << ",\"weight\":" << c.weight
            << ",\"submitted\":" << c.submitted
            << ",\"scheduled\":" << c.scheduled
            << ",\"queued\":" << c.queued << ",\"completed\":"
            << (done != perClient.end() ? done->second : 0) << "}";
    }
    out << "]}}\n";
    return out.str();
}

} // namespace serve
} // namespace dalorex
