/**
 * @file
 * The serve client the sweep layer runs on: submit expanded scenario
 * points to a `dalorex serve` daemon over its Unix socket and rebuild
 * cli::RunOutcomes from the streamed responses.
 *
 * Each point is one run request (id "p<index>"); responses may arrive
 * in any order and land in their expansion-order slot, so everything
 * downstream (aggregation, tables, JSONL) is byte-identical to an
 * in-process sweep of the same plan — the daemon's result payloads
 * are the exact renderJson bytes, and the derived quantities are
 * recomputed locally through the same code paths
 * (see protocol.hh::parseReportPayload).
 */

#ifndef DALOREX_SERVE_CLIENT_HH
#define DALOREX_SERVE_CLIENT_HH

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "cli/cli.hh"

namespace dalorex
{
namespace serve
{

/**
 * Submit every point to the daemon at `socketPath` under client name
 * `client` and collect per-point outcomes in expansion order. A row
 * the daemon answers with `error` fails only that row, exactly like
 * an in-process run; a `result` whose payload carries a non-completed
 * status (a deadline expiry server-side) also fails its row, with the
 * status as the error. False with `err` on transport-level failures
 * (no daemon, broken socket). A set `cancel` flag (SIGINT) stops
 * waiting; unresolved rows come back as failed with "interrupted".
 *
 * `skip` (may be null/short) masks rows the caller already resolved
 * from its journal — they are neither submitted nor waited for.
 * `onRow` (may be empty) fires from this thread as each submitted row
 * resolves, in arrival order — the sweep journal appends from it.
 */
bool runViaSocket(const std::string& socketPath,
                  const std::string& client,
                  const std::vector<cli::Options>& points,
                  std::vector<cli::RunOutcome>& outcomes,
                  std::string& err,
                  const std::atomic<bool>* cancel = nullptr,
                  const std::vector<char>* skip = nullptr,
                  const std::function<void(std::size_t,
                                           const cli::RunOutcome&)>&
                      onRow = {});

} // namespace serve
} // namespace dalorex

#endif // DALOREX_SERVE_CLIENT_HH
