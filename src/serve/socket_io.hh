/**
 * @file
 * Unix-domain-socket plumbing shared by the `dalorex serve` daemon
 * and its clients (the sweep `--via` submitter): connect/listen on a
 * filesystem path, full-buffer sends, and a newline-framed reader
 * that distinguishes EOF, signal interruption and hard errors — the
 * daemon must keep serving through EINTR but stop on a real error,
 * and the client must notice a SIGINT mid-read to flush partial rows.
 */

#ifndef DALOREX_SERVE_SOCKET_IO_HH
#define DALOREX_SERVE_SOCKET_IO_HH

#include <string>

namespace dalorex
{
namespace serve
{

/**
 * Connect to the daemon socket at `path`. Returns the fd, or -1 with
 * a one-line diagnostic in `err`.
 */
int connectUnix(const std::string& path, std::string& err);

/**
 * Bind + listen on `path` (an existing socket file is replaced — the
 * daemon owns its path). Returns the listening fd, or -1 with `err`.
 */
int listenUnix(const std::string& path, std::string& err);

/** Write all of `data` (retrying partial sends; SIGPIPE suppressed).
 *  False when the peer is gone. */
bool sendAll(int fd, const std::string& data);

/** One readLine() outcome. */
enum class ReadStatus
{
    line,        //!< `out` holds one line (newline stripped)
    eof,         //!< peer closed; no partial line pending
    interrupted, //!< a signal arrived before any data
    error,       //!< connection broken
    /** The unterminated line outgrew the hard memory cap. The daemon
     *  answers with an error naming the observed byte count (see
     *  Server::rejectOversized) before dropping the peer, instead of
     *  silently hanging up. bufferedBytes() says how far it got. */
    overflow,
};

/**
 * Newline framing over a blocking fd. Lines longer than the protocol
 * cap still come out whole (parseRequestLine turns them into an
 * `error` response) up to a hard memory cap, past which readLine
 * reports `error` — a peer streaming an endless unterminated line
 * must not buffer without bound.
 */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    ReadStatus readLine(std::string& out);

    /** Bytes currently buffered (the oversized-line count after an
     *  `overflow` status). */
    std::size_t bufferedBytes() const { return buffer_.size(); }

  private:
    int fd_;
    std::string buffer_;
    bool eof_ = false;
};

} // namespace serve
} // namespace dalorex

#endif // DALOREX_SERVE_SOCKET_IO_HH
