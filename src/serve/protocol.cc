#include "serve/protocol.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "apps/kernels.hh"
#include "energy/model.hh"
#include "graph/datasets.hh"
#include "graph/graphfile.hh"
#include "serve/json.hh"

namespace dalorex
{
namespace serve
{
namespace
{

ParsedRequest
fail(ParsedRequest parsed, const std::string& message)
{
    parsed.ok = false;
    parsed.error = message;
    return parsed;
}

/**
 * Best-effort id recovery from a line that cannot be fully parsed
 * (oversized or malformed after the id): scan for the first
 * `"id":"..."` member so the error response still routes. Purely a
 * diagnostic nicety — a wrong guess only mislabels the error line.
 */
std::string
scavengeId(const std::string& line)
{
    const std::size_t key = line.find("\"id\"");
    if (key == std::string::npos)
        return "";
    std::size_t pos = line.find(':', key + 4);
    if (pos == std::string::npos)
        return "";
    ++pos;
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t'))
        ++pos;
    if (pos >= line.size() || line[pos] != '"')
        return "";
    std::string id;
    for (++pos; pos < line.size(); ++pos) {
        if (line[pos] == '\\') {
            ++pos; // skip the escaped char; good enough for an id
            if (pos < line.size())
                id.push_back(line[pos]);
            continue;
        }
        if (line[pos] == '"')
            return id;
        id.push_back(line[pos]);
    }
    return "";
}

/** Shortest round-trippable rendering of a double (param values). */
std::string
formatDouble(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    // Prefer the shortest representation that still round-trips.
    for (int precision = 1; precision < 17; ++precision) {
        char candidate[32];
        std::snprintf(candidate, sizeof candidate, "%.*g", precision,
                      value);
        double back = 0.0;
        std::sscanf(candidate, "%lf", &back);
        if (back == value)
            return candidate;
    }
    return buf;
}

/** Fetch an unsigned field bounded to [min, max]; absent = `def`. */
bool
u64Field(const JsonValue& object, const char* name,
         std::uint64_t min, std::uint64_t max, std::uint64_t def,
         std::uint64_t& out, std::string& err)
{
    const JsonValue* field = object.find(name);
    if (field == nullptr) {
        out = def;
        return true;
    }
    std::uint64_t v = 0;
    if (!field->asU64(v) || v < min || v > max) {
        err = std::string(name) + " must be an integer in [" +
              std::to_string(min) + ", " + std::to_string(max) + "]";
        return false;
    }
    out = v;
    return true;
}

bool
u32Field(const JsonValue& object, const char* name,
         std::uint32_t min, std::uint32_t max, std::uint32_t def,
         std::uint32_t& out, std::string& err)
{
    std::uint64_t v = 0;
    if (!u64Field(object, name, min, max, def, v, err))
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

bool
stringField(const JsonValue& object, const char* name,
            const std::string& def, std::string& out,
            std::string& err)
{
    const JsonValue* field = object.find(name);
    if (field == nullptr) {
        out = def;
        return true;
    }
    if (!field->isString()) {
        err = std::string(name) + " must be a string";
        return false;
    }
    out = field->text;
    return true;
}

bool
boolField(const JsonValue& object, const char* name, bool def,
          bool& out, std::string& err)
{
    const JsonValue* field = object.find(name);
    if (field == nullptr) {
        out = def;
        return true;
    }
    if (!field->isBool()) {
        err = std::string(name) + " must be true or false";
        return false;
    }
    out = field->boolean;
    return true;
}

/** The scenario/scheduling fields a run request may carry. */
constexpr const char* knownFields[] = {
    "type",           "id",           "client",
    "priority",       "weight",       "kernel",
    "dataset",        "scale",        "dataset_scale",
    "width",          "height",       "topology",
    "ruche_factor",   "policy",       "distribution",
    "barrier",        "invoke_overhead", "max_cycles",
    "engine_threads", "engine_scan",  "engine_barrier",
    "engine_rebalance", "params",
    "seed",           "validate",     "scratchpad_bytes",
    "deadline_ms",
};

bool
knownField(const std::string& name)
{
    for (const char* field : knownFields)
        if (name == field)
            return true;
    return false;
}

} // namespace

ParsedRequest
parseRequestLine(const std::string& line)
{
    ParsedRequest parsed;
    Request& r = parsed.request;

    if (line.size() > maxRequestBytes) {
        r.id = scavengeId(line.substr(0, maxRequestBytes));
        return fail(std::move(parsed),
                    "request line of " + std::to_string(line.size()) +
                        " bytes exceeds the " +
                        std::to_string(maxRequestBytes) +
                        "-byte limit");
    }

    const JsonParseResult json = parseJson(line);
    if (!json.ok) {
        r.id = scavengeId(line);
        return fail(std::move(parsed), "bad JSON: " + json.error);
    }
    if (!json.value.isObject()) {
        r.id = scavengeId(line);
        return fail(std::move(parsed),
                    "request must be a JSON object");
    }
    const JsonValue& object = json.value;

    std::string err;
    if (!stringField(object, "id", "", r.id, err))
        return fail(std::move(parsed), err);

    std::string type;
    if (!stringField(object, "type", "run", type, err))
        return fail(std::move(parsed), err);
    if (type == "run")
        r.type = Request::Type::run;
    else if (type == "stats")
        r.type = Request::Type::stats;
    else if (type == "shutdown")
        r.type = Request::Type::shutdown;
    else
        return fail(std::move(parsed),
                    "unknown request type: " + type +
                        " (run|stats|shutdown)");

    if (r.id.empty())
        return fail(std::move(parsed),
                    "request needs a non-empty string id");

    for (const auto& [name, value] : object.members) {
        (void)value;
        if (!knownField(name))
            return fail(std::move(parsed),
                        "unknown request field: " + name);
    }

    if (!stringField(object, "client", "anon", r.client, err))
        return fail(std::move(parsed), err);
    if (r.client.empty())
        return fail(std::move(parsed), "client must be non-empty");

    if (const JsonValue* priority = object.find("priority")) {
        if (!priority->isNumber() ||
            priority->number != static_cast<int>(priority->number) ||
            priority->number < -100 || priority->number > 100)
            return fail(std::move(parsed),
                        "priority must be an integer in [-100, 100]");
        r.priority = static_cast<int>(priority->number);
    }
    if (const JsonValue* weight = object.find("weight")) {
        if (!weight->isNumber() || weight->number <= 0.0 ||
            weight->number > 1000.0)
            return fail(std::move(parsed),
                        "weight must be in (0, 1000]");
        r.weight = weight->number;
    }

    if (r.type != Request::Type::run)
        return parsed;

    cli::Options& o = r.options;

    std::string kernel;
    if (!stringField(object, "kernel", "", kernel, err))
        return fail(std::move(parsed), err);
    if (!kernel.empty() && !cli::parseKernel(kernel, o.kernel))
        return fail(std::move(parsed),
                    "unknown kernel: " + kernel + " (" +
                        KernelRegistry::instance().namesText() + ")");

    if (!stringField(object, "dataset", "", o.dataset, err))
        return fail(std::move(parsed), err);
    if (!o.dataset.empty() && !knownDataset(o.dataset))
        return fail(std::move(parsed),
                    "unknown dataset: " + o.dataset);

    std::uint32_t scale = 0;
    if (!u32Field(object, "scale", 4, 26, o.scale, scale, err))
        return fail(std::move(parsed), err);
    o.scale = scale;
    std::uint32_t dataset_scale = 0;
    if (!u32Field(object, "dataset_scale", 0, 31, 0, dataset_scale,
                  err))
        return fail(std::move(parsed), err);
    if (dataset_scale != 0 && dataset_scale < 4)
        return fail(std::move(parsed),
                    "dataset_scale must be 0 or in [4, 31]");
    o.datasetScale = dataset_scale;

    if (!u32Field(object, "width", 1, 1024, o.machine.width,
                  o.machine.width, err) ||
        !u32Field(object, "height", 1, 1024, o.machine.height,
                  o.machine.height, err))
        return fail(std::move(parsed), err);

    std::string topology;
    if (!stringField(object, "topology", "", topology, err))
        return fail(std::move(parsed), err);
    if (!topology.empty() &&
        !cli::parseTopology(topology, o.machine.topology))
        return fail(std::move(parsed),
                    "unknown topology: " + topology +
                        " (mesh|torus|torus-ruche)");
    if (!u32Field(object, "ruche_factor", 0, 64, 0,
                  o.machine.rucheFactor, err))
        return fail(std::move(parsed), err);

    std::string policy;
    if (!stringField(object, "policy", "", policy, err))
        return fail(std::move(parsed), err);
    if (!policy.empty() && !cli::parsePolicy(policy, o.machine.policy))
        return fail(std::move(parsed),
                    "unknown policy: " + policy +
                        " (round-robin|traffic-aware)");

    std::string distribution;
    if (!stringField(object, "distribution", "", distribution, err))
        return fail(std::move(parsed), err);
    if (!distribution.empty() &&
        !cli::parseDistribution(distribution,
                                o.machine.distribution))
        return fail(std::move(parsed),
                    "unknown distribution: " + distribution +
                        " (low-order|high-order)");

    if (!boolField(object, "barrier", false, o.machine.barrier, err))
        return fail(std::move(parsed), err);
    if (!u32Field(object, "invoke_overhead", 0, 1'000'000, 0,
                  o.machine.invokeOverhead, err))
        return fail(std::move(parsed), err);
    std::uint64_t max_cycles = 0;
    if (!u64Field(object, "max_cycles", 0, ~std::uint64_t(0), 0,
                  max_cycles, err))
        return fail(std::move(parsed), err);
    o.machine.maxCycles = max_cycles;

    std::uint32_t engine_threads = 1;
    if (!u32Field(object, "engine_threads", 1, 256, 1, engine_threads,
                  err))
        return fail(std::move(parsed), err);
    // Mirror cli::parseArgs's clamp: never more workers than shards,
    // so a request and the equivalent argv render the same
    // machine.engine_threads in the report.
    o.machine.engineThreads = std::min(
        engine_threads, o.machine.width * o.machine.height);

    std::string engine_scan;
    if (!stringField(object, "engine_scan", "", engine_scan, err))
        return fail(std::move(parsed), err);
    if (!engine_scan.empty() &&
        !cli::parseEngineScan(engine_scan, o.machine.engineScan))
        return fail(std::move(parsed),
                    "engine_scan must be full|active");

    std::string engine_barrier;
    if (!stringField(object, "engine_barrier", "", engine_barrier,
                     err))
        return fail(std::move(parsed), err);
    if (!engine_barrier.empty() &&
        !cli::parseEngineBarrier(engine_barrier,
                                 o.machine.engineBarrier))
        return fail(std::move(parsed),
                    "engine_barrier must be tree|central");

    if (!boolField(object, "engine_rebalance", false,
                   o.machine.engineRebalance, err))
        return fail(std::move(parsed), err);

    std::uint64_t scratchpad = 0;
    if (!u64Field(object, "scratchpad_bytes", 0,
                  std::uint64_t(1) << 40, 0, scratchpad, err))
        return fail(std::move(parsed), err);
    o.machine.scratchpadProvisionBytes = scratchpad;

    std::string params;
    if (!stringField(object, "params", "", params, err))
        return fail(std::move(parsed), err);
    if (!params.empty() &&
        !parseParamOverrides(params, o.params, err))
        return fail(std::move(parsed), err);

    if (!u64Field(object, "seed", 0, ~std::uint64_t(0), 1, o.seed,
                  err))
        return fail(std::move(parsed), err);
    if (!boolField(object, "validate", false, o.validate, err))
        return fail(std::move(parsed), err);
    if (!u64Field(object, "deadline_ms", 0, ~std::uint64_t(0), 0,
                  o.deadlineMs, err))
        return fail(std::move(parsed), err);

    // Mirror cli::parseArgs's ruche normalization so a request and
    // the equivalent argv produce the same MachineConfig.
    if (o.machine.topology == NocTopology::torusRuche &&
        o.machine.rucheFactor < 2)
        o.machine.rucheFactor = 2;
    if (o.machine.topology != NocTopology::torusRuche)
        o.machine.rucheFactor = 0;
    return parsed;
}

std::string
renderRunRequest(const cli::Options& options, const std::string& id,
                 const std::string& client, int priority)
{
    const cli::Options& o = options;
    std::ostringstream out;
    out << "{\"type\":\"run\",\"id\":" << jsonQuote(id)
        << ",\"client\":" << jsonQuote(client)
        << ",\"priority\":" << priority
        << ",\"kernel\":" << jsonQuote(o.kernel->name)
        << ",\"dataset\":" << jsonQuote(o.dataset)
        << ",\"scale\":" << o.scale
        << ",\"dataset_scale\":" << o.datasetScale
        << ",\"width\":" << o.machine.width
        << ",\"height\":" << o.machine.height
        << ",\"topology\":" << jsonQuote(toString(o.machine.topology))
        << ",\"ruche_factor\":" << o.machine.rucheFactor
        << ",\"policy\":" << jsonQuote(toString(o.machine.policy))
        << ",\"distribution\":"
        << jsonQuote(toString(o.machine.distribution))
        << ",\"barrier\":" << (o.machine.barrier ? "true" : "false")
        << ",\"invoke_overhead\":" << o.machine.invokeOverhead
        << ",\"max_cycles\":" << o.machine.maxCycles
        << ",\"engine_threads\":"
        << std::max(1u, o.machine.engineThreads)
        << ",\"engine_scan\":"
        << jsonQuote(toString(o.machine.engineScan))
        << ",\"engine_barrier\":"
        << jsonQuote(toString(o.machine.engineBarrier))
        << ",\"engine_rebalance\":"
        << (o.machine.engineRebalance ? "true" : "false")
        << ",\"scratchpad_bytes\":"
        << o.machine.scratchpadProvisionBytes;
    if (!o.params.empty()) {
        std::string params;
        for (const ParamOverride& p : o.params) {
            if (!params.empty())
                params += ',';
            params += p.name + "=" + formatDouble(p.value);
        }
        out << ",\"params\":" << jsonQuote(params);
    }
    out << ",\"seed\":" << o.seed
        << ",\"validate\":" << (o.validate ? "true" : "false");
    // Run-control knob, not scenario identity: emit only when set so
    // journal point hashes (computed with deadlineMs zeroed) match the
    // request bytes of an undeadlined submission.
    if (o.deadlineMs > 0)
        out << ",\"deadline_ms\":" << o.deadlineMs;
    out << "}";
    return out.str();
}

std::string
renderControlRequest(const std::string& type, const std::string& id)
{
    return "{\"type\":" + jsonQuote(type) + ",\"id\":" +
           jsonQuote(id) + "}";
}

std::uint64_t
pointHash(const cli::Options& options)
{
    cli::Options canonical = options;
    canonical.deadlineMs = 0; // run control, not scenario identity
    const std::string bytes = renderRunRequest(canonical, "", "");
    return hashBytes(bytes.data(), bytes.size());
}

std::string
acceptedLine(const std::string& id, std::uint64_t queued)
{
    return "{\"type\":\"accepted\",\"id\":" + jsonQuote(id) +
           ",\"queued\":" + std::to_string(queued) + "}\n";
}

std::string
errorLine(const std::string& id, const std::string& error)
{
    return "{\"type\":\"error\",\"id\":" + jsonQuote(id) +
           ",\"error\":" + jsonQuote(error) + "}\n";
}

namespace
{
/** The result-line prefix up to the verbatim payload. */
constexpr const char* reportKey = ",\"report\":";
} // namespace

std::string
resultLine(const std::string& id, const std::string& reportJson)
{
    // Embed the renderJson bytes verbatim (sans trailing newline):
    // extractResultPayload recovers them exactly, so a serve-backed
    // result diffs byte-for-byte against a standalone run.
    std::string payload = reportJson;
    while (!payload.empty() && payload.back() == '\n')
        payload.pop_back();
    return "{\"type\":\"result\",\"id\":" + jsonQuote(id) +
           reportKey + payload + "}\n";
}

bool
extractResultPayload(const std::string& line, std::string& out)
{
    if (line.rfind("{\"type\":\"result\",\"id\":", 0) != 0)
        return false;
    // The id is JSON-escaped, so the unquoted `,"report":` sequence
    // cannot occur before the real payload key.
    const std::size_t key = line.find(reportKey);
    if (key == std::string::npos)
        return false;
    std::size_t end = line.size();
    while (end > 0 && (line[end - 1] == '\n' || line[end - 1] == '\r'))
        --end;
    if (end == 0 || line[end - 1] != '}')
        return false;
    --end; // the response object's closing brace
    const std::size_t start = key + std::string(reportKey).size();
    if (start > end)
        return false;
    out = line.substr(start, end - start) + "\n";
    return true;
}

bool
parseReportPayload(const std::string& payload,
                   const cli::Options& submitted, cli::Report& out,
                   std::string& err)
{
    const JsonParseResult json = parseJson(payload);
    if (!json.ok) {
        err = "bad report payload: " + json.error;
        return false;
    }
    const JsonValue& root = json.value;
    if (!root.isObject()) {
        err = "report payload is not an object";
        return false;
    }

    out = cli::Report{};
    out.options = submitted;

    const JsonValue* dataset = root.find("dataset");
    const JsonValue* stats = root.find("stats");
    if (dataset == nullptr || !dataset->isObject() ||
        stats == nullptr || !stats->isObject()) {
        err = "report payload misses dataset/stats";
        return false;
    }

    auto u64At = [&err](const JsonValue& object, const char* name,
                        std::uint64_t& value) {
        const JsonValue* field = object.find(name);
        if (field == nullptr || !field->asU64(value)) {
            err = std::string("report payload misses ") + name;
            return false;
        }
        return true;
    };

    const JsonValue* name = dataset->find("name");
    if (name == nullptr || !name->isString()) {
        err = "report payload misses dataset.name";
        return false;
    }
    out.datasetName = name->text;
    std::uint64_t v = 0;
    if (!u64At(*dataset, "vertices", v))
        return false;
    out.numVertices = static_cast<VertexId>(v);
    if (!u64At(*dataset, "edges", v))
        return false;
    out.numEdges = static_cast<EdgeId>(v);

    RunStats& s = out.stats;
    if (!u64At(*stats, "cycles", s.cycles))
        return false;
    if (!u64At(*stats, "epochs", v))
        return false;
    s.epochs = static_cast<std::uint32_t>(v);
    if (!u64At(*stats, "invocations", s.invocations) ||
        !u64At(*stats, "edges_processed", s.edgesProcessed) ||
        !u64At(*stats, "pu_busy_cycles", s.puBusyCycles) ||
        !u64At(*stats, "pu_ops", s.puOps) ||
        !u64At(*stats, "sram_reads", s.sramReads) ||
        !u64At(*stats, "sram_writes", s.sramWrites) ||
        !u64At(*stats, "tsu_reads", s.tsuReads) ||
        !u64At(*stats, "tsu_writes", s.tsuWrites) ||
        !u64At(*stats, "local_bypass_msgs", s.localBypassMsgs) ||
        !u64At(*stats, "scratchpad_bytes_total",
               s.scratchpadBytesTotal) ||
        !u64At(*stats, "scratchpad_bytes_max", s.scratchpadBytesMax))
        return false;

    const JsonValue* noc = stats->find("noc");
    if (noc == nullptr || !noc->isObject()) {
        err = "report payload misses stats.noc";
        return false;
    }
    if (!u64At(*noc, "messages_injected", s.noc.messagesInjected) ||
        !u64At(*noc, "messages_delivered", s.noc.messagesDelivered) ||
        !u64At(*noc, "flit_hops", s.noc.flitHops) ||
        !u64At(*noc, "flit_wire_tiles", s.noc.flitWireTiles) ||
        !u64At(*noc, "router_passages", s.noc.routerPassages) ||
        !u64At(*noc, "delivery_stalls", s.noc.deliveryStalls))
        return false;

    if (const JsonValue* engine = stats->find("engine");
        engine != nullptr && engine->isObject()) {
        (void)u64At(*engine, "stepped_cycles", s.engineSteppedCycles);
        (void)u64At(*engine, "noc_stepped_cycles",
                    s.nocSteppedCycles);
        (void)u64At(*engine, "tile_scans", s.tileScans);
        (void)u64At(*engine, "router_scans", s.routerScans);
        (void)u64At(*engine, "active_tile_cycles_saved",
                    s.activeTileCyclesSaved);
        (void)u64At(*engine, "active_router_cycles_saved",
                    s.activeRouterCyclesSaved);
        (void)u64At(*engine, "rebalances", s.engineRebalances);
        err.clear(); // engine counters are simulator-only; optional
    }

    // Older payloads predate the status field; absence means the run
    // completed (the only status they could report).
    if (const JsonValue* status = root.find("status");
        status != nullptr && status->isString()) {
        if (status->text == "timeout")
            s.status = RunStatus::timeout;
        else if (status->text == "cancelled")
            s.status = RunStatus::cancelled;
        else if (status->text == "deadlock")
            s.status = RunStatus::deadlock;
        else
            s.status = RunStatus::completed;
    }

    if (const JsonValue* validated = root.find("validated");
        validated != nullptr && validated->isBool())
        out.validated = validated->boolean;

    // utilization() divides busy cycles by cycles x tile count, with
    // the tile count taken from the per-tile vector's length; the
    // payload carries no per-tile data, so size the vector (zeros) to
    // the submitted machine shape.
    s.puBusyPerTile.assign(submitted.machine.numTiles(), 0);

    // Derive the remaining report fields exactly as runScenario does:
    // identical integers through identical code give identical
    // doubles, so aggregation downstream is byte-identical.
    out.energy = dalorexEnergy(s, submitted.machine);
    out.seconds = runSeconds(s);
    out.bandwidthBytesPerSec = avgMemoryBandwidth(s);
    return true;
}

} // namespace serve
} // namespace dalorex
