#include "serve/socket_io.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.hh"

namespace dalorex
{
namespace serve
{
namespace
{

/** An unterminated line may grow this far before we drop the peer. */
constexpr std::size_t maxBufferedBytes = 16 * maxRequestBytes;

bool
fillAddress(const std::string& path, sockaddr_un& addr,
            std::string& err)
{
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof addr.sun_path) {
        err = "socket path must be 1.." +
              std::to_string(sizeof addr.sun_path - 1) +
              " bytes: " + path;
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int
connectUnix(const std::string& path, std::string& err)
{
    sockaddr_un addr;
    if (!fillAddress(path, addr, err))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
        err = "connect " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenUnix(const std::string& path, std::string& err)
{
    sockaddr_un addr;
    if (!fillAddress(path, addr, err))
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    ::unlink(path.c_str()); // the daemon owns its path
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
        err = "bind " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 64) != 0) {
        err = "listen " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string& data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent,
                   MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue; // a signal mid-send must not tear the line
        return false;
    }
    return true;
}

ReadStatus
LineReader::readLine(std::string& out)
{
    while (true) {
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            out = buffer_.substr(0, newline);
            buffer_.erase(0, newline + 1);
            if (!out.empty() && out.back() == '\r')
                out.pop_back();
            return ReadStatus::line;
        }
        if (eof_) {
            // A final unterminated line still counts as one line.
            if (buffer_.empty())
                return ReadStatus::eof;
            out = std::move(buffer_);
            buffer_.clear();
            return ReadStatus::line;
        }
        if (buffer_.size() > maxBufferedBytes)
            return ReadStatus::overflow;

        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            eof_ = true;
            continue;
        }
        if (errno == EINTR)
            return ReadStatus::interrupted;
        return ReadStatus::error;
    }
}

} // namespace serve
} // namespace dalorex
