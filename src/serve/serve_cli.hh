/**
 * @file
 * The `dalorex serve` subcommand: a long-lived experiment daemon.
 *
 * Transports wrap the transport-agnostic Server (server.hh):
 *   - stdin mode (default): requests on stdin, responses on stdout —
 *     one anonymous connection; ends at EOF or a `shutdown` request.
 *   - socket mode (--socket PATH): a Unix domain socket accepting
 *     concurrent clients, one reader thread per connection.
 *
 * Both drain accepted work before exiting on SIGINT/SIGTERM or a
 * `shutdown` request. serveMain takes the input stream explicitly so
 * tests drive the stdin transport with string streams, in-process.
 */

#ifndef DALOREX_SERVE_SERVE_CLI_HH
#define DALOREX_SERVE_SERVE_CLI_HH

#include <iosfwd>
#include <string>

namespace dalorex
{
namespace serve
{

/** Everything `dalorex serve` argv determines. */
struct ServeOptions
{
    std::string socketPath; //!< empty = stdin/stdout transport
    unsigned workers = 0;   //!< concurrent run slots; 0 = host cores
    /** Per-client result journal directory; empty = no journal. A
     *  restarted daemon pointed at the same directory answers
     *  already-journaled scenarios without re-running them. */
    std::string journalDir;
    /** Extra attempts for transiently failing runs (dataset I/O). */
    unsigned retries = 0;
    bool help = false;
};

/** Outcome of parsing serve argv: options, or a diagnostic. */
struct ServeParseResult
{
    ServeOptions options;
    bool ok = true;
    std::string error; //!< set when !ok
};

/** Parse `dalorex serve` argv (argv[0], the subcommand, skipped). */
ServeParseResult parseServeArgs(int argc, const char* const* argv);

/** The `dalorex serve --help` text. */
std::string serveUsageText();

/**
 * Full subcommand behavior: parse argv, run the daemon until EOF /
 * `shutdown` / SIGINT / SIGTERM, drain, exit. `in` is the stdin-mode
 * request stream (ignored with --socket); responses go to `out`,
 * diagnostics to `err`. Returns the process exit code.
 */
int serveMain(int argc, const char* const* argv, std::istream& in,
              std::ostream& out, std::ostream& err);

} // namespace serve
} // namespace dalorex

#endif // DALOREX_SERVE_SERVE_CLI_HH
