/**
 * @file
 * Priority + fair-share request queue for `dalorex serve`.
 *
 * Two-level policy: strict priority first (higher `priority` runs
 * first, always), stride-scheduled fair share within a priority
 * level. Each client owns a virtual clock that advances by 1/weight
 * per job it gets scheduled; the pending client with the smallest
 * clock goes next, so over time clients receive service proportional
 * to their weights regardless of how fast they submit. Within one
 * client and priority, jobs stay FIFO. A client whose queue was empty
 * re-enters at the scheduler's global clock (never earlier), so idling
 * does not bank credit to starve others with later.
 *
 * The queue is the producer/consumer seam of the daemon: connection
 * reader threads push, WorkerCrew members block in pop(). close()
 * wakes every popper; jobs already queued still drain (pop keeps
 * returning them) so a graceful shutdown finishes accepted work.
 */

#ifndef DALOREX_SERVE_SCHEDULER_HH
#define DALOREX_SERVE_SCHEDULER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace dalorex
{
namespace serve
{

/** One schedulable unit: a run request plus its reply route. */
struct Job
{
    Request request;
    /** Server connection the responses go back to. */
    std::uint64_t connection = 0;
    /** Stamped by push(). A request's deadline_ms counts from here —
     *  the moment it was accepted — not from when a worker dequeues
     *  it, so queueing delay spends the budget too and an expired job
     *  answers promptly instead of running a full scenario first. */
    std::chrono::steady_clock::time_point enqueuedAt{};
};

/** Snapshot of one client's accounting (for `stats` responses). */
struct ClientStats
{
    std::string client;
    double weight = 1.0;
    std::uint64_t submitted = 0; //!< jobs pushed, lifetime
    std::uint64_t scheduled = 0; //!< jobs handed to workers, lifetime
    std::uint64_t queued = 0;    //!< jobs waiting right now
};

class FairScheduler
{
  public:
    /**
     * Set a client's fair-share weight (creating the client). Weight
     * is sticky until changed again; unknown clients default to 1.
     */
    void setWeight(const std::string& client, double weight);

    /**
     * Enqueue a job; returns the number of jobs ahead of it (its
     * queue position, echoed in the `accepted` response). A non-zero
     * request.weight updates the client's weight first.
     */
    std::uint64_t push(Job job);

    /**
     * Block until a job is available or the queue is closed. False
     * only when closed *and* drained — queued jobs always come out.
     */
    bool pop(Job& out);

    /** Wake every popper; push() becomes a no-op returning 0. */
    void close();

    /** Jobs waiting right now (all priorities, all clients). */
    std::uint64_t depth() const;

    /** Per-client accounting, sorted by client name. */
    std::vector<ClientStats> clientStats() const;

  private:
    /** One client's pending work and virtual clock. */
    struct ClientQueue
    {
        double weight = 1.0;
        double vtime = 0.0; //!< virtual clock, advanced on schedule
        std::uint64_t submitted = 0;
        std::uint64_t scheduled = 0;
        /** Pending jobs per priority, FIFO within one priority. */
        std::map<int, std::deque<Job>> pending;
        std::uint64_t queued = 0;

        /** Highest priority with pending work (queued > 0 only). */
        int
        topPriority() const
        {
            return pending.rbegin()->first;
        }
    };

    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::map<std::string, ClientQueue> clients_;
    std::uint64_t depth_ = 0;
    /** Global virtual clock: the vtime of the last scheduled job.
     *  Floors re-activating clients so idle time is not credit. */
    double clock_ = 0.0;
    bool closed_ = false;
};

} // namespace serve
} // namespace dalorex

#endif // DALOREX_SERVE_SCHEDULER_HH
