/**
 * @file
 * Network message representation.
 *
 * Dalorex messages are task invocations: "Messages can be composed of
 * several flits, each being a parameter of the task to be called"
 * (Sec. III-E). Routing is headerless — the first flit is the global
 * index of the distributed array the next task accesses, from which the
 * head encoder derives the destination tile; no routing metadata is
 * transmitted. The simulator carries the pre-computed destination next
 * to the payload words for speed; it models information the head
 * encoder/decoder derive, not extra wire bits.
 */

#ifndef DALOREX_NOC_MESSAGE_HH
#define DALOREX_NOC_MESSAGE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace dalorex
{

/** Maximum logical channels an application may configure. */
constexpr unsigned maxChannels = 4;

/** Maximum words (flits) per message. */
constexpr unsigned maxMsgWords = 4;

/** A task-invocation message traversing the NoC. */
struct Message
{
    TileId dest = invalidTile;
    ChannelId channel = 0;
    std::uint8_t numWords = 0;
    /** words[0] is the head flit (local array index after decode). */
    std::array<Word, maxMsgWords> words{};
};

} // namespace dalorex

#endif // DALOREX_NOC_MESSAGE_HH
