/**
 * @file
 * NoC topology: port geometry, dimension-ordered routing and per-hop
 * wire lengths for 2D mesh, 2D torus and torus+ruche networks
 * (Sec. III-F).
 */

#ifndef DALOREX_NOC_TOPOLOGY_HH
#define DALOREX_NOC_TOPOLOGY_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dalorex
{

/** The three network types characterized in Fig. 8. */
enum class NocTopology
{
    mesh,       //!< 2D mesh, XY routing
    torus,      //!< 2D folded torus, bubble flow control on rings
    torusRuche, //!< torus plus ruche channels of a given factor
};

const char* toString(NocTopology topology);

/** Router ports. `local` faces the tile's TSU. */
enum Port : std::uint8_t
{
    portLocal = 0,
    portEast,
    portWest,
    portNorth,
    portSouth,
    portRucheEast,
    portRucheWest,
    portRucheNorth,
    portRucheSouth,
    numPorts,
};

/**
 * Geometry and routing for a width x height tile grid.
 *
 * Routing is dimension-ordered (X fully, then Y): deadlock-free on the
 * mesh by turn restriction and on torus rings via the bubble rule
 * enforced by the router. Ruche hops are taken while the remaining
 * distance in a dimension is at least the ruche factor.
 */
class Topology
{
  public:
    /**
     * @param topology     Network type.
     * @param width,height Grid dimensions (>= 1).
     * @param ruche_factor Ruche hop distance (>= 2; only for
     *                     torusRuche).
     */
    Topology(NocTopology topology, std::uint32_t width,
             std::uint32_t height, std::uint32_t ruche_factor = 0);

    NocTopology type() const { return type_; }
    std::uint32_t width() const { return width_; }
    std::uint32_t height() const { return height_; }
    std::uint32_t numTiles() const { return width_ * height_; }
    std::uint32_t rucheFactor() const { return ruche_; }

    std::uint32_t tileX(TileId t) const { return t % width_; }
    std::uint32_t tileY(TileId t) const { return t / width_; }
    TileId
    tileAt(std::uint32_t x, std::uint32_t y) const
    {
        return y * width_ + x;
    }

    /** Whether this port exists in this topology. */
    bool portActive(Port port) const;

    /**
     * Whether `from` has a link through `port` (mesh edge routers
     * lack the outward-facing ports; wrapped topologies always link).
     */
    bool hasNeighbor(TileId from, Port port) const;

    /** The router reached by leaving `from` through `port`. */
    TileId neighbor(TileId from, Port port) const;

    /** The port on the receiving router paired with `out_port`. */
    static Port oppositePort(Port out_port);

    /**
     * Next output port for a message at router `here` heading to
     * `dest`. Returns portLocal when here == dest.
     */
    Port route(TileId here, TileId dest) const;

    /** Number of router-to-router hops `route` takes from src to dst. */
    std::uint32_t hopCount(TileId src, TileId dst) const;

    /**
     * Physical wire length of a hop through `port` in units of tile
     * side length: 1 for mesh, 2 for folded-torus neighbor links, and
     * `rucheFactor` for ruche links.
     */
    std::uint32_t hopWireTiles(Port port) const;

    /**
     * Whether a move from `in_port` to `out_port` *enters* a ring (from
     * the tile or by turning dimensions) — such moves must obey the
     * bubble rule on torus topologies.
     */
    bool entersRing(Port in_port, Port out_port) const;

  private:
    /** Signed wrap-aware displacement from a to b along a dimension. */
    std::int32_t delta(std::uint32_t from, std::uint32_t to,
                       std::uint32_t size) const;

    NocTopology type_;
    std::uint32_t width_;
    std::uint32_t height_;
    std::uint32_t ruche_;
};

} // namespace dalorex

#endif // DALOREX_NOC_TOPOLOGY_HH
