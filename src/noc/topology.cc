#include "noc/topology.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace dalorex
{

const char*
toString(NocTopology topology)
{
    switch (topology) {
      case NocTopology::mesh:
        return "mesh";
      case NocTopology::torus:
        return "torus";
      case NocTopology::torusRuche:
        return "torus-ruche";
    }
    return "?";
}

Topology::Topology(NocTopology topology, std::uint32_t width,
                   std::uint32_t height, std::uint32_t ruche_factor)
    : type_(topology), width_(width), height_(height),
      ruche_(ruche_factor)
{
    fatal_if(width == 0 || height == 0, "degenerate grid ", width, "x",
             height);
    if (type_ == NocTopology::torusRuche) {
        fatal_if(ruche_ < 2, "ruche factor must be >= 2, got ", ruche_);
        fatal_if(ruche_ >= width_ && width_ > 1,
                 "ruche factor ", ruche_, " >= grid width ", width_);
    } else {
        ruche_ = 0;
    }
}

bool
Topology::portActive(Port port) const
{
    switch (port) {
      case portLocal:
      case portEast:
      case portWest:
      case portNorth:
      case portSouth:
        return true;
      case portRucheEast:
      case portRucheWest:
        return type_ == NocTopology::torusRuche && width_ > ruche_;
      case portRucheNorth:
      case portRucheSouth:
        return type_ == NocTopology::torusRuche && height_ > ruche_;
      default:
        return false;
    }
}

bool
Topology::hasNeighbor(TileId from, Port port) const
{
    if (!portActive(port) || port == portLocal)
        return false;
    if (type_ != NocTopology::mesh)
        return true;
    const std::uint32_t x = tileX(from);
    const std::uint32_t y = tileY(from);
    switch (port) {
      case portEast:
        return x + 1 < width_;
      case portWest:
        return x > 0;
      case portNorth:
        return y > 0;
      case portSouth:
        return y + 1 < height_;
      default:
        return false; // no ruche on a mesh
    }
}

TileId
Topology::neighbor(TileId from, Port port) const
{
    const std::uint32_t x = tileX(from);
    const std::uint32_t y = tileY(from);
    const bool wrap = type_ != NocTopology::mesh;

    auto step = [&](std::uint32_t coord, std::int32_t dist,
                    std::uint32_t size) -> std::uint32_t {
        const auto signed_size = static_cast<std::int32_t>(size);
        std::int32_t next = static_cast<std::int32_t>(coord) + dist;
        if (wrap) {
            next = ((next % signed_size) + signed_size) % signed_size;
        } else {
            panic_if(next < 0 || next >= signed_size,
                     "mesh hop off the edge");
        }
        return static_cast<std::uint32_t>(next);
    };

    switch (port) {
      case portEast:
        return tileAt(step(x, 1, width_), y);
      case portWest:
        return tileAt(step(x, -1, width_), y);
      case portNorth:
        return tileAt(x, step(y, -1, height_));
      case portSouth:
        return tileAt(x, step(y, 1, height_));
      case portRucheEast:
        return tileAt(step(x, static_cast<std::int32_t>(ruche_),
                           width_), y);
      case portRucheWest:
        return tileAt(step(x, -static_cast<std::int32_t>(ruche_),
                           width_), y);
      case portRucheNorth:
        return tileAt(x, step(y, -static_cast<std::int32_t>(ruche_),
                              height_));
      case portRucheSouth:
        return tileAt(x, step(y, static_cast<std::int32_t>(ruche_),
                              height_));
      default:
        panic("neighbor() through port ", int(port));
    }
}

Port
Topology::oppositePort(Port out_port)
{
    switch (out_port) {
      case portEast:
        return portWest;
      case portWest:
        return portEast;
      case portNorth:
        return portSouth;
      case portSouth:
        return portNorth;
      case portRucheEast:
        return portRucheWest;
      case portRucheWest:
        return portRucheEast;
      case portRucheNorth:
        return portRucheSouth;
      case portRucheSouth:
        return portRucheNorth;
      default:
        panic("oppositePort of ", int(out_port));
    }
}

std::int32_t
Topology::delta(std::uint32_t from, std::uint32_t to,
                std::uint32_t size) const
{
    auto diff = static_cast<std::int32_t>(to) -
                static_cast<std::int32_t>(from);
    if (type_ == NocTopology::mesh || size <= 1)
        return diff;
    // Torus: shortest wrap-aware displacement; ties resolve positive.
    const auto signed_size = static_cast<std::int32_t>(size);
    if (diff > signed_size / 2)
        diff -= signed_size;
    else if (diff < -((signed_size - 1) / 2))
        diff += signed_size;
    return diff;
}

Port
Topology::route(TileId here, TileId dest) const
{
    panic_if(here >= numTiles() || dest >= numTiles(),
             "route() outside grid");
    const std::int32_t dx = delta(tileX(here), tileX(dest), width_);
    const std::int32_t dy = delta(tileY(here), tileY(dest), height_);

    // Dimension-ordered: resolve X first, then Y.
    if (dx != 0) {
        const auto mag = static_cast<std::uint32_t>(std::abs(dx));
        if (ruche_ >= 2 && mag >= ruche_ &&
            portActive(dx > 0 ? portRucheEast : portRucheWest)) {
            return dx > 0 ? portRucheEast : portRucheWest;
        }
        return dx > 0 ? portEast : portWest;
    }
    if (dy != 0) {
        const auto mag = static_cast<std::uint32_t>(std::abs(dy));
        if (ruche_ >= 2 && mag >= ruche_ &&
            portActive(dy > 0 ? portRucheSouth : portRucheNorth)) {
            return dy > 0 ? portRucheSouth : portRucheNorth;
        }
        return dy > 0 ? portSouth : portNorth;
    }
    return portLocal;
}

std::uint32_t
Topology::hopCount(TileId src, TileId dst) const
{
    std::uint32_t hops = 0;
    TileId here = src;
    while (here != dst) {
        const Port port = route(here, dst);
        panic_if(port == portLocal, "routing stuck at tile ", here);
        here = neighbor(here, port);
        ++hops;
        panic_if(hops > 4 * (width_ + height_) * (ruche_ + 1),
                 "routing loop from ", src, " to ", dst);
    }
    return hops;
}

std::uint32_t
Topology::hopWireTiles(Port port) const
{
    switch (port) {
      case portLocal:
        return 0;
      case portEast:
      case portWest:
      case portNorth:
      case portSouth:
        // Folded-torus wiring places logical neighbors two tiles apart
        // (Sec. III-F); mesh neighbors are adjacent.
        return type_ == NocTopology::mesh ? 1 : 2;
      case portRucheEast:
      case portRucheWest:
      case portRucheNorth:
      case portRucheSouth:
        // Ruche channels are direct physical wires spanning R tiles.
        return ruche_;
      default:
        panic("hopWireTiles of ", int(port));
    }
}

bool
Topology::entersRing(Port in_port, Port out_port) const
{
    if (type_ == NocTopology::mesh)
        return false;
    if (out_port == portLocal)
        return false;
    // Injection from the tile, a turn into the other dimension, or a
    // switch between the unit-link ring and a ruche ring all *enter* a
    // physical ring and must leave a bubble behind. A message
    // continuing inside its ring arrives through the port opposite its
    // exit (e.g. in from the west, out to the east). Each physical ring
    // thus keeps at least one free slot, and since dimension-ordered
    // traffic is monotone around a ring, progress is always possible.
    return in_port != oppositePort(out_port);
}

} // namespace dalorex
