#include "noc/network.hh"

#include <bit>

#include "common/bits.hh"
#include "common/logging.hh"

namespace dalorex
{

namespace
{
constexpr Cycle neverCycle = ~Cycle(0);
} // namespace

Network::Network(const NocConfig& config, DeliverFn deliver,
                 InjectSpaceFn on_inject_space)
    : config_(config),
      topo_(config.topology, config.width, config.height,
            config.rucheFactor),
      deliver_(std::move(deliver)),
      onInjectSpace_(std::move(on_inject_space))
{
    fatal_if(config_.numChannels == 0 ||
                 config_.numChannels > maxChannels,
             "channel count out of range: ", config_.numChannels);
    fatal_if(config_.bufferSlots < 2,
             "bubble flow control needs >= 2 buffer slots per channel");
    for (unsigned c = 0; c < config_.numChannels; ++c) {
        fatal_if(config_.msgWords[c] == 0 ||
                     config_.msgWords[c] > maxMsgWords,
                 "channel ", c, " message length out of range");
    }

    routers_.resize(topo_.numTiles());
    routerActive_.assign(topo_.numTiles(), 0);
    routerActiveUntil_.assign(topo_.numTiles(), 0);

    // One arena allocation backs every (router, port, channel) ring
    // buffer — no per-buffer heap blocks on the hot path.
    unsigned active_ports = 0;
    for (unsigned p = 0; p < numPorts; ++p) {
        if (topo_.portActive(static_cast<Port>(p)))
            ++active_ports;
    }
    bufferArena_.resize(std::size_t(topo_.numTiles()) * active_ports *
                        config_.numChannels * config_.bufferSlots);
    std::size_t arena_next = 0;

    for (TileId r = 0; r < routers_.size(); ++r) {
        Router& router = routers_[r];
        for (unsigned p = 0; p < numPorts; ++p) {
            const auto port = static_cast<Port>(p);
            if (topo_.hasNeighbor(r, port))
                router.neighborId[p] = topo_.neighbor(r, port);
            else
                router.neighborId[p] = r;
            if (!topo_.portActive(port))
                continue;
            for (unsigned c = 0; c < config_.numChannels; ++c) {
                Fifo& fifo = router.buffers[p][c];
                fifo.slots = &bufferArena_[arena_next];
                fifo.capacity = config_.bufferSlots;
                arena_next += config_.bufferSlots;
            }
        }
    }
    setNumShards(1);
}

void
Network::setNumShards(unsigned shards)
{
    const auto tiles = static_cast<TileId>(topo_.numTiles());
    const unsigned n =
        std::max(1u, std::min<unsigned>(shards, tiles));
    shards_.assign(n, Shard{});
    routerShard_.assign(tiles, 0);
    for (unsigned s = 0; s < n; ++s) {
        shards_[s].beginRouter =
            static_cast<TileId>(std::uint64_t(tiles) * s / n);
        shards_[s].endRouter =
            static_cast<TileId>(std::uint64_t(tiles) * (s + 1) / n);
        for (TileId r = shards_[s].beginRouter;
             r < shards_[s].endRouter; ++r)
            routerShard_[r] = s;
        shards_[s].activeMask.assign(
            (shards_[s].endRouter - shards_[s].beginRouter + 63) / 64,
            0);
        shards_[s].pushesTo.resize(n);
        shards_[s].wakesTo.resize(n);
    }
    // Resharding discards the previous worklists; rebuild membership
    // from the occupancy ground truth.
    for (TileId r = 0; r < routers_.size(); ++r) {
        if (routers_[r].occupancy != 0)
            activateRouter(r);
    }
}

void
Network::reshard(const std::vector<TileId>& bounds)
{
    panic_if(bounds.size() != shards_.size() + 1,
             "reshard must keep the shard count (got ",
             bounds.size() - 1, " ranges for ", shards_.size(),
             " shards)");
    for (unsigned s = 0; s < shards_.size(); ++s) {
        Shard& shard = shards_[s];
        panic_if(!shard.pops.empty(), "reshard with staged effects");
        shard.beginRouter = bounds[s];
        shard.endRouter = bounds[s + 1];
        for (TileId r = shard.beginRouter; r < shard.endRouter; ++r)
            routerShard_[r] = s;
        shard.activeMask.assign(
            (shard.endRouter - shard.beginRouter + 63) / 64, 0);
    }
    for (TileId r = 0; r < routers_.size(); ++r) {
        if (routers_[r].occupancy != 0)
            activateRouter(r);
    }
}

void
Network::activateRouter(TileId router_id)
{
    DLX_OWN_WRITE(ownershipDomain(), router_id, "activateRouter");
    Shard& shard = shards_[routerShard_[router_id]];
    worklistAdd(shard.activeMask, router_id - shard.beginRouter);
}

void
Network::routeInto(TileId router, Port in_port, InFlight& entry) const
{
    entry.outPort = topo_.route(router, entry.msg.dest);
    entry.needSlots =
        topo_.entersRing(in_port, entry.outPort) ? 2 : 1;
}

void
Network::markActive(TileId router, Cycle now, unsigned len)
{
    const Cycle end = now + len;
    Cycle& until = routerActiveUntil_[router];
    if (until <= now) {
        routerActive_[router] += len;
        until = end;
    } else if (until < end) {
        routerActive_[router] += end - until;
        until = end;
    }
}

InjectResult
Network::tryInject(const Message& msg, TileId src, Cycle now,
                   unsigned shard)
{
    panic_if(msg.channel >= config_.numChannels,
             "inject on unconfigured channel ", int(msg.channel));
    panic_if(msg.numWords != config_.msgWords[msg.channel],
             "message length ", int(msg.numWords),
             " does not match channel ", int(msg.channel));
    panic_if(msg.dest >= topo_.numTiles(), "inject to bad tile ",
             msg.dest);

    DLX_OWN_WRITE(ownershipDomain(), src, "tryInject");
    Router& router = routers_[src];
    if (router.injectFreeAt > now)
        return InjectResult::portBusy;
    Fifo& fifo = router.buffers[portLocal][msg.channel];
    if (fifo.free() == 0) {
        router.injectBlocked |= std::uint8_t(1) << msg.channel;
        return InjectResult::bufferFull;
    }

    InFlight entry{msg, now, portLocal, 1};
    routeInto(src, portLocal, entry);
    fifo.push(entry);
    router.occupancy |=
        std::uint64_t(1) << (portLocal * config_.numChannels +
                             msg.channel);
    router.injectFreeAt = now + msg.numWords;
    router.wakeAt = 0;
    activateRouter(src);
    inFlight_.fetch_add(1, std::memory_order_relaxed);
    ++shards_[shard].stats.messagesInjected;
    markActive(src, now, msg.numWords);
    return InjectResult::ok;
}

void
Network::stagePop(TileId router_id, Port in_port, ChannelId channel,
                  Shard& shard)
{
    shard.pops.push_back({router_id, in_port, channel});
    if (in_port == portLocal)
        return;
    // The pop frees a slot the upstream feeder may be sleeping on:
    // stage the wake with the upstream router precomputed, bucketed
    // by *its* shard (the wake mutates that router). Whether anyone
    // is actually waiting is checked at apply time, like the old
    // serial commit did.
    const TileId up_id = routers_[router_id].neighborId[in_port];
    const auto slot = static_cast<std::uint16_t>(
        Topology::oppositePort(in_port) * config_.numChannels +
        channel);
    shard.wakesTo[routerShard_[up_id]].push_back({up_id, slot});
}

bool
Network::tryMove(TileId router_id, Port in_port, ChannelId channel,
                 Cycle now, Shard& shard, Cycle& retryAt)
{
    Router& router = routers_[router_id];
    Fifo& fifo = router.buffers[in_port][channel];
    InFlight& entry = fifo.front();
    if (entry.arrival >= now) {
        // Arrived this cycle; can move next cycle at the earliest.
        retryAt = std::min(retryAt, entry.arrival + 1);
        return false;
    }

    const Port out_port = entry.outPort;
    if (router.linkFreeAt[out_port] > now) {
        retryAt = std::min(retryAt, router.linkFreeAt[out_port]);
        return false;
    }

    const Message& msg = entry.msg;
    const unsigned len = msg.numWords;

    const std::uint64_t pair_bit =
        std::uint64_t(1) << (in_port * config_.numChannels + channel);

    if (out_port == portLocal) {
        // Arrived: offer to the TSU; it may refuse (IQ full). The
        // delivery mutates only this router's own tile, so it is
        // shard-local and applied during compute.
        if (!deliver_(msg)) {
            ++shard.stats.deliveryStalls;
            // Sleep until the engine frees IQ space (wakeRouter).
            router.blocked |= pair_bit;
            router.waiters[portLocal * config_.numChannels +
                           channel] |= pair_bit;
            return false;
        }
        router.linkFreeAt[portLocal] = now + len;
        shard.stats.routerPassages += len;
        ++shard.stats.messagesDelivered;
        inFlight_.fetch_sub(1, std::memory_order_relaxed);
        markActive(router_id, now, len);
        stagePop(router_id, in_port, channel, shard);
        return true;
    }

    const TileId next_id = router.neighborId[out_port];
    const Port next_in = Topology::oppositePort(out_port);
    Router& next = routers_[next_id];
    Fifo& dst = next.buffers[next_in][channel];

    // Bubble rule: entering a torus ring must leave one slot free.
    // `dst.count` is start-of-cycle exact: pops are deferred to the
    // commit and this link is the buffer's only pusher (and the link
    // serialization above keeps it to one push per cycle).
    if (dst.free() < entry.needSlots) {
        // Sleep until a pop on that downstream buffer wakes us.
        router.blocked |= pair_bit;
        router.waiters[out_port * config_.numChannels + channel] |=
            pair_bit;
        return false;
    }

    StagedPush forwarded{next_id, next_in, {msg, now, portLocal, 1}};
    routeInto(next_id, next_in, forwarded.entry);
    shard.pushesTo[routerShard_[next_id]].push_back(forwarded);
    router.linkFreeAt[out_port] = now + len;
    shard.stats.flitHops += len;
    shard.stats.flitWireTiles +=
        std::uint64_t(len) * topo_.hopWireTiles(out_port);
    shard.stats.routerPassages += len;
    markActive(router_id, now, len);
    stagePop(router_id, in_port, channel, shard);
    return true;
}

void
Network::computeRouter(TileId r, Cycle now, Shard& shard)
{
    DLX_OWN_WRITE(ownershipDomain(), r, "computeRouter");
    const unsigned channels = config_.numChannels;
    const unsigned pairs = numPorts * channels;

    Router& router = routers_[r];
    const std::uint64_t pending =
        router.occupancy & ~router.blocked;
    if (pending == 0 || router.wakeAt > now)
        return;
    if (now >= router.deferUntil) {
        // The earliest timed defer matured: rescan the whole set.
        router.deferMask = 0;
        router.deferUntil = neverCycle;
    }
    const std::uint64_t scannable = pending & ~router.deferMask;
    if (scannable == 0) {
        router.wakeAt = router.deferUntil;
        return;
    }
    // Round-robin arbitration: rotate the scan starting point so no
    // (port, channel) pair gets static priority.
    const unsigned shift =
        static_cast<unsigned>((now + r) % pairs);
    const std::uint64_t mask = (pairs >= 64)
                                   ? ~std::uint64_t(0)
                                   : ((std::uint64_t(1) << pairs) -
                                      1);
    std::uint64_t rotated =
        ((scannable >> shift) | (scannable << (pairs - shift))) &
        mask;
    bool moved = false;
    while (rotated != 0) {
        const unsigned bit =
            static_cast<unsigned>(std::countr_zero(rotated));
        rotated &= rotated - 1;
        const unsigned pair = (bit + shift) % pairs;
        const auto in_port = static_cast<Port>(pair / channels);
        const auto channel =
            static_cast<ChannelId>(pair % channels);
        Cycle retry_at = neverCycle;
        if (tryMove(r, in_port, channel, now, shard, retry_at)) {
            moved = true;
        } else if (retry_at != neverCycle) {
            router.deferMask |= std::uint64_t(1) << pair;
            router.deferUntil =
                std::min(router.deferUntil, retry_at);
        }
    }
    // A move leaves successor heads (and freshly freed links)
    // worth rescanning next cycle; otherwise sleep until the
    // earliest timed retry. Event-driven sleepers (`blocked`)
    // re-arm wakeAt through their wake.
    router.wakeAt = moved ? now + 1 : router.deferUntil;
}

void
Network::stepCompute(unsigned shard_index, Cycle now)
{
    Shard& shard = shards_[shard_index];
    DLX_OWN_SCOPE(ownershipDomain(), "noc-compute", shard.beginRouter,
                  shard.endRouter);

    if (config_.scanMode == EngineScan::full) {
        // Reference oracle: visit every router, every cycle.
        shard.routerScans += shard.endRouter - shard.beginRouter;
        for (TileId r = shard.beginRouter; r < shard.endRouter; ++r)
            computeRouter(r, now, shard);
        return;
    }

    // Active-set scan. Occupancy only clears in the serial commit
    // (pops are staged), so check-then-compute is exact: a router
    // that drained last commit is swept here, and one that refills
    // during the next commit is re-queued by the push's
    // activateRouter before the sweep could go stale. Compute never
    // activates other routers of this shard mid-sweep (pushes are
    // staged), satisfying the sweep's precondition.
    worklistSweep(shard.activeMask, [&](std::size_t off) {
        ++shard.routerScans;
        const TileId r =
            shard.beginRouter + static_cast<TileId>(off);
        if (routers_[r].occupancy == 0)
            return false; // deferred removal
        computeRouter(r, now, shard);
        return true;
    });
}

void
Network::commitShard(unsigned shard_index, Cycle)
{
    const unsigned channels = config_.numChannels;
    Shard& mine = shards_[shard_index];
    DLX_OWN_SCOPE(ownershipDomain(), "noc-commit", mine.beginRouter,
                  mine.endRouter);

    // Own pops first: a pop's target is always the router that was
    // scanned, i.e. one of this shard's own.
    for (const StagedPop& pop : mine.pops) {
        DLX_OWN_WRITE(ownershipDomain(), pop.router, "commitPop");
        Router& router = routers_[pop.router];
        Fifo& fifo = router.buffers[pop.inPort][pop.channel];
        fifo.pop();
        if (fifo.empty()) {
            router.occupancy &=
                ~(std::uint64_t(1)
                  << (pop.inPort * channels + pop.channel));
        }
        // A pop on the local input buffer frees injection space: let
        // the engine retry the tile's stalled channels (the upstream
        // wake of a non-local pop was staged into wakesTo of the
        // upstream router's shard at pop time).
        if (pop.inPort == portLocal &&
            (router.injectBlocked &
             (std::uint8_t(1) << pop.channel)) != 0) {
            router.injectBlocked &= ~(std::uint8_t(1) << pop.channel);
            if (onInjectSpace_)
                onInjectSpace_(pop.router, pop.channel);
        }
    }
    mine.pops.clear();

    // Then every source shard's staged effects landing in this
    // shard's range, in (source shard, staging sequence) order. The
    // wake targets only the pairs recorded as waiting on the popped
    // buffer; everyone else stays asleep.
    for (Shard& from : shards_) {
        for (const StagedWake& wake : from.wakesTo[shard_index]) {
            DLX_OWN_WRITE(ownershipDomain(), wake.router,
                          "commitWake");
            Router& up = routers_[wake.router];
            if (up.waiters[wake.slot] != 0) {
                up.blocked &= ~up.waiters[wake.slot];
                up.waiters[wake.slot] = 0;
                up.wakeAt = 0;
                // A blocked head implies occupancy, so the upstream
                // router is already listed; this re-add is a
                // defensive no-op that keeps the invariant local to
                // the wake.
                activateRouter(wake.router);
            }
        }
        from.wakesTo[shard_index].clear();
        for (const StagedPush& push : from.pushesTo[shard_index]) {
            DLX_OWN_WRITE(ownershipDomain(), push.router,
                          "commitPush");
            Router& dst = routers_[push.router];
            dst.buffers[push.inPort][push.entry.msg.channel].push(
                push.entry);
            dst.occupancy |=
                std::uint64_t(1) << (push.inPort * channels +
                                     push.entry.msg.channel);
            dst.wakeAt = 0;
            activateRouter(push.router);
        }
        from.pushesTo[shard_index].clear();
    }
}

void
Network::stepCommit(Cycle now)
{
    for (unsigned s = 0; s < shards_.size(); ++s)
        commitShard(s, now);
}

void
Network::step(Cycle now)
{
    if (inFlight_.load(std::memory_order_relaxed) == 0)
        return;
    for (unsigned s = 0; s < shards_.size(); ++s)
        stepCompute(s, now);
    stepCommit(now);
}

std::uint64_t
Network::routerScans() const
{
    std::uint64_t scans = 0;
    for (const Shard& shard : shards_)
        scans += shard.routerScans;
    return scans;
}

NocStats
Network::stats() const
{
    NocStats out;
    for (const Shard& shard : shards_) {
        out.messagesInjected += shard.stats.messagesInjected;
        out.messagesDelivered += shard.stats.messagesDelivered;
        out.flitHops += shard.stats.flitHops;
        out.flitWireTiles += shard.stats.flitWireTiles;
        out.routerPassages += shard.stats.routerPassages;
        out.deliveryStalls += shard.stats.deliveryStalls;
    }
    return out;
}

} // namespace dalorex
