#include "noc/network.hh"

#include <bit>

#include "common/logging.hh"

namespace dalorex
{

Network::Network(const NocConfig& config, DeliverFn deliver,
                 InjectSpaceFn on_inject_space)
    : config_(config),
      topo_(config.topology, config.width, config.height,
            config.rucheFactor),
      deliver_(std::move(deliver)),
      onInjectSpace_(std::move(on_inject_space))
{
    fatal_if(config_.numChannels == 0 ||
                 config_.numChannels > maxChannels,
             "channel count out of range: ", config_.numChannels);
    fatal_if(config_.bufferSlots < 2,
             "bubble flow control needs >= 2 buffer slots per channel");
    for (unsigned c = 0; c < config_.numChannels; ++c) {
        fatal_if(config_.msgWords[c] == 0 ||
                     config_.msgWords[c] > maxMsgWords,
                 "channel ", c, " message length out of range");
    }

    routers_.resize(topo_.numTiles());
    routerActive_.assign(topo_.numTiles(), 0);
    routerActiveUntil_.assign(topo_.numTiles(), 0);
    for (TileId r = 0; r < routers_.size(); ++r) {
        Router& router = routers_[r];
        for (unsigned p = 0; p < numPorts; ++p) {
            const auto port = static_cast<Port>(p);
            if (topo_.hasNeighbor(r, port))
                router.neighborId[p] = topo_.neighbor(r, port);
            else
                router.neighborId[p] = r;
            if (!topo_.portActive(port))
                continue;
            for (unsigned c = 0; c < config_.numChannels; ++c)
                router.buffers[p][c].slots.resize(config_.bufferSlots);
        }
    }
}

void
Network::routeInto(TileId router, Port in_port, InFlight& entry) const
{
    entry.outPort = topo_.route(router, entry.msg.dest);
    entry.needSlots =
        topo_.entersRing(in_port, entry.outPort) ? 2 : 1;
}

void
Network::markActive(TileId router, Cycle now, unsigned len)
{
    const Cycle end = now + len;
    Cycle& until = routerActiveUntil_[router];
    if (until <= now) {
        routerActive_[router] += len;
        until = end;
    } else if (until < end) {
        routerActive_[router] += end - until;
        until = end;
    }
}

InjectResult
Network::tryInject(const Message& msg, TileId src, Cycle now)
{
    panic_if(msg.channel >= config_.numChannels,
             "inject on unconfigured channel ", int(msg.channel));
    panic_if(msg.numWords != config_.msgWords[msg.channel],
             "message length ", int(msg.numWords),
             " does not match channel ", int(msg.channel));
    panic_if(msg.dest >= topo_.numTiles(), "inject to bad tile ",
             msg.dest);

    Router& router = routers_[src];
    if (router.injectFreeAt > now)
        return InjectResult::portBusy;
    Fifo& fifo = router.buffers[portLocal][msg.channel];
    if (fifo.free() == 0) {
        router.injectBlocked |= std::uint8_t(1) << msg.channel;
        return InjectResult::bufferFull;
    }

    InFlight entry{msg, now, portLocal, 1};
    routeInto(src, portLocal, entry);
    fifo.push(entry);
    router.occupancy |=
        std::uint64_t(1) << (portLocal * config_.numChannels +
                             msg.channel);
    router.injectFreeAt = now + msg.numWords;
    ++inFlight_;
    ++stats_.messagesInjected;
    markActive(src, now, msg.numWords);
    return InjectResult::ok;
}

bool
Network::tryMove(TileId router_id, Port in_port, ChannelId channel,
                 Cycle now)
{
    Router& router = routers_[router_id];
    Fifo& fifo = router.buffers[in_port][channel];
    InFlight& entry = fifo.front();
    if (entry.arrival >= now)
        return false; // arrived this cycle; moves next cycle

    const Port out_port = entry.outPort;
    if (router.linkFreeAt[out_port] > now)
        return false;

    const Message& msg = entry.msg;
    const unsigned len = msg.numWords;

    const std::uint64_t pair_bit =
        std::uint64_t(1) << (in_port * config_.numChannels + channel);

    if (out_port == portLocal) {
        // Arrived: offer to the TSU; it may refuse (IQ full).
        if (!deliver_(msg)) {
            ++stats_.deliveryStalls;
            // Sleep until the engine frees IQ space (wakeRouter).
            router.blocked |= pair_bit;
            return false;
        }
        router.linkFreeAt[portLocal] = now + len;
        stats_.routerPassages += len;
        ++stats_.messagesDelivered;
        --inFlight_;
        markActive(router_id, now, len);
        fifo.pop();
        if (fifo.empty())
            router.occupancy &= ~pair_bit;
        // A slot freed here: wake the upstream router feeding this
        // buffer (its head may have been asleep on us being full).
        if (in_port != portLocal) {
            routers_[router.neighborId[in_port]].blocked = 0;
        } else if (router.injectBlocked & (std::uint8_t(1) << channel)) {
            router.injectBlocked &= ~(std::uint8_t(1) << channel);
            if (onInjectSpace_)
                onInjectSpace_(router_id, channel);
        }
        return true;
    }

    const TileId next_id = router.neighborId[out_port];
    const Port next_in = Topology::oppositePort(out_port);
    Router& next = routers_[next_id];
    Fifo& dst = next.buffers[next_in][channel];

    // Bubble rule: entering a torus ring must leave one slot free.
    if (dst.free() < entry.needSlots) {
        // Sleep until a pop on the downstream buffer wakes us.
        router.blocked |= pair_bit;
        return false;
    }

    InFlight forwarded{msg, now, portLocal, 1};
    routeInto(next_id, next_in, forwarded);
    dst.push(forwarded);
    next.occupancy |= std::uint64_t(1)
                      << (next_in * config_.numChannels + channel);
    router.linkFreeAt[out_port] = now + len;
    stats_.flitHops += len;
    stats_.flitWireTiles +=
        std::uint64_t(len) * topo_.hopWireTiles(out_port);
    stats_.routerPassages += len;
    markActive(router_id, now, len);
    fifo.pop();
    if (fifo.empty())
        router.occupancy &= ~pair_bit;
    // This buffer freed a slot: wake whoever feeds it — the upstream
    // router, or the tile's own injection port.
    if (in_port != portLocal) {
        routers_[router.neighborId[in_port]].blocked = 0;
    } else if (router.injectBlocked & (std::uint8_t(1) << channel)) {
        router.injectBlocked &= ~(std::uint8_t(1) << channel);
        if (onInjectSpace_)
            onInjectSpace_(router_id, channel);
    }
    return true;
}

void
Network::step(Cycle now)
{
    if (inFlight_ == 0)
        return;

    const unsigned channels = config_.numChannels;
    const unsigned pairs = numPorts * channels;

    for (TileId r = 0; r < routers_.size(); ++r) {
        Router& router = routers_[r];
        std::uint64_t pending = router.occupancy & ~router.blocked;
        if (pending == 0)
            continue;
        // Round-robin arbitration: rotate the scan starting point so no
        // (port, channel) pair gets static priority.
        const unsigned shift =
            static_cast<unsigned>((now + r) % pairs);
        const std::uint64_t mask = (pairs >= 64)
                                       ? ~std::uint64_t(0)
                                       : ((std::uint64_t(1) << pairs) -
                                          1);
        std::uint64_t rotated =
            ((pending >> shift) | (pending << (pairs - shift))) & mask;
        while (rotated != 0) {
            const unsigned bit =
                static_cast<unsigned>(std::countr_zero(rotated));
            rotated &= rotated - 1;
            const unsigned pair = (bit + shift) % pairs;
            const auto in_port = static_cast<Port>(pair / channels);
            const auto channel =
                static_cast<ChannelId>(pair % channels);
            tryMove(r, in_port, channel, now);
        }
    }
}

} // namespace dalorex
