/**
 * @file
 * Cycle-level network-on-chip model.
 *
 * Routers move whole messages between per-(input port, channel) buffers
 * at message granularity while charging exact wormhole timing: a hop
 * advances the head one router per cycle and occupies the traversed
 * link for the message's flit count ("its flits are always routed back
 * to back", Sec. III-E). Messages on the same (output port, channel)
 * never interleave; different output ports of a router route
 * simultaneously; input ports contending for an output port are
 * arbitrated round-robin — all per Sec. III-E.
 *
 * Deadlock freedom: dimension-ordered routing on the mesh; on torus
 * rings a message entering a ring (injection or dimension turn) must
 * leave a free buffer slot behind it — the paper's "local bubble
 * routing" (Sec. III-F). Endpoint backpressure is modeled by letting
 * the TSU refuse delivery when the target input queue is full.
 *
 * Stepping is two-phase so the engine can shard routers across worker
 * threads deterministically: the *compute* phase (stepCompute) scans a
 * contiguous router range, applies intra-router effects immediately
 * (link occupancy, local deliveries into the router's own tile) and
 * stages every cross-router effect — buffer pushes, head pops and the
 * upstream wake-ups they trigger — into per-shard staging buffers;
 * the *commit* phase applies the staged effects. During compute a
 * router only ever reads start-of-cycle state of foreign routers
 * (each input buffer has exactly one upstream writer, and pops are
 * deferred to commit), so the result is byte-identical for any shard
 * count — step() is the one-shard special case, not a separate
 * semantics.
 *
 * The commit itself is parallel: effects are staged bucketed by the
 * *destination* router's shard (pops always land in the staging
 * shard's own range; pushes and wakes go to pushesTo[dst] /
 * wakesTo[dst]), and commitShard(d) — one call per worker, claiming
 * shard d's router range — applies everything targeting shard d in
 * (source shard, staging sequence) order. Within one cycle each
 * (router, port, channel) buffer sees at most one pop (its pair is
 * scanned once) and at most one push (the upstream link serializes),
 * each waiter slot at most one wake (only the pop of the watched
 * buffer stages it), and all remaining effect pairs touch disjoint
 * state or are idempotent — so the destination-grouped order is
 * byte-identical to the old serial fixed-order commit, at every
 * shard count. stepCommit() survives as the serial wrapper (all
 * shards on the calling thread) for stand-alone users.
 *
 * The compute phase is event-driven (NocConfig::scanMode): each shard
 * keeps an active-router worklist holding exactly the routers with a
 * buffered message, maintained where messages appear (injections
 * during the tile phase, staged pushes and wakes during the serial
 * commit) and swept lazily when a router drains. Quiet regions of
 * the grid therefore cost nothing per cycle; `full` mode keeps the
 * exhaustive range scan as a byte-identical reference oracle.
 *
 * Simplifications vs RTL (documented in DESIGN.md): buffers are counted
 * in message slots rather than a shared per-direction flit pool, and a
 * link serializes whole messages across channels instead of
 * interleaving virtual-channel flits. Both conserve link bandwidth and
 * buffer capacity exactly.
 */

#ifndef DALOREX_NOC_NETWORK_HH
#define DALOREX_NOC_NETWORK_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "noc/message.hh"
#include "noc/topology.hh"
#include "sim/ownership.hh"

namespace dalorex
{

/** Static configuration of the NoC. */
struct NocConfig
{
    NocTopology topology = NocTopology::torus;
    std::uint32_t width = 16;
    std::uint32_t height = 16;
    std::uint32_t rucheFactor = 0; //!< used when topology == torusRuche
    std::uint32_t numChannels = 2;
    /** Flits per message on each channel (known statically). */
    std::array<std::uint8_t, maxChannels> msgWords = {3, 2, 0, 0};
    /** Capacity of each (input port, channel) buffer, in messages. */
    std::uint32_t bufferSlots = 4;
    /**
     * Compute-phase scan mode (simulator only; never changes timing
     * or stats): `active` walks per-shard active-router worklists —
     * a router is on one iff any of its buffers holds a message —
     * `full` keeps the exhaustive range scan as a reference oracle.
     */
    EngineScan scanMode = EngineScan::active;
};

/** Aggregate NoC activity counters (feed the energy model). */
struct NocStats
{
    std::uint64_t messagesInjected = 0;
    std::uint64_t messagesDelivered = 0;
    std::uint64_t flitHops = 0;       //!< flits x links traversed
    std::uint64_t flitWireTiles = 0;  //!< flit-hops x wire tile-lengths
    std::uint64_t routerPassages = 0; //!< flits crossing a router
    std::uint64_t deliveryStalls = 0; //!< endpoint-backpressure retries
};

/** Outcome of an injection attempt. */
enum class InjectResult
{
    ok,         //!< message entered the local input buffer
    portBusy,   //!< still serializing a previous message (transient)
    bufferFull, //!< local buffer full; wait for a pop (event)
};

/**
 * The NoC: a grid of routers stepped one cycle at a time.
 *
 * Injection: `tryInject` places a message into the source router's
 * local input buffer (serialized at one flit per cycle per tile).
 * Delivery: when a message reaches its destination's local output, the
 * engine-supplied callback is offered the message and may refuse it
 * (input queue full), leaving it buffered — backpressure.
 */
class Network
{
  public:
    /** Returns true if the tile accepted the message. */
    using DeliverFn = std::function<bool(const Message&)>;
    /** Notified when a full local input buffer frees a slot. */
    using InjectSpaceFn = std::function<void(TileId, ChannelId)>;

    Network(const NocConfig& config, DeliverFn deliver,
            InjectSpaceFn on_inject_space = nullptr);

    /**
     * Partition the routers into `shards` contiguous ranges for
     * stepCompute/stepCommit. Purely an execution concern: timing and
     * stats are byte-identical for every shard count. Must be called
     * before the first step when the engine runs sharded.
     */
    void setNumShards(unsigned shards);
    unsigned numShards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /**
     * Try to move a message from tile `src`'s channel queue into the
     * network at cycle `now`. `shard` names the caller's shard (the
     * one owning `src`) so activity counters stay race-free; the
     * serial entry points pass 0.
     */
    InjectResult tryInject(const Message& msg, TileId src, Cycle now,
                           unsigned shard = 0);

    /** Advance every router one cycle (compute + commit, one shard). */
    void step(Cycle now);

    /**
     * Compute phase for shard `shard`: scan its router range, apply
     * intra-router effects, stage cross-router pushes/pops/wakes.
     * Distinct shards may run concurrently; stepCommit must follow
     * before the next cycle (or any quiescent()/stats() read).
     */
    void stepCompute(unsigned shard, Cycle now);

    /**
     * Commit the staged effects *targeting* shard `shard`: its own
     * pops, then every source shard's staged wakes and pushes whose
     * destination router lies in shard `shard`, in (source shard,
     * staging sequence) order. Distinct shards may run concurrently —
     * each worker writes only routers of its own range — but a
     * barrier must separate commitShard from both the preceding
     * compute phase and any subsequent reader (the effect application
     * orders commute, see the file comment, so the merged state is
     * byte-identical to a serial commit).
     */
    void commitShard(unsigned shard, Cycle now);

    /** Serial commit: commitShard for every shard on this thread. */
    void stepCommit(Cycle now);

    /**
     * Move the shard boundaries to `bounds` (bounds[s], bounds[s+1])
     * without disturbing the per-shard whole-run accumulators (their
     * sums are partition-invariant). Serial only, between cycles
     * (staging buffers empty); worklists are rebuilt from the
     * occupancy ground truth. The shard *count* never changes — the
     * engine's rebalancer only re-splits ranges.
     */
    void reshard(const std::vector<TileId>& bounds);

    /** True when no message is buffered anywhere in the network.
     *  Valid between cycles (after stepCommit / outside phases). */
    bool
    quiescent() const
    {
        return inFlight_.load(std::memory_order_relaxed) == 0;
    }

    std::uint64_t
    inFlight() const
    {
        return inFlight_.load(std::memory_order_relaxed);
    }

    /** Aggregate counters, merged over shards (cheap; call freely
     *  between cycles). */
    NocStats stats() const;

    /** Router visits performed by all compute phases so far — the
     *  scan-occupancy numerator (simulator metric, not timing). */
    std::uint64_t routerScans() const;

    const Topology& topology() const { return topo_; }
    const NocConfig& config() const { return config_; }

    /** Per-router cycles with at least one flit in motion (Fig. 10). */
    const std::vector<Cycle>&
    routerActiveCycles() const
    {
        return routerActive_;
    }

    /**
     * Re-arm any sleeping heads at `router`. The engine must call this
     * whenever it frees space in one of the tile's input queues so a
     * delivery blocked on a full IQ retries.
     */
    void
    wakeRouter(TileId router)
    {
        DLX_OWN_WRITE(ownershipDomain(), router, "wakeRouter");
        Router& r = routers_[router];
        r.blocked = 0;
        r.wakeAt = 0;
        r.waiters.fill(0);
    }

#if DALOREX_OWNERSHIP_CHECKS
    /**
     * Share the engine's ownership domain (shard-ownership checker):
     * router id == tile id and the Machine splits shards with the
     * same formula, so one claim covers both the tile and NoC
     * parallel phases. Defaults to the Network itself for
     * stand-alone use (noc tests).
     */
    void
    setOwnershipDomain(const void* domain)
    {
        ownershipDomain_ = domain;
    }
    const void* ownershipDomain() const
    {
        return ownershipDomain_ != nullptr ? ownershipDomain_ : this;
    }
#else
    void setOwnershipDomain(const void*) {}
    const void* ownershipDomain() const { return this; }
#endif

    /**
     * True when a tryInject on this channel is known to fail because
     * the local input buffer is full (engine fast-path check).
     */
    bool
    injectBlocked(TileId router, ChannelId channel) const
    {
        return (routers_[router].injectBlocked >> channel) & 1;
    }

    /** Cycle at which the tile's injection port frees up. */
    Cycle
    injectFreeAt(TileId router) const
    {
        return routers_[router].injectFreeAt;
    }

  private:
    /**
     * A buffered message plus the cycle its head arrived here and its
     * pre-routed exit. The output port is fixed by dimension-ordered
     * routing the moment the message enters a router, so it is
     * computed once per hop (at push) instead of on every retry.
     */
    struct InFlight
    {
        Message msg;
        Cycle arrival;
        Port outPort;
        std::uint8_t needSlots; //!< bubble rule: 2 on ring entry
    };

    /**
     * Fixed-capacity ring buffer of in-flight messages. Storage lives
     * in the network-wide arena (one allocation for every buffer of
     * every router) instead of per-buffer heap blocks.
     */
    struct Fifo
    {
        InFlight* slots = nullptr;
        std::uint32_t capacity = 0;
        std::uint32_t head = 0;
        std::uint32_t count = 0;

        bool empty() const { return count == 0; }
        std::uint32_t free() const { return capacity - count; }
        InFlight& front() { return slots[head]; }
        void
        pop()
        {
            head = (head + 1) % capacity;
            --count;
        }
        void
        push(const InFlight& entry)
        {
            slots[(head + count) % capacity] = entry;
            ++count;
        }
    };

    struct Router
    {
        // Hot scan scalars lead the struct so the per-cycle
        // pending/wake checks touch one cache line before any of the
        // (much larger) buffer and waiter state.

        /** Non-empty (port, channel) pairs, bit port*channels+chan. */
        std::uint64_t occupancy = 0;
        /**
         * Pairs whose head is asleep waiting for downstream buffer
         * space or input-queue space. A sleeping head is skipped by
         * the scan until a pop on the blocking structure wakes this
         * router — turning the congestion retry storm into an
         * event-driven wait (space can only appear via a pop, whose
         * commit always wakes the sleeper that cycle).
         */
        std::uint64_t blocked = 0;
        /**
         * Next cycle at which a timed wait (head arrived this cycle,
         * link serializing) can resolve; the scan skips the router
         * until then. Event-driven waits use `blocked` instead; every
         * event (push, wake, injection) resets wakeAt to 0. Purely a
         * scan fast path — skipped cycles are exactly those where no
         * head could move.
         */
        Cycle wakeAt = 0;
        /**
         * Pairs that failed for a *timed* reason (output link still
         * serializing, head arrived this cycle) and the earliest
         * cycle any of them could retry. Such a head cannot become
         * movable earlier — linkFreeAt only moves forward and the
         * head itself is immutable until it moves — so the scan skips
         * them until deferUntil and then rescans the whole set.
         * Another pure fast path: skipped attempts are exactly the
         * ones that would have failed.
         */
        std::uint64_t deferMask = 0;
        Cycle deferUntil = ~Cycle(0);
        /** Injection serialization (TSU -> router, 1 flit/cycle). */
        Cycle injectFreeAt = 0;
        /**
         * Channels whose local input buffer rejected an injection
         * because it was full; cleared when that buffer pops. Lets the
         * engine skip hopeless injection retries.
         */
        std::uint8_t injectBlocked = 0;

        /** buffers[port][channel]; portLocal holds injected traffic. */
        std::array<std::array<Fifo, maxChannels>, numPorts> buffers;
        /** Link occupancy per output port (wormhole serialization). */
        std::array<Cycle, numPorts> linkFreeAt{};
        /** Downstream router id per output port (precomputed). */
        std::array<TileId, numPorts> neighborId{};
        /**
         * waiters[outPort * numChannels + channel]: the pairs asleep
         * in `blocked` because that specific downstream buffer (or,
         * for portLocal, the tile's input queues) was full. A commit
         * pop on the downstream buffer wakes exactly this set instead
         * of every blocked pair of the router, so congestion retries
         * fire only when the awaited slot actually freed.
         */
        std::array<std::uint64_t, numPorts * maxChannels> waiters{};
    };

    /** One staged cross-router (or deferred intra-router) effect. */
    struct StagedPop
    {
        TileId router;
        Port inPort;
        ChannelId channel;
    };
    struct StagedPush
    {
        TileId router; //!< receiving router
        Port inPort;   //!< receiving input port
        InFlight entry;
    };
    /**
     * A staged upstream wake: the pop of a buffer frees the slot its
     * feeder is sleeping on, so the commit re-arms exactly the pairs
     * recorded in waiters[slot] of the upstream router. Staged at pop
     * time with the upstream id precomputed, bucketed by the
     * *upstream* router's shard — the wake mutates that router.
     */
    struct StagedWake
    {
        TileId router;      //!< upstream router to re-arm
        std::uint16_t slot; //!< its waiters[] slot to wake
    };

    /** Per-shard staging buffers and stat accumulators. Cache-line
     *  aligned so concurrent shard workers never false-share the
     *  per-message counters. */
    struct alignas(64) Shard
    {
        TileId beginRouter = 0;
        TileId endRouter = 0;
        /** Staged pops of this shard's own routers (a pop's target is
         *  always the router that was scanned). */
        std::vector<StagedPop> pops;
        /** Staged cross-router effects bucketed by the *destination*
         *  router's shard: commitShard(d) drains [d] of every source
         *  shard, so each worker applies exactly the effects landing
         *  in its own range. */
        std::vector<std::vector<StagedPush>> pushesTo;
        std::vector<std::vector<StagedWake>> wakesTo;
        NocStats stats;
        /**
         * Active-router worklist (EngineScan::active), an intrusive
         * bitmap over the shard's router range (bit r - beginRouter).
         * Invariant between cycles: every router with occupancy != 0
         * has its bit set. Bits are set where buffered messages
         * appear — successful injections (owning shard's worker) and
         * the serial commit's staged pushes — and cleared by the
         * deferred-removal sweep at the next visit of a drained
         * router, which is safe under the two-phase commit because
         * pops (the only way occupancy clears) apply serially
         * between compute phases. Bitmap order keeps the scan in
         * ascending router order, matching the full scan's walk.
         */
        std::vector<std::uint64_t> activeMask;
        /** Router visits performed (whole-run accumulator). */
        std::uint64_t routerScans = 0;
    };

    void markActive(TileId router, Cycle now, unsigned len);
    /**
     * Queue a router on its shard's active worklist (no-op for
     * members). Called where buffered messages appear: successful
     * injections (owning shard's worker) and the serial commit's
     * staged pushes and wakes.
     */
    void activateRouter(TileId router);
    /** Scan one router's movable heads (the compute-phase body). */
    void computeRouter(TileId router_id, Cycle now, Shard& shard);
    /** Stage the pop of (router, port, channel) plus — for non-local
     *  ports — the upstream wake it triggers, destination-bucketed. */
    void stagePop(TileId router_id, Port in_port, ChannelId channel,
                  Shard& shard);
    /**
     * Attempt one head move during compute. Returns true if the head
     * moved (its pop is staged). On a timed failure, lowers `retryAt`
     * to the earliest cycle the attempt could succeed; event-driven
     * failures set `blocked` instead.
     */
    bool tryMove(TileId router_id, Port in_port, ChannelId channel,
                 Cycle now, Shard& shard, Cycle& retryAt);
    /** Fill the pre-routed fields of a message entering `router`. */
    void routeInto(TileId router, Port in_port, InFlight& entry) const;

    NocConfig config_;
    Topology topo_;
    DeliverFn deliver_;
    InjectSpaceFn onInjectSpace_;
    std::vector<Router> routers_;
    /** Backing storage of every Fifo in every router. */
    std::vector<InFlight> bufferArena_;
    std::vector<Cycle> routerActive_;
    std::vector<Cycle> routerActiveUntil_;
    std::vector<Shard> shards_;
    /** router -> owning shard (active-list insertion). */
    std::vector<std::uint32_t> routerShard_;
    std::atomic<std::uint64_t> inFlight_{0};
#if DALOREX_OWNERSHIP_CHECKS
    /** Shard-ownership checker domain (see setOwnershipDomain). */
    const void* ownershipDomain_ = nullptr;
#endif
};

} // namespace dalorex

#endif // DALOREX_NOC_NETWORK_HH
